package rdnsserve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/rdnsclient"
	"rdnsprivacy/internal/telemetry"
	"rdnsprivacy/internal/testutil"
)

// doAs issues an in-process request with a chosen source address and API
// key, returning the recorder (admission decisions key on both).
func doAs(h http.Handler, path, remoteAddr, apiKey string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("GET", path, nil)
	if remoteAddr != "" {
		req.RemoteAddr = remoteAddr
	}
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func envelopeCode(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var env rdnsclient.ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("not an envelope: %s", rec.Body)
	}
	return env.Error.Code
}

// TestACL: deny beats allow, allow-list membership is required when one
// is configured, and denials are 403 forbidden on both API dialects.
func TestACL(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	reg := telemetry.NewRegistry()
	srv, _ := newTestServer(t, 4, Config{
		Sink: reg,
		Admission: AdmissionConfig{
			Allow: []dnswire.Prefix{dnswire.MustPrefix("10.0.0.0/8")},
			Deny:  []dnswire.Prefix{dnswire.MustPrefix("10.9.0.0/16")},
		},
	})
	h := srv.Handler()

	if rec := doAs(h, "/v1/days", "10.1.2.3:555", ""); rec.Code != 200 {
		t.Fatalf("allowed client: %d %s", rec.Code, rec.Body)
	}
	if rec := doAs(h, "/v1/days", "192.168.1.1:555", ""); rec.Code != 403 || envelopeCode(t, rec) != rdnsclient.CodeForbidden {
		t.Fatalf("outside allow list: %d %s", rec.Code, rec.Body)
	}
	// Deny wins over allow.
	if rec := doAs(h, "/v1/days", "10.9.4.4:555", ""); rec.Code != 403 {
		t.Fatalf("denied client: %d %s", rec.Code, rec.Body)
	}
	// The ACL also guards the admin surface and the legacy aliases.
	req := httptest.NewRequest("POST", "/v1/admin/reload", nil)
	req.RemoteAddr = "192.168.1.1:555"
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 403 {
		t.Fatalf("admin from outside allow list: %d %s", rec.Code, rec.Body)
	}
	if rec := doAs(h, "/days", "10.9.4.4:555", ""); rec.Code != 403 {
		t.Fatalf("legacy path skipped the ACL: %d %s", rec.Code, rec.Body)
	}
	if got := reg.Counter("rdnsd_admission_denied_total").Value(); got != 4 {
		t.Fatalf("denied counter %d, want 4", got)
	}
}

// TestRateLimit: the token bucket admits the burst, rejects with 429 +
// Retry-After, refills with the (injected) clock, and buckets per API key.
func TestRateLimit(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	reg := telemetry.NewRegistry()
	srv, _ := newTestServer(t, 4, Config{
		Sink:      reg,
		Admission: AdmissionConfig{RatePerSec: 1, Burst: 2, Now: clock},
	})
	h := srv.Handler()

	for i := 0; i < 2; i++ {
		if rec := doAs(h, "/v1/days", "", "alice"); rec.Code != 200 {
			t.Fatalf("burst request %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	rec := doAs(h, "/v1/days", "", "alice")
	if rec.Code != 429 || envelopeCode(t, rec) != rdnsclient.CodeRateLimited {
		t.Fatalf("over burst: %d %s", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After %q, want 1", ra)
	}
	if rec.Header().Get("X-RateLimit-Remaining") != "0" || rec.Header().Get("X-RateLimit-Limit") != "1" {
		t.Fatalf("rate limit headers: %v", rec.Header())
	}

	// A different key has its own bucket; so does a different bare address.
	if rec := doAs(h, "/v1/days", "", "bob"); rec.Code != 200 {
		t.Fatalf("bob's bucket drained by alice: %d", rec.Code)
	}
	if rec := doAs(h, "/v1/days", "172.16.0.9:1", ""); rec.Code != 200 {
		t.Fatalf("address-keyed bucket: %d", rec.Code)
	}

	// One second refills one token.
	advance(time.Second)
	if rec := doAs(h, "/v1/days", "", "alice"); rec.Code != 200 {
		t.Fatalf("after refill: %d %s", rec.Code, rec.Body)
	}
	if rec := doAs(h, "/v1/days", "", "alice"); rec.Code != 429 {
		t.Fatalf("refill granted more than rate*dt: %d", rec.Code)
	}

	// The admin surface is exempt from the bucket (but ACL-checked):
	// reload must work on a daemon that is busy shedding. No Reopen is
	// configured, so 403 — the point is that it is not 429.
	req := httptest.NewRequest("POST", "/v1/admin/reload", nil)
	req.Header.Set("X-API-Key", "alice")
	arec := httptest.NewRecorder()
	h.ServeHTTP(arec, req)
	if arec.Code == 429 {
		t.Fatalf("admin path rate limited: %d", arec.Code)
	}

	if reg.Counter("rdnsd_admission_rate_limited_total").Value() != 2 {
		t.Fatalf("rate-limited counter %d, want 2", reg.Counter("rdnsd_admission_rate_limited_total").Value())
	}
	st, err := rdnsclientStats(h)
	if err != nil {
		t.Fatal(err)
	}
	if st.Admission.RateLimited != 2 || st.Admission.Admitted == 0 || st.Admission.Clients < 4 {
		t.Fatalf("admission stats: %+v", st.Admission)
	}
}

// rdnsclientStats fetches /v1/stats through the handler in-process.
func rdnsclientStats(h http.Handler) (rdnsclient.StatsResponse, error) {
	rec := doAs(h, "/v1/stats", "", "stats-probe")
	var out rdnsclient.StatsResponse
	err := json.Unmarshal(rec.Body.Bytes(), &out)
	return out, err
}

// TestLoadShedding: beyond MaxInFlight the daemon sheds with 503 +
// Retry-After instead of queueing without bound.
func TestLoadShedding(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	reg := telemetry.NewRegistry()
	srv, _ := newTestServer(t, 4, Config{
		Sink:      reg,
		Admission: AdmissionConfig{MaxInFlight: 2},
	})
	h := srv.Handler()

	// Occupy both slots directly, then observe the front door shed.
	rel1, ok1 := srv.adm.enter()
	rel2, ok2 := srv.adm.enter()
	if !ok1 || !ok2 {
		t.Fatal("could not occupy in-flight slots")
	}
	rec := doAs(h, "/v1/days", "", "")
	if rec.Code != 503 || envelopeCode(t, rec) != rdnsclient.CodeOverloaded {
		t.Fatalf("at capacity: %d %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") != "1" {
		t.Fatalf("shed without Retry-After: %v", rec.Header())
	}
	rel1()
	if rec := doAs(h, "/v1/days", "", ""); rec.Code != 200 {
		t.Fatalf("slot freed but still shedding: %d", rec.Code)
	}
	rel2()

	if reg.Counter("rdnsd_admission_shed_total").Value() != 1 {
		t.Fatalf("shed counter %d, want 1", reg.Counter("rdnsd_admission_shed_total").Value())
	}
	if peak := srv.adm.peak.Load(); peak < 2 {
		t.Fatalf("peak in-flight %d, want >= 2", peak)
	}
	if reg.Gauge("rdnsd_admission_inflight").Value() != 0 {
		t.Fatalf("in-flight gauge stuck at %d", reg.Gauge("rdnsd_admission_inflight").Value())
	}
}

// TestBucketEviction: the bucket table stays bounded under a churn of
// distinct client keys.
func TestBucketEviction(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	srv, _ := newTestServer(t, 4, Config{
		Admission: AdmissionConfig{RatePerSec: 100, Burst: 100, MaxClients: 8, Now: clock},
	})
	h := srv.Handler()
	for i := 0; i < 50; i++ {
		key := string(rune('a'+i%26)) + string(rune('a'+i/26))
		if rec := doAs(h, "/v1/days", "", key); rec.Code != 200 {
			t.Fatalf("client %d: %d", i, rec.Code)
		}
		mu.Lock()
		now = now.Add(10 * time.Millisecond)
		mu.Unlock()
	}
	if n := srv.adm.clients(); n > 8 {
		t.Fatalf("bucket table grew to %d, bound is 8", n)
	}
}

// TestRateLimitDisabledByDefault: the zero AdmissionConfig admits an
// arbitrary burst with no limiting headers.
func TestRateLimitDisabledByDefault(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	srv, _ := newTestServer(t, 4, Config{})
	h := srv.Handler()
	for i := 0; i < 200; i++ {
		rec := doAs(h, "/v1/days", "", "")
		if rec.Code != 200 {
			t.Fatalf("request %d: %d", i, rec.Code)
		}
		if rec.Header().Get("X-RateLimit-Limit") != "" {
			t.Fatal("rate-limit headers with limiting disabled")
		}
	}
}
