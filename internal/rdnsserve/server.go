// Package rdnsserve is rdnsd's serving layer: the versioned /v1 query API
// over a histstore, with admission control (per-client token buckets,
// ACLs, in-flight load shedding), hot reload onto a freshly opened store
// without dropping in-flight queries, and the legacy unversioned
// endpoints kept as deprecated aliases. cmd/rdnsd wires it to flags and
// signals; cmd/rdnsload drives it in-process; the wire contract lives in
// internal/rdnsclient. See docs/api.md.
package rdnsserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/rdnsclient"
	"rdnsprivacy/internal/telemetry"
)

// Metric names the serving layer registers (alongside the store's hist_*
// and the admission rdnsd_admission_* instruments; see docs/api.md).
const (
	metricQueries       = "rdnsd_queries_total"
	metricQueryErrors   = "rdnsd_query_errors_total"
	metricQueryCanceled = "rdnsd_query_canceled_total"
	metricQuerySeconds  = "rdnsd_query_seconds"
	metricRowsServed    = "rdnsd_rows_served_total"
	metricLegacyQueries = "rdnsd_legacy_queries_total"
	metricReloads       = "rdnsd_reloads_total"
	metricGeneration    = "rdnsd_store_generation"
	metricRequests      = "rdnsd_requests_total"
)

// v1 paging bounds.
const (
	defaultPageLimit = 1000
	maxPageLimit     = 10000
)

// Config assembles a Server.
type Config struct {
	// Sink receives the serving metrics; nil disables instrumentation.
	Sink telemetry.Sink
	// Tracer records correlated query spans; nil disables tracing.
	Tracer *telemetry.Tracer
	// Seed feeds span correlation IDs.
	Seed int64
	// Admission tunes the front door; the zero value admits everything.
	Admission AdmissionConfig
	// Reopen opens a fresh store for hot reload. nil disables Reload and
	// makes POST /v1/admin/reload answer 403.
	Reopen func() (*histstore.Store, error)
	// Compact tunes every compaction this server starts — the daemon's
	// background loop and POST /v1/admin/compact alike — so one
	// -compact-min-seal flag governs both triggers.
	Compact histstore.CompactOptions
	// QueryLog, when non-nil, records one canonical wide event per
	// request (see QueryLogEntry); nil keeps the hot path log-free.
	QueryLog *QueryLog
}

// Server serves one history store over HTTP. It owns the store: Close
// drains and closes the current handle. All methods and handlers are safe
// for concurrent use, including concurrently with Reload and with Append
// on the live store.
type Server struct {
	sink    telemetry.Sink
	tracer  *telemetry.Tracer
	seed    int64
	adm     *admission
	reopen  func() (*histstore.Store, error)
	compact histstore.CompactOptions

	nextQ    atomic.Int64
	cur      atomic.Pointer[storeHandle]
	gen      atomic.Int64
	reloadMu sync.Mutex
	closed   atomic.Bool
	// replStatus holds a func() *rdnsclient.ReplicaStats lag source on
	// replica daemons (SetReplicaStatus); nil/absent on primaries.
	replStatus atomic.Value

	queries       *telemetry.Counter
	queryErrors   *telemetry.Counter
	queryCanceled *telemetry.Counter
	rowsServed    *telemetry.Counter
	legacyQueries *telemetry.Counter
	reloads       *telemetry.Counter
	querySeconds  *telemetry.Histogram
	genGauge      *telemetry.Gauge

	qlog *QueryLog
	// endpoints maps route name -> per-outcome request counters; built
	// as routes register, read by StatsSnapshot.
	epMu      sync.Mutex
	endpoints map[string]*outcomeCounters
}

// outcomeCounters is one endpoint's rdnsd_requests_total{endpoint,outcome}
// family. The four outcomes partition the endpoint's requests, so their
// sum equals the endpoint's share of rdnsd_queries_total — asserted by
// the consistency test.
type outcomeCounters struct {
	ok       *telemetry.Counter
	errc     *telemetry.Counter
	canceled *telemetry.Counter
	rejected *telemetry.Counter
}

// outcomesFor registers (or returns) the outcome family for endpoint.
func (s *Server) outcomesFor(endpoint string) *outcomeCounters {
	s.epMu.Lock()
	defer s.epMu.Unlock()
	if oc, ok := s.endpoints[endpoint]; ok {
		return oc
	}
	label := func(outcome string) string {
		return metricRequests + `{endpoint="` + endpoint + `",outcome="` + outcome + `"}`
	}
	oc := &outcomeCounters{
		ok:       s.sink.Counter(label("ok")),
		errc:     s.sink.Counter(label("error")),
		canceled: s.sink.Counter(label("canceled")),
		rejected: s.sink.Counter(label("rejected")),
	}
	s.endpoints[endpoint] = oc
	return oc
}

// reqRec accumulates one request's observability record as it moves
// through the pipeline: route fills corr, serveOne fills the admission
// verdict, pinned generation, and phase latencies. fromWire marks a
// correlation ID that arrived in X-Rdns-Corr — only those requests get
// per-phase child spans, so local uncorrelated traffic pays one span
// exactly as before this layer existed.
type reqRec struct {
	corr      uint64
	fromWire  bool
	client    string
	admission string
	gen       int64
	parseNS   int64
	storeNS   int64
}

// countWriter counts bytes on their way to the response, so the query
// log can record body sizes without buffering a second copy.
type countWriter struct {
	w http.ResponseWriter
	n int
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += n
	return n, err
}

// admissionOutcome maps an admission refusal onto the query-log
// vocabulary by its HTTP status.
func admissionOutcome(aerr *apiError) string {
	switch aerr.status {
	case http.StatusTooManyRequests:
		return "ratelimited"
	case http.StatusForbidden:
		return "denied"
	default:
		return "shed"
	}
}

// New creates a Server over st, taking ownership of it: the store is
// closed when the last query against it finishes after a Reload swap, or
// at Server.Close.
func New(st *histstore.Store, cfg Config) *Server {
	sink := cfg.Sink
	if sink == nil {
		sink = (*telemetry.Registry)(nil) // nil registry: valid no-op Sink
	}
	s := &Server{
		sink:    sink,
		tracer:  cfg.Tracer,
		seed:    cfg.Seed,
		adm:     newAdmission(cfg.Admission, sink),
		reopen:  cfg.Reopen,
		compact: cfg.Compact,

		queries:       sink.Counter(metricQueries),
		queryErrors:   sink.Counter(metricQueryErrors),
		queryCanceled: sink.Counter(metricQueryCanceled),
		rowsServed:    sink.Counter(metricRowsServed),
		legacyQueries: sink.Counter(metricLegacyQueries),
		reloads:       sink.Counter(metricReloads),
		querySeconds:  sink.Histogram(metricQuerySeconds, telemetry.DefaultLatencyBuckets()),
		genGauge:      sink.Gauge(metricGeneration),

		qlog:      cfg.QueryLog,
		endpoints: make(map[string]*outcomeCounters),
	}
	s.cur.Store(newStoreHandle(st, 0))
	return s
}

// QueryLog returns the configured query log (nil without one), for the
// daemon to expose at /querylog and dump at shutdown.
func (s *Server) QueryLog() *QueryLog { return s.qlog }

// Generation reports how many reloads have completed.
func (s *Server) Generation() int64 { return s.gen.Load() }

// Reload opens a fresh store via the configured Reopen and swaps it in.
// In-flight queries finish on the old handle, which closes when the last
// of them releases it; no query is dropped or errored by the swap.
// Reloads are serialized. Callers should reload at snapshot boundaries:
// Open truncates a torn tail, so reopening a log mid-append would fork
// history from the writer's view.
func (s *Server) Reload() (rdnsclient.ReloadResponse, error) {
	if s.reopen == nil {
		return rdnsclient.ReloadResponse{}, errors.New("rdnsserve: reload not configured")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if s.closed.Load() {
		return rdnsclient.ReloadResponse{}, errors.New("rdnsserve: server closed")
	}
	st, err := s.reopen()
	if err != nil {
		return rdnsclient.ReloadResponse{}, err
	}
	gen := s.gen.Add(1)
	old := s.cur.Swap(newStoreHandle(st, gen))
	old.release()
	s.reloads.Inc()
	s.genGauge.Set(gen)
	return rdnsclient.ReloadResponse{Reloaded: true, Generation: gen, Snapshots: st.Len()}, nil
}

// Close stops serving and closes the current store once in-flight
// queries drain. Subsequent requests answer 503.
func (s *Server) Close() error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if h := s.cur.Swap(nil); h != nil {
		return h.release()
	}
	return nil
}

// acquireHandle pins the current store generation for one request. It
// returns nil only when the server is closed: a concurrent Reload can
// drain a handle between the Load and the acquire, in which case the loop
// re-reads the pointer and lands on the successor.
func (s *Server) acquireHandle() *storeHandle {
	for {
		h := s.cur.Load()
		if h == nil {
			return nil
		}
		if h.acquire() {
			return h
		}
	}
}

// StatsSnapshot assembles the v1 stats body (also the exporter's health
// payload).
func (s *Server) StatsSnapshot() rdnsclient.StatsResponse {
	resp := rdnsclient.StatsResponse{
		Generation: s.gen.Load(),
		Admission: rdnsclient.AdmissionStats{
			Admitted:     s.adm.admitted.Value(),
			RateLimited:  s.adm.rateLimited.Value(),
			Denied:       s.adm.denied.Value(),
			Shed:         s.adm.shed.Value(),
			InFlight:     s.adm.inFlight.Load(),
			PeakInFlight: s.adm.peak.Load(),
			Clients:      s.adm.clients(),
		},
		Replica: s.replicaStatus(),
	}
	if hs := s.querySeconds.Snapshot(); hs.Count > 0 {
		resp.Latency = rdnsclient.LatencyStats{
			Count: hs.Count,
			P50:   hs.Quantile(0.50),
			P95:   hs.Quantile(0.95),
			P99:   hs.Quantile(0.99),
		}
		if ex, ok := hs.QuantileExemplar(0.99); ok {
			resp.Latency.P99Corr = fmt.Sprintf("%016x", ex.Corr)
			resp.Latency.P99Value = ex.Value
		}
	}
	s.epMu.Lock()
	for name, oc := range s.endpoints {
		es := rdnsclient.EndpointStats{
			OK:       oc.ok.Value(),
			Errors:   oc.errc.Value(),
			Canceled: oc.canceled.Value(),
			Rejected: oc.rejected.Value(),
		}
		if es == (rdnsclient.EndpointStats{}) {
			continue
		}
		if resp.Endpoints == nil {
			resp.Endpoints = make(map[string]rdnsclient.EndpointStats)
		}
		resp.Endpoints[name] = es
	}
	s.epMu.Unlock()
	if s.qlog != nil {
		resp.QueryLog = rdnsclient.QueryLogStats{
			Total:    s.qlog.Total(),
			Buffered: s.qlog.Len(),
			Slow:     s.qlog.SlowLen(),
		}
	}
	if h := s.acquireHandle(); h != nil {
		st := h.st.Stats()
		resp.Store = rdnsclient.StoreStats{
			Snapshots:       st.Snapshots,
			Blocks:          st.Blocks,
			BaseFrames:      st.BaseFrames,
			DeltaFrames:     st.DeltaFrames,
			Bytes:           st.Bytes,
			Reconstructions: st.Reconstructions,
			CacheHits:       st.CacheHits,
			CacheMisses:     st.CacheMisses,
			CacheEntries:    st.CacheEntries,
			TailBytes:       st.TailBytes,
			SealedBytes:     st.SealedBytes,
			Segments:        st.Segments,
			HotSegments:     st.HotSegments,
			TierLoads:       st.TierLoads,
			TierEvictions:   st.TierEvictions,
			Compaction: rdnsclient.CompactionStats{
				Runs:            st.Compaction.Runs,
				SealedSnapshots: st.Compaction.SealedSnapshots,
				ReclaimedBytes:  st.Compaction.ReclaimedBytes,
				Running:         st.Compaction.Running,
			},
		}
		for _, w := range st.Writers {
			resp.Store.Writers = append(resp.Store.Writers, rdnsclient.WriterStats{
				ID:            w.ID,
				Snapshots:     w.Snapshots,
				TailSnapshots: w.TailSnapshots,
				Segments:      w.Segments,
			})
		}
		if total := st.CacheHits + st.CacheMisses; total > 0 {
			resp.CacheHitRate = float64(st.CacheHits) / float64(total)
		}
		h.release()
	}
	return resp
}

// handlerFunc is one v1 endpoint's logic: pure store work, no HTTP.
type handlerFunc func(ctx context.Context, st *histstore.Store, q url.Values) (any, *apiError)

// Handler builds the daemon's route table: /v1 endpoints, the admin
// surface, and the deprecated legacy aliases.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/at", s.route("at", []string{"ip", "t"}, s.handleAt))
	mux.HandleFunc("/v1/range", s.route("range", []string{"prefix", "from", "to", "limit", "cursor"}, s.handleRange))
	mux.HandleFunc("/v1/churn", s.route("churn", []string{"prefix", "from", "to"}, s.handleChurn))
	mux.HandleFunc("/v1/name", s.route("name", []string{"token", "limit", "cursor"}, s.handleName))
	mux.HandleFunc("/v1/days", s.route("days", nil, s.handleDays))
	mux.HandleFunc("/v1/stats", s.route("stats", []string{"divergence"}, s.handleStats))
	mux.HandleFunc("/v1/admin/reload", s.adminReload())
	mux.HandleFunc("/v1/admin/compact", s.adminCompact())
	mux.HandleFunc("/v1/repl/manifest", s.replManifest())
	mux.HandleFunc("/v1/repl/segment/", s.replSegment())
	mux.HandleFunc("/v1/repl/tail/", s.replTail())
	s.legacyRoutes(mux)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeV1Error(w, errNotFound(r.URL.Path))
	})
	return mux
}

// writeV1Error renders the envelope and reports the body size written.
func writeV1Error(w http.ResponseWriter, aerr *apiError) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(aerr.status)
	cw := &countWriter{w: w}
	json.NewEncoder(cw).Encode(rdnsclient.ErrorEnvelope{
		Error: rdnsclient.ErrorDetail{Code: aerr.code, Message: aerr.msg},
	})
	return cw.n
}

// countOutcome splits one request verdict into the aggregate counters
// and its endpoint's outcome family. Admission refusals count as
// "rejected" (they are still queryErrors in the aggregate, preserving
// the pre-existing meaning of rdnsd_query_errors_total).
func (s *Server) countOutcome(oc *outcomeCounters, aerr *apiError, rec *reqRec) {
	switch {
	case aerr == nil:
		oc.ok.Inc()
	case aerr.status == statusClientClosedRequest:
		s.queryCanceled.Inc()
		oc.canceled.Inc()
	case rec != nil && rec.admission != "" && rec.admission != "admitted":
		s.queryErrors.Inc()
		oc.rejected.Inc()
	default:
		s.queryErrors.Inc()
		oc.errc.Inc()
	}
}

// route wraps a v1 endpoint with the full pipeline: method check,
// admission, strict parameter validation, store-handle pinning,
// instrumentation (aggregate + per-endpoint latency and outcomes, a
// correlated span continuing the client's X-Rdns-Corr trace, latency
// exemplars, the query log), and envelope rendering.
func (s *Server) route(name string, allowed []string, h handlerFunc) http.HandlerFunc {
	lat := s.sink.Histogram(metricQuerySeconds+`{endpoint="`+name+`"}`, telemetry.DefaultLatencyBuckets())
	outcomes := s.outcomesFor(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		qn := int(s.nextQ.Add(1))
		// Continue the caller's trace when the request carries a
		// correlation header; otherwise mint a server-side ID so the
		// span, exemplar, and query-log entry still chain together.
		corr := corrFromHeader(r.Header.Get(rdnsclient.CorrHeader))
		fromWire := corr != 0
		if corr == 0 {
			corr = telemetry.CorrID(s.seed, "rdnsd."+name, qn)
		}
		span := s.tracer.StartSpanCorr("rdnsd.query", name, corr)
		s.queries.Inc()
		rec := reqRec{corr: corr, fromWire: fromWire, gen: -1}
		out, aerr := s.serveOne(w, r, http.MethodGet, allowed, h, &rec)
		el := time.Since(start).Seconds()
		s.querySeconds.ObserveExemplar(el, corr)
		lat.ObserveExemplar(el, corr)
		s.countOutcome(outcomes, aerr, &rec)
		status, bytes := http.StatusOK, 0
		code := ""
		if aerr != nil {
			span.Event("error", uint64(aerr.status))
			span.End()
			bytes = writeV1Error(w, aerr)
			status, code = aerr.status, aerr.code
		} else {
			span.End()
			w.Header().Set("Content-Type", "application/json")
			cw := &countWriter{w: w}
			json.NewEncoder(cw).Encode(out)
			bytes = cw.n
		}
		if s.qlog != nil {
			s.qlog.record(QueryLogEntry{
				Corr:       fmt.Sprintf("%016x", corr),
				Endpoint:   name,
				Client:     rec.client,
				Params:     paramsFingerprint(r.URL.Query()),
				Status:     status,
				Code:       code,
				Admission:  rec.admission,
				Generation: rec.gen,
				ParseNS:    rec.parseNS,
				StoreNS:    rec.storeNS,
				TotalNS:    time.Since(start).Nanoseconds(),
				Bytes:      bytes,
			})
		}
	}
}

// serveOne runs admission, validation, and the handler against a pinned
// store handle, recording the admission verdict, phase latencies, and
// pinned generation into rec. The validation and store phases run under
// child spans sharing the request's correlation ID, so a stitched trace
// shows where a slow request spent its time.
func (s *Server) serveOne(w http.ResponseWriter, r *http.Request, method string, allowed []string, h handlerFunc, rec *reqRec) (any, *apiError) {
	if r.Method != method {
		return nil, errMethodNotAllowed(r.Method)
	}
	timed := s.qlog != nil
	if timed {
		rec.client = clientKey(r)
	}
	release, aerr := s.adm.admit(w, r, strings.HasPrefix(r.URL.Path, "/v1/admin/"))
	if aerr != nil {
		rec.admission = admissionOutcome(aerr)
		return nil, aerr
	}
	rec.admission = "admitted"
	defer release()
	// Per-phase child spans only for wire-propagated traces: local
	// uncorrelated traffic keeps its single root span (and single ring
	// slot) exactly as before phase tracing existed.
	phased := rec.fromWire && s.tracer != nil
	var phaseStart time.Time
	if timed {
		phaseStart = time.Now()
	}
	var pspan *telemetry.Span
	if phased {
		pspan = s.tracer.StartSpanCorr("rdnsd.parse", r.URL.Path, rec.corr)
	}
	q := r.URL.Query()
	aerr = checkParams(q, allowed)
	pspan.End()
	if timed {
		rec.parseNS = time.Since(phaseStart).Nanoseconds()
	}
	if aerr != nil {
		return nil, aerr
	}
	hd := s.acquireHandle()
	if hd == nil {
		return nil, errOverloaded()
	}
	defer hd.release()
	rec.gen = hd.gen
	if timed {
		phaseStart = time.Now()
	}
	var sspan *telemetry.Span
	if phased {
		sspan = s.tracer.StartSpanCorr("rdnsd.store", r.URL.Path, rec.corr)
		// The generation event is the stitch key: on a replica it names
		// the catch-up sync that delivered the data this request read.
		sspan.Event("gen", uint64(hd.gen))
	}
	out, aerr := h(r.Context(), hd.st, q)
	if aerr != nil {
		sspan.Event("error", uint64(aerr.status))
	}
	sspan.End()
	if timed {
		rec.storeNS = time.Since(phaseStart).Nanoseconds()
	}
	return out, aerr
}

// checkParams rejects unknown query parameters — typos like "prefx="
// fail loudly instead of silently querying all of history.
func checkParams(q url.Values, allowed []string) *apiError {
	for k := range q {
		found := false
		for _, a := range allowed {
			if k == a {
				found = true
				break
			}
		}
		if !found {
			sort.Strings(allowed)
			return errBadParam("unknown parameter %q (allowed: %s)", k, strings.Join(allowed, ", "))
		}
	}
	return nil
}

// adminRoute wraps an admin endpoint with the shared accounting: the
// aggregate counter, the endpoint's outcome family, and the query log.
// Admin endpoints skip spans and latency histograms — they are rare
// operator actions, not query traffic.
func (s *Server) adminRoute(name string, h func(w http.ResponseWriter, r *http.Request, rec *reqRec) (any, *apiError)) http.HandlerFunc {
	outcomes := s.outcomesFor(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.queries.Inc()
		rec := reqRec{gen: -1}
		out, aerr := h(w, r, &rec)
		s.countOutcome(outcomes, aerr, &rec)
		status, bytes := http.StatusOK, 0
		code := ""
		if aerr != nil {
			bytes = writeV1Error(w, aerr)
			status, code = aerr.status, aerr.code
		} else {
			w.Header().Set("Content-Type", "application/json")
			if b, err := json.Marshal(out); err == nil {
				b = append(b, '\n')
				w.Write(b)
				bytes = len(b)
			}
		}
		if s.qlog != nil {
			s.qlog.record(QueryLogEntry{
				Corr:       fmt.Sprintf("%016x", corrFromHeader(r.Header.Get(rdnsclient.CorrHeader))),
				Endpoint:   name,
				Client:     rec.client,
				Status:     status,
				Code:       code,
				Admission:  rec.admission,
				Generation: rec.gen,
				TotalNS:    time.Since(start).Nanoseconds(),
				Bytes:      bytes,
			})
		}
	}
}

// adminReload is POST /v1/admin/reload. Exempt from the token bucket (an
// operator must be able to reload a daemon that is busy shedding) but
// still behind the ACL; 403 when no Reopen is configured.
func (s *Server) adminReload() http.HandlerFunc {
	return s.adminRoute("admin_reload", func(w http.ResponseWriter, r *http.Request, rec *reqRec) (any, *apiError) {
		if r.Method != http.MethodPost {
			return nil, errMethodNotAllowed(r.Method)
		}
		rec.client = clientKey(r)
		release, aerr := s.adm.admit(w, r, true)
		if aerr != nil {
			rec.admission = admissionOutcome(aerr)
			return nil, aerr
		}
		rec.admission = "admitted"
		defer release()
		if s.reopen == nil {
			return nil, errForbidden("reload is not enabled on this daemon")
		}
		resp, err := s.Reload()
		if err != nil {
			return nil, errInternal(err)
		}
		rec.gen = resp.Generation
		return resp, nil
	})
}

// adminCompact is POST /v1/admin/compact: seal every idle writer's tail
// into segments, in place, while queries keep flowing on this same
// handle. Like reload it is exempt from the token bucket but behind the
// ACL. A compaction already in flight answers 409.
func (s *Server) adminCompact() http.HandlerFunc {
	return s.adminRoute("admin_compact", func(w http.ResponseWriter, r *http.Request, rec *reqRec) (any, *apiError) {
		if r.Method != http.MethodPost {
			return nil, errMethodNotAllowed(r.Method)
		}
		rec.client = clientKey(r)
		release, aerr := s.adm.admit(w, r, true)
		if aerr != nil {
			rec.admission = admissionOutcome(aerr)
			return nil, aerr
		}
		rec.admission = "admitted"
		defer release()
		results, err := s.Compact(r.Context())
		if err != nil {
			if errors.Is(err, histstore.ErrCompactBusy) {
				return nil, &apiError{status: http.StatusConflict, code: rdnsclient.CodeCompactBusy, msg: err.Error()}
			}
			return nil, errInternal(err)
		}
		resp := rdnsclient.CompactResponse{}
		for _, res := range results {
			resp.Results = append(resp.Results, rdnsclient.CompactWriterResult{
				Writer:       res.Writer,
				Sealed:       res.Sealed,
				Segment:      res.Segment,
				TailBytes:    res.TailBytes,
				SegmentBytes: res.SegmentBytes,
				Skipped:      res.Skipped,
			})
		}
		return resp, nil
	})
}

// Compact seals every idle writer's tail of the currently served store
// into segments, in place — queries keep answering bit-identically on
// this same handle throughout. Writers owned by a live campaign process
// are skipped with a per-writer reason. Exposed for the daemon's
// -compact-interval background loop; POST /v1/admin/compact routes here
// too. Without an explicit override, Config.Compact applies.
func (s *Server) Compact(ctx context.Context, opts ...histstore.CompactOptions) ([]histstore.CompactResult, error) {
	o := s.compact
	if len(opts) > 0 {
		o = opts[0]
	}
	hd := s.acquireHandle()
	if hd == nil {
		return nil, errors.New("rdnsserve: server is closed")
	}
	defer hd.release()
	return hd.st.Compact(ctx, o)
}

// storeErr maps a store failure onto the envelope vocabulary. A canceled
// request context wins over whatever partial error the store surfaced.
func storeErr(ctx context.Context, err error) *apiError {
	switch {
	case ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return errCanceled()
	case errors.Is(err, histstore.ErrClosed):
		// Unreachable while the refcount holds the handle open; kept as a
		// defensive mapping.
		return errOverloaded()
	default:
		return errInternal(err)
	}
}

// parseInstant accepts RFC 3339 instants or bare campaign dates
// (2006-01-02, taken as midnight UTC).
func parseInstant(s string) (time.Time, error) {
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	return time.Parse(dataset.DateFormat, s)
}

// window parses from/to, defaulting to all of history.
func window(st *histstore.Store, q url.Values) (from, to time.Time, aerr *apiError) {
	times := st.Times()
	if len(times) > 0 {
		from, to = times[0], times[len(times)-1]
	}
	var err error
	if v := q.Get("from"); v != "" {
		if from, err = parseInstant(v); err != nil {
			return from, to, errBadParam("from: not an RFC 3339 instant or %s date: %q", dataset.DateFormat, v)
		}
	}
	if v := q.Get("to"); v != "" {
		if to, err = parseInstant(v); err != nil {
			return from, to, errBadParam("to: not an RFC 3339 instant or %s date: %q", dataset.DateFormat, v)
		}
	}
	return from, to, nil
}

func prefixParam(q url.Values) (dnswire.Prefix, *apiError) {
	v := q.Get("prefix")
	if v == "" {
		return dnswire.Prefix{}, errBadParam("missing prefix parameter")
	}
	p, err := dnswire.ParsePrefix(v)
	if err != nil {
		return dnswire.Prefix{}, errBadParam("prefix: %v", err)
	}
	return p, nil
}

// pageLimit parses limit with the v1 bounds: 1..maxPageLimit, default
// defaultPageLimit. Unlike the legacy endpoints, 0 is rejected — "no
// limit" is exactly the resource exhaustion pagination exists to prevent.
func pageLimit(q url.Values) (int, *apiError) {
	v := q.Get("limit")
	if v == "" {
		return defaultPageLimit, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 || n > maxPageLimit {
		return 0, errBadParam("limit: must be an integer in [1, %d]: %q", maxPageLimit, v)
	}
	return n, nil
}

func (s *Server) handleAt(ctx context.Context, st *histstore.Store, q url.Values) (any, *apiError) {
	if ctx.Err() != nil {
		return nil, errCanceled()
	}
	ipStr := q.Get("ip")
	if ipStr == "" {
		return nil, errBadParam("missing ip parameter")
	}
	ip, err := dnswire.ParseIPv4(ipStr)
	if err != nil {
		return nil, errBadParam("ip: %v", err)
	}
	when := time.Now().UTC()
	if v := q.Get("t"); v != "" {
		if when, err = parseInstant(v); err != nil {
			return nil, errBadParam("t: not an RFC 3339 instant or %s date: %q", dataset.DateFormat, v)
		}
	}
	name, found, err := st.At(ip, when)
	if errors.Is(err, histstore.ErrBeforeHistory) {
		return nil, errBeforeHistory(when.UTC().Format(time.RFC3339) + " precedes the store's history")
	}
	if err != nil {
		return nil, storeErr(ctx, err)
	}
	resolved, _ := st.Resolve(when)
	resp := rdnsclient.AtResponse{IP: ip.String(), T: when.UTC(), Resolved: resolved, Found: found}
	if found {
		resp.Name = name.String()
	}
	return resp, nil
}

func (s *Server) handleRange(ctx context.Context, st *histstore.Store, q url.Values) (any, *apiError) {
	p, aerr := prefixParam(q)
	if aerr != nil {
		return nil, aerr
	}
	from, to, aerr := window(st, q)
	if aerr != nil {
		return nil, aerr
	}
	limit, aerr := pageLimit(q)
	if aerr != nil {
		return nil, aerr
	}
	bind := cursorBind("range", q.Get("prefix"), q.Get("from"), q.Get("to"))
	// Pin the window's upper bound at the resolved snapshot instant so
	// snapshots appended between pages cannot widen a defaulted window
	// mid-pagination; the cursor carries the pin forward.
	resolvedTo, ok := st.Resolve(to)
	if c := q.Get("cursor"); c != "" {
		cur, toUnix, aerr := decodeRangeCursor(c, bind)
		if aerr != nil {
			return nil, aerr
		}
		resolvedTo, ok = time.Unix(toUnix, 0).UTC(), true
		return s.rangePage(ctx, st, p, from, resolvedTo, cur, limit, bind)
	}
	if !ok {
		// The whole window precedes history: an empty, cursorless page.
		return rdnsclient.RangeResponse{
			Prefix: p.String(), From: from.UTC(), To: to.UTC(), Rows: []rdnsclient.RangeRow{},
		}, nil
	}
	return s.rangePage(ctx, st, p, from, resolvedTo, histstore.RangeCursor{}, limit, bind)
}

func (s *Server) rangePage(ctx context.Context, st *histstore.Store, p dnswire.Prefix, from, to time.Time, cur histstore.RangeCursor, limit int, bind uint64) (any, *apiError) {
	rows, next, more, err := st.RangePage(ctx, p, from, to, cur, limit)
	if err != nil {
		return nil, storeErr(ctx, err)
	}
	resp := rdnsclient.RangeResponse{
		Prefix: p.String(),
		From:   from.UTC(),
		To:     to.UTC(),
		Count:  len(rows),
		Rows:   make([]rdnsclient.RangeRow, 0, len(rows)),
	}
	for _, row := range rows {
		resp.Rows = append(resp.Rows, rdnsclient.RangeRow{Date: row.Date, IP: row.IP.String(), PTR: row.PTR.String()})
	}
	if more {
		resp.NextCursor = encodeRangeCursor(bind, next, to.Unix())
	}
	s.rowsServed.Add(uint64(len(resp.Rows)))
	return resp, nil
}

func (s *Server) handleChurn(ctx context.Context, st *histstore.Store, q url.Values) (any, *apiError) {
	p, aerr := prefixParam(q)
	if aerr != nil {
		return nil, aerr
	}
	from, to, aerr := window(st, q)
	if aerr != nil {
		return nil, aerr
	}
	days, err := st.ChurnContext(ctx, p, from, to)
	if err != nil {
		return nil, storeErr(ctx, err)
	}
	resp := rdnsclient.ChurnResponse{
		Prefix: p.String(), From: from.UTC(), To: to.UTC(), Days: make([]rdnsclient.ChurnDay, 0, len(days)),
	}
	for _, d := range days {
		resp.Days = append(resp.Days, rdnsclient.ChurnDay{Date: d.Date, Added: d.Added, Removed: d.Removed, Changed: d.Changed})
	}
	return resp, nil
}

func (s *Server) handleName(ctx context.Context, st *histstore.Store, q url.Values) (any, *apiError) {
	if ctx.Err() != nil {
		return nil, errCanceled()
	}
	token := q.Get("token")
	if token == "" {
		return nil, errBadParam("missing token parameter")
	}
	limit, aerr := pageLimit(q)
	if aerr != nil {
		return nil, aerr
	}
	bind := cursorBind("name", token)
	off := 0
	if c := q.Get("cursor"); c != "" {
		if off, aerr = decodeOffsetCursor(c, bind); aerr != nil {
			return nil, aerr
		}
	}
	postings := st.FindName(token)
	if off > len(postings) {
		off = len(postings)
	}
	end := off + limit
	if end > len(postings) {
		end = len(postings)
	}
	resp := rdnsclient.NameResponse{Token: token, Postings: make([]rdnsclient.NamePosting, 0, end-off)}
	for _, p := range postings[off:end] {
		resp.Postings = append(resp.Postings, rdnsclient.NamePosting{Prefix: p.Prefix.String(), First: p.First, Last: p.Last})
	}
	resp.Count = len(resp.Postings)
	if end < len(postings) {
		resp.NextCursor = encodeOffsetCursor(bind, end)
	}
	return resp, nil
}

func (s *Server) handleDays(ctx context.Context, st *histstore.Store, _ url.Values) (any, *apiError) {
	if ctx.Err() != nil {
		return nil, errCanceled()
	}
	times := st.Times()
	resp := rdnsclient.DaysResponse{Count: len(times), Days: times}
	if resp.Days == nil {
		resp.Days = []time.Time{}
	}
	return resp, nil
}

func (s *Server) handleStats(ctx context.Context, st *histstore.Store, q url.Values) (any, *apiError) {
	if ctx.Err() != nil {
		return nil, errCanceled()
	}
	resp := s.StatsSnapshot()
	// The divergence block walks every live record across writers, so it
	// is opt-in: any non-empty value of ?divergence enables it.
	if q.Get("divergence") != "" {
		div := st.Divergence()
		out := &rdnsclient.DivergenceStats{Addresses: div.Addresses}
		for _, w := range div.Writers {
			out.Writers = append(out.Writers, rdnsclient.WriterDivergence{
				ID:         w.ID,
				Records:    w.Records,
				Agreements: w.Agreements,
				Conflicts:  w.Conflicts,
				Missing:    w.Missing,
				Exclusive:  w.Exclusive,
			})
		}
		resp.Divergence = out
	}
	return resp, nil
}
