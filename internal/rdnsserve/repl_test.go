package rdnsserve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/rdnsclient"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
	"rdnsprivacy/internal/testutil"
)

// replFixture builds a server whose store holds one sealed segment plus
// a live tail with snapshots — the two file kinds the feed must serve.
// Compaction runs mid-history so the tail stays live (sealing after all
// appends would leave it empty).
func replFixture(t *testing.T, cfg Config) (*Server, *histstore.Store) {
	t.Helper()
	_, st, times := fixture(t, 4)
	if _, err := st.Compact(context.Background(), histstore.CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	for day := 4; day < 6; day++ {
		d := times[0].AddDate(0, 0, day)
		if err := st.Append(d, scanengine.RecordSet{
			dnswire.MustIPv4("10.0.1.7"): dnswire.MustName("brians-iphone.lan.example.net"),
			dnswire.MustIPv4("10.0.1.9"): dnswire.MustName(fmt.Sprintf("host-9-%d.dyn.example.net", day)),
			dnswire.MustIPv4("10.0.2.4"): dnswire.MustName("printer.example.net"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(st, cfg)
	t.Cleanup(func() { srv.Close() })
	return srv, st
}

func getRepl(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func replManifestOf(t *testing.T, h http.Handler) rdnsclient.ReplManifest {
	t.Helper()
	rec := getRepl(t, h, "/v1/repl/manifest")
	if rec.Code != 200 {
		t.Fatalf("manifest: status %d: %s", rec.Code, rec.Body)
	}
	var fm rdnsclient.ReplManifest
	if err := json.Unmarshal(rec.Body.Bytes(), &fm); err != nil {
		t.Fatalf("manifest decode: %v", err)
	}
	return fm
}

// TestReplManifestEndpoint: the manifest reflects the served store's file
// set and the daemon's generation.
func TestReplManifestEndpoint(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	srv, st := replFixture(t, Config{})
	fm := replManifestOf(t, srv.Handler())

	if fm.Generation != srv.Generation() {
		t.Fatalf("manifest generation %d, server says %d", fm.Generation, srv.Generation())
	}
	if fm.Snapshots != 6 || fm.BaseInterval != 4 {
		t.Fatalf("manifest shape: %+v", fm)
	}
	if len(fm.Writers) != 1 || len(fm.Writers[0].Segments) != 1 {
		t.Fatalf("writers: %+v", fm.Writers)
	}
	w := fm.Writers[0]
	if w.ID != st.WriterID() || w.TailFile == "" || w.TailSize <= 0 {
		t.Fatalf("writer: %+v", w)
	}
	g := w.Segments[0]
	if g.Count != 4 || g.Size <= 0 || g.CRC == 0 {
		t.Fatalf("segment: %+v", g)
	}
	if fm.TotalBytes != g.Size+w.TailSize {
		t.Fatalf("total %d, want %d", fm.TotalBytes, g.Size+w.TailSize)
	}
}

// TestReplSegmentEndpoint: chunked fetches carry X-Repl-Size and
// reassemble to exactly the bytes the store itself serves.
func TestReplSegmentEndpoint(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	srv, st := replFixture(t, Config{})
	h := srv.Handler()
	fm := replManifestOf(t, h)
	g := fm.Writers[0].Segments[0]

	want, _, err := st.FeedReadSegment(g.File, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	for off := int64(0); off < g.Size; {
		rec := getRepl(t, h, fmt.Sprintf("/v1/repl/segment/%s?off=%d&n=200", g.File, off))
		if rec.Code != 200 {
			t.Fatalf("segment chunk at %d: status %d: %s", off, rec.Code, rec.Body)
		}
		if rec.Header().Get("Content-Type") != "application/octet-stream" {
			t.Fatalf("segment content type %q", rec.Header().Get("Content-Type"))
		}
		if sz, _ := strconv.ParseInt(rec.Header().Get("X-Repl-Size"), 10, 64); sz != g.Size {
			t.Fatalf("X-Repl-Size %q, want %d", rec.Header().Get("X-Repl-Size"), g.Size)
		}
		body, _ := io.ReadAll(rec.Body)
		if len(body) == 0 {
			t.Fatalf("empty chunk at offset %d", off)
		}
		got = append(got, body...)
		off += int64(len(body))
	}
	if string(got) != string(want) {
		t.Fatal("chunked endpoint bytes diverge from the store's own read")
	}
}

// TestReplTailEndpoint: delta reads carry the tail identity headers, a
// caught-up read is an empty 200, and a pinned stale file is a 409
// repl_changed whose headers name the successor.
func TestReplTailEndpoint(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	srv, st := replFixture(t, Config{})
	h := srv.Handler()
	fm := replManifestOf(t, h)
	w := fm.Writers[0]

	rec := getRepl(t, h, fmt.Sprintf("/v1/repl/tail/%s?file=%s&off=0&n=%d", w.ID, w.TailFile, w.TailSize))
	if rec.Code != 200 {
		t.Fatalf("tail read: status %d: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("X-Repl-Tail-File") != w.TailFile ||
		rec.Header().Get("X-Repl-Tail-First") != strconv.Itoa(w.TailFirst) ||
		rec.Header().Get("X-Repl-Tail-Size") != strconv.FormatInt(w.TailSize, 10) {
		t.Fatalf("tail identity headers: %v", rec.Header())
	}
	if int64(rec.Body.Len()) != w.TailSize {
		t.Fatalf("tail read returned %d bytes, want %d", rec.Body.Len(), w.TailSize)
	}

	// Caught up: empty 200, not an error.
	rec = getRepl(t, h, fmt.Sprintf("/v1/repl/tail/%s?file=%s&off=%d", w.ID, w.TailFile, w.TailSize))
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Fatalf("caught-up read: status %d, %d bytes", rec.Code, rec.Body.Len())
	}

	// Compaction swaps the tail; the pinned old file 409s and the headers
	// identify the successor so the replica can restart its pull.
	if _, err := st.Compact(context.Background(), histstore.CompactOptions{MinSeal: 1}); err != nil {
		t.Fatal(err)
	}
	rec = getRepl(t, h, fmt.Sprintf("/v1/repl/tail/%s?file=%s&off=0", w.ID, w.TailFile))
	if rec.Code != http.StatusConflict {
		t.Fatalf("stale tail pin: status %d: %s", rec.Code, rec.Body)
	}
	var env rdnsclient.ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != rdnsclient.CodeReplChanged {
		t.Fatalf("409 body: %s", rec.Body)
	}
	successor := rec.Header().Get("X-Repl-Tail-File")
	if successor == "" || successor == w.TailFile {
		t.Fatalf("409 names no successor tail: %v", rec.Header())
	}
	if replManifestOf(t, h).Writers[0].TailFile != successor {
		t.Fatal("409 successor does not match the fresh manifest")
	}
}

// TestReplEndpointErrors: the feed's failure modes map onto the
// documented envelope vocabulary.
func TestReplEndpointErrors(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	reg := telemetry.NewRegistry()
	srv, _ := replFixture(t, Config{Sink: reg})
	h := srv.Handler()
	fm := replManifestOf(t, h)
	g := fm.Writers[0].Segments[0]
	w := fm.Writers[0]

	cases := []struct {
		path   string
		status int
		code   string
	}{
		{"/v1/repl/segment/no-such-file", 404, rdnsclient.CodeNotFound},
		{"/v1/repl/tail/no-such-writer", 404, rdnsclient.CodeNotFound},
		{"/v1/repl/segment/", 400, rdnsclient.CodeBadParam},
		{"/v1/repl/segment/" + g.File + "?off=-1", 400, rdnsclient.CodeBadParam},
		{"/v1/repl/segment/" + g.File + "?off=banana", 400, rdnsclient.CodeBadParam},
		{"/v1/repl/segment/" + g.File + "?n=0", 400, rdnsclient.CodeBadParam},
		{fmt.Sprintf("/v1/repl/segment/%s?off=%d", g.File, g.Size+1), 400, rdnsclient.CodeBadParam},
		{fmt.Sprintf("/v1/repl/tail/%s?off=%d", w.ID, w.TailSize+1), 400, rdnsclient.CodeBadParam},
	}
	for _, tc := range cases {
		rec := getRepl(t, h, tc.path)
		if rec.Code != tc.status {
			t.Errorf("%s: status %d, want %d: %s", tc.path, rec.Code, tc.status, rec.Body)
			continue
		}
		var env rdnsclient.ErrorEnvelope
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != tc.code {
			t.Errorf("%s: body %s, want code %q", tc.path, rec.Body, tc.code)
		}
	}

	// Wrong method.
	req := httptest.NewRequest("POST", "/v1/repl/manifest", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST manifest: status %d", rec.Code)
	}

	// Every rejection above counted as a feed error; the successful
	// manifest fetches as plain fetches.
	if errs := reg.Counter(metricReplErrors).Value(); errs != uint64(len(cases))+1 {
		t.Fatalf("repl error counter %d, want %d", errs, len(cases)+1)
	}
	if fetches := reg.Counter(metricReplFetches).Value(); fetches <= uint64(len(cases)) {
		t.Fatalf("repl fetch counter %d", fetches)
	}
}

// TestReplAdmission: the feed is exempt from the per-client token bucket
// (a replica must catch up on a primary shedding query load) but stays
// behind the ACL like everything else.
func TestReplAdmission(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	reg := telemetry.NewRegistry()
	srv, _ := replFixture(t, Config{Sink: reg, Admission: AdmissionConfig{
		RatePerSec: 1, Burst: 2,
		Allow: []dnswire.Prefix{dnswire.MustPrefix("192.0.2.0/24")},
	}})
	h := srv.Handler()

	// httptest requests come from 192.0.2.1: inside the ACL. The query
	// surface exhausts its 2-token bucket...
	var limited bool
	for i := 0; i < 5; i++ {
		rec := getRepl(t, h, "/v1/days")
		if rec.Code == http.StatusTooManyRequests {
			limited = true
		}
	}
	if !limited {
		t.Fatal("query surface never rate-limited")
	}
	// ...while the feed keeps answering.
	for i := 0; i < 5; i++ {
		if rec := getRepl(t, h, "/v1/repl/manifest"); rec.Code != 200 {
			t.Fatalf("bucket-exempt feed fetch %d: status %d: %s", i, rec.Code, rec.Body)
		}
	}

	// An out-of-ACL source is refused feed service too.
	req := httptest.NewRequest("GET", "/v1/repl/manifest", nil)
	req.RemoteAddr = "203.0.113.9:4444"
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusForbidden {
		t.Fatalf("out-of-ACL feed fetch: status %d: %s", rec.Code, rec.Body)
	}
}

// TestReplBytesMetric: served feed bytes are accounted.
func TestReplBytesMetric(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	reg := telemetry.NewRegistry()
	srv, _ := replFixture(t, Config{Sink: reg})
	h := srv.Handler()
	fm := replManifestOf(t, h)
	g := fm.Writers[0].Segments[0]
	w := fm.Writers[0]

	if rec := getRepl(t, h, "/v1/repl/segment/"+g.File); rec.Code != 200 {
		t.Fatalf("segment fetch: %d", rec.Code)
	}
	if rec := getRepl(t, h, "/v1/repl/tail/"+w.ID); rec.Code != 200 {
		t.Fatalf("tail fetch: %d", rec.Code)
	}
	if got := reg.Counter(metricReplBytes).Value(); got != uint64(g.Size+w.TailSize) {
		t.Fatalf("repl bytes counter %d, want %d", got, g.Size+w.TailSize)
	}
}

// TestReplStatsReplicaField: a replica daemon's lag report rides
// /v1/stats; primaries (no SetReplicaStatus) omit the field.
func TestReplStatsReplicaField(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	srv, _ := replFixture(t, Config{})
	h := srv.Handler()

	var sr rdnsclient.StatsResponse
	rec := getRepl(t, h, "/v1/stats")
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil || sr.Replica != nil {
		t.Fatalf("primary stats: %s err=%v", rec.Body, err)
	}

	srv.SetReplicaStatus(func() *rdnsclient.ReplicaStats {
		return &rdnsclient.ReplicaStats{Source: "http://primary:8077", Syncs: 3, BytesBehind: 42}
	})
	rec = getRepl(t, h, "/v1/stats")
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil || sr.Replica == nil {
		t.Fatalf("replica stats: %s err=%v", rec.Body, err)
	}
	if sr.Replica.BytesBehind != 42 || sr.Replica.Syncs != 3 || sr.Replica.Source == "" {
		t.Fatalf("replica lag report: %+v", sr.Replica)
	}
}

// TestLegacyAliasCancellation is TestContextCancellation's twin for the
// deprecated unversioned routes: a hung-up client is accounted as
// 499/canceled there too — the alias pipeline threads the request
// context just like /v1 — and never as a query error.
func TestLegacyAliasCancellation(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	reg := telemetry.NewRegistry()
	srv, _ := newTestServer(t, 6, Config{Sink: reg})
	h := srv.Handler()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	paths := []string{
		"/at?ip=10.0.1.7",
		"/range?prefix=0.0.0.0/0",
		"/churn?prefix=10.0.0.0/16",
		"/name?token=brian",
		"/days",
		"/stats",
	}
	for _, path := range paths {
		req := httptest.NewRequest("GET", path, nil).WithContext(ctx)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != statusClientClosedRequest {
			t.Errorf("%s: status %d, want %d: %s", path, rec.Code, statusClientClosedRequest, rec.Body)
		}
		// Legacy errors keep the old flat string shape even for 499s.
		var legacyErr struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &legacyErr); err != nil || legacyErr.Error == "" {
			t.Errorf("%s: body %s", path, rec.Body)
		}
	}
	if got := reg.Counter(metricQueryCanceled).Value(); got != uint64(len(paths)) {
		t.Fatalf("canceled counter %d, want %d", got, len(paths))
	}
	if got := reg.Counter(metricQueryErrors).Value(); got != 0 {
		t.Fatalf("canceled alias requests counted as errors: %d", got)
	}
}
