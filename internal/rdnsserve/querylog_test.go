package rdnsserve

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"rdnsprivacy/internal/telemetry"
)

func TestQueryLogRingAndSlow(t *testing.T) {
	// 50ms rounds UP to a DefaultLatencyBuckets bound; entries are slow
	// iff strictly above the rounded bound.
	bound := SlowBound(0.050)
	if bound < 0.050 {
		t.Fatalf("SlowBound(0.050) = %g, want >= threshold", bound)
	}
	l := NewQueryLog(QueryLogConfig{Size: 4, SlowThreshold: 50 * time.Millisecond, SlowSize: 2})

	entry := func(i int, secs float64) QueryLogEntry {
		return QueryLogEntry{
			Corr:     fmt.Sprintf("%016x", i+1),
			Endpoint: "at",
			Status:   200,
			TotalNS:  int64(secs * 1e9),
		}
	}
	// 6 entries through a 4-slot ring: the first two evict.
	for i := 0; i < 6; i++ {
		secs := 0.001
		if i >= 4 {
			secs = bound * 2 // slow
		}
		l.record(entry(i, secs))
	}
	if l.Total() != 6 || l.Len() != 4 {
		t.Fatalf("total %d len %d, want 6 and 4", l.Total(), l.Len())
	}
	snap := l.Snapshot()
	if len(snap) != 4 || snap[0].Corr != fmt.Sprintf("%016x", 3) || snap[3].Corr != fmt.Sprintf("%016x", 6) {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	if l.SlowLen() != 2 {
		t.Fatalf("slow len %d, want 2", l.SlowLen())
	}
	for _, e := range l.SlowSnapshot() {
		if !e.Slow {
			t.Fatalf("slow snapshot entry not marked slow: %+v", e)
		}
	}
	// An entry exactly AT the bound is not slow (strict bound semantics:
	// slow = landed in a histogram bucket past the bound).
	l.record(QueryLogEntry{Corr: "00000000000000aa", Endpoint: "at", TotalNS: int64(bound * 1e9)})
	if l.SlowLen() != 2 {
		t.Fatalf("at-bound entry counted slow; slow len %d", l.SlowLen())
	}
	// Above the last histogram bound the threshold stays as given.
	bks := telemetry.DefaultLatencyBuckets()
	if huge := 2 * bks[len(bks)-1]; SlowBound(huge) != huge {
		t.Fatalf("SlowBound past last bucket = %g, want %g", SlowBound(huge), huge)
	}
}

func TestQueryLogJSONLRoundTrip(t *testing.T) {
	l := NewQueryLog(QueryLogConfig{Size: 8})
	for i := 0; i < 3; i++ {
		l.record(QueryLogEntry{
			Corr: fmt.Sprintf("%016x", i+1), Endpoint: "range", Client: "key:w1",
			Params: "00000000000000ff", Status: 200, Admission: "admitted",
			Generation: 2, ParseNS: 10, StoreNS: 20, TotalNS: 35, Bytes: 128,
		})
	}
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadQueryLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l.Snapshot()) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", got, l.Snapshot())
	}
}

// TestQueryLogDigestOrderIndependent proves the identity digest ignores
// arrival order and timing fields — the property the monitor e2e's
// replay-determinism assertion rests on.
func TestQueryLogDigestOrderIndependent(t *testing.T) {
	mk := func(order []int, latency int64) *QueryLog {
		l := NewQueryLog(QueryLogConfig{Size: 8})
		for _, i := range order {
			l.record(QueryLogEntry{
				Corr: fmt.Sprintf("%016x", i), Endpoint: "at", Status: 200,
				Admission: "admitted", Generation: 1, TotalNS: latency, Bytes: int(latency),
			})
		}
		return l
	}
	a := mk([]int{1, 2, 3}, 100)
	b := mk([]int{3, 1, 2}, 999999) // reordered, different latencies
	if a.Digest() != b.Digest() {
		t.Fatalf("digest depends on order or timing: %016x vs %016x", a.Digest(), b.Digest())
	}
	c := mk([]int{1, 2, 4}, 100) // different identity
	if a.Digest() == c.Digest() {
		t.Fatal("digest blind to entry identity")
	}
}

func TestQueryLogNilSafe(t *testing.T) {
	var l *QueryLog
	l.record(QueryLogEntry{})
	if l.Len() != 0 || l.SlowLen() != 0 || l.Total() != 0 || l.Snapshot() != nil || l.SlowSnapshot() != nil {
		t.Fatal("nil QueryLog not inert")
	}
}

func TestCorrFromHeader(t *testing.T) {
	for hdr, want := range map[string]uint64{
		"00000000000000ff": 0xff,
		"6a38418e52828837": 0x6a38418e52828837,
		"":                 0,
		"ff":               0, // wrong length
		"zzzzzzzzzzzzzzzz": 0, // not hex
		"00000000000000f":  0,
	} {
		if got := corrFromHeader(hdr); got != want {
			t.Errorf("corrFromHeader(%q) = %#x, want %#x", hdr, got, want)
		}
	}
}
