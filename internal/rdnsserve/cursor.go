package rdnsserve

import (
	"encoding/base64"
	"fmt"
	"hash/fnv"

	"rdnsprivacy/internal/histstore"
)

// Pagination cursors are opaque base64 tokens that bind the resume point
// to a hash of the query parameters that produced it. The binding turns
// "cursor from a different query" — which would otherwise silently return
// wrong-window rows — into a clean invalid_cursor 400.

// cursorBind hashes the raw query parameters a cursor belongs to.
func cursorBind(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// encodeRangeCursor packs a histstore resume point plus the resolved
// upper snapshot instant (Unix seconds). Carrying the resolved "to"
// pins a defaulted window: without it, days appended between pages would
// widen the scan mid-pagination.
func encodeRangeCursor(bind uint64, cur histstore.RangeCursor, toUnix int64) string {
	raw := fmt.Sprintf("r1:%016x:%d:%d:%d:%d", bind, cur.Snap, cur.Block, cur.Octet, toUnix)
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

func decodeRangeCursor(s string, bind uint64) (cur histstore.RangeCursor, toUnix int64, err *apiError) {
	raw, derr := base64.RawURLEncoding.DecodeString(s)
	if derr != nil {
		return cur, 0, errInvalidCursor()
	}
	var gotBind uint64
	n, serr := fmt.Sscanf(string(raw), "r1:%016x:%d:%d:%d:%d", &gotBind, &cur.Snap, &cur.Block, &cur.Octet, &toUnix)
	if serr != nil || n != 5 {
		return cur, 0, errInvalidCursor()
	}
	if gotBind != bind {
		return cur, 0, errCursorMismatch()
	}
	if cur.Snap < 0 || cur.Octet < 0 || cur.Octet > 255 {
		return cur, 0, errInvalidCursor()
	}
	return cur, toUnix, nil
}

// encodeOffsetCursor packs a plain offset (used by /v1/name, whose
// postings list is a stable slice per index generation).
func encodeOffsetCursor(bind uint64, off int) string {
	raw := fmt.Sprintf("n1:%016x:%d", bind, off)
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

func decodeOffsetCursor(s string, bind uint64) (int, *apiError) {
	raw, derr := base64.RawURLEncoding.DecodeString(s)
	if derr != nil {
		return 0, errInvalidCursor()
	}
	var gotBind uint64
	var off int
	n, serr := fmt.Sscanf(string(raw), "n1:%016x:%d", &gotBind, &off)
	if serr != nil || n != 2 {
		return 0, errInvalidCursor()
	}
	if gotBind != bind {
		return 0, errCursorMismatch()
	}
	if off < 0 {
		return 0, errInvalidCursor()
	}
	return off, nil
}
