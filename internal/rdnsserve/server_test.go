package rdnsserve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/rdnsclient"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
	"rdnsprivacy/internal/testutil"
)

// fixture builds a store with a small deterministic history: brians-iphone
// lives at 10.0.1.7 throughout, 10.0.1.9 cycles through dynamic names,
// and 10.0.2.0/24 joins on day 3. Returns the log path so reload tests
// can reopen it.
func fixture(t testing.TB, days int) (string, *histstore.Store, []time.Time) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "hist.log")
	st, err := histstore.Open(path, histstore.WithCache(256), histstore.WithBaseInterval(4))
	if err != nil {
		t.Fatal(err)
	}
	var times []time.Time
	start := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	for day := 0; day < days; day++ {
		recs := scanengine.RecordSet{
			dnswire.MustIPv4("10.0.1.7"): dnswire.MustName("brians-iphone.lan.example.net"),
			dnswire.MustIPv4("10.0.1.9"): dnswire.MustName(fmt.Sprintf("host-9-%d.dyn.example.net", day)),
		}
		if day >= 3 {
			recs[dnswire.MustIPv4("10.0.2.4")] = dnswire.MustName("printer.example.net")
		}
		d := start.AddDate(0, 0, day)
		if err := st.Append(d, recs); err != nil {
			t.Fatal(err)
		}
		times = append(times, d)
	}
	return path, st, times
}

// newTestServer wraps a fixture store in a Server (which takes ownership
// of the store and closes it at cleanup).
func newTestServer(t testing.TB, days int, cfg Config) (*Server, []time.Time) {
	t.Helper()
	_, st, times := fixture(t, days)
	srv := New(st, cfg)
	t.Cleanup(func() { srv.Close() })
	return srv, times
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

// TestV1Endpoints drives every v1 endpoint through the typed client — the
// same consumer cmd/rdnsload uses — so the wire contract is exercised end
// to end.
func TestV1Endpoints(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	reg := telemetry.NewRegistry()
	srv, times := newTestServer(t, 6, Config{Sink: reg, Tracer: telemetry.NewTracer(1, 256), Seed: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := rdnsclient.New(ts.URL)
	ctx := context.Background()

	t.Run("at", func(t *testing.T) {
		at, err := c.At(ctx, "10.0.1.9", times[3])
		if err != nil || !at.Found || at.Name != "host-9-3.dyn.example.net." {
			t.Fatalf("at day 3: %+v err=%v", at, err)
		}
		// An off-grid instant resolves to the preceding snapshot.
		at, err = c.At(ctx, "10.0.1.9", times[2].Add(11*time.Hour))
		if err != nil || at.Name != "host-9-2.dyn.example.net." || !at.Resolved.Equal(times[2]) {
			t.Fatalf("off-grid at: %+v err=%v", at, err)
		}
		at, err = c.At(ctx, "10.0.2.4", times[0])
		if err != nil || at.Found {
			t.Fatalf("found a record before the block existed: %+v err=%v", at, err)
		}
	})

	t.Run("range", func(t *testing.T) {
		rows, err := c.RangeAll(ctx, rdnsclient.RangeQuery{
			Prefix: "10.0.1.0/24", From: times[0], To: times[1],
		})
		if err != nil || len(rows) != 4 { // two addresses, two days
			t.Fatalf("range: %d rows, err %v", len(rows), err)
		}
	})

	t.Run("churn", func(t *testing.T) {
		cr, err := c.Churn(ctx, "10.0.0.0/16", time.Time{}, time.Time{})
		if err != nil || len(cr.Days) != 5 { // days 1..5
			t.Fatalf("churn: %+v err=%v", cr, err)
		}
		// Day 3: host-9 renamed, printer joined.
		if d := cr.Days[2]; d.Added != 1 || d.Changed != 1 || d.Removed != 0 {
			t.Fatalf("churn day 3: %+v", d)
		}
	})

	t.Run("name", func(t *testing.T) {
		ps, err := c.NameAll(ctx, "brian")
		if err != nil || len(ps) != 1 || ps[0].Prefix != "10.0.1.0/24" {
			t.Fatalf("name postings: %+v err=%v", ps, err)
		}
		if !ps[0].First.Equal(times[0]) || !ps[0].Last.Equal(times[5]) {
			t.Fatalf("posting interval: %+v", ps[0])
		}
	})

	t.Run("days", func(t *testing.T) {
		dr, err := c.Days(ctx)
		if err != nil || dr.Count != 6 || len(dr.Days) != 6 {
			t.Fatalf("days: %+v err=%v", dr, err)
		}
	})

	t.Run("stats", func(t *testing.T) {
		sr, err := c.Stats(ctx)
		if err != nil || sr.Store.Snapshots != 6 || sr.Generation != 0 {
			t.Fatalf("stats: %+v err=%v", sr, err)
		}
		if sr.Admission.Admitted == 0 {
			t.Fatalf("admission counter dead: %+v", sr.Admission)
		}
	})

	t.Run("metrics", func(t *testing.T) {
		queries := reg.Counter(metricQueries).Value()
		if queries == 0 {
			t.Fatal("query counter did not move")
		}
		if reg.Histogram(metricQuerySeconds, nil).Count() != queries {
			t.Fatalf("latency histogram count %d != queries %d",
				reg.Histogram(metricQuerySeconds, nil).Count(), queries)
		}
		if reg.Histogram(metricQuerySeconds+`{endpoint="at"}`, nil).Count() == 0 {
			t.Fatal("per-endpoint histogram dead")
		}
	})
}

// TestErrorEnvelope: every failure mode returns the documented
// {"error":{"code","message"}} envelope with the documented status.
func TestErrorEnvelope(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	srv, _ := newTestServer(t, 6, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		method string
		path   string
		status int
		code   string
	}{
		{"GET", "/v1/at", 400, rdnsclient.CodeBadParam},                           // missing ip
		{"GET", "/v1/at?ip=banana", 400, rdnsclient.CodeBadParam},                 // bad ip
		{"GET", "/v1/at?ip=1.2.3.4&t=yesterday", 400, rdnsclient.CodeBadParam},    // bad instant
		{"GET", "/v1/at?ip=1.2.3.4&t=2019-01-01", 400, rdnsclient.CodeBeforeHistory},
		{"GET", "/v1/at?ip=1.2.3.4&time=2020-03-01", 400, rdnsclient.CodeBadParam}, // unknown param
		{"GET", "/v1/range", 400, rdnsclient.CodeBadParam},                         // missing prefix
		{"GET", "/v1/range?prefix=10.0.1.0/33", 400, rdnsclient.CodeBadParam},
		{"GET", "/v1/range?prefix=10.0.1.0/24&limit=0", 400, rdnsclient.CodeBadParam},
		{"GET", "/v1/range?prefix=10.0.1.0/24&limit=-1", 400, rdnsclient.CodeBadParam},
		{"GET", "/v1/range?prefix=10.0.1.0/24&limit=99999", 400, rdnsclient.CodeBadParam},
		{"GET", "/v1/range?prefix=10.0.1.0/24&limit=banana", 400, rdnsclient.CodeBadParam},
		{"GET", "/v1/range?prefix=10.0.1.0/24&cursor=%21%21", 400, rdnsclient.CodeInvalidCursor},
		{"GET", "/v1/range?prefix=10.0.1.0/24&cursor=aGVsbG8", 400, rdnsclient.CodeInvalidCursor},
		{"GET", "/v1/churn", 400, rdnsclient.CodeBadParam},
		{"GET", "/v1/name", 400, rdnsclient.CodeBadParam},
		{"GET", "/v1/name?token=brian&cursor=bogus", 400, rdnsclient.CodeInvalidCursor},
		{"GET", "/v1/nope", 404, rdnsclient.CodeNotFound},
		{"GET", "/nope", 404, rdnsclient.CodeNotFound},
		{"POST", "/v1/at?ip=1.2.3.4", 405, rdnsclient.CodeMethodNotAllowed},
		{"GET", "/v1/admin/reload", 405, rdnsclient.CodeMethodNotAllowed},
		{"POST", "/v1/admin/reload", 403, rdnsclient.CodeForbidden}, // no Reopen configured
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var env rdnsclient.ErrorEnvelope
		derr := json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if derr != nil {
			t.Errorf("%s %s: body is not an envelope: %v", tc.method, tc.path, derr)
			continue
		}
		if resp.StatusCode != tc.status || env.Error.Code != tc.code {
			t.Errorf("%s %s: got %d %q (%s), want %d %q",
				tc.method, tc.path, resp.StatusCode, env.Error.Code, env.Error.Message, tc.status, tc.code)
		}
		if env.Error.Message == "" {
			t.Errorf("%s %s: empty error message", tc.method, tc.path)
		}
	}
}

// TestV1Pagination: cursors round-trip, an exactly-full page is followed
// by an empty final page, cursors are bound to their query, and windows
// entirely before history yield a clean empty page.
func TestV1Pagination(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	srv, times := newTestServer(t, 6, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := rdnsclient.New(ts.URL)
	ctx := context.Background()

	// 10.0.1.0/24 over all 6 days: 2 addresses x 6 days = 12 rows.
	q := rdnsclient.RangeQuery{Prefix: "10.0.1.0/24", Limit: 5}
	it := c.Range(q)
	var counts []int
	var rows []rdnsclient.RangeRow
	for it.Next(ctx) {
		counts = append(counts, it.Page().Count)
		rows = append(rows, it.Page().Rows...)
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if len(counts) != 3 || counts[0] != 5 || counts[1] != 5 || counts[2] != 2 {
		t.Fatalf("pages %v, want [5 5 2]", counts)
	}

	// limit=4 divides 12 exactly: the scan ends at the third page with no
	// dangling cursor (the server only hands out a cursor after seeing a
	// further row). Clients must still tolerate empty pages — the
	// documented contract reserves them — which rdnsclient's iterator
	// tests cover against a mock server.
	it = c.Range(rdnsclient.RangeQuery{Prefix: "10.0.1.0/24", Limit: 4})
	counts = nil
	for it.Next(ctx) {
		counts = append(counts, it.Page().Count)
		if it.Page().Count == 4 && len(counts) == 3 && it.Page().NextCursor != "" {
			t.Fatalf("dangling cursor on the exact-fill final page: %+v", it.Page())
		}
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if len(counts) != 3 || counts[0] != 4 || counts[1] != 4 || counts[2] != 4 {
		t.Fatalf("exact-fill pages %v, want [4 4 4]", counts)
	}

	// Manual cursor round-trip.
	p1, err := c.RangePage(ctx, q, "")
	if err != nil || p1.NextCursor == "" {
		t.Fatalf("page 1: %+v err=%v", p1, err)
	}
	p2, err := c.RangePage(ctx, q, p1.NextCursor)
	if err != nil || p2.Count != 5 || p2.Rows[0] == p1.Rows[0] {
		t.Fatalf("page 2: %+v err=%v", p2, err)
	}

	// A cursor is bound to its query: replaying it under a different
	// prefix is invalid_cursor, not silent wrong-window rows.
	_, err = c.RangePage(ctx, rdnsclient.RangeQuery{Prefix: "10.0.2.0/24", Limit: 5}, p1.NextCursor)
	if ae, ok := err.(*rdnsclient.APIError); !ok || ae.Code != rdnsclient.CodeInvalidCursor {
		t.Fatalf("cross-query cursor: %v", err)
	}

	// A window entirely before history: empty page, no cursor, no error.
	empty, err := c.RangePage(ctx, rdnsclient.RangeQuery{
		Prefix: "10.0.1.0/24",
		From:   times[0].AddDate(-1, 0, 0),
		To:     times[0].AddDate(0, 0, -1),
	}, "")
	if err != nil || empty.Count != 0 || empty.NextCursor != "" {
		t.Fatalf("pre-history window: %+v err=%v", empty, err)
	}

	// Name pagination needs a token spanning several prefixes (postings
	// are per-/24): build a store where brian's devices sit in three /24s.
	nst, err := histstore.Open(filepath.Join(t.TempDir(), "name.log"))
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	if err := nst.Append(day, scanengine.RecordSet{
		dnswire.MustIPv4("10.0.1.7"): dnswire.MustName("brians-iphone.lan.example.net"),
		dnswire.MustIPv4("10.0.2.4"): dnswire.MustName("brians-printer.lan.example.net"),
		dnswire.MustIPv4("10.0.3.9"): dnswire.MustName("brians-nas.lan.example.net"),
	}); err != nil {
		t.Fatal(err)
	}
	nsrv := New(nst, Config{})
	t.Cleanup(func() { nsrv.Close() })
	nts := httptest.NewServer(nsrv.Handler())
	defer nts.Close()
	nc := rdnsclient.New(nts.URL)

	np1, err := nc.NamePage(ctx, rdnsclient.NameQuery{Token: "brian", Limit: 2}, "")
	if err != nil || np1.Count != 2 || np1.NextCursor == "" {
		t.Fatalf("name page 1: %+v err=%v", np1, err)
	}
	np2, err := nc.NamePage(ctx, rdnsclient.NameQuery{Token: "brian", Limit: 2}, np1.NextCursor)
	if err != nil || np2.Count != 1 || np2.NextCursor != "" {
		t.Fatalf("name page 2: %+v err=%v", np2, err)
	}
	for _, p := range np1.Postings {
		if p.Prefix == np2.Postings[0].Prefix {
			t.Fatalf("name pages repeated a posting: %+v %+v", np1, np2)
		}
	}
	// A name cursor is bound to its token.
	if _, err := nc.NamePage(ctx, rdnsclient.NameQuery{Token: "iphone", Limit: 2}, np1.NextCursor); err == nil {
		t.Fatal("cross-token cursor accepted")
	}
	all, err := nc.NameAll(ctx, "brian")
	if err != nil || len(all) != 3 {
		t.Fatalf("NameAll: %+v err=%v", all, err)
	}
}

// TestV1RangeConcatProperty: for several page sizes, the concatenation of
// paginated /v1/range pages must equal the one-shot answer row for row.
func TestV1RangeConcatProperty(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	srv, _ := newTestServer(t, 9, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := rdnsclient.New(ts.URL)
	ctx := context.Background()

	for _, prefix := range []string{"10.0.1.0/24", "10.0.0.0/16", "10.0.1.7/32", "0.0.0.0/0"} {
		oneShot, err := c.RangeAll(ctx, rdnsclient.RangeQuery{Prefix: prefix, Limit: 10000})
		if err != nil {
			t.Fatal(err)
		}
		for _, limit := range []int{1, 2, 3, 7} {
			got, err := c.RangeAll(ctx, rdnsclient.RangeQuery{Prefix: prefix, Limit: limit})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(oneShot) {
				t.Fatalf("%s limit=%d: %d rows, want %d", prefix, limit, len(got), len(oneShot))
			}
			for i := range got {
				if got[i] != oneShot[i] {
					t.Fatalf("%s limit=%d row %d: %+v != %+v", prefix, limit, i, got[i], oneShot[i])
				}
			}
		}
	}
}

// TestLegacyAliases: the unversioned endpoints still answer with their
// original shapes (string dates, string error bodies) plus the
// deprecation headers pointing at /v1.
func TestLegacyAliases(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	srv, times := newTestServer(t, 6, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{
		"/at?ip=10.0.1.7&t=2020-03-04",
		"/range?prefix=10.0.1.0/24&limit=1",
		"/churn?prefix=10.0.0.0/16",
		"/name?token=brian",
		"/days",
		"/stats",
	} {
		resp := getJSON(t, ts.URL+path, nil)
		if resp.StatusCode != 200 {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if resp.Header.Get("Deprecation") != "true" || resp.Header.Get("Sunset") == "" {
			t.Errorf("%s: missing deprecation headers: %v", path, resp.Header)
		}
		if link := resp.Header.Get("Link"); link == "" {
			t.Errorf("%s: no successor-version link", path)
		}
	}

	// Old shapes intact: /days serves formatted strings, /range still does
	// total-count-plus-truncated, /at formats instants.
	var dr struct {
		Count int      `json:"count"`
		Days  []string `json:"days"`
	}
	getJSON(t, ts.URL+"/days", &dr)
	if dr.Count != 6 || dr.Days[0] != times[0].Format(time.RFC3339) {
		t.Fatalf("legacy days: %+v", dr)
	}
	var rr struct {
		Count     int  `json:"count"`
		Truncated bool `json:"truncated"`
		Rows      []struct {
			Date string `json:"date"`
		} `json:"rows"`
	}
	getJSON(t, ts.URL+"/range?prefix=10.0.1.0/24&limit=1", &rr)
	if rr.Count != 12 || !rr.Truncated || len(rr.Rows) != 1 {
		t.Fatalf("legacy range: %+v", rr)
	}

	// Legacy errors are the old flat string shape, not the v1 envelope.
	var legacyErr struct {
		Error string `json:"error"`
	}
	resp := getJSON(t, ts.URL+"/at?ip=banana", &legacyErr)
	if resp.StatusCode != 400 || legacyErr.Error == "" {
		t.Fatalf("legacy error: status %d body %+v", resp.StatusCode, legacyErr)
	}
}

// TestStatsCacheConsistency: repeated identical queries must ride the
// reconstruction cache, visible through /v1/stats.
func TestStatsCacheConsistency(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	srv, _ := newTestServer(t, 8, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := rdnsclient.New(ts.URL)
	ctx := context.Background()

	before, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	const repeats = 10
	for i := 0; i < repeats; i++ {
		at, err := c.At(ctx, "10.0.1.7", time.Date(2020, 3, 5, 0, 0, 0, 0, time.UTC))
		if err != nil || at.Name != "brians-iphone.lan.example.net." {
			t.Fatalf("query %d: %+v err=%v", i, at, err)
		}
	}
	after, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := after.Store.CacheHits - before.Store.CacheHits; got < repeats-1 {
		t.Fatalf("cache hits grew by %d over %d identical queries", got, repeats)
	}
	if after.CacheHitRate <= 0 {
		t.Fatalf("cache hit rate %v after repeated queries", after.CacheHitRate)
	}
	if after.Store.Reconstructions != before.Store.Reconstructions+1 {
		t.Fatalf("reconstructions %d -> %d, want exactly one cold rebuild",
			before.Store.Reconstructions, after.Store.Reconstructions)
	}
}

// TestContextCancellation: a request whose context is already canceled
// (the client hung up) is abandoned as 499/canceled and counted apart
// from real errors.
func TestContextCancellation(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	reg := telemetry.NewRegistry()
	srv, _ := newTestServer(t, 6, Config{Sink: reg})
	h := srv.Handler()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, path := range []string{
		"/v1/at?ip=10.0.1.7",
		"/v1/range?prefix=0.0.0.0/0",
		"/v1/churn?prefix=10.0.0.0/16",
		"/v1/name?token=brian",
		"/v1/days",
		"/v1/stats",
	} {
		req := httptest.NewRequest("GET", path, nil).WithContext(ctx)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != statusClientClosedRequest {
			t.Errorf("%s: status %d, want %d: %s", path, rec.Code, statusClientClosedRequest, rec.Body)
		}
		var env rdnsclient.ErrorEnvelope
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != rdnsclient.CodeCanceled {
			t.Errorf("%s: body %s", path, rec.Body)
		}
	}
	if got := reg.Counter(metricQueryCanceled).Value(); got != 6 {
		t.Fatalf("canceled counter %d, want 6", got)
	}
	if got := reg.Counter(metricQueryErrors).Value(); got != 0 {
		t.Fatalf("canceled requests counted as errors: %d", got)
	}
}

// TestConcurrentQueriesDuringAppend hammers every v1 endpoint from
// several goroutines while the store keeps appending snapshots — the
// live-campaign serving scenario. Run under -race (make race covers this
// package).
func TestConcurrentQueriesDuringAppend(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	_, st, times := fixture(t, 10)
	reg := telemetry.NewRegistry()
	srv := New(st, Config{Sink: reg, Tracer: telemetry.NewTracer(7, 1024), Seed: 7})
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const appends = 30
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		day := times[len(times)-1]
		for i := 0; i < appends; i++ {
			day = day.AddDate(0, 0, 1)
			recs := scanengine.RecordSet{
				dnswire.MustIPv4("10.0.1.7"): dnswire.MustName("brians-iphone.lan.example.net"),
				dnswire.MustIPv4("10.0.3.1"): dnswire.MustName(fmt.Sprintf("host-%d.dyn.example.net", i)),
			}
			if err := st.Append(day, recs); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()

	urls := []string{
		"/v1/at?ip=10.0.1.7&t=2020-03-08",
		"/v1/at?ip=10.0.1.7",
		"/v1/range?prefix=10.0.1.0/24&from=2020-03-01&to=2020-03-05",
		"/v1/churn?prefix=10.0.0.0/16&from=2020-03-02&to=2020-03-09",
		"/v1/name?token=brian",
		"/v1/days",
		"/v1/stats",
	}
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := ts.URL + urls[(w+i)%len(urls)]
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("GET %s: %v", url, err)
					return
				}
				var body json.RawMessage
				if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
					t.Errorf("GET %s: %v", url, err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: status %d: %s", url, resp.StatusCode, body)
					return
				}
			}
		}()
	}
	wg.Wait()

	var cr rdnsclient.ChurnResponse
	getJSON(t, ts.URL+"/v1/churn?prefix=10.0.0.0/16&from=2020-03-02&to=2020-03-09", &cr)
	if len(cr.Days) != 8 {
		t.Fatalf("post-append churn window: %d days, want 8", len(cr.Days))
	}
	if st.Len() != 10+appends {
		t.Fatalf("store has %d snapshots, want %d", st.Len(), 10+appends)
	}
	if reg.Counter(metricQueries).Value() == 0 {
		t.Fatal("query counter did not move")
	}
}

// TestPaginationStableDuringAppends: a paginated range scan whose window
// was resolved on page one must not see snapshots appended between pages,
// even with a defaulted (full-history) window — the cursor pins the
// upper bound.
func TestPaginationStableDuringAppends(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	_, st, times := fixture(t, 6)
	srv := New(st, Config{})
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := rdnsclient.New(ts.URL)
	ctx := context.Background()

	q := rdnsclient.RangeQuery{Prefix: "10.0.1.0/24", Limit: 3} // 12 rows total
	page, err := c.RangePage(ctx, q, "")
	if err != nil || page.Count != 3 || page.NextCursor == "" {
		t.Fatalf("page 1: %+v err=%v", page, err)
	}
	got := append([]rdnsclient.RangeRow(nil), page.Rows...)
	day := times[len(times)-1]
	for page.NextCursor != "" {
		// Extend history between every page; the scan must not widen.
		day = day.AddDate(0, 0, 1)
		if err := st.Append(day, scanengine.RecordSet{
			dnswire.MustIPv4("10.0.1.7"): dnswire.MustName("brians-iphone.lan.example.net"),
		}); err != nil {
			t.Fatal(err)
		}
		if page, err = c.RangePage(ctx, q, page.NextCursor); err != nil {
			t.Fatal(err)
		}
		got = append(got, page.Rows...)
	}
	if len(got) != 12 {
		t.Fatalf("paginated scan over appends: %d rows, want the original 12", len(got))
	}
	for _, r := range got {
		if d, _ := time.Parse(time.RFC3339, r.Date.Format(time.RFC3339)); d.After(times[5]) {
			t.Fatalf("row from beyond the pinned window: %+v", r)
		}
	}
}
