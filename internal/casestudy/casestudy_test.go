package casestudy

import (
	"testing"
	"time"

	"rdnsprivacy/internal/analysis"
	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/ipam"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/reactive"
	"rdnsprivacy/internal/simclock"
)

var epoch = time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC) // Monday

func TestTrackNameFindsBrianDevices(t *testing.T) {
	cfg := netsim.Config{
		Name: "Academic-T", Type: netsim.Academic,
		Suffix:    dnswire.MustName("campus-t.edu"),
		Announced: dnswire.MustPrefix("10.81.0.0/20"),
		Blocks: []netsim.Block{{
			Kind: netsim.BlockDynamic, Prefix: dnswire.MustPrefix("10.81.1.0/24"),
			Policy: ipam.PolicyCarryOver, SubLabel: "dyn",
		}},
		LeaseTime: time.Hour,
		Seed:      9,
	}
	n, err := netsim.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id uint64, host string, from, to time.Duration) *netsim.Device {
		return &netsim.Device{
			ID: id, Owner: "brian", Kind: netsim.KindIPhone, HostName: host,
			MAC: [6]byte{2, 0, 0, 0, 0, byte(id)}, SendRelease: true,
			Schedule: &netsim.ScriptedScheduler{Weekly: map[time.Weekday][]netsim.Session{
				time.Monday: {{Start: from, End: to}},
			}},
		}
	}
	n.AddDevice(mk(1, "Brian's iPhone", 9*time.Hour, 12*time.Hour), 0, netsim.Student)
	n.AddDevice(mk(2, "Brians-MBP", 11*time.Hour, 14*time.Hour), 0, netsim.Student)
	n.AddDevice(mk(3, "Emma's iPad", 9*time.Hour, 12*time.Hour), 0, netsim.Student)

	clock := simclock.NewSimulated(epoch)
	fab := fabric.New(clock, fabric.Config{Latency: 5 * time.Millisecond})
	if err := n.Start(fab); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	eng, err := reactive.NewEngine(fab, reactive.Config{
		Targets: []reactive.Target{{
			Name:     "Academic-T",
			Prefixes: []dnswire.Prefix{dnswire.MustPrefix("10.81.1.0/24")},
			DNS:      n.DNSAddr(),
		}},
		VantageICMP: dnswire.MustIPv4("198.51.100.10"),
		VantageDNS:  dnswire.MustIPv4("198.51.100.11"),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	clock.AdvanceTo(epoch.Add(18 * time.Hour))
	eng.Stop()
	res := eng.Results()

	tracks := TrackName(res, "Academic-T", "brian")
	if len(tracks) != 2 {
		names := []string{}
		for _, tr := range tracks {
			names = append(names, tr.Device)
		}
		t.Fatalf("tracks = %v, want brians-iphone and brians-mbp", names)
	}
	if tracks[0].Device != "brians-iphone" || tracks[1].Device != "brians-mbp" {
		t.Fatalf("tracks = %v, %v", tracks[0].Device, tracks[1].Device)
	}
	// The iPhone was present mid-morning.
	if !tracks[0].PresentOn(epoch.Add(10*time.Hour), epoch.Add(11*time.Hour)) {
		t.Fatal("iphone not present 10:00-11:00")
	}
	if tracks[0].PresentOn(epoch.Add(15*time.Hour), epoch.Add(16*time.Hour)) {
		t.Fatal("iphone present after leaving")
	}
	if tracks[0].UniqueIPs != 1 {
		t.Fatalf("iphone unique IPs = %d", tracks[0].UniqueIPs)
	}
	// Emma must not appear in Brian's tracks.
	for _, tr := range tracks {
		if tr.Device == "emmas-ipad" {
			t.Fatal("emma tracked as brian")
		}
	}
}

func TestEntrySeriesAndWFH(t *testing.T) {
	dates := dataset.DateRange(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2020, 6, 30, 0, 0, 0, 0, time.UTC), 1)
	s := dataset.NewCountSeries(dates)
	p := dnswire.MustPrefix("10.0.1.0/24")
	lockdown := time.Date(2020, 3, 16, 0, 0, 0, 0, time.UTC)
	for i, d := range dates {
		v := 100
		if d.After(lockdown) {
			v = 30
		}
		s.Set(p, i, v)
	}
	// A prefix outside the filter must not contribute.
	s.SetConstant(dnswire.MustPrefix("10.9.1.0/24"), 500)

	totals := EntrySeries(s, []dnswire.Prefix{dnswire.MustPrefix("10.0.0.0/16")})
	if totals.Values[0] != 100 {
		t.Fatalf("day 0 total = %v", totals.Values[0])
	}
	rep := WFH("Academic-X", totals, lockdown)
	if rep.PrePandemicMean < 99 {
		t.Fatalf("pre-pandemic mean = %v", rep.PrePandemicMean)
	}
	if rep.LockdownMean > 35 {
		t.Fatalf("lockdown mean = %v", rep.LockdownMean)
	}
}

func TestCrossover(t *testing.T) {
	dates := dataset.DateRange(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC), 1)
	edu := analysis.Series{Dates: dates, Values: make([]float64, len(dates))}
	housing := analysis.Series{Dates: dates, Values: make([]float64, len(dates))}
	cross := time.Date(2020, 3, 20, 0, 0, 0, 0, time.UTC)
	for i, d := range dates {
		if d.Before(cross) {
			edu.Values[i], housing.Values[i] = 100, 60
		} else {
			edu.Values[i], housing.Values[i] = 40, 90
		}
	}
	rep := Crossover(edu, housing, dates[0], 5)
	if !rep.Crossover.Equal(cross) {
		t.Fatalf("crossover = %v, want %v", rep.Crossover, cross)
	}
}

func TestHeistQuietestHour(t *testing.T) {
	res := &reactive.Results{Hours: map[string][]*reactive.HourCount{}}
	start := epoch // Monday
	for d := 0; d < 7; d++ {
		for h := 0; h < 24; h++ {
			activity := 100
			if h >= 2 && h <= 7 {
				activity = 10
			}
			if h == 6 {
				activity = 2
			}
			res.Hours["Academic-A"] = append(res.Hours["Academic-A"], &reactive.HourCount{
				Hour: start.AddDate(0, 0, d).Add(time.Duration(h) * time.Hour),
				ICMP: activity, RDNS: activity / 2,
			})
		}
	}
	rep := Heist(res, "Academic-A", start, start.AddDate(0, 0, 7))
	if rep.QuietestHourOfDay != 6 {
		t.Fatalf("quietest hour = %d, want 6", rep.QuietestHourOfDay)
	}
	if rep.BusiestHourOfDay == 6 {
		t.Fatal("busiest hour computed as the quietest")
	}
	if len(rep.Hours) != 7*24 {
		t.Fatalf("hours = %d", len(rep.Hours))
	}
}
