package casestudy

import (
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/reactive"
)

// mkGroup builds a closed reactive group for track tests.
func mkGroup(network, host string, ip dnswire.IPv4, from, to time.Time) *reactive.Group {
	return &reactive.Group{
		Network:   network,
		IP:        ip,
		Start:     from,
		LastAlive: to,
		FirstPTR:  dnswire.MustName(host),
		PTRSeen:   true,
	}
}

func TestGeoTrackBuildsItinerary(t *testing.T) {
	day := time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)
	libIP := dnswire.MustIPv4("10.0.1.5")
	hallIP := dnswire.MustIPv4("10.0.2.9")
	res := &reactive.Results{Groups: []*reactive.Group{
		mkGroup("Academic-A", "brians-phone.edu.campus-a.edu.", libIP,
			day.Add(9*time.Hour), day.Add(11*time.Hour)),
		mkGroup("Academic-A", "brians-phone.edu.campus-a.edu.", hallIP,
			day.Add(13*time.Hour), day.Add(15*time.Hour)),
		// A different device must not pollute the track.
		mkGroup("Academic-A", "emmas-phone.edu.campus-a.edu.", libIP,
			day.Add(9*time.Hour), day.Add(10*time.Hour)),
	}}
	buildings := map[dnswire.IPv4]string{libIP: "library", hallIP: "hall"}
	visits := GeoTrack(res, "Academic-A", "brians-phone",
		func(ip dnswire.IPv4) (string, bool) {
			b, ok := buildings[ip]
			return b, ok
		})
	if len(visits) != 2 {
		t.Fatalf("visits = %+v", visits)
	}
	if visits[0].Building != "library" || visits[1].Building != "hall" {
		t.Fatalf("buildings = %s, %s", visits[0].Building, visits[1].Building)
	}
	itinerary := DayItinerary(visits, day)
	if len(itinerary) != 2 {
		t.Fatalf("itinerary = %+v", itinerary)
	}
	if len(DayItinerary(visits, day.AddDate(0, 0, 1))) != 0 {
		t.Fatal("itinerary leaked into the next day")
	}
}

func TestGeoTrackMergesAdjacentVisits(t *testing.T) {
	day := time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)
	ip := dnswire.MustIPv4("10.0.1.5")
	res := &reactive.Results{Groups: []*reactive.Group{
		mkGroup("A", "brians-phone.x.edu.", ip, day.Add(9*time.Hour), day.Add(10*time.Hour)),
		mkGroup("A", "brians-phone.x.edu.", ip, day.Add(10*time.Hour+30*time.Minute), day.Add(12*time.Hour)),
	}}
	visits := GeoTrack(res, "A", "brians-phone",
		func(dnswire.IPv4) (string, bool) { return "library", true })
	if len(visits) != 1 {
		t.Fatalf("adjacent same-building visits not merged: %+v", visits)
	}
	if visits[0].To.Sub(visits[0].From) != 3*time.Hour {
		t.Fatalf("merged span = %v", visits[0].To.Sub(visits[0].From))
	}
}

func TestGeoTrackUnknownBuilding(t *testing.T) {
	day := time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)
	res := &reactive.Results{Groups: []*reactive.Group{
		mkGroup("A", "brians-phone.x.edu.", dnswire.MustIPv4("10.9.9.9"),
			day.Add(9*time.Hour), day.Add(10*time.Hour)),
	}}
	visits := GeoTrack(res, "A", "brians-phone",
		func(dnswire.IPv4) (string, bool) { return "", false })
	if len(visits) != 1 || visits[0].Building != "(unknown)" {
		t.Fatalf("visits = %+v", visits)
	}
}

func TestCrossNetworkTrackLinksOnlyMultiNetworkDevices(t *testing.T) {
	day := time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)
	res := &reactive.Results{Groups: []*reactive.Group{
		// brians-mbp on campus and at home: linked.
		mkGroup("Academic-A", "brians-mbp.edu.campus-a.edu.", dnswire.MustIPv4("10.0.1.5"),
			day.Add(12*time.Hour), day.Add(13*time.Hour)),
		mkGroup("ISP-A", "brians-mbp.dyn.isp-a.net.", dnswire.MustIPv4("10.8.1.9"),
			day.Add(19*time.Hour), day.Add(23*time.Hour)),
		// brians-ipad on campus only: not linked.
		mkGroup("Academic-A", "brians-ipad.edu.campus-a.edu.", dnswire.MustIPv4("10.0.1.6"),
			day.Add(9*time.Hour), day.Add(10*time.Hour)),
	}}
	linked := CrossNetworkTrack(res, "brian")
	if len(linked) != 1 {
		t.Fatalf("linked = %v", linked)
	}
	apps, ok := linked["brians-mbp"]
	if !ok || len(apps) != 2 {
		t.Fatalf("apps = %+v", apps)
	}
	if apps[0].Network != "Academic-A" || apps[1].Network != "ISP-A" {
		t.Fatalf("apps = %+v", apps)
	}
}
