package casestudy

import (
	"sort"
	"strings"
	"time"

	"rdnsprivacy/internal/analysis"
	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
)

// Store-backed variants of the Section 7 analyses: instead of re-reading
// a campaign's CSV dump (or holding a whole reactive result set in
// memory), these answer from a longitudinal history store — the same
// store cmd/rdnsd serves. The name search rides the store's inverted
// given-name index, so "find every Brian" touches only the /24s and day
// ranges where the name actually appeared.

// HistSource is the read surface the store-backed analyses need. Both
// *histstore.Store (the merged cross-writer view) and
// *histstore.WriterView (one writer's own observations) satisfy it, so
// every analysis here can be run either on the merged truth or filtered
// to a single vantage point's provenance — a multi-writer store silently
// merges otherwise, which is exactly wrong for per-vantage case studies.
type HistSource interface {
	Times() []time.Time
	Blocks() []dnswire.Prefix
	Range(p dnswire.Prefix, from, to time.Time) ([]dataset.Row, error)
	Churn(p dnswire.Prefix, from, to time.Time) ([]histstore.ChurnDay, error)
}

// NameSearcher is the optional inverted-index fast path. Only the merged
// store implements it: the index is built over merged states, so a
// record shadowed by a lower-id writer may never appear in it — a
// per-writer view must not narrow by it, and falls back to a full scan.
type NameSearcher interface {
	FindName(token string) []histstore.Posting
}

// WriterSource resolves the writer-filtered read surface: the view of
// one vantage's own records. It is the one-liner that threads writer
// provenance through every analysis in this file:
//
//	v, _ := casestudy.WriterSource(st, "vantage-b")
//	tracks, _ := casestudy.TrackNameFromStore(v, prefix, "brian")
func WriterSource(st *histstore.Store, writer string) (HistSource, error) {
	return st.WriterView(writer)
}

// EntrySeriesFromStore builds the daily total entry series (the Figure
// 9/10 building block) from a history source, restricted to addresses
// within any of prefixes (nil means everything). One value per source
// snapshot, aligned with the source's instants. Pass a WriterSource to
// count only one vantage's observations.
func EntrySeriesFromStore(st HistSource, prefixes []dnswire.Prefix) (analysis.Series, error) {
	times := st.Times()
	out := analysis.Series{
		Dates:  times,
		Values: make([]float64, len(times)),
	}
	if len(times) == 0 {
		return out, nil
	}
	include := func(ip dnswire.IPv4) bool {
		if prefixes == nil {
			return true
		}
		for _, q := range prefixes {
			if q.Contains(ip) {
				return true
			}
		}
		return false
	}
	index := make(map[time.Time]int, len(times))
	for i, t := range times {
		index[t] = i
	}
	rows, err := st.Range(dnswire.Prefix{}, times[0], times[len(times)-1])
	if err != nil {
		return out, err
	}
	for _, r := range rows {
		if include(r.IP) {
			out.Values[index[r.Date]]++
		}
	}
	return out, nil
}

// TrackNameFromStore builds the Figure 8 device tracks from a history
// source: every device hostname whose first label carries the possessive
// form of givenName ("brian" matches brians-iphone, brian-mbp, ...),
// restricted to addresses within p (the zero Prefix means everywhere).
// When the source carries the inverted name index (the merged store), it
// narrows the scan to the /24s and day ranges where the name was
// present; writer-filtered sources scan their own blocks in full.
// Presence intervals are maximal runs of consecutive snapshots with the
// device on one address.
func TrackNameFromStore(st HistSource, p dnswire.Prefix, givenName string) ([]*DeviceTrack, error) {
	match := strings.ToLower(givenName) + "s-"
	alt := strings.ToLower(givenName) + "-"
	times := st.Times()
	if len(times) == 0 {
		return nil, nil
	}
	index := make(map[time.Time]int, len(times))
	for i, t := range times {
		index[t] = i
	}

	// The index narrows to (/24, interval) postings; dedupe overlapping
	// postings per /24 before ranging. Without an index, every block the
	// source knows is a full-range window.
	type window struct{ from, to time.Time }
	windows := make(map[dnswire.Prefix][]window)
	if searcher, ok := st.(NameSearcher); ok {
		for _, post := range searcher.FindName(strings.ToLower(givenName)) {
			if !p.Overlaps(post.Prefix) && p != (dnswire.Prefix{}) {
				continue
			}
			windows[post.Prefix] = append(windows[post.Prefix], window{post.First, post.Last})
		}
	} else {
		for _, block := range st.Blocks() {
			if !p.Overlaps(block) && p != (dnswire.Prefix{}) {
				continue
			}
			windows[block] = append(windows[block], window{times[0], times[len(times)-1]})
		}
	}

	// presence[device][ip] marks the snapshot indices the device held ip.
	presence := make(map[string]map[dnswire.IPv4][]bool)
	for block, ws := range windows {
		for _, w := range ws {
			rows, err := st.Range(block, w.from, w.to)
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				if p != (dnswire.Prefix{}) && !p.Contains(r.IP) {
					continue
				}
				labels := r.PTR.Labels()
				if len(labels) == 0 {
					continue
				}
				device := labels[0]
				if !strings.HasPrefix(device, match) && !strings.HasPrefix(device, alt) {
					continue
				}
				byIP := presence[device]
				if byIP == nil {
					byIP = make(map[dnswire.IPv4][]bool)
					presence[device] = byIP
				}
				days := byIP[r.IP]
				if days == nil {
					days = make([]bool, len(times))
					byIP[r.IP] = days
				}
				days[index[r.Date]] = true
			}
		}
	}

	out := make([]*DeviceTrack, 0, len(presence))
	for device, byIP := range presence {
		tr := &DeviceTrack{Device: device, UniqueIPs: len(byIP)}
		for ip, days := range byIP {
			for i := 0; i < len(days); i++ {
				if !days[i] {
					continue
				}
				j := i
				for j+1 < len(days) && days[j+1] {
					j++
				}
				tr.Intervals = append(tr.Intervals, Presence{
					Device: device, IP: ip, From: times[i], To: times[j],
				})
				i = j
			}
		}
		sort.Slice(tr.Intervals, func(i, j int) bool {
			if !tr.Intervals[i].From.Equal(tr.Intervals[j].From) {
				return tr.Intervals[i].From.Before(tr.Intervals[j].From)
			}
			return tr.Intervals[i].IP.Uint32() < tr.Intervals[j].IP.Uint32()
		})
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out, nil
}

// ChurnSeriesFromStore converts the source's per-snapshot churn within a
// prefix into an analysis.Series of total change counts — the dynamicity
// view (Section 4) straight from the log's deltas. Through a
// WriterSource, churn is diffed against that writer's own baseline, so
// another vantage's flicker does not pollute the series.
func ChurnSeriesFromStore(st HistSource, p dnswire.Prefix) (analysis.Series, error) {
	times := st.Times()
	if len(times) == 0 {
		return analysis.Series{}, nil
	}
	days, err := st.Churn(p, times[0], times[len(times)-1])
	if err != nil {
		return analysis.Series{}, err
	}
	out := analysis.Series{
		Dates:  make([]time.Time, len(days)),
		Values: make([]float64, len(days)),
	}
	for i, d := range days {
		out.Dates[i] = d.Date
		out.Values[i] = float64(d.Added + d.Removed + d.Changed)
	}
	return out, nil
}
