package casestudy

import (
	"sort"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/reactive"
)

// This file implements the two tracking extensions the paper sketches
// beyond its three case studies:
//
//   - Geotemporal (building-level) tracking (Section 8): "given recent
//     findings that hostnames can encode building locations, it appears
//     feasible that for some networks, rDNS data can be used to
//     geotemporally track users at the building level." With
//     subnet-to-building knowledge, the IP address a device's PTR appears
//     under IS its location.
//   - Cross-network tracking (Section 1): "might even be able to track
//     clients across multiple networks." The same device name surfacing in
//     two networks' reverse zones links them — e.g. a phone on campus by
//     day and on its home ISP line at night ties a campus user to a
//     residential address.

// Visit is one building stay of a tracked device.
type Visit struct {
	Building string
	IP       dnswire.IPv4
	From, To time.Time
}

// GeoTrack follows one device hostname across buildings within a network,
// using a subnet-to-building oracle (ground truth in the simulation; in
// the wild, inferred from router hostnames or a-posteriori knowledge, as
// the paper's Academic-C analysis was). Returns visits in time order.
func GeoTrack(res *reactive.Results, network, device string, buildingFor func(dnswire.IPv4) (string, bool)) []Visit {
	var visits []Visit
	for _, g := range res.Groups {
		if g.Network != network || g.FirstPTR == "" {
			continue
		}
		labels := g.FirstPTR.Labels()
		if len(labels) == 0 || labels[0] != device {
			continue
		}
		building, ok := buildingFor(g.IP)
		if !ok {
			building = "(unknown)"
		}
		end := g.LastAlive
		if end.Before(g.Start) {
			end = g.Start
		}
		visits = append(visits, Visit{
			Building: building, IP: g.IP, From: g.Start, To: end,
		})
	}
	sort.Slice(visits, func(i, j int) bool { return visits[i].From.Before(visits[j].From) })
	return mergeVisits(visits)
}

// mergeVisits collapses consecutive visits to the same building.
func mergeVisits(in []Visit) []Visit {
	if len(in) <= 1 {
		return in
	}
	out := in[:1]
	for _, v := range in[1:] {
		last := &out[len(out)-1]
		if v.Building == last.Building && v.IP == last.IP && !v.From.After(last.To.Add(time.Hour)) {
			if v.To.After(last.To) {
				last.To = v.To
			}
			continue
		}
		out = append(out, v)
	}
	return out
}

// DayItinerary filters visits to one local day, producing the subject's
// movement schedule for that day.
func DayItinerary(visits []Visit, day time.Time) []Visit {
	next := day.AddDate(0, 0, 1)
	var out []Visit
	for _, v := range visits {
		if v.From.Before(next) && v.To.After(day) {
			out = append(out, v)
		}
	}
	return out
}

// NetworkAppearance summarizes one device's presence in one network.
type NetworkAppearance struct {
	Network   string
	Device    string
	Sessions  int
	FirstSeen time.Time
	LastSeen  time.Time
}

// CrossNetworkTrack finds device hostnames carrying a given name that
// appear in MORE than one of the measured networks, linking the networks
// through the device. The result maps device name to its per-network
// appearances, sorted by network name.
func CrossNetworkTrack(res *reactive.Results, givenName string) map[string][]NetworkAppearance {
	networks := map[string]bool{}
	for _, g := range res.Groups {
		networks[g.Network] = true
	}
	perDevice := map[string]map[string]*NetworkAppearance{}
	for net := range networks {
		for _, tr := range TrackName(res, net, givenName) {
			if len(tr.Intervals) == 0 {
				continue
			}
			byNet, ok := perDevice[tr.Device]
			if !ok {
				byNet = map[string]*NetworkAppearance{}
				perDevice[tr.Device] = byNet
			}
			byNet[net] = &NetworkAppearance{
				Network:   net,
				Device:    tr.Device,
				Sessions:  len(tr.Intervals),
				FirstSeen: tr.Intervals[0].From,
				LastSeen:  tr.Intervals[len(tr.Intervals)-1].To,
			}
		}
	}
	out := map[string][]NetworkAppearance{}
	for device, byNet := range perDevice {
		if len(byNet) < 2 {
			continue // visible in one network only: no linkage
		}
		var apps []NetworkAppearance
		for _, a := range byNet {
			apps = append(apps, *a)
		}
		sort.Slice(apps, func(i, j int) bool { return apps[i].Network < apps[j].Network })
		out[device] = apps
	}
	return out
}
