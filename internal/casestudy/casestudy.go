// Package casestudy implements the three Section 7 analyses:
//
//   - Life of Brian(s) (§7.1, Figure 8): track every device whose published
//     hostname carries a target given name across weeks of supplemental
//     measurement, building a per-device weekly presence raster.
//   - Working from home (§7.2, Figures 9 and 10): longitudinal
//     percent-of-maximum rDNS entry counts per network, revealing COVID-19
//     lockdown phases and the education/housing crossover.
//   - When to stage a heist (§7.3, Figure 11): hourly activity profiles
//     from the supplemental measurement, locating the quietest hour.
package casestudy

import (
	"sort"
	"strings"
	"time"

	"rdnsprivacy/internal/analysis"
	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/reactive"
)

// Presence is one activity interval of one tracked device.
type Presence struct {
	// Device is the hostname's first label (brians-iphone).
	Device string
	// IP is the address used during the interval; the paper colour-codes
	// these.
	IP dnswire.IPv4
	// From and To delimit the interval.
	From, To time.Time
}

// DeviceTrack aggregates the presence history of one device hostname.
type DeviceTrack struct {
	Device    string
	Intervals []Presence
	// UniqueIPs is how many distinct addresses the device appeared on.
	UniqueIPs int
}

// TrackName builds Figure 8: it scans supplemental groups for hostnames
// whose first label starts with the possessive form of the given name
// ("brian" matches brians-iphone, brians-mbp, ...), restricted to one
// network, and returns one track per device hostname, sorted by name.
func TrackName(res *reactive.Results, network, givenName string) []*DeviceTrack {
	prefix := strings.ToLower(givenName) + "s-"
	alt := strings.ToLower(givenName) + "-"
	tracks := make(map[string]*DeviceTrack)
	for _, g := range res.Groups {
		if g.Network != network || g.FirstPTR == "" {
			continue
		}
		labels := g.FirstPTR.Labels()
		if len(labels) == 0 {
			continue
		}
		device := labels[0]
		if !strings.HasPrefix(device, prefix) && !strings.HasPrefix(device, alt) {
			continue
		}
		tr, ok := tracks[device]
		if !ok {
			tr = &DeviceTrack{Device: device}
			tracks[device] = tr
		}
		end := g.LastAlive
		if end.Before(g.Start) {
			end = g.Start
		}
		tr.Intervals = append(tr.Intervals, Presence{
			Device: device, IP: g.IP, From: g.Start, To: end,
		})
	}
	out := make([]*DeviceTrack, 0, len(tracks))
	for _, tr := range tracks {
		sort.Slice(tr.Intervals, func(i, j int) bool {
			return tr.Intervals[i].From.Before(tr.Intervals[j].From)
		})
		ips := make(map[dnswire.IPv4]bool)
		for _, iv := range tr.Intervals {
			ips[iv.IP] = true
		}
		tr.UniqueIPs = len(ips)
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}

// PresentOn reports whether the track has any presence within [from, to).
func (t *DeviceTrack) PresentOn(from, to time.Time) bool {
	for _, iv := range t.Intervals {
		if iv.From.Before(to) && iv.To.After(from) {
			return true
		}
	}
	return false
}

// FirstSeen returns the start of the earliest interval.
func (t *DeviceTrack) FirstSeen() time.Time {
	if len(t.Intervals) == 0 {
		return time.Time{}
	}
	return t.Intervals[0].From
}

// EntrySeries converts a count series restricted to a set of /24s into a
// daily total series — the building block of Figures 9 and 10.
func EntrySeries(s *dataset.CountSeries, prefixes []dnswire.Prefix) analysis.Series {
	include := func(p dnswire.Prefix) bool {
		if prefixes == nil {
			return true
		}
		for _, q := range prefixes {
			if q.Contains(p.Addr) {
				return true
			}
		}
		return false
	}
	out := analysis.Series{
		Dates:  s.Dates,
		Values: make([]float64, len(s.Dates)),
	}
	for p, row := range s.Counts {
		if !include(p) {
			continue
		}
		for i, c := range row {
			out.Values[i] += float64(c)
		}
	}
	return out
}

// WFHReport is the Figure 9 product for one network.
type WFHReport struct {
	Network string
	// PercentOfMax is the normalized daily entry series.
	PercentOfMax analysis.Series
	// PrePandemicMean and LockdownMean summarize the drop: mean percent
	// before March 2020 and in April-May 2020 (or, for enterprises whose
	// mandate lands in 2021, April-May 2021).
	PrePandemicMean float64
	LockdownMean    float64
}

// WFH computes a Figure 9 row from a network's daily totals.
func WFH(network string, totals analysis.Series, lockdownStart time.Time) WFHReport {
	pm := totals.PercentOfMax()
	return WFHReport{
		Network:         network,
		PercentOfMax:    pm,
		PrePandemicMean: pm.MeanBetween(pm.Dates[0], lockdownStart),
		LockdownMean:    pm.MeanBetween(lockdownStart.AddDate(0, 0, 14), lockdownStart.AddDate(0, 0, 75)),
	}
}

// CrossoverReport is the Figure 10 product: education vs housing series and
// the detected crossover date.
type CrossoverReport struct {
	Education, Housing analysis.Series
	// Crossover is the first date education entries drop to or below
	// housing entries (in percent-of-max terms), the March-2020 signal.
	Crossover time.Time
}

// Crossover computes the Figure 10 analysis. minRun is how many
// consecutive samples education must stay at or below housing before the
// crossover counts (this keeps one-holiday dips like Carnaval from
// registering as the lockdown).
func Crossover(edu, housing analysis.Series, searchFrom time.Time, minRun int) CrossoverReport {
	e, h := edu.PercentOfMax(), housing.PercentOfMax()
	return CrossoverReport{
		Education: e,
		Housing:   h,
		Crossover: analysis.CrossoverAfter(e, h, searchFrom, minRun),
	}
}

// HeistReport is the Figure 11 product.
type HeistReport struct {
	Network string
	// Hours is the raw hourly activity over the window.
	Hours []*reactive.HourCount
	// QuietestHourOfDay is the local hour (0-23) with the least average
	// rDNS-observed activity on weekdays — the paper's answer is around
	// 6 AM.
	QuietestHourOfDay int
	// BusiestHourOfDay is the opposite end.
	BusiestHourOfDay int
}

// Heist computes the Figure 11 analysis over one week of supplemental
// hourly counts for a network.
func Heist(res *reactive.Results, network string, from, to time.Time) HeistReport {
	rep := HeistReport{Network: network}
	sums := make([]float64, 24)
	counts := make([]int, 24)
	for _, hc := range res.Hours[network] {
		if hc.Hour.Before(from) || !hc.Hour.Before(to) {
			continue
		}
		rep.Hours = append(rep.Hours, hc)
		wd := hc.Hour.Weekday()
		if wd == time.Saturday || wd == time.Sunday {
			continue
		}
		h := hc.Hour.Hour()
		sums[h] += float64(hc.ICMP + hc.RDNS)
		counts[h]++
	}
	sort.Slice(rep.Hours, func(i, j int) bool { return rep.Hours[i].Hour.Before(rep.Hours[j].Hour) })
	quiet, busy := 0, 0
	for h := 1; h < 24; h++ {
		if avg(sums, counts, h) < avg(sums, counts, quiet) {
			quiet = h
		}
		if avg(sums, counts, h) > avg(sums, counts, busy) {
			busy = h
		}
	}
	rep.QuietestHourOfDay = quiet
	rep.BusiestHourOfDay = busy
	return rep
}

func avg(sums []float64, counts []int, h int) float64 {
	if counts[h] == 0 {
		return 0
	}
	return sums[h] / float64(counts[h])
}
