package casestudy

import (
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/vantage"
)

// CorroboratedPoint is one day of an entry series annotated with the
// day's cross-vantage evidence: the reference transitions that happened
// and how many vantage points confirmed each. A Section 7 narrative
// built on a day with a low MinScore rests on records possibly one
// vantage's artifact — exactly what the annotation surfaces.
type CorroboratedPoint struct {
	Date time.Time `json:"date"`
	// Entries is the day's record count within the requested prefixes.
	Entries int `json:"entries"`
	// Transitions are the day's reference PTR changes within the
	// requested prefixes, each carrying its corroborating vantages.
	Transitions []vantage.Transition `json:"transitions,omitempty"`
	// MinScore is the weakest corroboration among the day's transitions
	// (1 when the day had none): the day's trust floor.
	MinScore float64 `json:"min_score"`
}

// CorroboratedEntrySeries builds the daily entry series over a
// multi-vantage store, annotated day by day with which vantages
// corroborate each PTR transition (nil prefixes means everywhere). It
// is EntrySeriesFromStore for stores several vantage points wrote: the
// counts come from the merged view, the annotations from the
// disagreement analyzer's per-change scores.
func CorroboratedEntrySeries(st *histstore.Store, prefixes []dnswire.Prefix, cfg vantage.Config) ([]CorroboratedPoint, error) {
	trs, err := vantage.Transitions(st, dnswire.Prefix{}, cfg)
	if err != nil {
		return nil, err
	}
	include := func(ip dnswire.IPv4) bool {
		if prefixes == nil {
			return true
		}
		for _, q := range prefixes {
			if q.Contains(ip) {
				return true
			}
		}
		return false
	}
	// The merged timeline carries one instant per (day, vantage) when
	// vantages snapshot the same moment; the day axis (and the per-day
	// entry count) needs them collapsed — count unique addresses per
	// distinct instant, not rows.
	var days []time.Time
	for _, t := range st.Times() {
		if len(days) == 0 || t.After(days[len(days)-1]) {
			days = append(days, t)
		}
	}
	out := make([]CorroboratedPoint, len(days))
	index := make(map[time.Time]int, len(days))
	for i, d := range days {
		out[i] = CorroboratedPoint{Date: d, MinScore: 1}
		index[d] = i
	}
	if len(days) == 0 {
		return out, nil
	}
	rows, err := st.Range(dnswire.Prefix{}, days[0], days[len(days)-1])
	if err != nil {
		return nil, err
	}
	counted := make(map[time.Time]map[dnswire.IPv4]bool, len(days))
	for _, r := range rows {
		if !include(r.IP) {
			continue
		}
		seen := counted[r.Date]
		if seen == nil {
			seen = make(map[dnswire.IPv4]bool)
			counted[r.Date] = seen
		}
		if !seen[r.IP] {
			seen[r.IP] = true
			out[index[r.Date]].Entries++
		}
	}
	for _, tr := range trs {
		if !include(tr.IP) {
			continue
		}
		i, ok := index[tr.Date]
		if !ok {
			continue
		}
		out[i].Transitions = append(out[i].Transitions, tr)
		if tr.Score < out[i].MinScore {
			out[i].MinScore = tr.Score
		}
	}
	return out, nil
}
