package casestudy

import (
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/vantage"
)

// corroborationFixture builds a three-vantage store with one engineered
// partial-corroboration event: every vantage holds brians-iphone on .7
// throughout, .9 flips host-a → host-b on day 2 at va and vb, while vc
// keeps serving the stale host-a to the end.
func corroborationFixture(t *testing.T) (*histstore.Store, []time.Time) {
	t.Helper()
	dir := t.TempDir()
	start := time.Date(2021, 5, 1, 13, 0, 0, 0, time.UTC)
	times := make([]time.Time, 4)
	for i := range times {
		times[i] = start.AddDate(0, 0, i)
	}
	writers := []string{"va", "vb", "vc"}
	stores := make([]*histstore.Store, len(writers))
	for i, w := range writers {
		st, err := histstore.Open(dir, histstore.WithWriter(w))
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
	}
	for day, at := range times {
		for i, w := range writers {
			name := "host-a.dyn.example.net"
			if day >= 2 && w != "vc" {
				name = "host-b.dyn.example.net"
			}
			recs := scanengine.RecordSet{
				dnswire.MustIPv4("10.2.1.7"): dnswire.MustName("brians-iphone.lan.example.net"),
				dnswire.MustIPv4("10.2.1.9"): dnswire.MustName(name),
			}
			if err := stores[i].Append(at, recs); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, st := range stores {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	ro, err := histstore.Open(dir, histstore.WithReadOnly(), histstore.WithCache(64))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ro.Close() })
	return ro, times
}

// TestCorroboratedEntrySeries checks the annotated Figure 9/10 building
// block: entry counts from the merged view, per-day transitions with
// vantage attribution, and the day's MinScore trust floor.
func TestCorroboratedEntrySeries(t *testing.T) {
	st, times := corroborationFixture(t)
	points, err := CorroboratedEntrySeries(st, nil, vantage.Config{LagWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4", len(points))
	}
	for i, pt := range points {
		if !pt.Date.Equal(times[i]) {
			t.Fatalf("point %d date %v, want %v", i, pt.Date, times[i])
		}
		if pt.Entries != 2 {
			t.Fatalf("point %d entries = %d, want 2", i, pt.Entries)
		}
	}
	// Day 0: the two initial adds, every vantage on board.
	if len(points[0].Transitions) != 2 || points[0].MinScore != 1 {
		t.Fatalf("day 0 = %+v, want 2 fully corroborated adds", points[0])
	}
	// Day 2: the engineered flip — ref follows the va/vb plurality, vc
	// never confirms, so the score (and the day's floor) is 2/3.
	if len(points[2].Transitions) != 1 {
		t.Fatalf("day 2 transitions = %+v, want 1", points[2].Transitions)
	}
	tr := points[2].Transitions[0]
	if tr.Kind != "changed" || tr.IP != dnswire.MustIPv4("10.2.1.9") {
		t.Fatalf("day 2 transition = %+v", tr)
	}
	if tr.Old != dnswire.MustName("host-a.dyn.example.net") ||
		tr.New != dnswire.MustName("host-b.dyn.example.net") {
		t.Fatalf("day 2 names = %q -> %q", tr.Old, tr.New)
	}
	if len(tr.CorroboratedBy) != 2 || tr.CorroboratedBy[0] != "va" || tr.CorroboratedBy[1] != "vb" {
		t.Fatalf("day 2 corroborators = %v, want [va vb]", tr.CorroboratedBy)
	}
	if want := 2.0 / 3.0; tr.Score != want || points[2].MinScore != want {
		t.Fatalf("day 2 score = %v floor %v, want %v", tr.Score, points[2].MinScore, want)
	}
	// Quiet days carry no transitions and a full trust floor.
	for _, i := range []int{1, 3} {
		if len(points[i].Transitions) != 0 || points[i].MinScore != 1 {
			t.Fatalf("day %d = %+v, want quiet", i, points[i])
		}
	}
	// Prefix restriction: a block with no records yields empty days.
	empty, err := CorroboratedEntrySeries(st, []dnswire.Prefix{dnswire.MustPrefix("10.9.9.0/24")}, vantage.Config{LagWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range empty {
		if pt.Entries != 0 || len(pt.Transitions) != 0 {
			t.Fatalf("restricted day %d = %+v, want empty", i, pt)
		}
	}
}

// TestWriterSource checks the writer-filter one-liner: the same analyses
// that run on the merged store run on one vantage's own observations,
// and the filtered result reflects only that writer's view.
func TestWriterSource(t *testing.T) {
	st, times := corroborationFixture(t)
	vc, err := WriterSource(st, "vc")
	if err != nil {
		t.Fatal(err)
	}
	// vc never saw the host-b flip: its tracks for the dynamic block end
	// on host-a, and its entry series still counts both addresses.
	series, err := EntrySeriesFromStore(vc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Dates) != 4 {
		t.Fatalf("writer series days = %d, want 4", len(series.Dates))
	}
	for i, v := range series.Values {
		if v != 2 {
			t.Fatalf("writer series day %d = %v, want 2", i, v)
		}
	}
	tracks, err := TrackNameFromStore(vc, dnswire.Prefix{}, "brian")
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) != 1 || tracks[0].Device != "brians-iphone" {
		t.Fatalf("writer tracks = %+v", tracks)
	}
	if fs := tracks[0].FirstSeen(); !fs.Equal(times[0]) {
		t.Fatalf("first seen = %v, want %v", fs, times[0])
	}
	if (&DeviceTrack{}).FirstSeen() != (time.Time{}) {
		t.Fatal("empty track FirstSeen must be zero")
	}
	if _, err := WriterSource(st, "nope"); err == nil {
		t.Fatal("unknown writer must error")
	}
}
