package casestudy

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/scanengine"
)

// storeFixture appends a 14-day synthetic campaign: brians-iphone on
// 10.1.1.7 for days 0-4, migrating to 10.1.2.7 for days 8-13 (a DHCP
// move with a gap), brian-mbp on 10.1.1.8 throughout, and background
// hosts that come and go.
func storeFixture(t *testing.T) (*histstore.Store, []time.Time) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "hist.log")
	st, err := histstore.Open(path, histstore.WithCache(64))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	start := time.Date(2020, 2, 1, 13, 0, 0, 0, time.UTC)
	var times []time.Time
	for day := 0; day < 14; day++ {
		recs := scanengine.RecordSet{
			dnswire.MustIPv4("10.1.1.8"): dnswire.MustName("brian-mbp.staff.example.edu"),
		}
		if day < 5 {
			recs[dnswire.MustIPv4("10.1.1.7")] = dnswire.MustName("brians-iphone.staff.example.edu")
		}
		if day >= 8 {
			recs[dnswire.MustIPv4("10.1.2.7")] = dnswire.MustName("brians-iphone.staff.example.edu")
		}
		// Background churn outside the tracked name.
		for i := 0; i < 3+day%2; i++ {
			ip := dnswire.MustIPv4(fmt.Sprintf("10.1.3.%d", 10+i))
			recs[ip] = dnswire.MustName(fmt.Sprintf("host-%d.dyn.example.edu", i))
		}
		d := start.AddDate(0, 0, day)
		if err := st.Append(d, recs); err != nil {
			t.Fatal(err)
		}
		times = append(times, d)
	}
	return st, times
}

func TestTrackNameFromStore(t *testing.T) {
	st, times := storeFixture(t)
	tracks, err := TrackNameFromStore(st, dnswire.MustPrefix("10.1.0.0/16"), "Brian")
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) != 2 {
		t.Fatalf("%d tracks, want 2 (brian-mbp, brians-iphone)", len(tracks))
	}
	mbp, iphone := tracks[0], tracks[1]
	if mbp.Device != "brian-mbp" || iphone.Device != "brians-iphone" {
		t.Fatalf("devices: %q, %q", mbp.Device, iphone.Device)
	}
	if mbp.UniqueIPs != 1 || len(mbp.Intervals) != 1 {
		t.Fatalf("brian-mbp: %+v", mbp)
	}
	if !mbp.Intervals[0].From.Equal(times[0]) || !mbp.Intervals[0].To.Equal(times[13]) {
		t.Fatalf("brian-mbp interval: %+v", mbp.Intervals[0])
	}
	// The iPhone: two intervals, two addresses, with the day 5-7 gap.
	if iphone.UniqueIPs != 2 || len(iphone.Intervals) != 2 {
		t.Fatalf("brians-iphone: %+v", iphone)
	}
	first, second := iphone.Intervals[0], iphone.Intervals[1]
	if first.IP != dnswire.MustIPv4("10.1.1.7") || !first.From.Equal(times[0]) || !first.To.Equal(times[4]) {
		t.Fatalf("first interval: %+v", first)
	}
	if second.IP != dnswire.MustIPv4("10.1.2.7") || !second.From.Equal(times[8]) || !second.To.Equal(times[13]) {
		t.Fatalf("second interval: %+v", second)
	}
	// PresentOn must agree with the raster the intervals imply.
	if iphone.PresentOn(times[5], times[7]) {
		t.Fatal("iPhone present during the gap")
	}
	if !iphone.PresentOn(times[8], times[9]) {
		t.Fatal("iPhone absent after the move")
	}

	// Restricting to the first /24 drops the post-move interval.
	narrow, err := TrackNameFromStore(st, dnswire.MustPrefix("10.1.1.0/24"), "brian")
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range narrow {
		for _, iv := range tr.Intervals {
			if !dnswire.MustPrefix("10.1.1.0/24").Contains(iv.IP) {
				t.Fatalf("restricted track leaked %s", iv.IP)
			}
		}
	}

	// An unknown name yields nothing.
	none, err := TrackNameFromStore(st, dnswire.Prefix{}, "zelda")
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("tracks for unknown name: %+v", none)
	}
}

// TestEntrySeriesFromStoreMatchesCountSeries pins the store-backed series
// to the CSV-era EntrySeries: both paths over the same history must
// produce identical totals.
func TestEntrySeriesFromStoreMatchesCountSeries(t *testing.T) {
	st, times := storeFixture(t)

	// Rebuild the equivalent CountSeries via Range (independently checked
	// against brute force in the histstore tests).
	series := dataset.NewCountSeries(times)
	rows, err := st.Range(dnswire.Prefix{}, times[0], times[13])
	if err != nil {
		t.Fatal(err)
	}
	idx := make(map[time.Time]int)
	for i, d := range times {
		idx[d] = i
	}
	for _, r := range rows {
		series.Add(r.IP.Slash24(), idx[r.Date], 1)
	}

	for _, prefixes := range [][]dnswire.Prefix{
		nil,
		{dnswire.MustPrefix("10.1.1.0/24")},
		{dnswire.MustPrefix("10.1.1.0/24"), dnswire.MustPrefix("10.1.3.0/24")},
	} {
		fromStore, err := EntrySeriesFromStore(st, prefixes)
		if err != nil {
			t.Fatal(err)
		}
		fromCounts := EntrySeries(series, prefixes)
		if len(fromStore.Values) != len(fromCounts.Values) {
			t.Fatalf("prefixes %v: %d values vs %d", prefixes, len(fromStore.Values), len(fromCounts.Values))
		}
		for i := range fromStore.Values {
			if fromStore.Values[i] != fromCounts.Values[i] {
				t.Fatalf("prefixes %v day %d: store %v, counts %v",
					prefixes, i, fromStore.Values[i], fromCounts.Values[i])
			}
		}
	}
}

func TestChurnSeriesFromStore(t *testing.T) {
	st, times := storeFixture(t)
	series, err := ChurnSeriesFromStore(st, dnswire.MustPrefix("10.1.1.0/24"))
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Dates) != 13 { // days 1..13
		t.Fatalf("%d churn days, want 13", len(series.Dates))
	}
	// Day 5: brians-iphone leaves 10.1.1.7 — one removal in this /24.
	if !series.Dates[4].Equal(times[5]) || series.Values[4] != 1 {
		t.Fatalf("day-5 churn: %s = %v", series.Dates[4], series.Values[4])
	}
	// Day 8's move lands in 10.1.2.0/24, invisible here.
	if series.Values[7] != 0 {
		t.Fatalf("day-8 churn in wrong /24: %v", series.Values[7])
	}
}

// TestStoreBackedEmptyStore pins the empty-history contracts: every
// store-backed analysis degrades to an empty result, not an error.
func TestStoreBackedEmptyStore(t *testing.T) {
	st, err := histstore.Open(filepath.Join(t.TempDir(), "empty.hist"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	series, err := EntrySeriesFromStore(st, nil)
	if err != nil || len(series.Dates) != 0 {
		t.Fatalf("entry series: %+v, %v", series, err)
	}
	tracks, err := TrackNameFromStore(st, dnswire.Prefix{}, "brian")
	if err != nil || tracks != nil {
		t.Fatalf("tracks: %+v, %v", tracks, err)
	}
	churn, err := ChurnSeriesFromStore(st, dnswire.Prefix{})
	if err != nil || len(churn.Dates) != 0 {
		t.Fatalf("churn: %+v, %v", churn, err)
	}
}

// TestStoreBackedClosedStore pins error propagation from a dead store.
func TestStoreBackedClosedStore(t *testing.T) {
	st, _ := storeFixture(t)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := EntrySeriesFromStore(st, nil); err == nil {
		t.Fatal("entry series from a closed store")
	}
	if _, err := ChurnSeriesFromStore(st, dnswire.Prefix{}); err == nil {
		t.Fatal("churn from a closed store")
	}
	if _, err := TrackNameFromStore(st, dnswire.Prefix{}, "brian"); err == nil {
		t.Fatal("tracks from a closed store")
	}
}
