// Package dhcpwire implements the DHCPv4 wire format of RFC 2131 with the
// options relevant to this study: Host Name (option 12, RFC 2132 §3.14) and
// Client FQDN (option 81, RFC 4702) — the two client-supplied identifiers
// whose carry-over into the global DNS the paper investigates — plus the
// protocol plumbing options (message type, requested address, lease time,
// server identifier, client identifier).
//
// Every DHCP exchange in the simulation is a real encoded packet that
// passes through this codec, so the leak path under study (client sends
// "Brians-iPhone" in option 12 → server publishes it in a PTR record) is
// exercised at the wire level, byte for byte.
package dhcpwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"rdnsprivacy/internal/dnswire"
)

// MessageType is the DHCP message type (option 53).
type MessageType uint8

// DHCP message types (RFC 2131 §3.1).
const (
	Discover MessageType = 1
	Offer    MessageType = 2
	Request  MessageType = 3
	Decline  MessageType = 4
	ACK      MessageType = 5
	NAK      MessageType = 6
	Release  MessageType = 7
	Inform   MessageType = 8
)

// String returns the conventional mnemonic.
func (t MessageType) String() string {
	switch t {
	case Discover:
		return "DHCPDISCOVER"
	case Offer:
		return "DHCPOFFER"
	case Request:
		return "DHCPREQUEST"
	case Decline:
		return "DHCPDECLINE"
	case ACK:
		return "DHCPACK"
	case NAK:
		return "DHCPNAK"
	case Release:
		return "DHCPRELEASE"
	case Inform:
		return "DHCPINFORM"
	default:
		return fmt.Sprintf("DHCPTYPE%d", uint8(t))
	}
}

// Option codes used by this implementation.
const (
	OptPad             = 0
	OptHostName        = 12 // RFC 2132 §3.14: the client's Host Name
	OptRequestedIP     = 50
	OptLeaseTime       = 51
	OptMessageType     = 53
	OptServerID        = 54
	OptClientID        = 61
	OptClientFQDN      = 81 // RFC 4702: Client Fully Qualified Domain Name
	OptEnd             = 255
	maxOptionDataOctet = 255
)

// Op codes for the fixed header.
const (
	opBootRequest = 1
	opBootReply   = 2
)

// magicCookie introduces the options field (RFC 2131 §3).
var magicCookie = [4]byte{99, 130, 83, 99}

// HardwareAddr is a 6-octet MAC address.
type HardwareAddr [6]byte

// String returns colon-separated hex.
func (h HardwareAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", h[0], h[1], h[2], h[3], h[4], h[5])
}

// FQDNFlags is the flags octet of the Client FQDN option (RFC 4702 §2.1).
type FQDNFlags uint8

// Client FQDN flag bits.
const (
	// FQDNServerUpdates (S): the client asks the server to perform the
	// A-record update.
	FQDNServerUpdates FQDNFlags = 1 << 0
	// FQDNOverride (O): server override of the client's S preference.
	FQDNOverride FQDNFlags = 1 << 1
	// FQDNNoUpdate (N): the client asks the server NOT to update DNS at
	// all. RFC 7844 (anonymity profiles) recommends clients avoid
	// sending identifying FQDNs; a set N bit is the in-protocol way to
	// signal "do not publish me".
	FQDNNoUpdate FQDNFlags = 1 << 3
	// FQDNEncodingWire (E): the domain name is in DNS wire encoding.
	FQDNEncodingWire FQDNFlags = 1 << 2
)

// ClientFQDN is the decoded Client FQDN option.
type ClientFQDN struct {
	Flags FQDNFlags
	// Name is the client's fully qualified (or partial) domain name.
	Name string
}

// Message is a decoded DHCPv4 message.
type Message struct {
	// BootReply distinguishes server messages (true) from client ones.
	BootReply bool
	// XID is the transaction ID chosen by the client.
	XID uint32
	// Secs is seconds elapsed since the client began acquisition.
	Secs uint16
	// Broadcast is the broadcast flag bit.
	Broadcast bool
	// CIAddr is the client's current address (renewals).
	CIAddr dnswire.IPv4
	// YIAddr is "your address": the address offered/assigned.
	YIAddr dnswire.IPv4
	// SIAddr is the next server address.
	SIAddr dnswire.IPv4
	// GIAddr is the relay agent address.
	GIAddr dnswire.IPv4
	// CHAddr is the client hardware address.
	CHAddr HardwareAddr

	// Type is the DHCP message type (option 53, mandatory).
	Type MessageType
	// HostName is the client Host Name (option 12), "" if absent. This
	// is the identifier that, in exposing networks, ends up in rDNS.
	HostName string
	// ClientFQDN is the Client FQDN option (option 81), nil if absent.
	ClientFQDN *ClientFQDN
	// RequestedIP is option 50, zero if absent.
	RequestedIP dnswire.IPv4
	// LeaseTime is option 51, zero if absent.
	LeaseTime time.Duration
	// ServerID is option 54, zero if absent.
	ServerID dnswire.IPv4
	// ClientID is option 61, nil if absent.
	ClientID []byte
}

// Errors returned by Parse.
var (
	ErrShortMessage  = errors.New("dhcpwire: message shorter than fixed header")
	ErrBadOp         = errors.New("dhcpwire: bad op code")
	ErrBadMagic      = errors.New("dhcpwire: missing magic cookie")
	ErrBadOption     = errors.New("dhcpwire: malformed option")
	ErrNoMessageType = errors.New("dhcpwire: missing message type option")
	ErrOptionTooLong = errors.New("dhcpwire: option data exceeds 255 octets")
)

// fixedHeaderLength is the size of the RFC 2131 fixed-format section.
const fixedHeaderLength = 236

// Marshal encodes m into wire format.
func (m *Message) Marshal() ([]byte, error) {
	buf := make([]byte, fixedHeaderLength, fixedHeaderLength+64)
	if m.BootReply {
		buf[0] = opBootReply
	} else {
		buf[0] = opBootRequest
	}
	buf[1] = 1 // htype: Ethernet
	buf[2] = 6 // hlen
	binary.BigEndian.PutUint32(buf[4:8], m.XID)
	binary.BigEndian.PutUint16(buf[8:10], m.Secs)
	if m.Broadcast {
		binary.BigEndian.PutUint16(buf[10:12], 0x8000)
	}
	copy(buf[12:16], m.CIAddr[:])
	copy(buf[16:20], m.YIAddr[:])
	copy(buf[20:24], m.SIAddr[:])
	copy(buf[24:28], m.GIAddr[:])
	copy(buf[28:34], m.CHAddr[:])
	// sname (64) and file (128) stay zero.
	buf = append(buf, magicCookie[:]...)

	if m.Type == 0 {
		return nil, ErrNoMessageType
	}
	buf = appendOption(buf, OptMessageType, []byte{byte(m.Type)})
	var err error
	if m.HostName != "" {
		if buf, err = appendOptionChecked(buf, OptHostName, []byte(m.HostName)); err != nil {
			return nil, err
		}
	}
	if m.ClientFQDN != nil {
		data := make([]byte, 3, 3+len(m.ClientFQDN.Name))
		data[0] = byte(m.ClientFQDN.Flags)
		// data[1], data[2]: deprecated RCODE fields, zero.
		data = append(data, []byte(m.ClientFQDN.Name)...)
		if buf, err = appendOptionChecked(buf, OptClientFQDN, data); err != nil {
			return nil, err
		}
	}
	if m.RequestedIP != (dnswire.IPv4{}) {
		buf = appendOption(buf, OptRequestedIP, m.RequestedIP[:])
	}
	if m.LeaseTime != 0 {
		var lt [4]byte
		binary.BigEndian.PutUint32(lt[:], uint32(m.LeaseTime/time.Second))
		buf = appendOption(buf, OptLeaseTime, lt[:])
	}
	if m.ServerID != (dnswire.IPv4{}) {
		buf = appendOption(buf, OptServerID, m.ServerID[:])
	}
	if len(m.ClientID) > 0 {
		if buf, err = appendOptionChecked(buf, OptClientID, m.ClientID); err != nil {
			return nil, err
		}
	}
	buf = append(buf, OptEnd)
	return buf, nil
}

func appendOption(buf []byte, code byte, data []byte) []byte {
	buf = append(buf, code, byte(len(data)))
	return append(buf, data...)
}

func appendOptionChecked(buf []byte, code byte, data []byte) ([]byte, error) {
	if len(data) > maxOptionDataOctet {
		return nil, fmt.Errorf("%w: option %d", ErrOptionTooLong, code)
	}
	return appendOption(buf, code, data), nil
}

// Parse decodes a wire-format DHCPv4 message.
func Parse(buf []byte) (*Message, error) {
	if len(buf) < fixedHeaderLength+4 {
		return nil, ErrShortMessage
	}
	var m Message
	switch buf[0] {
	case opBootRequest:
	case opBootReply:
		m.BootReply = true
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadOp, buf[0])
	}
	m.XID = binary.BigEndian.Uint32(buf[4:8])
	m.Secs = binary.BigEndian.Uint16(buf[8:10])
	m.Broadcast = binary.BigEndian.Uint16(buf[10:12])&0x8000 != 0
	copy(m.CIAddr[:], buf[12:16])
	copy(m.YIAddr[:], buf[16:20])
	copy(m.SIAddr[:], buf[20:24])
	copy(m.GIAddr[:], buf[24:28])
	copy(m.CHAddr[:], buf[28:34])
	if [4]byte(buf[fixedHeaderLength:fixedHeaderLength+4]) != magicCookie {
		return nil, ErrBadMagic
	}

	if err := m.parseOptions(buf[fixedHeaderLength+4:]); err != nil {
		return nil, err
	}
	return &m, nil
}

// parseOptions walks the RFC 2131 TLV option region and fills in the
// message fields this implementation tracks. Unknown options are skipped;
// a truncated length byte or data overrunning the buffer is ErrBadOption.
func (m *Message) parseOptions(opts []byte) error {
	i := 0
	sawType := false
	for i < len(opts) {
		code := opts[i]
		i++
		if code == OptPad {
			continue
		}
		if code == OptEnd {
			break
		}
		if i >= len(opts) {
			return ErrBadOption
		}
		length := int(opts[i])
		i++
		if i+length > len(opts) {
			return ErrBadOption
		}
		data := opts[i : i+length]
		i += length
		switch code {
		case OptMessageType:
			if length != 1 {
				return fmt.Errorf("%w: message type length %d", ErrBadOption, length)
			}
			if data[0] == 0 {
				// Type 0 is unassigned; accepting it would break the
				// Marshal/Parse symmetry (Marshal refuses Type 0).
				return fmt.Errorf("%w: message type 0", ErrBadOption)
			}
			m.Type = MessageType(data[0])
			sawType = true
		case OptHostName:
			m.HostName = string(data)
		case OptClientFQDN:
			if length < 3 {
				return fmt.Errorf("%w: FQDN option length %d", ErrBadOption, length)
			}
			m.ClientFQDN = &ClientFQDN{
				Flags: FQDNFlags(data[0]),
				Name:  string(data[3:]),
			}
		case OptRequestedIP:
			if length != 4 {
				return fmt.Errorf("%w: requested IP length %d", ErrBadOption, length)
			}
			copy(m.RequestedIP[:], data)
		case OptLeaseTime:
			if length != 4 {
				return fmt.Errorf("%w: lease time length %d", ErrBadOption, length)
			}
			m.LeaseTime = time.Duration(binary.BigEndian.Uint32(data)) * time.Second
		case OptServerID:
			if length != 4 {
				return fmt.Errorf("%w: server ID length %d", ErrBadOption, length)
			}
			copy(m.ServerID[:], data)
		case OptClientID:
			m.ClientID = append([]byte(nil), data...)
		default:
			// Unknown options are skipped, per RFC 2131.
		}
	}
	if !sawType {
		return ErrNoMessageType
	}
	return nil
}
