package dhcpwire

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// The DHCP server parses packets from arbitrary clients: no input may
// panic the codec.

func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(buf []byte) bool {
		_, _ = Parse(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseNeverPanicsOnMutatedMessages(t *testing.T) {
	base := &Message{
		XID:      0xABCD,
		CHAddr:   HardwareAddr{2, 0, 0, 0, 0, 1},
		Type:     Request,
		HostName: "Brians-iPhone",
		ClientFQDN: &ClientFQDN{
			Flags: FQDNServerUpdates, Name: "brians-iphone.example.edu",
		},
		LeaseTime: time.Hour,
	}
	wire, err := base.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		mutated := append([]byte(nil), wire...)
		for f := 0; f < 1+rng.Intn(4); f++ {
			mutated[rng.Intn(len(mutated))] ^= byte(1 << rng.Intn(8))
		}
		if rng.Intn(4) == 0 {
			mutated = mutated[:rng.Intn(len(mutated))+1]
		}
		_, _ = Parse(mutated) // must not panic
	}
}

// FuzzParseOptions fuzzes the TLV option walk behind a fixed valid
// header, seeded with the malformed Client-FQDN and Host-Name shapes the
// option 81/12 leak path must reject (or survive) gracefully. Go runs the
// seed corpus on every plain `go test`; `go test -fuzz=FuzzParseOptions`
// explores further.
func FuzzParseOptions(f *testing.F) {
	// Well-formed request: type + host name + FQDN.
	f.Add([]byte{
		OptMessageType, 1, byte(Request),
		OptHostName, 13, 'B', 'r', 'i', 'a', 'n', 's', '-', 'i', 'P', 'h', 'o', 'n', 'e',
		OptClientFQDN, 8, 0x01, 0, 0, 'b', 'r', 'i', 'a', 'n',
		OptEnd,
	})
	// Client FQDN shorter than its mandatory flags+rcode prefix.
	f.Add([]byte{OptMessageType, 1, byte(Request), OptClientFQDN, 2, 0x01, 0, OptEnd})
	// Client FQDN whose length byte overruns the buffer.
	f.Add([]byte{OptMessageType, 1, byte(Request), OptClientFQDN, 200, 0x05, 0, 0, 'x'})
	// Host Name truncated mid-data.
	f.Add([]byte{OptMessageType, 1, byte(Discover), OptHostName, 10, 'c', 'u', 't'})
	// Host Name with embedded NUL and non-ASCII bytes (hostnames are
	// client-controlled; the codec must pass them through unjudged).
	f.Add([]byte{OptMessageType, 1, byte(Request), OptHostName, 5, 0, 0xFF, 'a', 0, 0xC3, OptEnd})
	// Empty Host Name and empty-name FQDN.
	f.Add([]byte{OptMessageType, 1, byte(Request), OptHostName, 0, OptClientFQDN, 3, 0x08, 0, 0, OptEnd})
	// Option code with no length byte at end of buffer.
	f.Add([]byte{OptMessageType, 1, byte(Request), OptHostName})
	// Pad flood, duplicate message type, missing OptEnd.
	f.Add([]byte{OptPad, OptPad, OptMessageType, 1, byte(Request), OptPad, OptMessageType, 1, byte(Release)})
	// No message type at all.
	f.Add([]byte{OptHostName, 2, 'h', 'i', OptEnd})
	// Bad message-type length.
	f.Add([]byte{OptMessageType, 2, byte(Request), 0, OptEnd})

	header := make([]byte, fixedHeaderLength, fixedHeaderLength+4)
	header[0] = opBootRequest
	header[1], header[2] = 1, 6
	header = append(header, magicCookie[:]...)

	f.Fuzz(func(t *testing.T, opts []byte) {
		m, err := Parse(append(append([]byte(nil), header...), opts...))
		if err != nil {
			if m != nil {
				t.Fatalf("Parse returned both a message and error %v", err)
			}
			return
		}
		if m.Type == 0 {
			t.Fatal("Parse succeeded without a message type option")
		}
		// Anything Parse accepts must survive a marshal/re-parse round
		// trip with the tracked identifier fields intact — the leak-path
		// fields may never be silently altered by the codec.
		wire, err := m.Marshal()
		if err != nil {
			t.Fatalf("re-marshal of parsed message failed: %v", err)
		}
		m2, err := Parse(wire)
		if err != nil {
			t.Fatalf("re-parse of marshalled message failed: %v", err)
		}
		if m2.Type != m.Type || m2.HostName != m.HostName {
			t.Fatalf("round trip altered identifiers: %+v vs %+v", m, m2)
		}
		switch {
		case m.ClientFQDN == nil && m2.ClientFQDN != nil,
			m.ClientFQDN != nil && m2.ClientFQDN == nil:
			t.Fatalf("round trip altered FQDN presence: %+v vs %+v", m.ClientFQDN, m2.ClientFQDN)
		case m.ClientFQDN != nil && *m.ClientFQDN != *m2.ClientFQDN:
			t.Fatalf("round trip altered FQDN: %+v vs %+v", *m.ClientFQDN, *m2.ClientFQDN)
		}
	})
}
