package dhcpwire

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// The DHCP server parses packets from arbitrary clients: no input may
// panic the codec.

func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(buf []byte) bool {
		_, _ = Parse(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseNeverPanicsOnMutatedMessages(t *testing.T) {
	base := &Message{
		XID:      0xABCD,
		CHAddr:   HardwareAddr{2, 0, 0, 0, 0, 1},
		Type:     Request,
		HostName: "Brians-iPhone",
		ClientFQDN: &ClientFQDN{
			Flags: FQDNServerUpdates, Name: "brians-iphone.example.edu",
		},
		LeaseTime: time.Hour,
	}
	wire, err := base.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		mutated := append([]byte(nil), wire...)
		for f := 0; f < 1+rng.Intn(4); f++ {
			mutated[rng.Intn(len(mutated))] ^= byte(1 << rng.Intn(8))
		}
		if rng.Intn(4) == 0 {
			mutated = mutated[:rng.Intn(len(mutated))+1]
		}
		_, _ = Parse(mutated) // must not panic
	}
}
