package dhcpwire

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"rdnsprivacy/internal/dnswire"
)

func TestDiscoverRoundTrip(t *testing.T) {
	msg := &Message{
		XID:      0xDEADBEEF,
		Secs:     3,
		CHAddr:   HardwareAddr{0x02, 0x42, 0xac, 0x11, 0x00, 0x02},
		Type:     Discover,
		HostName: "Brians-iPhone",
		ClientID: []byte{1, 0x02, 0x42, 0xac, 0x11, 0x00, 0x02},
	}
	wire, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.BootReply {
		t.Fatal("client message parsed as reply")
	}
	if got.XID != 0xDEADBEEF || got.Secs != 3 {
		t.Fatalf("got %+v", got)
	}
	if got.Type != Discover {
		t.Fatalf("type = %v", got.Type)
	}
	if got.HostName != "Brians-iPhone" {
		t.Fatalf("host name = %q", got.HostName)
	}
	if got.CHAddr != msg.CHAddr {
		t.Fatalf("chaddr = %v", got.CHAddr)
	}
	if string(got.ClientID) != string(msg.ClientID) {
		t.Fatalf("client ID = %v", got.ClientID)
	}
}

func TestACKRoundTrip(t *testing.T) {
	msg := &Message{
		BootReply: true,
		XID:       7,
		YIAddr:    dnswire.MustIPv4("192.0.2.10"),
		SIAddr:    dnswire.MustIPv4("192.0.2.1"),
		Type:      ACK,
		LeaseTime: time.Hour,
		ServerID:  dnswire.MustIPv4("192.0.2.1"),
	}
	wire, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.BootReply || got.Type != ACK {
		t.Fatalf("got %+v", got)
	}
	if got.YIAddr != dnswire.MustIPv4("192.0.2.10") {
		t.Fatalf("yiaddr = %v", got.YIAddr)
	}
	if got.LeaseTime != time.Hour {
		t.Fatalf("lease = %v", got.LeaseTime)
	}
	if got.ServerID != dnswire.MustIPv4("192.0.2.1") {
		t.Fatalf("server ID = %v", got.ServerID)
	}
}

func TestClientFQDNRoundTrip(t *testing.T) {
	msg := &Message{
		XID:  1,
		Type: Request,
		ClientFQDN: &ClientFQDN{
			Flags: FQDNServerUpdates,
			Name:  "brians-mbp.example.edu",
		},
		RequestedIP: dnswire.MustIPv4("192.0.2.10"),
	}
	wire, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ClientFQDN == nil {
		t.Fatal("FQDN option lost")
	}
	if got.ClientFQDN.Flags != FQDNServerUpdates || got.ClientFQDN.Name != "brians-mbp.example.edu" {
		t.Fatalf("FQDN = %+v", got.ClientFQDN)
	}
	if got.RequestedIP != dnswire.MustIPv4("192.0.2.10") {
		t.Fatalf("requested = %v", got.RequestedIP)
	}
}

func TestFQDNNoUpdateFlag(t *testing.T) {
	// RFC 7844 §3.7: privacy-conscious clients can ask the server not to
	// update DNS.
	msg := &Message{
		XID:        1,
		Type:       Request,
		ClientFQDN: &ClientFQDN{Flags: FQDNNoUpdate, Name: "host"},
	}
	wire, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ClientFQDN.Flags&FQDNNoUpdate == 0 {
		t.Fatal("N bit lost in round trip")
	}
}

func TestReleaseRoundTrip(t *testing.T) {
	msg := &Message{
		XID:      9,
		CIAddr:   dnswire.MustIPv4("192.0.2.10"),
		Type:     Release,
		ServerID: dnswire.MustIPv4("192.0.2.1"),
	}
	wire, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != Release || got.CIAddr != dnswire.MustIPv4("192.0.2.10") {
		t.Fatalf("got %+v", got)
	}
}

func TestBroadcastFlag(t *testing.T) {
	msg := &Message{XID: 1, Type: Discover, Broadcast: true}
	wire, _ := msg.Marshal()
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Broadcast {
		t.Fatal("broadcast flag lost")
	}
}

func TestMarshalRequiresMessageType(t *testing.T) {
	if _, err := (&Message{XID: 1}).Marshal(); !errors.Is(err, ErrNoMessageType) {
		t.Fatalf("err = %v, want ErrNoMessageType", err)
	}
}

func TestMarshalRejectsOverlongHostName(t *testing.T) {
	msg := &Message{XID: 1, Type: Discover, HostName: strings.Repeat("x", 256)}
	if _, err := msg.Marshal(); !errors.Is(err, ErrOptionTooLong) {
		t.Fatalf("err = %v, want ErrOptionTooLong", err)
	}
}

func TestParseRejectsShort(t *testing.T) {
	if _, err := Parse(make([]byte, 100)); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("err = %v, want ErrShortMessage", err)
	}
}

func TestParseRejectsBadMagic(t *testing.T) {
	msg := &Message{XID: 1, Type: Discover}
	wire, _ := msg.Marshal()
	wire[fixedHeaderLength] = 0
	if _, err := Parse(wire); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestParseRejectsBadOp(t *testing.T) {
	msg := &Message{XID: 1, Type: Discover}
	wire, _ := msg.Marshal()
	wire[0] = 9
	if _, err := Parse(wire); !errors.Is(err, ErrBadOp) {
		t.Fatalf("err = %v, want ErrBadOp", err)
	}
}

func TestParseRejectsTruncatedOption(t *testing.T) {
	msg := &Message{XID: 1, Type: Discover, HostName: "host"}
	wire, _ := msg.Marshal()
	// Chop inside the host name option (drop the end marker and two
	// data octets).
	wire = wire[:len(wire)-3]
	if _, err := Parse(wire); !errors.Is(err, ErrBadOption) {
		t.Fatalf("err = %v, want ErrBadOption", err)
	}
}

func TestParseRejectsMissingType(t *testing.T) {
	msg := &Message{XID: 1, Type: Discover}
	wire, _ := msg.Marshal()
	// Blank out the message-type option (53, len 1, value) with pads.
	at := fixedHeaderLength + 4
	wire[at], wire[at+1], wire[at+2] = OptPad, OptPad, OptPad
	if _, err := Parse(wire); !errors.Is(err, ErrNoMessageType) {
		t.Fatalf("err = %v, want ErrNoMessageType", err)
	}
}

func TestParseSkipsUnknownOptions(t *testing.T) {
	msg := &Message{XID: 1, Type: Discover}
	wire, _ := msg.Marshal()
	// Replace the end marker with an unknown option then a new end.
	wire = wire[:len(wire)-1]
	wire = append(wire, 120, 2, 0xAA, 0xBB, OptEnd)
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != Discover {
		t.Fatalf("type = %v", got.Type)
	}
}

func TestMessageTypeStrings(t *testing.T) {
	if Discover.String() != "DHCPDISCOVER" || Release.String() != "DHCPRELEASE" {
		t.Fatal("MessageType.String broken")
	}
	if MessageType(77).String() != "DHCPTYPE77" {
		t.Fatal("unknown MessageType.String broken")
	}
}

func TestHardwareAddrString(t *testing.T) {
	h := HardwareAddr{0x02, 0x42, 0xac, 0x11, 0x00, 0x02}
	if h.String() != "02:42:ac:11:00:02" {
		t.Fatalf("String() = %q", h.String())
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(xid uint32, secs uint16, chaddr [6]byte, host string, lease uint16) bool {
		if len(host) > 255 {
			host = host[:255]
		}
		msg := &Message{
			XID:       xid,
			Secs:      secs,
			CHAddr:    HardwareAddr(chaddr),
			Type:      Request,
			HostName:  host,
			LeaseTime: time.Duration(lease) * time.Second,
		}
		wire, err := msg.Marshal()
		if err != nil {
			return false
		}
		got, err := Parse(wire)
		if err != nil {
			return false
		}
		return got.XID == xid && got.Secs == secs &&
			got.CHAddr == HardwareAddr(chaddr) &&
			got.HostName == host &&
			got.LeaseTime == time.Duration(lease)*time.Second
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
