package rdnsclient

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"rdnsprivacy/internal/testutil"
)

func writeEnvelope(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorEnvelope{Error: ErrorDetail{Code: code, Message: msg}})
}

// TestRetryOn429HonorsRetryAfter: two 429s with Retry-After, then a 200.
// The client must sleep what the server asked (observed via the injected
// sleeper) and succeed on the third attempt.
func TestRetryOn429HonorsRetryAfter(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-API-Key") != "brian" {
			writeEnvelope(w, http.StatusForbidden, CodeForbidden, "who are you")
			return
		}
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			writeEnvelope(w, http.StatusTooManyRequests, CodeRateLimited, "slow down")
			return
		}
		json.NewEncoder(w).Encode(DaysResponse{Count: 1, Days: []time.Time{time.Unix(0, 0).UTC()}})
	}))
	defer ts.Close()

	var slept []time.Duration
	c := New(ts.URL, WithAPIKey("brian"), WithRetries(3, 10*time.Second))
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	days, err := c.Days(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if days.Count != 1 || calls.Load() != 3 {
		t.Fatalf("days=%+v calls=%d", days, calls.Load())
	}
	if len(slept) != 2 || slept[0] != 2*time.Second || slept[1] != 2*time.Second {
		t.Fatalf("slept %v, want two 2s waits from Retry-After", slept)
	}
}

// TestRetriesExhausted: with retries disabled every 429 surfaces
// immediately as a typed APIError.
func TestRetriesExhausted(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		writeEnvelope(w, http.StatusTooManyRequests, CodeRateLimited, "bucket empty")
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetries(0, 0))
	_, err := c.Stats(context.Background())
	ae, ok := err.(*APIError)
	if !ok {
		t.Fatalf("error %T: %v", err, err)
	}
	if !IsRateLimited(err) || IsOverloaded(err) {
		t.Fatalf("classification wrong: %+v", ae)
	}
	if ae.Code != CodeRateLimited || ae.Status != 429 || ae.RetryAfter != 7*time.Second {
		t.Fatalf("APIError %+v", ae)
	}
}

// TestErrorEnvelopeAndFallback: envelope bodies decode into code/message;
// non-envelope bodies (a proxy's plain text) still produce a usable error.
func TestErrorEnvelopeAndFallback(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/at":
			writeEnvelope(w, http.StatusBadRequest, CodeBadParam, "ip: banana")
		default:
			http.Error(w, "bad gateway", http.StatusBadGateway)
		}
	}))
	defer ts.Close()
	c := New(ts.URL)
	_, err := c.At(context.Background(), "banana", time.Time{})
	if ae, ok := err.(*APIError); !ok || ae.Code != CodeBadParam || ae.Status != 400 || ae.Message != "ip: banana" {
		t.Fatalf("envelope error: %v", err)
	}
	_, err = c.Days(context.Background())
	if ae, ok := err.(*APIError); !ok || ae.Code != CodeInternal || ae.Status != 502 || ae.Message != "bad gateway" {
		t.Fatalf("fallback error: %v", err)
	}
}

// TestRangeIterPagination: the iterator follows next_cursor to the end,
// including an empty final page, and RangeAll concatenates exactly.
func TestRangeIterPagination(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	day := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	total := 7 // pages of 3: [3, 3, 1]
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.URL.Query().Get("prefix"); got != "10.0.1.0/24" {
			writeEnvelope(w, http.StatusBadRequest, CodeBadParam, "prefix: "+got)
			return
		}
		start := 0
		if cur := r.URL.Query().Get("cursor"); cur != "" {
			start, _ = strconv.Atoi(cur)
		}
		limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
		resp := RangeResponse{Prefix: "10.0.1.0/24", From: day, To: day}
		for i := start; i < total && len(resp.Rows) < limit; i++ {
			resp.Rows = append(resp.Rows, RangeRow{Date: day, IP: fmt.Sprintf("10.0.1.%d", i), PTR: "x.example.net."})
		}
		resp.Count = len(resp.Rows)
		if start+len(resp.Rows) < total {
			resp.NextCursor = strconv.Itoa(start + len(resp.Rows))
		}
		json.NewEncoder(w).Encode(resp)
	}))
	defer ts.Close()

	c := New(ts.URL)
	q := RangeQuery{Prefix: "10.0.1.0/24", Limit: 3}
	it := c.Range(q)
	var pages []int
	ctx := context.Background()
	for it.Next(ctx) {
		pages = append(pages, it.Page().Count)
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if len(pages) != 3 || pages[0] != 3 || pages[1] != 3 || pages[2] != 1 {
		t.Fatalf("pages %v", pages)
	}
	rows, err := c.RangeAll(ctx, q)
	if err != nil || len(rows) != total {
		t.Fatalf("RangeAll: %d rows, err %v", len(rows), err)
	}
	for i, r := range rows {
		if r.IP != fmt.Sprintf("10.0.1.%d", i) {
			t.Fatalf("row %d out of order: %+v", i, r)
		}
	}

	// An error mid-iteration surfaces via Err and stops the loop.
	bad := c.Range(RangeQuery{Prefix: "zzz"})
	for bad.Next(ctx) {
		t.Fatal("iteration over a rejected query yielded a page")
	}
	if bad.Err() == nil {
		t.Fatal("no error from rejected query")
	}
}

// TestNameIterPagination mirrors the range iterator over postings.
func TestNameIterPagination(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	day := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := 0
		if cur := r.URL.Query().Get("cursor"); cur != "" {
			start, _ = strconv.Atoi(cur)
		}
		resp := NameResponse{Token: r.URL.Query().Get("token")}
		for i := start; i < 5 && len(resp.Postings) < 2; i++ {
			resp.Postings = append(resp.Postings, NamePosting{Prefix: fmt.Sprintf("10.0.%d.0/24", i), First: day, Last: day})
		}
		resp.Count = len(resp.Postings)
		if start+len(resp.Postings) < 5 {
			resp.NextCursor = strconv.Itoa(start + len(resp.Postings))
		}
		json.NewEncoder(w).Encode(resp)
	}))
	defer ts.Close()
	got, err := New(ts.URL).NameAll(context.Background(), "brian")
	if err != nil || len(got) != 5 {
		t.Fatalf("NameAll: %d postings, err %v", len(got), err)
	}
}

// TestContextCancellationStopsRetry: a canceled context aborts the retry
// sleep rather than burning the full Retry-After.
func TestContextCancellationStopsRetry(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		writeEnvelope(w, http.StatusServiceUnavailable, CodeOverloaded, "shedding")
	}))
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New(ts.URL, WithRetries(5, time.Minute))
	start := time.Now()
	_, err := c.Stats(ctx)
	if err == nil || time.Since(start) > 5*time.Second {
		t.Fatalf("canceled retry: err=%v after %s", err, time.Since(start))
	}
}
