package rdnsclient

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"rdnsprivacy/internal/testutil"
)

// fakeFeed is a minimal primary-side feed: one 64-byte segment and one
// 32-byte tail, with a switch to make every endpoint shed once.
type fakeFeed struct {
	segment  []byte
	tail     []byte
	tailFile string
	shedOnce atomic.Bool
}

func newFakeFeed() *fakeFeed {
	f := &fakeFeed{tailFile: "tail-main-2.log"}
	for i := 0; i < 64; i++ {
		f.segment = append(f.segment, byte(i))
	}
	for i := 0; i < 32; i++ {
		f.tail = append(f.tail, byte(0x80+i))
	}
	return f
}

func (f *fakeFeed) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.shedOnce.CompareAndSwap(true, false) {
			w.Header().Set("Retry-After", "2")
			writeEnvelope(w, http.StatusServiceUnavailable, CodeOverloaded, "shedding")
			return
		}
		off, _ := strconv.ParseInt(r.URL.Query().Get("off"), 10, 64)
		n, _ := strconv.Atoi(r.URL.Query().Get("n"))
		window := func(data []byte) []byte {
			if off > int64(len(data)) {
				return nil
			}
			rest := data[off:]
			if n > 0 && n < len(rest) {
				rest = rest[:n]
			}
			return rest
		}
		switch {
		case r.URL.Path == "/v1/repl/manifest":
			json.NewEncoder(w).Encode(ReplManifest{
				Generation: 4, BaseInterval: 4, Snapshots: 6,
				LastSnap: time.Date(2020, 3, 6, 0, 0, 0, 0, time.UTC), TotalBytes: 96,
				Writers: []ReplWriter{{
					ID: "main", FileSeq: 3, TailFile: f.tailFile, TailFirst: 4, TailSize: int64(len(f.tail)),
					Segments: []ReplSegment{{File: "seg-main-1.seg", First: 0, Count: 4, Size: int64(len(f.segment)), CRC: 0xdeadbeef}},
				}},
			})
		case r.URL.Path == "/v1/repl/segment/seg-main-1.seg":
			w.Header().Set("X-Repl-Size", strconv.Itoa(len(f.segment)))
			w.Write(window(f.segment))
		case r.URL.Path == "/v1/repl/tail/main":
			if file := r.URL.Query().Get("file"); file != "" && file != f.tailFile {
				w.Header().Set("X-Repl-Tail-File", f.tailFile)
				w.Header().Set("X-Repl-Tail-First", "4")
				w.Header().Set("X-Repl-Tail-Size", strconv.Itoa(len(f.tail)))
				writeEnvelope(w, http.StatusConflict, CodeReplChanged, "tail changed")
				return
			}
			w.Header().Set("X-Repl-Tail-File", f.tailFile)
			w.Header().Set("X-Repl-Tail-First", "4")
			w.Header().Set("X-Repl-Tail-Size", strconv.Itoa(len(f.tail)))
			w.Write(window(f.tail))
		default:
			writeEnvelope(w, http.StatusNotFound, CodeNotFound, r.URL.Path)
		}
	})
}

// TestReplClientRoundTrip: the three feed methods decode the wire
// contract — manifest JSON, X-Repl-Size, the tail identity headers — and
// chunked windows return exactly the requested bytes.
func TestReplClientRoundTrip(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	feed := newFakeFeed()
	ts := httptest.NewServer(feed.handler())
	defer ts.Close()
	c := New(ts.URL)
	ctx := context.Background()

	fm, err := c.ReplManifest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fm.Generation != 4 || len(fm.Writers) != 1 || fm.Writers[0].Segments[0].CRC != 0xdeadbeef {
		t.Fatalf("manifest: %+v", fm)
	}

	chunk, size, err := c.ReplSegment(ctx, "seg-main-1.seg", 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if size != 64 || len(chunk) != 8 || chunk[0] != 16 {
		t.Fatalf("segment window: size=%d chunk=%v", size, chunk)
	}

	delta, info, err := c.ReplTail(ctx, "main", feed.tailFile, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.File != feed.tailFile || info.First != 4 || info.Size != 32 {
		t.Fatalf("tail info: %+v", info)
	}
	if len(delta) != 2 || delta[0] != 0x80+30 {
		t.Fatalf("tail delta: %v", delta)
	}
}

// TestReplClientTailChanged: a stale tail pin surfaces the 409 as a
// typed APIError carrying CodeReplChanged — the signal Sync uses to
// refetch the manifest.
func TestReplClientTailChanged(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	ts := httptest.NewServer(newFakeFeed().handler())
	defer ts.Close()
	_, _, err := New(ts.URL).ReplTail(context.Background(), "main", "tail-main-0.log", 0, 0)
	ae, ok := err.(*APIError)
	if !ok || ae.Status != http.StatusConflict || ae.Code != CodeReplChanged {
		t.Fatalf("stale pin error: %v", err)
	}
}

// TestReplClientRetries: the binary fetch path shares the 429/503
// Retry-After loop with the JSON path.
func TestReplClientRetries(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	feed := newFakeFeed()
	ts := httptest.NewServer(feed.handler())
	defer ts.Close()

	var slept []time.Duration
	c := New(ts.URL, WithRetries(1, 10*time.Second))
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	feed.shedOnce.Store(true)
	chunk, size, err := c.ReplSegment(context.Background(), "seg-main-1.seg", 0, 0)
	if err != nil || size != 64 || len(chunk) != 64 {
		t.Fatalf("retried fetch: %d/%d bytes, err %v", len(chunk), size, err)
	}
	if len(slept) != 1 || slept[0] != 2*time.Second {
		t.Fatalf("slept %v, want one 2s Retry-After wait", slept)
	}

	// With the budget exhausted the shed surfaces typed.
	c2 := New(ts.URL, WithRetries(0, 0))
	feed.shedOnce.Store(true)
	if _, _, err := c2.ReplSegment(context.Background(), "seg-main-1.seg", 0, 0); !IsOverloaded(err) {
		t.Fatalf("exhausted retries: %v", err)
	}
}

// TestReplClientBadHeaders: mangled identity headers are loud decode
// errors, not zero values a replica would happily commit.
func TestReplClientBadHeaders(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// 200 with no X-Repl-* headers at all.
		w.Write([]byte("junk"))
	}))
	defer ts.Close()
	c := New(ts.URL)
	if _, _, err := c.ReplSegment(context.Background(), "seg", 0, 0); err == nil {
		t.Fatal("missing X-Repl-Size accepted")
	}
	if _, _, err := c.ReplTail(context.Background(), "main", "", 0, 0); err == nil {
		t.Fatal("missing tail identity headers accepted")
	}
}
