// Package rdnsclient is the Go client for rdnsd's versioned v1 query API
// and the single definition of that API's wire contract: every request
// and response type, the JSON error envelope, and the error-code
// vocabulary live here, imported by both the server (internal/rdnsserve)
// and every consumer (cmd/rdnsload, tests), so the contract cannot drift
// between the two sides.
//
//	c := rdnsclient.New("http://127.0.0.1:8077")
//	at, err := c.At(ctx, "10.0.1.7", day)
//	it := c.Range(rdnsclient.RangeQuery{Prefix: "10.0.1.0/24", Limit: 1000})
//	for it.Next(ctx) {
//		page := it.Page() // one bounded page of rows
//	}
//	err = it.Err()
//
// Errors surface as *APIError carrying the envelope's code and message
// plus the HTTP status; 429 and 503 responses are retried with the
// server's Retry-After honored (see WithRetries). See docs/api.md for
// the endpoint reference.
package rdnsclient

import "time"

// Error codes the v1 API returns inside the error envelope. The HTTP
// status is derivable from the code (see docs/api.md); clients should
// switch on Code, not on ad-hoc message strings.
const (
	// CodeBadParam: a missing, malformed, or unknown query parameter
	// (HTTP 400).
	CodeBadParam = "bad_param"
	// CodeInvalidCursor: a pagination cursor that is malformed or belongs
	// to a different query (HTTP 400).
	CodeInvalidCursor = "invalid_cursor"
	// CodeBeforeHistory: a query instant preceding the store's first
	// snapshot (HTTP 400).
	CodeBeforeHistory = "before_history"
	// CodeNotFound: an unknown endpoint path (HTTP 404).
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed: a valid path with the wrong HTTP method
	// (HTTP 405).
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeForbidden: the client is excluded by the server's ACL, or the
	// admin surface is disabled (HTTP 403).
	CodeForbidden = "forbidden"
	// CodeRateLimited: the client exhausted its token bucket; Retry-After
	// carries the wait in seconds (HTTP 429).
	CodeRateLimited = "rate_limited"
	// CodeOverloaded: the daemon shed the request at its in-flight
	// concurrency bound; Retry-After is set (HTTP 503).
	CodeOverloaded = "overloaded"
	// CodeCanceled: the client disconnected mid-query and the work was
	// abandoned (HTTP 499; never seen by a live client).
	CodeCanceled = "canceled"
	// CodeCompactBusy: a compaction sweep is already running; retry after
	// it finishes (HTTP 409).
	CodeCompactBusy = "compact_busy"
	// CodeReplChanged: a replication tail fetch named a tail file the
	// writer no longer appends to (compaction started a fresh tail); the
	// replica must refetch the manifest (HTTP 409).
	CodeReplChanged = "repl_changed"
	// CodeInternal: an unexpected server-side failure (HTTP 500).
	CodeInternal = "internal"
)

// ErrorDetail is the body of the v1 error envelope.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the uniform v1 error shape:
// {"error":{"code":"...","message":"..."}}.
type ErrorEnvelope struct {
	Error ErrorDetail `json:"error"`
}

// AtResponse is /v1/at: the PTR name ip held at the newest snapshot at or
// before t. Resolved names the snapshot that answered.
type AtResponse struct {
	IP       string    `json:"ip"`
	T        time.Time `json:"t"`
	Resolved time.Time `json:"resolved"`
	Found    bool      `json:"found"`
	Name     string    `json:"name,omitempty"`
}

// RangeRow is one /v1/range observation.
type RangeRow struct {
	Date time.Time `json:"date"`
	IP   string    `json:"ip"`
	PTR  string    `json:"ptr"`
}

// RangeResponse is one page of /v1/range. Count is the rows in this page;
// NextCursor resumes the scan when non-empty (a page that fills its limit
// exactly may be followed by an empty final page).
type RangeResponse struct {
	Prefix     string     `json:"prefix"`
	From       time.Time  `json:"from"`
	To         time.Time  `json:"to"`
	Count      int        `json:"count"`
	Rows       []RangeRow `json:"rows"`
	NextCursor string     `json:"next_cursor,omitempty"`
}

// ChurnDay is one snapshot's added/removed/changed counts within the
// queried prefix (mirrors histstore.ChurnDay).
type ChurnDay struct {
	Date    time.Time `json:"date"`
	Added   int       `json:"added"`
	Removed int       `json:"removed"`
	Changed int       `json:"changed"`
}

// ChurnResponse is /v1/churn.
type ChurnResponse struct {
	Prefix string     `json:"prefix"`
	From   time.Time  `json:"from"`
	To     time.Time  `json:"to"`
	Days   []ChurnDay `json:"days"`
}

// NamePosting is one /v1/name result: the token was present in Prefix on
// every snapshot from First through Last inclusive.
type NamePosting struct {
	Prefix string    `json:"prefix"`
	First  time.Time `json:"first"`
	Last   time.Time `json:"last"`
}

// NameResponse is one page of /v1/name postings.
type NameResponse struct {
	Token      string        `json:"token"`
	Count      int           `json:"count"`
	Postings   []NamePosting `json:"postings"`
	NextCursor string        `json:"next_cursor,omitempty"`
}

// DaysResponse is /v1/days: the store's snapshot instants in append order.
type DaysResponse struct {
	Count int         `json:"count"`
	Days  []time.Time `json:"days"`
}

// StoreStats mirrors histstore.Stats on the wire. The segment-tiering
// and compaction fields are additive: daemons serving a pre-segmentation
// store report them as zero values.
type StoreStats struct {
	Snapshots       int    `json:"snapshots"`
	Blocks          int    `json:"blocks"`
	BaseFrames      int    `json:"base_frames"`
	DeltaFrames     int    `json:"delta_frames"`
	Bytes           int64  `json:"bytes"`
	Reconstructions uint64 `json:"reconstructions"`
	CacheHits       uint64 `json:"cache_hits"`
	CacheMisses     uint64 `json:"cache_misses"`
	CacheEntries    int    `json:"cache_entries"`

	TailBytes     int64           `json:"tail_bytes,omitempty"`
	SealedBytes   int64           `json:"sealed_bytes,omitempty"`
	Segments      int             `json:"segments,omitempty"`
	HotSegments   int             `json:"hot_segments,omitempty"`
	TierLoads     uint64          `json:"tier_loads,omitempty"`
	TierEvictions uint64          `json:"tier_evictions,omitempty"`
	Writers       []WriterStats   `json:"writers,omitempty"`
	Compaction    CompactionStats `json:"compaction"`
}

// WriterStats is one campaign writer's share of a served store.
type WriterStats struct {
	ID            string `json:"id"`
	Snapshots     int    `json:"snapshots"`
	TailSnapshots int    `json:"tail_snapshots"`
	Segments      int    `json:"segments"`
}

// CompactionStats summarizes the daemon store's compaction history and
// whether a run is in flight right now.
type CompactionStats struct {
	Runs            uint64 `json:"runs"`
	SealedSnapshots uint64 `json:"sealed_snapshots"`
	ReclaimedBytes  int64  `json:"reclaimed_bytes"`
	Running         bool   `json:"running"`
}

// CompactWriterResult is one writer's outcome in a CompactResponse.
type CompactWriterResult struct {
	Writer       string `json:"writer"`
	Sealed       int    `json:"sealed"`
	Segment      string `json:"segment,omitempty"`
	TailBytes    int64  `json:"tail_bytes"`
	SegmentBytes int64  `json:"segment_bytes"`
	Skipped      string `json:"skipped,omitempty"`
}

// CompactResponse is POST /v1/admin/compact: per-writer seal outcomes.
type CompactResponse struct {
	Results []CompactWriterResult `json:"results"`
}

// AdmissionStats is the daemon's admission-control summary: cumulative
// decision counters plus instantaneous occupancy.
type AdmissionStats struct {
	Admitted     uint64 `json:"admitted"`
	RateLimited  uint64 `json:"rate_limited"`
	Denied       uint64 `json:"denied"`
	Shed         uint64 `json:"shed"`
	InFlight     int64  `json:"in_flight"`
	PeakInFlight int64  `json:"peak_in_flight"`
	Clients      int    `json:"clients"`
}

// EndpointStats is one endpoint's per-outcome request counts
// (rdnsd_requests_total{endpoint,outcome} on the metrics surface). The
// four outcomes partition every request the endpoint saw: OK answered
// 200, Rejected was refused by admission (rate limit, ACL, or shedding),
// Canceled saw its client disconnect mid-query, Errors is everything
// else that failed.
type EndpointStats struct {
	OK       uint64 `json:"ok"`
	Errors   uint64 `json:"errors"`
	Canceled uint64 `json:"canceled"`
	Rejected uint64 `json:"rejected"`
}

// LatencyStats summarizes the daemon's aggregate query-latency histogram
// with the exemplar that answers "which query was the p99": P99Corr is
// the X-Rdns-Corr correlation ID (16 hex digits) of the worst
// observation in the bucket holding the p99 rank, resolvable against
// the daemon's /trace and /querylog dumps. Empty when telemetry is off.
type LatencyStats struct {
	Count    uint64  `json:"count"`
	P50      float64 `json:"p50"`
	P95      float64 `json:"p95"`
	P99      float64 `json:"p99"`
	P99Corr  string  `json:"p99_corr,omitempty"`
	P99Value float64 `json:"p99_value,omitempty"`
}

// QueryLogStats summarizes the daemon's canonical query log: total
// requests recorded since start, how many are still buffered in the
// ring, and how many crossed the slow threshold. Zero-valued when the
// daemon runs without -query-log.
type QueryLogStats struct {
	Total    uint64 `json:"total"`
	Buffered int    `json:"buffered"`
	Slow     int    `json:"slow"`
}

// StatsResponse is /v1/stats. Generation counts store-handle swaps (0
// until the first hot reload; on a replica, every completed catch-up
// sync bumps it). Replica is set only on daemons running -replica-of;
// Endpoints and Latency carry data only when the daemon runs with
// telemetry, and QueryLog only with -query-log.
type StatsResponse struct {
	Generation   int64                    `json:"generation"`
	Store        StoreStats               `json:"store"`
	CacheHitRate float64                  `json:"cache_hit_rate"`
	Admission    AdmissionStats           `json:"admission"`
	Latency      LatencyStats             `json:"latency"`
	Endpoints    map[string]EndpointStats `json:"endpoints,omitempty"`
	QueryLog     QueryLogStats            `json:"query_log"`
	Replica      *ReplicaStats            `json:"replica,omitempty"`
	// Divergence is the per-writer disagreement summary against the
	// merged view, present only when the request asked for it
	// (GET /v1/stats?divergence=1) — it walks every live record, so it
	// is opt-in rather than part of the cheap default body.
	Divergence *DivergenceStats `json:"divergence,omitempty"`
}

// DivergenceStats mirrors histstore.DivergenceStats on the wire: the
// live cross-writer disagreement summary of a multi-vantage store.
type DivergenceStats struct {
	// Addresses is the merged live record count.
	Addresses int                `json:"addresses"`
	Writers   []WriterDivergence `json:"writers"`
}

// WriterDivergence is one writer's live relation to the merged view.
type WriterDivergence struct {
	ID string `json:"id"`
	// Records is the writer's live total (Agreements + Conflicts).
	Records int `json:"records"`
	// Agreements hold the merged winner's name; Conflicts a different
	// one (the writer is shadowed by a lower-id winner); Missing are
	// merged records the writer lacks; Exclusive records only this
	// writer holds.
	Agreements int `json:"agreements"`
	Conflicts  int `json:"conflicts"`
	Missing    int `json:"missing"`
	Exclusive  int `json:"exclusive"`
}

// ReloadResponse is POST /v1/admin/reload: the freshly opened store's
// size and the new handle generation.
type ReloadResponse struct {
	Reloaded   bool  `json:"reloaded"`
	Generation int64 `json:"generation"`
	Snapshots  int   `json:"snapshots"`
}
