package rdnsclient

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rdnsprivacy/internal/testutil"
)

// TestClientMethodWiring: the thin endpoint wrappers put their
// parameters on the wire and decode the documented response shapes.
func TestClientMethodWiring(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	day := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		switch r.URL.Path {
		case "/v1/at":
			if q.Get("ip") != "10.0.1.7" || q.Get("t") != day.Format(time.RFC3339) {
				writeEnvelope(w, http.StatusBadRequest, CodeBadParam, "params not threaded: "+r.URL.RawQuery)
				return
			}
			json.NewEncoder(w).Encode(AtResponse{IP: "10.0.1.7", Found: true, Name: "brians-iphone.lan.example.net."})
		case "/v1/churn":
			if q.Get("prefix") != "10.0.0.0/16" || q.Get("from") == "" || q.Get("to") == "" {
				writeEnvelope(w, http.StatusBadRequest, CodeBadParam, "params not threaded: "+r.URL.RawQuery)
				return
			}
			json.NewEncoder(w).Encode(ChurnResponse{Prefix: q.Get("prefix")})
		case "/v1/range":
			if q.Get("from") == "" || q.Get("to") == "" || q.Get("cursor") != "c1" {
				writeEnvelope(w, http.StatusBadRequest, CodeBadParam, "params not threaded: "+r.URL.RawQuery)
				return
			}
			json.NewEncoder(w).Encode(RangeResponse{Prefix: q.Get("prefix")})
		case "/v1/admin/reload":
			if r.Method != http.MethodPost {
				writeEnvelope(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, r.Method)
				return
			}
			json.NewEncoder(w).Encode(ReloadResponse{Generation: 2, Snapshots: 9})
		default:
			writeEnvelope(w, http.StatusNotFound, CodeNotFound, r.URL.Path)
		}
	}))
	defer ts.Close()

	// WithHTTPClient must substitute the transport the calls ride.
	c := New(ts.URL, WithHTTPClient(&http.Client{Timeout: 5 * time.Second}))
	ctx := context.Background()

	at, err := c.At(ctx, "10.0.1.7", day)
	if err != nil || !at.Found {
		t.Fatalf("at: %+v err=%v", at, err)
	}
	cr, err := c.Churn(ctx, "10.0.0.0/16", day, day.AddDate(0, 0, 5))
	if err != nil || cr.Prefix != "10.0.0.0/16" {
		t.Fatalf("churn: %+v err=%v", cr, err)
	}
	if _, err := c.RangePage(ctx, RangeQuery{Prefix: "10.0.1.0/24", From: day, To: day}, "c1"); err != nil {
		t.Fatalf("range page: %v", err)
	}
	rl, err := c.Reload(ctx)
	if err != nil || rl.Generation != 2 || rl.Snapshots != 9 {
		t.Fatalf("reload: %+v err=%v", rl, err)
	}
}

// TestAPIErrorString: the error text carries message, status, and code —
// what ends up in a replica's sync-error log line.
func TestAPIErrorString(t *testing.T) {
	e := &APIError{Status: 429, Code: CodeRateLimited, Message: "slow down"}
	if got := e.Error(); got != "rdnsd: slow down (429 rate_limited)" {
		t.Fatalf("error string: %q", got)
	}
}

// TestSleepCtx: the default sleeper waits the asked duration and aborts
// immediately on a dead context.
func TestSleepCtx(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	start := time.Now()
	if err := sleepCtx(context.Background(), 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("returned before the wait elapsed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start = time.Now()
	if err := sleepCtx(ctx, time.Hour); err == nil || time.Since(start) > time.Second {
		t.Fatalf("dead context: err=%v after %s", err, time.Since(start))
	}
	if err := sleepCtx(context.Background(), 0); err != nil {
		t.Fatalf("zero wait: %v", err)
	}
}

// TestStatsDivergence: the opt-in divergence query goes on the wire and
// the per-writer breakdown decodes.
func TestStatsDivergence(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/stats" || r.URL.Query().Get("divergence") != "1" {
			writeEnvelope(w, http.StatusBadRequest, CodeBadParam, r.URL.String())
			return
		}
		json.NewEncoder(w).Encode(StatsResponse{
			Generation: 4,
			Divergence: &DivergenceStats{
				Addresses: 3,
				Writers: []WriterDivergence{
					{ID: "wa", Records: 2, Agreements: 2, Missing: 1},
					{ID: "wb", Records: 3, Agreements: 2, Conflicts: 1, Exclusive: 1},
				},
			},
		})
	}))
	defer ts.Close()

	st, err := New(ts.URL).StatsDivergence(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Divergence == nil || st.Divergence.Addresses != 3 || len(st.Divergence.Writers) != 2 {
		t.Fatalf("divergence = %+v", st.Divergence)
	}
	if wb := st.Divergence.Writers[1]; wb.ID != "wb" || wb.Conflicts != 1 || wb.Exclusive != 1 {
		t.Fatalf("writer wb = %+v", wb)
	}
}
