package rdnsclient

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"rdnsprivacy/internal/testutil"
)

// pagedRangeServer serves total rows in pages of pageSize, injecting one
// pushback response (status + Retry-After) before the given page numbers
// (0-based). Each injected pushback fires once: the retry of the same
// cursor succeeds, which is exactly the mid-iteration weather a scan over
// a busy daemon sees.
func pagedRangeServer(total, pageSize int, pushback map[int]int) *httptest.Server {
	day := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	fired := map[int]bool{}
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := 0
		if cur := r.URL.Query().Get("cursor"); cur != "" {
			start, _ = strconv.Atoi(cur)
		}
		page := start / pageSize
		if status, ok := pushback[page]; ok && !fired[page] {
			fired[page] = true
			w.Header().Set("Retry-After", "1")
			code := CodeRateLimited
			if status == http.StatusServiceUnavailable {
				code = CodeOverloaded
			}
			writeEnvelope(w, status, code, fmt.Sprintf("pushback before page %d", page))
			return
		}
		resp := RangeResponse{Prefix: r.URL.Query().Get("prefix"), From: day, To: day}
		for i := start; i < total && len(resp.Rows) < pageSize; i++ {
			resp.Rows = append(resp.Rows, RangeRow{Date: day, IP: fmt.Sprintf("10.0.1.%d", i), PTR: "x.example.net."})
		}
		resp.Count = len(resp.Rows)
		if start+len(resp.Rows) < total {
			resp.NextCursor = strconv.Itoa(start + len(resp.Rows))
		}
		json.NewEncoder(w).Encode(resp)
	}))
}

// TestRangeIterRetriesMidIteration: a 429 before page 1 and a shedding
// 503 before page 2 are absorbed by the per-request retry loop — the
// iterator neither drops nor duplicates a row, and the injected sleeper
// observes exactly the two Retry-After waits.
func TestRangeIterRetriesMidIteration(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	ts := pagedRangeServer(10, 3, map[int]int{
		1: http.StatusTooManyRequests,
		2: http.StatusServiceUnavailable,
	})
	defer ts.Close()

	var slept []time.Duration
	c := New(ts.URL, WithRetries(2, 10*time.Second))
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	rows, err := c.RangeAll(context.Background(), RangeQuery{Prefix: "10.0.1.0/24", Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
	for i, r := range rows {
		if r.IP != fmt.Sprintf("10.0.1.%d", i) {
			t.Fatalf("row %d is %s: pushback skipped or duplicated rows", i, r.IP)
		}
	}
	if len(slept) != 2 || slept[0] != time.Second || slept[1] != time.Second {
		t.Fatalf("slept %v, want two 1s Retry-After waits", slept)
	}
}

// TestRangeIterRetriesExhausted: when the pushback outlasts the retry
// budget the iterator stops at the failing page, surfaces the typed
// error, and stays stopped.
func TestRangeIterRetriesExhausted(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	day := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("cursor") != "" { // every page after the first sheds
			w.Header().Set("Retry-After", "1")
			writeEnvelope(w, http.StatusServiceUnavailable, CodeOverloaded, "shedding")
			return
		}
		json.NewEncoder(w).Encode(RangeResponse{
			Prefix: "10.0.1.0/24", From: day, To: day, Count: 1,
			Rows:       []RangeRow{{Date: day, IP: "10.0.1.0", PTR: "x.example.net."}},
			NextCursor: "1",
		})
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(1, time.Second))
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	it := c.Range(RangeQuery{Prefix: "10.0.1.0/24"})
	ctx := context.Background()
	var pages int
	for it.Next(ctx) {
		pages++
	}
	if pages != 1 {
		t.Fatalf("fetched %d pages before the failure, want 1", pages)
	}
	if !IsOverloaded(it.Err()) {
		t.Fatalf("iterator error: %v", it.Err())
	}
	if it.Next(ctx) {
		t.Fatal("a failed iterator yielded another page")
	}
	if len(it.Page().Rows) != 1 {
		t.Fatal("failure clobbered the last good page")
	}
}

// TestNameIterRetriesMidIteration mirrors the range test over postings:
// a mid-scan 429 with Retry-After is invisible to the consumer.
func TestNameIterRetriesMidIteration(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	day := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	const total, pageSize = 5, 2
	fired := false
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := 0
		if cur := r.URL.Query().Get("cursor"); cur != "" {
			start, _ = strconv.Atoi(cur)
		}
		if start == pageSize && !fired { // once, before the second page
			fired = true
			w.Header().Set("Retry-After", "3")
			writeEnvelope(w, http.StatusTooManyRequests, CodeRateLimited, "slow down")
			return
		}
		resp := NameResponse{Token: r.URL.Query().Get("token")}
		for i := start; i < total && len(resp.Postings) < pageSize; i++ {
			resp.Postings = append(resp.Postings, NamePosting{Prefix: fmt.Sprintf("10.0.%d.0/24", i), First: day, Last: day})
		}
		resp.Count = len(resp.Postings)
		if start+len(resp.Postings) < total {
			resp.NextCursor = strconv.Itoa(start + len(resp.Postings))
		}
		json.NewEncoder(w).Encode(resp)
	}))
	defer ts.Close()

	var slept []time.Duration
	c := New(ts.URL, WithRetries(1, 10*time.Second))
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	got, err := c.NameAll(context.Background(), "brian")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != total {
		t.Fatalf("got %d postings, want %d", len(got), total)
	}
	for i, p := range got {
		if p.Prefix != fmt.Sprintf("10.0.%d.0/24", i) {
			t.Fatalf("posting %d is %s: retry skipped or duplicated", i, p.Prefix)
		}
	}
	if len(slept) != 1 || slept[0] != 3*time.Second {
		t.Fatalf("slept %v, want one 3s Retry-After wait", slept)
	}
}

// TestNameIterErrorStops: a hard mid-scan failure (400, not retryable)
// stops the name iterator with the typed error.
func TestNameIterErrorStops(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, http.StatusBadRequest, CodeBadParam, "missing token parameter")
	}))
	defer ts.Close()
	it := New(ts.URL).Name(NameQuery{Token: ""})
	if it.Next(context.Background()) {
		t.Fatal("rejected query yielded a page")
	}
	ae, ok := it.Err().(*APIError)
	if !ok || ae.Code != CodeBadParam {
		t.Fatalf("iterator error: %v", it.Err())
	}
}
