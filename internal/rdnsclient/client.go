package rdnsclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"rdnsprivacy/internal/telemetry"
)

// APIError is a non-2xx v1 response, carrying the envelope's code and
// message, the HTTP status, and any Retry-After hint.
type APIError struct {
	Status     int
	Code       string
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("rdnsd: %s (%d %s)", e.Message, e.Status, e.Code)
}

// IsRateLimited reports whether err is a 429 APIError.
func IsRateLimited(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Status == http.StatusTooManyRequests
}

// IsOverloaded reports whether err is a load-shedding 503 APIError.
func IsOverloaded(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Status == http.StatusServiceUnavailable
}

// CorrHeader is the wire header carrying a request's cross-process
// correlation ID (telemetry.CorrID, 16 hex digits). A client configured
// with WithTrace stamps it on every request; the daemon continues the
// span server-side under the same ID, so per-process trace dumps stitch
// back into one causal chain (obs.Stitch). See docs/observability.md.
const CorrHeader = "X-Rdns-Corr"

// RequestInfo describes one completed request (including failed ones)
// to a WithRequestHook observer.
type RequestInfo struct {
	// Corr is the correlation ID the request carried (0 without WithTrace).
	Corr uint64
	// Path is the endpoint path ("/v1/at").
	Path string
	// Attempts counts transmissions, 1 plus any 429/503 retries.
	Attempts int
	// Elapsed spans first transmission to final verdict.
	Elapsed time.Duration
	// Err is the final error, nil on success.
	Err error
}

// Client talks to one rdnsd's v1 API. Methods are safe for concurrent
// use; the zero value is not usable — construct with New.
type Client struct {
	base    string
	hc      *http.Client
	apiKey  string
	retries int           // extra attempts after a 429/503
	maxWait time.Duration // cap on one Retry-After sleep
	sleep   func(ctx context.Context, d time.Duration) error

	traceSeed int64
	traced    bool
	tracer    *telemetry.Tracer
	seq       atomic.Int64
	hook      func(RequestInfo)
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// custom transports). cmd/rdnsload uses this to drive an in-process
// handler without sockets.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WithAPIKey sends key as the X-API-Key header on every request — the
// identity the daemon's per-client rate limiter buckets on.
func WithAPIKey(key string) Option {
	return func(c *Client) { c.apiKey = key }
}

// WithRetries sets how many times a 429 or shedding 503 is retried
// (default 3), honoring the server's Retry-After capped at maxWait
// (default 5s; 0 keeps it). WithRetries(0, 0) surfaces every 429
// immediately — what a load generator measuring pushback wants.
func WithRetries(n int, maxWait time.Duration) Option {
	return func(c *Client) {
		c.retries = n
		if maxWait > 0 {
			c.maxWait = maxWait
		}
	}
}

// WithTrace enables cross-process correlation: every request carries an
// X-Rdns-Corr header derived deterministically from (seed, API key,
// path, request sequence) via telemetry.CorrID, and — when tr is non-nil
// — opens a "rdnsq.client" span under that ID recording each
// transmission attempt and the final status. The daemon continues the
// span server-side, so the two processes' trace dumps stitch into one
// chain. A nil tr still sends the header (correlate without tracing).
func WithTrace(seed int64, tr *telemetry.Tracer) Option {
	return func(c *Client) {
		c.traced = true
		c.traceSeed = seed
		c.tracer = tr
	}
}

// WithRequestHook calls hook after every completed request with its
// correlation ID, path, attempt count, elapsed time and final error —
// the tap cmd/rdnsload uses to feed latency exemplars. The hook runs on
// the requesting goroutine and must be safe for concurrent use.
func WithRequestHook(hook func(RequestInfo)) Option {
	return func(c *Client) { c.hook = hook }
}

// New creates a client for the daemon at base (e.g.
// "http://127.0.0.1:8077").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{Timeout: 30 * time.Second},
		retries: 3,
		maxWait: 5 * time.Second,
		sleep:   sleepCtx,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// do issues one request with 429/503 retries and decodes a 200 into out.
func (c *Client) do(ctx context.Context, method, path string, q url.Values, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var corr uint64
	var span *telemetry.Span
	var start time.Time
	attempts := 0
	if c.traced {
		// The ID keys on the client identity and a per-client sequence, so
		// two requests to the same path stay distinguishable while a seeded
		// replay of the same request schedule reproduces the same IDs.
		corr = telemetry.CorrID(c.traceSeed, c.apiKey+" "+path, int(c.seq.Add(1)))
		span = c.tracer.StartSpanCorr("rdnsq.client", path, corr)
	}
	if c.traced || c.hook != nil {
		start = time.Now()
	}
	finish := func(err error) error {
		if span != nil {
			status := uint64(http.StatusOK)
			var ae *APIError
			if errors.As(err, &ae) {
				status = uint64(ae.Status)
			} else if err != nil {
				status = 0 // transport failure: no HTTP verdict
			}
			span.Event("status", status)
			span.End()
		}
		if c.hook != nil {
			c.hook(RequestInfo{Corr: corr, Path: path, Attempts: attempts, Elapsed: time.Since(start), Err: err})
		}
		return err
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, u, nil)
		if err != nil {
			return finish(fmt.Errorf("rdnsclient: %w", err))
		}
		if c.apiKey != "" {
			req.Header.Set("X-API-Key", c.apiKey)
		}
		if corr != 0 {
			req.Header.Set(CorrHeader, fmt.Sprintf("%016x", corr))
		}
		attempts++
		span.Event("tx", uint64(attempts))
		resp, err := c.hc.Do(req)
		if err != nil {
			return finish(fmt.Errorf("rdnsclient: %s %s: %w", method, path, err))
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if err != nil {
			return finish(fmt.Errorf("rdnsclient: reading %s: %w", path, err))
		}
		if resp.StatusCode == http.StatusOK {
			if out == nil {
				return finish(nil)
			}
			if err := json.Unmarshal(body, out); err != nil {
				return finish(fmt.Errorf("rdnsclient: decoding %s: %w", path, err))
			}
			return finish(nil)
		}
		apiErr := decodeError(resp, body)
		retryable := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		if !retryable || attempt >= c.retries {
			return finish(apiErr)
		}
		wait := apiErr.RetryAfter
		if wait <= 0 {
			wait = 50 * time.Millisecond << attempt // no hint: modest backoff
		}
		if wait > c.maxWait {
			wait = c.maxWait
		}
		if err := c.sleep(ctx, wait); err != nil {
			return finish(err)
		}
	}
}

// decodeError turns a non-200 response into an *APIError, tolerating
// non-envelope bodies (proxies, panics).
func decodeError(resp *http.Response, body []byte) *APIError {
	ae := &APIError{Status: resp.StatusCode, Code: CodeInternal}
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		ae.Code = env.Error.Code
		ae.Message = env.Error.Message
	} else {
		ae.Message = strings.TrimSpace(string(body))
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

// At asks /v1/at: the name ip held at instant t (zero t means "now").
func (c *Client) At(ctx context.Context, ip string, t time.Time) (AtResponse, error) {
	q := url.Values{"ip": {ip}}
	if !t.IsZero() {
		q.Set("t", t.UTC().Format(time.RFC3339))
	}
	var out AtResponse
	err := c.do(ctx, http.MethodGet, "/v1/at", q, &out)
	return out, err
}

// RangeQuery parameterizes /v1/range. Zero From/To default to the
// store's full history; Limit 0 uses the server default page size.
type RangeQuery struct {
	Prefix string
	From   time.Time
	To     time.Time
	Limit  int
}

func (q RangeQuery) values(cursor string) url.Values {
	v := url.Values{"prefix": {q.Prefix}}
	if !q.From.IsZero() {
		v.Set("from", q.From.UTC().Format(time.RFC3339))
	}
	if !q.To.IsZero() {
		v.Set("to", q.To.UTC().Format(time.RFC3339))
	}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	if cursor != "" {
		v.Set("cursor", cursor)
	}
	return v
}

// RangePage fetches one page of /v1/range, resuming at cursor ("" for the
// first page).
func (c *Client) RangePage(ctx context.Context, q RangeQuery, cursor string) (RangeResponse, error) {
	var out RangeResponse
	err := c.do(ctx, http.MethodGet, "/v1/range", q.values(cursor), &out)
	return out, err
}

// Range returns a pagination iterator over /v1/range:
//
//	it := c.Range(q)
//	for it.Next(ctx) { use(it.Page()) }
//	if err := it.Err(); err != nil { ... }
func (c *Client) Range(q RangeQuery) *RangeIter {
	return &RangeIter{c: c, q: q}
}

// RangeIter walks /v1/range pages. Next fetches the next page and reports
// whether one arrived; it returns false at the end of the scan or on the
// first error (check Err).
type RangeIter struct {
	c       *Client
	q       RangeQuery
	cursor  string
	page    RangeResponse
	err     error
	started bool
	done    bool
}

func (it *RangeIter) Next(ctx context.Context) bool {
	if it.done || it.err != nil {
		return false
	}
	page, err := it.c.RangePage(ctx, it.q, it.cursor)
	if err != nil {
		it.err = err
		return false
	}
	it.started = true
	it.page = page
	it.cursor = page.NextCursor
	if page.NextCursor == "" {
		it.done = true
	}
	return true
}

// Page returns the page the last successful Next fetched.
func (it *RangeIter) Page() RangeResponse { return it.page }

// Err returns the first error the iteration hit, if any.
func (it *RangeIter) Err() error { return it.err }

// RangeAll drains every page of a range scan into one slice — the
// convenience path for bounded answers; prefer the iterator for
// million-row prefixes.
func (c *Client) RangeAll(ctx context.Context, q RangeQuery) ([]RangeRow, error) {
	it := c.Range(q)
	var rows []RangeRow
	for it.Next(ctx) {
		rows = append(rows, it.Page().Rows...)
	}
	return rows, it.Err()
}

// Churn asks /v1/churn for prefix over [from, to] (zero instants default
// to full history).
func (c *Client) Churn(ctx context.Context, prefix string, from, to time.Time) (ChurnResponse, error) {
	q := url.Values{"prefix": {prefix}}
	if !from.IsZero() {
		q.Set("from", from.UTC().Format(time.RFC3339))
	}
	if !to.IsZero() {
		q.Set("to", to.UTC().Format(time.RFC3339))
	}
	var out ChurnResponse
	err := c.do(ctx, http.MethodGet, "/v1/churn", q, &out)
	return out, err
}

// NameQuery parameterizes /v1/name.
type NameQuery struct {
	Token string
	Limit int
}

// NamePage fetches one page of /v1/name postings.
func (c *Client) NamePage(ctx context.Context, q NameQuery, cursor string) (NameResponse, error) {
	v := url.Values{"token": {q.Token}}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	if cursor != "" {
		v.Set("cursor", cursor)
	}
	var out NameResponse
	err := c.do(ctx, http.MethodGet, "/v1/name", v, &out)
	return out, err
}

// Name returns a pagination iterator over /v1/name postings.
func (c *Client) Name(q NameQuery) *NameIter {
	return &NameIter{c: c, q: q}
}

// NameIter walks /v1/name pages; same contract as RangeIter.
type NameIter struct {
	c      *Client
	q      NameQuery
	cursor string
	page   NameResponse
	err    error
	done   bool
}

func (it *NameIter) Next(ctx context.Context) bool {
	if it.done || it.err != nil {
		return false
	}
	page, err := it.c.NamePage(ctx, it.q, it.cursor)
	if err != nil {
		it.err = err
		return false
	}
	it.page = page
	it.cursor = page.NextCursor
	if page.NextCursor == "" {
		it.done = true
	}
	return true
}

func (it *NameIter) Page() NameResponse { return it.page }
func (it *NameIter) Err() error         { return it.err }

// NameAll drains every posting page for token.
func (c *Client) NameAll(ctx context.Context, token string) ([]NamePosting, error) {
	it := c.Name(NameQuery{Token: token})
	var out []NamePosting
	for it.Next(ctx) {
		out = append(out, it.Page().Postings...)
	}
	return out, it.Err()
}

// Days asks /v1/days.
func (c *Client) Days(ctx context.Context) (DaysResponse, error) {
	var out DaysResponse
	err := c.do(ctx, http.MethodGet, "/v1/days", nil, &out)
	return out, err
}

// Stats asks /v1/stats.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// StatsDivergence GETs /v1/stats?divergence=1: the stats body plus the
// per-writer disagreement summary of a multi-vantage store. Costlier
// than Stats — the server walks every live record.
func (c *Client) StatsDivergence(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", url.Values{"divergence": {"1"}}, &out)
	return out, err
}

// Reload POSTs /v1/admin/reload: swap the daemon onto a freshly opened
// store handle without dropping in-flight queries.
func (c *Client) Reload(ctx context.Context) (ReloadResponse, error) {
	var out ReloadResponse
	err := c.do(ctx, http.MethodPost, "/v1/admin/reload", nil, &out)
	return out, err
}
