package rdnsclient

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Replication feed wire contract (see docs/replication.md). A primary
// exposes its histstore file set under /v1/repl/*; replicas pull sealed
// segments once (resumable range fetches, content-addressed by trailer
// CRC), tail deltas incrementally, and commit generations locally. The
// feed types mirror histstore's FeedManifest — defined here, like every
// other wire type, so the contract cannot drift between the two sides.

// ReplSegment is one sealed segment in a replication manifest. CRC is
// the segment trailer's footer CRC: the content address a replica
// verifies its download against before committing.
type ReplSegment struct {
	File  string `json:"file"`
	First int    `json:"first"`
	Count int    `json:"count"`
	Size  int64  `json:"size"`
	CRC   uint32 `json:"crc"`
}

// ReplWriter is one writer's share of a replication manifest. TailSize
// counts the committed bytes of the active tail; the feed never serves
// past it.
type ReplWriter struct {
	ID        string        `json:"id"`
	FileSeq   int           `json:"file_seq"`
	TailFile  string        `json:"tail_file"`
	TailFirst int           `json:"tail_first"`
	TailSize  int64         `json:"tail_size"`
	Segments  []ReplSegment `json:"segments,omitempty"`
}

// ReplManifest is GET /v1/repl/manifest: a self-consistent point-in-time
// description of the primary's replicable file set, plus the primary's
// serving generation and snapshot horizon so replicas can report lag.
type ReplManifest struct {
	Generation   int64        `json:"generation"`
	BaseInterval int          `json:"base_interval"`
	Snapshots    int          `json:"snapshots"`
	LastSnap     time.Time    `json:"last_snap,omitzero"`
	TotalBytes   int64        `json:"total_bytes"`
	Writers      []ReplWriter `json:"writers"`
}

// ReplTailInfo is the tail identity a /v1/repl/tail response carries in
// its X-Repl-Tail-* headers: which file the writer is appending to, its
// first writer-local snapshot, and the committed size.
type ReplTailInfo struct {
	File  string
	First int
	Size  int64
}

// ReplicaStats is a replica daemon's lag report inside /v1/stats: how
// far behind the primary it is, in snapshots and bytes, plus cumulative
// sync counters. Zero BytesBehind with non-zero Syncs means caught up as
// of LastSync.
type ReplicaStats struct {
	Source          string    `json:"source"`
	LastSnap        time.Time `json:"last_snap,omitzero"`
	LastSync        time.Time `json:"last_sync,omitzero"`
	BytesBehind     int64     `json:"bytes_behind"`
	SnapshotsBehind int       `json:"snapshots_behind"`
	Syncs           uint64    `json:"syncs"`
	SyncErrors      uint64    `json:"sync_errors"`
	SegmentsFetched uint64    `json:"segments_fetched"`
	BytesFetched    int64     `json:"bytes_fetched"`
}

// ReplManifest asks GET /v1/repl/manifest.
func (c *Client) ReplManifest(ctx context.Context) (ReplManifest, error) {
	var out ReplManifest
	err := c.do(ctx, http.MethodGet, "/v1/repl/manifest", nil, &out)
	return out, err
}

// ReplSegment fetches up to n bytes of a sealed segment starting at off
// (n <= 0 lets the server pick its chunk cap), returning the chunk and
// the segment's total size. Segments are immutable: any window is
// stable, so interrupted downloads resume by offset.
func (c *Client) ReplSegment(ctx context.Context, name string, off int64, n int) ([]byte, int64, error) {
	q := url.Values{"off": {strconv.FormatInt(off, 10)}}
	if n > 0 {
		q.Set("n", strconv.Itoa(n))
	}
	body, hdr, err := c.doRaw(ctx, "/v1/repl/segment/"+url.PathEscape(name), q)
	if err != nil {
		return nil, 0, err
	}
	size, err := strconv.ParseInt(hdr.Get("X-Repl-Size"), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("rdnsclient: repl segment %q: bad X-Repl-Size %q", name, hdr.Get("X-Repl-Size"))
	}
	return body, size, nil
}

// ReplTail fetches up to n bytes of writer's committed tail starting at
// off, plus the tail's identity. A non-empty file pins the expected tail
// file name: if compaction has since started a fresh tail the server
// answers 409 repl_changed (surfaced as *APIError) and the replica must
// refetch the manifest. off == committed size returns an empty chunk.
func (c *Client) ReplTail(ctx context.Context, writer, file string, off int64, n int) ([]byte, ReplTailInfo, error) {
	q := url.Values{"off": {strconv.FormatInt(off, 10)}}
	if file != "" {
		q.Set("file", file)
	}
	if n > 0 {
		q.Set("n", strconv.Itoa(n))
	}
	var info ReplTailInfo
	body, hdr, err := c.doRaw(ctx, "/v1/repl/tail/"+url.PathEscape(writer), q)
	if err != nil {
		return nil, info, err
	}
	info.File = hdr.Get("X-Repl-Tail-File")
	if info.First, err = strconv.Atoi(hdr.Get("X-Repl-Tail-First")); err != nil {
		return nil, info, fmt.Errorf("rdnsclient: repl tail %q: bad X-Repl-Tail-First %q", writer, hdr.Get("X-Repl-Tail-First"))
	}
	if info.Size, err = strconv.ParseInt(hdr.Get("X-Repl-Tail-Size"), 10, 64); err != nil {
		return nil, info, fmt.Errorf("rdnsclient: repl tail %q: bad X-Repl-Tail-Size %q", writer, hdr.Get("X-Repl-Tail-Size"))
	}
	return body, info, nil
}

// doRaw issues one GET for a binary feed payload with the same 429/503
// Retry-After retry loop as do, returning the body bytes and headers.
func (c *Client) doRaw(ctx context.Context, path string, q url.Values) ([]byte, http.Header, error) {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("rdnsclient: %w", err)
		}
		if c.apiKey != "" {
			req.Header.Set("X-API-Key", c.apiKey)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return nil, nil, fmt.Errorf("rdnsclient: GET %s: %w", path, err)
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("rdnsclient: reading %s: %w", path, err)
		}
		if resp.StatusCode == http.StatusOK {
			return body, resp.Header, nil
		}
		apiErr := decodeError(resp, body)
		retryable := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		if !retryable || attempt >= c.retries {
			return nil, nil, apiErr
		}
		wait := apiErr.RetryAfter
		if wait <= 0 {
			wait = 50 * time.Millisecond << attempt
		}
		if wait > c.maxWait {
			wait = c.maxWait
		}
		if err := c.sleep(ctx, wait); err != nil {
			return nil, nil, err
		}
	}
}
