package vantage

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"rdnsprivacy/internal/analysis"
	"rdnsprivacy/internal/textplot"
)

// Render writes the report as a text dashboard: per-vantage totals, the
// day-by-day disagreement classes as sparklines, the campaign's
// classification breakdown, and the corroboration ledger — the
// cmd/rdnsvantage output.
func (r *Report) Render(w io.Writer) {
	rows := make([][]string, 0, len(r.PerVantage))
	for _, vt := range r.PerVantage {
		rows = append(rows, []string{
			vt.Name,
			strconv.Itoa(vt.Agreements),
			strconv.Itoa(vt.Missed),
			strconv.Itoa(vt.OnlyAt),
			strconv.Itoa(vt.Conflicts),
			strconv.Itoa(vt.Lagged),
			strconv.Itoa(vt.Corroborated),
		})
	}
	textplot.Table(w, fmt.Sprintf("per-vantage totals (%d days, lag window %d)", len(r.Days), r.LagWindow),
		[]string{"vantage", "agree", "missed", "only-at", "conflict", "lagged", "corrob"}, rows)
	fmt.Fprintln(w)

	series := func(pick func(DayReport) float64) analysis.Series {
		s := analysis.Series{
			Dates:  make([]time.Time, len(r.Days)),
			Values: make([]float64, len(r.Days)),
		}
		for i, d := range r.Days {
			s.Dates[i] = d.Date
			s.Values[i] = pick(d)
		}
		return s
	}
	textplot.TimeSeries(w, "disagreement classes per day", []textplot.LabeledSeries{
		{Label: "missed", Series: series(func(d DayReport) float64 { return float64(d.Missed) })},
		{Label: "only-at", Series: series(func(d DayReport) float64 { return float64(d.OnlyAt) })},
		{Label: "conflicts", Series: series(func(d DayReport) float64 { return float64(d.Conflicts) })},
		{Label: "lagged", Series: series(func(d DayReport) float64 { return float64(d.Lagged) })},
		{Label: "changes", Series: series(func(d DayReport) float64 { return float64(d.Changes) })},
		{Label: "corrob%", Series: series(func(d DayReport) float64 { return d.MeanCorroboration * 100 })},
	}, 31)

	textplot.Breakdown(w, "campaign classification totals", map[string]int{
		"agreements": r.Totals.Agreements,
		"missed":     r.Totals.Missed,
		"only-at":    r.Totals.OnlyAt,
		"conflicts":  r.Totals.Conflicts,
		"lagged":     r.Totals.Lagged,
	})
	fmt.Fprintf(w, "\n%d reference changes, %d fully corroborated; mean corroboration %.4f (digest %s)\n",
		r.Totals.Changes, r.Totals.FullyCorroborated, r.Totals.MeanCorroboration, r.Digest())
}
