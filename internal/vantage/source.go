package vantage

import (
	"context"
	"fmt"
	"sort"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/faultsim"
	"rdnsprivacy/internal/scan"
	"rdnsprivacy/internal/scanengine"
)

// lagSalt mixes the stale-view decision away from the fault chain: the
// same (seed, name) must be able to lag without also dropping.
const lagSalt = 0x1A66

// FaultError is the terminal error a vantage's lens reports for a record
// every attempt lost — it surfaces in the sweep's Stats.Errors and, when
// the resilience layer is active, in the day's HealthReport.
type FaultError struct {
	// IP is the affected address; Outcome the last attempt's verdict.
	IP      dnswire.IPv4
	Outcome faultsim.Outcome
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("vantage fault: %s %s", e.IP, e.Outcome)
}

// lens is one vantage's view of the universe: a ShardSource wrapping the
// campaign's UniverseSource that loses, corrupts-to-error, and time-lags
// records per the vantage's profile before the engine sees them.
//
// The engine's bulk path bypasses its own resilience retries (see
// scanengine.ShardSource), so the lens applies the vantage's
// Retry.MaxAttempts itself: a record dropped on attempt 0 may pass on
// attempt 1, exactly like a wire-path retry through the injector —
// attempt numbers advance per day so retries never replay a prior day's
// verdict. Everything is a pure function of (vantage seed, reverse
// question name, day, attempt), so sweeps replay bit-identically
// regardless of worker scheduling.
type lens struct {
	src *scan.UniverseSource
	v   *Vantage
	met *metrics
}

func newLens(src *scan.UniverseSource, v *Vantage, met *metrics) *lens {
	return &lens{src: src, v: v, met: met}
}

// Targets delegates to the underlying source.
func (l *lens) Targets() []dnswire.Prefix { return l.src.Targets() }

// LookupPTR implements scanengine.Source. The engine prefers the bulk
// path; spot checks see the vantage's current view without faults.
func (l *lens) LookupPTR(ctx context.Context, ip dnswire.IPv4) scanengine.Result {
	return l.src.LookupPTR(ctx, ip)
}

// ScanShard implements scanengine.ShardSource: enumerate the shard at
// the snapshot instant (and at the stale instant when the vantage lags),
// pick each address's view, then roll the fault chain per attempt.
func (l *lens) ScanShard(ctx context.Context, shard dnswire.Prefix, at time.Time, emit func(scanengine.Result)) error {
	cur := make(map[dnswire.IPv4]dnswire.Name)
	if err := l.src.ScanShard(ctx, shard, at, func(r scanengine.Result) {
		if r.Found {
			cur[r.IP] = r.Name
		}
	}); err != nil {
		return err
	}
	view := cur
	var stale map[dnswire.IPv4]dnswire.Name
	if l.v.LagRate > 0 {
		stale = make(map[dnswire.IPv4]dnswire.Name)
		staleAt := at.Add(-time.Duration(l.v.lagDays()) * 24 * time.Hour)
		if err := l.src.ScanShard(ctx, shard, staleAt, func(r scanengine.Result) {
			if r.Found {
				stale[r.IP] = r.Name
			}
		}); err != nil {
			return err
		}
	}

	// The union, sorted: lag can surface records the current view no
	// longer has, and a deterministic walk keeps per-shard effects (and
	// metric counts) schedule-independent.
	ips := make([]dnswire.IPv4, 0, len(cur))
	for ip := range cur {
		ips = append(ips, ip)
	}
	for ip := range stale {
		if _, ok := cur[ip]; !ok {
			ips = append(ips, ip)
		}
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i].Uint32() < ips[j].Uint32() })

	day := uint64(at.Unix() / 86400)
	attempts := uint64(l.v.attempts())
	for _, ip := range ips {
		qname := dnswire.ReverseName(ip)
		if stale != nil && faultsim.Roll(l.v.Seed, qname, lagSalt, day) < l.v.LagRate {
			view = stale
			l.met.lagged.Inc()
		} else {
			view = cur
		}
		name, present := view[ip]
		if !present {
			continue // the chosen view has nothing here: plain absence
		}
		out := faultsim.OutcomePass
		if p := faultsim.ProfileFor(l.v.Faults, ip); p != nil {
			for k := uint64(0); k < attempts; k++ {
				out = p.Sample(l.v.Seed, qname, day*attempts+k)
				if out == faultsim.OutcomePass {
					break
				}
				l.met.faults.Inc()
			}
		}
		if out == faultsim.OutcomePass {
			emit(scanengine.Result{IP: ip, Name: name, Found: true})
		} else {
			l.met.lostRecords.Inc()
			emit(scanengine.Result{IP: ip, Err: &FaultError{IP: ip, Outcome: out}})
		}
	}
	return ctx.Err()
}
