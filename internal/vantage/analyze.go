package vantage

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/obs"
)

// Config tunes the disagreement analyzer.
type Config struct {
	// LagWindow is the agreement window in snapshots: a vantage whose
	// view matches a reference state at most LagWindow snapshots old is
	// lagged, not wrong. Values below 1 mean 1.
	LagWindow int
	// Writers restricts the analysis to a subset of the store's writers
	// (nil means all). Order is irrelevant; the report sorts by name.
	Writers []string
}

func (c Config) lagWindow() int {
	if c.LagWindow < 1 {
		return 1
	}
	return c.LagWindow
}

// Tally is one disagreement ledger — a day's, or the whole campaign's.
// Counts are per-octet classifications against the cross-vantage
// reference view (see docs/campaigns.md for the taxonomy).
type Tally struct {
	// Agreements counts records every vantage held with the reference
	// name.
	Agreements int `json:"agreements"`
	// Missed counts (vantage, record) pairs where an established
	// reference record was absent from a vantage's view, beyond what the
	// lag window excuses.
	Missed int `json:"missed"`
	// OnlyAt counts (vantage, record) pairs exactly one vantage held and
	// the reference never established.
	OnlyAt int `json:"only_at"`
	// Conflicts counts (vantage, record) pairs whose name differed from
	// the reference, beyond what the lag window excuses.
	Conflicts int `json:"conflicts"`
	// Lagged counts deviations the lag window excused: the vantage
	// matched a reference state at most LagWindow snapshots old (a miss
	// of a brand-new record, a stale name, a stale leftover).
	Lagged int `json:"lagged"`
	// Changes counts reference-view PTR transitions; FullyCorroborated
	// how many every vantage's view confirmed within the lag window.
	Changes           int `json:"changes"`
	FullyCorroborated int `json:"fully_corroborated"`
	// MeanCorroboration is the mean per-change corroboration score in
	// [0,1] — 1 when there were no changes. The campaign total weights
	// by change, not by day.
	MeanCorroboration float64 `json:"mean_corroboration"`
}

// VantageTally is one vantage's share of a ledger: how its own view
// deviated, and how many reference changes it corroborated.
type VantageTally struct {
	Name string `json:"name"`
	// Agreements counts records this vantage held with the reference
	// name (regardless of the other vantages).
	Agreements int `json:"agreements"`
	Missed     int `json:"missed,omitempty"`
	OnlyAt     int `json:"only_at,omitempty"`
	Conflicts  int `json:"conflicts,omitempty"`
	Lagged     int `json:"lagged,omitempty"`
	// Corroborated counts reference changes this vantage's view
	// confirmed within the lag window.
	Corroborated int `json:"corroborated,omitempty"`
}

// DayReport is one snapshot day's analysis: the reference view's size
// and churn, the day's disagreement ledger, and each vantage's share.
type DayReport struct {
	// Date is the snapshot instant.
	Date time.Time `json:"date"`
	// Addresses is the reference view's record count this day.
	Addresses int `json:"addresses"`
	// Added/Removed/Changed count the reference view's churn against the
	// previous day (day 0 diffs against empty: everything is added).
	Added   int `json:"added"`
	Removed int `json:"removed"`
	Changed int `json:"changed"`
	Tally
	// Vantages holds each vantage's share, in report writer order.
	Vantages []VantageTally `json:"vantages"`
}

// Stats converts the day to the obs-local frame mirror.
func (d DayReport) Stats(vantages int) obs.VantageStats {
	return obs.VantageStats{
		Vantages:          vantages,
		Agreements:        d.Agreements,
		Missed:            d.Missed,
		OnlyAt:            d.OnlyAt,
		Conflicts:         d.Conflicts,
		Lagged:            d.Lagged,
		Changes:           d.Changes,
		FullyCorroborated: d.FullyCorroborated,
		MeanCorroboration: d.MeanCorroboration,
	}
}

// Report is a campaign's full disagreement analysis — pure data,
// JSON-serializable, deterministic for a given store state and config.
type Report struct {
	// Vantages are the analyzed writer ids, sorted; per-vantage slices
	// throughout the report follow this order.
	Vantages []string `json:"vantages"`
	// LagWindow is the agreement window the analysis used.
	LagWindow int `json:"lag_window"`
	// Days holds one entry per snapshot day, in time order.
	Days []DayReport `json:"days"`
	// Totals aggregates the campaign; PerVantage each vantage's share.
	Totals     Tally          `json:"totals"`
	PerVantage []VantageTally `json:"per_vantage"`
}

// Digest is a 64-bit FNV-1a over the report's canonical JSON, in hex —
// the replay-determinism fingerprint: same seeds, same digest.
func (r *Report) Digest() string {
	b, err := json.Marshal(r)
	if err != nil {
		return ""
	}
	h := fnv.New64a()
	h.Write(b)
	return obs.Hex16(h.Sum64())
}

// Transition is one reference-view PTR change annotated with which
// vantages corroborated it — the casestudy surface: an entry-series
// transition a single lossy vantage saw is an artifact, one every
// vantage confirms is churn.
type Transition struct {
	Date time.Time    `json:"date"`
	IP   dnswire.IPv4 `json:"ip"`
	// Kind is "added", "removed", or "changed".
	Kind string `json:"kind"`
	// Old and New are the names before and after (empty on add/remove).
	Old dnswire.Name `json:"old,omitempty"`
	New dnswire.Name `json:"new,omitempty"`
	// CorroboratedBy lists the vantages whose own views confirmed the
	// post-change state within the lag window, sorted; Score is that
	// fraction of all vantages.
	CorroboratedBy []string `json:"corroborated_by,omitempty"`
	Score          float64  `json:"score"`
}

// analyzer carries the per-writer views and the day axis through a run.
type analyzer struct {
	names []string
	views []*histstore.WriterView
	days  []time.Time
	lag   int
}

func newAnalyzer(st *histstore.Store, cfg Config) (*analyzer, error) {
	names := cfg.Writers
	if len(names) == 0 {
		names = st.Writers()
	}
	names = append([]string(nil), names...)
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("vantage: store has no writers")
	}
	a := &analyzer{names: names, lag: cfg.lagWindow()}
	for _, n := range names {
		v, err := st.WriterView(n)
		if err != nil {
			return nil, err
		}
		a.views = append(a.views, v)
	}
	var all []time.Time
	for _, v := range a.views {
		all = append(all, v.Times()...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Before(all[j]) })
	for _, t := range all {
		if len(a.days) == 0 || t.After(a.days[len(a.days)-1]) {
			a.days = append(a.days, t)
		}
	}
	return a, nil
}

// Analyze reconstructs every writer's view of the store day by day and
// classifies their divergence against the cross-vantage reference: per
// /24, per octet, per day, each vantage either agrees, lags, misses,
// conflicts, or holds a record only it saw — and every reference-view
// PTR change gets a corroboration score. The result is deterministic:
// writer views, sorted block and day axes, and fixed octet order leave
// nothing to scheduling.
//
// The reference view is the plurality name among the vantages holding a
// record (ties to the lexicographically smallest name); a record only
// one of several vantages holds enters the reference only while it was
// already established the previous day.
func Analyze(st *histstore.Store, cfg Config) (*Report, error) {
	a, err := newAnalyzer(st, cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Vantages: a.names, LagWindow: a.lag, Days: make([]DayReport, len(a.days))}
	for k, d := range a.days {
		rep.Days[k].Date = d
		rep.Days[k].Vantages = make([]VantageTally, len(a.names))
		for i, n := range a.names {
			rep.Days[k].Vantages[i].Name = n
		}
	}
	corroSum := make([]float64, len(a.days))
	for _, p := range st.Blocks() {
		if err := a.analyzeBlock(p, rep, corroSum, nil); err != nil {
			return nil, err
		}
	}
	a.finalize(rep, corroSum)
	return rep, nil
}

// Transitions lists the reference view's PTR changes within prefix p
// (the zero Prefix means everywhere), each annotated with its
// corroborating vantages — the input casestudy uses to annotate entry
// series. Order is day-major, then address.
func Transitions(st *histstore.Store, p dnswire.Prefix, cfg Config) ([]Transition, error) {
	a, err := newAnalyzer(st, cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Days: make([]DayReport, len(a.days))}
	for k := range a.days {
		rep.Days[k].Vantages = make([]VantageTally, len(a.names))
	}
	corroSum := make([]float64, len(a.days))
	perDay := make([][]Transition, len(a.days))
	for _, block := range st.Blocks() {
		if p != (dnswire.Prefix{}) && !p.Overlaps(block) {
			continue
		}
		err := a.analyzeBlock(block, rep, corroSum, func(k int, tr Transition) {
			if p == (dnswire.Prefix{}) || p.Contains(tr.IP) {
				perDay[k] = append(perDay[k], tr)
			}
		})
		if err != nil {
			return nil, err
		}
	}
	var out []Transition
	for _, trs := range perDay {
		sort.Slice(trs, func(i, j int) bool { return trs[i].IP.Uint32() < trs[j].IP.Uint32() })
		out = append(out, trs...)
	}
	return out, nil
}

// analyzeBlock folds one /24's classifications into the report. The
// emit hook, when set, receives every reference transition in the block.
func (a *analyzer) analyzeBlock(p dnswire.Prefix, rep *Report, corroSum []float64, emit func(int, Transition)) error {
	W, D := len(a.views), len(a.days)

	// Every writer's block state on every day. BlockAt returns a private
	// copy (nil for "no records"), so holding all of them is safe.
	states := make([][]map[byte]dnswire.Name, W)
	empty := true
	for i, v := range a.views {
		states[i] = make([]map[byte]dnswire.Name, D)
		for k, d := range a.days {
			st, err := v.BlockAt(p, d)
			if err != nil {
				return err
			}
			states[i][k] = st
			if len(st) > 0 {
				empty = false
			}
		}
	}
	if empty {
		return nil
	}

	// The reference view, day by day: plurality among holders; a single
	// holder of several writers only carries an already-established
	// record forward.
	refs := make([]map[byte]dnswire.Name, D)
	for k := 0; k < D; k++ {
		ref := make(map[byte]dnswire.Name)
		for o := 0; o < 256; o++ {
			oct := byte(o)
			count := make(map[dnswire.Name]int)
			var solo dnswire.Name
			holders := 0
			for i := 0; i < W; i++ {
				if name, ok := states[i][k][oct]; ok {
					count[name]++
					solo = name
					holders++
				}
			}
			switch {
			case holders == 0:
			case holders >= 2 || W == 1:
				ref[oct] = plurality(count)
			default: // one holder of several writers
				if k > 0 {
					if _, established := refs[k-1][oct]; established {
						ref[oct] = solo
					}
				}
			}
		}
		refs[k] = ref
	}

	// refLacks reports whether the reference lacked oct at day j (days
	// before the campaign lack everything) — the "is this record newer
	// than the lag window" probe.
	refLacks := func(j int, oct byte) bool {
		if j < 0 {
			return true
		}
		_, ok := refs[j][oct]
		return !ok
	}
	// refHeld reports whether the reference held (oct → name) at day j.
	refHeld := func(j int, oct byte, name dnswire.Name) bool {
		if j < 0 {
			return false
		}
		return refs[j][oct] == name
	}

	for k := 0; k < D; k++ {
		day := &rep.Days[k]
		ref := refs[k]
		day.Addresses += len(ref)

		// Classification: every octet any view or the reference holds.
		for o := 0; o < 256; o++ {
			oct := byte(o)
			refName, inRef := ref[oct]
			if !inRef {
				// Off-reference records: a lone holder of a record the
				// reference never established (holders >= 2 would be in
				// the reference) — or a stale leftover the window excuses.
				for i := 0; i < W; i++ {
					name, has := states[i][k][oct]
					if !has {
						continue
					}
					vt := &day.Vantages[i]
					if a.excusedByLag(k, func(j int) bool { return refHeld(j, oct, name) }) {
						day.Lagged++
						vt.Lagged++
					} else {
						day.OnlyAt++
						vt.OnlyAt++
					}
				}
				continue
			}
			allAgree := true
			for i := 0; i < W; i++ {
				vt := &day.Vantages[i]
				name, has := states[i][k][oct]
				switch {
				case has && name == refName:
					vt.Agreements++
				case !has:
					allAgree = false
					// A record the reference only just gained is excused:
					// a lagged vantage would not have it yet.
					if a.excusedByLag(k, func(j int) bool { return refLacks(j, oct) }) {
						day.Lagged++
						vt.Lagged++
					} else {
						day.Missed++
						vt.Missed++
					}
				default:
					allAgree = false
					// A name the reference recently held is a lagged
					// view, not a conflicting observation.
					if a.excusedByLag(k, func(j int) bool { return refHeld(j, oct, name) }) {
						day.Lagged++
						vt.Lagged++
					} else {
						day.Conflicts++
						vt.Conflicts++
					}
				}
			}
			if allAgree {
				day.Agreements++
			}
		}

		// Reference churn and per-change corroboration.
		for o := 0; o < 256; o++ {
			oct := byte(o)
			var oldName dnswire.Name
			hadOld := false
			if k > 0 {
				oldName, hadOld = refs[k-1][oct]
			}
			newName, hasNew := ref[oct]
			if hadOld == hasNew && oldName == newName {
				continue
			}
			kind := "changed"
			switch {
			case !hadOld:
				kind = "added"
				day.Added++
			case !hasNew:
				kind = "removed"
				day.Removed++
			default:
				day.Changed++
			}
			day.Changes++
			var by []string
			for i := 0; i < W; i++ {
				confirmed := false
				for j := k; j <= k+a.lag && j < D; j++ {
					name, has := states[i][j][oct]
					if has == hasNew && name == newName {
						confirmed = true
						break
					}
				}
				if confirmed {
					by = append(by, a.names[i])
					day.Vantages[i].Corroborated++
				}
			}
			score := float64(len(by)) / float64(W)
			corroSum[k] += score
			if len(by) == W {
				day.FullyCorroborated++
			}
			if emit != nil {
				ip := dnswire.IPv4{p.Addr[0], p.Addr[1], p.Addr[2], oct}
				emit(k, Transition{
					Date: a.days[k], IP: ip, Kind: kind,
					Old: oldName, New: newName,
					CorroboratedBy: by, Score: score,
				})
			}
		}
	}
	return nil
}

// excusedByLag reports whether match holds for any day in the lag window
// [k-lag, k-1] (negative days allowed: match decides their meaning).
func (a *analyzer) excusedByLag(k int, match func(j int) bool) bool {
	for j := k - a.lag; j < k; j++ {
		if match(j) {
			return true
		}
	}
	return false
}

// plurality picks the most-held name, ties to the smallest.
func plurality(count map[dnswire.Name]int) dnswire.Name {
	var best dnswire.Name
	bestN := 0
	for name, n := range count {
		if n > bestN || (n == bestN && (bestN == 0 || name < best)) {
			best, bestN = name, n
		}
	}
	return best
}

// finalize computes the day means and campaign totals.
func (a *analyzer) finalize(rep *Report, corroSum []float64) {
	rep.PerVantage = make([]VantageTally, len(a.names))
	for i, n := range a.names {
		rep.PerVantage[i].Name = n
	}
	var changeSum float64
	for k := range rep.Days {
		day := &rep.Days[k]
		if day.Changes > 0 {
			day.MeanCorroboration = corroSum[k] / float64(day.Changes)
		} else {
			day.MeanCorroboration = 1
		}
		rep.Totals.Agreements += day.Agreements
		rep.Totals.Missed += day.Missed
		rep.Totals.OnlyAt += day.OnlyAt
		rep.Totals.Conflicts += day.Conflicts
		rep.Totals.Lagged += day.Lagged
		rep.Totals.Changes += day.Changes
		rep.Totals.FullyCorroborated += day.FullyCorroborated
		changeSum += corroSum[k]
		for i := range day.Vantages {
			vt, tot := day.Vantages[i], &rep.PerVantage[i]
			tot.Agreements += vt.Agreements
			tot.Missed += vt.Missed
			tot.OnlyAt += vt.OnlyAt
			tot.Conflicts += vt.Conflicts
			tot.Lagged += vt.Lagged
			tot.Corroborated += vt.Corroborated
		}
	}
	if rep.Totals.Changes > 0 {
		rep.Totals.MeanCorroboration = changeSum / float64(rep.Totals.Changes)
	} else {
		rep.Totals.MeanCorroboration = 1
	}
}
