package vantage_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/faultsim"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/obs"
	"rdnsprivacy/internal/scan"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
	"rdnsprivacy/internal/testutil"
	"rdnsprivacy/internal/vantage"
)

var update = flag.Bool("update", false, "rewrite golden files")

func testUniverse(tb testing.TB, seed uint64) *netsim.Universe {
	tb.Helper()
	u, err := netsim.BuildStudyUniverse(netsim.UniverseConfig{
		Seed:                  seed,
		FillerSlash24s:        30,
		LeakyNetworks:         4,
		NonLeakyDynamic:       1,
		PeoplePerDynamicBlock: 6,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return u
}

// threeVantages is the canonical test fleet: alpha measures cleanly,
// bravo loses and SERVFAILs a slice of its queries (one scan-level
// retry), charlie serves 30% of its answers from a day-old view.
func threeVantages(seed int64) []vantage.Vantage {
	everywhere := dnswire.Prefix{} // 0.0.0.0/0 contains everything
	return []vantage.Vantage{
		{Name: "alpha", Seed: seed + 1},
		{
			Name: "bravo", Seed: seed + 2,
			Faults: []faultsim.Profile{{Prefix: everywhere, Loss: 0.05, ServFailRate: 0.02}},
			Resilience: &scanengine.ResilienceConfig{
				Retry: scanengine.RetryPolicy{MaxAttempts: 2},
			},
		},
		{Name: "charlie", Seed: seed + 3, LagRate: 0.3, LagDays: 1},
	}
}

func runCampaign(tb testing.TB, seed int64, days int, rec *obs.Recorder, reg *telemetry.Registry) *vantage.Result {
	tb.Helper()
	start := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	res, err := vantage.Run(tb.Context(), vantage.Campaign{
		Universe:     testUniverse(tb, uint64(seed)),
		Start:        start,
		End:          start.AddDate(0, 0, days-1),
		Cadence:      scan.Daily,
		Workers:      4,
		Vantages:     threeVantages(seed),
		StoreDir:     tb.TempDir(),
		CompactEvery: 4,
		LagWindow:    1,
		Telemetry:    reg,
		Observer:     rec,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

// TestVantageGoldenReport pins a seeded 3-vantage 10-day campaign's full
// disagreement report and obs frame series against a golden file, and
// asserts the injected per-vantage faults land on the right vantages.
// Regenerate with: go test ./internal/vantage -run Golden -update
func TestVantageGoldenReport(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := obs.NewRecorder(reg)
	res := runCampaign(t, 42, 10, rec, reg)
	rep := res.Report
	if len(rep.Days) != 10 {
		t.Fatalf("report days = %d, want 10", len(rep.Days))
	}
	if len(res.Dates) != 10 {
		t.Fatalf("dates = %d, want 10", len(res.Dates))
	}
	for _, vr := range res.Vantages {
		if vr.Err != nil {
			t.Fatalf("vantage %s: %v", vr.Name, vr.Err)
		}
		if len(vr.Days) != 10 {
			t.Fatalf("vantage %s: %d day tallies, want 10", vr.Name, len(vr.Days))
		}
	}

	// Vantage attribution: the faults we injected show up on the vantage
	// that has them, and nowhere harder than the clean baseline.
	per := make(map[string]vantage.VantageTally)
	for _, vt := range rep.PerVantage {
		per[vt.Name] = vt
	}
	alpha, bravo, charlie := per["alpha"], per["bravo"], per["charlie"]
	if alpha.Conflicts != 0 {
		t.Errorf("clean alpha has %d conflicts", alpha.Conflicts)
	}
	if bravo.Missed+bravo.Lagged == 0 {
		t.Errorf("lossy bravo shows no missed/lagged records")
	}
	if bravo.Missed+bravo.Lagged <= alpha.Missed+alpha.Lagged {
		t.Errorf("lossy bravo (%d) not above clean alpha (%d) on missed+lagged",
			bravo.Missed+bravo.Lagged, alpha.Missed+alpha.Lagged)
	}
	if charlie.Lagged == 0 {
		t.Errorf("laggy charlie shows no lagged records")
	}
	if charlie.Lagged <= alpha.Lagged {
		t.Errorf("laggy charlie (%d) not above clean alpha (%d) on lagged",
			charlie.Lagged, alpha.Lagged)
	}
	if rep.Totals.Changes == 0 {
		t.Error("campaign saw no reference changes")
	}
	if rep.Totals.MeanCorroboration <= 0 || rep.Totals.MeanCorroboration > 1 {
		t.Errorf("mean corroboration %v out of range", rep.Totals.MeanCorroboration)
	}

	// Frames carry the vantage block and pass through the SLO rule.
	frames := rec.Frames()
	if len(frames) != 10 {
		t.Fatalf("frames = %d, want 10", len(frames))
	}
	for i, f := range frames {
		if f.Vantage == nil {
			t.Fatalf("frame %d has no vantage stats", i)
		}
		if f.Vantage.Vantages != 3 {
			t.Fatalf("frame %d vantages = %d, want 3", i, f.Vantage.Vantages)
		}
	}
	framesDigest, err := obs.FramesDigest(frames)
	if err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	enc := json.NewEncoder(&got)
	enc.SetIndent("", "  ")
	for _, v := range []any{
		map[string]string{
			"report_digest": rep.Digest(),
			"frames_digest": obs.Hex16(framesDigest),
		},
		rep,
		frames,
	} {
		if err := enc.Encode(v); err != nil {
			t.Fatal(err)
		}
	}
	golden := filepath.Join("testdata", "vantage_report.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("golden mismatch (regenerate with -update if intended)\ngot:\n%s", got.String())
	}
}

// TestVantageReplayDeterminism replays seeded campaigns across many
// seeds: same seeds, bit-identical report JSON, report digest, and obs
// frame digests — the campaign contract everything downstream (goldens,
// dashboards, SLO verdicts) rests on.
func TestVantageReplayDeterminism(t *testing.T) {
	seeds := int64(50)
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(0); seed < seeds; seed++ {
		reg1 := telemetry.NewRegistry()
		rec1 := obs.NewRecorder(reg1)
		res1 := runCampaign(t, seed, 3, rec1, reg1)
		reg2 := telemetry.NewRegistry()
		rec2 := obs.NewRecorder(reg2)
		res2 := runCampaign(t, seed, 3, rec2, reg2)

		if d1, d2 := res1.Report.Digest(), res2.Report.Digest(); d1 != d2 {
			t.Fatalf("seed %d: report digest %s != %s", seed, d2, d1)
		}
		j1, _ := json.Marshal(res1.Report)
		j2, _ := json.Marshal(res2.Report)
		if !bytes.Equal(j1, j2) {
			t.Fatalf("seed %d: report JSON diverged", seed)
		}
		f1, err := obs.FramesDigest(rec1.Frames())
		if err != nil {
			t.Fatal(err)
		}
		f2, err := obs.FramesDigest(rec2.Frames())
		if err != nil {
			t.Fatal(err)
		}
		if f1 != f2 {
			t.Fatalf("seed %d: frames digest %016x != %016x", seed, f2, f1)
		}
	}
}

// TestVantageCampaignRace is the -race battery: three vantage appenders
// writing the same store concurrently with live per-writer compaction,
// observer reads hammering the frame ring mid-run, then concurrent
// disagreement reads (Divergence, per-writer views, a full Analyze) on
// the reopened store. VerifyNoLeaks proves every goroutine drains.
func TestVantageCampaignRace(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	reg := telemetry.NewRegistry()
	rec := obs.NewRecorder(reg)
	dir := t.TempDir()
	start := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)

	done := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = rec.Frames()
			}
		}()
	}
	res, err := vantage.Run(t.Context(), vantage.Campaign{
		Universe:     testUniverse(t, 7),
		Start:        start,
		End:          start.AddDate(0, 0, 7),
		Cadence:      scan.Daily,
		Workers:      4,
		Vantages:     threeVantages(7),
		StoreDir:     dir,
		CompactEvery: 2,
		Telemetry:    reg,
		Observer:     rec,
	})
	close(done)
	readers.Wait()
	if err != nil {
		t.Fatal(err)
	}

	ro, err := histstore.Open(dir, histstore.WithReadOnly(), histstore.WithCache(64))
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			div := ro.Divergence()
			if len(div.Writers) != 3 {
				t.Errorf("divergence writers = %d, want 3", len(div.Writers))
			}
			for _, w := range []string{"alpha", "bravo", "charlie"} {
				v, err := ro.WriterView(w)
				if err != nil {
					t.Error(err)
					return
				}
				times := v.Times()
				if len(times) != 8 {
					t.Errorf("writer %s: %d snapshots, want 8", w, len(times))
					return
				}
				for _, p := range v.Blocks() {
					if _, err := v.BlockAt(p, times[len(times)-1]); err != nil {
						t.Error(err)
						return
					}
				}
			}
			rep, err := vantage.Analyze(ro, vantage.Config{LagWindow: 1})
			if err != nil {
				t.Error(err)
				return
			}
			if d := rep.Digest(); d != res.Report.Digest() {
				t.Errorf("concurrent analyze digest %s != campaign %s", d, res.Report.Digest())
			}
		}()
	}
	wg.Wait()
}

// TestTransitions checks the casestudy surface: transitions are in
// day-then-address order, scores match the vantage sets, and restricting
// by prefix filters rows.
func TestTransitions(t *testing.T) {
	dir := t.TempDir()
	start := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	res, err := vantage.Run(t.Context(), vantage.Campaign{
		Universe:  testUniverse(t, 11),
		Start:     start,
		End:       start.AddDate(0, 0, 4),
		Cadence:   scan.Daily,
		Workers:   4,
		Vantages:  threeVantages(11),
		StoreDir:  dir,
		LagWindow: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ro, err := histstore.Open(dir, histstore.WithReadOnly(), histstore.WithCache(64))
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	trs, err := vantage.Transitions(ro, dnswire.Prefix{}, vantage.Config{LagWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != res.Report.Totals.Changes {
		t.Fatalf("transitions = %d, want report total %d", len(trs), res.Report.Totals.Changes)
	}
	for i, tr := range trs {
		if tr.Score < 0 || tr.Score > 1 {
			t.Fatalf("transition %d score %v out of range", i, tr.Score)
		}
		if float64(len(tr.CorroboratedBy))/3 != tr.Score {
			t.Fatalf("transition %d: score %v does not match %d corroborators",
				i, tr.Score, len(tr.CorroboratedBy))
		}
		if i > 0 && trs[i-1].Date.After(tr.Date) {
			t.Fatalf("transition %d out of date order", i)
		}
		if i > 0 && trs[i-1].Date.Equal(tr.Date) && trs[i-1].IP.Uint32() >= tr.IP.Uint32() {
			t.Fatalf("transition %d out of address order", i)
		}
	}
	// Prefix restriction: one /24's transitions are exactly the full
	// list filtered to it.
	p := trs[0].IP.Slash24()
	sub, err := vantage.Transitions(ro, p, vantage.Config{LagWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, tr := range trs {
		if p.Contains(tr.IP) {
			want++
		}
	}
	if len(sub) != want {
		t.Fatalf("prefix transitions = %d, want %d", len(sub), want)
	}
}

// TestCampaignValidation covers the orchestrator's rejection paths.
func TestCampaignValidation(t *testing.T) {
	u := testUniverse(t, 1)
	base := vantage.Campaign{Universe: u, StoreDir: t.TempDir(),
		Vantages: []vantage.Vantage{{Name: "a"}}}
	cases := []struct {
		name string
		mut  func(*vantage.Campaign)
	}{
		{"no universe", func(c *vantage.Campaign) { c.Universe = nil }},
		{"no store", func(c *vantage.Campaign) { c.StoreDir = "" }},
		{"no vantages", func(c *vantage.Campaign) { c.Vantages = nil }},
		{"unnamed vantage", func(c *vantage.Campaign) { c.Vantages = []vantage.Vantage{{}} }},
		{"duplicate vantage", func(c *vantage.Campaign) {
			c.Vantages = []vantage.Vantage{{Name: "a"}, {Name: "a"}}
		}},
	}
	for _, tc := range cases {
		c := base
		tc.mut(&c)
		if _, err := vantage.Run(t.Context(), c); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

// BenchmarkVantageMerge measures the read-side cost of provenance: point
// queries against a 3-writer merged store versus an equivalent
// single-writer store over the same universe and day count.
func BenchmarkVantageMerge(b *testing.B) {
	start := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 0, 9)
	buildMulti := func(dir string) {
		_, err := vantage.Run(b.Context(), vantage.Campaign{
			Universe: testUniverse(b, 42),
			Start:    start, End: end,
			Cadence:  scan.Daily,
			Workers:  4,
			Vantages: threeVantages(42),
			StoreDir: dir,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	buildSolo := func(dir string) {
		_, err := vantage.Run(b.Context(), vantage.Campaign{
			Universe: testUniverse(b, 42),
			Start:    start, End: end,
			Cadence:  scan.Daily,
			Workers:  4,
			Vantages: []vantage.Vantage{{Name: "solo", Seed: 43}},
			StoreDir: dir,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	bench := func(b *testing.B, dir string) {
		ro, err := histstore.Open(dir, histstore.WithReadOnly(), histstore.WithCache(4096))
		if err != nil {
			b.Fatal(err)
		}
		defer ro.Close()
		blocks := ro.Blocks()
		times := ro.Times()
		at := times[len(times)-1]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := blocks[i%len(blocks)]
			ip := dnswire.IPv4{p.Addr[0], p.Addr[1], p.Addr[2], byte(i % 256)}
			if _, _, err := ro.At(ip, at); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("merged3", func(b *testing.B) {
		dir := b.TempDir()
		buildMulti(dir)
		bench(b, dir)
	})
	b.Run("solo", func(b *testing.B) {
		dir := b.TempDir()
		buildSolo(dir)
		bench(b, dir)
	})
}
