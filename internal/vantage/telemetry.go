package vantage

import "rdnsprivacy/internal/telemetry"

// Metric names the orchestrator registers when Campaign.Telemetry is set
// (see docs/campaigns.md and docs/telemetry.md).
const (
	// MetricSweeps counts completed per-vantage daily sweeps.
	MetricSweeps = "vantage_sweeps_total"
	// MetricAppends counts per-vantage store appends.
	MetricAppends = "vantage_appends_total"
	// MetricFaults counts attempt-level injected fault verdicts across
	// every vantage's lens (a record retried twice then lost counts 3).
	MetricFaults = "vantage_faults_total"
	// MetricLostRecords counts records a vantage's lens dropped after
	// exhausting its retries — the records that go missing from that
	// vantage's view.
	MetricLostRecords = "vantage_lost_records_total"
	// MetricLagged counts records a vantage answered from its stale view.
	MetricLagged = "vantage_lagged_records_total"
	// MetricDisagreements counts analyzer classifications that deviate
	// from the cross-vantage reference beyond the lag window's excuse
	// (missed + only-at + conflicts; lag-excused deviations count under
	// MetricLagged-adjacent report fields instead).
	MetricDisagreements = "vantage_disagreements_total"
	// MetricChanges counts reference-view PTR transitions the analyzer
	// saw; MetricCorroborated how many every vantage confirmed.
	MetricChanges      = "vantage_changes_total"
	MetricCorroborated = "vantage_corroborated_changes_total"
)

// metrics holds the pre-resolved instrument handles; a nil sink leaves
// them nil and every increment no-ops through telemetry's nil-receiver
// contract (the histstore idiom).
type metrics struct {
	sweeps        *telemetry.Counter
	appends       *telemetry.Counter
	faults        *telemetry.Counter
	lostRecords   *telemetry.Counter
	lagged        *telemetry.Counter
	disagreements *telemetry.Counter
	changes       *telemetry.Counter
	corroborated  *telemetry.Counter
}

func newMetrics(sink telemetry.Sink) *metrics {
	if sink == nil {
		return &metrics{}
	}
	return &metrics{
		sweeps:        sink.Counter(MetricSweeps),
		appends:       sink.Counter(MetricAppends),
		faults:        sink.Counter(MetricFaults),
		lostRecords:   sink.Counter(MetricLostRecords),
		lagged:        sink.Counter(MetricLagged),
		disagreements: sink.Counter(MetricDisagreements),
		changes:       sink.Counter(MetricChanges),
		corroborated:  sink.Counter(MetricCorroborated),
	}
}

// observeReport folds the analyzer's totals into the campaign counters.
func (m *metrics) observeReport(r *Report) {
	if r == nil {
		return
	}
	t := r.Totals
	m.disagreements.Add(uint64(t.Missed + t.OnlyAt + t.Conflicts))
	m.changes.Add(uint64(t.Changes))
	m.corroborated.Add(uint64(t.FullyCorroborated))
}
