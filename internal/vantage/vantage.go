// Package vantage runs multi-vantage scan campaigns: N named vantage
// points sweep the same simulated universe concurrently, each through
// its own seeded fault profile, and each appends to the shared history
// store under its own writer identity (per-writer tails; see
// docs/storage.md). Read back with provenance, the per-writer views
// disagree exactly where the measurement paths differed — and the
// disagreement analyzer (analyze.go) classifies that divergence per /24
// per day and scores how well each PTR change is corroborated across
// vantages.
//
// The paper's longitudinal measurements come from a single vantage
// point, which cannot distinguish real churn from measurement-path
// artifacts (loss, resolver lag, broken delegations along one path).
// Running the same universe through several fault lenses makes the
// distinction measurable: a transition every vantage sees within a small
// lag window is churn; one only a single lossy vantage sees is an
// artifact. Everything is deterministic — each vantage's faults are a
// pure function of (vantage seed, question name, day, attempt) via
// faultsim's hash construction, so replaying a campaign from its seeds
// reproduces stores, reports, and obs frames bit-identically.
package vantage

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/faultsim"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/obs"
	"rdnsprivacy/internal/scan"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
)

// Vantage is one measurement vantage point: a name (its histstore writer
// identity), a fault seed, and the path conditions between it and the
// universe under measurement.
type Vantage struct {
	// Name is the vantage's writer id in the shared store (1..64 bytes
	// of [a-z0-9_-], same rule as histstore.WithWriter).
	Name string
	// Seed drives every fault decision this vantage makes. Two vantages
	// with equal profiles but different seeds miss different records —
	// which is the point.
	Seed int64
	// Faults are the per-prefix fault profiles along this vantage's
	// path. Only the hash-rate fields (Loss, ServFailRate, RefusedRate)
	// apply on the enumeration fast path; the most specific prefix
	// containing an address governs it.
	Faults []faultsim.Profile
	// Resilience is the vantage's scan resilience config. Its
	// Retry.MaxAttempts re-rolls injected faults deterministically (a
	// drop on attempt 0 may pass on attempt 1 — scan-level retries
	// really do recover records), and the whole config is handed to the
	// snapshot engine for wire-path sweeps. Nil means one attempt.
	Resilience *scanengine.ResilienceConfig
	// LagRate is the fraction of addresses whose answer this vantage
	// serves from a stale view — a slow secondary, a caching resolver —
	// chosen per (seed, address, day). LagDays is how stale (min 1 when
	// LagRate > 0).
	LagRate float64
	LagDays int
}

// Campaign is a multi-vantage longitudinal scan: scan.Campaign's
// coverage knobs plus the vantage set and the shared store directory.
type Campaign struct {
	// Universe is the address space under measurement.
	Universe *netsim.Universe
	// Start and End delimit the campaign (inclusive).
	Start, End time.Time
	// Cadence selects daily or weekly snapshots.
	Cadence scan.Cadence
	// TimeOfDay is when each snapshot is taken (default 13:00, matching
	// scan.Campaign). All vantages snapshot the same instant: the merged
	// timeline carries one entry per (day, vantage) at equal instants,
	// resolved deterministically by writer id.
	TimeOfDay time.Duration
	// Networks restricts the campaign to the named networks; SkipFiller
	// omits filler blocks in whole-universe scans.
	Networks   []string
	SkipFiller bool
	// Workers bounds each vantage's snapshot engine pool.
	Workers int
	// Vantages are the vantage points; at least one, names unique.
	Vantages []Vantage
	// StoreDir is the shared history store directory. Every vantage
	// appends under its own writer id; the analyzer reads the merged
	// store back with provenance.
	StoreDir string
	// StoreOptions are extra per-vantage store options (base interval,
	// cache size). Writer identity is set per vantage; do not pass
	// WithWriter here.
	StoreOptions []histstore.Option
	// CompactEvery, when > 0, seals each vantage's tail into a segment
	// after every N appends — the live-compaction regime the race
	// battery exercises.
	CompactEvery int
	// LagWindow is the analyzer's agreement window in snapshots (see
	// Config.LagWindow). Zero means the largest vantage LagDays, min 1.
	LagWindow int
	// Telemetry, when set, receives the vantage_* instruments plus every
	// engine's scan_* metrics. Nil keeps the zero-overhead path.
	Telemetry telemetry.Sink
	// Observer, when set, captures one obs.Frame per campaign day after
	// the run — sweep tallies summed across vantages, reference-view
	// churn, store stats, and the day's VantageStats — and is the input
	// to Rules.MinCorroboration. Nil skips capture.
	Observer *obs.Recorder
}

// VantageRun is one vantage's sweep outcome.
type VantageRun struct {
	// Name is the vantage.
	Name string
	// Days holds one engine tally per campaign date, in date order.
	Days []scanengine.Stats
	// Err is the vantage's first store failure (append or compaction);
	// nil when every snapshot persisted.
	Err error
}

// Result is the product of a multi-vantage campaign.
type Result struct {
	// Dates are the campaign's snapshot dates.
	Dates []time.Time
	// Vantages holds one run record per vantage, in campaign order.
	Vantages []VantageRun
	// Report is the disagreement analysis over the merged store.
	Report *Report
}

func (c *Campaign) timeOfDay() time.Duration {
	if c.TimeOfDay == 0 {
		return 13 * time.Hour
	}
	return c.TimeOfDay
}

func (c *Campaign) lagWindow() int {
	if c.LagWindow > 0 {
		return c.LagWindow
	}
	w := 1
	for _, v := range c.Vantages {
		if v.LagRate > 0 && v.lagDays() > w {
			w = v.lagDays()
		}
	}
	return w
}

func (v *Vantage) lagDays() int {
	if v.LagDays < 1 {
		return 1
	}
	return v.LagDays
}

func (v *Vantage) attempts() int {
	if v.Resilience == nil || v.Resilience.Retry.MaxAttempts < 1 {
		return 1
	}
	return v.Resilience.Retry.MaxAttempts
}

// validate rejects campaigns the orchestrator cannot run deterministically.
func (c *Campaign) validate() error {
	if c.Universe == nil {
		return fmt.Errorf("vantage: campaign needs a universe")
	}
	if c.StoreDir == "" {
		return fmt.Errorf("vantage: campaign needs a store directory")
	}
	if len(c.Vantages) == 0 {
		return fmt.Errorf("vantage: campaign needs at least one vantage")
	}
	seen := make(map[string]bool, len(c.Vantages))
	for _, v := range c.Vantages {
		if v.Name == "" {
			return fmt.Errorf("vantage: vantage needs a name")
		}
		if seen[v.Name] {
			return fmt.Errorf("vantage: duplicate vantage %q", v.Name)
		}
		seen[v.Name] = true
	}
	return nil
}

// Run executes the campaign: one goroutine per vantage sweeps every
// date through its fault lens and appends to the shared store under its
// writer id, then the merged store is reopened read-only and analyzed.
//
// Every vantage's store handle opens before any append starts — a
// store's append-monotonicity floor is the latest instant visible at its
// open, so a handle opened mid-campaign would reject the dates its
// siblings already wrote (see the multi-writer serving tests for the
// same pattern).
func Run(ctx context.Context, c Campaign) (*Result, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	met := newMetrics(c.Telemetry)
	dates := dataset.DateRange(c.Start, c.End, c.Cadence.IntervalDays())
	res := &Result{Dates: dates, Vantages: make([]VantageRun, len(c.Vantages))}

	stores := make([]*histstore.Store, len(c.Vantages))
	for i, v := range c.Vantages {
		opts := append([]histstore.Option{histstore.WithWriter(v.Name)}, c.StoreOptions...)
		st, err := histstore.Open(c.StoreDir, opts...)
		if err != nil {
			for _, open := range stores[:i] {
				open.Close()
			}
			return nil, fmt.Errorf("vantage %q: %w", v.Name, err)
		}
		stores[i] = st
	}

	var wg sync.WaitGroup
	for i := range c.Vantages {
		wg.Add(1)
		go func(vi int) {
			defer wg.Done()
			c.runVantage(ctx, vi, stores[vi], dates, &res.Vantages[vi], met)
		}(i)
	}
	wg.Wait()
	var closeErr error
	for _, st := range stores {
		if err := st.Close(); err != nil && closeErr == nil {
			closeErr = err
		}
	}
	if closeErr != nil {
		return res, closeErr
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}

	ro, err := histstore.Open(c.StoreDir, histstore.WithReadOnly(), histstore.WithCache(4096))
	if err != nil {
		return res, err
	}
	defer ro.Close()
	report, err := Analyze(ro, Config{LagWindow: c.lagWindow()})
	if err != nil {
		return res, err
	}
	res.Report = report
	met.observeReport(report)
	c.captureFrames(ro, res)
	return res, nil
}

// runVantage sweeps every date through one vantage's lens.
func (c *Campaign) runVantage(ctx context.Context, vi int, st *histstore.Store, dates []time.Time, out *VantageRun, met *metrics) {
	v := c.Vantages[vi]
	out.Name = v.Name
	base := scan.Campaign{
		Universe:   c.Universe,
		Networks:   c.Networks,
		SkipFiller: c.SkipFiller,
	}
	lens := newLens(scan.NewSource(base), &v, met)
	opts := []scanengine.Option{}
	if c.Workers > 0 {
		opts = append(opts, scanengine.WithWorkers(c.Workers))
	}
	if c.Telemetry != nil {
		opts = append(opts, scanengine.WithTelemetry(c.Telemetry))
	}
	if v.Resilience != nil {
		opts = append(opts, scanengine.WithResilience(*v.Resilience))
	}
	sc := scanengine.New(lens, opts...)
	targets := lens.Targets()
	for i, d := range dates {
		at := d.Add(c.timeOfDay())
		snap, err := sc.Scan(ctx, scanengine.Request{Targets: targets, At: at})
		if err != nil {
			out.Err = err
			return
		}
		out.Days = append(out.Days, snap.Stats)
		met.sweeps.Inc()
		if out.Err == nil {
			if out.Err = st.Append(at, snap.Records); out.Err == nil {
				met.appends.Inc()
				if c.CompactEvery > 0 && (i+1)%c.CompactEvery == 0 {
					_, out.Err = st.CompactWriter(ctx, v.Name, histstore.CompactOptions{MinSeal: c.CompactEvery})
				}
			}
		}
	}
}

// captureFrames emits one obs frame per campaign day, post-run: engine
// tallies summed across vantages, the reference view's size and churn,
// the shared store's state, and the day's disagreement stats. Frames are
// captured after every sweep completed, so counter deltas land on the
// first frame and the digests are schedule-independent.
func (c *Campaign) captureFrames(ro *histstore.Store, res *Result) {
	if c.Observer == nil || res.Report == nil {
		return
	}
	c.Observer.SetStoreStats(func() obs.StoreStats { return storeStats(ro) })
	defer c.Observer.SetStoreStats(nil)
	for i, day := range res.Report.Days {
		f := obs.Frame{Index: i, Date: day.Date}
		for _, vr := range res.Vantages {
			if i < len(vr.Days) {
				f.Probes += vr.Days[i].Probes
				f.Found += vr.Days[i].Found
				f.Absent += vr.Days[i].Absent
				f.Errors += vr.Days[i].Errors
				f.Retries += vr.Days[i].Retries
				f.Skipped += vr.Days[i].Skipped
				f.CacheHits += vr.Days[i].CacheHits
			}
		}
		f.Records = day.Addresses
		f.Added, f.Removed, f.Changed = day.Added, day.Removed, day.Changed
		vs := day.Stats(len(res.Report.Vantages))
		f.Vantage = &vs
		c.Observer.Capture(f)
	}
}

// storeStats converts the store's summary to the obs-local mirror.
func storeStats(st *histstore.Store) obs.StoreStats {
	s := st.Stats()
	return obs.StoreStats{
		Snapshots:       s.Snapshots,
		Blocks:          s.Blocks,
		BaseFrames:      s.BaseFrames,
		DeltaFrames:     s.DeltaFrames,
		Bytes:           s.Bytes,
		Segments:        s.Segments,
		SealedBytes:     s.SealedBytes,
		HotSegments:     s.HotSegments,
		Writers:         len(s.Writers),
		Compactions:     s.Compaction.Runs,
		SealedSnapshots: s.Compaction.SealedSnapshots,
		ReclaimedBytes:  s.Compaction.ReclaimedBytes,
	}
}

// Names returns the campaign's vantage names sorted — the analyzer's
// writer order.
func (c *Campaign) Names() []string {
	out := make([]string, len(c.Vantages))
	for i, v := range c.Vantages {
		out[i] = v.Name
	}
	sort.Strings(out)
	return out
}
