package vantage_test

import (
	"bytes"
	"strings"
	"testing"
)

// TestRenderDashboard sanity-checks the text dashboard: every vantage is
// listed, every disagreement class has a sparkline row, and the summary
// line carries the report digest — the contract cmd/rdnsvantage prints.
func TestRenderDashboard(t *testing.T) {
	res := runCampaign(t, 42, 3, nil, nil)
	var buf bytes.Buffer
	res.Report.Render(&buf)
	out := buf.String()
	for _, want := range []string{
		"per-vantage totals (3 days, lag window 1)",
		"alpha", "bravo", "charlie",
		"disagreement classes per day",
		"missed", "only-at", "conflicts", "lagged", "changes", "corrob%",
		"campaign classification totals",
		"agreements",
		string(res.Report.Digest()),
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "reference changes") != 1 {
		t.Fatalf("summary line missing:\n%s", out)
	}
}
