package dnsserver

import (
	"net"
	"testing"

	"rdnsprivacy/internal/dnswire"
)

func TestHandleQueryUDPTruncatesLargeResponses(t *testing.T) {
	old := MaxUDPResponse
	MaxUDPResponse = 64
	defer func() { MaxUDPResponse = old }()

	s := NewServer()
	z := testZone(t)
	s.AddZone(z)
	ip := dnswire.MustIPv4("192.0.2.10")
	z.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("a-rather-long-client-device-name.dyn.campus-a.edu"))

	q := dnswire.NewQuery(3, dnswire.ReverseName(ip), dnswire.TypePTR)
	wire, _ := q.Marshal()
	respWire := s.HandleQueryUDP(wire)
	if respWire == nil {
		t.Fatal("no response")
	}
	resp, err := dnswire.Unmarshal(respWire)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Truncated {
		t.Fatal("TC bit not set on oversized response")
	}
	if len(resp.Answers) != 0 {
		t.Fatal("truncated response still carries answers")
	}
	// Over TCP the same query returns the full answer.
	msgs := s.handleTCP(wire)
	if len(msgs) != 1 {
		t.Fatalf("tcp messages = %d", len(msgs))
	}
	full, err := dnswire.Unmarshal(msgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if full.Header.Truncated || len(full.Answers) != 1 {
		t.Fatalf("tcp answer: tc=%v answers=%d", full.Header.Truncated, len(full.Answers))
	}
}

func TestHandleQueryUDPSmallResponsesUntouched(t *testing.T) {
	s := NewServer()
	z := testZone(t)
	s.AddZone(z)
	ip := dnswire.MustIPv4("192.0.2.10")
	z.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("h.example.edu"))
	q := dnswire.NewQuery(4, dnswire.ReverseName(ip), dnswire.TypePTR)
	wire, _ := q.Marshal()
	resp, err := dnswire.Unmarshal(s.HandleQueryUDP(wire))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Truncated || len(resp.Answers) != 1 {
		t.Fatalf("small response mangled: %+v", resp.Header)
	}
}

func TestAXFRStreamEnvelopes(t *testing.T) {
	// Many records force multiple envelope messages; SOA must open and
	// close the stream.
	s := NewServer()
	z := testZone(t)
	s.AddZone(z)
	s.SetTransferPolicy(true)
	for i := 1; i < 250; i++ {
		ip := dnswire.MustPrefix("192.0.2.0/24").Nth(i)
		name, _ := dnswire.MustName("dyn.campus-a.edu").Prepend("host-" + ip.String())
		_ = name
		target, err := dnswire.MustName("dyn.campus-a.edu").Prepend("h" + ip.String()[8:])
		if err != nil {
			t.Fatal(err)
		}
		z.SetPTR(dnswire.ReverseName(ip), target)
	}
	q := dnswire.NewQuery(9, z.Origin(), dnswire.TypeAXFR)
	wire, _ := q.Marshal()
	msgs := s.handleTCP(wire)
	if len(msgs) < 2 {
		t.Fatalf("envelopes = %d, want several", len(msgs))
	}
	soa, ptr := 0, 0
	var first, last dnswire.Record
	for i, m := range msgs {
		parsed, err := dnswire.Unmarshal(m)
		if err != nil {
			t.Fatal(err)
		}
		for j, rr := range parsed.Answers {
			if i == 0 && j == 0 {
				first = rr
			}
			last = rr
			switch rr.Type {
			case dnswire.TypeSOA:
				soa++
			case dnswire.TypePTR:
				ptr++
			}
		}
	}
	if soa != 2 {
		t.Fatalf("SOA count = %d, want 2", soa)
	}
	if ptr != 249 {
		t.Fatalf("PTR count = %d, want 249", ptr)
	}
	if first.Type != dnswire.TypeSOA || last.Type != dnswire.TypeSOA {
		t.Fatal("stream not SOA-delimited")
	}
}

func TestAXFRRefusedWithoutPolicy(t *testing.T) {
	s := NewServer()
	z := testZone(t)
	s.AddZone(z)
	q := dnswire.NewQuery(9, z.Origin(), dnswire.TypeAXFR)
	wire, _ := q.Marshal()
	msgs := s.handleTCP(wire)
	if len(msgs) != 1 {
		t.Fatalf("messages = %d", len(msgs))
	}
	resp, err := dnswire.Unmarshal(msgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeRefused {
		t.Fatalf("RCode = %v, want REFUSED", resp.Header.RCode)
	}
}

func TestServeTCPOverLoopback(t *testing.T) {
	s := NewServer()
	z := testZone(t)
	s.AddZone(z)
	ip := dnswire.MustIPv4("192.0.2.10")
	z.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("h.example.edu"))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback TCP: %v", err)
	}
	defer ln.Close()
	go s.ServeTCP(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnswire.NewQuery(5, dnswire.ReverseName(ip), dnswire.TypePTR)
	wire, _ := q.Marshal()
	if err := writeFramed(conn, wire); err != nil {
		t.Fatal(err)
	}
	respWire, err := readFramed(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.Unmarshal(respWire)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
}
