package dnsserver

import (
	"rdnsprivacy/internal/telemetry"
)

// Metric names the server registers when SetTelemetry is configured.
const (
	// MetricQueries counts queries received (including ones dropped or
	// unparseable).
	MetricQueries = "dnsserver_queries_total"
	// MetricDropped counts queries silently dropped (malformed packets
	// and injected drops).
	MetricDropped = "dnsserver_dropped_total"
	// MetricZoneWalkDepth is the histogram of suffix probes findZone
	// performed per lookup — how deep the zone-cut walk had to go.
	MetricZoneWalkDepth = "dnsserver_zonewalk_depth"
	// metricAnswerPrefix prefixes the per-RCODE answer counters:
	// dnsserver_answers_total{rcode="NXDOMAIN"} etc.
	metricAnswerPrefix = `dnsserver_answers_total{rcode="`
)

// MetricAnswer returns the counter name for answers with one RCODE
// mnemonic ("NOERROR", "NXDOMAIN", "SERVFAIL", "REFUSED", "FORMERR",
// "NOTIMP").
func MetricAnswer(rcode string) string {
	return metricAnswerPrefix + rcode + `"}`
}

// serverMetrics holds the server's pre-resolved instrument handles.
type serverMetrics struct {
	queries, dropped *telemetry.Counter
	noError, nxDomain, servFail,
	refused, formErr, notImp *telemetry.Counter
	zoneWalkDepth *telemetry.Histogram
}

// SetTelemetry registers the server's instruments in sink: query volume,
// per-RCODE answer counts, drops, and zone-walk depth. Pass nil to
// detach. Like SetFailureMode it is safe to call while the server is
// answering queries; the new sink applies to queries that begin after the
// call.
// SetTracer makes the server emit one "server" span per correlated query
// handled via HandleQueryCorr (see that method for the event taxonomy).
// Pass nil to detach. Safe to call while the server is answering queries.
func (s *Server) SetTracer(tr *telemetry.Tracer) {
	s.tracer.Store(tr)
}

func (s *Server) SetTelemetry(sink telemetry.Sink) {
	if sink == nil {
		s.met.Store(nil)
		return
	}
	s.met.Store(&serverMetrics{
		queries:       sink.Counter(MetricQueries),
		dropped:       sink.Counter(MetricDropped),
		noError:       sink.Counter(MetricAnswer("NOERROR")),
		nxDomain:      sink.Counter(MetricAnswer("NXDOMAIN")),
		servFail:      sink.Counter(MetricAnswer("SERVFAIL")),
		refused:       sink.Counter(MetricAnswer("REFUSED")),
		formErr:       sink.Counter(MetricAnswer("FORMERR")),
		notImp:        sink.Counter(MetricAnswer("NOTIMP")),
		zoneWalkDepth: sink.Histogram(MetricZoneWalkDepth, telemetry.DepthBuckets(8)),
	})
}
