package dnsserver

import (
	"sync"
	"testing"

	"rdnsprivacy/internal/dnswire"
)

func failureTestServer(t *testing.T) (*Server, []dnswire.IPv4) {
	t.Helper()
	prefix := dnswire.MustPrefix("10.77.0.0/24")
	origin, err := dnswire.ReverseZoneFor24(prefix)
	if err != nil {
		t.Fatal(err)
	}
	zone := NewZone(ZoneConfig{
		Origin:    origin,
		PrimaryNS: dnswire.MustName("ns1.fail.test"),
		Mbox:      dnswire.MustName("hostmaster.fail.test"),
	})
	srv := NewServer()
	srv.AddZone(zone)
	var ips []dnswire.IPv4
	for i := 1; i <= 64; i++ {
		ip := prefix.Nth(i)
		name := dnswire.MustName("host-" + ip.String() + ".fail.test")
		if err := zone.SetPTR(dnswire.ReverseName(ip), name); err != nil {
			t.Fatal(err)
		}
		ips = append(ips, ip)
	}
	return srv, ips
}

func queryOutcome(t *testing.T, srv *Server, ip dnswire.IPv4, id uint16) (dropped bool, rcode dnswire.RCode) {
	t.Helper()
	wire, err := dnswire.NewQuery(id, dnswire.ReverseName(ip), dnswire.TypePTR).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	reply := srv.HandleQuery(wire)
	if reply == nil {
		return true, 0
	}
	msg, err := dnswire.Unmarshal(reply)
	if err != nil {
		t.Fatal(err)
	}
	return false, msg.Header.RCode
}

// TestFailureModeDeterministicPerQuery drives the same query sequence
// through two identically seeded servers and requires identical
// decisions, plus different decisions across retransmissions of the same
// name (so client retries can recover from partial drop rates).
func TestFailureModeDeterministicPerQuery(t *testing.T) {
	run := func() []bool {
		srv, ips := failureTestServer(t)
		srv.SetFailureMode(FailureMode{DropRate: 0.5, Seed: 42})
		var out []bool
		for attempt := 0; attempt < 4; attempt++ {
			for _, ip := range ips {
				dropped, _ := queryOutcome(t, srv, ip, uint16(attempt+1))
				out = append(out, dropped)
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identically seeded runs", i)
		}
	}
	// Some query must be dropped on the first attempt yet answered on a
	// later one: retransmissions draw fresh decisions.
	n := len(a) / 4
	recovered := false
	for i := 0; i < n; i++ {
		if a[i] && (!a[n+i] || !a[2*n+i] || !a[3*n+i]) {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("no dropped query ever recovered on retransmission")
	}
}

// TestFailureModeOrderIndependent interleaves two names' queries in two
// different orders; each name's decision sequence must not change.
func TestFailureModeOrderIndependent(t *testing.T) {
	seqFor := func(first, second int) (a, b []bool) {
		srv, ips := failureTestServer(t)
		srv.SetFailureMode(FailureMode{DropRate: 0.5, Seed: 7})
		// Interleave 8 queries for each of two addresses, order varying.
		for i := 0; i < 8; i++ {
			if first == 0 {
				d0, _ := queryOutcome(t, srv, ips[0], uint16(i))
				d1, _ := queryOutcome(t, srv, ips[1], uint16(i))
				a, b = append(a, d0), append(b, d1)
			} else {
				d1, _ := queryOutcome(t, srv, ips[1], uint16(i))
				d0, _ := queryOutcome(t, srv, ips[0], uint16(i))
				a, b = append(a, d0), append(b, d1)
			}
		}
		return a, b
	}
	a1, b1 := seqFor(0, 1)
	a2, b2 := seqFor(1, 0)
	for i := range a1 {
		if a1[i] != a2[i] || b1[i] != b2[i] {
			t.Fatalf("per-name decision %d depends on interleaving order", i)
		}
	}
}

// TestSetFailureModeConcurrentWithQueries toggles injection while many
// goroutines hammer HandleQuery; run under -race this is the regression
// test for the unsynchronized FailureMode read.
func TestSetFailureModeConcurrentWithQueries(t *testing.T) {
	srv, ips := failureTestServer(t)
	wires := make([][]byte, len(ips))
	for i, ip := range ips {
		w, err := dnswire.NewQuery(uint16(i), dnswire.ReverseName(ip), dnswire.TypePTR).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		wires[i] = w
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				srv.HandleQuery(wires[(w*16+i)%len(wires)])
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		srv.SetFailureMode(FailureMode{DropRate: 0.3, ServFailRate: 0.3, Seed: int64(i)})
		srv.SetFailureMode(FailureMode{})
	}
	close(stop)
	wg.Wait()
	// Injection disabled: every query answers NOERROR again.
	for _, ip := range ips {
		dropped, rcode := queryOutcome(t, srv, ip, 999)
		if dropped || rcode != dnswire.RCodeNoError {
			t.Fatalf("after disabling injection: dropped=%v rcode=%v", dropped, rcode)
		}
	}
}
