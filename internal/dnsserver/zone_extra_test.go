package dnsserver

import (
	"sort"
	"testing"

	"rdnsprivacy/internal/dnswire"
)

func TestZoneARecords(t *testing.T) {
	z := NewZone(ZoneConfig{
		Origin:    dnswire.MustName("dyn.campus-a.edu"),
		PrimaryNS: dnswire.MustName("ns1.campus-a.edu"),
		Mbox:      dnswire.MustName("hostmaster.campus-a.edu"),
	})
	name := dnswire.MustName("brians-iphone.dyn.campus-a.edu")
	addr := dnswire.MustIPv4("10.0.0.7")
	if _, ok := z.LookupA(name); ok {
		t.Fatal("empty zone returned an A record")
	}
	if err := z.SetA(name, addr); err != nil {
		t.Fatal(err)
	}
	got, ok := z.LookupA(name)
	if !ok || got != addr {
		t.Fatalf("LookupA = %v, %v", got, ok)
	}
	// Replace in place.
	addr2 := dnswire.MustIPv4("10.0.0.8")
	if err := z.SetA(name, addr2); err != nil {
		t.Fatal(err)
	}
	if got, _ := z.LookupA(name); got != addr2 {
		t.Fatalf("after replace = %v", got)
	}
	if z.Len() != 1 {
		t.Fatalf("Len = %d", z.Len())
	}
	if !z.RemoveA(name) {
		t.Fatal("RemoveA = false")
	}
	if z.RemoveA(name) {
		t.Fatal("double RemoveA = true")
	}
	if _, ok := z.LookupA(name); ok {
		t.Fatal("A record survived removal")
	}
}

func TestZoneSetARejectsOutOfZone(t *testing.T) {
	z := testZone(t)
	err := z.SetA(dnswire.MustName("host.other.example"), dnswire.MustIPv4("10.0.0.1"))
	if err == nil {
		t.Fatal("out-of-zone A accepted")
	}
}

func TestZoneMixedRecordsAtOneName(t *testing.T) {
	// Forward zones can hold both A and (unusually) PTR-free names; the
	// reverse zone can hold PTR plus A (RFC allows arbitrary types).
	z := testZone(t)
	name := dnswire.ReverseName(dnswire.MustIPv4("192.0.2.9"))
	if err := z.SetPTR(name, dnswire.MustName("h.example.edu")); err != nil {
		t.Fatal(err)
	}
	if err := z.SetA(name, dnswire.MustIPv4("192.0.2.9")); err != nil {
		t.Fatal(err)
	}
	// Removing the PTR must not disturb the A record.
	if !z.RemovePTR(name) {
		t.Fatal("RemovePTR failed")
	}
	if _, ok := z.LookupA(name); !ok {
		t.Fatal("A record lost when PTR removed")
	}
	// RemovePTR again reports nothing to do.
	if z.RemovePTR(name) {
		t.Fatal("RemovePTR removed something twice")
	}
	if !z.RemoveA(name) {
		t.Fatal("RemoveA failed")
	}
	if z.Len() != 0 {
		t.Fatalf("Len = %d after removing everything", z.Len())
	}
}

func TestZoneNames(t *testing.T) {
	z := testZone(t)
	want := []string{}
	for i := 1; i <= 3; i++ {
		ip := dnswire.MustPrefix("192.0.2.0/24").Nth(i)
		z.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("h.example.edu"))
		want = append(want, string(dnswire.ReverseName(ip)))
	}
	got := z.Names()
	if len(got) != 3 {
		t.Fatalf("Names = %v", got)
	}
	var gotStr []string
	for _, n := range got {
		gotStr = append(gotStr, string(n))
	}
	sort.Strings(gotStr)
	sort.Strings(want)
	for i := range want {
		if gotStr[i] != want[i] {
			t.Fatalf("Names = %v, want %v", gotStr, want)
		}
	}
}

func TestHandleQueryUDPPassesNilThrough(t *testing.T) {
	s := NewServer()
	if resp := s.HandleQueryUDP([]byte{1, 2}); resp != nil {
		t.Fatal("malformed query answered")
	}
	// Injected drop must also pass through as nil.
	s.SetFailureMode(FailureMode{DropRate: 1.0})
	z := testZone(t)
	s.AddZone(z)
	q := dnswire.NewQuery(1, dnswire.ReverseName(dnswire.MustIPv4("192.0.2.1")), dnswire.TypePTR)
	wire, _ := q.Marshal()
	if resp := s.HandleQueryUDP(wire); resp != nil {
		t.Fatal("dropped query answered")
	}
}

func TestUpdateWithClassNONE(t *testing.T) {
	s := NewServer()
	z := testZone(t)
	s.AddZone(z)
	ip := dnswire.MustIPv4("192.0.2.44")
	z.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("h.example.edu"))
	upd := dnswire.NewUpdate(20, z.Origin())
	upd.AddRR(dnswire.Record{
		Name: dnswire.ReverseName(ip), Type: dnswire.TypePTR,
		Class: dnswire.ClassNONE, Data: dnswire.RawData{RType: dnswire.TypePTR},
	})
	resp := sendUpdate(t, s, upd)
	if resp.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("RCode = %v", resp.Header.RCode)
	}
	if _, ok := z.LookupPTR(dnswire.ReverseName(ip)); ok {
		t.Fatal("class-NONE delete did not apply")
	}
}

func TestUpdateRejectsUnsupportedClass(t *testing.T) {
	s := NewServer()
	z := testZone(t)
	s.AddZone(z)
	upd := dnswire.NewUpdate(21, z.Origin())
	upd.AddRR(dnswire.Record{
		Name: dnswire.ReverseName(dnswire.MustIPv4("192.0.2.44")),
		Type: dnswire.TypePTR, Class: dnswire.Class(7),
		Data: dnswire.RawData{RType: dnswire.TypePTR},
	})
	if resp := sendUpdate(t, s, upd); resp.Header.RCode != dnswire.RCodeFormErr {
		t.Fatalf("RCode = %v, want FORMERR", resp.Header.RCode)
	}
}

func TestUpdateRejectsNonPTRAdd(t *testing.T) {
	s := NewServer()
	z := testZone(t)
	s.AddZone(z)
	upd := dnswire.NewUpdate(22, z.Origin())
	upd.AddRR(dnswire.Record{
		Name: dnswire.ReverseName(dnswire.MustIPv4("192.0.2.44")),
		Type: dnswire.TypeTXT, Class: dnswire.ClassIN,
		Data: dnswire.TXTData{Strings: []string{"x"}},
	})
	if resp := sendUpdate(t, s, upd); resp.Header.RCode != dnswire.RCodeNotImp {
		t.Fatalf("RCode = %v, want NOTIMP", resp.Header.RCode)
	}
}
