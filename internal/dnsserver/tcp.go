package dnsserver

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sort"

	"rdnsprivacy/internal/dnswire"
)

// This file adds the TCP side of the authoritative server: length-framed
// messages (RFC 1035 §4.2.2), UDP truncation signalling for responses that
// exceed the classic 512-octet limit, and AXFR zone transfers — the
// misconfiguration that hands an attacker a whole reverse zone in one
// query instead of a 256-address scan (compare Tatang et al.'s
// infrastructure-leaking servers in the paper's related work).

// MaxUDPResponse is the classic RFC 1035 UDP payload limit. It is a
// variable so tests can exercise the truncation path with small messages;
// production code treats it as a constant.
var MaxUDPResponse = 512

// SetTransferPolicy controls whether AXFR requests are served (default:
// refused, the safe configuration).
func (s *Server) SetTransferPolicy(allow bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.allowTransfer = allow
}

// HandleQueryUDP is HandleQuery plus UDP size discipline: responses larger
// than MaxUDPResponse are truncated to a header-and-question-only reply
// with the TC bit set, telling the client to retry over TCP. AXFR over UDP
// is refused outright (RFC 5936 §4.2).
func (s *Server) HandleQueryUDP(query []byte) []byte {
	if msg, err := dnswire.Unmarshal(query); err == nil &&
		len(msg.Questions) == 1 && msg.Questions[0].Type == dnswire.TypeAXFR {
		s.stats.queries.Add(1)
		s.stats.refused.Add(1)
		resp := dnswire.NewResponse(msg, dnswire.RCodeRefused)
		wire, err := resp.Marshal()
		if err != nil {
			return nil
		}
		return wire
	}
	resp := s.HandleQuery(query)
	if resp == nil || len(resp) <= MaxUDPResponse {
		return resp
	}
	msg, err := dnswire.Unmarshal(resp)
	if err != nil {
		return nil
	}
	truncated := &dnswire.Message{Header: msg.Header, Questions: msg.Questions}
	truncated.Header.Truncated = true
	wire, err := truncated.Marshal()
	if err != nil {
		return nil
	}
	return wire
}

// ServeTCP answers length-framed DNS queries on a stream listener until
// Accept fails. Each connection is served on its own goroutine; AXFR
// requests stream the zone as a multi-record response.
func (s *Server) ServeTCP(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if isClosed(err) {
				return nil
			}
			return err
		}
		go s.serveTCPConn(conn)
	}
}

func (s *Server) serveTCPConn(conn net.Conn) {
	defer conn.Close()
	for {
		query, err := readFramed(conn)
		if err != nil {
			return
		}
		for _, resp := range s.handleTCP(query) {
			if err := writeFramed(conn, resp); err != nil {
				return
			}
		}
	}
}

// handleTCP produces the response message sequence for one TCP query
// (several messages for AXFR, one otherwise). It is exported through the
// test seam handleTCP to allow transport-free testing.
func (s *Server) handleTCP(query []byte) [][]byte {
	msg, err := dnswire.Unmarshal(query)
	if err == nil && !msg.Header.Response &&
		msg.Header.OpCode == dnswire.OpQuery &&
		len(msg.Questions) == 1 && msg.Questions[0].Type == dnswire.TypeAXFR {
		return s.handleAXFR(msg)
	}
	if resp := s.HandleQuery(query); resp != nil {
		return [][]byte{resp}
	}
	return nil
}

// handleAXFR streams a zone: SOA, every record, SOA (RFC 5936). Transfers
// must be enabled and the zone attached; otherwise REFUSED.
func (s *Server) handleAXFR(msg *dnswire.Message) [][]byte {
	s.stats.queries.Add(1)
	s.mu.RLock()
	allow := s.allowTransfer
	s.mu.RUnlock()
	zone, ok := s.Zone(msg.Questions[0].Name)
	if !allow || !ok {
		s.stats.refused.Add(1)
		resp := dnswire.NewResponse(msg, dnswire.RCodeRefused)
		wire, err := resp.Marshal()
		if err != nil {
			return nil
		}
		return [][]byte{wire}
	}

	soa := zone.soaRecord()
	records := zone.allRecords()
	sort.Slice(records, func(i, j int) bool { return records[i].Name < records[j].Name })

	// Envelope records into messages that fit comfortably in a frame.
	var out [][]byte
	pending := []dnswire.Record{soa}
	flush := func() bool {
		if len(pending) == 0 {
			return true
		}
		resp := dnswire.NewResponse(msg, dnswire.RCodeNoError)
		resp.Header.Authoritative = true
		resp.Answers = pending
		wire, err := resp.Marshal()
		if err != nil {
			return false
		}
		out = append(out, wire)
		pending = nil
		return true
	}
	for _, rr := range records {
		pending = append(pending, rr)
		if len(pending) >= 100 {
			if !flush() {
				return nil
			}
		}
	}
	pending = append(pending, soa)
	if !flush() {
		return nil
	}
	s.stats.transfers.Add(1)
	return out
}

// allRecords snapshots every record in the zone.
func (z *Zone) allRecords() []dnswire.Record {
	z.mu.RLock()
	defer z.mu.RUnlock()
	var out []dnswire.Record
	for _, rrs := range z.records {
		out = append(out, rrs...)
	}
	return out
}

// readFramed reads one length-prefixed DNS message from a stream.
func readFramed(r io.Reader) ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(lenBuf[:])
	if n == 0 {
		return nil, fmt.Errorf("dnsserver: zero-length TCP frame")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// writeFramed writes one length-prefixed DNS message to a stream.
func writeFramed(w io.Writer, msg []byte) error {
	if len(msg) > 0xFFFF {
		return fmt.Errorf("dnsserver: message exceeds TCP frame limit")
	}
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(msg)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}
