package dnsserver

import (
	"errors"
	"net"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/simclock"
)

func testZone(t *testing.T) *Zone {
	t.Helper()
	return NewZone(ZoneConfig{
		Origin:    dnswire.MustName("2.0.192.in-addr.arpa"),
		PrimaryNS: dnswire.MustName("ns1.example.edu"),
		Mbox:      dnswire.MustName("hostmaster.example.edu"),
	})
}

func TestZoneSetLookupRemovePTR(t *testing.T) {
	z := testZone(t)
	name := dnswire.ReverseName(dnswire.MustIPv4("192.0.2.10"))
	target := dnswire.MustName("brians-iphone.dyn.example.edu")

	if _, ok := z.LookupPTR(name); ok {
		t.Fatal("empty zone returned a PTR")
	}
	if err := z.SetPTR(name, target); err != nil {
		t.Fatal(err)
	}
	got, ok := z.LookupPTR(name)
	if !ok || got != target {
		t.Fatalf("LookupPTR = %q, %v", got, ok)
	}
	// Replace in place.
	target2 := dnswire.MustName("brians-mbp.dyn.example.edu")
	if err := z.SetPTR(name, target2); err != nil {
		t.Fatal(err)
	}
	if got, _ := z.LookupPTR(name); got != target2 {
		t.Fatalf("after replace LookupPTR = %q", got)
	}
	if z.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (replace must not duplicate)", z.Len())
	}
	if !z.RemovePTR(name) {
		t.Fatal("RemovePTR = false")
	}
	if z.RemovePTR(name) {
		t.Fatal("second RemovePTR = true")
	}
	if _, ok := z.LookupPTR(name); ok {
		t.Fatal("PTR survived removal")
	}
}

func TestZoneSerialAdvancesOnChange(t *testing.T) {
	z := testZone(t)
	s0 := z.Serial()
	name := dnswire.ReverseName(dnswire.MustIPv4("192.0.2.10"))
	z.SetPTR(name, dnswire.MustName("h.example.edu"))
	s1 := z.Serial()
	if s1 <= s0 {
		t.Fatalf("serial did not advance: %d -> %d", s0, s1)
	}
	z.RemovePTR(name)
	if z.Serial() <= s1 {
		t.Fatal("serial did not advance on removal")
	}
}

func TestZoneRejectsOutOfZone(t *testing.T) {
	z := testZone(t)
	err := z.SetPTR(dnswire.MustName("10.9.0.192.in-addr.arpa"), dnswire.MustName("h.example.edu"))
	if !errors.Is(err, ErrOutOfZone) {
		t.Fatalf("err = %v, want ErrOutOfZone", err)
	}
}

func query(t *testing.T, s *Server, name dnswire.Name, qtype dnswire.Type) *dnswire.Message {
	t.Helper()
	q := dnswire.NewQuery(77, name, qtype)
	wire, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	respWire := s.HandleQuery(wire)
	if respWire == nil {
		t.Fatal("HandleQuery returned nil")
	}
	resp, err := dnswire.Unmarshal(respWire)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.ID != 77 || !resp.Header.Response {
		t.Fatalf("bad response header %+v", resp.Header)
	}
	return resp
}

func TestServerAnswersPTR(t *testing.T) {
	s := NewServer()
	z := testZone(t)
	s.AddZone(z)
	ip := dnswire.MustIPv4("192.0.2.10")
	z.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("brians-iphone.dyn.example.edu"))

	resp := query(t, s, dnswire.ReverseName(ip), dnswire.TypePTR)
	if resp.Header.RCode != dnswire.RCodeNoError || !resp.Header.Authoritative {
		t.Fatalf("header = %+v", resp.Header)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
	if resp.Answers[0].Data.(dnswire.PTRData).Target != dnswire.MustName("brians-iphone.dyn.example.edu") {
		t.Fatalf("answer = %v", resp.Answers[0])
	}
}

func TestServerNXDomainWithSOA(t *testing.T) {
	s := NewServer()
	s.AddZone(testZone(t))
	resp := query(t, s, dnswire.ReverseName(dnswire.MustIPv4("192.0.2.99")), dnswire.TypePTR)
	if resp.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("RCode = %v, want NXDOMAIN", resp.Header.RCode)
	}
	if len(resp.Authorities) != 1 || resp.Authorities[0].Type != dnswire.TypeSOA {
		t.Fatalf("authorities = %v, want zone SOA", resp.Authorities)
	}
}

func TestServerNodataForWrongType(t *testing.T) {
	s := NewServer()
	z := testZone(t)
	s.AddZone(z)
	ip := dnswire.MustIPv4("192.0.2.10")
	z.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("h.example.edu"))
	resp := query(t, s, dnswire.ReverseName(ip), dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeNoError || len(resp.Answers) != 0 {
		t.Fatalf("NODATA response wrong: rcode=%v answers=%d", resp.Header.RCode, len(resp.Answers))
	}
	if len(resp.Authorities) != 1 {
		t.Fatal("NODATA missing SOA authority")
	}
}

func TestServerRefusesOutOfZone(t *testing.T) {
	s := NewServer()
	s.AddZone(testZone(t))
	resp := query(t, s, dnswire.MustName("www.example.com"), dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeRefused {
		t.Fatalf("RCode = %v, want REFUSED", resp.Header.RCode)
	}
}

func TestServerApexSOAAndNS(t *testing.T) {
	s := NewServer()
	s.AddZone(testZone(t))
	apex := dnswire.MustName("2.0.192.in-addr.arpa")
	soa := query(t, s, apex, dnswire.TypeSOA)
	if len(soa.Answers) != 1 || soa.Answers[0].Type != dnswire.TypeSOA {
		t.Fatalf("SOA answers = %v", soa.Answers)
	}
	ns := query(t, s, apex, dnswire.TypeNS)
	if len(ns.Answers) != 1 || ns.Answers[0].Data.(dnswire.NSData).Target != dnswire.MustName("ns1.example.edu") {
		t.Fatalf("NS answers = %v", ns.Answers)
	}
}

func TestServerMostSpecificZoneWins(t *testing.T) {
	s := NewServer()
	wide := NewZone(ZoneConfig{
		Origin:    dnswire.MustName("0.192.in-addr.arpa"),
		PrimaryNS: dnswire.MustName("ns.wide.example"),
		Mbox:      dnswire.MustName("h.wide.example"),
	})
	narrow := testZone(t)
	s.AddZone(wide)
	s.AddZone(narrow)
	ip := dnswire.MustIPv4("192.0.2.10")
	narrow.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("host.narrow.example"))
	resp := query(t, s, dnswire.ReverseName(ip), dnswire.TypePTR)
	if len(resp.Answers) != 1 || resp.Answers[0].Data.(dnswire.PTRData).Target != dnswire.MustName("host.narrow.example") {
		t.Fatalf("answers = %v", resp.Answers)
	}
}

func TestServerRejectsMalformed(t *testing.T) {
	s := NewServer()
	s.AddZone(testZone(t))
	if resp := s.HandleQuery([]byte{1, 2, 3}); resp != nil {
		t.Fatal("malformed query got a response")
	}
	if s.Stats().Malformed != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
	// A response message must not be answered (loop prevention).
	m := dnswire.NewQuery(1, dnswire.MustName("x.example"), dnswire.TypeA)
	m.Header.Response = true
	wire, _ := m.Marshal()
	if resp := s.HandleQuery(wire); resp != nil {
		t.Fatal("response message got answered")
	}
}

func TestServerFormErrOnMultipleQuestions(t *testing.T) {
	s := NewServer()
	s.AddZone(testZone(t))
	m := dnswire.NewQuery(5, dnswire.MustName("a.example"), dnswire.TypeA)
	m.Questions = append(m.Questions, dnswire.Question{
		Name: dnswire.MustName("b.example"), Type: dnswire.TypeA, Class: dnswire.ClassIN,
	})
	wire, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	respWire := s.HandleQuery(wire)
	resp, err := dnswire.Unmarshal(respWire)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeFormErr {
		t.Fatalf("RCode = %v, want FORMERR", resp.Header.RCode)
	}
}

func sendUpdate(t *testing.T, s *Server, m *dnswire.Message) *dnswire.Message {
	t.Helper()
	wire, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	respWire := s.HandleQuery(wire)
	if respWire == nil {
		t.Fatal("no response to UPDATE")
	}
	resp, err := dnswire.Unmarshal(respWire)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestUpdateAddsPTR(t *testing.T) {
	s := NewServer()
	z := testZone(t)
	s.AddZone(z)
	ip := dnswire.MustIPv4("192.0.2.42")
	upd := dnswire.NewUpdate(9, z.Origin())
	upd.AddRR(dnswire.Record{
		Name: dnswire.ReverseName(ip), Type: dnswire.TypePTR,
		Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.PTRData{Target: dnswire.MustName("brians-mbp.dyn.example.edu")},
	})
	resp := sendUpdate(t, s, upd)
	if resp.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("RCode = %v", resp.Header.RCode)
	}
	got, ok := z.LookupPTR(dnswire.ReverseName(ip))
	if !ok || got != dnswire.MustName("brians-mbp.dyn.example.edu") {
		t.Fatalf("PTR = %q, %v", got, ok)
	}
	if s.Stats().Updates != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestUpdateDeletesRRset(t *testing.T) {
	s := NewServer()
	z := testZone(t)
	s.AddZone(z)
	ip := dnswire.MustIPv4("192.0.2.42")
	z.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("h.example.edu"))

	upd := dnswire.NewUpdate(10, z.Origin())
	upd.DeleteRRset(dnswire.ReverseName(ip), dnswire.TypePTR)
	resp := sendUpdate(t, s, upd)
	if resp.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("RCode = %v", resp.Header.RCode)
	}
	if _, ok := z.LookupPTR(dnswire.ReverseName(ip)); ok {
		t.Fatal("PTR survived delete")
	}
}

func TestUpdateDeleteName(t *testing.T) {
	s := NewServer()
	z := testZone(t)
	s.AddZone(z)
	ip := dnswire.MustIPv4("192.0.2.43")
	z.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("h.example.edu"))
	upd := dnswire.NewUpdate(11, z.Origin())
	upd.DeleteName(dnswire.ReverseName(ip))
	if resp := sendUpdate(t, s, upd); resp.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("RCode = %v", resp.Header.RCode)
	}
	if _, ok := z.LookupPTR(dnswire.ReverseName(ip)); ok {
		t.Fatal("PTR survived delete-name")
	}
}

func TestUpdateAtomicOnBadOp(t *testing.T) {
	// One good add plus one out-of-zone record: nothing may be applied.
	s := NewServer()
	z := testZone(t)
	s.AddZone(z)
	ip := dnswire.MustIPv4("192.0.2.42")
	upd := dnswire.NewUpdate(12, z.Origin())
	upd.AddRR(dnswire.Record{
		Name: dnswire.ReverseName(ip), Type: dnswire.TypePTR,
		Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.PTRData{Target: dnswire.MustName("h.example.edu")},
	})
	upd.AddRR(dnswire.Record{
		Name: dnswire.MustName("9.9.9.9.in-addr.arpa"), Type: dnswire.TypePTR,
		Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.PTRData{Target: dnswire.MustName("x.example.edu")},
	})
	resp := sendUpdate(t, s, upd)
	if resp.Header.RCode != dnswire.RCodeFormErr {
		t.Fatalf("RCode = %v, want FORMERR", resp.Header.RCode)
	}
	if _, ok := z.LookupPTR(dnswire.ReverseName(ip)); ok {
		t.Fatal("partial update applied; updates must be atomic")
	}
}

func TestUpdateUnknownZoneRefused(t *testing.T) {
	s := NewServer()
	s.AddZone(testZone(t))
	upd := dnswire.NewUpdate(13, dnswire.MustName("9.9.9.in-addr.arpa"))
	upd.DeleteName(dnswire.MustName("1.9.9.9.in-addr.arpa"))
	if resp := sendUpdate(t, s, upd); resp.Header.RCode != dnswire.RCodeRefused {
		t.Fatalf("RCode = %v, want REFUSED", resp.Header.RCode)
	}
}

func TestUpdatePolicyRefused(t *testing.T) {
	s := NewServer()
	z := testZone(t)
	s.AddZone(z)
	s.SetUpdatePolicy(UpdatesRefused)
	upd := dnswire.NewUpdate(14, z.Origin())
	upd.DeleteName(dnswire.ReverseName(dnswire.MustIPv4("192.0.2.42")))
	if resp := sendUpdate(t, s, upd); resp.Header.RCode != dnswire.RCodeRefused {
		t.Fatalf("RCode = %v, want REFUSED", resp.Header.RCode)
	}
}

func TestUpdatePrerequisitesNotImplemented(t *testing.T) {
	s := NewServer()
	z := testZone(t)
	s.AddZone(z)
	upd := dnswire.NewUpdate(15, z.Origin())
	upd.Answers = append(upd.Answers, dnswire.Record{
		Name: z.Origin(), Type: dnswire.TypeANY, Class: dnswire.ClassANY,
		Data: dnswire.RawData{RType: dnswire.TypeANY},
	})
	if resp := sendUpdate(t, s, upd); resp.Header.RCode != dnswire.RCodeNotImp {
		t.Fatalf("RCode = %v, want NOTIMP", resp.Header.RCode)
	}
}

func TestServerFailureInjection(t *testing.T) {
	s := NewServer()
	s.AddZone(testZone(t))
	s.SetFailureMode(FailureMode{ServFailRate: 1.0})
	resp := query(t, s, dnswire.ReverseName(dnswire.MustIPv4("192.0.2.1")), dnswire.TypePTR)
	if resp.Header.RCode != dnswire.RCodeServFail {
		t.Fatalf("RCode = %v, want SERVFAIL", resp.Header.RCode)
	}
	s.SetFailureMode(FailureMode{DropRate: 1.0})
	q := dnswire.NewQuery(1, dnswire.ReverseName(dnswire.MustIPv4("192.0.2.1")), dnswire.TypePTR)
	wire, _ := q.Marshal()
	if got := s.HandleQuery(wire); got != nil {
		t.Fatal("DropRate=1 still answered")
	}
}

func TestServerOverFabric(t *testing.T) {
	clock := simclock.NewSimulated(time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC))
	fab := fabric.New(clock, fabric.Config{Latency: time.Millisecond})
	s := NewServer()
	z := testZone(t)
	s.AddZone(z)
	ip := dnswire.MustIPv4("192.0.2.10")
	z.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("host.example.edu"))

	srvAddr := fabric.Addr{IP: dnswire.MustIPv4("192.0.2.53"), Port: 53}
	if _, err := s.AttachFabric(fab, srvAddr); err != nil {
		t.Fatal(err)
	}
	var got *dnswire.Message
	cl, err := fab.Bind(fabric.Addr{IP: dnswire.MustIPv4("198.51.100.1"), Port: 4000}, func(dg fabric.Datagram) {
		m, err := dnswire.Unmarshal(dg.Payload)
		if err != nil {
			t.Errorf("bad response: %v", err)
			return
		}
		got = m
	})
	if err != nil {
		t.Fatal(err)
	}
	qw, _ := dnswire.NewQuery(9, dnswire.ReverseName(ip), dnswire.TypePTR).Marshal()
	cl.Send(srvAddr, qw)
	clock.Advance(10 * time.Millisecond)
	if got == nil {
		t.Fatal("no response over fabric")
	}
	if len(got.Answers) != 1 {
		t.Fatalf("answers = %v", got.Answers)
	}
}

func TestServerOverRealUDP(t *testing.T) {
	s := NewServer()
	z := testZone(t)
	s.AddZone(z)
	ip := dnswire.MustIPv4("192.0.2.10")
	z.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("host.example.edu"))

	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP available: %v", err)
	}
	defer conn.Close()
	done := make(chan error, 1)
	go func() { done <- s.Serve(conn) }()

	client, err := net.Dial("udp", conn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	qw, _ := dnswire.NewQuery(3, dnswire.ReverseName(ip), dnswire.TypePTR).Marshal()
	if _, err := client.Write(qw); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	n, err := client.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.Unmarshal(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Data.(dnswire.PTRData).Target != dnswire.MustName("host.example.edu") {
		t.Fatalf("answers = %v", resp.Answers)
	}
	conn.Close()
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
}
