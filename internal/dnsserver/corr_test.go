package dnsserver

import (
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/simclock"
	"rdnsprivacy/internal/telemetry"
)

func TestHandleQueryCorrEmitsServerSpan(t *testing.T) {
	s := NewServer()
	z := testZone(t)
	s.AddZone(z)
	ip := dnswire.MustIPv4("192.0.2.10")
	z.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("host.example.edu"))
	tr := telemetry.NewTracer(5, 64)
	s.SetTracer(tr)

	name := dnswire.ReverseName(ip)
	corr := telemetry.CorrID(5, string(name), 1)
	qw, _ := dnswire.NewQuery(9, name, dnswire.TypePTR).Marshal()
	if resp := s.HandleQueryCorr(qw, corr); resp == nil {
		t.Fatal("no response")
	}
	// NXDOMAIN on a second correlated query for an absent name.
	missing := dnswire.ReverseName(dnswire.MustIPv4("192.0.2.99"))
	corr2 := telemetry.CorrID(5, string(missing), 1)
	qw2, _ := dnswire.NewQuery(10, missing, dnswire.TypePTR).Marshal()
	if resp := s.HandleQueryCorr(qw2, corr2); resp == nil {
		t.Fatal("no NXDOMAIN response")
	}
	// Uncorrelated handling must stay untraced.
	if resp := s.HandleQuery(qw); resp == nil {
		t.Fatal("no uncorrelated response")
	}

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d server spans, want 2", len(spans))
	}
	if spans[0].Name != "server" || spans[0].Corr != corr ||
		spans[0].Attr != string(name) {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if len(spans[0].Events) != 1 || spans[0].Events[0].Code != uint64(dnswire.RCodeNoError) {
		t.Fatalf("span 0 events = %+v, want [NOERROR]", spans[0].Events)
	}
	if spans[1].Corr != corr2 ||
		len(spans[1].Events) != 1 || spans[1].Events[0].Code != uint64(dnswire.RCodeNXDomain) {
		t.Fatalf("span 1 = %+v, want NXDOMAIN with corr2", spans[1])
	}
}

func TestHandleQueryCorrDroppedEvents(t *testing.T) {
	s := NewServer()
	s.AddZone(testZone(t))
	tr := telemetry.NewTracer(5, 64)
	s.SetTracer(tr)

	// Malformed packet.
	if resp := s.HandleQueryCorr([]byte{1, 2, 3}, 42); resp != nil {
		t.Fatal("malformed packet answered")
	}
	// Injected drop.
	s.SetFailureMode(FailureMode{DropRate: 1.0})
	name := dnswire.ReverseName(dnswire.MustIPv4("192.0.2.1"))
	qw, _ := dnswire.NewQuery(1, name, dnswire.TypePTR).Marshal()
	if resp := s.HandleQueryCorr(qw, 43); resp != nil {
		t.Fatal("DropRate=1 still answered")
	}

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	for i, sp := range spans {
		if len(sp.Events) != 1 || sp.Events[0].Code != ServerDropped {
			t.Fatalf("span %d events = %+v, want [ServerDropped]", i, sp.Events)
		}
	}
	if spans[1].Attr != string(name) {
		t.Fatalf("injected-drop span attr = %q, want the question name", spans[1].Attr)
	}
}

// TestFabricCorrChainEndToEnd drives a correlated query over the fabric
// and asserts the full causal chain materialises: the query hop, the
// server span, and the reply hop all share one correlation ID.
func TestFabricCorrChainEndToEnd(t *testing.T) {
	clock := simclock.NewSimulated(time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC))
	fab := fabric.New(clock, fabric.Config{Latency: time.Millisecond})
	tr := telemetry.NewTracer(7, 64)
	fab.SetTracer(tr)

	s := NewServer()
	z := testZone(t)
	s.AddZone(z)
	ip := dnswire.MustIPv4("192.0.2.10")
	z.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("host.example.edu"))
	s.SetTracer(tr)

	srvAddr := fabric.Addr{IP: dnswire.MustIPv4("192.0.2.53"), Port: 53}
	if _, err := s.AttachFabric(fab, srvAddr); err != nil {
		t.Fatal(err)
	}
	var gotReply bool
	cl, err := fab.Bind(fabric.Addr{IP: dnswire.MustIPv4("198.51.100.1"), Port: 4000},
		func(dg fabric.Datagram) { gotReply = true })
	if err != nil {
		t.Fatal(err)
	}
	name := dnswire.ReverseName(ip)
	corr := telemetry.CorrID(7, string(name), 1)
	qw, _ := dnswire.NewQuery(9, name, dnswire.TypePTR).Marshal()
	if err := cl.SendCorr(srvAddr, qw, corr); err != nil {
		t.Fatal(err)
	}
	clock.Advance(10 * time.Millisecond)
	if !gotReply {
		t.Fatal("no reply delivered")
	}

	var hops, servers int
	for _, sp := range tr.Snapshot() {
		if sp.Corr != corr {
			t.Fatalf("span %q has corr %016x, want %016x", sp.Name, sp.Corr, corr)
		}
		switch sp.Name {
		case "hop":
			hops++
		case "server":
			servers++
		}
	}
	if hops != 2 || servers != 1 {
		t.Fatalf("chain = %d hops + %d server spans, want 2 + 1", hops, servers)
	}
}
