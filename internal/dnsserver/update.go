package dnsserver

import (
	"rdnsprivacy/internal/dnswire"
)

// This file implements the server side of RFC 2136 DNS UPDATE: the
// mechanism by which real DHCP servers and IPAM systems install PTR
// records on authoritative name servers (§2.1 of the paper: "when a client
// requests a DHCP lease ... various changes to the DNS related to the IP
// address are made automatically").
//
// Authorization is by source knowledge of the update channel only (the
// simulation's stand-in for TSIG): updates can be disabled entirely with
// SetUpdatePolicy.

// UpdatePolicy controls whether a server accepts UPDATE messages.
type UpdatePolicy int

// Update policies.
const (
	// UpdatesAllowed applies well-formed updates to attached zones.
	UpdatesAllowed UpdatePolicy = iota
	// UpdatesRefused answers every UPDATE with REFUSED.
	UpdatesRefused
)

// SetUpdatePolicy sets the server's UPDATE policy (default: allowed).
func (s *Server) SetUpdatePolicy(p UpdatePolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.updatePolicy = p
}

// applyUpdate processes an RFC 2136 UPDATE message and returns the
// response. Supported operations: add PTR (class IN), delete RRset
// (class ANY + type), delete name (class ANY + type ANY), delete specific
// RR (class NONE). Prerequisites are not implemented and yield NOTIMP.
func (s *Server) applyUpdate(msg *dnswire.Message) *dnswire.Message {
	s.mu.RLock()
	refused := s.updatePolicy == UpdatesRefused
	s.mu.RUnlock()
	if refused {
		s.stats.refused.Add(1)
		return dnswire.NewResponse(msg, dnswire.RCodeRefused)
	}
	zoneName, err := msg.UpdateZone()
	if err != nil {
		s.stats.formErr.Add(1)
		return dnswire.NewResponse(msg, dnswire.RCodeFormErr)
	}
	zone, ok := s.Zone(zoneName)
	if !ok {
		// RFC 2136 §3.1.2: NOTAUTH would be precise; REFUSED keeps the
		// supported RCode set small and is what clients treat
		// equivalently.
		s.stats.refused.Add(1)
		return dnswire.NewResponse(msg, dnswire.RCodeRefused)
	}
	if len(msg.Answers) != 0 {
		// Prerequisites are not supported.
		s.stats.notImp.Add(1)
		return dnswire.NewResponse(msg, dnswire.RCodeNotImp)
	}
	// Validate every operation before applying any (updates are atomic,
	// RFC 2136 §3.4).
	for _, rr := range msg.Authorities {
		if !rr.Name.HasSuffix(zoneName) {
			s.stats.formErr.Add(1)
			return dnswire.NewResponse(msg, dnswire.RCodeFormErr)
		}
		switch rr.Class {
		case dnswire.ClassIN:
			if rr.Type != dnswire.TypePTR {
				s.stats.notImp.Add(1)
				return dnswire.NewResponse(msg, dnswire.RCodeNotImp)
			}
			if _, ok := rr.Data.(dnswire.PTRData); !ok {
				s.stats.formErr.Add(1)
				return dnswire.NewResponse(msg, dnswire.RCodeFormErr)
			}
		case dnswire.ClassANY, dnswire.ClassNONE:
			if rr.Type != dnswire.TypePTR && rr.Type != dnswire.TypeANY {
				s.stats.notImp.Add(1)
				return dnswire.NewResponse(msg, dnswire.RCodeNotImp)
			}
		default:
			s.stats.formErr.Add(1)
			return dnswire.NewResponse(msg, dnswire.RCodeFormErr)
		}
	}
	for _, rr := range msg.Authorities {
		switch rr.Class {
		case dnswire.ClassIN:
			ptr := rr.Data.(dnswire.PTRData)
			if err := zone.SetPTR(rr.Name, ptr.Target); err != nil {
				s.stats.servFail.Add(1)
				return dnswire.NewResponse(msg, dnswire.RCodeServFail)
			}
		case dnswire.ClassANY, dnswire.ClassNONE:
			zone.RemovePTR(rr.Name)
		}
	}
	s.stats.updates.Add(1)
	resp := dnswire.NewResponse(msg, dnswire.RCodeNoError)
	resp.Header.Authoritative = true
	return resp
}
