package dnsserver

import (
	"errors"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
)

// FailureMode injects server-side failures, modelling the name-server
// failures and timeouts the paper observes during its supplemental
// measurement (Figure 6).
type FailureMode struct {
	// ServFailRate is the fraction of queries answered with SERVFAIL.
	ServFailRate float64
	// DropRate is the fraction of queries silently dropped (the client
	// observes a timeout).
	DropRate float64
	// Seed seeds the failure PRNG.
	Seed int64
}

// Server is an authoritative DNS server holding any number of zones. The
// zero value is not usable; create one with NewServer.
//
// HandleQuery is safe for concurrent callers and — unless failure injection
// is enabled — lock-free outside the zone lookups, so a sharded scanner can
// drive one server from many workers without convoying on a global mutex.
type Server struct {
	mu            sync.RWMutex
	zones         map[dnswire.Name]*Zone
	failure       FailureMode
	failing       atomic.Bool
	rng           *rand.Rand
	stats         counters
	updatePolicy  UpdatePolicy
	allowTransfer bool
}

// ServerStats counts query handling outcomes.
type ServerStats struct {
	Queries   uint64
	NoError   uint64
	NXDomain  uint64
	ServFail  uint64
	Refused   uint64
	FormErr   uint64
	Dropped   uint64
	NotImp    uint64
	Malformed uint64
	Updates   uint64
	Transfers uint64
}

// counters is the live, atomically-updated form of ServerStats.
type counters struct {
	queries, noError, nxDomain, servFail, refused, formErr,
	dropped, notImp, malformed, updates, transfers atomic.Uint64
}

// NewServer creates a server with no zones.
func NewServer() *Server {
	return &Server{
		zones: make(map[dnswire.Name]*Zone),
		rng:   rand.New(rand.NewSource(0)),
	}
}

// SetFailureMode installs failure injection. Pass the zero value to disable.
func (s *Server) SetFailureMode(fm FailureMode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failure = fm
	s.rng = rand.New(rand.NewSource(fm.Seed))
	s.failing.Store(fm.DropRate > 0 || fm.ServFailRate > 0)
}

// AddZone attaches a zone to the server.
func (s *Server) AddZone(z *Zone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zones[z.Origin()] = z
}

// Zone returns the zone with the given origin, if attached.
func (s *Server) Zone(origin dnswire.Name) (*Zone, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	z, ok := s.zones[origin]
	return z, ok
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Queries:   s.stats.queries.Load(),
		NoError:   s.stats.noError.Load(),
		NXDomain:  s.stats.nxDomain.Load(),
		ServFail:  s.stats.servFail.Load(),
		Refused:   s.stats.refused.Load(),
		FormErr:   s.stats.formErr.Load(),
		Dropped:   s.stats.dropped.Load(),
		NotImp:    s.stats.notImp.Load(),
		Malformed: s.stats.malformed.Load(),
		Updates:   s.stats.updates.Load(),
		Transfers: s.stats.transfers.Load(),
	}
}

// findZone returns the most-specific zone containing name. Zone origins are
// map keys, so the walk probes each suffix of name directly — left to right,
// longest (most specific) first — instead of iterating every zone.
func (s *Server) findZone(name dnswire.Name) *Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ns := string(name)
	for start := 0; start < len(ns); {
		if z, ok := s.zones[dnswire.Name(ns[start:])]; ok {
			return z
		}
		dot := strings.IndexByte(ns[start:], '.')
		if dot < 0 {
			break
		}
		start += dot + 1
	}
	if z, ok := s.zones[dnswire.Root]; ok {
		return z
	}
	return nil
}

// HandleQuery processes one wire-format query and returns the wire-format
// response, or nil if the query must be silently dropped (malformed packets
// and injected drops).
func (s *Server) HandleQuery(query []byte) []byte {
	s.stats.queries.Add(1)
	var injectServFail bool
	if s.failing.Load() {
		// The failure PRNG is the only query-path state needing the
		// exclusive lock, and only when injection is enabled.
		s.mu.Lock()
		fm := s.failure
		var injectDrop bool
		if fm.DropRate > 0 && s.rng.Float64() < fm.DropRate {
			injectDrop = true
		} else if fm.ServFailRate > 0 && s.rng.Float64() < fm.ServFailRate {
			injectServFail = true
		}
		s.mu.Unlock()
		if injectDrop {
			s.stats.dropped.Add(1)
			return nil
		}
	}

	msg, err := dnswire.Unmarshal(query)
	if err != nil || msg.Header.Response {
		s.stats.malformed.Add(1)
		return nil
	}
	var resp *dnswire.Message
	switch {
	case injectServFail:
		resp = dnswire.NewResponse(msg, dnswire.RCodeServFail)
		s.stats.servFail.Add(1)
	case msg.Header.OpCode == dnswire.OpUpdate:
		resp = s.applyUpdate(msg)
	case msg.Header.OpCode != dnswire.OpQuery:
		resp = dnswire.NewResponse(msg, dnswire.RCodeNotImp)
		s.stats.notImp.Add(1)
	case len(msg.Questions) != 1:
		resp = dnswire.NewResponse(msg, dnswire.RCodeFormErr)
		s.stats.formErr.Add(1)
	default:
		resp = s.resolve(msg)
	}
	wire, err := resp.Marshal()
	if err != nil {
		return nil
	}
	return wire
}

func (s *Server) resolve(msg *dnswire.Message) *dnswire.Message {
	q := msg.Questions[0]
	zone := s.findZone(q.Name)
	if zone == nil {
		s.stats.refused.Add(1)
		return dnswire.NewResponse(msg, dnswire.RCodeRefused)
	}
	answers, authority, rcode := zone.answer(q)
	resp := dnswire.NewResponse(msg, rcode)
	resp.Header.Authoritative = true
	resp.Answers = answers
	resp.Authorities = authority
	switch rcode {
	case dnswire.RCodeNXDomain:
		s.stats.nxDomain.Add(1)
	default:
		s.stats.noError.Add(1)
	}
	return resp
}

// AttachFabric binds the server to addr on a simulation fabric and answers
// queries arriving there. It returns the endpoint for closing.
func (s *Server) AttachFabric(f *fabric.Fabric, addr fabric.Addr) (*fabric.Endpoint, error) {
	var ep *fabric.Endpoint
	ep, err := f.Bind(addr, func(dg fabric.Datagram) {
		if resp := s.HandleQuery(dg.Payload); resp != nil {
			ep.Send(dg.Src, resp)
		}
	})
	return ep, err
}

// Serve answers queries on a real packet connection (e.g. a loopback UDP
// socket) until reading fails. It is used by cmd/simnet to expose simulated
// networks to real DNS clients such as dig.
func (s *Server) Serve(conn net.PacketConn) error {
	buf := make([]byte, 4096)
	for {
		n, src, err := conn.ReadFrom(buf)
		if err != nil {
			if isClosed(err) {
				return nil
			}
			return err
		}
		if resp := s.HandleQueryUDP(buf[:n]); resp != nil {
			if _, err := conn.WriteTo(resp, src); err != nil && !isClosed(err) {
				return err
			}
		}
	}
}

func isClosed(err error) bool {
	return errors.Is(err, net.ErrClosed)
}
