package dnsserver

import (
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/telemetry"
)

// FailureMode injects server-side failures, modelling the name-server
// failures and timeouts the paper observes during its supplemental
// measurement (Figure 6).
//
// Decisions are deterministic per query: whether an individual query is
// dropped or SERVFAILed is a pure function of the seed, the question name,
// and how many times that name has been asked — never of the interleaving
// of unrelated queries. Concurrent sweeps therefore fail the same
// addresses regardless of worker scheduling, and a retransmission of a
// previously dropped query draws a fresh decision, so client retries can
// succeed against partial failure rates.
type FailureMode struct {
	// ServFailRate is the fraction of queries answered with SERVFAIL.
	ServFailRate float64
	// DropRate is the fraction of queries silently dropped (the client
	// observes a timeout).
	DropRate float64
	// Seed seeds the per-query failure hash.
	Seed int64
}

// enabled reports whether any injection is configured.
func (fm FailureMode) enabled() bool {
	return fm.DropRate > 0 || fm.ServFailRate > 0
}

// failureState is the installed failure configuration plus the per-name
// attempt counters that make decisions independent of call order across
// names. A fresh state (and fresh counters) is installed on every
// SetFailureMode, so reconfiguring a live server restarts the sequence.
type failureState struct {
	mode FailureMode

	mu  sync.Mutex
	seq map[dnswire.Name]uint64
}

// decide classifies one query deterministically. It returns whether to
// drop it and whether to answer SERVFAIL.
func (fs *failureState) decide(name dnswire.Name) (drop, servFail bool) {
	fs.mu.Lock()
	n := fs.seq[name]
	fs.seq[name] = n + 1
	fs.mu.Unlock()
	h := failureHash(uint64(fs.mode.Seed), hashName(name), n)
	if fs.mode.DropRate > 0 && unitFloat(h) < fs.mode.DropRate {
		return true, false
	}
	h = failureHash(h, 0x5EC0)
	if fs.mode.ServFailRate > 0 && unitFloat(h) < fs.mode.ServFailRate {
		return false, true
	}
	return false, false
}

// failureHash mixes words with the splitmix64 finalizer.
func failureHash(words ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, w := range words {
		h ^= w
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
		h *= 0x94D049BB133111EB
		h ^= h >> 31
	}
	return h
}

// hashName is FNV-1a over the name bytes.
func hashName(n dnswire.Name) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(n); i++ {
		h ^= uint64(n[i])
		h *= 1099511628211
	}
	return h
}

// unitFloat maps a hash to [0,1).
func unitFloat(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// Server is an authoritative DNS server holding any number of zones. The
// zero value is not usable; create one with NewServer.
//
// HandleQuery is safe for concurrent callers and — unless failure injection
// is enabled — lock-free outside the zone lookups, so a sharded scanner can
// drive one server from many workers without convoying on a global mutex.
type Server struct {
	mu            sync.RWMutex
	zones         map[dnswire.Name]*Zone
	failure       atomic.Pointer[failureState]
	met           atomic.Pointer[serverMetrics]
	tracer        atomic.Pointer[telemetry.Tracer]
	stats         counters
	updatePolicy  UpdatePolicy
	allowTransfer bool
}

// ServerDropped is the "server" span event code for queries that produced
// no response (malformed packets, injected drops, marshal failures).
// Answered queries emit their response RCode (0..15) as the event code, so
// the two ranges cannot collide.
const ServerDropped = 0x100

// ServerStats counts query handling outcomes.
type ServerStats struct {
	Queries   uint64
	NoError   uint64
	NXDomain  uint64
	ServFail  uint64
	Refused   uint64
	FormErr   uint64
	Dropped   uint64
	NotImp    uint64
	Malformed uint64
	Updates   uint64
	Transfers uint64
}

// counters is the live, atomically-updated form of ServerStats.
type counters struct {
	queries, noError, nxDomain, servFail, refused, formErr,
	dropped, notImp, malformed, updates, transfers atomic.Uint64
}

// NewServer creates a server with no zones.
func NewServer() *Server {
	return &Server{zones: make(map[dnswire.Name]*Zone)}
}

// SetFailureMode installs failure injection. Pass the zero value to
// disable. It is safe to call while the server is answering queries
// (including after Serve has started): the new mode applies atomically to
// queries that begin after the call, and per-name decision sequences
// restart from zero.
func (s *Server) SetFailureMode(fm FailureMode) {
	if !fm.enabled() {
		s.failure.Store(nil)
		return
	}
	s.failure.Store(&failureState{mode: fm, seq: make(map[dnswire.Name]uint64)})
}

// AddZone attaches a zone to the server.
func (s *Server) AddZone(z *Zone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zones[z.Origin()] = z
}

// Zone returns the zone with the given origin, if attached.
func (s *Server) Zone(origin dnswire.Name) (*Zone, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	z, ok := s.zones[origin]
	return z, ok
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Queries:   s.stats.queries.Load(),
		NoError:   s.stats.noError.Load(),
		NXDomain:  s.stats.nxDomain.Load(),
		ServFail:  s.stats.servFail.Load(),
		Refused:   s.stats.refused.Load(),
		FormErr:   s.stats.formErr.Load(),
		Dropped:   s.stats.dropped.Load(),
		NotImp:    s.stats.notImp.Load(),
		Malformed: s.stats.malformed.Load(),
		Updates:   s.stats.updates.Load(),
		Transfers: s.stats.transfers.Load(),
	}
}

// findZone returns the most-specific zone containing name. Zone origins are
// map keys, so the walk probes each suffix of name directly — left to right,
// longest (most specific) first — instead of iterating every zone. When met
// is non-nil the number of suffix probes is recorded as the zone-walk depth.
func (s *Server) findZone(name dnswire.Name, met *serverMetrics) *Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ns := string(name)
	depth := 0
	defer func() {
		if met != nil {
			met.zoneWalkDepth.Observe(float64(depth))
		}
	}()
	for start := 0; start < len(ns); {
		depth++
		if z, ok := s.zones[dnswire.Name(ns[start:])]; ok {
			return z
		}
		dot := strings.IndexByte(ns[start:], '.')
		if dot < 0 {
			break
		}
		start += dot + 1
	}
	depth++
	if z, ok := s.zones[dnswire.Root]; ok {
		return z
	}
	return nil
}

// HandleQuery processes one wire-format query and returns the wire-format
// response, or nil if the query must be silently dropped (malformed packets
// and injected drops).
func (s *Server) HandleQuery(query []byte) []byte {
	return s.HandleQueryCorr(query, 0)
}

// HandleQueryCorr is HandleQuery for a query that belongs to the causal
// chain identified by corr (telemetry.CorrID). When a tracer is attached
// (SetTracer) and corr is non-zero, handling emits one "server" span
// carrying corr, whose single event is the response RCode — or
// ServerDropped when the query died without an answer — so a trace dump
// joins the server's verdict to the client attempt and fabric hops that
// delivered it. corr zero behaves exactly like HandleQuery.
func (s *Server) HandleQueryCorr(query []byte, corr uint64) []byte {
	var sp *telemetry.Span
	if corr != 0 {
		if tr := s.tracer.Load(); tr != nil {
			sp = tr.StartSpanCorr("server", "", corr)
			defer sp.End()
		}
	}
	s.stats.queries.Add(1)
	met := s.met.Load()
	if met != nil {
		met.queries.Inc()
	}
	msg, err := dnswire.Unmarshal(query)
	if err != nil || msg.Header.Response {
		s.stats.malformed.Add(1)
		if met != nil {
			met.dropped.Inc()
		}
		sp.Event("server", ServerDropped)
		return nil
	}
	if sp != nil && len(msg.Questions) > 0 {
		sp.Attr = string(msg.Questions[0].Name)
	}
	var injectServFail bool
	if fs := s.failure.Load(); fs != nil && len(msg.Questions) > 0 {
		drop, servFail := fs.decide(msg.Questions[0].Name)
		if drop {
			s.stats.dropped.Add(1)
			if met != nil {
				met.dropped.Inc()
			}
			sp.Event("server", ServerDropped)
			return nil
		}
		injectServFail = servFail
	}
	var resp *dnswire.Message
	switch {
	case injectServFail:
		resp = dnswire.NewResponse(msg, dnswire.RCodeServFail)
		s.stats.servFail.Add(1)
		if met != nil {
			met.servFail.Inc()
		}
	case msg.Header.OpCode == dnswire.OpUpdate:
		resp = s.applyUpdate(msg)
	case msg.Header.OpCode != dnswire.OpQuery:
		resp = dnswire.NewResponse(msg, dnswire.RCodeNotImp)
		s.stats.notImp.Add(1)
		if met != nil {
			met.notImp.Inc()
		}
	case len(msg.Questions) != 1:
		resp = dnswire.NewResponse(msg, dnswire.RCodeFormErr)
		s.stats.formErr.Add(1)
		if met != nil {
			met.formErr.Inc()
		}
	default:
		resp = s.resolve(msg)
	}
	wire, err := resp.Marshal()
	if err != nil {
		sp.Event("server", ServerDropped)
		return nil
	}
	sp.Event("server", uint64(resp.Header.RCode))
	return wire
}

func (s *Server) resolve(msg *dnswire.Message) *dnswire.Message {
	q := msg.Questions[0]
	met := s.met.Load()
	zone := s.findZone(q.Name, met)
	if zone == nil {
		s.stats.refused.Add(1)
		if met != nil {
			met.refused.Inc()
		}
		return dnswire.NewResponse(msg, dnswire.RCodeRefused)
	}
	answers, authority, rcode := zone.answer(q)
	resp := dnswire.NewResponse(msg, rcode)
	resp.Header.Authoritative = true
	resp.Answers = answers
	resp.Authorities = authority
	switch rcode {
	case dnswire.RCodeNXDomain:
		s.stats.nxDomain.Add(1)
		if met != nil {
			met.nxDomain.Inc()
		}
	default:
		s.stats.noError.Add(1)
		if met != nil {
			met.noError.Inc()
		}
	}
	return resp
}

// AttachFabric binds the server to addr on a simulation fabric and answers
// queries arriving there. It returns the endpoint for closing.
func (s *Server) AttachFabric(f *fabric.Fabric, addr fabric.Addr) (*fabric.Endpoint, error) {
	var ep *fabric.Endpoint
	ep, err := f.Bind(addr, func(dg fabric.Datagram) {
		// The reply inherits the query's correlation ID, so the return
		// leg's fabric hop joins the same causal chain.
		if resp := s.HandleQueryCorr(dg.Payload, dg.Corr); resp != nil {
			ep.SendCorr(dg.Src, resp, dg.Corr)
		}
	})
	return ep, err
}

// Serve answers queries on a real packet connection (e.g. a loopback UDP
// socket) until reading fails. It is used by cmd/simnet to expose simulated
// networks to real DNS clients such as dig.
func (s *Server) Serve(conn net.PacketConn) error {
	buf := make([]byte, 4096)
	for {
		n, src, err := conn.ReadFrom(buf)
		if err != nil {
			if isClosed(err) {
				return nil
			}
			return err
		}
		if resp := s.HandleQueryUDP(buf[:n]); resp != nil {
			if _, err := conn.WriteTo(resp, src); err != nil && !isClosed(err) {
				return err
			}
		}
	}
}

func isClosed(err error) bool {
	return errors.Is(err, net.ErrClosed)
}
