// Package dnsserver implements an authoritative DNS server for reverse
// (in-addr.arpa) zones with dynamically mutable contents.
//
// This is the substrate on the *network operator's* side of the paper: the
// name server that an IPAM system updates whenever a DHCP lease is granted
// or released (Section 2.1, "Interplay between DHCP and DNS"). The zone
// store supports adding and removing PTR records at runtime; queries for
// names that have no record receive authoritative NXDOMAIN answers carrying
// the zone SOA, exactly the signal the paper's reactive measurement uses to
// detect record removal (Section 6.1).
//
// The server core is transport-independent: HandleQuery maps a request
// message to a response message. Adapters attach it to the simulation
// fabric or to a real net.PacketConn (see Serve), so the same server code
// answers both simulated campaigns and real UDP clients.
package dnsserver

import (
	"errors"
	"fmt"
	"sync"

	"rdnsprivacy/internal/dnswire"
)

// Zone is a mutable authoritative zone. Create one with NewZone. A Zone is
// safe for concurrent use.
type Zone struct {
	origin dnswire.Name
	soa    dnswire.SOAData
	ns     []dnswire.Name
	ttl    uint32

	mu      sync.RWMutex
	records map[dnswire.Name][]dnswire.Record
	serial  uint32
}

// ZoneConfig configures a new zone.
type ZoneConfig struct {
	// Origin is the zone apex, e.g. 2.0.192.in-addr.arpa.
	Origin dnswire.Name
	// PrimaryNS is the SOA MNAME and the single NS record target.
	PrimaryNS dnswire.Name
	// Mbox is the SOA RNAME (hostmaster mailbox in name form).
	Mbox dnswire.Name
	// TTL is the TTL for zone records. Defaults to 300, the short TTL
	// operators use for dynamic records.
	TTL uint32
	// NegativeTTL is the SOA MINIMUM, governing negative caching.
	// Defaults to 60.
	NegativeTTL uint32
}

// NewZone creates an empty zone.
func NewZone(cfg ZoneConfig) *Zone {
	if cfg.TTL == 0 {
		cfg.TTL = 300
	}
	if cfg.NegativeTTL == 0 {
		cfg.NegativeTTL = 60
	}
	z := &Zone{
		origin:  cfg.Origin,
		ns:      []dnswire.Name{cfg.PrimaryNS},
		ttl:     cfg.TTL,
		records: make(map[dnswire.Name][]dnswire.Record),
		serial:  1,
	}
	z.soa = dnswire.SOAData{
		MName:   cfg.PrimaryNS,
		RName:   cfg.Mbox,
		Serial:  z.serial,
		Refresh: 7200,
		Retry:   900,
		Expire:  1209600,
		Minimum: cfg.NegativeTTL,
	}
	return z
}

// Origin returns the zone apex.
func (z *Zone) Origin() dnswire.Name { return z.origin }

// Serial returns the current SOA serial, which increments on every change.
func (z *Zone) Serial() uint32 {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.serial
}

// ErrOutOfZone reports an attempt to store a name outside the zone.
var ErrOutOfZone = errors.New("dnsserver: name out of zone")

// SetPTR installs (or replaces) the PTR record at name. It is the operation
// an IPAM system performs when a DHCP lease is granted.
func (z *Zone) SetPTR(name dnswire.Name, target dnswire.Name) error {
	if !name.HasSuffix(z.origin) {
		return fmt.Errorf("%w: %s not under %s", ErrOutOfZone, name, z.origin)
	}
	rr := dnswire.Record{
		Name:  name,
		Type:  dnswire.TypePTR,
		Class: dnswire.ClassIN,
		TTL:   z.ttl,
		Data:  dnswire.PTRData{Target: target},
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	rrs := z.records[name]
	replaced := false
	for i := range rrs {
		if rrs[i].Type == dnswire.TypePTR {
			rrs[i] = rr
			replaced = true
			break
		}
	}
	if !replaced {
		rrs = append(rrs, rr)
	}
	z.records[name] = rrs
	z.serial++
	z.soa.Serial = z.serial
	return nil
}

// RemovePTR deletes the PTR record at name, reporting whether one existed.
// It is the operation an IPAM system performs when a lease expires or is
// released.
func (z *Zone) RemovePTR(name dnswire.Name) bool {
	z.mu.Lock()
	defer z.mu.Unlock()
	rrs, ok := z.records[name]
	if !ok {
		return false
	}
	kept := rrs[:0]
	removed := false
	for _, rr := range rrs {
		if rr.Type == dnswire.TypePTR {
			removed = true
			continue
		}
		kept = append(kept, rr)
	}
	if !removed {
		return false
	}
	if len(kept) == 0 {
		delete(z.records, name)
	} else {
		z.records[name] = kept
	}
	z.serial++
	z.soa.Serial = z.serial
	return true
}

// SetA installs (or replaces) an A record at name — the forward-DNS side
// of dynamic updates, which the paper flags as future work ("forward DNS
// data ... can also be dynamically updated by DHCP servers").
func (z *Zone) SetA(name dnswire.Name, addr dnswire.IPv4) error {
	if !name.HasSuffix(z.origin) {
		return fmt.Errorf("%w: %s not under %s", ErrOutOfZone, name, z.origin)
	}
	rr := dnswire.Record{
		Name:  name,
		Type:  dnswire.TypeA,
		Class: dnswire.ClassIN,
		TTL:   z.ttl,
		Data:  dnswire.AData{Addr: addr},
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	rrs := z.records[name]
	replaced := false
	for i := range rrs {
		if rrs[i].Type == dnswire.TypeA {
			rrs[i] = rr
			replaced = true
			break
		}
	}
	if !replaced {
		rrs = append(rrs, rr)
	}
	z.records[name] = rrs
	z.serial++
	z.soa.Serial = z.serial
	return nil
}

// RemoveA deletes the A record at name, reporting whether one existed.
func (z *Zone) RemoveA(name dnswire.Name) bool {
	z.mu.Lock()
	defer z.mu.Unlock()
	rrs, ok := z.records[name]
	if !ok {
		return false
	}
	kept := rrs[:0]
	removed := false
	for _, rr := range rrs {
		if rr.Type == dnswire.TypeA {
			removed = true
			continue
		}
		kept = append(kept, rr)
	}
	if !removed {
		return false
	}
	if len(kept) == 0 {
		delete(z.records, name)
	} else {
		z.records[name] = kept
	}
	z.serial++
	z.soa.Serial = z.serial
	return true
}

// LookupA returns the A record address at name, if any.
func (z *Zone) LookupA(name dnswire.Name) (dnswire.IPv4, bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	for _, rr := range z.records[name] {
		if rr.Type == dnswire.TypeA {
			return dnswire.IPv4(rr.Data.(dnswire.AData).Addr), true
		}
	}
	return dnswire.IPv4{}, false
}

// LookupPTR returns the PTR target at name, if any.
func (z *Zone) LookupPTR(name dnswire.Name) (dnswire.Name, bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	for _, rr := range z.records[name] {
		if rr.Type == dnswire.TypePTR {
			return rr.Data.(dnswire.PTRData).Target, true
		}
	}
	return "", false
}

// Len returns the number of names with records in the zone.
func (z *Zone) Len() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return len(z.records)
}

// Names returns all names holding records, in no particular order.
func (z *Zone) Names() []dnswire.Name {
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := make([]dnswire.Name, 0, len(z.records))
	for n := range z.records {
		out = append(out, n)
	}
	return out
}

// soaRecord returns the zone's SOA as a record for authority sections.
func (z *Zone) soaRecord() dnswire.Record {
	return dnswire.Record{
		Name:  z.origin,
		Type:  dnswire.TypeSOA,
		Class: dnswire.ClassIN,
		TTL:   z.ttl,
		Data:  z.soa,
	}
}

// answer resolves a question within the zone. It must be called with at
// least a read lock NOT held (it takes its own).
func (z *Zone) answer(q dnswire.Question) (answers []dnswire.Record, authority []dnswire.Record, rcode dnswire.RCode) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	if q.Name == z.origin {
		switch q.Type {
		case dnswire.TypeSOA, dnswire.TypeANY:
			return []dnswire.Record{z.soaRecord()}, nil, dnswire.RCodeNoError
		case dnswire.TypeNS:
			var rrs []dnswire.Record
			for _, ns := range z.ns {
				rrs = append(rrs, dnswire.Record{
					Name: z.origin, Type: dnswire.TypeNS, Class: dnswire.ClassIN,
					TTL: z.ttl, Data: dnswire.NSData{Target: ns},
				})
			}
			return rrs, nil, dnswire.RCodeNoError
		default:
			return nil, []dnswire.Record{z.soaRecord()}, dnswire.RCodeNoError
		}
	}
	rrs, ok := z.records[q.Name]
	if !ok {
		return nil, []dnswire.Record{z.soaRecord()}, dnswire.RCodeNXDomain
	}
	var out []dnswire.Record
	for _, rr := range rrs {
		if q.Type == dnswire.TypeANY || rr.Type == q.Type {
			out = append(out, rr)
		}
	}
	if len(out) == 0 {
		// Name exists but not with this type: NODATA.
		return nil, []dnswire.Record{z.soaRecord()}, dnswire.RCodeNoError
	}
	return out, nil, dnswire.RCodeNoError
}
