package reactive

import (
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/ipam"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/simclock"
)

func TestBackoffWalksTable2(t *testing.T) {
	b := NewBackoff(PaperBackoff())
	var got []time.Duration
	for i := 0; i < 26; i++ {
		d, ok := b.Next()
		if !ok {
			t.Fatalf("schedule ran out at step %d", i)
		}
		got = append(got, d)
	}
	want := []time.Duration{}
	for i := 0; i < 12; i++ {
		want = append(want, 5*time.Minute)
	}
	for i := 0; i < 6; i++ {
		want = append(want, 10*time.Minute)
	}
	for i := 0; i < 3; i++ {
		want = append(want, 20*time.Minute)
	}
	want = append(want, 30*time.Minute, 30*time.Minute)
	want = append(want, time.Hour, time.Hour, time.Hour)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Totals: first hour 12 probes, hours 1-4 cover the paper's counts.
	sum := time.Duration(0)
	for _, d := range got[:12] {
		sum += d
	}
	if sum != time.Hour {
		t.Fatalf("first phase spans %v, want 1h", sum)
	}
}

func TestBackoffFiniteSchedule(t *testing.T) {
	b := NewBackoff([]BackoffStep{{time.Minute, 2}})
	if _, ok := b.Next(); !ok {
		t.Fatal("step 1 missing")
	}
	if _, ok := b.Next(); !ok {
		t.Fatal("step 2 missing")
	}
	if _, ok := b.Next(); ok {
		t.Fatal("finite schedule did not end")
	}
	b.Reset()
	if _, ok := b.Next(); !ok {
		t.Fatal("Reset did not rewind")
	}
}

func TestScheduleString(t *testing.T) {
	s := ScheduleString(PaperBackoff())
	if s == "" {
		t.Fatal("empty schedule string")
	}
}

// testBed builds a tiny campus with scripted devices and a running engine.
type testBed struct {
	clock  *simclock.Simulated
	fab    *fabric.Fabric
	net    *netsim.Network
	engine *Engine
}

// epoch: Monday 2021-11-01 00:00 UTC.
var epoch = time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)

func newTestBed(t *testing.T, devices []*netsim.Device, blockICMP bool, lease time.Duration) *testBed {
	t.Helper()
	cfg := netsim.Config{
		Name:      "Academic-T",
		Type:      netsim.Academic,
		Suffix:    dnswire.MustName("campus-t.edu"),
		Announced: dnswire.MustPrefix("10.80.0.0/20"),
		Blocks: []netsim.Block{
			{Kind: netsim.BlockDynamic, Prefix: dnswire.MustPrefix("10.80.1.0/24"),
				Policy: ipam.PolicyCarryOver, SubLabel: "dyn"},
		},
		LeaseTime: lease,
		BlockICMP: blockICMP,
		Seed:      5,
	}
	n, err := netsim.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range devices {
		if err := n.AddDevice(d, 0, netsim.Student); err != nil {
			t.Fatal(err)
		}
	}
	clock := simclock.NewSimulated(epoch)
	fab := fabric.New(clock, fabric.Config{Latency: 5 * time.Millisecond})
	if err := n.Start(fab); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(fab, Config{
		Targets: []Target{{
			Name:     "Academic-T",
			Prefixes: []dnswire.Prefix{dnswire.MustPrefix("10.80.1.0/24")},
			DNS:      n.DNSAddr(),
		}},
		VantageICMP: dnswire.MustIPv4("198.51.100.10"),
		VantageDNS:  dnswire.MustIPv4("198.51.100.11"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	return &testBed{clock: clock, fab: fab, net: n, engine: eng}
}

func scriptedDevice(id uint64, host string, release bool, sessions map[time.Weekday][]netsim.Session) *netsim.Device {
	return &netsim.Device{
		ID: id, Owner: "brian", Kind: netsim.KindIPhone, HostName: host,
		MAC:         macFor(id),
		SendRelease: release,
		Schedule:    &netsim.ScriptedScheduler{Weekly: sessions},
	}
}

func macFor(id uint64) [6]byte {
	return [6]byte{2, 0, 0, 0, byte(id >> 8), byte(id)}
}

func mondaySession(from, to time.Duration) map[time.Weekday][]netsim.Session {
	return map[time.Weekday][]netsim.Session{
		time.Monday: {{Start: from, End: to}},
	}
}

func TestReleasingClientGroupLifecycle(t *testing.T) {
	// Device online 09:00-10:00, sends DHCPRELEASE: the PTR vanishes at
	// 10:00 and follow-up detects it within ~10 minutes.
	dev := scriptedDevice(1, "Brian's iPhone", true, mondaySession(9*time.Hour, 10*time.Hour))
	tb := newTestBed(t, []*netsim.Device{dev}, false, time.Hour)
	defer tb.net.Stop()

	tb.clock.AdvanceTo(epoch.Add(14 * time.Hour))
	tb.engine.Stop()
	res := tb.engine.Results()

	var g *Group
	for _, cand := range res.Groups {
		if cand.PTRSeen {
			g = cand
		}
	}
	if g == nil {
		t.Fatalf("no complete group among %d groups", len(res.Groups))
	}
	if g.FirstPTR != dnswire.MustName("brians-iphone.dyn.campus-t.edu") {
		t.Fatalf("FirstPTR = %q", g.FirstPTR)
	}
	if !g.Complete || !g.Reverted {
		t.Fatalf("group = %+v", g)
	}
	// Start should be at the 10:00-hourly sweep that first saw it: the
	// sweeps run at 00:00, 01:00, ...; the device joined at 09:00, so
	// the 09:00 sweep may or may not catch it depending on fabric
	// latency; accept 09:00-10:00.
	if g.Start.Before(epoch.Add(9*time.Hour)) || g.Start.After(epoch.Add(10*time.Hour)) {
		t.Fatalf("Start = %v", g.Start)
	}
	delta := g.RemovalDelta()
	if delta < 0 || delta > 15*time.Minute {
		t.Fatalf("removal delta = %v, want <= 15m for a releasing client", delta)
	}
	if !g.ReliableTiming {
		t.Fatalf("short-session release should have reliable timing: %+v", g)
	}
}

func TestSilentClientLingersUntilLeaseExpiry(t *testing.T) {
	// Silent leaver with a 1h lease: the client renews at ~09:30 (T1),
	// leaves at 10:00, the lease expires at ~10:30, so the PTR is
	// removed 30-65 minutes after the last alive sample.
	dev := scriptedDevice(1, "Brians-MBP", false, mondaySession(9*time.Hour, 10*time.Hour))
	tb := newTestBed(t, []*netsim.Device{dev}, false, time.Hour)
	defer tb.net.Stop()

	tb.clock.AdvanceTo(epoch.Add(16 * time.Hour))
	tb.engine.Stop()
	res := tb.engine.Results()

	var g *Group
	for _, cand := range res.Groups {
		if cand.Reverted {
			g = cand
		}
	}
	if g == nil {
		t.Fatal("no reverted group")
	}
	delta := g.RemovalDelta()
	if delta < 25*time.Minute || delta > 70*time.Minute {
		t.Fatalf("removal delta = %v, want within (25m, 70m] for silent leave", delta)
	}
}

func TestBlockedICMPYieldsNoGroups(t *testing.T) {
	dev := scriptedDevice(1, "Brians-iPad", true, mondaySession(9*time.Hour, 10*time.Hour))
	tb := newTestBed(t, []*netsim.Device{dev}, true, time.Hour)
	defer tb.net.Stop()

	tb.clock.AdvanceTo(epoch.Add(12 * time.Hour))
	tb.engine.Stop()
	res := tb.engine.Results()
	if len(res.Groups) != 0 || res.ICMPResponses != 0 {
		t.Fatalf("blocked network produced %d groups, %d icmp responses",
			len(res.Groups), res.ICMPResponses)
	}
	if res.PerNetworkAlive["Academic-T"] != 0 {
		t.Fatalf("alive count = %d", res.PerNetworkAlive["Academic-T"])
	}
}

func TestMultipleSessionsMultipleGroups(t *testing.T) {
	sessions := map[time.Weekday][]netsim.Session{
		time.Monday: {
			{Start: 9 * time.Hour, End: 10 * time.Hour},
			{Start: 13 * time.Hour, End: 14 * time.Hour},
		},
	}
	dev := scriptedDevice(1, "Brians-Air", true, sessions)
	tb := newTestBed(t, []*netsim.Device{dev}, false, time.Hour)
	defer tb.net.Stop()

	tb.clock.AdvanceTo(epoch.Add(18 * time.Hour))
	tb.engine.Stop()
	res := tb.engine.Results()
	reverted := 0
	for _, g := range res.Groups {
		if g.Reverted {
			reverted++
		}
	}
	if reverted != 2 {
		t.Fatalf("reverted groups = %d, want 2 (two sessions)", reverted)
	}
}

func TestResultsAccounting(t *testing.T) {
	dev := scriptedDevice(1, "Brians-phone", true, mondaySession(9*time.Hour, 11*time.Hour))
	tb := newTestBed(t, []*netsim.Device{dev}, false, time.Hour)
	defer tb.net.Stop()

	tb.clock.AdvanceTo(epoch.Add(13 * time.Hour))
	tb.engine.Stop()
	res := tb.engine.Results()
	if res.ICMPResponses == 0 || res.RDNSResponses == 0 {
		t.Fatalf("responses: icmp=%d rdns=%d", res.ICMPResponses, res.RDNSResponses)
	}
	if res.ICMPUniqueIPs != 1 || res.RDNSUniqueIPs != 1 || res.RDNSUniquePTRs != 1 {
		t.Fatalf("unique: %d/%d/%d", res.ICMPUniqueIPs, res.RDNSUniqueIPs, res.RDNSUniquePTRs)
	}
	if res.PerNetworkAlive["Academic-T"] != 1 {
		t.Fatalf("alive = %d", res.PerNetworkAlive["Academic-T"])
	}
	if len(res.Days) == 0 {
		t.Fatal("no day accounting")
	}
	nx := 0
	for _, d := range res.Days {
		nx += d.NXDomain
	}
	if nx == 0 {
		t.Fatal("no NXDOMAIN observed despite record removal follow-up")
	}
	if len(res.Hours["Academic-T"]) == 0 {
		t.Fatal("no hourly activity accounting")
	}
}

func TestHourlyActivityTracksDiurnalPattern(t *testing.T) {
	// Two devices with day sessions: hourly ICMP counts must be higher
	// at 10:00 than at 04:00.
	devs := []*netsim.Device{
		scriptedDevice(1, "a-phone", true, mondaySession(9*time.Hour, 17*time.Hour)),
		scriptedDevice(2, "b-phone", true, mondaySession(8*time.Hour, 16*time.Hour)),
	}
	tb := newTestBed(t, devs, false, time.Hour)
	defer tb.net.Stop()
	tb.clock.AdvanceTo(epoch.Add(20 * time.Hour))
	tb.engine.Stop()
	res := tb.engine.Results()

	at := func(h int) int {
		for _, hc := range res.Hours["Academic-T"] {
			if hc.Hour.Equal(epoch.Add(time.Duration(h) * time.Hour)) {
				return hc.ICMP
			}
		}
		return 0
	}
	if at(10) <= at(4) {
		t.Fatalf("activity at 10:00 (%d) not above 04:00 (%d)", at(10), at(4))
	}
}
