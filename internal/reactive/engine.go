package reactive

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rdnsprivacy/internal/dnsclient"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/icmp"
	"rdnsprivacy/internal/simclock"
	"rdnsprivacy/internal/telemetry"
)

// Target is one network under supplemental measurement.
type Target struct {
	// Name labels the network in reports (Table 4 uses anonymized
	// names).
	Name string
	// Prefixes is the targeted address space — the paper makes "a
	// weighted selection of which address space ... to target" and digs
	// into the subnets with the most dynamically assigned hosts
	// (Section 6.1).
	Prefixes []dnswire.Prefix
	// DNS is the authoritative name server for the target's reverse
	// zones, queried directly for fresh answers.
	DNS fabric.Addr
}

// Config tunes the engine.
type Config struct {
	// Targets are the networks to measure.
	Targets []Target
	// VantageICMP is the source address for ICMP probes.
	VantageICMP dnswire.IPv4
	// VantageDNS is the source address for DNS queries (one port per
	// target is derived from it).
	VantageDNS dnswire.IPv4
	// SweepInterval is the full-target ICMP scan cadence (paper:
	// hourly).
	SweepInterval time.Duration
	// Backoff is the reactive schedule (paper: Table 2).
	Backoff []BackoffStep
	// ProbeTimeout bounds individual ICMP probes.
	ProbeTimeout time.Duration
	// DNSTimeout and DNSRetries configure the resolver.
	DNSTimeout time.Duration
	DNSRetries int
	// CooldownCap bounds how long reverse-DNS follow-up continues after
	// a host disappears before the group is abandoned (default 12h).
	CooldownCap time.Duration
	// Blocklist removes opted-out space from probing.
	Blocklist []dnswire.Prefix
	// Telemetry, when non-nil, receives the engine's metrics (sweep,
	// probe, group-lifecycle and PTR-removal counters — see telemetry.go)
	// and is handed to the per-target resolvers for the dnsclient metrics.
	Telemetry telemetry.Sink
	// Tracer, when non-nil, is handed to the per-target resolvers so every
	// follow-up PTR attempt emits a correlated "attempt" span
	// (telemetry.CorrID keyed by TracerSeed).
	Tracer *telemetry.Tracer
	// TracerSeed keys the correlation IDs when Tracer is set.
	TracerSeed int64
}

// Engine runs the supplemental measurement on a fabric. Create one with
// NewEngine, Start it, advance the clock across the measurement window,
// then Stop and read Results.
type Engine struct {
	fab   *fabric.Fabric
	clock simclock.Clock
	cfg   Config

	prober    *icmp.Prober
	resolvers map[string]*dnsclient.Resolver
	tickers   []*simclock.Ticker
	met       *reactiveMetrics // nil when telemetry is off

	mu      sync.Mutex
	started bool
	state   map[dnswire.IPv4]*hostState
	results *Results
	groupID uint64
}

// hostState is the per-address reactive state machine.
type hostState struct {
	target      *Target
	phase       hostPhase
	group       *Group
	backoff     *Backoff
	lastAliveAt time.Time // untruncated time of the last alive probe
	timer       simclock.Timer
	cooldownT   simclock.Timer
}

type hostPhase int

const (
	phaseIdle hostPhase = iota
	phaseActive
	phaseCooldown
)

// Group is one client activity period — the unit of Table 5.
type Group struct {
	// ID is a sequential group identifier.
	ID uint64
	// Network names the target.
	Network string
	// IP is the address.
	IP dnswire.IPv4
	// Start is the first alive observation (5-minute truncated).
	Start time.Time
	// LastAlive is the last successful ICMP probe (5-minute truncated).
	LastAlive time.Time
	// DetectGap is the probe interval in force when the host
	// disappeared: how stale LastAlive can be.
	DetectGap time.Duration
	// FirstPTR and LastPTR are the first and last hostnames observed.
	FirstPTR, LastPTR dnswire.Name
	// PTRSeen reports a successful phase-1 rDNS lookup.
	PTRSeen bool
	// PTRRemovedAt is the first NXDOMAIN after disappearance
	// (5-minute truncated); zero if removal was never observed.
	PTRRemovedAt time.Time
	// Reverted reports that the PTR was observed and then observed
	// removed.
	Reverted bool
	// Complete reports successful ICMP and rDNS coverage of phases 1
	// and 3.
	Complete bool
	// ReliableTiming reports that the disappearance was detected at
	// fine probe granularity, so the removal delta is trustworthy. The
	// paper discards roughly 1 in 4 reverted groups for timing
	// mechanics it cannot correct at run time (Table 5).
	ReliableTiming bool
	// Interrupted marks groups cut short by the host reappearing
	// before follow-up concluded.
	Interrupted bool
}

// RemovalDelta returns the minutes between the last alive ICMP sample and
// the observed PTR removal — the x-axis of Figure 7.
func (g *Group) RemovalDelta() time.Duration {
	if !g.Reverted {
		return 0
	}
	return g.PTRRemovedAt.Sub(g.LastAlive)
}

// DayCounts carries the Figure 6 per-day accounting.
type DayCounts struct {
	Day        time.Time
	UniqueIPs  int
	NXDomain   int
	ServFail   int
	Timeout    int
	OKResponse int
}

// HourCount is an hourly activity sample for the Figure 11 case study.
type HourCount struct {
	Hour time.Time
	ICMP int
	RDNS int
}

// Results aggregates everything the engine measured.
type Results struct {
	// Groups holds every activity group, closed or abandoned.
	Groups []*Group
	// OpenGroups counts groups still open when the engine stopped.
	OpenGroups int
	// ICMPResponses and RDNSResponses are total successful responses
	// (Table 3).
	ICMPResponses uint64
	RDNSResponses uint64
	// ICMPUniqueIPs / RDNSUniqueIPs / RDNSUniquePTRs are distinct-entity
	// counts (Table 3).
	ICMPUniqueIPs  int
	RDNSUniqueIPs  int
	RDNSUniquePTRs int
	// PerNetworkAlive counts distinct addresses that ever answered a
	// ping, per network (Table 4).
	PerNetworkAlive map[string]int
	// Days carries Figure 6 error accounting in day order.
	Days []*DayCounts
	// Hours carries Figure 11 activity counts in hour order, per
	// network.
	Hours map[string][]*HourCount

	icmpIPs  map[dnswire.IPv4]struct{}
	rdnsIPs  map[dnswire.IPv4]struct{}
	rdnsPTRs map[dnswire.Name]struct{}
	dayIdx   map[time.Time]*DayCounts
	dayIPs   map[time.Time]map[dnswire.IPv4]struct{}
	hourIdx  map[string]map[time.Time]*HourCount
	aliveIPs map[string]map[dnswire.IPv4]struct{}
}

func newResults() *Results {
	return &Results{
		PerNetworkAlive: make(map[string]int),
		Hours:           make(map[string][]*HourCount),
		icmpIPs:         make(map[dnswire.IPv4]struct{}),
		rdnsIPs:         make(map[dnswire.IPv4]struct{}),
		rdnsPTRs:        make(map[dnswire.Name]struct{}),
		dayIdx:          make(map[time.Time]*DayCounts),
		dayIPs:          make(map[time.Time]map[dnswire.IPv4]struct{}),
		hourIdx:         make(map[string]map[time.Time]*HourCount),
		aliveIPs:        make(map[string]map[dnswire.IPv4]struct{}),
	}
}

// NewEngine creates an engine over a fabric.
func NewEngine(fab *fabric.Fabric, cfg Config) (*Engine, error) {
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = time.Hour
	}
	if len(cfg.Backoff) == 0 {
		cfg.Backoff = PaperBackoff()
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.DNSTimeout <= 0 {
		cfg.DNSTimeout = 2 * time.Second
	}
	if cfg.CooldownCap <= 0 {
		cfg.CooldownCap = 12 * time.Hour
	}
	e := &Engine{
		fab:       fab,
		clock:     fab.Clock(),
		cfg:       cfg,
		resolvers: make(map[string]*dnsclient.Resolver),
		state:     make(map[dnswire.IPv4]*hostState),
		results:   newResults(),
	}
	if cfg.Telemetry != nil {
		e.met = newReactiveMetrics(cfg.Telemetry)
	}
	prober, err := icmp.NewProber(fab, icmp.ProberConfig{
		Vantage:   cfg.VantageICMP,
		Timeout:   cfg.ProbeTimeout,
		ID:        0x7e57,
		Blocklist: cfg.Blocklist,
	})
	if err != nil {
		return nil, err
	}
	e.prober = prober
	for i := range cfg.Targets {
		t := &cfg.Targets[i]
		opts := []dnsclient.Option{
			dnsclient.WithBind(fabric.Addr{IP: cfg.VantageDNS, Port: uint16(40000 + i)}),
			dnsclient.WithServer(t.DNS),
			dnsclient.WithTimeout(cfg.DNSTimeout),
			dnsclient.WithRetries(cfg.DNSRetries),
		}
		if cfg.Telemetry != nil {
			// All per-target resolvers share one sink, so the dnsclient
			// counters aggregate across targets.
			opts = append(opts, dnsclient.WithTelemetry(cfg.Telemetry))
		}
		if cfg.Tracer != nil {
			opts = append(opts,
				dnsclient.WithTracer(cfg.Tracer),
				dnsclient.WithSeed(cfg.TracerSeed))
		}
		res, err := dnsclient.NewResolver(fab, opts...)
		if err != nil {
			return nil, fmt.Errorf("reactive: resolver for %s: %w", t.Name, err)
		}
		e.resolvers[t.Name] = res
	}
	return e, nil
}

// Start runs the first sweep immediately and schedules hourly sweeps.
func (e *Engine) Start() error {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return fmt.Errorf("reactive: already started")
	}
	e.started = true
	e.mu.Unlock()
	e.sweepAll(e.clock.Now())
	e.tickers = append(e.tickers, simclock.NewTicker(e.clock, e.cfg.SweepInterval, e.sweepAll))
	return nil
}

// Stop cancels sweeps and closes open groups as incomplete.
func (e *Engine) Stop() {
	for _, t := range e.tickers {
		t.Stop()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, hs := range e.state {
		if hs.timer != nil {
			hs.timer.Stop()
		}
		if hs.cooldownT != nil {
			hs.cooldownT.Stop()
		}
		if hs.group != nil {
			e.results.OpenGroups++
		}
	}
}

// Results finalizes and returns the measurement results.
func (e *Engine) Results() *Results {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := e.results
	r.ICMPUniqueIPs = len(r.icmpIPs)
	r.RDNSUniqueIPs = len(r.rdnsIPs)
	r.RDNSUniquePTRs = len(r.rdnsPTRs)
	for name, set := range r.aliveIPs {
		r.PerNetworkAlive[name] = len(set)
	}
	return r
}

// sweepAll probes every targeted address once.
func (e *Engine) sweepAll(now time.Time) {
	if m := e.met; m != nil {
		m.sweeps.Inc()
	}
	for i := range e.cfg.Targets {
		t := &e.cfg.Targets[i]
		for _, p := range t.Prefixes {
			n := p.NumAddresses()
			if m := e.met; m != nil {
				m.icmpProbes.Add(uint64(n))
			}
			for a := 0; a < n; a++ {
				ip := p.Nth(a)
				e.prober.Probe(ip, func(r icmp.ProbeResult) {
					e.onProbe(t, r)
				})
			}
		}
	}
}

// onProbe handles any ICMP probe result, whether from a sweep or a
// reactive back-off probe.
func (e *Engine) onProbe(t *Target, r icmp.ProbeResult) {
	now := e.clock.Now()
	e.mu.Lock()
	if r.Alive {
		e.recordICMPLocked(t, r.Target, now)
	}
	hs := e.state[r.Target]
	if hs == nil {
		hs = &hostState{target: t, phase: phaseIdle}
		e.state[r.Target] = hs
	}
	switch hs.phase {
	case phaseIdle:
		if !r.Alive {
			e.mu.Unlock()
			return
		}
		e.openGroupLocked(hs, r.Target, now)
		e.mu.Unlock()
		// Phase 1: spot rDNS lookup to record the PTR value.
		e.lookupPTR(t, r.Target, hs.group)
		e.scheduleReactiveProbe(hs, r.Target)
	case phaseActive:
		if r.Alive {
			hs.group.LastAlive = truncate5(now)
			hs.lastAliveAt = now
			e.mu.Unlock()
			return
		}
		// Host disappeared: enter cooldown and chase the PTR removal.
		// The detection gap is how stale the last alive sample is.
		hs.phase = phaseCooldown
		hs.group.DetectGap = now.Sub(hs.lastAliveAt)
		if hs.timer != nil {
			hs.timer.Stop()
			hs.timer = nil
		}
		hs.backoff = NewBackoff(e.cfg.Backoff)
		group := hs.group
		started := now
		e.mu.Unlock()
		e.followUpPTR(hs, r.Target, group, started)
	case phaseCooldown:
		if r.Alive {
			// The host came back before follow-up concluded: close
			// the current group as interrupted, open a new one.
			e.closeGroupLocked(hs, true)
			e.openGroupLocked(hs, r.Target, now)
			e.mu.Unlock()
			e.lookupPTR(t, r.Target, hs.group)
			e.scheduleReactiveProbe(hs, r.Target)
			return
		}
		e.mu.Unlock()
	}
}

// openGroupLocked starts a new activity group. Caller holds e.mu.
func (e *Engine) openGroupLocked(hs *hostState, ip dnswire.IPv4, now time.Time) {
	if m := e.met; m != nil {
		m.groupsOpened.Inc()
	}
	e.groupID++
	hs.phase = phaseActive
	hs.backoff = NewBackoff(e.cfg.Backoff)
	hs.lastAliveAt = now
	hs.group = &Group{
		ID:        e.groupID,
		Network:   hs.target.Name,
		IP:        ip,
		Start:     truncate5(now),
		LastAlive: truncate5(now),
	}
}

// closeGroupLocked finalizes the current group. Caller holds e.mu.
func (e *Engine) closeGroupLocked(hs *hostState, interrupted bool) {
	g := hs.group
	if g == nil {
		return
	}
	if m := e.met; m != nil {
		m.groupsClosed.Inc()
		if interrupted {
			m.groupsInterr.Inc()
		}
	}
	g.Interrupted = interrupted
	g.Complete = g.PTRSeen && !g.PTRRemovedAt.IsZero() && !interrupted
	g.Reverted = g.Complete && g.PTRSeen
	// Timing is reliable only when the disappearance was detected while
	// the back-off was still sub-hourly: once probing decays to 60-minute
	// intervals, LastAlive can be stale by a full hour and the removal
	// delta is dominated by the measurement, not the network — the
	// paper's "timing mechanics of the ICMP probes, which cannot be
	// accounted for at run-time without compromising the back off
	// mechanism" (Table 5).
	g.ReliableTiming = g.Reverted && g.DetectGap <= 35*time.Minute
	e.results.Groups = append(e.results.Groups, g)
	hs.group = nil
	hs.phase = phaseIdle
	if hs.timer != nil {
		hs.timer.Stop()
		hs.timer = nil
	}
	if hs.cooldownT != nil {
		hs.cooldownT.Stop()
		hs.cooldownT = nil
	}
}

// scheduleReactiveProbe arms the next back-off ICMP probe for an active
// host.
func (e *Engine) scheduleReactiveProbe(hs *hostState, ip dnswire.IPv4) {
	e.mu.Lock()
	if hs.phase != phaseActive {
		e.mu.Unlock()
		return
	}
	delay, ok := hs.backoff.Next()
	if !ok {
		e.mu.Unlock()
		return
	}
	hs.timer = e.clock.AfterFunc(delay, func() {
		if m := e.met; m != nil {
			m.icmpProbes.Inc()
			m.backoffProbes.Inc()
		}
		e.prober.Probe(ip, func(r icmp.ProbeResult) {
			e.onProbe(hs.target, r)
			if r.Alive {
				e.scheduleReactiveProbe(hs, ip)
			}
		})
	})
	e.mu.Unlock()
}

// lookupPTR performs the phase-1 spot rDNS lookup, retrying once after five
// minutes if the record is not there yet (see the paper's footnote 5).
func (e *Engine) lookupPTR(t *Target, ip dnswire.IPv4, g *Group) {
	res := e.resolvers[t.Name]
	res.LookupPTR(context.Background(), ip, func(r dnsclient.Response) {
		e.recordDNS(t, ip, r)
		e.mu.Lock()
		hs := e.state[ip]
		current := hs != nil && hs.group == g
		if current && r.Outcome == dnsclient.OutcomeSuccess {
			g.PTRSeen = true
			if g.FirstPTR == "" {
				g.FirstPTR = r.PTR
			}
			g.LastPTR = r.PTR
		}
		retry := current && r.Outcome == dnsclient.OutcomeNXDomain && g.FirstPTR == ""
		e.mu.Unlock()
		if retry {
			e.clock.AfterFunc(5*time.Minute, func() {
				e.mu.Lock()
				still := e.state[ip] != nil && e.state[ip].group == g
				e.mu.Unlock()
				if still {
					e.lookupPTRNoRetry(t, ip, g)
				}
			})
		}
	})
}

func (e *Engine) lookupPTRNoRetry(t *Target, ip dnswire.IPv4, g *Group) {
	res := e.resolvers[t.Name]
	res.LookupPTR(context.Background(), ip, func(r dnsclient.Response) {
		e.recordDNS(t, ip, r)
		e.mu.Lock()
		if hs := e.state[ip]; hs != nil && hs.group == g && r.Outcome == dnsclient.OutcomeSuccess {
			g.PTRSeen = true
			if g.FirstPTR == "" {
				g.FirstPTR = r.PTR
			}
			g.LastPTR = r.PTR
		}
		e.mu.Unlock()
	})
}

// followUpPTR chases the PTR removal after a host disappears, walking the
// back-off schedule until NXDOMAIN, the cap, or reappearance.
func (e *Engine) followUpPTR(hs *hostState, ip dnswire.IPv4, g *Group, started time.Time) {
	res := e.resolvers[hs.target.Name]
	var step func()
	step = func() {
		e.mu.Lock()
		if hs.group != g || hs.phase != phaseCooldown {
			e.mu.Unlock()
			return
		}
		e.mu.Unlock()
		res.LookupPTR(context.Background(), ip, func(r dnsclient.Response) {
			e.recordDNS(hs.target, ip, r)
			now := e.clock.Now()
			e.mu.Lock()
			if hs.group != g || hs.phase != phaseCooldown {
				e.mu.Unlock()
				return
			}
			switch r.Outcome {
			case dnsclient.OutcomeSuccess:
				g.LastPTR = r.PTR
				if g.FirstPTR == "" {
					g.FirstPTR = r.PTR
					g.PTRSeen = true
				}
			case dnsclient.OutcomeNXDomain:
				g.PTRRemovedAt = truncate5(now)
				if m := e.met; m != nil {
					m.ptrRemovals.Inc()
				}
				e.closeGroupLocked(hs, false)
				e.mu.Unlock()
				return
			}
			if now.Sub(started) > e.cfg.CooldownCap {
				e.closeGroupLocked(hs, false)
				e.mu.Unlock()
				return
			}
			delay, ok := hs.backoff.Next()
			if !ok {
				e.closeGroupLocked(hs, false)
				e.mu.Unlock()
				return
			}
			hs.cooldownT = e.clock.AfterFunc(delay, step)
			e.mu.Unlock()
		})
	}
	// The first follow-up lookup fires immediately on disappearance
	// (releasing clients have often already lost their PTR by then,
	// which is what produces the paper's ~5-minute peak); the back-off
	// paces the lookups after it.
	e.mu.Lock()
	hs.cooldownT = e.clock.AfterFunc(0, step)
	e.mu.Unlock()
}

// recordICMPLocked books a successful ICMP response. Caller holds e.mu.
func (e *Engine) recordICMPLocked(t *Target, ip dnswire.IPv4, now time.Time) {
	if m := e.met; m != nil {
		m.icmpAlive.Inc()
	}
	r := e.results
	r.ICMPResponses++
	r.icmpIPs[ip] = struct{}{}
	set, ok := r.aliveIPs[t.Name]
	if !ok {
		set = make(map[dnswire.IPv4]struct{})
		r.aliveIPs[t.Name] = set
	}
	set[ip] = struct{}{}
	e.hourCountLocked(t.Name, now).ICMP++
	e.dayIPLocked(now, ip)
}

// recordDNS books a DNS response for error accounting and Table 3.
func (e *Engine) recordDNS(t *Target, ip dnswire.IPv4, resp dnsclient.Response) {
	if m := e.met; m != nil {
		m.rdnsLookups.Inc()
	}
	now := e.clock.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	r := e.results
	day := e.dayLocked(now)
	e.dayIPLocked(now, ip)
	switch resp.Outcome {
	case dnsclient.OutcomeSuccess:
		r.RDNSResponses++
		r.rdnsIPs[ip] = struct{}{}
		r.rdnsPTRs[resp.PTR] = struct{}{}
		day.OKResponse++
		e.hourCountLocked(t.Name, now).RDNS++
	case dnsclient.OutcomeNXDomain:
		day.NXDomain++
	case dnsclient.OutcomeServFail, dnsclient.OutcomeRefused, dnsclient.OutcomeMalformed:
		day.ServFail++
	case dnsclient.OutcomeTimeout:
		day.Timeout++
	}
}

func (e *Engine) dayLocked(now time.Time) *DayCounts {
	day := now.Truncate(24 * time.Hour)
	d, ok := e.results.dayIdx[day]
	if !ok {
		d = &DayCounts{Day: day}
		e.results.dayIdx[day] = d
		e.results.Days = append(e.results.Days, d)
	}
	return d
}

func (e *Engine) dayIPLocked(now time.Time, ip dnswire.IPv4) {
	day := now.Truncate(24 * time.Hour)
	set, ok := e.results.dayIPs[day]
	if !ok {
		set = make(map[dnswire.IPv4]struct{})
		e.results.dayIPs[day] = set
	}
	if _, seen := set[ip]; !seen {
		set[ip] = struct{}{}
		e.dayLocked(now).UniqueIPs++
	}
}

func (e *Engine) hourCountLocked(network string, now time.Time) *HourCount {
	hour := now.Truncate(time.Hour)
	idx, ok := e.results.hourIdx[network]
	if !ok {
		idx = make(map[time.Time]*HourCount)
		e.results.hourIdx[network] = idx
	}
	h, ok := idx[hour]
	if !ok {
		h = &HourCount{Hour: hour}
		idx[hour] = h
		e.results.Hours[network] = append(e.results.Hours[network], h)
	}
	return h
}

// truncate5 truncates to the five-minute bucket the paper merges on.
func truncate5(t time.Time) time.Time { return t.Truncate(5 * time.Minute) }

// Funnel is the Table 5 breakdown: all groups, down to those with complete
// phase coverage, those whose PTR was observed to revert, and those whose
// timing is reliable enough for the Figure 7 analysis.
type Funnel struct {
	All        int
	Successful int
	Reverted   int
	Reliable   int
}

// Fraction formats one funnel level as a fraction of its parent.
func (f Funnel) Fraction(level int) float64 {
	switch level {
	case 1:
		if f.All == 0 {
			return 0
		}
		return float64(f.Successful) / float64(f.All)
	case 2:
		if f.Successful == 0 {
			return 0
		}
		return float64(f.Reverted) / float64(f.Successful)
	case 3:
		if f.Reverted == 0 {
			return 0
		}
		return float64(f.Reliable) / float64(f.Reverted)
	}
	return 1
}

// Funnel computes the Table 5 breakdown over all groups, including groups
// still open at engine stop (they are part of "all groups" but cannot be
// complete).
func (r *Results) Funnel() Funnel {
	f := Funnel{All: len(r.Groups) + r.OpenGroups}
	for _, g := range r.Groups {
		if g.Complete {
			f.Successful++
		}
		if g.Reverted {
			f.Reverted++
		}
		if g.ReliableTiming {
			f.Reliable++
		}
	}
	return f
}

// RemovalDeltas returns the removal deltas (in minutes) of all reliable
// groups, optionally restricted to one network — the Figure 7 samples.
func (r *Results) RemovalDeltas(network string) []float64 {
	var out []float64
	for _, g := range r.Groups {
		if !g.ReliableTiming {
			continue
		}
		if network != "" && g.Network != network {
			continue
		}
		out = append(out, g.RemovalDelta().Minutes())
	}
	return out
}
