// Package reactive implements the paper's supplemental measurement
// (Section 6): an hourly ICMP sweep over selected networks, reactive
// fine-grained probing of hosts that newly appear, the Table 2 back-off
// schedule, reactive reverse-DNS follow-up once a host disappears, and the
// grouping/merging pipeline that turns raw probes into the activity groups
// behind Table 5 and Figures 6 and 7.
package reactive

import (
	"fmt"
	"strings"
	"time"
)

// BackoffStep is one row of the Table 2 schedule: Count probes at Interval
// spacing. A negative Count repeats indefinitely.
type BackoffStep struct {
	Interval time.Duration
	Count    int
}

// PaperBackoff returns the exact Table 2 schedule:
//
//	12 times in the 1st hour at 5-minute intervals
//	 6 times in the 2nd hour at 10-minute intervals
//	 3 times in the 3rd hour at 20-minute intervals
//	 2 times in the 4th hour at 30-minute intervals
//	 until client goes offline, once at 60-minute intervals
func PaperBackoff() []BackoffStep {
	return []BackoffStep{
		{5 * time.Minute, 12},
		{10 * time.Minute, 6},
		{20 * time.Minute, 3},
		{30 * time.Minute, 2},
		{60 * time.Minute, -1},
	}
}

// Backoff walks a schedule, yielding the next probe delay.
type Backoff struct {
	steps []BackoffStep
	step  int
	used  int
}

// NewBackoff starts a walk over the schedule.
func NewBackoff(steps []BackoffStep) *Backoff {
	return &Backoff{steps: steps}
}

// Next returns the delay until the next probe and whether the schedule has
// more probes. Schedules ending with a negative Count never run out.
func (b *Backoff) Next() (time.Duration, bool) {
	for b.step < len(b.steps) {
		s := b.steps[b.step]
		if s.Count < 0 {
			return s.Interval, true
		}
		if b.used < s.Count {
			b.used++
			return s.Interval, true
		}
		b.step++
		b.used = 0
	}
	return 0, false
}

// Reset rewinds the walk to the start of the schedule.
func (b *Backoff) Reset() { b.step, b.used = 0, 0 }

// ScheduleString renders the schedule in Table 2's shape, for reports.
func ScheduleString(steps []BackoffStep) string {
	var sb strings.Builder
	for i, s := range steps {
		switch {
		case s.Count < 0:
			fmt.Fprintf(&sb, "until client goes offline, once at %d-minute intervals",
				int(s.Interval.Minutes()))
		default:
			fmt.Fprintf(&sb, "%d times at %d-minute intervals",
				s.Count, int(s.Interval.Minutes()))
		}
		if i < len(steps)-1 {
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
