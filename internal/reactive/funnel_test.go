package reactive

import (
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
)

func TestFunnelAndDeltas(t *testing.T) {
	day := time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)
	mk := func(net string, reverted, reliable bool, deltaMin int) *Group {
		g := &Group{
			Network:   net,
			IP:        dnswire.MustIPv4("10.0.0.1"),
			Start:     day,
			LastAlive: day.Add(time.Hour),
			PTRSeen:   true,
		}
		if reverted {
			g.Complete = true
			g.Reverted = true
			g.PTRRemovedAt = g.LastAlive.Add(time.Duration(deltaMin) * time.Minute)
		}
		g.ReliableTiming = reliable
		return g
	}
	res := &Results{
		Groups: []*Group{
			mk("A", true, true, 5),
			mk("A", true, true, 60),
			mk("A", true, false, 120),
			mk("B", true, true, 30),
			mk("B", false, false, 0),
		},
		OpenGroups: 2,
	}
	f := res.Funnel()
	if f.All != 7 {
		t.Fatalf("All = %d, want 7 (5 closed + 2 open)", f.All)
	}
	if f.Successful != 4 || f.Reverted != 4 || f.Reliable != 3 {
		t.Fatalf("funnel = %+v", f)
	}
	if f.Fraction(1) <= 0 || f.Fraction(2) != 1 || f.Fraction(3) != 0.75 {
		t.Fatalf("fractions = %v %v %v", f.Fraction(1), f.Fraction(2), f.Fraction(3))
	}
	if f.Fraction(0) != 1 {
		t.Fatalf("Fraction(0) = %v", f.Fraction(0))
	}

	all := res.RemovalDeltas("")
	if len(all) != 3 {
		t.Fatalf("deltas = %v", all)
	}
	onlyA := res.RemovalDeltas("A")
	if len(onlyA) != 2 {
		t.Fatalf("A deltas = %v", onlyA)
	}
	if onlyA[0] != 5 || onlyA[1] != 60 {
		t.Fatalf("A deltas = %v", onlyA)
	}
}

func TestFunnelEmpty(t *testing.T) {
	res := &Results{}
	f := res.Funnel()
	if f.All != 0 || f.Fraction(1) != 0 || f.Fraction(2) != 0 || f.Fraction(3) != 0 {
		t.Fatalf("empty funnel = %+v", f)
	}
	if got := res.RemovalDeltas(""); got != nil {
		t.Fatalf("deltas = %v", got)
	}
}

func TestRemovalDeltaOfUnrevertedGroup(t *testing.T) {
	g := &Group{}
	if g.RemovalDelta() != 0 {
		t.Fatal("unreverted group has a delta")
	}
}
