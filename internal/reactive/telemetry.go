package reactive

import (
	"rdnsprivacy/internal/telemetry"
)

// Metric names the engine registers when Config.Telemetry is set.
const (
	// MetricSweeps counts full-target ICMP sweeps started.
	MetricSweeps = "reactive_sweeps_total"
	// MetricICMPProbes counts ICMP probes transmitted (sweep and
	// reactive); MetricBackoffProbes counts just the reactive back-off
	// re-probes of active hosts.
	MetricICMPProbes    = "reactive_icmp_probes_total"
	MetricBackoffProbes = "reactive_backoff_probes_total"
	// MetricICMPAlive counts successful ICMP responses.
	MetricICMPAlive = "reactive_icmp_alive_total"
	// MetricGroupsOpened / MetricGroupsClosed / MetricGroupsInterrupted
	// count activity-group lifecycle events (interrupted groups are also
	// counted closed).
	MetricGroupsOpened      = "reactive_groups_opened_total"
	MetricGroupsClosed      = "reactive_groups_closed_total"
	MetricGroupsInterrupted = "reactive_groups_interrupted_total"
	// MetricPTRRemovals counts PTR removals observed during follow-up
	// (the NXDOMAIN that closes a group with a removal timestamp).
	MetricPTRRemovals = "reactive_ptr_removals_total"
	// MetricRDNSLookups counts completed rDNS lookups across all phases.
	MetricRDNSLookups = "reactive_rdns_lookups_total"
)

// reactiveMetrics holds the engine's pre-resolved instrument handles;
// nil when telemetry is off.
type reactiveMetrics struct {
	sweeps, icmpProbes, backoffProbes, icmpAlive *telemetry.Counter
	groupsOpened, groupsClosed, groupsInterr     *telemetry.Counter
	ptrRemovals, rdnsLookups                     *telemetry.Counter
}

func newReactiveMetrics(sink telemetry.Sink) *reactiveMetrics {
	return &reactiveMetrics{
		sweeps:        sink.Counter(MetricSweeps),
		icmpProbes:    sink.Counter(MetricICMPProbes),
		backoffProbes: sink.Counter(MetricBackoffProbes),
		icmpAlive:     sink.Counter(MetricICMPAlive),
		groupsOpened:  sink.Counter(MetricGroupsOpened),
		groupsClosed:  sink.Counter(MetricGroupsClosed),
		groupsInterr:  sink.Counter(MetricGroupsInterrupted),
		ptrRemovals:   sink.Counter(MetricPTRRemovals),
		rdnsLookups:   sink.Counter(MetricRDNSLookups),
	}
}
