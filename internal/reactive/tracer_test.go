package reactive

import (
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/ipam"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/simclock"
	"rdnsprivacy/internal/telemetry"
)

// TestEngineTracerEmitsCorrelatedChains runs a short reactive measurement
// with the tracer threaded through the engine's resolver, the fabric, and
// the network's DNS server, then checks the rDNS follow-up queries left
// complete client→fabric→server chains — the cross-layer path
// experiments -trace stitches (see docs/observability.md).
func TestEngineTracerEmitsCorrelatedChains(t *testing.T) {
	const seed = int64(31)
	dev := scriptedDevice(1, "Brian's iPhone", true, mondaySession(9*time.Hour, 10*time.Hour))
	cfg := netsim.Config{
		Name:      "Academic-T",
		Type:      netsim.Academic,
		Suffix:    dnswire.MustName("campus-t.edu"),
		Announced: dnswire.MustPrefix("10.80.0.0/20"),
		Blocks: []netsim.Block{
			{Kind: netsim.BlockDynamic, Prefix: dnswire.MustPrefix("10.80.1.0/24"),
				Policy: ipam.PolicyCarryOver, SubLabel: "dyn"},
		},
		LeaseTime: time.Hour,
		Seed:      5,
	}
	n, err := netsim.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddDevice(dev, 0, netsim.Student); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()

	tr := telemetry.NewTracer(seed, 0)
	clock := simclock.NewSimulated(epoch)
	fab := fabric.New(clock, fabric.Config{Latency: 5 * time.Millisecond})
	fab.SetTracer(tr)
	n.SetDNSTracer(tr)
	if err := n.Start(fab); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(fab, Config{
		Targets: []Target{{
			Name:     "Academic-T",
			Prefixes: []dnswire.Prefix{dnswire.MustPrefix("10.80.1.0/24")},
			DNS:      n.DNSAddr(),
		}},
		VantageICMP: dnswire.MustIPv4("198.51.100.10"),
		VantageDNS:  dnswire.MustIPv4("198.51.100.11"),
		Tracer:      tr,
		TracerSeed:  seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	clock.AdvanceTo(epoch.Add(11 * time.Hour))
	eng.Stop()

	// At least one correlation must cross all three layers.
	type chain struct{ attempt, hop, server int }
	chains := make(map[uint64]*chain)
	for _, sp := range tr.Snapshot() {
		if sp.Corr == 0 {
			continue
		}
		c := chains[sp.Corr]
		if c == nil {
			c = &chain{}
			chains[sp.Corr] = c
		}
		switch sp.Name {
		case "attempt":
			c.attempt++
		case "hop":
			c.hop++
		case "server":
			c.server++
		}
	}
	if len(chains) == 0 {
		t.Fatal("no correlated spans from the reactive run")
	}
	complete := 0
	for _, c := range chains {
		if c.attempt >= 1 && c.hop >= 2 && c.server >= 1 {
			complete++
		}
	}
	if complete == 0 {
		t.Fatalf("no complete client→fabric→server chain among %d correlations", len(chains))
	}
}
