package reactive

import (
	"testing"
	"time"

	"rdnsprivacy/internal/netsim"
)

func TestReappearanceInterruptsGroup(t *testing.T) {
	// A device that leaves silently and returns 20 minutes later — while
	// the rDNS follow-up is still chasing the (lingering) record. The
	// old group must close as interrupted and a fresh one must open.
	// The return must be visible to a sweep while the follow-up is
	// still running: the device comes back at 10:20 and stays past the
	// 11:00 sweep; its lingering record (1h lease, silent leave) keeps
	// the follow-up alive until then.
	sessions := map[time.Weekday][]netsim.Session{
		time.Monday: {
			{Start: 9 * time.Hour, End: 10 * time.Hour},
			{Start: 10*time.Hour + 20*time.Minute, End: 12*time.Hour + 30*time.Minute},
		},
	}
	dev := scriptedDevice(1, "Brians-iPhone", false, sessions) // silent leaver
	tb := newTestBed(t, []*netsim.Device{dev}, false, time.Hour)
	defer tb.net.Stop()

	tb.clock.AdvanceTo(epoch.Add(16 * time.Hour))
	tb.engine.Stop()
	res := tb.engine.Results()

	interrupted, reverted := 0, 0
	for _, g := range res.Groups {
		if g.Interrupted {
			interrupted++
			if g.Complete || g.Reverted || g.ReliableTiming {
				t.Fatalf("interrupted group marked usable: %+v", g)
			}
		}
		if g.Reverted {
			reverted++
		}
	}
	if interrupted == 0 {
		t.Fatal("no interrupted group despite reappearance during cooldown")
	}
	if reverted == 0 {
		t.Fatal("the final departure never produced a reverted group")
	}
}

func TestCooldownCapAbandonsGroup(t *testing.T) {
	// A network that never removes the PTR (static-form would be the
	// real case; here the device's record lingers within a huge lease):
	// the follow-up must give up at the cap rather than poll forever.
	dev := scriptedDevice(1, "Brians-iPad", false, mondaySession(9*time.Hour, 10*time.Hour))
	tb := newTestBedWithLease(t, []*netsim.Device{dev}, 48*time.Hour)
	defer tb.net.Stop()

	tb.clock.AdvanceTo(epoch.Add(30 * time.Hour))
	tb.engine.Stop()
	res := tb.engine.Results()
	sawAbandoned := false
	for _, g := range res.Groups {
		if g.PTRSeen && g.PTRRemovedAt.IsZero() && !g.Interrupted {
			sawAbandoned = true
			if g.Complete || g.Reverted {
				t.Fatalf("abandoned group marked complete: %+v", g)
			}
		}
	}
	if !sawAbandoned {
		t.Fatalf("no abandoned group; groups: %d", len(res.Groups))
	}
}

// newTestBedWithLease is newTestBed with a custom lease and default ICMP.
func newTestBedWithLease(t *testing.T, devices []*netsim.Device, lease time.Duration) *testBed {
	t.Helper()
	return newTestBed(t, devices, false, lease)
}
