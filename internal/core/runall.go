package core

import (
	"fmt"
	"io"
	"time"
)

// Renderer is any experiment result that can write itself as text.
type Renderer interface {
	Render(w io.Writer)
}

// ExperimentIDs lists the experiment identifiers RunExperiment accepts, in
// paper order.
func ExperimentIDs() []string {
	return []string{
		"table1", "fig1", "validation", "fig2", "fig3", "fig4",
		"table2", "table3", "table4", "table5", "fig6", "fig7a", "fig7b",
		"fig8", "fig9", "fig10", "fig11", "ext-geotrack", "ext-crossnet",
	}
}

// RunExperiment executes one experiment by ID and returns its renderer.
func (s *Study) RunExperiment(id string) (Renderer, error) {
	switch id {
	case "table1":
		return s.Table1(), nil
	case "fig1":
		return s.Figure1(), nil
	case "validation":
		v, err := s.Validation()
		if err != nil {
			return nil, err
		}
		return v, nil
	case "fig2":
		return s.Figure2(), nil
	case "fig3":
		return s.Figure3(), nil
	case "fig4":
		return s.Figure4(), nil
	case "table2":
		return s.Table2(), nil
	case "table3":
		return s.Table3(), nil
	case "table4":
		return s.Table4(), nil
	case "table5":
		return s.Table5(), nil
	case "fig6":
		return s.Figure6(), nil
	case "fig7a":
		return s.Figure7a(), nil
	case "fig7b":
		return s.Figure7b(), nil
	case "fig8":
		return s.Figure8(), nil
	case "fig9":
		return s.Figure9(), nil
	case "fig10":
		return s.Figure10(), nil
	case "fig11":
		return s.Figure11(), nil
	case "ext-geotrack":
		return s.ExtGeoTrack(), nil
	case "ext-crossnet":
		return s.ExtCrossNet(), nil
	}
	return nil, fmt.Errorf("core: unknown experiment %q (known: %v)", id, ExperimentIDs())
}

// RunAll executes every experiment in paper order, writing each rendering
// (and timing) to w.
func (s *Study) RunAll(w io.Writer) error {
	for _, id := range ExperimentIDs() {
		started := time.Now()
		r, err := s.RunExperiment(id)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		r.Render(w)
		fmt.Fprintf(w, "  [%s computed in %v]\n\n", id, time.Since(started).Round(time.Millisecond))
	}
	return nil
}
