// Package core orchestrates the complete reproduction study: it owns the
// simulated universe, runs the longitudinal scanning campaigns
// (OpenINTEL-like daily, Rapid7-like weekly), the Section 4 dynamicity
// analysis, the Section 5 privacy-leak identification, and the Section 6
// supplemental (ICMP + reactive rDNS) measurement, and exposes one method
// per table and figure of the paper's evaluation.
//
// Everything is lazy and cached: experiments share the expensive campaign
// results, and a Study at reduced scale runs in seconds for tests and
// benchmarks while the default scale reproduces the full evaluation.
package core

import (
	"context"
	"sync"
	"time"

	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/dynamicity"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/ipam"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/obs"
	"rdnsprivacy/internal/privleak"
	"rdnsprivacy/internal/reactive"
	"rdnsprivacy/internal/scan"
	"rdnsprivacy/internal/simclock"
	"rdnsprivacy/internal/telemetry"
)

// Config scales and schedules the study. Zero values take the defaults of
// the paper's timeline at 1/100 universe scale.
type Config struct {
	// Seed drives all generation and simulation.
	Seed uint64
	// Universe scales the simulated address space.
	Universe netsim.UniverseConfig

	// Rapid7Start/End delimit the weekly campaign (paper: 2019-10-01 to
	// 2021-01-01).
	Rapid7Start, Rapid7End time.Time
	// OpenINTELStart/End delimit the daily campaign (paper: 2020-02-17
	// to 2021-12-01).
	OpenINTELStart, OpenINTELEnd time.Time
	// DynamicityStart/End delimit the Section 4 window (paper: 2021-01
	// to 2021-03).
	DynamicityStart, DynamicityEnd time.Time
	// SupplementalStart/End delimit the Section 6 window (paper:
	// 2021-10-25 to 2021-12-05).
	SupplementalStart, SupplementalEnd time.Time

	// LeakWindowDays is how many daily snapshots the Section 5 analysis
	// unions (default 7).
	LeakWindowDays int
	// LeakThresholds are the Section 5 thresholds (default the
	// 1/100-scale-adjusted ones; see privleak.ScaledConfig).
	LeakThresholds privleak.Config
	// DNSFailure injects name-server failures during the supplemental
	// run (Figure 6 error mix). The default injects 0.5% SERVFAIL and
	// 0.3% drops.
	DNSFailure dnsserver.FailureMode

	// Telemetry, when set, receives engine metrics from every campaign
	// the study runs. Nil keeps the engines on their zero-overhead path.
	Telemetry telemetry.Sink
	// Observer, when set, captures one obs.Frame per campaign snapshot
	// across the study's longitudinal runs (see docs/observability.md).
	Observer *obs.Recorder
	// Tracer, when set, is threaded through the supplemental run's
	// client, fabric, and server layers so probe attempts emit the
	// correlated span chains experiments -trace stitches.
	Tracer *telemetry.Tracer
}

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

func (c *Config) fillDefaults() {
	c.Universe.Seed = c.Seed
	if c.Rapid7Start.IsZero() {
		c.Rapid7Start = date(2019, time.October, 1)
	}
	if c.Rapid7End.IsZero() {
		c.Rapid7End = date(2021, time.January, 1)
	}
	if c.OpenINTELStart.IsZero() {
		c.OpenINTELStart = date(2020, time.February, 17)
	}
	if c.OpenINTELEnd.IsZero() {
		c.OpenINTELEnd = date(2021, time.December, 1)
	}
	if c.DynamicityStart.IsZero() {
		c.DynamicityStart = date(2021, time.January, 1)
	}
	if c.DynamicityEnd.IsZero() {
		c.DynamicityEnd = date(2021, time.March, 31)
	}
	if c.SupplementalStart.IsZero() {
		c.SupplementalStart = date(2021, time.October, 25)
	}
	if c.SupplementalEnd.IsZero() {
		c.SupplementalEnd = date(2021, time.December, 5)
	}
	if c.LeakWindowDays == 0 {
		c.LeakWindowDays = 7
	}
	if c.LeakThresholds.MinUniqueNames == 0 {
		c.LeakThresholds = privleak.ScaledConfig()
	}
	if c.DNSFailure == (dnsserver.FailureMode{}) {
		c.DNSFailure = dnsserver.FailureMode{
			ServFailRate: 0.005,
			DropRate:     0.003,
			Seed:         int64(c.Seed) + 77,
		}
	}
}

// Study is the top-level reproduction harness.
type Study struct {
	Cfg      Config
	Universe *netsim.Universe

	mu           sync.Mutex
	dynSeries    *dataset.CountSeries
	dynResult    *dynamicity.Result
	leakResult   *privleak.Result
	supplemental *reactive.Results
	dailyAll     *scan.Result
	weeklyAll    *scan.Result
	perNetDaily  map[string]*scan.Result
	perNetWeekly map[string]*scan.Result
}

// NewStudy builds the universe and returns a study ready to run
// experiments.
func NewStudy(cfg Config) (*Study, error) {
	cfg.fillDefaults()
	u, err := netsim.BuildStudyUniverse(cfg.Universe)
	if err != nil {
		return nil, err
	}
	return &Study{
		Cfg:          cfg,
		Universe:     u,
		perNetDaily:  make(map[string]*scan.Result),
		perNetWeekly: make(map[string]*scan.Result),
	}, nil
}

// DynamicitySeries returns (cached) the 90-day whole-universe daily count
// series of the Section 4 window.
func (s *Study) DynamicitySeries() *dataset.CountSeries {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dynSeries == nil {
		res := scan.Run(scan.Campaign{
			Universe:  s.Universe,
			Start:     s.Cfg.DynamicityStart,
			End:       s.Cfg.DynamicityEnd,
			Cadence:   scan.Daily,
			Telemetry: s.Cfg.Telemetry,
			Observer:  s.Cfg.Observer,
		})
		s.dynSeries = res.Series
	}
	return s.dynSeries
}

// Dynamicity returns (cached) the Section 4 heuristic result.
func (s *Study) Dynamicity() *dynamicity.Result {
	series := s.DynamicitySeries()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dynResult == nil {
		s.dynResult = dynamicity.Analyze(series, dynamicity.PaperConfig())
	}
	return s.dynResult
}

// AnnouncedPrefixes returns the simulated routing table: one announced
// prefix per network plus each filler /24.
func (s *Study) AnnouncedPrefixes() []dnswire.Prefix {
	var out []dnswire.Prefix
	for _, n := range s.Universe.Networks {
		out = append(out, n.Config().Announced)
	}
	for _, f := range s.Universe.Filler {
		out = append(out, f.Prefix)
	}
	return out
}

// PrivLeak returns (cached) the Section 5 identification result, computed
// over a union of LeakWindowDays daily snapshots with the scaled
// thresholds.
func (s *Study) PrivLeak() *privleak.Result {
	dyn := s.Dynamicity()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.leakResult != nil {
		return s.leakResult
	}
	dynSet := make(map[dnswire.Prefix]bool, len(dyn.DynamicPrefixes))
	for _, p := range dyn.DynamicPrefixes {
		dynSet[p] = true
	}
	a := privleak.NewAnalyzer(s.Cfg.LeakThresholds)
	seen := make(map[uint64]struct{}, 1<<20)
	// Union the LAST days of the dynamicity window: its first days can
	// sit inside the winter break, when campuses are empty and academic
	// networks would be under-counted. Each day is one sharded engine
	// sweep over the whole universe.
	ctx := context.Background()
	for d := 0; d < s.Cfg.LeakWindowDays; d++ {
		at := s.Cfg.DynamicityEnd.AddDate(0, 0, d+1-s.Cfg.LeakWindowDays).Add(13 * time.Hour)
		snap, err := scan.Snapshot(ctx, scan.Campaign{Universe: s.Universe}, at)
		if err != nil {
			break
		}
		for ip, name := range snap.Records {
			key := recordKey(ip, name)
			if _, ok := seen[key]; ok {
				continue
			}
			seen[key] = struct{}{}
			a.Observe(privleak.RecordObservation{
				IP: ip, HostName: name, Dynamic: dynSet[ip.Slash24()],
			})
		}
	}
	s.leakResult = a.Finish()
	return s.leakResult
}

// recordKey hashes an (ip, hostname) pair for dedup.
func recordKey(ip dnswire.IPv4, name dnswire.Name) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	h ^= uint64(ip.Uint32())
	h *= prime
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	return h
}

// DailyCampaign returns (cached) the full-universe OpenINTEL-like campaign.
// This is the heaviest longitudinal computation of the study.
func (s *Study) DailyCampaign() *scan.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dailyAll == nil {
		s.dailyAll = scan.Run(scan.Campaign{
			Universe:  s.Universe,
			Start:     s.Cfg.OpenINTELStart,
			End:       s.Cfg.OpenINTELEnd,
			Cadence:   scan.Daily,
			Telemetry: s.Cfg.Telemetry,
			Observer:  s.Cfg.Observer,
		})
	}
	return s.dailyAll
}

// WeeklyCampaign returns (cached) the full-universe Rapid7-like campaign.
func (s *Study) WeeklyCampaign() *scan.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.weeklyAll == nil {
		s.weeklyAll = scan.Run(scan.Campaign{
			Universe:  s.Universe,
			Start:     s.Cfg.Rapid7Start,
			End:       s.Cfg.Rapid7End,
			Cadence:   scan.Weekly,
			Telemetry: s.Cfg.Telemetry,
			Observer:  s.Cfg.Observer,
		})
	}
	return s.weeklyAll
}

// NetworkDaily returns (cached) a network-restricted daily campaign over
// the OpenINTEL window (used by Figures 9 and 10 — far cheaper than the
// whole-universe campaign).
func (s *Study) NetworkDaily(name string) *scan.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.perNetDaily[name]; ok {
		return r
	}
	r := scan.Run(scan.Campaign{
		Universe: s.Universe,
		Start:    s.Cfg.OpenINTELStart,
		End:      s.Cfg.OpenINTELEnd,
		Cadence:  scan.Daily,
		Networks: []string{name},
	})
	s.perNetDaily[name] = r
	return r
}

// NetworkWeekly returns (cached) a network-restricted weekly campaign over
// the Rapid7 window.
func (s *Study) NetworkWeekly(name string) *scan.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.perNetWeekly[name]; ok {
		return r
	}
	r := scan.Run(scan.Campaign{
		Universe: s.Universe,
		Start:    s.Cfg.Rapid7Start,
		End:      s.Cfg.Rapid7End,
		Cadence:  scan.Weekly,
		Networks: []string{name},
	})
	s.perNetWeekly[name] = r
	return r
}

// SupplementalTargets derives each supplemental network's targeted address
// space: its CarryOver dynamic blocks, the "subnet[s] containing the most
// dynamically assigned hosts" (Section 6.1).
func (s *Study) SupplementalTargets() []reactive.Target {
	var targets []reactive.Target
	for _, name := range netsim.SupplementalNames() {
		n, ok := s.Universe.NetworkByName(name)
		if !ok {
			continue
		}
		var prefixes []dnswire.Prefix
		for _, b := range n.Config().Blocks {
			if b.Kind == netsim.BlockDynamic && b.Policy == ipam.PolicyCarryOver {
				prefixes = append(prefixes, b.Prefix.Slash24s()...)
			}
		}
		targets = append(targets, reactive.Target{
			Name:     name,
			Prefixes: prefixes,
			DNS:      n.DNSAddr(),
		})
	}
	return targets
}

// Supplemental returns (cached) the Section 6 supplemental measurement
// results: the nine networks run live (packet-level DHCP, DNS and ICMP) on
// a simulated clock across the supplemental window while the reactive
// engine measures them from outside.
func (s *Study) Supplemental() *reactive.Results {
	s.mu.Lock()
	if s.supplemental != nil {
		defer s.mu.Unlock()
		return s.supplemental
	}
	s.mu.Unlock()

	clock := simclock.NewSimulated(s.Cfg.SupplementalStart)
	fab := fabric.New(clock, fabric.Config{
		Latency: 20 * time.Millisecond,
		Jitter:  10 * time.Millisecond,
		Seed:    int64(s.Cfg.Seed) + 5,
	})
	fab.SetTracer(s.Cfg.Tracer)
	var started []*netsim.Network
	for _, name := range netsim.SupplementalNames() {
		n, ok := s.Universe.NetworkByName(name)
		if !ok {
			continue
		}
		// Live mode builds fresh zone state; the network's presence
		// model is pure, so snapshot evaluation stays valid
		// afterwards.
		n.SetDNSFailure(s.Cfg.DNSFailure)
		n.SetDNSTracer(s.Cfg.Tracer)
		if err := n.Start(fab); err != nil {
			continue
		}
		started = append(started, n)
	}
	engine, err := reactive.NewEngine(fab, reactive.Config{
		Targets:     s.SupplementalTargets(),
		VantageICMP: dnswire.MustIPv4("198.51.100.10"),
		VantageDNS:  dnswire.MustIPv4("198.51.100.11"),
		DNSRetries:  1,
		Tracer:      s.Cfg.Tracer,
		TracerSeed:  int64(s.Cfg.Seed),
	})
	if err != nil {
		for _, n := range started {
			n.Stop()
		}
		return &reactive.Results{}
	}
	engine.Start()
	clock.AdvanceTo(s.Cfg.SupplementalEnd)
	engine.Stop()
	for _, n := range started {
		n.Stop()
	}
	res := engine.Results()
	s.mu.Lock()
	s.supplemental = res
	s.mu.Unlock()
	return res
}
