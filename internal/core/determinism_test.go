package core

import (
	"testing"
	"time"

	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/privleak"
)

// Determinism is load-bearing: the paper-vs-measured comparison in
// EXPERIMENTS.md is only meaningful if the same seed always yields the
// same universe and the same measurements.

func microConfig(seed uint64) Config {
	return Config{
		Seed: seed,
		Universe: netsim.UniverseConfig{
			FillerSlash24s:        120,
			LeakyNetworks:         10,
			NonLeakyDynamic:       1,
			PeoplePerDynamicBlock: 6,
		},
		LeakThresholds:    privleak.Config{MinUniqueNames: 4, MinRatio: 0.01},
		DynamicityStart:   date(2020, time.September, 7),
		DynamicityEnd:     date(2020, time.September, 27),
		SupplementalStart: date(2021, time.November, 22),
		SupplementalEnd:   date(2021, time.November, 26),
	}
}

func TestSameSeedSameUniverse(t *testing.T) {
	a, err := NewStudy(microConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStudy(microConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Universe.Networks) != len(b.Universe.Networks) {
		t.Fatalf("network counts differ: %d vs %d",
			len(a.Universe.Networks), len(b.Universe.Networks))
	}
	for i := range a.Universe.Networks {
		na, nb := a.Universe.Networks[i], b.Universe.Networks[i]
		if na.Name() != nb.Name() {
			t.Fatalf("network %d: %s vs %s", i, na.Name(), nb.Name())
		}
		da, db := na.Devices(), nb.Devices()
		if len(da) != len(db) {
			t.Fatalf("%s: device counts differ: %d vs %d", na.Name(), len(da), len(db))
		}
		for j := range da {
			if da[j].HostName != db[j].HostName || da[j].MAC != db[j].MAC {
				t.Fatalf("%s device %d differs: %q/%v vs %q/%v", na.Name(), j,
					da[j].HostName, da[j].MAC, db[j].HostName, db[j].MAC)
			}
			ipa, _ := na.DeviceIP(da[j])
			ipb, _ := nb.DeviceIP(db[j])
			if ipa != ipb {
				t.Fatalf("%s device %d address differs: %v vs %v", na.Name(), j, ipa, ipb)
			}
		}
	}
}

func TestSameSeedSameMeasurements(t *testing.T) {
	run := func() (int, int, float64, int) {
		s, err := NewStudy(microConfig(9))
		if err != nil {
			t.Fatal(err)
		}
		dyn := s.Dynamicity()
		leak := s.PrivLeak()
		fig7b := s.Figure7b()
		funnel := s.Supplemental().Funnel()
		return len(dyn.DynamicPrefixes), len(leak.Identified),
			fig7b.Within60Overall, funnel.All
	}
	d1, l1, w1, f1 := run()
	d2, l2, w2, f2 := run()
	if d1 != d2 || l1 != l2 || w1 != w2 || f1 != f2 {
		t.Fatalf("two identical runs diverged: (%d,%d,%v,%d) vs (%d,%d,%v,%d)",
			d1, l1, w1, f1, d2, l2, w2, f2)
	}
}

func TestDifferentSeedDifferentUniverse(t *testing.T) {
	a, err := NewStudy(microConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStudy(microConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	// Some device somewhere must differ (hostnames are seed-derived).
	na, nb := a.Universe.Networks[0], b.Universe.Networks[0]
	da, db := na.Devices(), nb.Devices()
	n := len(da)
	if len(db) < n {
		n = len(db)
	}
	same := true
	for j := 0; j < n; j++ {
		if da[j].HostName != db[j].HostName {
			same = false
			break
		}
	}
	if same && len(da) == len(db) {
		t.Fatal("different seeds produced identical populations")
	}
}
