package core

import (
	"fmt"
	"io"
	"sort"
	"time"

	"rdnsprivacy/internal/analysis"
	"rdnsprivacy/internal/casestudy"
	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/dynamicity"
	"rdnsprivacy/internal/names"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/reactive"
	"rdnsprivacy/internal/scan"
	"rdnsprivacy/internal/textplot"
)

// Table1Result reproduces Table 1: statistics of the two longitudinal
// data sets.
type Table1Result struct {
	Rapid7    dataset.Stats
	OpenINTEL dataset.Stats
}

// Table1 runs both full-universe campaigns and summarizes them.
func (s *Study) Table1() Table1Result {
	return Table1Result{
		Rapid7:    s.WeeklyCampaign().Stats,
		OpenINTEL: s.DailyCampaign().Stats,
	}
}

// Render writes the table.
func (r Table1Result) Render(w io.Writer) {
	textplot.Table(w, "Table 1: longitudinal data set statistics",
		[]string{"Data set", "Start", "End", "Total responses", "Unique IPs", "Unique PTRs"},
		[][]string{
			{"Rapid7-like (weekly)", r.Rapid7.Start.Format(dataset.DateFormat),
				r.Rapid7.End.Format(dataset.DateFormat),
				fmt.Sprint(r.Rapid7.TotalResponses),
				fmt.Sprint(r.Rapid7.UniqueIPs), fmt.Sprint(r.Rapid7.UniquePTRs)},
			{"OpenINTEL-like (daily)", r.OpenINTEL.Start.Format(dataset.DateFormat),
				r.OpenINTEL.End.Format(dataset.DateFormat),
				fmt.Sprint(r.OpenINTEL.TotalResponses),
				fmt.Sprint(r.OpenINTEL.UniqueIPs), fmt.Sprint(r.OpenINTEL.UniquePTRs)},
		})
	fmt.Fprintf(w, "  (paper, full scale: Rapid7 77G responses / 1,381M unique PTRs;\n"+
		"   OpenINTEL 396G responses / 1,356M unique PTRs — this run is the\n"+
		"   1/100-scale universe, see EXPERIMENTS.md)\n\n")
}

// Figure1Result reproduces Figure 1: distribution of the fraction of
// dynamic /24s per announced prefix, by announced prefix size.
type Figure1Result struct {
	TotalSlash24s   int
	DynamicSlash24s int
	Distribution    []dynamicity.FractionDistribution
}

// Figure1 maps dynamic /24s to announced prefixes and summarizes.
func (s *Study) Figure1() Figure1Result {
	dyn := s.Dynamicity()
	entries := dynamicity.MapToAnnounced(dyn, s.AnnouncedPrefixes())
	return Figure1Result{
		TotalSlash24s:   dyn.TotalPrefixes,
		DynamicSlash24s: len(dyn.DynamicPrefixes),
		Distribution:    dynamicity.DistributionBySize(entries),
	}
}

// Render writes the distribution table.
func (r Figure1Result) Render(w io.Writer) {
	rows := make([][]string, 0, len(r.Distribution))
	for _, d := range r.Distribution {
		rows = append(rows, []string{
			fmt.Sprintf("/%d", d.Bits), fmt.Sprint(d.Count),
			fmt.Sprintf("%.1f%%", d.MinPct), fmt.Sprintf("%.1f%%", d.MedianPct),
			fmt.Sprintf("%.1f%%", d.MaxPct),
		})
	}
	textplot.Table(w, "Figure 1: fraction of dynamic /24s per announced prefix",
		[]string{"Announced size", "Prefixes", "Min", "Median", "Max"}, rows)
	fmt.Fprintf(w, "  /24s with PTRs: %d; labelled dynamic: %d (%.2f%%)\n",
		r.TotalSlash24s, r.DynamicSlash24s,
		100*float64(r.DynamicSlash24s)/float64(max(1, r.TotalSlash24s)))
	fmt.Fprintf(w, "  (paper: 6,151,219 /24s, 134,451 dynamic = 2.19%%)\n\n")
}

// Table2Result reproduces Table 2: the reactive back-off schedule.
type Table2Result struct {
	Steps []reactive.BackoffStep
}

// Table2 returns the schedule in use.
func (s *Study) Table2() Table2Result {
	return Table2Result{Steps: reactive.PaperBackoff()}
}

// Render writes the schedule.
func (r Table2Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 2: reactive measurement back-off schedule\n")
	fmt.Fprintf(w, "===============================================\n")
	fmt.Fprintf(w, "%s\n\n", indent(reactive.ScheduleString(r.Steps), "  "))
}

// Figure2Result reproduces Figure 2: given-name occurrences, all vs
// filtered, in the paper's name order.
type Figure2Result struct {
	Names    []string
	All      map[string]int
	Filtered map[string]int
}

// Figure2 extracts the data from the Section 5 analysis.
func (s *Study) Figure2() Figure2Result {
	leak := s.PrivLeak()
	return Figure2Result{
		Names:    names.Top50,
		All:      leak.AllNameMatches,
		Filtered: leak.FilteredNameMatches,
	}
}

// Render writes the bar chart.
func (r Figure2Result) Render(w io.Writer) {
	items := make([]textplot.BarItem, 0, len(r.Names))
	for _, n := range r.Names {
		items = append(items, textplot.BarItem{
			Label: n, Value: float64(r.All[n]), Value2: float64(r.Filtered[n]),
		})
	}
	textplot.Bars(w, "Figure 2: given names in reverse DNS entries (log scale)",
		items, textplot.BarsOptions{
			Log: true, Width: 40,
			FirstSeries: "all matches", SecondSeries: "filtered matches",
		})
}

// Figure3Result reproduces Figure 3: terms co-appearing with given names.
type Figure3Result struct {
	Terms                   []string
	All                     map[string]int
	Filtered                map[string]int
	TotalAll, TotalFiltered int
}

// Figure3 extracts the device-term co-occurrence data.
func (s *Study) Figure3() Figure3Result {
	leak := s.PrivLeak()
	r := Figure3Result{
		Terms:    names.DeviceTerms,
		All:      leak.AllDeviceTerms,
		Filtered: leak.FilteredDeviceTerms,
	}
	for _, c := range r.All {
		r.TotalAll += c
	}
	for _, c := range r.Filtered {
		r.TotalFiltered += c
	}
	return r
}

// Render writes the bar chart including the "total" column of the paper.
func (r Figure3Result) Render(w io.Writer) {
	items := []textplot.BarItem{{
		Label: "total", Value: float64(r.TotalAll), Value2: float64(r.TotalFiltered),
	}}
	for _, t := range r.Terms {
		items = append(items, textplot.BarItem{
			Label: t, Value: float64(r.All[t]), Value2: float64(r.Filtered[t]),
		})
	}
	textplot.Bars(w, "Figure 3: device terms alongside given names (log scale)",
		items, textplot.BarsOptions{
			Log: true, Width: 40,
			FirstSeries: "all matches", SecondSeries: "filtered matches",
		})
}

// Figure4Result reproduces Figure 4: identified networks by type.
type Figure4Result struct {
	Identified int
	ByType     map[string]int
}

// Figure4 computes the type breakdown of identified networks.
func (s *Study) Figure4() Figure4Result {
	leak := s.PrivLeak()
	byType := make(map[string]int)
	for t, c := range leak.TypeBreakdown() {
		byType[t.String()] = c
	}
	return Figure4Result{Identified: len(leak.Identified), ByType: byType}
}

// Render writes the breakdown.
func (r Figure4Result) Render(w io.Writer) {
	textplot.Breakdown(w, fmt.Sprintf(
		"Figure 4: breakdown of the %d identified networks by type", r.Identified),
		r.ByType)
	fmt.Fprintf(w, "  (paper: 197 networks; 62%% academic, 15%% ISP, 11%% other,\n"+
		"   9%% enterprise, 3%% government)\n\n")
}

// Table3Result reproduces Table 3: supplemental measurement statistics.
type Table3Result struct {
	Start, End     time.Time
	ICMPResponses  uint64
	ICMPUniqueIPs  int
	RDNSResponses  uint64
	RDNSUniqueIPs  int
	RDNSUniquePTRs int
}

// Table3 summarizes the supplemental run.
func (s *Study) Table3() Table3Result {
	res := s.Supplemental()
	return Table3Result{
		Start: s.Cfg.SupplementalStart, End: s.Cfg.SupplementalEnd,
		ICMPResponses: res.ICMPResponses, ICMPUniqueIPs: res.ICMPUniqueIPs,
		RDNSResponses: res.RDNSResponses, RDNSUniqueIPs: res.RDNSUniqueIPs,
		RDNSUniquePTRs: res.RDNSUniquePTRs,
	}
}

// Render writes the table.
func (r Table3Result) Render(w io.Writer) {
	textplot.Table(w, "Table 3: supplemental measurement statistics",
		[]string{"Probe", "Start", "End", "Total responses", "Unique IPs", "Unique PTRs"},
		[][]string{
			{"ICMP", r.Start.Format(dataset.DateFormat), r.End.Format(dataset.DateFormat),
				fmt.Sprint(r.ICMPResponses), fmt.Sprint(r.ICMPUniqueIPs), "-"},
			{"rDNS", r.Start.Format(dataset.DateFormat), r.End.Format(dataset.DateFormat),
				fmt.Sprint(r.RDNSResponses), fmt.Sprint(r.RDNSUniqueIPs),
				fmt.Sprint(r.RDNSUniquePTRs)},
		})
}

// Table4Row is one network of Table 4.
type Table4Row struct {
	Network     string
	Type        string
	TargetSize  string
	Targeted    int
	Observed    int
	ObservedPct float64
	ICMPBlocked bool
}

// Table4Result reproduces Table 4.
type Table4Result struct{ Rows []Table4Row }

// Table4 reports the nine supplemental networks' observability.
func (s *Study) Table4() Table4Result {
	res := s.Supplemental()
	var rows []Table4Row
	for _, t := range s.SupplementalTargets() {
		n, _ := s.Universe.NetworkByName(t.Name)
		targeted := 0
		for _, p := range t.Prefixes {
			targeted += p.NumAddresses()
		}
		observed := res.PerNetworkAlive[t.Name]
		rows = append(rows, Table4Row{
			Network:     t.Name,
			Type:        n.Config().Type.String(),
			TargetSize:  fmt.Sprintf("%d x /24", len(t.Prefixes)),
			Targeted:    targeted,
			Observed:    observed,
			ObservedPct: 100 * float64(observed) / float64(max(1, targeted)),
			ICMPBlocked: n.Config().BlockICMP,
		})
	}
	return Table4Result{Rows: rows}
}

// Render writes the table.
func (r Table4Result) Render(w io.Writer) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		note := ""
		if row.ICMPBlocked {
			note = "blocks ICMP"
		}
		rows = append(rows, []string{
			row.Network, row.Type, row.TargetSize,
			fmt.Sprint(row.Observed), fmt.Sprintf("%.1f%%", row.ObservedPct), note,
		})
	}
	textplot.Table(w, "Table 4: supplemental networks and ICMP observability",
		[]string{"Network", "Type", "Targeted size", "Addresses observed", "Percent", "Note"},
		rows)
}

// Table5Result reproduces Table 5: the group funnel.
type Table5Result struct{ Funnel reactive.Funnel }

// Table5 computes the funnel over the supplemental groups.
func (s *Study) Table5() Table5Result {
	return Table5Result{Funnel: s.Supplemental().Funnel()}
}

// Render writes the funnel.
func (r Table5Result) Render(w io.Writer) {
	f := r.Funnel
	textplot.Table(w, "Table 5: breakdown of supplemental measurement groups",
		[]string{"Level", "Groups", "Fraction of parent"},
		[][]string{
			{"All groups", fmt.Sprint(f.All), "100.0%"},
			{"Successful responses", fmt.Sprint(f.Successful), pct(f.Fraction(1))},
			{"PTR reverted", fmt.Sprint(f.Reverted), pct(f.Fraction(2))},
			{"Reliable timing alignment", fmt.Sprint(f.Reliable), pct(f.Fraction(3))},
		})
	fmt.Fprintf(w, "  (paper: 6,297,080 -> 582,814 (9.3%%) -> 581,923 (99.9%%) -> 419,453 (72.1%%))\n\n")
}

// Figure6Result reproduces Figure 6: DNS errors per day.
type Figure6Result struct{ Days []*reactive.DayCounts }

// Figure6 reports per-day error accounting.
func (s *Study) Figure6() Figure6Result {
	days := append([]*reactive.DayCounts(nil), s.Supplemental().Days...)
	sort.Slice(days, func(i, j int) bool { return days[i].Day.Before(days[j].Day) })
	return Figure6Result{Days: days}
}

// Render writes a per-day table.
func (r Figure6Result) Render(w io.Writer) {
	rows := make([][]string, 0, len(r.Days))
	for _, d := range r.Days {
		rows = append(rows, []string{
			d.Day.Format(dataset.DateFormat), fmt.Sprint(d.UniqueIPs),
			fmt.Sprint(d.NXDomain), fmt.Sprint(d.ServFail), fmt.Sprint(d.Timeout),
		})
	}
	textplot.Table(w, "Figure 6: DNS responses and errors per day (supplemental)",
		[]string{"Day", "Unique IPs", "NXDOMAIN", "Nameserver failure", "Timeout"}, rows)
}

// Figure7aResult reproduces Figure 7a: histogram of minutes between last
// ICMP sample and PTR removal.
type Figure7aResult struct {
	Histogram *analysis.Histogram
	// PeaksAtMinutes lists histogram peaks (bin centers, minutes).
	PeaksAtMinutes []float64
}

// Figure7a builds the removal-delta histogram over reliable groups, in
// 5-minute bins across the first three hours, as the paper plots.
func (s *Study) Figure7a() Figure7aResult {
	h := analysis.NewHistogram(0, 180, 36)
	for _, d := range s.Supplemental().RemovalDeltas("") {
		h.Observe(d)
	}
	var peaks []float64
	for _, b := range h.PeakBins(h.Total() / 50) {
		peaks = append(peaks, h.BinCenter(b))
	}
	return Figure7aResult{Histogram: h, PeaksAtMinutes: peaks}
}

// Render writes the histogram.
func (r Figure7aResult) Render(w io.Writer) {
	textplot.HistogramPlot(w,
		"Figure 7a: minutes between last ICMP sample and PTR removal",
		r.Histogram, "m", 46)
	fmt.Fprintf(w, "  peaks near (minutes): %v\n", r.PeaksAtMinutes)
	fmt.Fprintf(w, "  (paper: a peak near 5 minutes from DHCP releases and peaks at\n"+
		"   multiples of an hour from lease expiry)\n\n")
}

// Figure7bResult reproduces Figure 7b: per-network removal-delta CDFs.
type Figure7bResult struct {
	// CDFs maps network name to its delta CDF (minutes).
	CDFs map[string]*analysis.CDF
	// Within60Overall is the overall fraction of deltas at or below 60
	// minutes — the paper's "9 out of 10 cases".
	Within60Overall float64
}

// Figure7b builds per-network CDFs over the networks with usable data.
func (s *Study) Figure7b() Figure7bResult {
	res := s.Supplemental()
	out := Figure7bResult{CDFs: make(map[string]*analysis.CDF)}
	var all []float64
	for _, t := range s.SupplementalTargets() {
		deltas := res.RemovalDeltas(t.Name)
		if len(deltas) == 0 {
			continue
		}
		out.CDFs[t.Name] = analysis.NewCDF(deltas)
		all = append(all, deltas...)
	}
	if len(all) > 0 {
		out.Within60Overall = analysis.NewCDF(all).At(60)
	}
	return out
}

// Render writes the CDF table.
func (r Figure7bResult) Render(w io.Writer) {
	keys := make([]string, 0, len(r.CDFs))
	for k := range r.CDFs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	curves := make([]textplot.Curve, 0, len(keys))
	for _, k := range keys {
		curves = append(curves, textplot.Curve{Label: k, CDF: r.CDFs[k]})
	}
	textplot.CDFPlot(w, "Figure 7b: per-network CDF of PTR removal delay",
		curves, 120, 12, "minutes")
	fmt.Fprintf(w, "  overall fraction within 60 minutes: %.1f%% (paper: ~90%%)\n\n",
		100*r.Within60Overall)
}

// Figure8Result reproduces Figure 8: six weeks of Brian devices on
// Academic-A.
type Figure8Result struct {
	Network string
	Start   time.Time
	Weeks   int
	Tracks  []*casestudy.DeviceTrack
	// Note9FirstSeen is when brians-galaxy-note9 first appeared; the
	// paper ties it to Cyber Monday afternoon.
	Note9FirstSeen time.Time
}

// Figure8 tracks Brian devices across the supplemental window.
func (s *Study) Figure8() Figure8Result {
	res := s.Supplemental()
	tracks := casestudy.TrackName(res, "Academic-A", "brian")
	r := Figure8Result{
		Network: "Academic-A",
		Start:   s.Cfg.SupplementalStart,
		Weeks:   int(s.Cfg.SupplementalEnd.Sub(s.Cfg.SupplementalStart).Hours()/24/7 + 0.5),
		Tracks:  tracks,
	}
	for _, tr := range tracks {
		if tr.Device == "brians-galaxy-note9" {
			r.Note9FirstSeen = tr.FirstSeen()
		}
	}
	return r
}

// Render draws the weekly raster with weekend and Thanksgiving shading.
func (r Figure8Result) Render(w io.Writer) {
	thanksgiving := time.Date(2021, 11, 25, 0, 0, 0, 0, r.Start.Location())
	highlight := func(d time.Time) rune {
		if !d.Before(thanksgiving) && d.Before(thanksgiving.AddDate(0, 0, 4)) {
			return '▒' // Thanksgiving weekend
		}
		if d.Weekday() == time.Saturday || d.Weekday() == time.Sunday {
			return '░'
		}
		return ' '
	}
	tracks := make([]textplot.RasterTrack, 0, len(r.Tracks))
	for _, tr := range r.Tracks {
		tr := tr
		tracks = append(tracks, textplot.RasterTrack{
			Label:     tr.Device,
			PresentOn: tr.PresentOn,
		})
	}
	textplot.Raster(w, fmt.Sprintf("Figure 8: %d weeks in the Life of Brian(s) on %s",
		r.Weeks, r.Network), tracks, r.Start, r.Weeks, highlight)
	if !r.Note9FirstSeen.IsZero() {
		fmt.Fprintf(w, "  brians-galaxy-note9 first seen: %s (Cyber Monday 2021 was 2021-11-29)\n",
			r.Note9FirstSeen.Format("2006-01-02 15:04 Mon"))
	}
	fmt.Fprintln(w)
}

// Figure9Result reproduces Figure 9: longitudinal percent-of-max entries
// for the selected networks.
type Figure9Result struct {
	Reports []casestudy.WFHReport
}

// Figure9 computes the work-from-home series for the three academic and
// two ICMP-blocking enterprise networks (the paper's selection).
func (s *Study) Figure9() Figure9Result {
	selection := []struct {
		name     string
		lockdown time.Time
	}{
		{"Academic-A", date(2020, time.March, 16)},
		{"Academic-B", date(2020, time.March, 16)},
		{"Academic-C", date(2020, time.March, 13)},
		{"Enterprise-B", date(2021, time.March, 15)},
		{"Enterprise-C", date(2021, time.March, 15)},
	}
	var out Figure9Result
	for _, sel := range selection {
		res := s.NetworkDaily(sel.name)
		totals := casestudy.EntrySeries(res.Series, nil)
		out.Reports = append(out.Reports, casestudy.WFH(sel.name, totals, sel.lockdown))
	}
	return out
}

// Render writes the sparkline series plus the drop summary.
func (r Figure9Result) Render(w io.Writer) {
	series := make([]textplot.LabeledSeries, 0, len(r.Reports))
	for _, rep := range r.Reports {
		series = append(series, textplot.LabeledSeries{
			Label: rep.Network, Series: rep.PercentOfMax,
		})
	}
	textplot.TimeSeries(w, "Figure 9: reverse DNS entries, percent of maximum", series, 80)
	rows := make([][]string, 0, len(r.Reports))
	for _, rep := range r.Reports {
		rows = append(rows, []string{
			rep.Network,
			fmt.Sprintf("%.0f%%", rep.PrePandemicMean),
			fmt.Sprintf("%.0f%%", rep.LockdownMean),
		})
	}
	textplot.Table(w, "Figure 9 summary: mean entries before vs during lockdown",
		[]string{"Network", "Pre-lockdown", "Lockdown"}, rows)
}

// Figure10Result reproduces Figure 10: the Academic-C education vs housing
// crossover, with daily (OpenINTEL-like) and weekly (Rapid7-like) series.
type Figure10Result struct {
	Daily  casestudy.CrossoverReport
	Weekly casestudy.CrossoverReport
}

// Figure10 computes the per-subnet series for Academic-C.
func (s *Study) Figure10() Figure10Result {
	n, _ := s.Universe.NetworkByName("Academic-C")
	edu, housing := netsim.EducationHousingSplit(n)
	searchFrom := date(2020, time.February, 1)

	daily := s.NetworkDaily("Academic-C")
	weekly := s.NetworkWeekly("Academic-C")
	return Figure10Result{
		Daily: casestudy.Crossover(
			casestudy.EntrySeries(daily.Series, edu),
			casestudy.EntrySeries(daily.Series, housing), searchFrom, 7),
		Weekly: casestudy.Crossover(
			casestudy.EntrySeries(weekly.Series, edu),
			casestudy.EntrySeries(weekly.Series, housing), searchFrom, 2),
	}
}

// Render writes both overlays and the detected crossover dates.
func (r Figure10Result) Render(w io.Writer) {
	textplot.TimeSeries(w, "Figure 10: Academic-C education vs housing (daily, percent of max)",
		[]textplot.LabeledSeries{
			{Label: "education", Series: r.Daily.Education},
			{Label: "housing", Series: r.Daily.Housing},
		}, 80)
	textplot.TimeSeries(w, "Figure 10 (weekly Rapid7-like overlay)",
		[]textplot.LabeledSeries{
			{Label: "education", Series: r.Weekly.Education},
			{Label: "housing", Series: r.Weekly.Housing},
		}, 80)
	fmt.Fprintf(w, "  crossover (daily):  %s\n", fmtDate(r.Daily.Crossover))
	fmt.Fprintf(w, "  crossover (weekly): %s\n", fmtDate(r.Weekly.Crossover))
	fmt.Fprintf(w, "  (paper: education/housing crossover in March 2020)\n\n")
}

// Figure11Result reproduces Figure 11: one week of activity on Academic-A.
type Figure11Result struct {
	Report casestudy.HeistReport
	From   time.Time
}

// Figure11 profiles the first full week of November 2021 on Academic-A.
func (s *Study) Figure11() Figure11Result {
	from := date(2021, time.November, 1)
	return Figure11Result{
		Report: casestudy.Heist(s.Supplemental(), "Academic-A", from, from.AddDate(0, 0, 7)),
		From:   from,
	}
}

// Render writes the hourly series and the verdict.
func (r Figure11Result) Render(w io.Writer) {
	icmp := analysis.Series{}
	rdns := analysis.Series{}
	for _, hc := range r.Report.Hours {
		icmp.Dates = append(icmp.Dates, hc.Hour)
		icmp.Values = append(icmp.Values, float64(hc.ICMP))
		rdns.Dates = append(rdns.Dates, hc.Hour)
		rdns.Values = append(rdns.Values, float64(hc.RDNS))
	}
	textplot.TimeSeries(w, "Figure 11: one week of measurements on Academic-A (hourly)",
		[]textplot.LabeledSeries{
			{Label: "ICMP", Series: icmp},
			{Label: "rDNS", Series: rdns},
		}, 84)
	fmt.Fprintf(w, "  quietest weekday hour: %02d:00 (paper: ~6AM)\n", r.Report.QuietestHourOfDay)
	fmt.Fprintf(w, "  busiest weekday hour:  %02d:00\n\n", r.Report.BusiestHourOfDay)
}

// ValidationResult reproduces the Section 4.1 ground-truth validation.
type ValidationResult struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	WantDynamic    int
	StaticFlagged  int
}

// Validation builds a fresh ground-truth campus, scans it for three months
// and checks the heuristic against the numbering plan.
func (s *Study) Validation() (ValidationResult, error) {
	campus, truth, err := netsim.BuildValidationCampus(s.Cfg.Seed+1, time.UTC)
	if err != nil {
		return ValidationResult{}, err
	}
	u := &netsim.Universe{Networks: []*netsim.Network{campus}}
	res := scan.Run(scan.Campaign{
		Universe: u,
		Start:    s.Cfg.DynamicityStart,
		End:      s.Cfg.DynamicityEnd,
		Cadence:  scan.Daily,
	})
	verdict := dynamicity.Analyze(res.Series, dynamicity.PaperConfig())
	flagged := make(map[dnswire.Prefix]bool)
	for _, p := range verdict.DynamicPrefixes {
		flagged[p] = true
	}
	out := ValidationResult{WantDynamic: len(truth["dynamic"])}
	for _, p := range truth["dynamic"] {
		if flagged[p] {
			out.TruePositives++
		} else {
			out.FalseNegatives++
		}
		delete(flagged, p)
	}
	for range flagged {
		out.FalsePositives++
	}
	for _, class := range []string{"dhcp-static", "static", "empty"} {
		for _, p := range truth[class] {
			if verdict.IsDynamic(p) {
				out.StaticFlagged++
			}
		}
	}
	return out, nil
}

// Render writes the validation summary.
func (r ValidationResult) Render(w io.Writer) {
	textplot.Table(w, "Section 4.1 validation: ground-truth campus /16",
		[]string{"Metric", "Value", "Paper"},
		[][]string{
			{"dynamic prefixes (truth)", fmt.Sprint(r.WantDynamic), "40"},
			{"true positives", fmt.Sprint(r.TruePositives), "40"},
			{"false positives", fmt.Sprint(r.FalsePositives), "0"},
			{"false negatives", fmt.Sprint(r.FalseNegatives), "0"},
			{"DHCP-but-static flagged", fmt.Sprint(r.StaticFlagged), "0 (83 prefixes correctly static)"},
		})
}

// helpers

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

func fmtDate(t time.Time) string {
	if t.IsZero() {
		return "(none)"
	}
	return t.Format(dataset.DateFormat)
}

func indent(s, prefix string) string {
	out := prefix
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += prefix
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
