package core

import (
	"fmt"
	"io"
	"sort"
	"time"

	"rdnsprivacy/internal/casestudy"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/textplot"
)

// This file holds the extension experiments beyond the paper's published
// tables and figures — the threats the paper sketches in Section 1 and
// Section 8 and leaves as future work:
//
//   - ext-geotrack: building-level geotemporal tracking of one device.
//   - ext-crossnet: linking a device (and so its owner) across networks.

// GeoTrackResult is the building-level tracking extension.
type GeoTrackResult struct {
	Network string
	Device  string
	// Itinerary is the subject's movement schedule for one sample day.
	Itinerary []casestudy.Visit
	// Day is the sampled day.
	Day time.Time
	// Buildings is the number of distinct buildings visited over the
	// whole window.
	Buildings int
}

// ExtGeoTrack follows the roaming phone planted on Academic-A across
// buildings, using the numbering plan's subnet-to-building ground truth as
// the oracle (the paper used a-posteriori knowledge of its own campus the
// same way).
func (s *Study) ExtGeoTrack() GeoTrackResult {
	res := s.Supplemental()
	n, _ := s.Universe.NetworkByName("Academic-A")
	visits := casestudy.GeoTrack(res, "Academic-A", "brians-galaxy-s10",
		func(ip dnswire.IPv4) (string, bool) { return n.BuildingFor(ip) })

	out := GeoTrackResult{Network: "Academic-A", Device: "brians-galaxy-s10"}
	distinct := map[string]bool{}
	for _, v := range visits {
		distinct[v.Building] = true
	}
	out.Buildings = len(distinct)
	// Sample the first full weekday of the window.
	day := s.Cfg.SupplementalStart
	for day.Weekday() == time.Saturday || day.Weekday() == time.Sunday {
		day = day.AddDate(0, 0, 1)
	}
	out.Day = day
	out.Itinerary = casestudy.DayItinerary(visits, day)
	return out
}

// Render writes the itinerary.
func (r GeoTrackResult) Render(w io.Writer) {
	rows := make([][]string, 0, len(r.Itinerary))
	for _, v := range r.Itinerary {
		rows = append(rows, []string{
			v.From.Format("15:04"), v.To.Format("15:04"), v.Building, v.IP.String(),
		})
	}
	textplot.Table(w, fmt.Sprintf(
		"Extension (Section 8): geotracking %s on %s, %s",
		r.Device, r.Network, r.Day.Format("2006-01-02 Mon")),
		[]string{"From", "To", "Building", "Address"}, rows)
	fmt.Fprintf(w, "  distinct buildings over the window: %d\n", r.Buildings)
	fmt.Fprintf(w, "  (every row derives from PTR records alone plus subnet-to-building\n"+
		"   knowledge — the paper's \"track a Brian around campus as he goes\n"+
		"   from lecture to lecture\")\n\n")
}

// CrossNetResult is the cross-network linkage extension.
type CrossNetResult struct {
	GivenName string
	// Linked maps device hostnames to their per-network appearances.
	Linked map[string][]casestudy.NetworkAppearance
}

// ExtCrossNet looks for Brian devices visible in more than one measured
// network — the campus-by-day, home-ISP-by-night linkage of Section 1.
func (s *Study) ExtCrossNet() CrossNetResult {
	return CrossNetResult{
		GivenName: "brian",
		Linked:    casestudy.CrossNetworkTrack(s.Supplemental(), "brian"),
	}
}

// Render writes the linkage table.
func (r CrossNetResult) Render(w io.Writer) {
	devices := make([]string, 0, len(r.Linked))
	for d := range r.Linked {
		devices = append(devices, d)
	}
	sort.Strings(devices)
	var rows [][]string
	for _, d := range devices {
		for _, a := range r.Linked[d] {
			rows = append(rows, []string{
				d, a.Network, fmt.Sprint(a.Sessions),
				a.FirstSeen.Format("01-02 15:04"), a.LastSeen.Format("01-02 15:04"),
			})
		}
	}
	textplot.Table(w, fmt.Sprintf(
		"Extension (Section 1): '%s' devices linked across networks", r.GivenName),
		[]string{"Device", "Network", "Sessions", "First seen", "Last seen"}, rows)
	if len(devices) > 0 {
		fmt.Fprintf(w, "  the same hostname in two reverse zones ties the networks together:\n"+
			"   an academic network by day and a residential ISP line by night links\n"+
			"   a campus user to a home address.\n\n")
	} else {
		fmt.Fprintf(w, "  (no cross-network devices in this window)\n\n")
	}
}
