package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rdnsprivacy/internal/casestudy"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/privleak"
)

// tinyConfig builds a study small enough for unit tests: few networks,
// short windows. The supplemental window still spans Thanksgiving and
// Cyber Monday 2021 so Figure 8 has its signal.
func tinyConfig() Config {
	return Config{
		Seed: 11,
		Universe: netsim.UniverseConfig{
			FillerSlash24s:        600,
			LeakyNetworks:         12,
			NonLeakyDynamic:       3,
			PeoplePerDynamicBlock: 16,
		},
		// Tiny-scale thresholds: populations are ~3.5x below the
		// default scale, so the unique-name floor shrinks with them.
		LeakThresholds: privleak.Config{MinUniqueNames: 8, MinRatio: 0.02},
		// Longitudinal windows keep the paper's dates (they must span
		// the COVID-19 signal); the dynamicity and supplemental
		// windows shrink to keep the test fast.
		DynamicityStart:   date(2020, time.September, 7),
		DynamicityEnd:     date(2020, time.October, 19),
		SupplementalStart: date(2021, time.November, 15),
		SupplementalEnd:   date(2021, time.December, 2),
	}
}

var sharedStudy *Study

// study returns a shared tiny study so expensive pipelines are computed
// once across tests.
func study(t *testing.T) *Study {
	t.Helper()
	if sharedStudy == nil {
		s, err := NewStudy(tinyConfig())
		if err != nil {
			t.Fatal(err)
		}
		sharedStudy = s
	}
	return sharedStudy
}

func TestDynamicityPipeline(t *testing.T) {
	s := study(t)
	dyn := s.Dynamicity()
	if dyn.TotalPrefixes == 0 {
		t.Fatal("no prefixes seen")
	}
	if len(dyn.DynamicPrefixes) == 0 {
		t.Fatal("no dynamic prefixes found")
	}
	// Dynamic prefixes are a small fraction of the universe (the paper
	// finds 2.2%; filler dominates the denominator).
	frac := float64(len(dyn.DynamicPrefixes)) / float64(dyn.TotalPrefixes)
	if frac > 0.25 {
		t.Fatalf("dynamic fraction = %.2f; filler missing from denominator?", frac)
	}
}

func TestPrivLeakIdentifiesNetworks(t *testing.T) {
	s := study(t)
	leak := s.PrivLeak()
	if len(leak.Identified) == 0 {
		t.Fatal("no identified networks")
	}
	found := map[string]bool{}
	for _, rep := range leak.Identified {
		found[rep.Suffix] = true
	}
	if !found["campus-a.edu"] {
		t.Errorf("campus-a.edu not identified; got %v", found)
	}
}

func TestSupplementalProducesGroups(t *testing.T) {
	s := study(t)
	res := s.Supplemental()
	f := res.Funnel()
	if f.All == 0 || f.Reverted == 0 || f.Reliable == 0 {
		t.Fatalf("funnel = %+v", f)
	}
	if f.Successful > f.All || f.Reverted > f.Successful || f.Reliable > f.Reverted {
		t.Fatalf("funnel not monotone: %+v", f)
	}
}

func TestFigure7bNineOfTen(t *testing.T) {
	s := study(t)
	r := s.Figure7b()
	if len(r.CDFs) == 0 {
		t.Fatal("no CDFs")
	}
	// The paper's headline: ~9 of 10 records revert within an hour. At
	// tiny scale allow a broad band around it.
	if r.Within60Overall < 0.6 {
		t.Fatalf("within-60m fraction = %.2f, want >= 0.6", r.Within60Overall)
	}
	// ICMP-blocked networks must have no curve.
	for _, blocked := range []string{"Academic-B", "Enterprise-B", "Enterprise-C"} {
		if _, ok := r.CDFs[blocked]; ok {
			t.Errorf("CDF exists for ICMP-blocking network %s", blocked)
		}
	}
}

func TestFigure8BrianTracks(t *testing.T) {
	s := study(t)
	r := s.Figure8()
	if len(r.Tracks) < 3 {
		names := []string{}
		for _, tr := range r.Tracks {
			names = append(names, tr.Device)
		}
		t.Fatalf("tracks = %v, want the planted Brian devices", names)
	}
	if r.Note9FirstSeen.IsZero() {
		t.Fatal("galaxy-note9 never seen")
	}
	cyberMonday := date(2021, time.November, 29)
	if r.Note9FirstSeen.Before(cyberMonday) {
		t.Fatalf("note9 first seen %v, before Cyber Monday", r.Note9FirstSeen)
	}
}

func TestFigure11QuietHourIsEarlyMorning(t *testing.T) {
	s := study(t)
	// The tiny study's supplemental window starts Nov 15; profile its
	// first full week rather than the default (Nov 1) week.
	from := date(2021, time.November, 15)
	rep := casestudy.Heist(s.Supplemental(), "Academic-A", from, from.AddDate(0, 0, 7))
	if len(rep.Hours) == 0 {
		t.Fatal("no hourly data for Academic-A")
	}
	// The quietest hour falls in the night / early morning (paper: ~6AM)
	// and the busiest during the day.
	if rep.QuietestHourOfDay > 8 {
		t.Fatalf("quietest hour = %02d:00, want night/early morning", rep.QuietestHourOfDay)
	}
	if rep.BusiestHourOfDay < 8 || rep.BusiestHourOfDay > 23 {
		t.Fatalf("busiest hour = %02d:00, want daytime/evening", rep.BusiestHourOfDay)
	}
}

func TestTable4Observability(t *testing.T) {
	s := study(t)
	r := s.Table4()
	if len(r.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(r.Rows))
	}
	byName := map[string]Table4Row{}
	for _, row := range r.Rows {
		byName[row.Network] = row
	}
	if byName["Academic-A"].Observed == 0 {
		t.Fatal("Academic-A observed nothing")
	}
	for _, blocked := range []string{"Enterprise-B", "Enterprise-C"} {
		if byName[blocked].Observed != 0 {
			t.Fatalf("%s observed %d addresses despite blocking ICMP",
				blocked, byName[blocked].Observed)
		}
	}
	// ISPs respond but sparsely compared to the campus.
	if byName["ISP-B"].ObservedPct >= byName["Academic-A"].ObservedPct {
		t.Fatalf("ISP-B (%.1f%%) not sparser than Academic-A (%.1f%%)",
			byName["ISP-B"].ObservedPct, byName["Academic-A"].ObservedPct)
	}
}

func TestFigure9LockdownDrop(t *testing.T) {
	s := study(t)
	r := s.Figure9()
	if len(r.Reports) != 5 {
		t.Fatalf("reports = %d", len(r.Reports))
	}
	for _, rep := range r.Reports {
		if rep.Network != "Academic-A" && rep.Network != "Academic-B" && rep.Network != "Academic-C" {
			continue
		}
		if !(rep.LockdownMean < rep.PrePandemicMean) {
			t.Errorf("%s: lockdown mean %.1f not below pre-pandemic %.1f",
				rep.Network, rep.LockdownMean, rep.PrePandemicMean)
		}
	}
}

func TestFigure10Crossover(t *testing.T) {
	s := study(t)
	r := s.Figure10()
	if r.Daily.Crossover.IsZero() {
		t.Fatal("no education/housing crossover detected")
	}
	// The crossover must land in March/April 2020 (the lockdown).
	if r.Daily.Crossover.Before(date(2020, time.March, 1)) ||
		r.Daily.Crossover.After(date(2020, time.April, 30)) {
		t.Fatalf("crossover at %v, want March/April 2020", r.Daily.Crossover)
	}
}

func TestValidationExperiment(t *testing.T) {
	s := study(t)
	v, err := s.Validation()
	if err != nil {
		t.Fatal(err)
	}
	if v.TruePositives != 40 || v.FalseNegatives != 0 || v.StaticFlagged != 0 {
		t.Fatalf("validation = %+v", v)
	}
}

func TestRunAllRenders(t *testing.T) {
	s := study(t)
	var buf bytes.Buffer
	if err := s.RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Figure 1", "Figure 2", "Figure 3", "Figure 4",
		"Table 2", "Table 3", "Table 4", "Table 5", "Figure 6",
		"Figure 7a", "Figure 7b", "Figure 8", "Figure 9", "Figure 10",
		"Figure 11", "validation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}

func TestExtGeoTrackFollowsRoamingPhone(t *testing.T) {
	s := study(t)
	r := s.ExtGeoTrack()
	if r.Buildings < 3 {
		t.Fatalf("buildings = %d, want the roaming phone in >= 3 buildings", r.Buildings)
	}
	if len(r.Itinerary) < 3 {
		t.Fatalf("itinerary = %+v", r.Itinerary)
	}
	// The script starts the day in the library and ends in the dorm.
	if r.Itinerary[0].Building != "library" {
		t.Fatalf("first stop = %s, want library", r.Itinerary[0].Building)
	}
	last := r.Itinerary[len(r.Itinerary)-1]
	if last.Building != "dorm-west" {
		t.Fatalf("last stop = %s, want dorm-west", last.Building)
	}
}

func TestExtCrossNetLinksMBP(t *testing.T) {
	s := study(t)
	r := s.ExtCrossNet()
	apps, ok := r.Linked["brians-mbp"]
	if !ok {
		t.Fatalf("brians-mbp not linked; linked set: %v", keysOf(r.Linked))
	}
	nets := map[string]bool{}
	for _, a := range apps {
		nets[a.Network] = true
	}
	if !nets["Academic-A"] || !nets["ISP-A"] {
		t.Fatalf("linked networks = %v, want Academic-A and ISP-A", nets)
	}
}

func keysOf(m map[string][]casestudy.NetworkAppearance) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestRunExperimentUnknown(t *testing.T) {
	s := study(t)
	if _, err := s.RunExperiment("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
