package replica

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/rdnsserve"
)

// benchPrimary builds one seeded primary (a sealed segment plus a live
// tail) shared across benchmark iterations.
func benchPrimary(b *testing.B, days, blocks int) (*histstore.Store, *rdnsserve.Server) {
	b.Helper()
	dir := b.TempDir()
	st, err := histstore.Open(filepath.Join(dir, "primary"),
		histstore.WithCache(1024), histstore.WithBaseInterval(4))
	if err != nil {
		b.Fatal(err)
	}
	appendDays(b, st, 0, days*2/3, blocks)
	if _, err := st.Compact(context.Background(), histstore.CompactOptions{}); err != nil {
		b.Fatal(err)
	}
	appendDays(b, st, days*2/3, days-days*2/3, blocks)
	srv := rdnsserve.New(st, rdnsserve.Config{Seed: 1})
	b.Cleanup(func() { srv.Close() })
	return st, srv
}

// BenchmarkReplicaCatchup measures a cold replica pulling a full corpus
// (segment plus tail) through the feed, verifying every byte, and
// committing — the cost of bringing a new read replica online.
func BenchmarkReplicaCatchup(b *testing.B) {
	_, srv := benchPrimary(b, 30, 4)
	client := feedClient(inprocTransport{srv.Handler()})
	scratch := b.TempDir()

	var bytesFetched int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := filepath.Join(scratch, fmt.Sprintf("replica-%d", i))
		y, err := New(Config{Source: "http://primary.inproc", Dir: dir, Client: client, Chunk: 1 << 18})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := y.Sync(context.Background()); err != nil {
			b.Fatal(err)
		}
		bytesFetched = y.Status().BytesFetched
		b.StopTimer()
		os.RemoveAll(dir)
		b.StartTimer()
	}
	b.ReportMetric(float64(bytesFetched), "feed-B/op")
}

// BenchmarkReplicaQuery is the replica-side twin of rdnsserve's
// BenchmarkRdnsdQuery: the same endpoints served off a snapshot-shipped
// read-only store instead of the writer's own, so a regression in the
// replica read path (read-only open, synced segments, no cache warmup
// from appends) shows up against its own baseline.
func BenchmarkReplicaQuery(b *testing.B) {
	_, srv := benchPrimary(b, 30, 4)
	y, err := New(Config{Source: "http://primary.inproc", Dir: filepath.Join(b.TempDir(), "replica"),
		Client: feedClient(inprocTransport{srv.Handler()}), Chunk: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := y.Sync(context.Background()); err != nil {
		b.Fatal(err)
	}
	st, err := y.Open(histstore.WithCache(1024))
	if err != nil {
		b.Fatal(err)
	}
	repSrv := rdnsserve.New(st, rdnsserve.Config{Seed: 2})
	defer repSrv.Close()
	repSrv.SetReplicaStatus(y.Status)
	h := repSrv.Handler()

	b.Run("at", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			day := (i * 7) % 30
			req := httptest.NewRequest("GET",
				fmt.Sprintf("/v1/at?ip=10.0.1.200&t=%s", campaignStart.AddDate(0, 0, day).Format("2006-01-02")), nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("status %d: %s", rec.Code, rec.Body)
			}
		}
	})

	b.Run("churn", func(b *testing.B) {
		req := httptest.NewRequest("GET", "/v1/churn?prefix=10.0.1.0/24", nil)
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("status %d: %s", rec.Code, rec.Body)
			}
		}
	})
}
