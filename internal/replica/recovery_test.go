package replica

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/rdnsclient"
	"rdnsprivacy/internal/rdnsserve"
	"rdnsprivacy/internal/testutil"
)

// recoveryFixture: a synced replica directory plus a fresh-Syncer
// factory modeling a process restart (no in-memory verified-file state).
func recoveryFixture(t *testing.T) (primary *histstore.Store, dir string, fresh func() *Syncer) {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	root := t.TempDir()
	primary = seedPrimary(t, filepath.Join(root, "primary"), 9, 2)
	if _, err := primary.Compact(context.Background(), histstore.CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	appendDays(t, primary, 9, 3, 2)
	srv := rdnsserve.New(primary, rdnsserve.Config{Seed: 1})
	t.Cleanup(func() { srv.Close() })
	dir = filepath.Join(root, "replica")
	fresh = func() *Syncer {
		y, err := New(Config{Source: "http://primary.inproc", Dir: dir,
			Client: feedClient(inprocTransport{srv.Handler()}), Chunk: 512})
		if err != nil {
			t.Fatal(err)
		}
		return y
	}
	mustSync(t, fresh())
	return primary, dir, fresh
}

// corruptLocal flips one byte in a replica-local file.
func corruptLocal(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x10
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func localFeedFiles(t *testing.T, y *Syncer) (segment, tail string) {
	t.Helper()
	m, err := y.c.ReplManifest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	w := m.Writers[0]
	return filepath.Join(y.dir, w.Segments[0].File), filepath.Join(y.dir, w.TailFile)
}

// TestRecoveryDamagedSegment: a restarted replica whose local segment
// rotted on disk (right size, wrong bytes) detects the damage against
// the content address and refetches — converging instead of serving
// garbage or failing forever.
func TestRecoveryDamagedSegment(t *testing.T) {
	primary, _, fresh := recoveryFixture(t)
	y := fresh()
	seg, _ := localFeedFiles(t, y)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	corruptLocal(t, seg, fi.Size()/2)

	mustSync(t, y)
	rep := openReplica(t, y)
	defer rep.Close()
	compareStores(t, primary, rep, 2)
	if st := y.Status(); st.SegmentsFetched == 0 {
		t.Fatalf("damaged segment was not refetched: %+v", st)
	}
}

// TestRecoveryTruncatedSegment: a local segment shorter than the
// manifest (torn by a crashed disk) is likewise refetched whole.
func TestRecoveryTruncatedSegment(t *testing.T) {
	primary, _, fresh := recoveryFixture(t)
	y := fresh()
	seg, _ := localFeedFiles(t, y)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	mustSync(t, y)
	rep := openReplica(t, y)
	defer rep.Close()
	compareStores(t, primary, rep, 2)
}

// TestRecoveryCorruptTailAtRest: a restarted replica that is caught up
// byte-wise re-proves its local tail before trusting it; rot is dropped
// and repulled on the next sync.
func TestRecoveryCorruptTailAtRest(t *testing.T) {
	primary, _, fresh := recoveryFixture(t)
	y := fresh()
	_, tail := localFeedFiles(t, y)
	fi, err := os.Stat(tail)
	if err != nil {
		t.Fatal(err)
	}
	corruptLocal(t, tail, fi.Size()-3)

	if _, err := y.Sync(context.Background()); err == nil {
		t.Fatal("corrupt local tail synced silently")
	}
	if _, err := os.Stat(tail); !os.IsNotExist(err) {
		t.Fatal("corrupt tail not dropped for repull")
	}
	mustSync(t, y)
	rep := openReplica(t, y)
	defer rep.Close()
	compareStores(t, primary, rep, 2)
}

// TestRecoveryOversizedPart: a stale .part stage larger than the
// manifest's segment (a superseded fetch) is discarded, not resumed
// past the end.
func TestRecoveryOversizedPart(t *testing.T) {
	primary, dir, fresh := recoveryFixture(t)
	y := fresh()
	seg, _ := localFeedFiles(t, y)
	if err := os.Remove(seg); err != nil {
		t.Fatal(err)
	}
	junk := make([]byte, 1<<20)
	part := seg + ".part"
	if err := os.WriteFile(part, junk, 0o644); err != nil {
		t.Fatal(err)
	}
	mustSync(t, y)
	rep := openReplica(t, y)
	defer rep.Close()
	compareStores(t, primary, rep, 2)
	if _, err := os.Stat(part); !os.IsNotExist(err) {
		t.Fatalf("stale .part survived in %s", dir)
	}
}

// TestRecoveryLocalTailAhead: a local tail longer than the manifest's
// committed size means the replica is tracking a store the primary has
// since rebuilt — an errChanged-class condition that must surface
// loudly rather than commit a manifest pointing inside the local file.
func TestRecoveryLocalTailAhead(t *testing.T) {
	_, _, fresh := recoveryFixture(t)
	y := fresh()
	_, tail := localFeedFiles(t, y)
	f, err := os.OpenFile(tail, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := y.Sync(context.Background()); err == nil {
		t.Fatal("over-long local tail synced silently")
	} else if st := y.Status(); st.SyncErrors == 0 {
		t.Fatalf("sync error not accounted: %+v", st)
	}
}

// TestSyncFeedMisbehavior: a feed that errors mid-pull, over-serves a
// window, or advertises a wrong content address is a loud sync error —
// the previous committed generation stays intact and serving.
func TestSyncFeedMisbehavior(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	root := t.TempDir()
	primary := seedPrimary(t, filepath.Join(root, "primary"), 9, 2)
	if _, err := primary.Compact(context.Background(), histstore.CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	appendDays(t, primary, 9, 2, 2)
	srv := rdnsserve.New(primary, rdnsserve.Config{Seed: 1})
	defer srv.Close()
	real := inprocTransport{srv.Handler()}

	isSegment := func(req *http.Request) bool {
		return len(req.URL.Path) > len("/v1/repl/segment/") && req.URL.Path[:len("/v1/repl/segment/")] == "/v1/repl/segment/"
	}
	cases := []struct {
		name string
		rt   roundTripFunc
	}{
		{"segment fetch errors", func(req *http.Request) (*http.Response, error) {
			if isSegment(req) {
				return nil, errors.New("connection reset by peer")
			}
			return real.RoundTrip(req)
		}},
		{"segment over-served", func(req *http.Request) (*http.Response, error) {
			resp, err := real.RoundTrip(req)
			if err == nil && resp.StatusCode == 200 && isSegment(req) {
				body := readAll(t, resp)
				resp.Body = newBody(append(body, make([]byte, 64)...))
			}
			return resp, err
		}},
		{"manifest lies about crc", func(req *http.Request) (*http.Response, error) {
			resp, err := real.RoundTrip(req)
			if err == nil && req.URL.Path == "/v1/repl/manifest" {
				var fm rdnsclient.ReplManifest
				if jerr := json.Unmarshal(readAll(t, resp), &fm); jerr != nil {
					t.Fatal(jerr)
				}
				fm.Writers[0].Segments[0].CRC ^= 0xffffffff
				mangled, _ := json.Marshal(fm)
				resp.Body = newBody(mangled)
			}
			return resp, err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			y, err := New(Config{Source: "http://primary.inproc", Dir: filepath.Join(t.TempDir(), "rep"),
				Client: feedClient(tc.rt), Chunk: 512})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := y.Sync(context.Background()); err == nil {
				t.Fatal("misbehaving feed synced silently")
			}
			if y.Synced() {
				t.Fatal("failed sync marked the replica synced")
			}
			if _, err := y.Open(); err == nil {
				t.Fatal("nothing was committed, yet the directory opens")
			}
		})
	}
}

// TestCleanupSupersededTail: after the primary compacts its tail away,
// the replica's next sync removes the superseded local tail file.
func TestCleanupSupersededTail(t *testing.T) {
	primary, _, fresh := recoveryFixture(t)
	y := fresh()
	_, oldTail := localFeedFiles(t, y)

	if _, err := primary.Compact(context.Background(), histstore.CompactOptions{MinSeal: 1}); err != nil {
		t.Fatal(err)
	}
	appendDays(t, primary, 12, 1, 2)
	mustSync(t, y)
	if _, err := os.Stat(oldTail); !os.IsNotExist(err) {
		t.Fatalf("superseded tail %s survived cleanup", oldTail)
	}
	rep := openReplica(t, y)
	defer rep.Close()
	compareStores(t, primary, rep, 2)
}
