package replica

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/rdnsclient"
	"rdnsprivacy/internal/rdnsserve"
	"rdnsprivacy/internal/testutil"
)

// replicaStack is one in-process replica daemon: a syncer, a serving
// Server whose Reopen reopens the synced directory, and the catch-up
// loop cmd/rdnsd runs (sync, then reload when the generation advanced —
// strictly sequential, so a reload never reads a tail mid-append).
type replicaStack struct {
	dir string
	srv *rdnsserve.Server
	y   *Syncer
}

func newReplicaStack(tb testing.TB, dir string, client *rdnsclient.Client) *replicaStack {
	tb.Helper()
	y, err := New(Config{Source: "http://primary.inproc", Dir: dir, Client: client, Chunk: 2048})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := y.Sync(context.Background()); err != nil {
		tb.Fatalf("initial sync: %v", err)
	}
	st, err := y.Open(histstore.WithCache(128))
	if err != nil {
		tb.Fatalf("open replica: %v", err)
	}
	srv := rdnsserve.New(st, rdnsserve.Config{
		Seed:   7,
		Reopen: func() (*histstore.Store, error) { return y.Open(histstore.WithCache(128)) },
	})
	srv.SetReplicaStatus(y.Status)
	return &replicaStack{dir: dir, srv: srv, y: y}
}

// catchUp runs one sync-and-swap step, reporting a hard (non-transient)
// error. A compaction race mid-pull is transient: Sync already retried
// it and the next tick will converge.
func (rs *replicaStack) catchUp(ctx context.Context) error {
	changed, err := rs.y.Sync(ctx)
	if err != nil {
		if errors.Is(err, errChanged) || rdnsChanged(err) || errors.Is(err, context.Canceled) {
			return nil
		}
		return err
	}
	if changed {
		if _, err := rs.srv.Reload(); err != nil {
			return err
		}
	}
	return nil
}

// queryWorker issues mixed queries against a server's handler until
// stop closes, failing the run on any response error. 404s on the
// at endpoint are impossible here: every probed address and day comes
// from the server's own /v1/days and the seeded layout.
func queryWorker(stop <-chan struct{}, h http.Handler, seed int64, fail func(error)) {
	c := rdnsclient.New("http://rdnsd.inproc",
		rdnsclient.WithHTTPClient(&http.Client{Transport: inprocTransport{h}}),
		rdnsclient.WithAPIKey(fmt.Sprintf("soak-%d", seed)))
	ctx := context.Background()
	state := uint64(seed)*0x9e3779b97f4a7c15 + 1
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		return z ^ (z >> 27)
	}
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		default:
		}
		dr, err := c.Days(ctx)
		if err != nil {
			fail(fmt.Errorf("days: %w", err))
			return
		}
		if len(dr.Days) == 0 {
			fail(errors.New("served an empty history"))
			return
		}
		day := dr.Days[int(next()%uint64(len(dr.Days)))]
		ip := dnswire.IPv4{10, 0, byte(1 + next()%2), byte(10 + next()%4)}
		if _, err := c.At(ctx, ip.String(), day); err != nil {
			fail(fmt.Errorf("at %s@%v: %w", ip, day, err))
			return
		}
		if i%8 == 0 {
			p := dnswire.Prefix{Addr: dnswire.IPv4{10, 0, byte(1 + next()%2), 0}, Bits: 24}
			if _, err := c.Churn(ctx, p.String(), dr.Days[0], day); err != nil {
				fail(fmt.Errorf("churn %s: %w", p, err))
				return
			}
		}
		if i%16 == 0 {
			if _, err := c.Stats(ctx); err != nil {
				fail(fmt.Errorf("stats: %w", err))
				return
			}
		}
	}
}

// TestReplicaSoakRace is the -race soak the tentpole demands: a live
// appender and periodic compactions on the primary, a replica
// continuously catching up and hot-swapping generations, and query
// workers hammering both ends — with zero query errors and no leaked
// goroutines.
func TestReplicaSoakRace(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const blocks = 2
	dir := t.TempDir()
	primary := seedPrimary(t, filepath.Join(dir, "primary"), 8, blocks)
	srv := rdnsserve.New(primary, rdnsserve.Config{Seed: 1})
	defer srv.Close()

	rs := newReplicaStack(t, filepath.Join(dir, "replica"), feedClient(inprocTransport{srv.Handler()}))
	defer rs.srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var firstErr atomic.Pointer[error]
	fail := func(err error) {
		firstErr.CompareAndSwap(nil, &err)
	}

	// Live appender: one day every 2ms.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for day := 8; ; day++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := primary.Append(campaignStart.AddDate(0, 0, day), dayRecords(day, blocks)); err != nil {
				fail(fmt.Errorf("append: %w", err))
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Live compactor: seal the tail whenever it holds a base interval.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(40 * time.Millisecond):
			}
			if _, err := primary.Compact(context.Background(), histstore.CompactOptions{}); err != nil &&
				!errors.Is(err, histstore.ErrCompactBusy) {
				fail(fmt.Errorf("compact: %w", err))
				return
			}
		}
	}()

	// Replica catch-up loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			if err := rs.catchUp(context.Background()); err != nil {
				fail(fmt.Errorf("catch-up: %w", err))
				return
			}
		}
	}()

	// Query workers on both ends.
	for w := 0; w < 2; w++ {
		wg.Add(2)
		go func(w int) { defer wg.Done(); queryWorker(stop, srv.Handler(), int64(w), fail) }(w)
		go func(w int) { defer wg.Done(); queryWorker(stop, rs.srv.Handler(), int64(16+w), fail) }(w)
	}

	time.Sleep(1200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if p := firstErr.Load(); p != nil {
		t.Fatalf("soak failed: %v", *p)
	}
	if rs.srv.Generation() == 0 {
		t.Fatal("replica never swapped a generation during the soak")
	}

	// Converge and prove bit-identical equality at the final generation.
	if _, err := rs.y.Sync(context.Background()); err != nil {
		t.Fatalf("final sync: %v", err)
	}
	rep := openReplica(t, rs.y)
	compareStores(t, primary, rep, blocks)
	rep.Close()
}

// TestReplicaChaosConvergence runs one primary and two replicas while a
// chaos schedule kills replica pulls mid-flight (canceled contexts, then
// a fresh Syncer — a restarted process) and the primary keeps appending
// and compacting. Queries against both replica servers must never error,
// and both replicas must converge to bit-identical state once the chaos
// stops. This is the library half of `make replicatest`; the script
// half drives real rdnsd processes over TCP.
func TestReplicaChaosConvergence(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const blocks = 2
	dir := t.TempDir()
	primary := seedPrimary(t, filepath.Join(dir, "primary"), 10, blocks)
	srv := rdnsserve.New(primary, rdnsserve.Config{Seed: 1})
	defer srv.Close()
	feed := func() *rdnsclient.Client { return feedClient(inprocTransport{srv.Handler()}) }

	stacks := []*replicaStack{
		newReplicaStack(t, filepath.Join(dir, "replica-a"), feed()),
		newReplicaStack(t, filepath.Join(dir, "replica-b"), feed()),
	}
	defer stacks[0].srv.Close()
	defer stacks[1].srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var firstErr atomic.Pointer[error]
	fail := func(err error) { firstErr.CompareAndSwap(nil, &err) }

	// Primary churn: appends with interleaved compactions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for day := 10; ; day++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := primary.Append(campaignStart.AddDate(0, 0, day), dayRecords(day, blocks)); err != nil {
				fail(fmt.Errorf("append: %w", err))
				return
			}
			if day%6 == 0 {
				if _, err := primary.Compact(context.Background(), histstore.CompactOptions{}); err != nil &&
					!errors.Is(err, histstore.ErrCompactBusy) {
					fail(fmt.Errorf("compact: %w", err))
					return
				}
			}
			time.Sleep(3 * time.Millisecond)
		}
	}()

	// Per-replica chaos loop: every third sync is "killed" mid-pull by an
	// already-expiring context, after which the syncer is replaced by a
	// fresh one on the same directory — a crashed-and-restarted process.
	for i, rs := range stacks {
		wg.Add(1)
		go func(i int, rs *replicaStack) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				case <-time.After(5 * time.Millisecond):
				}
				if n%3 == 2 {
					ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
					rs.y.Sync(ctx) // killed mid-pull: error expected and discarded
					cancel()
					y, err := New(Config{Source: "http://primary.inproc", Dir: rs.dir,
						Client: feedClient(inprocTransport{srv.Handler()}), Chunk: 2048})
					if err != nil {
						fail(fmt.Errorf("replica %d restart: %w", i, err))
						return
					}
					rs.y = y
					rs.srv.SetReplicaStatus(y.Status)
					continue
				}
				if err := rs.catchUp(context.Background()); err != nil {
					fail(fmt.Errorf("replica %d catch-up: %w", i, err))
					return
				}
			}
		}(i, rs)
	}

	// Queries on both replicas throughout the chaos: zero errors allowed.
	for i, rs := range stacks {
		wg.Add(1)
		go func(i int, h http.Handler) { defer wg.Done(); queryWorker(stop, h, int64(32+i), fail) }(i, rs.srv.Handler())
	}

	time.Sleep(1200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if p := firstErr.Load(); p != nil {
		t.Fatalf("chaos run failed: %v", *p)
	}

	// Chaos over: both replicas converge to the primary, bit-identically.
	for i, rs := range stacks {
		if _, err := rs.y.Sync(context.Background()); err != nil {
			t.Fatalf("replica %d final sync: %v", i, err)
		}
		rep := openReplica(t, rs.y)
		compareStores(t, primary, rep, blocks)
		rep.Close()
		if rs.srv.Generation() == 0 {
			t.Fatalf("replica %d never swapped a generation", i)
		}
	}
}
