package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/rdnsclient"
	"rdnsprivacy/internal/rdnsserve"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/testutil"
)

var campaignStart = time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)

// dayRecords synthesizes day's record set: per /24 block, four stable
// devices (brians-iphone among them) plus one address whose name churns
// deterministically with the day index.
func dayRecords(day, blocks int) scanengine.RecordSet {
	stable := []string{"brians-iphone", "alices-laptop", "printer", "camera"}
	recs := scanengine.RecordSet{}
	for b := 0; b < blocks; b++ {
		for d, name := range stable {
			ip := dnswire.IPv4{10, 0, byte(b + 1), byte(10 + d)}
			recs[ip] = dnswire.MustName(fmt.Sprintf("%s.b%d.lan.example.net", name, b))
		}
		churn := dnswire.IPv4{10, 0, byte(b + 1), 200}
		recs[churn] = dnswire.MustName(fmt.Sprintf("dhcp-%d.dyn.example.net", (day*31+b)%997))
	}
	return recs
}

func appendDays(tb testing.TB, st *histstore.Store, fromDay, n, blocks int) {
	tb.Helper()
	for d := fromDay; d < fromDay+n; d++ {
		if err := st.Append(campaignStart.AddDate(0, 0, d), dayRecords(d, blocks)); err != nil {
			tb.Fatalf("append day %d: %v", d, err)
		}
	}
}

// seedPrimary opens a fresh store at dir and appends days of synthetic
// history.
func seedPrimary(tb testing.TB, dir string, days, blocks int) *histstore.Store {
	tb.Helper()
	st, err := histstore.Open(dir, histstore.WithCache(256), histstore.WithBaseInterval(4))
	if err != nil {
		tb.Fatalf("open primary: %v", err)
	}
	appendDays(tb, st, 0, days, blocks)
	return st
}

// inprocTransport drives an http.Handler without sockets, the same
// pattern cmd/rdnsload uses: replication tests pull megabytes through
// the feed and must not depend on listener lifecycle.
type inprocTransport struct{ h http.Handler }

func (tr inprocTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	r2 := req.Clone(req.Context())
	r2.RemoteAddr = "127.0.0.1:0"
	if r2.Body == nil {
		r2.Body = http.NoBody
	}
	rec := httptest.NewRecorder()
	tr.h.ServeHTTP(rec, r2)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

func feedClient(rt http.RoundTripper) *rdnsclient.Client {
	return rdnsclient.New("http://primary.inproc",
		rdnsclient.WithHTTPClient(&http.Client{Transport: rt}))
}

// roundTripFunc adapts a function to http.RoundTripper for fault and
// chaos injection.
type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func blockPrefixes(blocks int) []dnswire.Prefix {
	var ps []dnswire.Prefix
	for b := 0; b < blocks; b++ {
		ps = append(ps, dnswire.Prefix{Addr: dnswire.IPv4{10, 0, byte(b + 1), 0}, Bits: 24})
	}
	return ps
}

// jsonEq compares two query results through their JSON encoding — the
// wire shape the v1 API serves, so "equal" here means bit-identical
// responses.
func jsonEq(tb testing.TB, what string, primary, replica any) {
	tb.Helper()
	jp, err := json.Marshal(primary)
	if err != nil {
		tb.Fatalf("%s: marshal primary: %v", what, err)
	}
	jr, err := json.Marshal(replica)
	if err != nil {
		tb.Fatalf("%s: marshal replica: %v", what, err)
	}
	if !bytes.Equal(jp, jr) {
		tb.Fatalf("%s diverges:\nprimary: %s\nreplica: %s", what, jp, jr)
	}
}

// compareStores proves every query API answers bit-identically on the
// primary and replica stores: snapshot times, point lookups (with writer
// attribution), full and paged range scans, churn summaries, and the
// name index.
func compareStores(tb testing.TB, p, r *histstore.Store, blocks int) {
	tb.Helper()
	pt, rt := p.Times(), r.Times()
	if len(pt) != len(rt) {
		tb.Fatalf("snapshot counts diverge: primary %d, replica %d", len(pt), len(rt))
	}
	for i := range pt {
		if !pt[i].Equal(rt[i]) {
			tb.Fatalf("snapshot %d diverges: primary %v, replica %v", i, pt[i], rt[i])
		}
	}
	if p.BaseInterval() != r.BaseInterval() {
		tb.Fatalf("base interval diverges: %d vs %d", p.BaseInterval(), r.BaseInterval())
	}
	if len(pt) == 0 {
		return
	}
	from, to := pt[0], pt[len(pt)-1]
	ctx := context.Background()
	for _, p24 := range blockPrefixes(blocks) {
		rowsP, errP := p.Range(p24, from, to)
		rowsR, errR := r.Range(p24, from, to)
		if errP != nil || errR != nil {
			tb.Fatalf("range %s: primary err %v, replica err %v", p24, errP, errR)
		}
		jsonEq(tb, fmt.Sprintf("range %s", p24), rowsP, rowsR)

		churnP, errP := p.Churn(p24, from, to)
		churnR, errR := r.Churn(p24, from, to)
		if errP != nil || errR != nil {
			tb.Fatalf("churn %s: primary err %v, replica err %v", p24, errP, errR)
		}
		jsonEq(tb, fmt.Sprintf("churn %s", p24), churnP, churnR)

		// Paged walk with a tiny limit: cursors and page boundaries must
		// agree, or a paginating client would see a different history
		// depending on which end of the fleet answered.
		var curP, curR histstore.RangeCursor
		for page := 0; ; page++ {
			rowsP, nextP, moreP, errP := p.RangePage(ctx, p24, from, to, curP, 3)
			rowsR, nextR, moreR, errR := r.RangePage(ctx, p24, from, to, curR, 3)
			if errP != nil || errR != nil {
				tb.Fatalf("range page %d %s: primary err %v, replica err %v", page, p24, errP, errR)
			}
			jsonEq(tb, fmt.Sprintf("range page %d %s", page, p24), rowsP, rowsR)
			if moreP != moreR {
				tb.Fatalf("range page %d %s: more diverges: %v vs %v", page, p24, moreP, moreR)
			}
			if !moreP {
				break
			}
			curP, curR = nextP, nextR
		}
	}
	for _, tm := range pt {
		for _, p24 := range blockPrefixes(blocks) {
			for _, last := range []byte{10, 12, 200, 250} { // stable, stable, churn, absent
				ip := dnswire.IPv4{p24.Addr[0], p24.Addr[1], p24.Addr[2], last}
				nameP, writerP, okP, errP := p.AtWriter(ip, tm)
				nameR, writerR, okR, errR := r.AtWriter(ip, tm)
				if errP != nil || errR != nil {
					tb.Fatalf("at %s@%v: primary err %v, replica err %v", ip, tm, errP, errR)
				}
				if okP != okR || writerP != writerR || nameP.String() != nameR.String() {
					tb.Fatalf("at %s@%v diverges: primary (%s,%s,%v), replica (%s,%s,%v)",
						ip, tm, nameP, writerP, okP, nameR, writerR, okR)
				}
			}
		}
	}
	for _, tok := range []string{"brian", "printer", "dhcp", "nosuchtoken"} {
		jsonEq(tb, fmt.Sprintf("findname %q", tok), p.FindName(tok), r.FindName(tok))
	}
}

func openReplica(tb testing.TB, y *Syncer) *histstore.Store {
	tb.Helper()
	st, err := y.Open(histstore.WithCache(256))
	if err != nil {
		tb.Fatalf("open replica: %v", err)
	}
	return st
}

func mustSync(tb testing.TB, y *Syncer) bool {
	tb.Helper()
	changed, err := y.Sync(context.Background())
	if err != nil {
		tb.Fatalf("sync: %v", err)
	}
	return changed
}

// TestReplicaBitIdentical is the seeded consistency property: a replica
// synced to the primary's generation answers every query API
// bit-identically — before compaction, after compaction reshapes the
// file set, and after further appends.
func TestReplicaBitIdentical(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const blocks = 3
	dir := t.TempDir()
	primary := seedPrimary(t, filepath.Join(dir, "primary"), 11, blocks)
	srv := rdnsserve.New(primary, rdnsserve.Config{Seed: 1})
	defer srv.Close()

	y, err := New(Config{
		Source: "http://primary.inproc",
		Dir:    filepath.Join(dir, "replica"),
		Client: feedClient(inprocTransport{srv.Handler()}),
		Chunk:  512, // small: every file takes several resumable range fetches
	})
	if err != nil {
		t.Fatal(err)
	}
	if y.Synced() {
		t.Fatal("Synced true before any sync")
	}
	if !mustSync(t, y) {
		t.Fatal("first sync reported no change")
	}
	if !y.Synced() {
		t.Fatal("Synced false after a committed sync")
	}
	rep := openReplica(t, y)
	compareStores(t, primary, rep, blocks)
	rep.Close()

	// A caught-up sync changes nothing.
	if mustSync(t, y) {
		t.Fatal("caught-up sync reported a change")
	}

	// Compaction reshapes the primary's file set (tail sealed into a
	// segment, fresh tail); appends grow the new tail. The replica must
	// follow both and stay bit-identical.
	if _, err := primary.Compact(context.Background(), histstore.CompactOptions{}); err != nil {
		t.Fatalf("compact: %v", err)
	}
	appendDays(t, primary, 11, 5, blocks)
	if !mustSync(t, y) {
		t.Fatal("post-compaction sync reported no change")
	}
	rep = openReplica(t, y)
	compareStores(t, primary, rep, blocks)
	rep.Close()

	st := y.Status()
	if st == nil || st.Syncs != 3 || st.SyncErrors != 0 || st.BytesBehind != 0 {
		t.Fatalf("status after three clean syncs: %+v", st)
	}
	if st.SegmentsFetched == 0 || st.BytesFetched == 0 {
		t.Fatalf("status counted no fetch work: %+v", st)
	}
}

// TestReplicaBitIdenticalMidCompaction parks the primary's compaction at
// the sealed pause point (segment staged, manifest not yet swapped) and
// proves a replica synced at that instant sees one consistent committed
// generation — the pre-splice one — bit-identically.
func TestReplicaBitIdenticalMidCompaction(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const blocks = 2
	dir := t.TempDir()
	primary := seedPrimary(t, filepath.Join(dir, "primary"), 9, blocks)
	srv := rdnsserve.New(primary, rdnsserve.Config{Seed: 1})
	defer srv.Close()

	hold := make(chan struct{})
	parked := make(chan struct{})
	testutil.SetFaultHook(func(point string) error {
		if point == "histstore.compact.sealed" {
			close(parked)
			<-hold
		}
		return nil
	})
	defer testutil.SetFaultHook(nil)

	compactDone := make(chan error, 1)
	go func() {
		_, err := primary.Compact(context.Background(), histstore.CompactOptions{})
		compactDone <- err
	}()
	<-parked

	y, err := New(Config{
		Source: "http://primary.inproc",
		Dir:    filepath.Join(dir, "replica"),
		Client: feedClient(inprocTransport{srv.Handler()}),
		Chunk:  256,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustSync(t, y)
	rep := openReplica(t, y)
	compareStores(t, primary, rep, blocks)
	rep.Close()

	close(hold)
	if err := <-compactDone; err != nil {
		t.Fatalf("compact: %v", err)
	}

	// After the splice commits, the next sync follows the swapped layout.
	mustSync(t, y)
	rep = openReplica(t, y)
	compareStores(t, primary, rep, blocks)
	rep.Close()
}

// TestReplicaTailSwapMidSync races a compaction between the manifest
// fetch and the tail pull: the feed answers 409 repl_changed for the
// pinned (now superseded) tail, and Sync must absorb it by refetching
// the manifest — one Sync call, no surfaced error, bit-identical result.
func TestReplicaTailSwapMidSync(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const blocks = 2
	dir := t.TempDir()
	primary := seedPrimary(t, filepath.Join(dir, "primary"), 10, blocks)
	srv := rdnsserve.New(primary, rdnsserve.Config{Seed: 1})
	defer srv.Close()

	inner := inprocTransport{srv.Handler()}
	var compactOnce sync.Once
	var saw409 atomic.Int64
	rt := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		if req.URL.Path == "/v1/repl/tail/"+primary.WriterID() {
			// First tail pull of the run: seal the tail underneath it.
			compactOnce.Do(func() {
				if _, err := primary.Compact(req.Context(), histstore.CompactOptions{}); err != nil {
					t.Errorf("compact: %v", err)
				}
			})
		}
		resp, err := inner.RoundTrip(req)
		if err == nil && resp.StatusCode == http.StatusConflict {
			saw409.Add(1)
		}
		return resp, err
	})

	y, err := New(Config{
		Source: "http://primary.inproc",
		Dir:    filepath.Join(dir, "replica"),
		Client: feedClient(rt),
		Chunk:  256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !mustSync(t, y) {
		t.Fatal("sync reported no change")
	}
	if saw409.Load() == 0 {
		t.Fatal("the tail swap never produced a 409 repl_changed — the race was not exercised")
	}
	if st := y.Status(); st.SyncErrors != 0 {
		t.Fatalf("the absorbed retry was counted as a sync error: %+v", st)
	}
	rep := openReplica(t, y)
	compareStores(t, primary, rep, blocks)
	rep.Close()
}

// TestReplicaCrashRestartMidPull kills a replica's pull mid-transfer
// (transport dies after a few requests) and proves the directory still
// opens to a consistent generation — a prefix of the primary's history —
// and that a fresh Syncer (a restarted process: no in-memory state)
// recovers to full bit-identical consistency by resuming from local
// bytes.
func TestReplicaCrashRestartMidPull(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const blocks = 2
	dir := t.TempDir()
	primary := seedPrimary(t, filepath.Join(dir, "primary"), 9, blocks)
	if _, err := primary.Compact(context.Background(), histstore.CompactOptions{}); err != nil {
		t.Fatalf("compact: %v", err)
	}
	appendDays(t, primary, 9, 2, blocks)
	srv := rdnsserve.New(primary, rdnsserve.Config{Seed: 1})
	defer srv.Close()
	inner := inprocTransport{srv.Handler()}
	repDir := filepath.Join(dir, "replica")

	// Generation 1: a clean full sync.
	y1, err := New(Config{Dir: repDir, Client: feedClient(inner), Chunk: 512})
	if err != nil {
		t.Fatal(err)
	}
	mustSync(t, y1)
	gen1Snaps := 11

	// The primary grows; a replica process starts pulling the delta and
	// dies mid-pull.
	appendDays(t, primary, 11, 4, blocks)
	var budget atomic.Int64
	budget.Store(2) // manifest + one 128-byte tail chunk, then the "crash"
	dying := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		if budget.Add(-1) < 0 {
			return nil, fmt.Errorf("injected crash: transport down")
		}
		return inner.RoundTrip(req)
	})
	y2, err := New(Config{Dir: repDir, Client: feedClient(dying), Chunk: 128})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := y2.Sync(context.Background()); err == nil {
		t.Fatal("sync survived the injected crash")
	}
	if st := y2.Status(); st == nil || st.SyncErrors == 0 {
		t.Fatalf("crashed sync not reflected in status: %+v", st)
	}

	// The killed replica's directory still opens read-only to a
	// consistent generation: the committed manifest plus whatever
	// frame-complete tail prefix landed. Its snapshot times must be a
	// prefix of the primary's, and every fully-shipped day must answer
	// identically (the final day may be a partial group and is excluded).
	rep, err := histstore.Open(repDir, histstore.WithReadOnly(), histstore.WithCache(256))
	if err != nil {
		t.Fatalf("crashed replica directory does not open: %v", err)
	}
	pt, rt := primary.Times(), rep.Times()
	if len(rt) < gen1Snaps || len(rt) > len(pt) {
		t.Fatalf("crashed replica has %d snapshots; want between %d and %d", len(rt), gen1Snaps, len(pt))
	}
	for i := range rt {
		if !rt[i].Equal(pt[i]) {
			t.Fatalf("snapshot %d is not a primary prefix: %v vs %v", i, rt[i], pt[i])
		}
	}
	for i := 0; i < len(rt)-1; i++ {
		for _, p24 := range blockPrefixes(blocks) {
			for _, last := range []byte{10, 200} {
				ip := dnswire.IPv4{p24.Addr[0], p24.Addr[1], p24.Addr[2], last}
				nameP, okP, errP := primary.At(ip, pt[i])
				nameR, okR, errR := rep.At(ip, rt[i])
				if errP != nil || errR != nil || okP != okR || nameP.String() != nameR.String() {
					t.Fatalf("crashed replica day %d diverges at %s: (%s,%v,%v) vs (%s,%v,%v)",
						i, ip, nameP, okP, errP, nameR, okR, errR)
				}
			}
		}
	}
	rep.Close()

	// Restart: a fresh Syncer on the same directory resumes from the
	// local bytes and converges to full bit-identical consistency.
	y3, err := New(Config{Dir: repDir, Client: feedClient(inner), Chunk: 512})
	if err != nil {
		t.Fatal(err)
	}
	mustSync(t, y3)
	rep = openReplica(t, y3)
	compareStores(t, primary, rep, blocks)
	rep.Close()
}

// TestReplicaCorruptFeedLoud serves the replica a bit-flipped segment
// and a truncated tail: both must be loud sync errors that leave no
// committed damage, and a clean retry must converge.
func TestReplicaCorruptFeedLoud(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const blocks = 2
	dir := t.TempDir()
	primary := seedPrimary(t, filepath.Join(dir, "primary"), 9, blocks)
	if _, err := primary.Compact(context.Background(), histstore.CompactOptions{}); err != nil {
		t.Fatalf("compact: %v", err)
	}
	appendDays(t, primary, 9, 2, blocks)
	srv := rdnsserve.New(primary, rdnsserve.Config{Seed: 1})
	defer srv.Close()
	inner := inprocTransport{srv.Handler()}

	var mode atomic.Int32 // 0: clean, 1: flip segment bytes, 2: truncate tail bytes
	rt := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		resp, err := inner.RoundTrip(req)
		if err != nil || resp.StatusCode != http.StatusOK {
			return resp, err
		}
		switch {
		case mode.Load() == 1 && len(req.URL.Path) > len("/v1/repl/segment/") && req.URL.Path[:len("/v1/repl/segment/")] == "/v1/repl/segment/":
			body := readAll(t, resp)
			if len(body) > 0 {
				body[len(body)/2] ^= 0x40
			}
			resp.Body = newBody(body)
		case mode.Load() == 2 && len(req.URL.Path) > len("/v1/repl/tail/") && req.URL.Path[:len("/v1/repl/tail/")] == "/v1/repl/tail/":
			// Halve every delta response: resumable fetches re-request the
			// missing suffix, so the pull either converges to a correct
			// tail or — when the feed finally serves zero bytes — fails
			// loudly. It must never commit a short tail silently.
			body := readAll(t, resp)
			resp.Body = newBody(body[:len(body)/2])
		}
		return resp, err
	})

	repDir := filepath.Join(dir, "replica")
	y, err := New(Config{Dir: repDir, Client: feedClient(rt), Chunk: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	mode.Store(1)
	if _, err := y.Sync(context.Background()); err == nil {
		t.Fatal("bit-flipped segment synced without an error")
	}
	mode.Store(2)
	if _, err := y.Sync(context.Background()); err == nil {
		t.Fatal("truncated tail synced without an error")
	}
	mode.Store(0)
	mustSync(t, y)
	rep := openReplica(t, y)
	compareStores(t, primary, rep, blocks)
	rep.Close()
}

func readAll(tb testing.TB, resp *http.Response) []byte {
	tb.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		tb.Fatalf("reading response body: %v", err)
	}
	return buf.Bytes()
}

func newBody(b []byte) *bodyCloser { return &bodyCloser{Reader: bytes.NewReader(b)} }

type bodyCloser struct{ *bytes.Reader }

func (*bodyCloser) Close() error { return nil }

// TestReplicaHostileManifestNames proves a lying feed cannot steer the
// syncer outside its store directory: a manifest carrying path-traversal
// file names or a malformed writer ID fails validation before the syncer
// touches the filesystem — nothing is statted, removed, written, or
// renamed at the joined paths, and pre-existing files the traversal
// points at survive untouched.
func TestReplicaHostileManifestNames(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	primary := seedPrimary(t, filepath.Join(dir, "primary"), 9, 1)
	if _, err := primary.Compact(context.Background(), histstore.CompactOptions{}); err != nil {
		t.Fatalf("compact: %v", err)
	}
	srv := rdnsserve.New(primary, rdnsserve.Config{Seed: 1})
	defer srv.Close()
	inner := inprocTransport{srv.Handler()}

	clean, err := feedClient(inner).ReplManifest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Writers) == 0 || len(clean.Writers[0].Segments) == 0 {
		t.Fatalf("seed manifest has no segments: %+v", clean)
	}
	// Pre-create the traversal target: a hostile delete-then-overwrite
	// must be observable, not just a hostile create.
	victim := filepath.Join(dir, "victim")
	if err := os.WriteFile(victim, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(m *rdnsclient.ReplManifest)
	}{
		{"segment traversal", func(m *rdnsclient.ReplManifest) { m.Writers[0].Segments[0].File = "../victim" }},
		{"segment backslash", func(m *rdnsclient.ReplManifest) { m.Writers[0].Segments[0].File = `..\victim` }},
		{"segment dotdot", func(m *rdnsclient.ReplManifest) { m.Writers[0].Segments[0].File = ".." }},
		{"tail traversal", func(m *rdnsclient.ReplManifest) { m.Writers[0].TailFile = "../victim" }},
		{"tail reserved name", func(m *rdnsclient.ReplManifest) { m.Writers[0].TailFile = "MANIFEST" }},
		{"writer id traversal", func(m *rdnsclient.ReplManifest) { m.Writers[0].ID = "../w" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hostile := clean
			hostile.Writers = append([]rdnsclient.ReplWriter(nil), clean.Writers...)
			hostile.Writers[0].Segments = append([]rdnsclient.ReplSegment(nil), clean.Writers[0].Segments...)
			tc.mutate(&hostile)
			data, err := json.Marshal(hostile)
			if err != nil {
				t.Fatal(err)
			}
			rt := roundTripFunc(func(req *http.Request) (*http.Response, error) {
				if req.URL.Path == "/v1/repl/manifest" {
					return jsonResponse(req, data), nil
				}
				return inner.RoundTrip(req)
			})
			repDir := filepath.Join(t.TempDir(), "replica")
			y, err := New(Config{Source: "http://primary.inproc", Dir: repDir, Client: feedClient(rt)})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := y.Sync(context.Background()); err == nil {
				t.Fatal("hostile manifest synced without an error")
			}
			// Validation fires before MkdirAll: the replica directory must
			// not even exist, let alone hold staged files.
			if _, err := os.Stat(repDir); !os.IsNotExist(err) {
				t.Fatalf("syncer touched the filesystem before rejecting the manifest: stat %v", err)
			}
			got, err := os.ReadFile(victim)
			if err != nil || string(got) != "precious" {
				t.Fatalf("traversal target modified: %q, %v", got, err)
			}
		})
	}
}

// TestReplicaConfig covers constructor validation.
func TestReplicaConfig(t *testing.T) {
	if _, err := New(Config{Source: "http://x"}); err == nil {
		t.Fatal("New accepted a missing Dir")
	}
	if _, err := New(Config{Dir: t.TempDir()}); err == nil {
		t.Fatal("New accepted a missing Source and Client")
	}
	y, err := New(Config{Source: "http://x", Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if y.Status() != nil {
		t.Fatal("Status non-nil before any sync attempt")
	}
	if _, err := y.Open(); err == nil {
		t.Fatal("Open succeeded before any committed sync")
	}
}
