// Package replica implements snapshot-shipping replication for rdnsd: a
// Syncer pulls a primary daemon's replication feed (/v1/repl/*, see
// docs/replication.md) into a local histstore directory that a read-only
// replica daemon serves. Sealed segments are downloaded once — they are
// immutable and content-addressed by their trailer CRCs, so interrupted
// pulls resume by byte offset — and the active tails are pulled as
// incremental deltas from the local file size. Every downloaded file is
// verified (header, frame CRCs, footer index, content address) before
// the new file set is committed with the store's atomic manifest
// protocol, so a truncated or bit-flipped feed response is a loud sync
// error, never a silently wrong replica.
//
// A Syncer only ever appends files and atomically advances the local
// MANIFEST; a crash at any point leaves either the previous committed
// generation (plus unreferenced staged files the next sync resumes or
// supersedes) or the new one. The serving side swaps generations through
// rdnsserve's refcounted store-handle reload, so a catch-up never drops
// an in-flight query.
package replica

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/rdnsclient"
	"rdnsprivacy/internal/telemetry"
)

// DefaultChunk is the default feed fetch size. Small enough to bound one
// request, large enough to amortize round trips.
const DefaultChunk = 1 << 20

// errChanged marks a sync attempt invalidated by a concurrent primary
// mutation (a compaction swapped a tail mid-pull); Sync retries with a
// fresh manifest.
var errChanged = errors.New("replica: primary changed mid-sync")

// changeRetries bounds how many manifest refetches one Sync call absorbs
// before surfacing errChanged to the caller.
const changeRetries = 3

// Config assembles a Syncer.
type Config struct {
	// Source is the primary's base URL (http://host:port).
	Source string
	// Dir is the local store directory the feed is mirrored into; created
	// on the first sync.
	Dir string
	// Client overrides the feed client (tests inject in-process
	// transports); nil builds one from Source.
	Client *rdnsclient.Client
	// Chunk bounds one fetch (default DefaultChunk). Small values
	// exercise resumable range fetches.
	Chunk int
	// Tracer records sync and fetch spans; nil disables tracing. Each
	// Sync call gets a "repl.sync" span whose correlation ID is
	// CorrID(Seed, "repl.sync", n) for the n-th call, with one
	// "repl.fetch" span per file actually pulled under the same ID. A
	// committed sync that changed the file set stamps a "gen" event
	// carrying the serving generation the swap produces — the key
	// obs.Stitch uses to chain a replica-served query back through the
	// feed pull that delivered its data.
	Tracer *telemetry.Tracer
	// Seed feeds span correlation IDs.
	Seed int64
}

// Syncer mirrors one primary's feed into one local store directory.
// Sync calls are serialized; Status is safe concurrently with Sync.
type Syncer struct {
	src    string
	dir    string
	c      *rdnsclient.Client
	chunk  int
	tracer *telemetry.Tracer
	seed   int64

	mu sync.Mutex // serializes Sync
	// syncN numbers Sync calls (the correlation-ID attempt key); applied
	// counts committed syncs that changed the file set. On a replica
	// daemon every changed sync triggers exactly one serving-handle swap
	// (the bootstrap sync opens generation 0 without a reload), so the
	// generation serving a query equals applied-1 at the time of the
	// swap — the invariant the "gen" span events encode.
	syncN   int
	applied int
	// verified caches segment files already validated against their
	// content address, so steady-state syncs stat nothing but tails.
	verified map[string]bool
	// tailOK caches the verified size per tail file, so a caught-up sync
	// skips the frame scan but a fresh process re-proves local bytes it
	// never pulled itself.
	tailOK map[string]int64

	statMu sync.Mutex
	stats  rdnsclient.ReplicaStats
	synced bool // at least one successful sync
}

// New creates a Syncer pulling cfg.Source into cfg.Dir.
func New(cfg Config) (*Syncer, error) {
	if cfg.Dir == "" {
		return nil, errors.New("replica: Dir is required")
	}
	c := cfg.Client
	if c == nil {
		if cfg.Source == "" {
			return nil, errors.New("replica: Source is required")
		}
		c = rdnsclient.New(cfg.Source)
	}
	chunk := cfg.Chunk
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	return &Syncer{
		src:      cfg.Source,
		dir:      cfg.Dir,
		c:        c,
		chunk:    chunk,
		tracer:   cfg.Tracer,
		seed:     cfg.Seed,
		verified: make(map[string]bool),
		tailOK:   make(map[string]int64),
	}, nil
}

// Status reports the replica's lag as of the last sync attempt, or nil
// before the first attempt resolves. The pointer is a copy; callers may
// hold it across syncs.
func (y *Syncer) Status() *rdnsclient.ReplicaStats {
	y.statMu.Lock()
	defer y.statMu.Unlock()
	if y.stats.Syncs == 0 && y.stats.SyncErrors == 0 {
		return nil
	}
	st := y.stats
	return &st
}

// Synced reports whether at least one sync has committed, i.e. the local
// directory holds an openable store generation.
func (y *Syncer) Synced() bool {
	y.statMu.Lock()
	defer y.statMu.Unlock()
	return y.synced
}

// Sync pulls the primary's current file set into the local directory and
// commits it, returning whether anything changed (the caller should swap
// its serving handle onto the new generation when it did). A primary
// mutation mid-pull (compaction swapping a tail) restarts the attempt
// with a fresh manifest, a bounded number of times. Any verification
// failure — truncated files, content-address mismatches, frame
// corruption — is a loud error and leaves the previous committed
// generation untouched.
func (y *Syncer) Sync(ctx context.Context) (bool, error) {
	y.mu.Lock()
	defer y.mu.Unlock()
	y.syncN++
	corr := telemetry.CorrID(y.seed, "repl.sync", y.syncN)
	span := y.tracer.StartSpanCorr("repl.sync", y.src, corr)
	var lastErr error
	for attempt := 0; attempt < changeRetries; attempt++ {
		changed, err := y.syncOnce(ctx, corr)
		if err == nil {
			y.noteSuccess()
			if changed {
				y.applied++
				// The stitch key: the serving generation this sync's
				// handle swap produces (bootstrap opens generation 0).
				span.Event("gen", uint64(y.applied-1))
			}
			span.End()
			return changed, nil
		}
		lastErr = err
		if !errors.Is(err, errChanged) && !rdnsChanged(err) {
			break
		}
		span.Event("retry", uint64(attempt+1))
	}
	y.noteError()
	span.Event("error", 0)
	span.End()
	return false, lastErr
}

// Applied reports how many committed syncs changed the local file set —
// on a replica daemon, one more than the current serving generation.
func (y *Syncer) Applied() int {
	y.mu.Lock()
	defer y.mu.Unlock()
	return y.applied
}

// rdnsChanged reports a 409 repl_changed API error.
func rdnsChanged(err error) bool {
	var ae *rdnsclient.APIError
	return errors.As(err, &ae) && ae.Code == rdnsclient.CodeReplChanged
}

// syncOnce is one manifest-to-commit attempt; corr correlates its fetch
// spans with the owning Sync call.
func (y *Syncer) syncOnce(ctx context.Context, corr uint64) (bool, error) {
	m, err := y.c.ReplManifest(ctx)
	if err != nil {
		return false, fmt.Errorf("replica: manifest: %w", err)
	}
	if err := validateManifest(m); err != nil {
		return false, err
	}
	if err := os.MkdirAll(y.dir, 0o755); err != nil {
		return false, fmt.Errorf("replica: %w", err)
	}
	y.noteRemote(m)
	changed := false
	for _, w := range m.Writers {
		for _, g := range w.Segments {
			fetched, err := y.syncSegment(ctx, w.ID, g, corr)
			if err != nil {
				return false, err
			}
			changed = changed || fetched
		}
		fetched, err := y.syncTail(ctx, w, corr)
		if err != nil {
			return false, err
		}
		changed = changed || fetched
	}
	committed, err := y.commit(m)
	if err != nil {
		return false, err
	}
	y.cleanup(m)
	return changed || committed, nil
}

// validateManifest rejects feed-supplied names that could escape the
// store directory, before any of them is joined into a local path. The
// commit-time manifest validation re-checks the same rules, but only
// after the syncer has statted, removed, and renamed files at the joined
// paths — a lying feed (compromised primary, MITM on the plain-HTTP
// transport) must be a loud error before the first filesystem touch.
func validateManifest(m rdnsclient.ReplManifest) error {
	for _, w := range m.Writers {
		if !histstore.ValidWriterID(w.ID) {
			return fmt.Errorf("replica: manifest carries invalid writer id %q", w.ID)
		}
		if !histstore.ValidStoreFileName(w.TailFile) {
			return fmt.Errorf("replica: manifest carries unsafe tail file name %q for writer %s", w.TailFile, w.ID)
		}
		for _, g := range w.Segments {
			if !histstore.ValidStoreFileName(g.File) {
				return fmt.Errorf("replica: manifest carries unsafe segment file name %q for writer %s", g.File, w.ID)
			}
		}
	}
	return nil
}

// syncSegment ensures one sealed segment is present, verified, and
// matching its content address. Partial downloads resume from the staged
// .part file's size.
func (y *Syncer) syncSegment(ctx context.Context, writerID string, g rdnsclient.ReplSegment, corr uint64) (bool, error) {
	final := filepath.Join(y.dir, g.File)
	if y.verified[g.File] {
		return false, nil
	}
	if fi, err := os.Stat(final); err == nil {
		// Present from a previous sync (or process lifetime): verify once
		// against the manifest identity and content address.
		if fi.Size() == g.Size {
			if err := y.verifySegment(final, writerID, g); err == nil {
				y.verified[g.File] = true
				return false, nil
			}
		}
		// Wrong size or failed verification: a segment is immutable, so
		// this is damage — refetch from scratch, loudly if that fails too.
		if err := os.Remove(final); err != nil {
			return false, fmt.Errorf("replica: removing damaged segment %s: %w", final, err)
		}
	}
	part := final + ".part"
	off := int64(0)
	if fi, err := os.Stat(part); err == nil {
		off = fi.Size()
		if off > g.Size {
			// Staged bytes from a different (corrupt or superseded) fetch.
			if err := os.Remove(part); err != nil {
				return false, fmt.Errorf("replica: %w", err)
			}
			off = 0
		}
	}
	f, err := os.OpenFile(part, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return false, fmt.Errorf("replica: %w", err)
	}
	fspan := y.tracer.StartSpanCorr("repl.fetch", g.File, corr)
	fetched := int64(0)
	defer func() {
		fspan.Event("bytes", uint64(fetched))
		fspan.End()
	}()
	for off < g.Size {
		n := y.chunk
		if int64(n) > g.Size-off {
			n = int(g.Size - off)
		}
		data, total, err := y.c.ReplSegment(ctx, g.File, off, n)
		if err != nil {
			f.Close()
			return false, fmt.Errorf("replica: segment %s at %d: %w", g.File, off, err)
		}
		if total != g.Size || len(data) == 0 || int64(len(data)) > g.Size-off {
			f.Close()
			return false, fmt.Errorf("replica: segment %s: feed served %d bytes of %d at offset %d, manifest says %d",
				g.File, len(data), total, off, g.Size)
		}
		if _, err := f.WriteAt(data, off); err != nil {
			f.Close()
			return false, fmt.Errorf("replica: %w", err)
		}
		off += int64(len(data))
		fetched += int64(len(data))
		y.noteFetched(int64(len(data)))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return false, fmt.Errorf("replica: %w", err)
	}
	if err := f.Close(); err != nil {
		return false, fmt.Errorf("replica: %w", err)
	}
	if err := y.verifySegment(part, writerID, g); err != nil {
		os.Remove(part)
		return false, err
	}
	if err := os.Rename(part, final); err != nil {
		return false, fmt.Errorf("replica: %w", err)
	}
	if err := syncDir(y.dir); err != nil {
		return false, err
	}
	y.verified[g.File] = true
	y.noteSegmentDone()
	return true, nil
}

// verifySegment runs the full structural validation plus the manifest's
// content address over a downloaded segment file.
func (y *Syncer) verifySegment(path, writerID string, g rdnsclient.ReplSegment) error {
	size, crc, err := histstore.VerifySegmentFile(path, writerID, g.First, g.Count)
	if err != nil {
		return fmt.Errorf("replica: segment %s failed verification: %w", g.File, err)
	}
	if size != g.Size || crc != g.CRC {
		return fmt.Errorf("replica: segment %s content mismatch: got %d bytes crc %08x, manifest says %d bytes crc %08x",
			g.File, size, crc, g.Size, g.CRC)
	}
	return nil
}

// syncTail pulls the writer's tail delta [localSize, manifest TailSize)
// and verifies the whole committed region. Local bytes are always a
// correct prefix of the primary's committed tail (tail files are
// append-only and never reused), so resuming from the local file size is
// self-healing after a crash mid-pull.
func (y *Syncer) syncTail(ctx context.Context, w rdnsclient.ReplWriter, corr uint64) (bool, error) {
	if w.TailSize <= 0 {
		// Every real tail carries at least its file header; a zero-size
		// tail is a malformed manifest, and committing it would reference
		// a file that never gets pulled.
		return false, fmt.Errorf("replica: tail %s: manifest advertises %d committed bytes", w.TailFile, w.TailSize)
	}
	path := filepath.Join(y.dir, w.TailFile)
	off := int64(0)
	if fi, err := os.Stat(path); err == nil {
		off = fi.Size()
	}
	if off > w.TailSize {
		// A tail never shrinks under one file name; longer local bytes mean
		// the manifest raced a primary restart that rebuilt the store.
		return false, fmt.Errorf("%w: local tail %s has %d bytes, manifest says %d",
			errChanged, w.TailFile, off, w.TailSize)
	}
	if off == w.TailSize {
		if y.tailOK[w.TailFile] == w.TailSize {
			return false, nil
		}
		// Caught up byte-wise, but this process never proved the local
		// bytes (a restart after a crashed pull): verify before trusting.
		if _, err := histstore.VerifyTailFile(path, w.TailFirst, w.TailSize); err != nil {
			os.Remove(path)
			return false, fmt.Errorf("replica: tail %s failed verification: %w", w.TailFile, err)
		}
		y.tailOK[w.TailFile] = w.TailSize
		return false, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return false, fmt.Errorf("replica: %w", err)
	}
	fspan := y.tracer.StartSpanCorr("repl.fetch", w.TailFile, corr)
	fetched := int64(0)
	defer func() {
		fspan.Event("bytes", uint64(fetched))
		fspan.End()
	}()
	for off < w.TailSize {
		n := y.chunk
		if int64(n) > w.TailSize-off {
			n = int(w.TailSize - off)
		}
		data, info, err := y.c.ReplTail(ctx, w.ID, w.TailFile, off, n)
		if err != nil {
			f.Close()
			return false, fmt.Errorf("replica: tail %s at %d: %w", w.TailFile, off, err)
		}
		if len(data) == 0 || int64(len(data)) > w.TailSize-off {
			f.Close()
			return false, fmt.Errorf("replica: tail %s: feed served %d bytes at offset %d of %d (committed %d)",
				w.TailFile, len(data), off, w.TailSize, info.Size)
		}
		if _, err := f.WriteAt(data, off); err != nil {
			f.Close()
			return false, fmt.Errorf("replica: %w", err)
		}
		off += int64(len(data))
		fetched += int64(len(data))
		y.noteFetched(int64(len(data)))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return false, fmt.Errorf("replica: %w", err)
	}
	if err := f.Close(); err != nil {
		return false, fmt.Errorf("replica: %w", err)
	}
	if _, err := histstore.VerifyTailFile(path, w.TailFirst, w.TailSize); err != nil {
		// The local bytes are provably damaged; drop the file so the next
		// sync re-pulls the tail from scratch.
		os.Remove(path)
		return false, fmt.Errorf("replica: tail %s failed verification: %w", w.TailFile, err)
	}
	y.tailOK[w.TailFile] = w.TailSize
	return true, nil
}

// commit atomically advances the local MANIFEST to m's file set when it
// differs from what is already committed.
func (y *Syncer) commit(m rdnsclient.ReplManifest) (bool, error) {
	fm := histstore.FeedManifest{BaseInterval: m.BaseInterval}
	for _, w := range m.Writers {
		fw := histstore.FeedWriter{
			ID:        w.ID,
			FileSeq:   w.FileSeq,
			TailFile:  w.TailFile,
			TailFirst: w.TailFirst,
			TailSize:  w.TailSize,
		}
		for _, g := range w.Segments {
			fw.Segments = append(fw.Segments, histstore.FeedSegment{
				File: g.File, First: g.First, Count: g.Count, Size: g.Size, CRC: g.CRC,
			})
		}
		fm.Writers = append(fm.Writers, fw)
	}
	advanced, err := histstore.WriteFeedManifest(y.dir, fm)
	if err != nil {
		return false, fmt.Errorf("replica: committing manifest: %w", err)
	}
	return advanced, nil
}

// cleanup removes local tail files the committed manifest no longer
// references (compaction superseded them on the primary) and stale
// .part stages for segments that are already final. Failures are
// ignored: leftovers cost disk, not correctness.
func (y *Syncer) cleanup(m rdnsclient.ReplManifest) {
	live := make(map[string]bool)
	for _, w := range m.Writers {
		live[w.TailFile] = true
		for _, g := range w.Segments {
			live[g.File] = true
		}
	}
	entries, err := os.ReadDir(y.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "tail-") && strings.HasSuffix(name, ".log") && !live[name]:
			os.Remove(filepath.Join(y.dir, name))
		case strings.HasSuffix(name, ".part") && live[strings.TrimSuffix(name, ".part")] &&
			y.verified[strings.TrimSuffix(name, ".part")]:
			os.Remove(filepath.Join(y.dir, name))
		}
	}
}

// Open opens the synced local store read-only, with opts applied after
// the read-only default — the store a replica daemon serves. It fails
// with histstore.ErrNoStore before the first committed sync.
func (y *Syncer) Open(opts ...histstore.Option) (*histstore.Store, error) {
	all := append([]histstore.Option{histstore.WithReadOnly()}, opts...)
	return histstore.Open(y.dir, all...)
}

// Status bookkeeping.

func (y *Syncer) noteRemote(m rdnsclient.ReplManifest) {
	localBytes := int64(0)
	for _, w := range m.Writers {
		for _, g := range w.Segments {
			p := filepath.Join(y.dir, g.File)
			if fi, err := os.Stat(p); err == nil {
				localBytes += min64(fi.Size(), g.Size)
			} else if fi, err := os.Stat(p + ".part"); err == nil {
				// A staged partial download resumes from its size, so those
				// bytes are local too — without this, a restart mid-segment
				// reports the whole segment behind and the resumed fetch
				// double-decrements through noteFetched.
				localBytes += min64(fi.Size(), g.Size)
			}
		}
		if fi, err := os.Stat(filepath.Join(y.dir, w.TailFile)); err == nil {
			localBytes += min64(fi.Size(), w.TailSize)
		}
	}
	y.statMu.Lock()
	y.stats.Source = y.src
	y.stats.LastSnap = m.LastSnap
	y.stats.BytesBehind = m.TotalBytes - localBytes
	y.stats.SnapshotsBehind = 0 // refined at success; a failed sync keeps bytes as the signal
	y.statMu.Unlock()
}

func (y *Syncer) noteFetched(n int64) {
	y.statMu.Lock()
	y.stats.BytesFetched += n
	if y.stats.BytesBehind > n {
		y.stats.BytesBehind -= n
	} else {
		y.stats.BytesBehind = 0
	}
	y.statMu.Unlock()
}

func (y *Syncer) noteSegmentDone() {
	y.statMu.Lock()
	y.stats.SegmentsFetched++
	y.statMu.Unlock()
}

func (y *Syncer) noteSuccess() {
	y.statMu.Lock()
	y.stats.Syncs++
	y.stats.BytesBehind = 0
	y.stats.SnapshotsBehind = 0
	y.stats.LastSync = time.Now().UTC()
	y.synced = true
	y.statMu.Unlock()
}

func (y *Syncer) noteError() {
	y.statMu.Lock()
	y.stats.SyncErrors++
	y.statMu.Unlock()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// syncDir fsyncs the directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("replica: syncing %s: %w", dir, err)
	}
	return nil
}
