package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/rdnsserve"
)

// fuzzPrimary builds one shared seeded primary (segments plus a live
// tail) for the fuzz targets. The store is only read during fuzzing.
func fuzzPrimary(f *testing.F) (*histstore.Store, *rdnsserve.Server) {
	f.Helper()
	dir := f.TempDir()
	st, err := histstore.Open(filepath.Join(dir, "primary"),
		histstore.WithCache(256), histstore.WithBaseInterval(4))
	if err != nil {
		f.Fatal(err)
	}
	appendDays(f, st, 0, 9, 2)
	if _, err := st.Compact(context.Background(), histstore.CompactOptions{}); err != nil {
		f.Fatal(err)
	}
	appendDays(f, st, 9, 2, 2)
	srv := rdnsserve.New(st, rdnsserve.Config{Seed: 1})
	f.Cleanup(func() { srv.Close() })
	return st, srv
}

// FuzzReplManifest feeds the syncer arbitrary bytes as the primary's
// manifest response while the segment and tail endpoints stay real. The
// invariant: Sync either fails loudly, or commits a directory that opens
// cleanly and answers queries without panicking — never a half-committed
// or unopenable store.
func FuzzReplManifest(f *testing.F) {
	_, srv := fuzzPrimary(f)
	real := inprocTransport{srv.Handler()}

	fm, err := feedClient(real).ReplManifest(context.Background())
	if err != nil {
		f.Fatal(err)
	}
	valid, err := jsonBytes(fm)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(flipped)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"base_interval":4,"writers":[{"id":"x","tail_file":"tail-x-0.log"}]}`))
	f.Add([]byte(`{"base_interval":4,"writers":[{"id":"x","tail_file":"../../evil","tail_size":64}]}`))
	f.Add([]byte(`{"base_interval":4,"writers":[{"id":"../x","tail_file":"tail-x-0.log","tail_size":64,"segments":[{"file":"..\\evil","size":64}]}]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		rt := roundTripFunc(func(req *http.Request) (*http.Response, error) {
			if req.URL.Path == "/v1/repl/manifest" {
				return jsonResponse(req, data), nil
			}
			return real.RoundTrip(req)
		})
		y, err := New(Config{Source: "http://primary.inproc", Dir: t.TempDir(), Client: feedClient(rt), Chunk: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := y.Sync(context.Background()); err != nil {
			return // a loud failure is the contract
		}
		st, err := y.Open()
		if err != nil {
			t.Fatalf("sync committed but the directory does not open: %v", err)
		}
		defer st.Close()
		times := st.Times()
		for _, tm := range times {
			// Queries must not panic; corrupt-data errors would be loud and
			// are acceptable, silent garbage is what the verifier prevents.
			st.At(dnswire.IPv4{10, 0, 1, 10}, tm)
		}
	})
}

// FuzzSegmentFetch flips one byte at a fuzzed position in every segment
// and tail response. The invariant: with a real flip the sync either
// fails loudly, or — if the flipped byte was re-fetched correctly on a
// later chunk — the committed replica answers bit-identically to the
// primary. A silently wrong replica fails the run.
func FuzzSegmentFetch(f *testing.F) {
	primary, srv := fuzzPrimary(f)
	real := inprocTransport{srv.Handler()}

	f.Add(uint32(0), byte(0))
	f.Add(uint32(17), byte(0x01))
	f.Add(uint32(4096), byte(0x80))
	f.Add(uint32(1<<20), byte(0xff))

	f.Fuzz(func(t *testing.T, pos uint32, xor byte) {
		rt := roundTripFunc(func(req *http.Request) (*http.Response, error) {
			resp, err := real.RoundTrip(req)
			if err != nil || resp.StatusCode != http.StatusOK || xor == 0 {
				return resp, err
			}
			path := req.URL.Path
			if !hasPrefix(path, "/v1/repl/segment/") && !hasPrefix(path, "/v1/repl/tail/") {
				return resp, err
			}
			body := readAll(t, resp)
			if len(body) > 0 {
				body[int(pos)%len(body)] ^= xor
			}
			resp.Body = newBody(body)
			return resp, nil
		})
		y, err := New(Config{Source: "http://primary.inproc", Dir: t.TempDir(), Client: feedClient(rt), Chunk: 4096})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := y.Sync(context.Background()); err != nil {
			return // corruption detected at sync time: the contract held
		}
		st, err := y.Open()
		if err != nil {
			t.Fatalf("sync committed but the directory does not open: %v", err)
		}
		defer st.Close()
		// The sync verified clean — so every answer must match the primary.
		compareStores(t, primary, st, 2)
	})
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

func jsonBytes(v any) ([]byte, error) { return json.Marshal(v) }

func jsonResponse(req *http.Request, data []byte) *http.Response {
	h := make(http.Header)
	h.Set("Content-Type", "application/json")
	return &http.Response{
		Status:        "200 OK",
		StatusCode:    http.StatusOK,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          newBody(bytes.Clone(data)),
		ContentLength: int64(len(data)),
		Request:       req,
	}
}
