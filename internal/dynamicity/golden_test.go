package dynamicity

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/scan"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenCampusVerdicts pins the heuristic's full per-/24 verdict table
// on the seeded validation campus (the paper's Section 4.1 ground-truth
// network). The fabric, the campaign, and the heuristic are all
// deterministic, so the complete output — every prefix's considered flag,
// dynamic label, max daily count and change-day tally — is checked in as
// testdata/campus_seed7.golden. Regenerate with `go test -run Golden
// -update ./internal/dynamicity/`.
func TestGoldenCampusVerdicts(t *testing.T) {
	campus, truth, err := netsim.BuildValidationCampus(7, time.UTC)
	if err != nil {
		t.Fatal(err)
	}
	res := scan.Run(scan.Campaign{
		Universe: &netsim.Universe{Networks: []*netsim.Network{campus}},
		Start:    time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
		End:      time.Date(2021, 3, 31, 0, 0, 0, 0, time.UTC),
		Cadence:  scan.Daily,
	})
	verdict := Analyze(res.Series, PaperConfig())

	// Sanity against the generator's ground truth before trusting the
	// rendered table: every known-dynamic prefix must be flagged.
	for _, p := range truth["dynamic"] {
		if !verdict.IsDynamic(p) {
			t.Errorf("ground-truth dynamic prefix %s not flagged", p)
		}
	}

	got := renderVerdicts(verdict)
	compareGolden(t, "campus_seed7.golden", got)
}

// renderVerdicts formats a Result as a stable text table: summary line,
// then one CSV row per /24 sorted by address.
func renderVerdicts(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "config: min=%d X=%g Y=%d\n",
		res.Config.MinAddresses, res.Config.ChangePercent, res.Config.MinChangeDays)
	fmt.Fprintf(&b, "prefixes: total=%d considered=%d dynamic=%d\n",
		res.TotalPrefixes, res.ConsideredPrefixes, len(res.DynamicPrefixes))
	b.WriteString("prefix,considered,dynamic,max_daily,change_days\n")
	rows := make([]PrefixVerdict, 0, len(res.Verdicts))
	for _, v := range res.Verdicts {
		rows = append(rows, v)
	}
	sort.Slice(rows, func(i, j int) bool {
		return rows[i].Prefix.Addr.Uint32() < rows[j].Prefix.Addr.Uint32()
	})
	for _, v := range rows {
		fmt.Fprintf(&b, "%s,%t,%t,%d,%d\n",
			v.Prefix, v.Considered, v.Dynamic, v.MaxDaily, v.ChangeDays)
	}
	return b.String()
}

// compareGolden diffs got against testdata/<name>, rewriting the file
// under -update.
func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("golden mismatch at %s:%d\n got: %q\nwant: %q", path, i+1, g, w)
		}
	}
	t.Fatalf("golden mismatch against %s (equal lines, differing whitespace?)", path)
}
