package dynamicity

import (
	"testing"
	"time"

	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/scan"
)

var start = time.Date(2021, 1, 4, 0, 0, 0, 0, time.UTC)

// makeSeries builds a series over n days with the given per-day counts for
// one prefix.
func makeSeries(t *testing.T, counts map[string][]int, days int) *dataset.CountSeries {
	t.Helper()
	s := dataset.NewCountSeries(dataset.DateRange(start, start.AddDate(0, 0, days-1), 1))
	for pfx, row := range counts {
		p := dnswire.MustPrefix(pfx)
		if len(row) != days {
			t.Fatalf("row for %s has %d days, want %d", pfx, len(row), days)
		}
		for i, c := range row {
			s.Set(p, i, c)
		}
	}
	return s
}

func TestStaticPrefixNotDynamic(t *testing.T) {
	row := make([]int, 90)
	for i := range row {
		row[i] = 100
	}
	s := makeSeries(t, map[string][]int{"192.0.2.0/24": row}, 90)
	res := Analyze(s, PaperConfig())
	if res.TotalPrefixes != 1 || res.ConsideredPrefixes != 1 {
		t.Fatalf("result = %+v", res)
	}
	if len(res.DynamicPrefixes) != 0 {
		t.Fatal("constant prefix labelled dynamic")
	}
}

func TestSmallPrefixDiscarded(t *testing.T) {
	// Never more than 10 addresses: discarded in step 1 even though it
	// fluctuates wildly.
	row := make([]int, 90)
	for i := range row {
		row[i] = i % 10
	}
	s := makeSeries(t, map[string][]int{"192.0.2.0/24": row}, 90)
	res := Analyze(s, PaperConfig())
	if res.ConsideredPrefixes != 0 {
		t.Fatal("small prefix not discarded")
	}
	if len(res.DynamicPrefixes) != 0 {
		t.Fatal("small prefix labelled dynamic")
	}
}

func TestExactlyTenDiscarded(t *testing.T) {
	// The paper's threshold is "never observe more than 10": exactly 10
	// must be discarded.
	row := make([]int, 90)
	for i := range row {
		row[i] = 10
	}
	s := makeSeries(t, map[string][]int{"192.0.2.0/24": row}, 90)
	if res := Analyze(s, PaperConfig()); res.ConsideredPrefixes != 0 {
		t.Fatal("prefix peaking at exactly 10 was considered")
	}
}

func TestDynamicPrefixDetected(t *testing.T) {
	// Weekday/weekend swing: 100 on weekdays, 40 on weekends. The
	// Mon->Sat and Sun->Mon transitions are 60% changes; ~8 weekends in
	// 90 days gives ~16 qualifying days >= Y=7.
	row := make([]int, 90)
	for i := range row {
		day := start.AddDate(0, 0, i).Weekday()
		if day == time.Saturday || day == time.Sunday {
			row[i] = 40
		} else {
			row[i] = 100
		}
	}
	s := makeSeries(t, map[string][]int{"192.0.2.0/24": row}, 90)
	res := Analyze(s, PaperConfig())
	if len(res.DynamicPrefixes) != 1 {
		t.Fatalf("dynamic = %v", res.DynamicPrefixes)
	}
	v := res.Verdicts[dnswire.MustPrefix("192.0.2.0/24")]
	if !v.Dynamic || v.MaxDaily != 100 || v.ChangeDays < 7 {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestFewChangeDaysNotDynamic(t *testing.T) {
	// Only 3 big-change days: below Y=7.
	row := make([]int, 90)
	for i := range row {
		row[i] = 100
	}
	row[10], row[40], row[70] = 20, 20, 20
	s := makeSeries(t, map[string][]int{"192.0.2.0/24": row}, 90)
	res := Analyze(s, PaperConfig())
	if len(res.DynamicPrefixes) != 0 {
		t.Fatal("3 spikes labelled dynamic (each spike is 2 change days, 6 < 7)")
	}
	// A 4th spike pushes it to 8 change days >= 7.
	row[80] = 20
	s = makeSeries(t, map[string][]int{"192.0.2.0/24": row}, 90)
	res = Analyze(s, PaperConfig())
	if len(res.DynamicPrefixes) != 1 {
		t.Fatal("8 change days not labelled dynamic")
	}
}

func TestChangeRelativeToMax(t *testing.T) {
	// Max 200; daily swing of 15 addresses is 7.5% < X=10%: static.
	row := make([]int, 90)
	for i := range row {
		row[i] = 185 + (i%2)*15
	}
	s := makeSeries(t, map[string][]int{"192.0.2.0/24": row}, 90)
	if res := Analyze(s, PaperConfig()); len(res.DynamicPrefixes) != 0 {
		t.Fatal("7.5% swing labelled dynamic at X=10")
	}
	// Swing of 25 is 12.5% > 10%: dynamic.
	for i := range row {
		row[i] = 175 + (i%2)*25
	}
	s = makeSeries(t, map[string][]int{"192.0.2.0/24": row}, 90)
	if res := Analyze(s, PaperConfig()); len(res.DynamicPrefixes) != 1 {
		t.Fatal("12.5% swing not labelled dynamic at X=10")
	}
}

func TestMapToAnnouncedMostSpecific(t *testing.T) {
	row := make([]int, 90)
	for i := range row {
		row[i] = 100 - (i%2)*50
	}
	s := makeSeries(t, map[string][]int{
		"10.1.1.0/24": row,
		"10.1.2.0/24": row,
		"10.2.0.0/24": row,
	}, 90)
	res := Analyze(s, PaperConfig())
	if len(res.DynamicPrefixes) != 3 {
		t.Fatalf("dynamic = %v", res.DynamicPrefixes)
	}
	announced := []dnswire.Prefix{
		dnswire.MustPrefix("10.0.0.0/8"),
		dnswire.MustPrefix("10.1.0.0/16"),
	}
	entries := MapToAnnounced(res, announced)
	if len(entries) != 2 {
		t.Fatalf("entries = %+v", entries)
	}
	for _, e := range entries {
		switch e.Prefix.String() {
		case "10.1.0.0/16":
			if e.DynamicSlash24s != 2 || e.TotalSlash24s != 256 {
				t.Fatalf("/16 entry = %+v", e)
			}
		case "10.0.0.0/8":
			if e.DynamicSlash24s != 1 {
				t.Fatalf("/8 entry = %+v", e)
			}
		default:
			t.Fatalf("unexpected announced prefix %v", e.Prefix)
		}
	}
	dist := DistributionBySize(entries)
	if len(dist) != 2 || dist[0].Bits != 8 || dist[1].Bits != 16 {
		t.Fatalf("distribution = %+v", dist)
	}
}

func TestValidationCampusGroundTruth(t *testing.T) {
	// Reproduce the paper's Section 4.1 validation: the heuristic must
	// find exactly the 40 leaky-dynamic prefixes, keep the 83
	// DHCP-but-static-rDNS prefixes static, and the other static and
	// empty prefixes must not be flagged.
	campus, truth, err := netsim.BuildValidationCampus(3, time.UTC)
	if err != nil {
		t.Fatal(err)
	}
	u := &netsim.Universe{Networks: []*netsim.Network{campus}}
	res := scan.Run(scan.Campaign{
		Universe: u,
		Start:    time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
		End:      time.Date(2021, 3, 31, 0, 0, 0, 0, time.UTC),
		Cadence:  scan.Daily,
	})
	verdict := Analyze(res.Series, PaperConfig())

	dynamicSet := make(map[dnswire.Prefix]bool)
	for _, p := range verdict.DynamicPrefixes {
		dynamicSet[p] = true
	}
	for _, p := range truth["dynamic"] {
		if !dynamicSet[p] {
			t.Errorf("true dynamic prefix %v not flagged", p)
		}
	}
	for _, class := range []string{"dhcp-static", "static", "empty"} {
		for _, p := range truth[class] {
			if dynamicSet[p] {
				t.Errorf("%s prefix %v wrongly flagged dynamic", class, p)
			}
		}
	}
	if got := len(verdict.DynamicPrefixes); got != 40 {
		t.Errorf("dynamic prefixes = %d, want 40", got)
	}
}

func TestThresholdSweepMonotonicity(t *testing.T) {
	// Stricter Y can only shrink the dynamic set.
	campus, _, err := netsim.BuildValidationCampus(3, time.UTC)
	if err != nil {
		t.Fatal(err)
	}
	u := &netsim.Universe{Networks: []*netsim.Network{campus}}
	res := scan.Run(scan.Campaign{
		Universe: u,
		Start:    time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
		End:      time.Date(2021, 2, 15, 0, 0, 0, 0, time.UTC),
		Cadence:  scan.Daily,
	})
	prev := 1 << 30
	for y := 1; y <= 21; y += 5 {
		cfg := PaperConfig()
		cfg.MinChangeDays = y
		got := len(Analyze(res.Series, cfg).DynamicPrefixes)
		if got > prev {
			t.Fatalf("dynamic count grew from %d to %d as Y rose to %d", prev, got, y)
		}
		prev = got
	}
}
