package dynamicity_test

import (
	"fmt"
	"time"

	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/dynamicity"
)

// The Section 4 heuristic over a hand-built count series: a /24 whose
// address count swings between weekdays and weekends is dynamic; a flat
// one is not.
func ExampleAnalyze() {
	start := time.Date(2021, 1, 4, 0, 0, 0, 0, time.UTC) // a Monday
	series := dataset.NewCountSeries(dataset.DateRange(start, start.AddDate(0, 0, 89), 1))
	office := dnswire.MustPrefix("192.0.2.0/24")
	static := dnswire.MustPrefix("198.51.100.0/24")
	for i, d := range series.Dates {
		if d.Weekday() == time.Saturday || d.Weekday() == time.Sunday {
			series.Set(office, i, 35)
		} else {
			series.Set(office, i, 120)
		}
		series.Set(static, i, 200)
	}
	res := dynamicity.Analyze(series, dynamicity.PaperConfig())
	for _, p := range res.DynamicPrefixes {
		fmt.Println("dynamic:", p)
	}
	fmt.Println("considered:", res.ConsideredPrefixes, "of", res.TotalPrefixes)
	// Output:
	// dynamic: 192.0.2.0/24
	// considered: 2 of 2
}
