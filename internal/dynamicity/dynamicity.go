// Package dynamicity implements the Section 4 heuristic that identifies
// /24 prefixes exposing dynamic client behaviour in reverse DNS, plus the
// announced-prefix aggregation behind Figure 1.
//
// The three steps, verbatim from the paper:
//
//  1. Group results by /24 prefix and compute the unique number of
//     addresses with a PTR per day over a three-month window; discard
//     prefixes that never exceed 10 addresses a day, and record each
//     remaining prefix's maximum daily count.
//  2. For each retained /24, compute the day-over-day absolute difference
//     in address counts, divided by the recorded maximum — the "change
//     percentage".
//  3. Label the /24 dynamic if the change percentage exceeds X% on at
//     least Y days over the window. The paper sets X=10 and Y=7.
package dynamicity

import (
	"sort"

	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/dnswire"
)

// Config holds the heuristic's thresholds.
type Config struct {
	// MinAddresses is the daily-count floor below which a /24 is
	// discarded in step 1 (paper: 10).
	MinAddresses int
	// ChangePercent is X: the change percentage a day must exceed to
	// count (paper: 10).
	ChangePercent float64
	// MinChangeDays is Y: how many qualifying days label a prefix
	// dynamic (paper: 7).
	MinChangeDays int
}

// PaperConfig returns the thresholds used in the paper (X=10, Y=7,
// 10-address floor).
func PaperConfig() Config {
	return Config{MinAddresses: 10, ChangePercent: 10, MinChangeDays: 7}
}

// PrefixVerdict is the per-/24 outcome of the heuristic.
type PrefixVerdict struct {
	Prefix dnswire.Prefix
	// Considered reports whether the prefix survived step 1.
	Considered bool
	// Dynamic reports the step 3 label.
	Dynamic bool
	// MaxDaily is the maximum daily address count (step 1).
	MaxDaily int
	// ChangeDays is how many days exceeded the change threshold.
	ChangeDays int
}

// Result is the output of the heuristic over a count series.
type Result struct {
	Config Config
	// TotalPrefixes is the number of /24s with any PTR in the window.
	TotalPrefixes int
	// ConsideredPrefixes survived the step 1 floor.
	ConsideredPrefixes int
	// DynamicPrefixes carries the step 3 labels.
	DynamicPrefixes []dnswire.Prefix
	// Verdicts holds the full per-prefix detail.
	Verdicts map[dnswire.Prefix]PrefixVerdict
}

// IsDynamic reports whether the heuristic labelled p dynamic.
func (r *Result) IsDynamic(p dnswire.Prefix) bool {
	v, ok := r.Verdicts[p]
	return ok && v.Dynamic
}

// Analyze runs the heuristic over a per-/24 daily count series.
func Analyze(series *dataset.CountSeries, cfg Config) *Result {
	res := &Result{
		Config:   cfg,
		Verdicts: make(map[dnswire.Prefix]PrefixVerdict, len(series.Counts)),
	}
	for p, row := range series.Counts {
		seen := false
		maxDaily := 0
		for _, c := range row {
			if c > 0 {
				seen = true
			}
			if c > maxDaily {
				maxDaily = c
			}
		}
		if !seen {
			continue
		}
		res.TotalPrefixes++
		v := PrefixVerdict{Prefix: p, MaxDaily: maxDaily}
		if maxDaily <= cfg.MinAddresses {
			res.Verdicts[p] = v
			continue
		}
		v.Considered = true
		res.ConsideredPrefixes++
		for i := 1; i < len(row); i++ {
			diff := row[i] - row[i-1]
			if diff < 0 {
				diff = -diff
			}
			changePct := 100 * float64(diff) / float64(maxDaily)
			if changePct > cfg.ChangePercent {
				v.ChangeDays++
			}
		}
		if v.ChangeDays >= cfg.MinChangeDays {
			v.Dynamic = true
			res.DynamicPrefixes = append(res.DynamicPrefixes, p)
		}
		res.Verdicts[p] = v
	}
	sort.Slice(res.DynamicPrefixes, func(i, j int) bool {
		return res.DynamicPrefixes[i].Addr.Uint32() < res.DynamicPrefixes[j].Addr.Uint32()
	})
	return res
}

// AnnouncedPrefix associates an announced (routed) prefix with the dynamic
// fraction of its /24 subprefixes — the Figure 1 data.
type AnnouncedPrefix struct {
	Prefix dnswire.Prefix
	// TotalSlash24s is the number of /24s in the announced prefix.
	TotalSlash24s int
	// DynamicSlash24s is how many were labelled dynamic.
	DynamicSlash24s int
}

// DynamicFraction returns the percentage of /24s that are dynamic.
func (a AnnouncedPrefix) DynamicFraction() float64 {
	if a.TotalSlash24s == 0 {
		return 0
	}
	return 100 * float64(a.DynamicSlash24s) / float64(a.TotalSlash24s)
}

// MapToAnnounced maps each dynamic /24 to its most-specific covering
// announced prefix and aggregates per announced prefix. announced plays the
// role of the global routing table.
func MapToAnnounced(res *Result, announced []dnswire.Prefix) []AnnouncedPrefix {
	// Sort by specificity (longest first) for most-specific matching.
	sorted := append([]dnswire.Prefix(nil), announced...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Bits > sorted[j].Bits })

	agg := make(map[dnswire.Prefix]*AnnouncedPrefix)
	for _, dp := range res.DynamicPrefixes {
		for _, ap := range sorted {
			if ap.Contains(dp.Addr) {
				entry, ok := agg[ap]
				if !ok {
					entry = &AnnouncedPrefix{
						Prefix:        ap,
						TotalSlash24s: len(ap.Slash24s()),
					}
					agg[ap] = entry
				}
				entry.DynamicSlash24s++
				break
			}
		}
	}
	out := make([]AnnouncedPrefix, 0, len(agg))
	for _, e := range agg {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix.Bits != out[j].Prefix.Bits {
			return out[i].Prefix.Bits < out[j].Prefix.Bits
		}
		return out[i].Prefix.Addr.Uint32() < out[j].Prefix.Addr.Uint32()
	})
	return out
}

// FractionDistribution groups announced prefixes by size and summarizes the
// distribution of dynamic fractions per size — min, median, max — the ticks
// of Figure 1.
type FractionDistribution struct {
	Bits                      int
	Count                     int
	MinPct, MedianPct, MaxPct float64
}

// DistributionBySize computes Figure 1's per-size distribution.
func DistributionBySize(entries []AnnouncedPrefix) []FractionDistribution {
	bySize := make(map[int][]float64)
	for _, e := range entries {
		bySize[e.Prefix.Bits] = append(bySize[e.Prefix.Bits], e.DynamicFraction())
	}
	var out []FractionDistribution
	for bits, fracs := range bySize {
		sort.Float64s(fracs)
		out = append(out, FractionDistribution{
			Bits:      bits,
			Count:     len(fracs),
			MinPct:    fracs[0],
			MedianPct: fracs[len(fracs)/2],
			MaxPct:    fracs[len(fracs)-1],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bits < out[j].Bits })
	return out
}
