// Package simclock provides virtual time for simulations.
//
// Every subsystem in this repository that needs to know the time or to
// schedule future work does so through a Clock. Two implementations are
// provided: Real, which delegates to the time package, and Simulated, which
// advances only when told to. The Simulated clock lets the longitudinal
// experiments of the paper (two years of daily reverse-DNS snapshots) run in
// seconds while preserving exact timing semantics such as DHCP lease expiry
// and measurement back-off schedules.
package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts the passage of time.
//
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// AfterFunc schedules f to run when d has elapsed on this clock and
	// returns a Timer that can cancel the call.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a handle to a scheduled function call.
type Timer interface {
	// Stop cancels the timer. It reports whether the call was prevented
	// from running. Stopping an already-fired or stopped timer returns
	// false.
	Stop() bool
}

// Real is a Clock backed by the time package. The zero value is ready to use.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (r realTimer) Stop() bool { return r.t.Stop() }

// Simulated is a Clock whose time only moves when Advance or Run is called.
// Scheduled functions run synchronously, in timestamp order, on the
// goroutine that advances the clock. Create one with NewSimulated.
type Simulated struct {
	mu      sync.Mutex
	now     time.Time
	queue   eventQueue
	nextSeq uint64
	running bool
}

// NewSimulated returns a Simulated clock whose current time is start.
func NewSimulated(start time.Time) *Simulated {
	return &Simulated{now: start}
}

// Now implements Clock.
func (s *Simulated) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// AfterFunc implements Clock. A non-positive duration schedules the call at
// the current instant; it still will not run until the clock is advanced.
func (s *Simulated) AfterFunc(d time.Duration, f func()) Timer {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ev := &event{
		when: s.now.Add(d),
		seq:  s.nextSeq,
		fn:   f,
		sim:  s,
	}
	s.nextSeq++
	heap.Push(&s.queue, ev)
	return ev
}

// Advance moves the clock forward by d, running every scheduled function
// whose deadline falls within the window, in order.
func (s *Simulated) Advance(d time.Duration) {
	s.mu.Lock()
	target := s.now.Add(d)
	s.mu.Unlock()
	s.AdvanceTo(target)
}

// AdvanceTo moves the clock forward to target, running every scheduled
// function whose deadline is at or before target, in order. Functions
// scheduled during the advance are run too if they fall inside the window.
// Moving backwards is a no-op.
func (s *Simulated) AdvanceTo(target time.Time) {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		panic("simclock: re-entrant Advance")
	}
	s.running = true
	for {
		if len(s.queue) == 0 || s.queue[0].when.After(target) {
			break
		}
		ev := heap.Pop(&s.queue).(*event)
		if ev.stopped {
			continue
		}
		if ev.when.After(s.now) {
			s.now = ev.when
		}
		ev.fired = true
		fn := ev.fn
		s.mu.Unlock()
		fn()
		s.mu.Lock()
	}
	if target.After(s.now) {
		s.now = target
	}
	s.running = false
	s.mu.Unlock()
}

// RunUntilIdle runs scheduled functions until the queue is empty and reports
// the time of the last event run. Use with care: self-rescheduling events
// make this endless, so it is intended for bounded simulations.
func (s *Simulated) RunUntilIdle() time.Time {
	for {
		s.mu.Lock()
		if len(s.queue) == 0 {
			now := s.now
			s.mu.Unlock()
			return now
		}
		next := s.queue[0].when
		s.mu.Unlock()
		s.AdvanceTo(next)
	}
}

// Pending reports the number of scheduled, unfired, unstopped events.
func (s *Simulated) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ev := range s.queue {
		if !ev.stopped {
			n++
		}
	}
	return n
}

// event is a scheduled function call on a Simulated clock. It implements
// Timer.
type event struct {
	when    time.Time
	seq     uint64
	fn      func()
	sim     *Simulated
	index   int
	stopped bool
	fired   bool
}

// Stop implements Timer.
func (e *event) Stop() bool {
	e.sim.mu.Lock()
	defer e.sim.mu.Unlock()
	if e.stopped || e.fired {
		return false
	}
	e.stopped = true
	return true
}

// eventQueue is a min-heap of events ordered by (when, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].when.Equal(q[j].when) {
		return q[i].when.Before(q[j].when)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Ticker repeatedly invokes a function at a fixed interval on a Clock until
// stopped. It is a convenience built on AfterFunc, used by sweep-style
// measurement loops.
type Ticker struct {
	mu      sync.Mutex
	clock   Clock
	d       time.Duration
	fn      func(time.Time)
	timer   Timer
	stopped bool
}

// NewTicker schedules fn to run every d on clock, starting one interval from
// now. fn receives the tick time.
func NewTicker(clock Clock, d time.Duration, fn func(time.Time)) *Ticker {
	t := &Ticker{clock: clock, d: d, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.timer = t.clock.AfterFunc(t.d, func() {
		t.mu.Lock()
		stopped := t.stopped
		t.mu.Unlock()
		if stopped {
			return
		}
		t.fn(t.clock.Now())
		t.mu.Lock()
		if !t.stopped {
			t.arm()
		}
		t.mu.Unlock()
	})
}

// Stop prevents future ticks. It does not interrupt a tick in progress.
func (t *Ticker) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stopped = true
	if t.timer != nil {
		t.timer.Stop()
	}
}
