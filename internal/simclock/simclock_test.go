package simclock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)

func TestSimulatedNow(t *testing.T) {
	c := NewSimulated(epoch)
	if got := c.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
	c.Advance(time.Hour)
	if got := c.Now(); !got.Equal(epoch.Add(time.Hour)) {
		t.Fatalf("Now() after advance = %v, want %v", got, epoch.Add(time.Hour))
	}
}

func TestAfterFuncRunsInOrder(t *testing.T) {
	c := NewSimulated(epoch)
	var order []int
	c.AfterFunc(3*time.Minute, func() { order = append(order, 3) })
	c.AfterFunc(1*time.Minute, func() { order = append(order, 1) })
	c.AfterFunc(2*time.Minute, func() { order = append(order, 2) })
	c.Advance(5 * time.Minute)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestAfterFuncSameDeadlineFIFO(t *testing.T) {
	c := NewSimulated(epoch)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.AfterFunc(time.Minute, func() { order = append(order, i) })
	}
	c.Advance(time.Minute)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestAfterFuncNotRunBeforeDeadline(t *testing.T) {
	c := NewSimulated(epoch)
	ran := false
	c.AfterFunc(time.Hour, func() { ran = true })
	c.Advance(59 * time.Minute)
	if ran {
		t.Fatal("function ran before its deadline")
	}
	c.Advance(time.Minute)
	if !ran {
		t.Fatal("function did not run at its deadline")
	}
}

func TestTimerStop(t *testing.T) {
	c := NewSimulated(epoch)
	ran := false
	timer := c.AfterFunc(time.Minute, func() { ran = true })
	if !timer.Stop() {
		t.Fatal("first Stop() = false, want true")
	}
	if timer.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	c.Advance(2 * time.Minute)
	if ran {
		t.Fatal("stopped timer still fired")
	}
}

func TestStopAfterFire(t *testing.T) {
	c := NewSimulated(epoch)
	timer := c.AfterFunc(time.Minute, func() {})
	c.Advance(time.Minute)
	if timer.Stop() {
		t.Fatal("Stop() after firing = true, want false")
	}
}

func TestNegativeDurationRunsOnNextAdvance(t *testing.T) {
	c := NewSimulated(epoch)
	ran := false
	c.AfterFunc(-time.Second, func() { ran = true })
	if ran {
		t.Fatal("function ran without an advance")
	}
	c.Advance(0)
	if !ran {
		t.Fatal("function did not run on zero advance")
	}
}

func TestNowDuringCallback(t *testing.T) {
	c := NewSimulated(epoch)
	var seen time.Time
	c.AfterFunc(10*time.Minute, func() { seen = c.Now() })
	c.Advance(time.Hour)
	if want := epoch.Add(10 * time.Minute); !seen.Equal(want) {
		t.Fatalf("Now() during callback = %v, want %v", seen, want)
	}
}

func TestRescheduleDuringAdvance(t *testing.T) {
	c := NewSimulated(epoch)
	var times []time.Duration
	var step func()
	step = func() {
		times = append(times, c.Now().Sub(epoch))
		if len(times) < 5 {
			c.AfterFunc(time.Minute, step)
		}
	}
	c.AfterFunc(time.Minute, step)
	c.Advance(time.Hour)
	if len(times) != 5 {
		t.Fatalf("got %d invocations, want 5", len(times))
	}
	for i, d := range times {
		if want := time.Duration(i+1) * time.Minute; d != want {
			t.Fatalf("invocation %d at %v, want %v", i, d, want)
		}
	}
}

func TestEventBeyondWindowStaysQueued(t *testing.T) {
	c := NewSimulated(epoch)
	ran := 0
	c.AfterFunc(time.Minute, func() {
		ran++
		c.AfterFunc(2*time.Hour, func() { ran++ })
	})
	c.Advance(time.Hour)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if c.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", c.Pending())
	}
	c.Advance(2 * time.Hour)
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
}

func TestRunUntilIdle(t *testing.T) {
	c := NewSimulated(epoch)
	count := 0
	c.AfterFunc(time.Minute, func() { count++ })
	c.AfterFunc(time.Hour, func() { count++ })
	end := c.RunUntilIdle()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if !end.Equal(epoch.Add(time.Hour)) {
		t.Fatalf("end = %v, want %v", end, epoch.Add(time.Hour))
	}
}

func TestTicker(t *testing.T) {
	c := NewSimulated(epoch)
	var ticks []time.Time
	tk := NewTicker(c, 10*time.Minute, func(now time.Time) { ticks = append(ticks, now) })
	c.Advance(35 * time.Minute)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3", len(ticks))
	}
	for i, tick := range ticks {
		if want := epoch.Add(time.Duration(i+1) * 10 * time.Minute); !tick.Equal(want) {
			t.Fatalf("tick %d at %v, want %v", i, tick, want)
		}
	}
	tk.Stop()
	c.Advance(time.Hour)
	if len(ticks) != 3 {
		t.Fatalf("ticker fired after Stop: %d ticks", len(ticks))
	}
}

func TestTickerStopDuringCallback(t *testing.T) {
	c := NewSimulated(epoch)
	count := 0
	var tk *Ticker
	tk = NewTicker(c, time.Minute, func(time.Time) {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	c.Advance(time.Hour)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestSimulatedConcurrentAfterFunc(t *testing.T) {
	c := NewSimulated(epoch)
	var mu sync.Mutex
	count := 0
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.AfterFunc(time.Minute, func() {
				mu.Lock()
				count++
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	c.Advance(time.Minute)
	if count != 50 {
		t.Fatalf("count = %d, want 50", count)
	}
}

func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v outside [%v, %v]", got, before, after)
	}
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Real.AfterFunc never fired")
	}
}

func TestRealTimerStop(t *testing.T) {
	var c Clock = Real{}
	timer := c.AfterFunc(time.Hour, func() { t.Error("should not fire") })
	if !timer.Stop() {
		t.Fatal("Stop() = false, want true")
	}
}
