package scanengine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/simclock"
	"rdnsprivacy/internal/telemetry"
)

// Scanner is the sharded snapshot engine. Create one with New; it is safe
// to reuse across sweeps (successive sweeps diff against each other) but
// runs one sweep at a time — concurrent Scan calls serialize.
type Scanner struct {
	src     Source
	shardSc ShardSource // non-nil when src enumerates shards in bulk

	workers     int
	shardBits   int
	negTTL      time.Duration
	clock       simclock.Clock
	buffer      int
	probeEvents bool
	rate        *rateGate
	resil       *ResilienceConfig
	met         *engineMetrics
	tracer      *telemetry.Tracer

	cache *negCache

	scanMu sync.Mutex // serializes sweeps
	prev   RecordSet  // records of the last complete sweep

	mu   sync.Mutex // guards subs
	subs []*subscriber
}

// Option tunes a Scanner.
type Option func(*Scanner)

// WithWorkers bounds the resolver worker pool. Default: GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(s *Scanner) {
		if n > 0 {
			s.workers = n
		}
	}
}

// WithShardBits sets the shard granularity for per-address probing:
// targets coarser than /bits are split into /bits shards. Default 16
// (per-/16 shards). Clamped to [8, 24].
func WithShardBits(bits int) Option {
	return func(s *Scanner) {
		if bits < 8 {
			bits = 8
		}
		if bits > 24 {
			bits = 24
		}
		s.shardBits = bits
	}
}

// WithNegativeTTL enables the negative-response cache: authoritative
// absences are remembered for ttl and not re-probed until it lapses.
// Zero (the default) disables the cache.
func WithNegativeTTL(ttl time.Duration) Option {
	return func(s *Scanner) { s.negTTL = ttl }
}

// WithClock sets the clock used for snapshot timestamps and negative-cache
// expiry. Default: the real clock.
func WithClock(c simclock.Clock) Option {
	return func(s *Scanner) {
		if c != nil {
			s.clock = c
		}
	}
}

// WithBuffer sets the capacity of the bounded channel between the lookup
// and merge stages (and of event subscription channels). Lookups stall
// when the merge stage falls this far behind — backpressure, not unbounded
// queueing. Default 1024.
func WithBuffer(n int) Option {
	return func(s *Scanner) {
		if n > 0 {
			s.buffer = n
		}
	}
}

// WithResultEvents streams every probe result (including absences and
// errors) to event subscribers, not just record deltas and shard
// progress. Full-sweep consumers that print per-address output want this;
// it is off by default because a /16 sweep emits 65k events.
func WithResultEvents() Option {
	return func(s *Scanner) { s.probeEvents = true }
}

// WithRate caps aggregate probe transmission across all workers, in
// queries per second (token-slot, wall-clock). Zero means unlimited. The
// paper rate-limits its supplemental scans "to reduce the impact of our
// measurement on the DNS name servers" (Section 6.1).
func WithRate(qps int) Option {
	return func(s *Scanner) {
		if qps > 0 {
			s.rate = &rateGate{interval: time.Second / time.Duration(qps)}
		}
	}
}

// New creates a Scanner over src. If src also implements ShardSource the
// engine enumerates shards in bulk instead of probing every address.
func New(src Source, opts ...Option) *Scanner {
	s := &Scanner{
		src:       src,
		workers:   runtime.GOMAXPROCS(0),
		shardBits: 16,
		clock:     simclock.Real{},
		buffer:    1024,
	}
	if ss, ok := src.(ShardSource); ok {
		s.shardSc = ss
	}
	for _, o := range opts {
		o(s)
	}
	if s.negTTL > 0 {
		s.cache = newNegCache(s.clock, s.negTTL)
	}
	return s
}

// Request describes one sweep.
type Request struct {
	// Targets is the address space to sweep.
	Targets []dnswire.Prefix
	// At is the instant the snapshot models (meaningful for bulk
	// snapshot sources). Zero means the scanner clock's now.
	At time.Time
	// Baseline overrides the diff base for this sweep. Nil means the
	// previous complete sweep's records.
	Baseline RecordSet
}

// Stats tallies a sweep.
type Stats struct {
	// Probes is the number of addresses resolved (enumeration sources
	// count emitted records).
	Probes uint64
	// Found is the number of present records.
	Found uint64
	// Absent is the number of authoritative absences.
	Absent uint64
	// Errors is the number of resolution errors.
	Errors uint64
	// CacheHits is the number of probes served from the negative cache.
	CacheHits uint64
	// Retries is the number of scan-level retry lookups (resilience
	// layer only).
	Retries uint64
	// Hedges is the number of hedged lookups launched (resilience layer
	// only).
	Hedges uint64
	// Skipped is the number of addresses abandoned unprobed by graceful
	// degradation.
	Skipped uint64
}

// ShardStatus is the progress of one shard.
type ShardStatus struct {
	Shard  dnswire.Prefix
	Probes int
	Found  int
	Errors int
	// Skipped counts addresses abandoned unprobed when the shard
	// degraded (resilience layer only).
	Skipped int
	Done    bool
}

// Snapshot is the product of one sweep.
type Snapshot struct {
	// At is the instant the snapshot models.
	At time.Time
	// Elapsed is the sweep duration on the scanner's clock.
	Elapsed time.Duration
	// Records is the merged record set.
	Records RecordSet
	// Stats tallies the sweep.
	Stats Stats
	// Shards is per-shard progress, in plan order.
	Shards []ShardStatus
	// Changes are the deltas against the baseline (the previous complete
	// sweep unless Request.Baseline overrode it), sorted by address. Nil
	// when there was no baseline or the sweep was cancelled before
	// completing (a partial sweep cannot distinguish "removed" from
	// "not yet probed").
	Changes []Change
	// Partial reports the sweep was cancelled before covering every
	// shard.
	Partial bool
	// Health is the resilience layer's structured account of the sweep
	// (nil unless WithResilience is configured).
	Health *HealthReport
	// Degraded reports at least one shard exhausted its circuit-breaker
	// budget and was partially skipped; records under Health.Degraded
	// prefixes are incomplete, and removal inference excludes them.
	Degraded bool
}

// EventKind classifies a stream event.
type EventKind int

// Event kinds.
const (
	// EventSweepStart opens a sweep.
	EventSweepStart EventKind = iota
	// EventResult is one probe result (only with WithResultEvents).
	EventResult
	// EventChange is one incremental delta against the baseline.
	EventChange
	// EventShardDone reports a completed shard with progress.
	EventShardDone
	// EventSweepDone closes a sweep and carries the snapshot.
	EventSweepDone
)

// Event is one entry in the Events stream.
type Event struct {
	Kind  EventKind
	At    time.Time
	Shard dnswire.Prefix // EventShardDone
	// Result is set for EventResult.
	Result Result
	// Change is set for EventChange.
	Change Change
	// ShardsDone/ShardsTotal report sweep progress (EventShardDone,
	// EventSweepDone).
	ShardsDone, ShardsTotal int
	// Snapshot is set for EventSweepDone.
	Snapshot *Snapshot
}

type subscriber struct {
	ch  chan Event
	ctx context.Context
}

// Events subscribes to the scanner's event stream: sweep lifecycle, shard
// progress, incremental record deltas, and (with WithResultEvents) every
// probe result. The channel is buffered to the scanner's buffer size; a
// subscriber that stops draining stalls sweeps (backpressure) until its
// ctx is cancelled, at which point it is dropped and its channel closed
// at the next emission.
func (s *Scanner) Events(ctx context.Context) <-chan Event {
	sub := &subscriber{ch: make(chan Event, s.buffer), ctx: ctx}
	s.mu.Lock()
	s.subs = append(s.subs, sub)
	s.mu.Unlock()
	return sub.ch
}

func (s *Scanner) emit(ev Event) {
	s.mu.Lock()
	subs := make([]*subscriber, len(s.subs))
	copy(subs, s.subs)
	s.mu.Unlock()
	for _, sub := range subs {
		select {
		case sub.ch <- ev:
		case <-sub.ctx.Done():
			s.dropSub(sub)
		}
	}
}

func (s *Scanner) dropSub(sub *subscriber) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, x := range s.subs {
		if x == sub {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			close(sub.ch)
			return
		}
	}
}

// mergeMsg travels the bounded channel between the lookup and merge
// stages.
type mergeMsg struct {
	shard   int
	res     Result
	done    bool // shard finished; tally below is authoritative
	tally   ShardStatus
	scanErr error        // bulk enumeration failure
	health  *ShardHealth // resilience ledger, when the layer is on
}

// Scan executes one sweep and returns its snapshot. On context
// cancellation it returns the partial snapshot alongside ctx.Err(); all
// workers are reaped before it returns — a cancelled sweep leaks no
// goroutines.
func (s *Scanner) Scan(ctx context.Context, req Request) (*Snapshot, error) {
	s.scanMu.Lock()
	defer s.scanMu.Unlock()

	shards := planShards(req.Targets, s.shardBits, s.shardSc == nil)
	at := req.At
	if at.IsZero() {
		at = s.clock.Now()
	}
	started := s.clock.Now()

	snap := &Snapshot{
		At:      at,
		Records: make(RecordSet),
		Shards:  make([]ShardStatus, len(shards)),
	}
	for i, sh := range shards {
		snap.Shards[i].Shard = sh
	}
	baseline := req.Baseline
	if baseline == nil {
		baseline = s.prev
	}

	if m := s.met; m != nil {
		m.sweeps.Inc()
	}
	s.emit(Event{Kind: EventSweepStart, At: at, ShardsTotal: len(shards)})

	// Lookup stage: a bounded pool of workers draining the shard queue.
	shardCh := make(chan int, len(shards))
	for i := range shards {
		shardCh <- i
	}
	close(shardCh)
	out := make(chan mergeMsg, s.buffer)
	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for si := range shardCh {
				s.runShard(ctx, si, shards[si], at, out)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()

	// Merge stage: single consumer; always drains until the workers
	// close the channel, so cancellation cannot leak goroutines.
	var changes []Change
	var healths []ShardHealth
	var totals ResilienceTotals
	var degraded []dnswire.Prefix
	if s.resil != nil {
		healths = make([]ShardHealth, len(shards))
		for i, sh := range shards {
			healths[i].Shard = sh
		}
	}
	shardsDone := 0
	for msg := range out {
		if msg.done {
			st := &snap.Shards[msg.shard]
			st.Probes = msg.tally.Probes
			st.Found = msg.tally.Found
			st.Errors = msg.tally.Errors
			st.Skipped = msg.tally.Skipped
			st.Done = msg.scanErr == nil
			snap.Stats.Probes += uint64(msg.tally.Probes)
			snap.Stats.Found += uint64(msg.tally.Found)
			snap.Stats.Errors += uint64(msg.tally.Errors)
			snap.Stats.Absent += uint64(msg.tally.Probes - msg.tally.Found - msg.tally.Errors)
			snap.Stats.Skipped += uint64(msg.tally.Skipped)
			if msg.health != nil && healths != nil {
				// One accumulation here feeds Stats, HealthReport.Totals
				// and the degraded list; the exported telemetry counters
				// tick at the event sites themselves, so the report and
				// /metrics agree by construction, not by parallel
				// bookkeeping.
				h := *msg.health
				h.Probes = msg.tally.Probes
				h.Found = msg.tally.Found
				h.Errors = msg.tally.Errors
				h.Skipped = msg.tally.Skipped
				healths[msg.shard] = h
				totals.Attempts += h.Attempts
				totals.Retries += h.Retries
				totals.Throttled += h.Throttled
				totals.Hedges += h.Hedges
				totals.HedgeWins += h.HedgeWins
				totals.Skipped += h.Skipped
				for _, ev := range h.Breaker {
					if ev.State == BreakerOpen {
						totals.BreakerOpens++
					}
				}
				if h.Degraded {
					degraded = append(degraded, h.Shard)
				}
			}
			shardsDone++
			s.emit(Event{
				Kind: EventShardDone, At: s.clock.Now(), Shard: shards[msg.shard],
				ShardsDone: shardsDone, ShardsTotal: len(shards),
			})
			continue
		}
		res := msg.res
		if res.Cached {
			snap.Stats.CacheHits++
		}
		if s.probeEvents {
			s.emit(Event{Kind: EventResult, At: s.clock.Now(), Result: res})
		}
		if !res.Found {
			continue
		}
		snap.Records[res.IP] = res.Name
		if baseline != nil {
			if old, ok := baseline[res.IP]; !ok {
				ch := Change{Kind: RecordAdded, IP: res.IP, New: res.Name}
				changes = append(changes, ch)
				s.emit(Event{Kind: EventChange, At: s.clock.Now(), Change: ch})
			} else if old != res.Name {
				ch := Change{Kind: RecordChanged, IP: res.IP, Old: old, New: res.Name}
				changes = append(changes, ch)
				s.emit(Event{Kind: EventChange, At: s.clock.Now(), Change: ch})
			}
		}
	}

	snap.Partial = ctx.Err() != nil
	var degradedIdx *shardIndex
	if healths != nil {
		// Stats and the report share the totals accumulated in the merge
		// loop — there is no second tally to drift from.
		snap.Stats.Retries = uint64(totals.Retries)
		snap.Stats.Hedges = uint64(totals.Hedges)
		snap.Health = &HealthReport{Shards: healths, Degraded: degraded, Totals: totals}
		snap.Degraded = len(degraded) > 0
		if snap.Degraded {
			if m := s.met; m != nil {
				m.shardsDegraded.Add(uint64(len(degraded)))
			}
			degradedIdx = newShardIndex(degraded)
		}
	}
	if !snap.Partial && baseline != nil {
		// Complete coverage: every baseline record under the targets
		// that was not re-observed has been removed. Degraded shards were
		// not fully probed, so absence there proves nothing and is
		// excluded.
		index := newShardIndex(shards)
		excluded := 0
		for ip, old := range baseline {
			if _, ok := snap.Records[ip]; ok || !index.contains(ip) {
				continue
			}
			if degradedIdx != nil && degradedIdx.contains(ip) {
				excluded++
				continue
			}
			ch := Change{Kind: RecordRemoved, IP: ip, Old: old}
			changes = append(changes, ch)
			s.emit(Event{Kind: EventChange, At: s.clock.Now(), Change: ch})
		}
		if excluded > 0 {
			// degradedIdx is only built when snap.Health exists.
			snap.Health.RemovalsExcluded = excluded
			if m := s.met; m != nil {
				m.removalsExcluded.Add(uint64(excluded))
			}
		}
	}
	if baseline != nil && !snap.Partial {
		sortChanges(changes)
		snap.Changes = changes
	}
	if !snap.Partial {
		s.prev = snap.Records
	}
	snap.Elapsed = s.clock.Now().Sub(started)
	if m := s.met; m != nil {
		m.sweepSeconds.Observe(snap.Elapsed.Seconds())
	}

	s.emit(Event{
		Kind: EventSweepDone, At: s.clock.Now(), Snapshot: snap,
		ShardsDone: shardsDone, ShardsTotal: len(shards),
	})
	if err := ctx.Err(); err != nil {
		return snap, fmt.Errorf("scanengine: sweep cancelled after %d/%d shards: %w",
			shardsDone, len(shards), err)
	}
	return snap, nil
}

// Previous returns the record set of the last complete sweep (nil before
// the first), the baseline for the next sweep's incremental diff.
func (s *Scanner) Previous() RecordSet {
	s.scanMu.Lock()
	defer s.scanMu.Unlock()
	return s.prev
}

// runShard resolves one shard and reports results plus a closing tally.
func (s *Scanner) runShard(ctx context.Context, si int, shard dnswire.Prefix, at time.Time, out chan<- mergeMsg) {
	var tally ShardStatus
	resil := s.newShardResil(shard)
	met := s.met
	var sp *telemetry.Span
	if s.tracer != nil {
		// The span ID derives from the tracer seed and the shard address,
		// never from scheduling, so replayed sweeps trace identically.
		sp = s.tracer.StartSpan("shard", shard.String(), uint64(shard.Addr.Uint32()), uint64(shard.Bits))
		defer sp.End()
	}
	if resil != nil {
		resil.met = met
		resil.span = sp
	}
	if met != nil {
		met.shardsInflight.Add(1)
		defer met.shardsInflight.Add(-1)
	}
	send := func(msg mergeMsg) bool {
		if met != nil {
			// Backpressure visibility: note sends that would block on the
			// merge stage before waiting on it. Off the instrumented path
			// this extra select does not exist.
			select {
			case out <- msg:
				return true
			default:
				met.mergeStalls.Inc()
			}
		}
		select {
		case out <- msg:
			return true
		case <-ctx.Done():
			return false
		}
	}
	defer func() {
		// The closing tally must not be lost even under cancellation:
		// the merger drains until workers exit.
		msg := mergeMsg{shard: si, done: true, tally: tally, scanErr: ctx.Err()}
		if resil != nil {
			msg.health = &resil.health
		}
		out <- msg
	}()

	if s.shardSc != nil {
		err := s.shardSc.ScanShard(ctx, shard, at, func(res Result) {
			tally.Probes++
			code := TraceProbeAbsent
			if res.Found {
				tally.Found++
				code = TraceProbeFound
			} else if res.Err != nil {
				tally.Errors++
				code = TraceProbeError
			}
			if met != nil {
				met.probes.Inc()
				countOutcome(met, code)
			}
			sp.Event("probe", code)
			if res.Corr != 0 {
				sp.Event("corr", res.Corr)
			}
			if res.Found || res.Err != nil || s.probeEvents {
				send(mergeMsg{shard: si, res: res})
			}
		})
		if err != nil && ctx.Err() == nil {
			tally.Errors++
			if met != nil {
				met.errs.Inc()
			}
		}
		return
	}

	n := shard.NumAddresses()
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return
		}
		ip := shard.Nth(i)
		var res Result
		if s.cache.hit(ip) {
			res = Result{IP: ip, Cached: true}
			if met != nil {
				met.cacheHits.Inc()
			}
		} else {
			if met != nil && s.cache != nil {
				met.cacheMisses.Inc()
			}
			if err := s.rate.wait(ctx); err != nil {
				return
			}
			var t0 time.Time
			if met != nil {
				t0 = s.clock.Now()
			}
			if resil != nil {
				res = resil.lookup(ctx, s, ip, i)
			} else {
				res = s.src.LookupPTR(ctx, ip)
				res.IP = ip
			}
			if met != nil {
				met.queries.Inc()
				met.probeSeconds.Observe(s.clock.Now().Sub(t0).Seconds())
			}
			if res.Absent() {
				s.cache.put(ip)
			}
		}
		tally.Probes++
		code := TraceProbeAbsent
		switch {
		case res.Found:
			tally.Found++
			code = TraceProbeFound
		case res.Err != nil:
			tally.Errors++
			code = TraceProbeError
		case res.Cached:
			code = TraceProbeCached
		}
		if met != nil {
			met.probes.Inc()
			countOutcome(met, code)
		}
		sp.Event("probe", code)
		if res.Corr != 0 {
			sp.Event("corr", res.Corr)
		}
		if res.Found || res.Err != nil || res.Cached || s.probeEvents {
			if !send(mergeMsg{shard: si, res: res}) {
				return
			}
		}
		if resil != nil && resil.degraded {
			// Graceful degradation: the breaker budget for this shard is
			// exhausted; abandon its remaining addresses and account for
			// them instead of grinding through more open/probe cycles.
			tally.Skipped = n - i - 1
			if met != nil {
				met.skipped.Add(uint64(tally.Skipped))
			}
			return
		}
	}
}

// countOutcome buckets one probe outcome into the found/error/absent
// counters; cached hits are authoritative absences, so they count absent,
// keeping scan_absent_total equal to Stats.Absent.
func countOutcome(met *engineMetrics, code uint64) {
	switch code {
	case TraceProbeFound:
		met.found.Inc()
	case TraceProbeError:
		met.errs.Inc()
	default:
		met.absent.Inc()
	}
}

// planShards partitions targets into work units. With split set (per-IP
// probing) targets coarser than /bits are cut into per-/bits shards;
// bulk-enumeration sources receive targets whole, since enumeration cost
// is per target, not per address.
func planShards(targets []dnswire.Prefix, bits int, split bool) []dnswire.Prefix {
	var out []dnswire.Prefix
	for _, t := range targets {
		if !split || t.Bits >= bits {
			out = append(out, t)
			continue
		}
		n := 1 << (bits - t.Bits)
		base := t.Addr.Uint32()
		step := uint32(1) << (32 - bits)
		for i := 0; i < n; i++ {
			out = append(out, dnswire.Prefix{
				Addr: dnswire.IPv4FromUint32(base + uint32(i)*step),
				Bits: bits,
			})
		}
	}
	return out
}

// shardIndex answers "is this address inside the sweep's coverage" in
// O(log n), for removal inference over large baselines.
type shardIndex struct {
	shards []dnswire.Prefix // sorted by base address
}

func newShardIndex(shards []dnswire.Prefix) *shardIndex {
	sorted := make([]dnswire.Prefix, len(shards))
	copy(sorted, shards)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Addr.Uint32() < sorted[j].Addr.Uint32()
	})
	return &shardIndex{shards: sorted}
}

func (x *shardIndex) contains(ip dnswire.IPv4) bool {
	v := ip.Uint32()
	i := sort.Search(len(x.shards), func(i int) bool {
		return x.shards[i].Addr.Uint32() > v
	})
	return i > 0 && x.shards[i-1].Contains(ip)
}

// rateGate is a token-slot limiter shared by all workers (wall-clock).
type rateGate struct {
	mu       sync.Mutex
	interval time.Duration
	next     time.Time
}

func (g *rateGate) wait(ctx context.Context) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	now := time.Now()
	if g.next.Before(now) {
		g.next = now
	}
	wait := g.next.Sub(now)
	g.next = g.next.Add(g.interval)
	g.mu.Unlock()
	if wait <= 0 {
		return nil
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
