package scanengine

import (
	"sync"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/simclock"
)

// negCacheShards keeps lock contention low when eight-plus workers hammer
// the cache; addresses are spread by their /16 so a shard's worker mostly
// stays on one lock.
const negCacheShards = 64

// negCache remembers authoritative absences (NXDOMAIN / NODATA) so that
// NXDOMAIN-heavy static ranges are not re-probed on every sweep. Entries
// expire after a TTL; expired entries are dropped lazily on access and in
// bulk when a shard map grows past its high-water mark.
type negCache struct {
	clock simclock.Clock
	ttl   time.Duration
	shard [negCacheShards]negShard
}

type negShard struct {
	mu    sync.Mutex
	until map[dnswire.IPv4]time.Time
	sweep int // entries added since the last bulk expiry sweep
}

func newNegCache(clock simclock.Clock, ttl time.Duration) *negCache {
	return &negCache{clock: clock, ttl: ttl}
}

func (c *negCache) index(ip dnswire.IPv4) *negShard {
	return &c.shard[(uint(ip[0])<<8|uint(ip[1]))%negCacheShards]
}

// hit reports whether ip has a live negative entry.
func (c *negCache) hit(ip dnswire.IPv4) bool {
	if c == nil {
		return false
	}
	now := c.clock.Now()
	s := c.index(ip)
	s.mu.Lock()
	defer s.mu.Unlock()
	until, ok := s.until[ip]
	if !ok {
		return false
	}
	if now.After(until) {
		delete(s.until, ip) // TTL lapsed: invalidate on access
		return false
	}
	return true
}

// put records an authoritative absence for ip.
func (c *negCache) put(ip dnswire.IPv4) {
	if c == nil {
		return
	}
	now := c.clock.Now()
	s := c.index(ip)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.until == nil {
		s.until = make(map[dnswire.IPv4]time.Time)
	}
	s.until[ip] = now.Add(c.ttl)
	s.sweep++
	if s.sweep >= 4096 {
		s.sweep = 0
		for k, v := range s.until {
			if now.After(v) {
				delete(s.until, k)
			}
		}
	}
}

// Len reports the number of live entries (test hook; counts expired
// entries that have not been swept yet as dead).
func (c *negCache) Len() int {
	if c == nil {
		return 0
	}
	now := c.clock.Now()
	n := 0
	for i := range c.shard {
		s := &c.shard[i]
		s.mu.Lock()
		for _, v := range s.until {
			if !now.After(v) {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}
