package scanengine

import (
	"rdnsprivacy/internal/telemetry"
)

// Metric names the engine registers when WithTelemetry is configured.
// docs/telemetry.md documents each one.
const (
	// MetricProbes counts every address probed, including negative-cache
	// hits. Equals Stats.Probes summed across sweeps.
	MetricProbes = "scan_probes_total"
	// MetricQueries counts probes that reached the source (cache hits
	// excluded). Equals Stats.Probes - Stats.CacheHits.
	MetricQueries = "scan_queries_total"
	// MetricFound / MetricAbsent / MetricErrors split probe outcomes.
	MetricFound  = "scan_found_total"
	MetricAbsent = "scan_absent_total"
	MetricErrors = "scan_errors_total"
	// MetricCacheHits / MetricCacheMisses count negative-cache lookups
	// (only when WithNegativeTTL enables the cache).
	MetricCacheHits   = "scan_negcache_hits_total"
	MetricCacheMisses = "scan_negcache_misses_total"
	// MetricAttempts counts source lookups through the resilience layer,
	// retries and half-open probes included. Equals Totals.Attempts.
	MetricAttempts = "scan_attempts_total"
	// MetricRetries counts scan-level retries. Equals Totals.Retries.
	MetricRetries = "scan_retries_total"
	// MetricHedges / MetricHedgeWins count hedge lookups launched and
	// hedges that beat the primary. Timing-dependent: exclude from
	// deterministic comparisons, as HealthReport.Fingerprint does.
	MetricHedges    = "scan_hedges_total"
	MetricHedgeWins = "scan_hedge_wins_total"
	// MetricBreakerOpens / MetricBreakerHalfOpens / MetricBreakerCloses
	// count circuit-breaker state transitions. Opens equals
	// Totals.BreakerOpens.
	MetricBreakerOpens     = "scan_breaker_opens_total"
	MetricBreakerHalfOpens = "scan_breaker_halfopens_total"
	MetricBreakerCloses    = "scan_breaker_closes_total"
	// MetricThrottled counts probes paced by adaptive rate control.
	// Equals Totals.Throttled.
	MetricThrottled = "scan_throttled_total"
	// MetricSkipped counts addresses abandoned unprobed by graceful
	// degradation. Equals Totals.Skipped.
	MetricSkipped = "scan_skipped_total"
	// MetricMergeStalls counts lookup-stage sends that blocked because the
	// merge stage was behind (backpressure engaged). Scheduling-dependent:
	// exclude it from DeterministicDigest comparisons.
	MetricMergeStalls = "scan_merge_stalls_total"
	// MetricRemovalsExcluded counts baseline records whose removal
	// inference was suppressed because they sat under a degraded prefix.
	// Equals HealthReport.RemovalsExcluded.
	MetricRemovalsExcluded = "scan_removals_excluded_total"
	// MetricSweeps counts sweeps started; MetricShardsDegraded counts
	// shards that degraded.
	MetricSweeps         = "scan_sweeps_total"
	MetricShardsDegraded = "scan_shards_degraded_total"
	// MetricShardsInflight gauges shards currently being probed.
	MetricShardsInflight = "scan_shards_inflight"
	// MetricProbeSeconds is the per-probe source latency histogram (cache
	// hits excluded); MetricSweepSeconds the whole-sweep duration. Both
	// measure on the scanner's clock.
	MetricProbeSeconds = "scan_probe_seconds"
	MetricSweepSeconds = "scan_sweep_seconds"
)

// Trace event codes for the per-probe "probe" span events.
const (
	// TraceProbeAbsent..TraceProbeCached are the Code values of "probe"
	// span events, one per probed address in shard order.
	TraceProbeAbsent uint64 = iota
	TraceProbeFound
	TraceProbeError
	TraceProbeCached
)

// engineMetrics holds the engine's pre-resolved instrument handles.
// Instrument methods are nil-receiver safe; the struct pointer itself is
// nil when telemetry is off, so hot paths pay a single pointer test and
// skip clock reads entirely.
type engineMetrics struct {
	probes, queries, found, absent, errs *telemetry.Counter
	cacheHits, cacheMisses               *telemetry.Counter
	attempts, retries                    *telemetry.Counter
	hedges, hedgeWins                    *telemetry.Counter
	breakerOpens, breakerHalf, breakerCl *telemetry.Counter
	throttled, skipped, mergeStalls      *telemetry.Counter
	removalsExcluded                     *telemetry.Counter
	sweeps, shardsDegraded               *telemetry.Counter
	shardsInflight                       *telemetry.Gauge
	probeSeconds, sweepSeconds           *telemetry.Histogram
}

func newEngineMetrics(sink telemetry.Sink) *engineMetrics {
	return &engineMetrics{
		probes:           sink.Counter(MetricProbes),
		queries:          sink.Counter(MetricQueries),
		found:            sink.Counter(MetricFound),
		absent:           sink.Counter(MetricAbsent),
		errs:             sink.Counter(MetricErrors),
		cacheHits:        sink.Counter(MetricCacheHits),
		cacheMisses:      sink.Counter(MetricCacheMisses),
		attempts:         sink.Counter(MetricAttempts),
		retries:          sink.Counter(MetricRetries),
		hedges:           sink.Counter(MetricHedges),
		hedgeWins:        sink.Counter(MetricHedgeWins),
		breakerOpens:     sink.Counter(MetricBreakerOpens),
		breakerHalf:      sink.Counter(MetricBreakerHalfOpens),
		breakerCl:        sink.Counter(MetricBreakerCloses),
		throttled:        sink.Counter(MetricThrottled),
		skipped:          sink.Counter(MetricSkipped),
		mergeStalls:      sink.Counter(MetricMergeStalls),
		removalsExcluded: sink.Counter(MetricRemovalsExcluded),
		sweeps:           sink.Counter(MetricSweeps),
		shardsDegraded:   sink.Counter(MetricShardsDegraded),
		shardsInflight:   sink.Gauge(MetricShardsInflight),
		probeSeconds:     sink.Histogram(MetricProbeSeconds, telemetry.DefaultLatencyBuckets()),
		sweepSeconds:     sink.Histogram(MetricSweepSeconds, telemetry.DefaultLatencyBuckets()),
	}
}

// WithTelemetry registers the engine's instruments in sink and counts
// queries, outcomes, cache traffic, resilience events, and probe/sweep
// latency as sweeps run. The same counters feed Snapshot.Stats and
// HealthReport.Totals, so exported metrics and the structured report
// cannot drift apart. Without this option the engine records nothing and
// the hot path pays one nil test per site.
func WithTelemetry(sink telemetry.Sink) Option {
	return func(s *Scanner) {
		if sink != nil {
			s.met = newEngineMetrics(sink)
		}
	}
}

// WithTracer records one span per shard (name "shard", attr the prefix,
// ID derived from the tracer seed and the shard address) carrying a
// "probe" event per address in probe order (Code: TraceProbe*) and a
// "breaker" event per circuit-breaker transition (Code: the BreakerState).
// Span digests are time-independent, so two runs of the same seeded
// scenario trace identically — see telemetry.Tracer.Digest.
func WithTracer(tr *telemetry.Tracer) Option {
	return func(s *Scanner) { s.tracer = tr }
}
