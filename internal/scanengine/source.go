package scanengine

import (
	"context"
	"time"

	"rdnsprivacy/internal/dnswire"
)

// Result is the outcome of probing one address.
type Result struct {
	// IP is the probed address.
	IP dnswire.IPv4
	// Name is the PTR target when Found.
	Name dnswire.Name
	// Found reports a NOERROR answer carrying a PTR record. A Result
	// with Found=false and Err=nil is an authoritative absence
	// (NXDOMAIN / NODATA) — the record-absent signal, not an error.
	Found bool
	// Err is a resolution error (timeout, server failure, refusal),
	// nil for found and absent results.
	Err error
	// Cached reports the result was served from the negative cache
	// without touching the source.
	Cached bool
	// Meta carries a source-specific payload (e.g. the full
	// dnsclient.Response) for consumers that need more than the
	// engine's taxonomy.
	Meta any
	// Corr is the probe's cross-layer correlation ID (telemetry.CorrID),
	// zero when the source does not correlate. The engine copies it onto
	// the shard span as a "corr" event, linking the shard trace to the
	// client/fabric/server spans of the same probe.
	Corr uint64
}

// Absent reports an authoritative absence: no record and no error.
func (r Result) Absent() bool { return !r.Found && r.Err == nil }

// Source resolves one PTR probe synchronously. Implementations must be
// safe for concurrent use: the engine calls LookupPTR from its worker
// pool. Implementations should honor ctx cancellation promptly.
type Source interface {
	LookupPTR(ctx context.Context, ip dnswire.IPv4) Result
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(ctx context.Context, ip dnswire.IPv4) Result

// LookupPTR implements Source.
func (f SourceFunc) LookupPTR(ctx context.Context, ip dnswire.IPv4) Result { return f(ctx, ip) }

// ShardSource is an optional fast path for sources that can enumerate all
// present records of a shard at once (bulk snapshotters that already hold
// record state, zone transfers). When a Source also implements
// ShardSource the engine calls ScanShard once per shard instead of
// probing every address: emit is invoked for each present record, absent
// addresses are never enumerated, and the shard is handed over whole
// (targets are not split below their natural size in this mode).
type ShardSource interface {
	ScanShard(ctx context.Context, shard dnswire.Prefix, at time.Time, emit func(Result)) error
}

// AsyncSource is a callback-based probe launcher — the shape of the
// simulation-fabric resolver, whose completions are driven by a
// (possibly simulated) clock and therefore cannot block. SweepAsync
// drives one with a bounded in-flight window.
type AsyncSource interface {
	// StartPTR begins resolving ip and invokes done exactly once when
	// the probe completes. done may be invoked synchronously.
	StartPTR(ip dnswire.IPv4, done func(Result))
}
