package scanengine

import (
	"sync"

	"rdnsprivacy/internal/dnswire"
)

// SweepAsync drives an AsyncSource over ips with at most window probes in
// flight, invoking each per result and done exactly once when every probe
// has completed. It spawns no goroutines: new probes are launched from
// inside completion callbacks, so it composes with simulated clocks whose
// event loop must never block (the fabric resolver completes probes
// synchronously while the clock advances). Callbacks run on whatever
// goroutine delivers the completion; each and done must not re-enter the
// sweep. window <= 0 means an unbounded window (all probes launched
// up front, matching the historical ScanPTR behavior).
func SweepAsync(src AsyncSource, ips []dnswire.IPv4, window int, each func(Result), done func()) {
	if len(ips) == 0 {
		if done != nil {
			done()
		}
		return
	}
	if window <= 0 || window > len(ips) {
		window = len(ips)
	}
	s := &asyncSweep{src: src, ips: ips, window: window, each: each, done: done}
	s.pump()
}

type asyncSweep struct {
	src    AsyncSource
	ips    []dnswire.IPv4
	window int
	each   func(Result)
	done   func()

	mu        sync.Mutex
	next      int  // index of the next probe to launch
	inflight  int  // probes started but not completed
	finished  int  // probes completed
	pumping   bool // a pump loop is active on some goroutine
	doneFired bool // done has been invoked
}

// finish reports whether the caller should invoke done: true exactly once,
// when every probe has completed. Callers hold s.mu.
func (s *asyncSweep) finishLocked() bool {
	if s.doneFired || s.finished != len(s.ips) {
		return false
	}
	s.doneFired = true
	return true
}

// pump launches probes until the window is full or the targets are
// exhausted. Only one goroutine pumps at a time; completions that arrive
// synchronously during StartPTR mark the slot free and the active loop
// picks it up, bounding stack depth regardless of how many completions
// are synchronous.
func (s *asyncSweep) pump() {
	s.mu.Lock()
	if s.pumping {
		s.mu.Unlock()
		return
	}
	s.pumping = true
	for s.next < len(s.ips) && s.inflight < s.window {
		ip := s.ips[s.next]
		s.next++
		s.inflight++
		s.mu.Unlock()
		s.src.StartPTR(ip, s.complete)
		s.mu.Lock()
	}
	s.pumping = false
	fire := s.finishLocked()
	s.mu.Unlock()
	if fire && s.done != nil {
		s.done()
	}
}

func (s *asyncSweep) complete(res Result) {
	if s.each != nil {
		s.each(res)
	}
	s.mu.Lock()
	s.inflight--
	s.finished++
	pending := s.next < len(s.ips)
	fire := !pending && s.finishLocked()
	s.mu.Unlock()
	if pending {
		s.pump()
	} else if fire && s.done != nil {
		s.done()
	}
}
