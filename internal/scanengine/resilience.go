package scanengine

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/telemetry"
)

// This file is the scan pipeline's resilience layer: scan-level retries
// with deterministic full-jitter backoff, per-shard circuit breakers,
// optional hedged lookups, adaptive rate control driven by in-band
// throttle signals, and graceful degradation — a sweep over a failing
// range produces a partial snapshot plus a structured HealthReport
// instead of hanging or erroring out.
//
// The layer classifies source errors structurally, through the two
// single-method interfaces below, because the concrete error type lives in
// dnsclient and dnsclient imports this package — a nominal dependency
// would be a cycle. Any error implementing RetryableFault()/ThrottleFault()
// participates; unknown errors default to retryable (transient until
// proven otherwise), and context cancellation is never retried.

// retryableFault is implemented by errors that represent transient
// infrastructure failures worth retrying (dnsclient: timeout, SERVFAIL).
type retryableFault interface{ RetryableFault() bool }

// throttleFault is implemented by errors that represent an in-band
// slow-down signal (dnsclient: REFUSED).
type throttleFault interface{ ThrottleFault() bool }

func isCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func isRetryable(err error) bool {
	if err == nil || isCanceled(err) {
		return false
	}
	var rf retryableFault
	if errors.As(err, &rf) {
		return rf.RetryableFault()
	}
	return true
}

func isThrottle(err error) bool {
	var tf throttleFault
	return errors.As(err, &tf) && tf.ThrottleFault()
}

// RetryPolicy governs scan-level retries of retryable faults, layered on
// top of whatever retransmission the source itself performs.
type RetryPolicy struct {
	// MaxAttempts is the total number of source lookups per address
	// (first try included). Values below 1 mean 1 (no retry).
	MaxAttempts int
	// BaseDelay, when positive, spaces retries by exponential backoff
	// with full jitter: retry k waits a deterministic pseudo-random delay
	// in [0, min(MaxDelay, BaseDelay<<k)). Zero retries immediately.
	BaseDelay time.Duration
	// MaxDelay caps the backoff window. Zero means 16x BaseDelay.
	MaxDelay time.Duration
}

// BreakerConfig governs the per-shard circuit breaker.
type BreakerConfig struct {
	// Threshold is how many consecutive final (post-retry) faults open
	// the breaker. Zero disables the breaker.
	Threshold int
	// OpenFor is how long an open breaker waits before probing half-open.
	// Zero means 100ms.
	OpenFor time.Duration
	// MaxOpens is how many times the breaker may open within one shard
	// before the shard degrades (its remaining addresses are skipped and
	// reported, not probed). Zero means 2.
	MaxOpens int
}

// HedgeConfig governs hedged lookups: when the primary lookup has not
// completed within Delay, a second identical lookup races it and the
// first completion wins. Hedging cuts tail latency against servers with
// occasional latency spikes at the cost of duplicate queries; because the
// winner depends on real timing, hedge counters are excluded from
// HealthReport.Fingerprint.
type HedgeConfig struct {
	// Delay is how long the primary runs alone. Zero disables hedging.
	Delay time.Duration
}

// ThrottleConfig governs adaptive per-shard pacing driven by throttle
// faults (REFUSED): each throttle response doubles the inter-probe delay
// (starting at InitialDelay, capped at MaxDelay); each answered probe
// halves it back toward zero.
type ThrottleConfig struct {
	// InitialDelay is the pacing delay after the first throttle signal.
	// Zero disables adaptive pacing.
	InitialDelay time.Duration
	// MaxDelay caps the pacing delay. Zero means 16x InitialDelay.
	MaxDelay time.Duration
}

// ResilienceConfig bundles the resilience knobs enabled by
// WithResilience. The zero value of each sub-policy disables it, so
// callers opt into exactly the mechanisms they want.
type ResilienceConfig struct {
	Retry    RetryPolicy
	Breaker  BreakerConfig
	Hedge    HedgeConfig
	Throttle ThrottleConfig
	// Seed fixes the backoff-jitter hash so retry schedules replay
	// deterministically. The jitter for a given (seed, address, attempt)
	// never changes.
	Seed int64
}

// WithResilience enables the resilience layer for per-address sweeps.
// Bulk-enumeration sources (ShardSource) bypass it — they do not probe
// individual addresses.
func WithResilience(cfg ResilienceConfig) Option {
	if cfg.Retry.MaxAttempts < 1 {
		cfg.Retry.MaxAttempts = 1
	}
	if cfg.Retry.BaseDelay > 0 && cfg.Retry.MaxDelay <= 0 {
		cfg.Retry.MaxDelay = 16 * cfg.Retry.BaseDelay
	}
	if cfg.Breaker.Threshold > 0 {
		if cfg.Breaker.OpenFor <= 0 {
			cfg.Breaker.OpenFor = 100 * time.Millisecond
		}
		if cfg.Breaker.MaxOpens <= 0 {
			cfg.Breaker.MaxOpens = 2
		}
	}
	if cfg.Throttle.InitialDelay > 0 && cfg.Throttle.MaxDelay <= 0 {
		cfg.Throttle.MaxDelay = 16 * cfg.Throttle.InitialDelay
	}
	return func(s *Scanner) { s.resil = &cfg }
}

// BreakerState is a circuit breaker state.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed passes probes through normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen short-circuits probing until the open window lapses.
	BreakerOpen
	// BreakerHalfOpen allows one cautious probe to test recovery.
	BreakerHalfOpen
)

// String returns a mnemonic.
func (b BreakerState) String() string {
	switch b {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state%d", int(b))
	}
}

// BreakerEvent is one breaker transition, located by the probe index
// within the shard (not by wall-clock time, so identical fault sequences
// produce identical event lists regardless of scheduling).
type BreakerEvent struct {
	State   BreakerState
	AtProbe int
}

// ShardHealth is the resilience ledger of one shard.
type ShardHealth struct {
	// Shard is the address range.
	Shard dnswire.Prefix
	// Probes/Found/Errors mirror the shard tally; Skipped counts
	// addresses abandoned by graceful degradation (never probed).
	Probes, Found, Errors, Skipped int
	// Attempts counts source lookups including retries and half-open
	// probes; Retries counts scan-level retries; Throttled counts probes
	// paced by adaptive rate control.
	Attempts, Retries, Throttled int
	// Hedges counts hedge lookups launched, HedgeWins those that beat
	// the primary. Both depend on real timing and are excluded from
	// Fingerprint.
	Hedges, HedgeWins int
	// Breaker is the transition history, in probe order.
	Breaker []BreakerEvent
	// Degraded reports the breaker exhausted MaxOpens and the shard's
	// remaining addresses were skipped.
	Degraded bool
}

// ResilienceTotals aggregates ShardHealth counters across a sweep.
type ResilienceTotals struct {
	Attempts, Retries, Throttled, Hedges, HedgeWins, Skipped, BreakerOpens int
}

// HealthReport is the structured account of a resilient sweep: what
// failed, what was retried, which ranges degraded. A degraded sweep still
// yields a usable snapshot; the report says which parts of it to trust.
type HealthReport struct {
	// Shards is per-shard health, in plan order.
	Shards []ShardHealth
	// Degraded lists the address ranges whose shards degraded. Records
	// under these prefixes are incomplete and removal inference skips
	// them.
	Degraded []dnswire.Prefix
	// Totals aggregates the shard counters.
	Totals ResilienceTotals
	// RemovalsExcluded counts baseline records whose removal inference was
	// suppressed because they sat under a degraded prefix — how much the
	// degradation cost the longitudinal analysis. Mirrors the
	// scan_removals_excluded_total metric; not part of Fingerprint (the
	// fingerprint predates it and covers per-shard ledgers only).
	RemovalsExcluded int
}

// Fingerprint hashes the deterministic portion of the report (everything
// except hedge counters): with a deterministic source and hedging off,
// identical seeds produce identical fingerprints across runs.
func (h *HealthReport) Fingerprint() uint64 {
	f := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		f.Write(buf[:])
	}
	for _, sh := range h.Shards {
		w(uint64(sh.Shard.Addr.Uint32()))
		w(uint64(sh.Shard.Bits))
		w(uint64(sh.Probes))
		w(uint64(sh.Found))
		w(uint64(sh.Errors))
		w(uint64(sh.Skipped))
		w(uint64(sh.Attempts))
		w(uint64(sh.Retries))
		w(uint64(sh.Throttled))
		if sh.Degraded {
			w(1)
		} else {
			w(0)
		}
		w(uint64(len(sh.Breaker)))
		for _, ev := range sh.Breaker {
			w(uint64(ev.State))
			w(uint64(ev.AtProbe))
		}
	}
	return f.Sum64()
}

// shardResil is the per-shard resilience state. It lives entirely inside
// one worker's sequential shard loop, so it needs no locking; its health
// ledger is handed to the merge stage over the results channel when the
// shard closes.
type shardResil struct {
	cfg    *ResilienceConfig
	health ShardHealth
	seed   uint64
	// met and span are set by runShard when telemetry/tracing is on: the
	// same event sites that write the health ledger tick the exported
	// counters and the shard span, so the two views cannot drift.
	met  *engineMetrics
	span *telemetry.Span

	breaker     BreakerState
	consecutive int // consecutive final faults while closed
	opens       int
	degraded    bool
	throttle    time.Duration
}

func (s *Scanner) newShardResil(shard dnswire.Prefix) *shardResil {
	if s.resil == nil {
		return nil
	}
	return &shardResil{
		cfg:    s.resil,
		health: ShardHealth{Shard: shard},
		seed:   resilMix(uint64(s.resil.Seed), uint64(shard.Addr.Uint32()), uint64(shard.Bits)),
	}
}

// lookup resolves one address through the resilience stack. probe is the
// address's index within the shard, used to locate breaker transitions.
// After a return with st.degraded set, the caller must stop probing the
// shard.
func (st *shardResil) lookup(ctx context.Context, s *Scanner, ip dnswire.IPv4, probe int) Result {
	cfg := st.cfg
	if st.breaker == BreakerOpen {
		if err := s.sleepClock(ctx, cfg.Breaker.OpenFor); err != nil {
			return Result{IP: ip, Err: err}
		}
		st.transition(BreakerHalfOpen, probe)
	}
	if st.throttle > 0 {
		st.health.Throttled++
		if m := st.met; m != nil {
			m.throttled.Inc()
		}
		if err := s.sleepClock(ctx, st.throttle); err != nil {
			return Result{IP: ip, Err: err}
		}
	}

	res := st.withRetries(ctx, s, ip, probe)

	switch {
	case isCanceled(res.Err):
		// Context end, not a server fault: no breaker or pacing updates.
	case res.Err == nil:
		// The server answered (record, or authoritative absence).
		st.consecutive = 0
		st.decayThrottle()
		if st.breaker != BreakerClosed {
			st.transition(BreakerClosed, probe)
		}
	case isThrottle(res.Err):
		// The server is alive and shedding load: slow down, don't trip
		// the breaker.
		st.consecutive = 0
		st.bumpThrottle()
		if st.breaker == BreakerHalfOpen {
			st.transition(BreakerClosed, probe)
		}
	default:
		// Final infrastructure fault after retries.
		if st.breaker == BreakerHalfOpen {
			st.open(probe)
		} else if cfg.Breaker.Threshold > 0 {
			st.consecutive++
			if st.consecutive >= cfg.Breaker.Threshold {
				st.open(probe)
			}
		}
	}
	return res
}

// withRetries runs up to Retry.MaxAttempts source lookups with backoff. A
// half-open breaker allows a single cautious probe regardless of budget.
func (st *shardResil) withRetries(ctx context.Context, s *Scanner, ip dnswire.IPv4, probe int) Result {
	max := st.cfg.Retry.MaxAttempts
	if st.breaker == BreakerHalfOpen {
		max = 1
	}
	var res Result
	for attempt := 1; ; attempt++ {
		st.health.Attempts++
		if m := st.met; m != nil {
			m.attempts.Inc()
		}
		res = st.probeOnce(ctx, s, ip)
		if res.Err == nil || attempt >= max || ctx.Err() != nil {
			return res
		}
		// A throttle fault retries after bumping the adaptive pacing
		// delay and sitting it out — the slow-start that lets a sweep
		// find the rate a refusing server will sustain.
		if isThrottle(res.Err) {
			if st.cfg.Throttle.InitialDelay <= 0 {
				return res
			}
			st.bumpThrottle()
			st.health.Retries++
			if m := st.met; m != nil {
				m.retries.Inc()
			}
			if err := s.sleepClock(ctx, st.throttle); err != nil {
				return res
			}
			continue
		}
		if !isRetryable(res.Err) {
			return res
		}
		st.health.Retries++
		if m := st.met; m != nil {
			m.retries.Inc()
		}
		if d := st.backoff(ip, attempt); d > 0 {
			if err := s.sleepClock(ctx, d); err != nil {
				return res
			}
		}
	}
}

// probeOnce performs one source lookup, hedged when configured: if the
// primary has not completed within Hedge.Delay a second lookup races it
// and the first completion wins. The loser's goroutine drains into a
// buffered channel, so nothing leaks past the source's own timeout.
func (st *shardResil) probeOnce(ctx context.Context, s *Scanner, ip dnswire.IPv4) Result {
	if st.cfg.Hedge.Delay <= 0 {
		res := s.src.LookupPTR(ctx, ip)
		res.IP = ip
		return res
	}
	primary := make(chan Result, 1)
	go func() {
		r := s.src.LookupPTR(ctx, ip)
		r.IP = ip
		primary <- r
	}()
	hedgeAt := make(chan struct{})
	t := s.clock.AfterFunc(st.cfg.Hedge.Delay, func() { close(hedgeAt) })
	defer t.Stop()
	select {
	case r := <-primary:
		return r
	case <-ctx.Done():
		return Result{IP: ip, Err: ctx.Err()}
	case <-hedgeAt:
	}
	st.health.Hedges++
	if m := st.met; m != nil {
		m.hedges.Inc()
	}
	hedge := make(chan Result, 1)
	go func() {
		r := s.src.LookupPTR(ctx, ip)
		r.IP = ip
		hedge <- r
	}()
	select {
	case r := <-primary:
		return r
	case r := <-hedge:
		st.health.HedgeWins++
		if m := st.met; m != nil {
			m.hedgeWins.Inc()
		}
		return r
	case <-ctx.Done():
		return Result{IP: ip, Err: ctx.Err()}
	}
}

// open advances the breaker to open, degrading the shard when the open
// budget is exhausted.
func (st *shardResil) open(probe int) {
	st.opens++
	st.consecutive = 0
	st.transition(BreakerOpen, probe)
	if st.opens > st.cfg.Breaker.MaxOpens {
		st.degraded = true
		st.health.Degraded = true
	}
}

func (st *shardResil) transition(to BreakerState, probe int) {
	st.breaker = to
	st.health.Breaker = append(st.health.Breaker, BreakerEvent{State: to, AtProbe: probe})
	st.span.Event("breaker", uint64(to))
	if m := st.met; m != nil {
		switch to {
		case BreakerOpen:
			m.breakerOpens.Inc()
		case BreakerHalfOpen:
			m.breakerHalf.Inc()
		case BreakerClosed:
			m.breakerCl.Inc()
		}
	}
}

func (st *shardResil) bumpThrottle() {
	cfg := st.cfg.Throttle
	if cfg.InitialDelay <= 0 {
		return
	}
	if st.throttle == 0 {
		st.throttle = cfg.InitialDelay
	} else if st.throttle *= 2; st.throttle > cfg.MaxDelay {
		st.throttle = cfg.MaxDelay
	}
}

func (st *shardResil) decayThrottle() {
	if st.throttle == 0 {
		return
	}
	st.throttle /= 2
	if st.throttle < st.cfg.Throttle.InitialDelay {
		st.throttle = 0
	}
}

// backoff is the deterministic full-jitter delay before retry attempt:
// uniform-by-hash over [0, min(MaxDelay, BaseDelay<<attempt)).
func (st *shardResil) backoff(ip dnswire.IPv4, attempt int) time.Duration {
	p := st.cfg.Retry
	if p.BaseDelay <= 0 {
		return 0
	}
	window := p.BaseDelay << uint(attempt)
	if window <= 0 || window > p.MaxDelay {
		window = p.MaxDelay
	}
	h := resilMix(st.seed, uint64(ip.Uint32()), uint64(attempt))
	return time.Duration(float64(window) * resilUnit(h))
}

// sleepClock blocks for d on the scanner's clock or until ctx ends.
func (s *Scanner) sleepClock(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	done := make(chan struct{})
	t := s.clock.AfterFunc(d, func() { close(done) })
	defer t.Stop()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// resilMix mixes words with the splitmix64 finalizer.
func resilMix(words ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, w := range words {
		h ^= w
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
		h *= 0x94D049BB133111EB
		h ^= h >> 31
	}
	return h
}

// resilUnit maps a hash to [0,1).
func resilUnit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}
