package scanengine

import (
	"context"
	"testing"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/telemetry"
)

// corrSource answers every probe and stamps it with a deterministic
// correlation ID, like dnsclient.ServerSource does with a tracer.
type corrSource struct{ seed int64 }

func (s corrSource) LookupPTR(_ context.Context, ip dnswire.IPv4) Result {
	return Result{
		IP:    ip,
		Name:  dnswire.MustName("host.example.org"),
		Found: true,
		Corr:  telemetry.CorrID(s.seed, ip.String(), 1),
	}
}

// TestShardSpansCarryCorrEvents checks the engine copies per-probe
// correlation IDs onto its shard spans, the link that lets experiments
// -trace join shard timing to client/fabric/server chains.
func TestShardSpansCarryCorrEvents(t *testing.T) {
	tr := telemetry.NewTracer(3, 64)
	sc := New(corrSource{seed: 3}, WithWorkers(2), WithTracer(tr))
	snap, err := sc.Scan(context.Background(), Request{Targets: []dnswire.Prefix{
		dnswire.MustPrefix("10.71.0.0/30"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Stats.Probes != 4 {
		t.Fatalf("probes = %d, want 4", snap.Stats.Probes)
	}
	want := make(map[uint64]bool)
	p := dnswire.MustPrefix("10.71.0.0/30")
	for i := 0; i < p.NumAddresses(); i++ {
		want[telemetry.CorrID(3, p.Nth(i).String(), 1)] = true
	}
	got := make(map[uint64]bool)
	for _, sp := range tr.Snapshot() {
		for _, ev := range sp.Events {
			if ev.Kind == "corr" {
				got[ev.Code] = true
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("corr events = %d, want %d", len(got), len(want))
	}
	for c := range want {
		if !got[c] {
			t.Fatalf("missing corr event %016x", c)
		}
	}
}

// TestUncorrelatedProbesEmitNoCorrEvents pins the zero-corr fast path:
// sources that do not correlate add no events beyond the probe outcomes.
func TestUncorrelatedProbesEmitNoCorrEvents(t *testing.T) {
	tr := telemetry.NewTracer(3, 64)
	records := map[dnswire.IPv4]dnswire.Name{
		dnswire.MustIPv4("10.71.0.1"): dnswire.MustName("a.example.org"),
	}
	sc := New(newCountingSource(records), WithWorkers(1), WithTracer(tr))
	if _, err := sc.Scan(context.Background(), Request{Targets: []dnswire.Prefix{
		dnswire.MustPrefix("10.71.0.0/30"),
	}}); err != nil {
		t.Fatal(err)
	}
	for _, sp := range tr.Snapshot() {
		for _, ev := range sp.Events {
			if ev.Kind == "corr" {
				t.Fatalf("uncorrelated sweep emitted corr event %016x", ev.Code)
			}
		}
	}
}
