package scanengine

import (
	"context"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/telemetry"
)

// retryableErr is a transient infrastructure fault (SERVFAIL-like).
type retryableErr struct{}

func (retryableErr) Error() string        { return "simulated servfail" }
func (retryableErr) RetryableFault() bool { return true }

// faultRangeSource answers from a record map but fails every probe inside
// the failing prefix with a retryable fault.
type faultRangeSource struct {
	records map[dnswire.IPv4]dnswire.Name
	failing dnswire.Prefix
}

func (s *faultRangeSource) LookupPTR(_ context.Context, ip dnswire.IPv4) Result {
	if s.failing.Contains(ip) {
		return Result{IP: ip, Err: retryableErr{}}
	}
	name, ok := s.records[ip]
	return Result{IP: ip, Name: name, Found: ok}
}

func counterVal(reg *telemetry.Registry, name string) uint64 {
	return reg.Counter(name).Value()
}

// TestTelemetryCountersMatchStats sweeps twice with the negative cache on
// and checks the exported counters agree with Snapshot.Stats — the
// acceptance criterion that /metrics sums consistently with the engine's
// own accounting.
func TestTelemetryCountersMatchStats(t *testing.T) {
	records := map[dnswire.IPv4]dnswire.Name{
		dnswire.MustIPv4("10.70.0.3"): dnswire.MustName("a.example.org"),
		dnswire.MustIPv4("10.70.1.9"): dnswire.MustName("b.example.org"),
	}
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(7, 64)
	sc := New(newCountingSource(records),
		WithWorkers(2),
		WithNegativeTTL(time.Hour),
		WithTelemetry(reg),
		WithTracer(tr),
	)
	req := Request{Targets: []dnswire.Prefix{
		dnswire.MustPrefix("10.70.0.0/24"),
		dnswire.MustPrefix("10.70.1.0/24"),
	}}
	s1, err := sc.Scan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sc.Scan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	probes := s1.Stats.Probes + s2.Stats.Probes
	if got := counterVal(reg, MetricProbes); got != probes {
		t.Errorf("%s = %d, want %d", MetricProbes, got, probes)
	}
	cacheHits := s1.Stats.CacheHits + s2.Stats.CacheHits
	if got := counterVal(reg, MetricCacheHits); got != cacheHits {
		t.Errorf("%s = %d, want %d", MetricCacheHits, got, cacheHits)
	}
	if got, want := counterVal(reg, MetricQueries), probes-cacheHits; got != want {
		t.Errorf("%s = %d, want probes-cacheHits = %d", MetricQueries, got, want)
	}
	if got, want := counterVal(reg, MetricCacheMisses), probes-cacheHits; got != want {
		t.Errorf("%s = %d, want %d", MetricCacheMisses, got, want)
	}
	if got, want := counterVal(reg, MetricFound), s1.Stats.Found+s2.Stats.Found; got != want {
		t.Errorf("%s = %d, want %d", MetricFound, got, want)
	}
	if got, want := counterVal(reg, MetricAbsent), s1.Stats.Absent+s2.Stats.Absent; got != want {
		t.Errorf("%s = %d, want %d", MetricAbsent, got, want)
	}
	if got := counterVal(reg, MetricErrors); got != 0 {
		t.Errorf("%s = %d, want 0", MetricErrors, got)
	}
	if got := counterVal(reg, MetricSweeps); got != 2 {
		t.Errorf("%s = %d, want 2", MetricSweeps, got)
	}
	// The probe latency histogram times exactly the source lookups.
	lat := reg.Histogram(MetricProbeSeconds, nil)
	if got, want := lat.Count(), probes-cacheHits; got != want {
		t.Errorf("%s count = %d, want %d", MetricProbeSeconds, got, want)
	}
	if got := reg.Gauge(MetricShardsInflight).Value(); got != 0 {
		t.Errorf("%s = %d after sweep, want 0", MetricShardsInflight, got)
	}

	// One span per shard per sweep, one probe event per address.
	if got := tr.Len(); got != 4 {
		t.Errorf("tracer has %d spans, want 4 (2 shards x 2 sweeps)", got)
	}
}

// TestTelemetryResilienceCountersMatchHealth drives one shard into
// degradation and checks the exported resilience counters equal
// HealthReport.Totals, and that the degraded-prefix removal exclusion
// count matches the exported metric (the satellite-4 invariant).
func TestTelemetryResilienceCountersMatchHealth(t *testing.T) {
	failing := dnswire.MustPrefix("10.80.1.0/24")
	src := &faultRangeSource{
		records: map[dnswire.IPv4]dnswire.Name{
			dnswire.MustIPv4("10.80.0.3"): dnswire.MustName("ok.example.org"),
		},
		failing: failing,
	}
	reg := telemetry.NewRegistry()
	sc := New(src,
		WithWorkers(2),
		WithTelemetry(reg),
		WithResilience(ResilienceConfig{
			Retry:   RetryPolicy{MaxAttempts: 2},
			Breaker: BreakerConfig{Threshold: 3, OpenFor: time.Millisecond, MaxOpens: 1},
			Seed:    11,
		}),
	)
	// The baseline holds a stale record in each /24; the healthy shard can
	// prove its removal, the degraded shard cannot.
	baseline := RecordSet{
		dnswire.MustIPv4("10.80.0.5"): dnswire.MustName("gone.example.org"),
		dnswire.MustIPv4("10.80.1.5"): dnswire.MustName("ghost.example.org"),
	}
	snap, err := sc.Scan(context.Background(), Request{
		Targets: []dnswire.Prefix{
			dnswire.MustPrefix("10.80.0.0/24"),
			failing,
		},
		Baseline: baseline,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Degraded || snap.Health == nil {
		t.Fatalf("sweep did not degrade: %+v", snap.Health)
	}
	tot := snap.Health.Totals

	checks := []struct {
		metric string
		want   uint64
	}{
		{MetricAttempts, uint64(tot.Attempts)},
		{MetricRetries, uint64(tot.Retries)},
		{MetricBreakerOpens, uint64(tot.BreakerOpens)},
		{MetricSkipped, uint64(tot.Skipped)},
		{MetricHedges, uint64(tot.Hedges)},
		{MetricThrottled, uint64(tot.Throttled)},
		{MetricShardsDegraded, uint64(len(snap.Health.Degraded))},
	}
	for _, c := range checks {
		if got := counterVal(reg, c.metric); got != c.want {
			t.Errorf("%s = %d, want %d (HealthReport)", c.metric, got, c.want)
		}
	}
	if tot.Retries == 0 || tot.BreakerOpens == 0 || tot.Skipped == 0 {
		t.Fatalf("scenario too tame to exercise the counters: %+v", tot)
	}
	// Stats and Totals are one accumulation.
	if snap.Stats.Retries != uint64(tot.Retries) || snap.Stats.Skipped != uint64(tot.Skipped) {
		t.Errorf("Stats(retries=%d skipped=%d) != Totals(%d, %d)",
			snap.Stats.Retries, snap.Stats.Skipped, tot.Retries, tot.Skipped)
	}

	// Removal inference: proven in the healthy shard, excluded (and
	// counted) in the degraded one.
	var removed []dnswire.IPv4
	for _, ch := range snap.Changes {
		if ch.Kind == RecordRemoved {
			removed = append(removed, ch.IP)
		}
	}
	if len(removed) != 1 || removed[0] != dnswire.MustIPv4("10.80.0.5") {
		t.Errorf("removals = %v, want exactly 10.80.0.5", removed)
	}
	if snap.Health.RemovalsExcluded != 1 {
		t.Errorf("RemovalsExcluded = %d, want 1", snap.Health.RemovalsExcluded)
	}
	if got := counterVal(reg, MetricRemovalsExcluded); got != uint64(snap.Health.RemovalsExcluded) {
		t.Errorf("%s = %d, want %d", MetricRemovalsExcluded, got, snap.Health.RemovalsExcluded)
	}
}

// TestTelemetryDisabledIsInert checks a scanner without WithTelemetry
// neither panics nor registers anything.
func TestTelemetryDisabledIsInert(t *testing.T) {
	sc := New(newCountingSource(nil), WithWorkers(2))
	if _, err := sc.Scan(context.Background(), Request{
		Targets: []dnswire.Prefix{dnswire.MustPrefix("10.90.0.0/28")},
	}); err != nil {
		t.Fatal(err)
	}
	if sc.met != nil || sc.tracer != nil {
		t.Fatal("telemetry must stay nil when not configured")
	}
}
