package scanengine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/simclock"
)

// countingSource answers from a fixed record map and counts probes.
type countingSource struct {
	mu      sync.Mutex
	records map[dnswire.IPv4]dnswire.Name
	probes  map[dnswire.IPv4]int
}

func newCountingSource(records map[dnswire.IPv4]dnswire.Name) *countingSource {
	return &countingSource{records: records, probes: make(map[dnswire.IPv4]int)}
}

func (s *countingSource) LookupPTR(ctx context.Context, ip dnswire.IPv4) Result {
	s.mu.Lock()
	s.probes[ip]++
	name, ok := s.records[ip]
	s.mu.Unlock()
	return Result{IP: ip, Name: name, Found: ok}
}

func (s *countingSource) probeCount(ip dnswire.IPv4) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.probes[ip]
}

func (s *countingSource) totalProbes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.probes {
		n += c
	}
	return n
}

func TestPlanShardsSplitsCoarseTargets(t *testing.T) {
	got := planShards([]dnswire.Prefix{dnswire.MustPrefix("10.0.0.0/14")}, 16, true)
	want := []string{"10.0.0.0/16", "10.1.0.0/16", "10.2.0.0/16", "10.3.0.0/16"}
	if len(got) != len(want) {
		t.Fatalf("planShards returned %d shards, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].String() != w {
			t.Errorf("shard %d = %s, want %s", i, got[i], w)
		}
	}
	// Finer-than-shard targets stay whole.
	got = planShards([]dnswire.Prefix{dnswire.MustPrefix("192.0.2.0/24")}, 16, true)
	if len(got) != 1 || got[0].String() != "192.0.2.0/24" {
		t.Fatalf("fine target reshaped: %v", got)
	}
	// Bulk-enumeration sources get targets whole regardless of size.
	got = planShards([]dnswire.Prefix{dnswire.MustPrefix("10.0.0.0/14")}, 16, false)
	if len(got) != 1 || got[0].String() != "10.0.0.0/14" {
		t.Fatalf("no-split target reshaped: %v", got)
	}
}

func TestShardBoundaryCoverage(t *testing.T) {
	// Sweep a /22 in /24 shards; every shard's first and last address —
	// and everything between — must be probed exactly once.
	target := dnswire.MustPrefix("10.9.0.0/22")
	records := map[dnswire.IPv4]dnswire.Name{
		dnswire.MustIPv4("10.9.0.0"):   dnswire.MustName("first.example.org"),
		dnswire.MustIPv4("10.9.3.255"): dnswire.MustName("last.example.org"),
	}
	src := newCountingSource(records)
	sc := New(src, WithWorkers(4), WithShardBits(24))
	snap, err := sc.Scan(context.Background(), Request{Targets: []dnswire.Prefix{target}})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Shards) != 4 {
		t.Fatalf("shards = %d, want 4", len(snap.Shards))
	}
	for _, st := range snap.Shards {
		if !st.Done || st.Probes != 256 {
			t.Fatalf("shard %s: done=%v probes=%d, want 256", st.Shard, st.Done, st.Probes)
		}
		for _, edge := range []dnswire.IPv4{st.Shard.First(), st.Shard.Last()} {
			if n := src.probeCount(edge); n != 1 {
				t.Errorf("edge %s probed %d times, want 1", edge, n)
			}
		}
	}
	if got := src.totalProbes(); got != target.NumAddresses() {
		t.Fatalf("total probes = %d, want %d", got, target.NumAddresses())
	}
	if snap.Stats.Probes != uint64(target.NumAddresses()) {
		t.Fatalf("stats probes = %d, want %d", snap.Stats.Probes, target.NumAddresses())
	}
	if len(snap.Records) != 2 || snap.Stats.Found != 2 {
		t.Fatalf("records = %d (found %d), want 2", len(snap.Records), snap.Stats.Found)
	}
	for ip, name := range records {
		if snap.Records[ip] != name {
			t.Errorf("record %s = %q, want %q", ip, snap.Records[ip], name)
		}
	}
}

func TestCancellationLeaksNoGoroutines(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var started atomic.Int32
	src := SourceFunc(func(ctx context.Context, ip dnswire.IPv4) Result {
		started.Add(1)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return Result{IP: ip}
	})
	before := runtime.NumGoroutine()
	sc := New(src, WithWorkers(8), WithShardBits(24))
	scanDone := make(chan error, 1)
	go func() {
		_, err := sc.Scan(ctx, Request{Targets: []dnswire.Prefix{dnswire.MustPrefix("10.0.0.0/16")}})
		scanDone <- err
	}()
	// Wait until workers are mid-probe, then cancel.
	for started.Load() < 8 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	err := <-scanDone
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// All workers and the merger must be reaped. NumGoroutine is noisy;
	// poll until the count returns to the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellation",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCancelledSweepReturnsPartialSnapshot(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var probes atomic.Int32
	src := SourceFunc(func(ctx context.Context, ip dnswire.IPv4) Result {
		if probes.Add(1) == 100 {
			cancel()
		}
		return Result{IP: ip, Name: "h.example.org.", Found: true}
	})
	sc := New(src, WithWorkers(2), WithShardBits(24))
	snap, err := sc.Scan(ctx, Request{Targets: []dnswire.Prefix{dnswire.MustPrefix("10.0.0.0/16")}})
	if err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
	if snap == nil || !snap.Partial {
		t.Fatalf("snapshot = %+v, want partial", snap)
	}
	if snap.Changes != nil {
		t.Fatal("partial sweep must not infer changes")
	}
	if sc.Previous() != nil {
		t.Fatal("partial sweep must not become the diff baseline")
	}
}

func TestNegativeCacheTTLExpiry(t *testing.T) {
	clock := simclock.NewSimulated(time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC))
	ip := dnswire.MustIPv4("203.0.113.7")
	src := newCountingSource(nil) // everything absent
	sc := New(src, WithWorkers(1), WithNegativeTTL(time.Hour), WithClock(clock))
	target := []dnswire.Prefix{dnswire.MustPrefix("203.0.113.0/24")}

	snap, err := sc.Scan(context.Background(), Request{Targets: target})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Stats.CacheHits != 0 || src.probeCount(ip) != 1 {
		t.Fatalf("first sweep: hits=%d probes=%d", snap.Stats.CacheHits, src.probeCount(ip))
	}
	if got := sc.cache.Len(); got != 256 {
		t.Fatalf("cache entries = %d, want 256", got)
	}

	// Within the TTL the absences are served from cache.
	snap, err = sc.Scan(context.Background(), Request{Targets: target})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Stats.CacheHits != 256 || src.probeCount(ip) != 1 {
		t.Fatalf("cached sweep: hits=%d probes=%d", snap.Stats.CacheHits, src.probeCount(ip))
	}

	// Past the TTL every entry is invalidated and re-probed.
	clock.Advance(2 * time.Hour)
	if got := sc.cache.Len(); got != 0 {
		t.Fatalf("live entries after TTL = %d, want 0", got)
	}
	snap, err = sc.Scan(context.Background(), Request{Targets: target})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Stats.CacheHits != 0 || src.probeCount(ip) != 2 {
		t.Fatalf("expired sweep: hits=%d probes=%d", snap.Stats.CacheHits, src.probeCount(ip))
	}
}

func TestIncrementalDiffAcrossSweeps(t *testing.T) {
	records := map[dnswire.IPv4]dnswire.Name{
		dnswire.MustIPv4("10.0.0.1"): dnswire.MustName("stays.example.org"),
		dnswire.MustIPv4("10.0.0.2"): dnswire.MustName("leaves.example.org"),
		dnswire.MustIPv4("10.0.0.3"): dnswire.MustName("old.example.org"),
	}
	src := newCountingSource(records)
	sc := New(src, WithWorkers(2))
	target := []dnswire.Prefix{dnswire.MustPrefix("10.0.0.0/24")}
	ctx := context.Background()

	snap, err := sc.Scan(ctx, Request{Targets: target})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Changes != nil {
		t.Fatalf("first sweep has no baseline, got %d changes", len(snap.Changes))
	}

	src.mu.Lock()
	delete(src.records, dnswire.MustIPv4("10.0.0.2"))
	src.records[dnswire.MustIPv4("10.0.0.3")] = dnswire.MustName("new.example.org")
	src.records[dnswire.MustIPv4("10.0.0.4")] = dnswire.MustName("joins.example.org")
	src.mu.Unlock()

	snap, err = sc.Scan(ctx, Request{Targets: target})
	if err != nil {
		t.Fatal(err)
	}
	want := []Change{
		{Kind: RecordRemoved, IP: dnswire.MustIPv4("10.0.0.2"), Old: dnswire.MustName("leaves.example.org")},
		{Kind: RecordChanged, IP: dnswire.MustIPv4("10.0.0.3"), Old: dnswire.MustName("old.example.org"), New: dnswire.MustName("new.example.org")},
		{Kind: RecordAdded, IP: dnswire.MustIPv4("10.0.0.4"), New: dnswire.MustName("joins.example.org")},
	}
	if len(snap.Changes) != len(want) {
		t.Fatalf("changes = %+v, want %d", snap.Changes, len(want))
	}
	for i, w := range want {
		if snap.Changes[i] != w {
			t.Errorf("change %d = %+v, want %+v", i, snap.Changes[i], w)
		}
	}
}

func TestEventsStreamLifecycle(t *testing.T) {
	records := map[dnswire.IPv4]dnswire.Name{
		dnswire.MustIPv4("10.0.0.1"): dnswire.MustName("a.example.org"),
	}
	src := newCountingSource(records)
	sc := New(src, WithWorkers(2), WithShardBits(24))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := sc.Events(ctx)

	var got []Event
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for ev := range events {
			got = append(got, ev)
			if ev.Kind == EventSweepDone {
				return
			}
		}
	}()
	snap, err := sc.Scan(context.Background(), Request{
		Targets:  []dnswire.Prefix{dnswire.MustPrefix("10.0.0.0/22")},
		Baseline: RecordSet{},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-collected

	kinds := make(map[EventKind]int)
	for _, ev := range got {
		kinds[ev.Kind]++
	}
	if kinds[EventSweepStart] != 1 || kinds[EventSweepDone] != 1 {
		t.Fatalf("lifecycle events = %v", kinds)
	}
	if kinds[EventShardDone] != 4 {
		t.Fatalf("shard-done events = %d, want 4", kinds[EventShardDone])
	}
	if kinds[EventChange] != 1 {
		t.Fatalf("change events = %d, want 1 (empty baseline, one record)", kinds[EventChange])
	}
	last := got[len(got)-1]
	if last.Kind != EventSweepDone || last.Snapshot == nil || len(last.Snapshot.Records) != len(snap.Records) {
		t.Fatalf("final event = %+v", last)
	}
}

func TestShardSourceFastPath(t *testing.T) {
	// A source that also implements ShardSource must be enumerated in
	// bulk: targets stay whole and per-address probing never happens.
	calls := make(map[string]int)
	var mu sync.Mutex
	src := &bulkSource{
		scan: func(shard dnswire.Prefix, emit func(Result)) {
			mu.Lock()
			calls[shard.String()]++
			mu.Unlock()
			emit(Result{IP: shard.First(), Name: dnswire.MustName("bulk.example.org"), Found: true})
		},
	}
	sc := New(src, WithWorkers(4))
	snap, err := sc.Scan(context.Background(), Request{Targets: []dnswire.Prefix{
		dnswire.MustPrefix("10.0.0.0/14"), // coarser than /16: must NOT split
		dnswire.MustPrefix("192.0.2.0/24"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 2 || calls["10.0.0.0/14"] != 1 || calls["192.0.2.0/24"] != 1 {
		t.Fatalf("bulk calls = %v", calls)
	}
	if src.lookups.Load() != 0 {
		t.Fatalf("per-address lookups = %d, want 0", src.lookups.Load())
	}
	if len(snap.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(snap.Records))
	}
}

type bulkSource struct {
	scan    func(shard dnswire.Prefix, emit func(Result))
	lookups atomic.Int32
}

func (s *bulkSource) LookupPTR(ctx context.Context, ip dnswire.IPv4) Result {
	s.lookups.Add(1)
	return Result{IP: ip}
}

func (s *bulkSource) ScanShard(ctx context.Context, shard dnswire.Prefix, at time.Time, emit func(Result)) error {
	s.scan(shard, emit)
	return ctx.Err()
}

// chanAsync completes probes when the test pumps them, to exercise the
// bounded window.
type chanAsync struct {
	mu      sync.Mutex
	pending []func(Result)
	started int
}

func (a *chanAsync) StartPTR(ip dnswire.IPv4, done func(Result)) {
	a.mu.Lock()
	a.started++
	a.pending = append(a.pending, func(res Result) {
		res.IP = ip
		done(res)
	})
	a.mu.Unlock()
}

func (a *chanAsync) completeOne() bool {
	a.mu.Lock()
	if len(a.pending) == 0 {
		a.mu.Unlock()
		return false
	}
	next := a.pending[0]
	a.pending = a.pending[1:]
	a.mu.Unlock()
	next(Result{Found: true, Name: "h.example.org."})
	return true
}

func (a *chanAsync) inFlight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending)
}

func TestSweepAsyncWindowBound(t *testing.T) {
	var ips []dnswire.IPv4
	p := dnswire.MustPrefix("10.0.0.0/24")
	for i := 0; i < p.NumAddresses(); i++ {
		ips = append(ips, p.Nth(i))
	}
	src := &chanAsync{}
	var results int
	doneCalled := 0
	SweepAsync(src, ips, 16, func(Result) { results++ }, func() { doneCalled++ })
	if got := src.inFlight(); got != 16 {
		t.Fatalf("in flight = %d, want window of 16", got)
	}
	for src.completeOne() {
	}
	if results != 256 {
		t.Fatalf("results = %d, want 256", results)
	}
	if doneCalled != 1 {
		t.Fatalf("done called %d times, want exactly 1", doneCalled)
	}
	src.mu.Lock()
	started := src.started
	src.mu.Unlock()
	if started != 256 {
		t.Fatalf("started = %d, want 256", started)
	}
}

func TestSweepAsyncSynchronousCompletions(t *testing.T) {
	// A source that completes synchronously inside StartPTR must not
	// overflow the stack or double-fire done.
	src := syncAsyncSource{}
	var ips []dnswire.IPv4
	p := dnswire.MustPrefix("10.0.0.0/16")
	for i := 0; i < p.NumAddresses(); i++ {
		ips = append(ips, p.Nth(i))
	}
	results, doneCalled := 0, 0
	SweepAsync(src, ips, 8, func(Result) { results++ }, func() { doneCalled++ })
	if results != len(ips) || doneCalled != 1 {
		t.Fatalf("results=%d done=%d, want %d/1", results, doneCalled, len(ips))
	}
}

type syncAsyncSource struct{}

func (syncAsyncSource) StartPTR(ip dnswire.IPv4, done func(Result)) {
	done(Result{IP: ip, Found: true, Name: "sync.example.org."})
}

func TestSweepAsyncEmptyInput(t *testing.T) {
	doneCalled := 0
	SweepAsync(syncAsyncSource{}, nil, 4, nil, func() { doneCalled++ })
	if doneCalled != 1 {
		t.Fatalf("done called %d times for empty input, want 1", doneCalled)
	}
}

func TestDiffRecords(t *testing.T) {
	prev := RecordSet{
		dnswire.MustIPv4("10.0.0.1"): dnswire.MustName("a.example.org"),
		dnswire.MustIPv4("10.0.0.2"): dnswire.MustName("b.example.org"),
	}
	cur := RecordSet{
		dnswire.MustIPv4("10.0.0.2"): dnswire.MustName("b2.example.org"),
		dnswire.MustIPv4("10.0.0.3"): dnswire.MustName("c.example.org"),
	}
	got := DiffRecords(prev, cur)
	want := []Change{
		{Kind: RecordRemoved, IP: dnswire.MustIPv4("10.0.0.1"), Old: dnswire.MustName("a.example.org")},
		{Kind: RecordChanged, IP: dnswire.MustIPv4("10.0.0.2"), Old: dnswire.MustName("b.example.org"), New: dnswire.MustName("b2.example.org")},
		{Kind: RecordAdded, IP: dnswire.MustIPv4("10.0.0.3"), New: dnswire.MustName("c.example.org")},
	}
	if len(got) != len(want) {
		t.Fatalf("diff = %+v", got)
	}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("diff[%d] = %+v, want %+v", i, got[i], w)
		}
	}
}
