package scanengine

import (
	"context"
	"fmt"
	"testing"

	"rdnsprivacy/internal/dnswire"
)

// TestEventsStreamProperties is a property test over the subscriber event
// stream: for 100 seeded random sweeps (varying prefix count, prefix
// length, record density, and worker count) the stream must satisfy the
// ordering and uniqueness invariants the CLI and the reactive consumers
// rely on:
//
//   - exactly one EventSweepStart, delivered before everything else;
//   - exactly one EventSweepDone, delivered after everything else, and
//     carrying the snapshot;
//   - one EventShardDone per shard with ShardsDone strictly increasing
//     up to ShardsTotal;
//   - with WithResultEvents, exactly one EventResult per address of the
//     sweep — no duplicates, no omissions, none out of range — matching
//     Stats.Probes.
func TestEventsStreamProperties(t *testing.T) {
	for seed := uint64(1); seed <= 100; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := testSplitmix(seed)
			// 1-3 prefixes of 26-24 bits, disjoint by construction
			// (distinct /16 per prefix index).
			nPrefixes := 1 + int(rng()%3)
			var targets []dnswire.Prefix
			records := map[dnswire.IPv4]dnswire.Name{}
			want := map[dnswire.IPv4]bool{}
			for pi := 0; pi < nPrefixes; pi++ {
				bits := 24 + int(rng()%3)
				base := dnswire.MustIPv4(fmt.Sprintf("10.%d.%d.0", seed%200, pi))
				p := dnswire.Prefix{Addr: base, Bits: bits}
				targets = append(targets, p)
				n := p.NumAddresses()
				for i := 0; i < n; i++ {
					ip := p.Nth(i)
					want[ip] = true
					// ~1/4 of addresses carry a PTR.
					if rng()%4 == 0 {
						records[ip] = dnswire.MustName(fmt.Sprintf("h%d.example.org", ip.Uint32()))
					}
				}
			}
			workers := 1 + int(rng()%8)

			sc := New(newCountingSource(records),
				WithWorkers(workers), WithShardBits(25), WithResultEvents())
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			events := sc.Events(ctx)

			type streamCheck struct {
				starts, dones, shardDones int
				lastShardsDone            int
				shardsTotal               int
				seen                      map[dnswire.IPv4]int
				violation                 string
			}
			chk := &streamCheck{seen: map[dnswire.IPv4]int{}}
			collected := make(chan struct{})
			go func() {
				defer close(collected)
				for ev := range events {
					switch ev.Kind {
					case EventSweepStart:
						chk.starts++
						if chk.dones > 0 || chk.shardDones > 0 || len(chk.seen) > 0 {
							chk.violation = "sweep-start not first"
						}
						chk.shardsTotal = ev.ShardsTotal
					case EventResult:
						if chk.starts == 0 || chk.dones > 0 {
							chk.violation = "result outside sweep window"
						}
						chk.seen[ev.Result.IP]++
					case EventShardDone:
						chk.shardDones++
						if ev.ShardsDone <= chk.lastShardsDone {
							chk.violation = fmt.Sprintf(
								"ShardsDone not increasing: %d after %d",
								ev.ShardsDone, chk.lastShardsDone)
						}
						chk.lastShardsDone = ev.ShardsDone
					case EventSweepDone:
						chk.dones++
						if ev.Snapshot == nil {
							chk.violation = "sweep-done without snapshot"
						}
						return
					}
				}
			}()

			snap, err := sc.Scan(context.Background(), Request{Targets: targets})
			if err != nil {
				t.Fatal(err)
			}
			<-collected

			if chk.violation != "" {
				t.Fatal(chk.violation)
			}
			if chk.starts != 1 || chk.dones != 1 {
				t.Fatalf("starts=%d dones=%d, want 1/1", chk.starts, chk.dones)
			}
			if chk.shardDones != chk.shardsTotal || chk.lastShardsDone != chk.shardsTotal {
				t.Fatalf("shard dones=%d last=%d, want total=%d",
					chk.shardDones, chk.lastShardsDone, chk.shardsTotal)
			}
			for ip, n := range chk.seen {
				if n != 1 {
					t.Fatalf("address %s emitted %d results, want 1", ip, n)
				}
				if !want[ip] {
					t.Fatalf("result for %s outside the sweep targets", ip)
				}
			}
			if len(chk.seen) != len(want) {
				t.Fatalf("got %d unique results, want %d", len(chk.seen), len(want))
			}
			if uint64(len(chk.seen)) != snap.Stats.Probes {
				t.Fatalf("results=%d, Stats.Probes=%d", len(chk.seen), snap.Stats.Probes)
			}
		})
	}
}

// testSplitmix is a deterministic uint64 stream for property-test inputs.
func testSplitmix(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
}
