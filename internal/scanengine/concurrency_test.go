package scanengine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/simclock"
	"rdnsprivacy/internal/testutil"
)

// TestNegativeCacheTTLExpiryTable drives the negative cache through
// cache / expire cycles on a simulated clock: absences are served from
// cache strictly within the TTL, invalidated strictly past it, and found
// records never enter the cache at all. Run with -race: sweeps hammer the
// sharded cache from concurrent workers.
func TestNegativeCacheTTLExpiryTable(t *testing.T) {
	found := dnswire.MustIPv4("203.0.113.7")
	records := map[dnswire.IPv4]dnswire.Name{
		found: dnswire.MustName("alive.example.org"),
	}
	cases := []struct {
		name    string
		ttl     time.Duration
		advance time.Duration
		workers int
		// expectations for the sweep after the advance
		wantCached  bool // absences still served from cache
		wantEntries int  // live cache entries right after the advance
	}{
		{"within ttl cached", time.Hour, 30 * time.Minute, 1, true, 255},
		{"past ttl invalidated", time.Hour, 2 * time.Hour, 1, false, 0},
		{"short ttl expires fast", time.Minute, 2 * time.Minute, 1, false, 0},
		{"long ttl survives days", 72 * time.Hour, 24 * time.Hour, 1, true, 255},
		{"parallel workers within ttl", time.Hour, 30 * time.Minute, 8, true, 255},
		{"parallel workers past ttl", time.Hour, 2 * time.Hour, 8, false, 0},
	}
	target := []dnswire.Prefix{dnswire.MustPrefix("203.0.113.0/24")}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			testutil.VerifyNoLeaks(t)
			clock := simclock.NewSimulated(time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC))
			src := newCountingSource(records)
			sc := New(src, WithWorkers(tc.workers), WithShardBits(26),
				WithNegativeTTL(tc.ttl), WithClock(clock))
			ctx := context.Background()

			// Sweep 1 populates the cache: 255 absences, 1 found record.
			snap, err := sc.Scan(ctx, Request{Targets: target})
			if err != nil {
				t.Fatal(err)
			}
			if snap.Stats.CacheHits != 0 || snap.Stats.Found != 1 {
				t.Fatalf("seed sweep: hits=%d found=%d", snap.Stats.CacheHits, snap.Stats.Found)
			}
			if got := sc.cache.Len(); got != 255 {
				t.Fatalf("cache entries after seed sweep = %d, want 255 (found records must not be cached)", got)
			}

			clock.Advance(tc.advance)
			if got := sc.cache.Len(); got != tc.wantEntries {
				t.Fatalf("cache entries after advance = %d, want %d", got, tc.wantEntries)
			}
			snap, err = sc.Scan(ctx, Request{Targets: target})
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantCached {
				if snap.Stats.CacheHits != 255 || src.totalProbes() != 256+1 {
					t.Fatalf("cached sweep: hits=%d probes=%d, want 255 hits and 257 probes",
						snap.Stats.CacheHits, src.totalProbes())
				}
			} else {
				if snap.Stats.CacheHits != 0 || src.totalProbes() != 2*256 {
					t.Fatalf("expired sweep: hits=%d probes=%d, want 0 hits and 512 probes",
						snap.Stats.CacheHits, src.totalProbes())
				}
			}
			// The found record is never cache-served.
			if got := src.probeCount(found); got != 2 {
				t.Fatalf("found record probed %d times, want 2 (once per sweep)", got)
			}
		})
	}
}

// TestMidShardCancellationConcurrentConsumers cancels a sweep mid-shard
// while event subscribers drain the stream and a second Scan call is
// queued behind the first. The cancelled sweep must return a partial
// snapshot without inferring changes, the queued sweep must run to
// completion unaffected, every subscriber must observe both sweeps, and
// nothing may leak. Run with -race.
func TestMidShardCancellationConcurrentConsumers(t *testing.T) {
	cases := []struct {
		name      string
		workers   int
		consumers int
		cancelAt  int32
	}{
		{"single worker single consumer", 1, 1, 20},
		{"parallel workers fanout consumers", 4, 3, 50},
		{"more workers than shards", 8, 2, 8},
	}
	target := []dnswire.Prefix{dnswire.MustPrefix("10.0.0.0/24")}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			testutil.VerifyNoLeaks(t)
			scanCtx, cancelScan := context.WithCancel(context.Background())
			defer cancelScan()
			consCtx, cancelCons := context.WithCancel(context.Background())
			defer cancelCons()

			var probes atomic.Int32
			src := SourceFunc(func(ctx context.Context, ip dnswire.IPv4) Result {
				if probes.Add(1) == tc.cancelAt {
					cancelScan()
				}
				return Result{IP: ip, Name: "h.example.org.", Found: true}
			})
			// /24 target at /26 shards: 4 shards of 64 addresses.
			sc := New(src, WithWorkers(tc.workers), WithShardBits(26))

			var wg sync.WaitGroup
			var starts, dones atomic.Int32
			for i := 0; i < tc.consumers; i++ {
				ch := sc.Events(consCtx)
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case ev, ok := <-ch:
							if !ok {
								return
							}
							switch ev.Kind {
							case EventSweepStart:
								starts.Add(1)
							case EventSweepDone:
								dones.Add(1)
							}
						case <-consCtx.Done():
							return
						}
					}
				}()
			}

			type scanOut struct {
				snap *Snapshot
				err  error
			}
			first := make(chan scanOut, 1)
			go func() {
				snap, err := sc.Scan(scanCtx, Request{Targets: target})
				first <- scanOut{snap, err}
			}()
			// Queue a second sweep behind the first once it is mid-flight,
			// so scanMu serialization under cancellation is exercised.
			for probes.Load() == 0 {
				time.Sleep(time.Millisecond)
			}
			second := make(chan scanOut, 1)
			go func() {
				snap, err := sc.Scan(context.Background(), Request{Targets: target})
				second <- scanOut{snap, err}
			}()

			out1 := <-first
			if !errors.Is(out1.err, context.Canceled) {
				t.Fatalf("cancelled sweep err = %v, want context.Canceled", out1.err)
			}
			if out1.snap == nil || !out1.snap.Partial {
				t.Fatalf("cancelled sweep snapshot = %+v, want partial", out1.snap)
			}
			if out1.snap.Changes != nil {
				t.Fatal("partial sweep must not infer changes")
			}

			out2 := <-second
			if out2.err != nil {
				t.Fatalf("queued sweep failed: %v", out2.err)
			}
			if out2.snap.Partial {
				t.Fatal("queued sweep must not inherit the first sweep's cancellation")
			}
			if got := len(out2.snap.Records); got != 256 {
				t.Fatalf("queued sweep found %d records, want 256", got)
			}
			if sc.Previous() == nil {
				t.Fatal("complete queued sweep must become the diff baseline")
			}

			// Both sweeps were announced to every subscriber. The events
			// are buffered at emit time, so poll for the consumers to
			// drain them before asserting the exact counts.
			want := int32(2 * tc.consumers)
			deadline := time.Now().Add(5 * time.Second)
			for (starts.Load() != want || dones.Load() != want) && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if starts.Load() != want || dones.Load() != want {
				t.Fatalf("subscribers saw %d starts / %d dones, want %d each",
					starts.Load(), dones.Load(), want)
			}
			cancelCons()
			wg.Wait()
		})
	}
}
