// Package scanengine is the sharded, parallel reverse-DNS snapshot engine.
//
// The paper's pipeline repeatedly snapshots the full (simulated) IPv4
// reverse tree at OpenINTEL/Rapid7 cadence and diffs successive snapshots
// to infer joins and leaves (Section 2.1, Section 3). This package
// industrializes that hot path: it partitions the target address space
// into per-/16 shards, fans the shards out over a bounded pool of resolver
// workers, merges the results into a RecordSet snapshot with per-shard
// progress, and feeds incremental diffs to downstream consumers without
// materializing the sweep twice.
//
// The public surface is the context-aware Scanner API:
//
//	sc := scanengine.New(src, scanengine.WithWorkers(8))
//	snap, err := sc.Scan(ctx, scanengine.Request{Targets: prefixes})
//	for _, ch := range snap.Changes { ... } // deltas vs. the previous sweep
//
// plus a streaming Events iterator for consumers that want progress and
// deltas as they happen:
//
//	for ev := range sc.Events(ctx) { ... }
//
// Sources come in three shapes. A Source resolves one PTR probe
// synchronously (a UDP client, an in-process authoritative server). A
// ShardSource additionally enumerates a whole shard at once — the fast
// path used by bulk snapshotters that already hold record state. An
// AsyncSource is callback-based (the simulation-fabric resolver); the
// goroutine-free SweepAsync drives it with a bounded in-flight window and
// is what the deprecated dnsclient callback scanners wrap.
//
// The engine also keeps a negative-response cache with TTL-based
// invalidation: NXDOMAIN-heavy static ranges (the vast majority of the
// IPv4 space) are re-probed only after the TTL lapses, which is what makes
// high-cadence re-sweeps cheap.
package scanengine

import (
	"sort"

	"rdnsprivacy/internal/dnswire"
)

// RecordSet maps addresses to their PTR targets at one instant.
type RecordSet map[dnswire.IPv4]dnswire.Name

// ChangeKind classifies a record-set delta.
type ChangeKind int

// Change kinds.
const (
	// RecordAdded: a PTR appeared — a client (likely) joined.
	RecordAdded ChangeKind = iota
	// RecordRemoved: a PTR vanished — a client left and its lease ended.
	RecordRemoved
	// RecordChanged: the name at an address changed — the address was
	// reallocated to a different client.
	RecordChanged
)

// String returns a mnemonic.
func (k ChangeKind) String() string {
	switch k {
	case RecordAdded:
		return "added"
	case RecordRemoved:
		return "removed"
	case RecordChanged:
		return "changed"
	default:
		return "unknown"
	}
}

// Change is one observed delta between snapshots.
type Change struct {
	Kind ChangeKind
	IP   dnswire.IPv4
	// Old is the previous name (Removed/Changed).
	Old dnswire.Name
	// New is the current name (Added/Changed).
	New dnswire.Name
}

// DiffRecords compares two snapshots and returns the deltas, sorted by
// address. The Scanner computes the same deltas incrementally during a
// sweep; this function serves consumers that hold two materialized sets.
func DiffRecords(prev, cur RecordSet) []Change {
	var out []Change
	for ip, oldName := range prev {
		newName, ok := cur[ip]
		switch {
		case !ok:
			out = append(out, Change{Kind: RecordRemoved, IP: ip, Old: oldName})
		case newName != oldName:
			out = append(out, Change{Kind: RecordChanged, IP: ip, Old: oldName, New: newName})
		}
	}
	for ip, newName := range cur {
		if _, ok := prev[ip]; !ok {
			out = append(out, Change{Kind: RecordAdded, IP: ip, New: newName})
		}
	}
	sortChanges(out)
	return out
}

func sortChanges(out []Change) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].IP != out[j].IP {
			return out[i].IP.Uint32() < out[j].IP.Uint32()
		}
		return out[i].Kind < out[j].Kind
	})
}
