package dnswire

import (
	"errors"
	"strings"
	"testing"
)

func TestParseName(t *testing.T) {
	tests := []struct {
		in      string
		want    Name
		wantErr bool
	}{
		{"", Root, false},
		{".", Root, false},
		{"example.com", "example.com.", false},
		{"example.com.", "example.com.", false},
		{"EXAMPLE.COM", "example.com.", false},
		{"Brians-iPhone.campus.example.edu", "brians-iphone.campus.example.edu.", false},
		{"34.216.184.93.in-addr.arpa.", "34.216.184.93.in-addr.arpa.", false},
		{strings.Repeat("a", 64) + ".com", "", true},
		{"a..b", "", true},
	}
	for _, tc := range tests {
		got, err := ParseName(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseName(%q) succeeded, want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseName(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestParseNameTooLong(t *testing.T) {
	// 128 two-octet labels (each "a.") is 256 encoded octets > 255.
	long := strings.Repeat("a.", 128)
	if _, err := ParseName(long); !errors.Is(err, ErrNameTooLong) {
		t.Fatalf("ParseName(long) err = %v, want ErrNameTooLong", err)
	}
}

func TestNameLabels(t *testing.T) {
	n := MustName("a.b.c.example.com")
	labels := n.Labels()
	want := []string{"a", "b", "c", "example", "com"}
	if len(labels) != len(want) {
		t.Fatalf("Labels() = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("Labels() = %v, want %v", labels, want)
		}
	}
	if got := Root.Labels(); got != nil {
		t.Fatalf("Root.Labels() = %v, want nil", got)
	}
}

func TestNameParent(t *testing.T) {
	tests := []struct{ in, want Name }{
		{MustName("a.b.c."), MustName("b.c.")},
		{MustName("c."), Root},
		{Root, Root},
	}
	for _, tc := range tests {
		if got := tc.in.Parent(); got != tc.want {
			t.Errorf("%q.Parent() = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestNameHasSuffix(t *testing.T) {
	tests := []struct {
		name, zone Name
		want       bool
	}{
		{MustName("host.example.com"), MustName("example.com"), true},
		{MustName("example.com"), MustName("example.com"), true},
		{MustName("example.com"), MustName("host.example.com"), false},
		{MustName("badexample.com"), MustName("example.com"), false},
		{MustName("anything.net"), Root, true},
	}
	for _, tc := range tests {
		if got := tc.name.HasSuffix(tc.zone); got != tc.want {
			t.Errorf("%q.HasSuffix(%q) = %v, want %v", tc.name, tc.zone, got, tc.want)
		}
	}
}

func TestNamePrepend(t *testing.T) {
	n, err := MustName("example.com").Prepend("Host1")
	if err != nil {
		t.Fatal(err)
	}
	if n != MustName("host1.example.com") {
		t.Fatalf("Prepend = %q", n)
	}
	if _, err := MustName("example.com").Prepend(""); !errors.Is(err, ErrEmptyLabel) {
		t.Fatalf("Prepend empty err = %v, want ErrEmptyLabel", err)
	}
	if _, err := MustName("example.com").Prepend(strings.Repeat("x", 64)); !errors.Is(err, ErrLabelTooLong) {
		t.Fatalf("Prepend long err = %v, want ErrLabelTooLong", err)
	}
}

func TestAppendNameRoundTrip(t *testing.T) {
	names := []Name{
		Root,
		MustName("com"),
		MustName("example.com"),
		MustName("brians-iphone.dyn.campus-a.example.edu"),
		MustName("34.216.184.93.in-addr.arpa"),
	}
	for _, n := range names {
		buf, err := AppendName(nil, n)
		if err != nil {
			t.Fatalf("AppendName(%q): %v", n, err)
		}
		got, off, err := decodeName(buf, 0)
		if err != nil {
			t.Fatalf("decodeName(%q): %v", n, err)
		}
		if got != n {
			t.Fatalf("round trip: got %q, want %q", got, n)
		}
		if off != len(buf) {
			t.Fatalf("decodeName offset = %d, want %d", off, len(buf))
		}
	}
}

func TestDecodeNameCompression(t *testing.T) {
	// Build: "f.isi.arpa" at offset 0, then "foo.f.isi.arpa" as
	// pointer-compressed (RFC 1035 §4.1.4 example, adapted).
	buf, err := AppendName(nil, MustName("f.isi.arpa"))
	if err != nil {
		t.Fatal(err)
	}
	second := len(buf)
	buf = append(buf, 3, 'f', 'o', 'o', 0xC0, 0x00)
	got, off, err := decodeName(buf, second)
	if err != nil {
		t.Fatal(err)
	}
	if got != MustName("foo.f.isi.arpa") {
		t.Fatalf("decoded %q, want foo.f.isi.arpa.", got)
	}
	if off != len(buf) {
		t.Fatalf("offset = %d, want %d", off, len(buf))
	}
}

func TestDecodeNamePointerLoopRejected(t *testing.T) {
	// A pointer that points at itself must be rejected (forward/self
	// pointers are invalid).
	buf := []byte{0xC0, 0x00}
	if _, _, err := decodeName(buf, 0); err == nil {
		t.Fatal("self-pointer accepted")
	}
	// A two-step loop: name at 2 points to 0, name at 0 points to 2.
	buf = []byte{0xC0, 0x02, 0xC0, 0x00}
	if _, _, err := decodeName(buf, 2); err == nil {
		t.Fatal("pointer loop accepted")
	}
}

func TestDecodeNameTruncated(t *testing.T) {
	cases := [][]byte{
		{},
		{5, 'a', 'b'},
		{0xC0},
		{3, 'c', 'o', 'm'}, // missing root octet
	}
	for i, buf := range cases {
		if _, _, err := decodeName(buf, 0); err == nil {
			t.Errorf("case %d: truncated name accepted", i)
		}
	}
}

func TestDecodeNameReservedLabelType(t *testing.T) {
	buf := []byte{0x80, 'x', 0}
	if _, _, err := decodeName(buf, 0); !errors.Is(err, ErrReservedLabel) {
		t.Fatalf("err = %v, want ErrReservedLabel", err)
	}
}

func TestCompressedNameReuse(t *testing.T) {
	var cmap compressionMap
	buf, err := appendCompressedName(nil, MustName("host1.example.com"), &cmap)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := len(buf)
	second := len(buf)
	buf, err = appendCompressedName(buf, MustName("host2.example.com"), &cmap)
	if err != nil {
		t.Fatal(err)
	}
	// host2 + pointer should be much shorter than the full name.
	if len(buf)-firstLen >= firstLen {
		t.Fatalf("no compression: second name used %d octets", len(buf)-firstLen)
	}
	got, _, err := decodeName(buf, second)
	if err != nil {
		t.Fatal(err)
	}
	if got != MustName("host2.example.com") {
		t.Fatalf("decoded %q", got)
	}
	// Identical name compresses to a bare pointer (2 octets).
	third := len(buf)
	buf, err = appendCompressedName(buf, MustName("host1.example.com"), &cmap)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf)-third != 2 {
		t.Fatalf("identical name used %d octets, want 2", len(buf)-third)
	}
	got, _, err = decodeName(buf, third)
	if err != nil {
		t.Fatal(err)
	}
	if got != MustName("host1.example.com") {
		t.Fatalf("decoded %q", got)
	}
}
