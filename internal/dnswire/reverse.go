package dnswire

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// IPv4 is an IPv4 address in host-independent form. It is the address type
// used throughout this repository (the net package types carry more
// machinery than the simulation needs and allocate when formatting).
type IPv4 [4]byte

// ParseIPv4 parses dotted-quad notation.
func ParseIPv4(s string) (IPv4, error) {
	var ip IPv4
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return ip, fmt.Errorf("dnswire: %q is not a dotted quad", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 || (len(p) > 1 && p[0] == '0') {
			return ip, fmt.Errorf("dnswire: %q is not a dotted quad", s)
		}
		ip[i] = byte(v)
	}
	return ip, nil
}

// MustIPv4 is ParseIPv4 that panics on error, for constants and tests.
func MustIPv4(s string) IPv4 {
	ip, err := ParseIPv4(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// IPv4FromUint32 converts a big-endian integer form to an address.
func IPv4FromUint32(v uint32) IPv4 {
	return IPv4{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// Uint32 returns the big-endian integer form.
func (ip IPv4) Uint32() uint32 {
	return uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
}

// String returns dotted-quad notation.
func (ip IPv4) String() string {
	var b [15]byte
	buf := strconv.AppendInt(b[:0], int64(ip[0]), 10)
	buf = append(buf, '.')
	buf = strconv.AppendInt(buf, int64(ip[1]), 10)
	buf = append(buf, '.')
	buf = strconv.AppendInt(buf, int64(ip[2]), 10)
	buf = append(buf, '.')
	buf = strconv.AppendInt(buf, int64(ip[3]), 10)
	return string(buf)
}

// Slash24 returns the /24 prefix containing ip.
func (ip IPv4) Slash24() Prefix { return Prefix{Addr: IPv4{ip[0], ip[1], ip[2], 0}, Bits: 24} }

// Prefix is an IPv4 CIDR prefix.
type Prefix struct {
	Addr IPv4
	Bits int
}

// ParsePrefix parses CIDR notation such as "192.0.2.0/24". The address is
// masked to the prefix length.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("dnswire: %q is not CIDR notation", s)
	}
	ip, err := ParseIPv4(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("dnswire: bad prefix length in %q", s)
	}
	p := Prefix{Addr: ip, Bits: bits}
	p.Addr = IPv4FromUint32(p.Addr.Uint32() & p.mask())
	return p, nil
}

// MustPrefix is ParsePrefix that panics on error.
func MustPrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func (p Prefix) mask() uint32 {
	if p.Bits <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - p.Bits)
}

// Contains reports whether ip falls within p.
func (p Prefix) Contains(ip IPv4) bool {
	return ip.Uint32()&p.mask() == p.Addr.Uint32()
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Contains(q.Addr) || q.Contains(p.Addr)
}

// NumAddresses returns the number of addresses covered by p.
func (p Prefix) NumAddresses() int { return 1 << (32 - p.Bits) }

// First returns the lowest address in p (the network address).
func (p Prefix) First() IPv4 { return p.Addr }

// Last returns the highest address in p (the broadcast address for a
// subnet-sized prefix).
func (p Prefix) Last() IPv4 {
	return IPv4FromUint32(p.Addr.Uint32() | ^p.mask())
}

// Nth returns the i-th address within p, starting from the network address.
func (p Prefix) Nth(i int) IPv4 {
	return IPv4FromUint32(p.Addr.Uint32() + uint32(i))
}

// String returns CIDR notation.
func (p Prefix) String() string { return p.Addr.String() + "/" + strconv.Itoa(p.Bits) }

// Slash24s returns every /24 contained in p. For prefixes longer than /24 it
// returns the single covering /24.
func (p Prefix) Slash24s() []Prefix {
	if p.Bits >= 24 {
		return []Prefix{p.Addr.Slash24()}
	}
	n := 1 << (24 - p.Bits)
	out := make([]Prefix, 0, n)
	base := p.Addr.Uint32()
	for i := 0; i < n; i++ {
		out = append(out, Prefix{Addr: IPv4FromUint32(base + uint32(i)<<8), Bits: 24})
	}
	return out
}

// inAddrArpa is the IPv4 reverse-mapping zone (RFC 1035 §3.5).
const inAddrArpa = "in-addr.arpa."

// ReverseName returns the in-addr.arpa name for an IPv4 address, e.g.
// 93.184.216.34 -> 34.216.184.93.in-addr.arpa. (Example 1 of the paper).
func ReverseName(ip IPv4) Name {
	var b strings.Builder
	b.Grow(len(inAddrArpa) + 16)
	for i := 3; i >= 0; i-- {
		b.WriteString(strconv.Itoa(int(ip[i])))
		b.WriteByte('.')
	}
	b.WriteString(inAddrArpa)
	return Name(b.String())
}

// ReverseZoneFor24 returns the reverse zone name for a /24 prefix, e.g.
// 192.0.2.0/24 -> 2.0.192.in-addr.arpa.
func ReverseZoneFor24(p Prefix) (Name, error) {
	if p.Bits != 24 {
		return "", fmt.Errorf("dnswire: reverse zone wants a /24, got %s", p)
	}
	s := fmt.Sprintf("%d.%d.%d.%s", p.Addr[2], p.Addr[1], p.Addr[0], inAddrArpa)
	return Name(s), nil
}

// ErrNotReverseName reports that a name is not under in-addr.arpa or is
// malformed.
var ErrNotReverseName = errors.New("dnswire: not an in-addr.arpa name")

// ParseReverseName extracts the IPv4 address from an in-addr.arpa name.
func ParseReverseName(n Name) (IPv4, error) {
	var ip IPv4
	s := string(n)
	if !strings.HasSuffix(s, "."+inAddrArpa) {
		return ip, ErrNotReverseName
	}
	s = strings.TrimSuffix(s, "."+inAddrArpa)
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return ip, ErrNotReverseName
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return ip, ErrNotReverseName
		}
		ip[3-i] = byte(v)
	}
	return ip, nil
}
