package dnswire

import "errors"

// This file implements the DNS UPDATE message format of RFC 2136, the
// protocol real DHCP servers and IPAM systems use to install and remove
// records on authoritative name servers. In an UPDATE message the four
// sections of a normal DNS message are reinterpreted:
//
//	Question   -> Zone        (one entry naming the zone, type SOA)
//	Answer     -> Prerequisite
//	Authority  -> Update      (the records to add or delete)
//	Additional -> Additional
//
// Deletions are encoded by class: CLASS NONE deletes a specific RR,
// CLASS ANY with empty RDATA deletes an RRset (or, with TYPE ANY, every
// record at the name).

// ClassNONE is the RFC 2136 "delete an RR from an RRset" class.
const ClassNONE Class = 254

// ErrNotUpdate reports that a message is not an UPDATE.
var ErrNotUpdate = errors.New("dnswire: not an UPDATE message")

// NewUpdate builds an empty UPDATE message for a zone.
func NewUpdate(id uint16, zone Name) *Message {
	return &Message{
		Header: Header{ID: id, OpCode: OpUpdate},
		Questions: []Question{{
			Name: zone, Type: TypeSOA, Class: ClassIN,
		}},
	}
}

// UpdateZone returns the zone an UPDATE message addresses.
func (m *Message) UpdateZone() (Name, error) {
	if m.Header.OpCode != OpUpdate {
		return "", ErrNotUpdate
	}
	if len(m.Questions) != 1 || m.Questions[0].Type != TypeSOA {
		return "", errors.New("dnswire: malformed UPDATE zone section")
	}
	return m.Questions[0].Name, nil
}

// AddRR appends an add-this-record operation to the update section.
func (m *Message) AddRR(rr Record) {
	m.Authorities = append(m.Authorities, rr)
}

// DeleteRRset appends a delete-all-records-of-this-type operation: class
// ANY, TTL 0, empty RDATA (RFC 2136 §2.5.2).
func (m *Message) DeleteRRset(name Name, t Type) {
	m.Authorities = append(m.Authorities, Record{
		Name:  name,
		Type:  t,
		Class: ClassANY,
		TTL:   0,
		Data:  RawData{RType: t},
	})
}

// DeleteName appends a delete-everything-at-this-name operation: type ANY,
// class ANY, empty RDATA (RFC 2136 §2.5.3).
func (m *Message) DeleteName(name Name) {
	m.Authorities = append(m.Authorities, Record{
		Name:  name,
		Type:  TypeANY,
		Class: ClassANY,
		TTL:   0,
		Data:  RawData{RType: TypeANY},
	})
}
