package dnswire

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestParseIPv4(t *testing.T) {
	tests := []struct {
		in      string
		want    IPv4
		wantErr bool
	}{
		{"93.184.216.34", IPv4{93, 184, 216, 34}, false},
		{"0.0.0.0", IPv4{}, false},
		{"255.255.255.255", IPv4{255, 255, 255, 255}, false},
		{"256.1.1.1", IPv4{}, true},
		{"1.2.3", IPv4{}, true},
		{"1.2.3.4.5", IPv4{}, true},
		{"01.2.3.4", IPv4{}, true},
		{"a.b.c.d", IPv4{}, true},
		{"", IPv4{}, true},
	}
	for _, tc := range tests {
		got, err := ParseIPv4(tc.in)
		if tc.wantErr != (err != nil) {
			t.Errorf("ParseIPv4(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseIPv4(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestIPv4StringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		ip := IPv4FromUint32(v)
		parsed, err := ParseIPv4(ip.String())
		return err == nil && parsed == ip && parsed.Uint32() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReverseNamePaperExample(t *testing.T) {
	// Example 1 in the paper: 93.184.216.34 ->
	// 34.216.184.93.in-addr.arpa.
	got := ReverseName(MustIPv4("93.184.216.34"))
	if got != MustName("34.216.184.93.in-addr.arpa") {
		t.Fatalf("ReverseName = %q", got)
	}
}

func TestReverseNameRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		ip := IPv4FromUint32(v)
		back, err := ParseReverseName(ReverseName(ip))
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseReverseNameRejects(t *testing.T) {
	bad := []Name{
		MustName("example.com"),
		MustName("in-addr.arpa"),
		MustName("1.2.3.in-addr.arpa"),
		MustName("1.2.3.4.5.in-addr.arpa"),
		MustName("300.2.3.4.in-addr.arpa"),
		MustName("x.2.3.4.in-addr.arpa"),
	}
	for _, n := range bad {
		if _, err := ParseReverseName(n); !errors.Is(err, ErrNotReverseName) {
			t.Errorf("ParseReverseName(%q) err = %v, want ErrNotReverseName", n, err)
		}
	}
}

func TestPrefixParse(t *testing.T) {
	p := MustPrefix("192.0.2.129/24")
	if p.Addr != MustIPv4("192.0.2.0") || p.Bits != 24 {
		t.Fatalf("prefix = %v", p)
	}
	if p.String() != "192.0.2.0/24" {
		t.Fatalf("String() = %q", p.String())
	}
	for _, bad := range []string{"192.0.2.0", "192.0.2.0/33", "192.0.2.0/-1", "x/24"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) accepted", bad)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustPrefix("10.20.0.0/16")
	if !p.Contains(MustIPv4("10.20.255.1")) {
		t.Fatal("should contain 10.20.255.1")
	}
	if p.Contains(MustIPv4("10.21.0.1")) {
		t.Fatal("should not contain 10.21.0.1")
	}
	all := MustPrefix("0.0.0.0/0")
	if !all.Contains(MustIPv4("255.255.255.255")) {
		t.Fatal("/0 should contain everything")
	}
}

func TestPrefixNthFirstLast(t *testing.T) {
	p := MustPrefix("192.0.2.0/24")
	if p.First() != MustIPv4("192.0.2.0") {
		t.Fatalf("First = %v", p.First())
	}
	if p.Last() != MustIPv4("192.0.2.255") {
		t.Fatalf("Last = %v", p.Last())
	}
	if p.Nth(17) != MustIPv4("192.0.2.17") {
		t.Fatalf("Nth(17) = %v", p.Nth(17))
	}
	if p.NumAddresses() != 256 {
		t.Fatalf("NumAddresses = %d", p.NumAddresses())
	}
}

func TestPrefixSlash24s(t *testing.T) {
	p := MustPrefix("10.1.0.0/22")
	subs := p.Slash24s()
	if len(subs) != 4 {
		t.Fatalf("got %d /24s, want 4", len(subs))
	}
	want := []string{"10.1.0.0/24", "10.1.1.0/24", "10.1.2.0/24", "10.1.3.0/24"}
	for i, s := range subs {
		if s.String() != want[i] {
			t.Fatalf("Slash24s[%d] = %v, want %v", i, s, want[i])
		}
	}
	// A /28 maps to its covering /24.
	small := MustPrefix("10.1.5.16/28").Slash24s()
	if len(small) != 1 || small[0].String() != "10.1.5.0/24" {
		t.Fatalf("Slash24s(/28) = %v", small)
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustPrefix("10.0.0.0/8")
	b := MustPrefix("10.5.0.0/16")
	c := MustPrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("nested prefixes should overlap")
	}
	if a.Overlaps(c) {
		t.Fatal("disjoint prefixes should not overlap")
	}
}

func TestReverseZoneFor24(t *testing.T) {
	z, err := ReverseZoneFor24(MustPrefix("192.0.2.0/24"))
	if err != nil {
		t.Fatal(err)
	}
	if z != MustName("2.0.192.in-addr.arpa") {
		t.Fatalf("zone = %q", z)
	}
	if _, err := ReverseZoneFor24(MustPrefix("192.0.0.0/16")); err == nil {
		t.Fatal("accepted a /16")
	}
}

func TestSlash24OfAddress(t *testing.T) {
	ip := MustIPv4("172.16.5.200")
	p := ip.Slash24()
	if p.String() != "172.16.5.0/24" {
		t.Fatalf("Slash24 = %v", p)
	}
	if !p.Contains(ip) {
		t.Fatal("address not in its own /24")
	}
}

func TestReverseNameWithinZone(t *testing.T) {
	// Property: the reverse name of any address is inside the reverse
	// zone of its /24.
	f := func(v uint32) bool {
		ip := IPv4FromUint32(v)
		zone, err := ReverseZoneFor24(ip.Slash24())
		if err != nil {
			return false
		}
		return ReverseName(ip).HasSuffix(zone)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
