package dnswire

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The scanner parses answers from arbitrary remote servers; the server
// parses queries from arbitrary clients. Neither may panic on hostile
// input, whatever the bytes.

func TestUnmarshalNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(buf []byte) bool {
		// Unmarshal may error; it must not panic.
		_, _ = Unmarshal(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalNeverPanicsOnMutatedMessages(t *testing.T) {
	// Start from valid messages and flip bytes: these inputs reach much
	// deeper into the decoder than pure noise.
	rng := rand.New(rand.NewSource(1))
	base := &Message{
		Header: Header{ID: 7, Response: true, Authoritative: true},
		Questions: []Question{{
			Name: MustName("10.2.0.192.in-addr.arpa"), Type: TypePTR, Class: ClassIN,
		}},
		Answers: []Record{{
			Name: MustName("10.2.0.192.in-addr.arpa"), Type: TypePTR,
			Class: ClassIN, TTL: 300,
			Data: PTRData{Target: MustName("brians-iphone.dyn.campus-a.edu")},
		}},
		Authorities: []Record{{
			Name: MustName("2.0.192.in-addr.arpa"), Type: TypeSOA,
			Class: ClassIN, TTL: 300,
			Data: SOAData{
				MName: MustName("ns1.campus-a.edu"),
				RName: MustName("hostmaster.campus-a.edu"),
			},
		}},
	}
	wire, err := base.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		mutated := append([]byte(nil), wire...)
		flips := 1 + rng.Intn(4)
		for f := 0; f < flips; f++ {
			mutated[rng.Intn(len(mutated))] ^= byte(1 << rng.Intn(8))
		}
		if rng.Intn(4) == 0 {
			mutated = mutated[:rng.Intn(len(mutated))+1]
		}
		_, _ = Unmarshal(mutated) // must not panic
	}
}

func TestRoundTripSurvivesReMarshal(t *testing.T) {
	// Whatever Unmarshal accepts must marshal back and decode to the
	// same structure (idempotence over the decoded form).
	base := NewQuery(42, MustName("34.216.184.93.in-addr.arpa"), TypePTR)
	resp := NewResponse(base, RCodeNoError)
	resp.Answers = append(resp.Answers, Record{
		Name: MustName("34.216.184.93.in-addr.arpa"), Type: TypePTR,
		Class: ClassIN, TTL: 60,
		Data: PTRData{Target: MustName("example-host.example.com")},
	})
	wire1, err := resp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	decoded1, err := Unmarshal(wire1)
	if err != nil {
		t.Fatal(err)
	}
	wire2, err := decoded1.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	decoded2, err := Unmarshal(wire2)
	if err != nil {
		t.Fatal(err)
	}
	if decoded1.Header != decoded2.Header {
		t.Fatalf("headers differ: %+v vs %+v", decoded1.Header, decoded2.Header)
	}
	if len(decoded1.Answers) != len(decoded2.Answers) {
		t.Fatalf("answers differ")
	}
	if decoded1.Answers[0].String() != decoded2.Answers[0].String() {
		t.Fatalf("answer differs: %s vs %s", decoded1.Answers[0], decoded2.Answers[0])
	}
}

func TestNameEncodingPropertyRoundTrip(t *testing.T) {
	// Arbitrary label content (LDH subset) survives encode/decode.
	f := func(raw []byte) bool {
		// Build a plausible name out of the fuzz input.
		const chars = "abcdefghijklmnopqrstuvwxyz0123456789-"
		label := make([]byte, 0, 20)
		for _, b := range raw {
			label = append(label, chars[int(b)%len(chars)])
			if len(label) >= 20 {
				break
			}
		}
		if len(label) == 0 {
			return true
		}
		name, err := ParseName(string(label) + ".example.com")
		if err != nil {
			return true
		}
		buf, err := AppendName(nil, name)
		if err != nil {
			return false
		}
		got, _, err := decodeName(buf, 0)
		return err == nil && got == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
