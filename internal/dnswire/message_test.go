package dnswire

import (
	"errors"
	"reflect"
	"testing"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, MustName("34.216.184.93.in-addr.arpa"), TypePTR)
	wire, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.ID != 0x1234 {
		t.Fatalf("ID = %#x, want 0x1234", got.Header.ID)
	}
	if got.Header.Response {
		t.Fatal("QR bit set on a query")
	}
	if len(got.Questions) != 1 {
		t.Fatalf("questions = %d, want 1", len(got.Questions))
	}
	qq := got.Questions[0]
	if qq.Name != MustName("34.216.184.93.in-addr.arpa") || qq.Type != TypePTR || qq.Class != ClassIN {
		t.Fatalf("question = %v", qq)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	query := NewQuery(7, MustName("10.2.0.192.in-addr.arpa"), TypePTR)
	resp := NewResponse(query, RCodeNoError)
	resp.Header.Authoritative = true
	resp.Answers = append(resp.Answers, Record{
		Name:  MustName("10.2.0.192.in-addr.arpa"),
		Type:  TypePTR,
		Class: ClassIN,
		TTL:   300,
		Data:  PTRData{Target: MustName("brians-iphone.dyn.example.edu")},
	})
	wire, err := resp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Header.Response || !got.Header.Authoritative {
		t.Fatalf("header = %+v", got.Header)
	}
	if got.Header.ID != 7 {
		t.Fatalf("ID = %d, want 7", got.Header.ID)
	}
	if len(got.Answers) != 1 {
		t.Fatalf("answers = %d, want 1", len(got.Answers))
	}
	ans := got.Answers[0]
	ptr, ok := ans.Data.(PTRData)
	if !ok {
		t.Fatalf("answer data is %T, want PTRData", ans.Data)
	}
	if ptr.Target != MustName("brians-iphone.dyn.example.edu") {
		t.Fatalf("PTR target = %q", ptr.Target)
	}
	if ans.TTL != 300 {
		t.Fatalf("TTL = %d, want 300", ans.TTL)
	}
}

func TestNXDomainWithSOA(t *testing.T) {
	query := NewQuery(42, MustName("9.2.0.192.in-addr.arpa"), TypePTR)
	resp := NewResponse(query, RCodeNXDomain)
	resp.Header.Authoritative = true
	resp.Authorities = append(resp.Authorities, Record{
		Name:  MustName("2.0.192.in-addr.arpa"),
		Type:  TypeSOA,
		Class: ClassIN,
		TTL:   3600,
		Data: SOAData{
			MName:   MustName("ns1.example.edu"),
			RName:   MustName("hostmaster.example.edu"),
			Serial:  2021112301,
			Refresh: 7200,
			Retry:   900,
			Expire:  1209600,
			Minimum: 300,
		},
	})
	wire, err := resp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.RCode != RCodeNXDomain {
		t.Fatalf("RCode = %v, want NXDOMAIN", got.Header.RCode)
	}
	if len(got.Authorities) != 1 {
		t.Fatalf("authorities = %d, want 1", len(got.Authorities))
	}
	soa, ok := got.Authorities[0].Data.(SOAData)
	if !ok {
		t.Fatalf("authority data is %T, want SOAData", got.Authorities[0].Data)
	}
	if soa.Serial != 2021112301 || soa.Minimum != 300 {
		t.Fatalf("SOA = %+v", soa)
	}
}

func TestAllRecordTypesRoundTrip(t *testing.T) {
	msg := &Message{
		Header: Header{ID: 1, Response: true},
		Answers: []Record{
			{Name: MustName("a.example.com"), Type: TypeA, Class: ClassIN, TTL: 60,
				Data: AData{Addr: [4]byte{192, 0, 2, 7}}},
			{Name: MustName("example.com"), Type: TypeNS, Class: ClassIN, TTL: 60,
				Data: NSData{Target: MustName("ns1.example.com")}},
			{Name: MustName("www.example.com"), Type: TypeCNAME, Class: ClassIN, TTL: 60,
				Data: CNAMEData{Target: MustName("a.example.com")}},
			{Name: MustName("example.com"), Type: TypeTXT, Class: ClassIN, TTL: 60,
				Data: TXTData{Strings: []string{"v=test", "second string"}}},
			{Name: MustName("example.com"), Type: Type(99), Class: ClassIN, TTL: 60,
				Data: RawData{RType: Type(99), Bytes: []byte{1, 2, 3}}},
		},
	}
	wire, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 5 {
		t.Fatalf("answers = %d, want 5", len(got.Answers))
	}
	if a := got.Answers[0].Data.(AData); a.String() != "192.0.2.7" {
		t.Fatalf("A = %v", a)
	}
	if ns := got.Answers[1].Data.(NSData); ns.Target != MustName("ns1.example.com") {
		t.Fatalf("NS = %v", ns)
	}
	if cn := got.Answers[2].Data.(CNAMEData); cn.Target != MustName("a.example.com") {
		t.Fatalf("CNAME = %v", cn)
	}
	txt := got.Answers[3].Data.(TXTData)
	if !reflect.DeepEqual(txt.Strings, []string{"v=test", "second string"}) {
		t.Fatalf("TXT = %v", txt.Strings)
	}
	raw := got.Answers[4].Data.(RawData)
	if !reflect.DeepEqual(raw.Bytes, []byte{1, 2, 3}) {
		t.Fatalf("Raw = %v", raw.Bytes)
	}
}

func TestCompressionShrinksMessages(t *testing.T) {
	// Many PTR answers under the same suffix should compress well.
	msg := &Message{Header: Header{ID: 2, Response: true}}
	for i := 0; i < 20; i++ {
		msg.Answers = append(msg.Answers, Record{
			Name:  MustName("10.2.0.192.in-addr.arpa"),
			Type:  TypePTR,
			Class: ClassIN,
			TTL:   300,
			Data:  PTRData{Target: MustName("host.dyn.campus.example.edu")},
		})
	}
	wire, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Uncompressed, each record alone is ~26 (name) + 10 + ~30 = 66+
	// octets; with compression all but the first pair of names collapse
	// to pointers. 20 records uncompressed would exceed 1300 octets.
	if len(wire) > 700 {
		t.Fatalf("message is %d octets; compression not effective", len(wire))
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 20 {
		t.Fatalf("answers = %d, want 20", len(got.Answers))
	}
	for _, rr := range got.Answers {
		if rr.Data.(PTRData).Target != MustName("host.dyn.campus.example.edu") {
			t.Fatalf("bad target %v", rr.Data)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"short header": {0, 1, 2},
		"counts overrun": {
			0, 1, 0, 0, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0,
		},
	}
	for name, buf := range cases {
		if _, err := Unmarshal(buf); err == nil {
			t.Errorf("%s: Unmarshal accepted garbage", name)
		}
	}
}

func TestUnmarshalRejectsTrailingData(t *testing.T) {
	q := NewQuery(1, MustName("example.com"), TypeA)
	wire, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	wire = append(wire, 0xDE, 0xAD)
	if _, err := Unmarshal(wire); !errors.Is(err, ErrTrailingData) {
		t.Fatalf("err = %v, want ErrTrailingData", err)
	}
}

func TestRDataLengthMismatchRejected(t *testing.T) {
	// Hand-craft a PTR whose RDLENGTH is longer than the encoded name.
	msg := &Message{
		Header: Header{ID: 3, Response: true},
		Answers: []Record{{
			Name: MustName("x.example.com"), Type: TypePTR, Class: ClassIN,
			TTL: 1, Data: PTRData{Target: MustName("y.example.org")},
		}},
	}
	wire, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Locate RDLENGTH: it is 10 octets before the end minus rdata. The
	// PTR target here is not compressed (different suffix), encoded as
	// 15 octets... simpler: corrupt the final octet count by appending
	// to RDATA without fixing RDLENGTH would break framing; instead
	// bump RDLENGTH by one and append a pad octet.
	// Find the last occurrence of the rdlen by recomputing: rdata is the
	// encoded form of y.example.org. (15 octets), so rdlen position is
	// len(wire)-15-2.
	pos := len(wire) - 15 - 2
	if wire[pos] != 0 || wire[pos+1] != 15 {
		t.Fatalf("test setup: rdlen not where expected: %d %d", wire[pos], wire[pos+1])
	}
	wire[pos+1] = 16
	wire = append(wire, 0)
	if _, err := Unmarshal(wire); err == nil {
		t.Fatal("accepted PTR with inflated RDLENGTH")
	}
}

func TestHeaderFlagRoundTrip(t *testing.T) {
	msg := &Message{Header: Header{
		ID: 9, Response: true, OpCode: OpUpdate, Authoritative: true,
		Truncated: true, RecursionDesired: true, RecursionAvailable: true,
		RCode: RCodeRefused,
	}}
	wire, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Header, msg.Header) {
		t.Fatalf("header = %+v, want %+v", got.Header, msg.Header)
	}
}

func TestTypeClassRCodeStrings(t *testing.T) {
	if TypePTR.String() != "PTR" || Type(200).String() != "TYPE200" {
		t.Fatal("Type.String broken")
	}
	if ClassIN.String() != "IN" || Class(7).String() != "CLASS7" {
		t.Fatal("Class.String broken")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" || RCode(12).String() != "RCODE12" {
		t.Fatal("RCode.String broken")
	}
}

func TestRecordString(t *testing.T) {
	rr := Record{
		Name: MustName("10.2.0.192.in-addr.arpa"), Type: TypePTR,
		Class: ClassIN, TTL: 300,
		Data: PTRData{Target: MustName("host.example.com")},
	}
	want := "10.2.0.192.in-addr.arpa. 300 IN PTR host.example.com."
	if got := rr.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func BenchmarkMarshalPTRResponse(b *testing.B) {
	query := NewQuery(7, MustName("10.2.0.192.in-addr.arpa"), TypePTR)
	resp := NewResponse(query, RCodeNoError)
	resp.Answers = append(resp.Answers, Record{
		Name: MustName("10.2.0.192.in-addr.arpa"), Type: TypePTR,
		Class: ClassIN, TTL: 300,
		Data: PTRData{Target: MustName("brians-iphone.dyn.example.edu")},
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := resp.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalPTRResponse(b *testing.B) {
	query := NewQuery(7, MustName("10.2.0.192.in-addr.arpa"), TypePTR)
	resp := NewResponse(query, RCodeNoError)
	resp.Answers = append(resp.Answers, Record{
		Name: MustName("10.2.0.192.in-addr.arpa"), Type: TypePTR,
		Class: ClassIN, TTL: 300,
		Data: PTRData{Target: MustName("brians-iphone.dyn.example.edu")},
	})
	wire, err := resp.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(wire); err != nil {
			b.Fatal(err)
		}
	}
}
