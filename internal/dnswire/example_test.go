package dnswire_test

import (
	"fmt"

	"rdnsprivacy/internal/dnswire"
)

// The paper's Example 1: translating an IPv4 address into the name queried
// for its PTR record.
func ExampleReverseName() {
	ip := dnswire.MustIPv4("93.184.216.34")
	fmt.Println(dnswire.ReverseName(ip))
	// Output: 34.216.184.93.in-addr.arpa.
}

func ExampleParseReverseName() {
	ip, err := dnswire.ParseReverseName(dnswire.MustName("34.216.184.93.in-addr.arpa"))
	if err != nil {
		panic(err)
	}
	fmt.Println(ip)
	// Output: 93.184.216.34
}

// Building and decoding a PTR query, the packet a reverse-DNS scanner
// sends.
func ExampleNewQuery() {
	q := dnswire.NewQuery(42, dnswire.ReverseName(dnswire.MustIPv4("192.0.2.10")), dnswire.TypePTR)
	wire, err := q.Marshal()
	if err != nil {
		panic(err)
	}
	decoded, err := dnswire.Unmarshal(wire)
	if err != nil {
		panic(err)
	}
	fmt.Println(decoded.Questions[0])
	// Output: 10.2.0.192.in-addr.arpa. IN PTR
}

// An RFC 2136 dynamic update: what an IPAM system sends the authoritative
// server when a DHCP lease is granted.
func ExampleNewUpdate() {
	upd := dnswire.NewUpdate(7, dnswire.MustName("2.0.192.in-addr.arpa"))
	upd.AddRR(dnswire.Record{
		Name:  dnswire.ReverseName(dnswire.MustIPv4("192.0.2.10")),
		Type:  dnswire.TypePTR,
		Class: dnswire.ClassIN,
		TTL:   300,
		Data:  dnswire.PTRData{Target: dnswire.MustName("brians-iphone.dyn.campus-a.edu")},
	})
	zone, err := upd.UpdateZone()
	if err != nil {
		panic(err)
	}
	fmt.Println(zone)
	fmt.Println(upd.Authorities[0])
	// Output:
	// 2.0.192.in-addr.arpa.
	// 10.2.0.192.in-addr.arpa. 300 IN PTR brians-iphone.dyn.campus-a.edu.
}

func ExamplePrefix_Slash24s() {
	p := dnswire.MustPrefix("10.1.0.0/22")
	for _, sub := range p.Slash24s() {
		fmt.Println(sub)
	}
	// Output:
	// 10.1.0.0/24
	// 10.1.1.0/24
	// 10.1.2.0/24
	// 10.1.3.0/24
}
