// Package dnswire implements the DNS wire format of RFC 1034/1035: message
// headers, domain names with compression pointers, questions, and the
// resource records needed for reverse-DNS measurement (PTR, A, SOA, NS, TXT,
// CNAME). It also provides the in-addr.arpa helpers used to translate
// between IPv4 addresses and reverse-lookup names.
//
// The codec is written from scratch against the RFCs and is independent of
// the net package's resolver. It is the single source of truth for every DNS
// packet that crosses the simulated fabric or a real UDP socket in this
// repository.
package dnswire

import (
	"errors"
	"strings"
)

// Limits from RFC 1035 §2.3.4 and §3.1.
const (
	// MaxLabelLen is the maximum length of a single label.
	MaxLabelLen = 63
	// MaxNameLen is the maximum length of an encoded domain name,
	// including the root length octet.
	MaxNameLen = 255
	// maxPointerHops bounds compression-pointer chains to defeat loops.
	maxPointerHops = 32
)

// Errors returned by name encoding and decoding.
var (
	ErrNameTooLong    = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong   = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel     = errors.New("dnswire: empty label")
	ErrPointerLoop    = errors.New("dnswire: compression pointer loop")
	ErrTruncatedName  = errors.New("dnswire: truncated name")
	ErrReservedLabel  = errors.New("dnswire: reserved label type")
	ErrForwardPointer = errors.New("dnswire: compression pointer is not backward")
)

// Name is a fully-qualified domain name in presentation form, always stored
// with a trailing dot (the root label). The zero value is invalid; use
// MustName, ParseName, or functions that return Names.
type Name string

// Root is the DNS root name.
const Root Name = "."

// ParseName normalizes s into a Name. It lowercases (DNS names compare
// case-insensitively), ensures a trailing dot, and validates label and name
// lengths. Escapes are not supported: this codec targets hostnames, which
// use the LDH subset plus underscore.
func ParseName(s string) (Name, error) {
	if s == "" || s == "." {
		return Root, nil
	}
	s = strings.ToLower(s)
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	// Validate by encoding into a scratch buffer.
	n := Name(s)
	if _, err := AppendName(nil, n); err != nil {
		return "", err
	}
	return n, nil
}

// MustName is ParseName that panics on error, for constants and tests.
func MustName(s string) Name {
	n, err := ParseName(s)
	if err != nil {
		panic(err)
	}
	return n
}

// String returns the presentation form.
func (n Name) String() string { return string(n) }

// IsRoot reports whether n is the root name.
func (n Name) IsRoot() bool { return n == Root || n == "" }

// Labels returns the labels of n, most-specific first, excluding the root.
func (n Name) Labels() []string {
	if n.IsRoot() {
		return nil
	}
	s := strings.TrimSuffix(string(n), ".")
	return strings.Split(s, ".")
}

// Parent returns the name with the leftmost label removed. The parent of a
// single-label name is the root; the parent of the root is the root.
func (n Name) Parent() Name {
	labels := n.Labels()
	if len(labels) <= 1 {
		return Root
	}
	return Name(strings.Join(labels[1:], ".") + ".")
}

// HasSuffix reports whether n is equal to zone or falls within it.
func (n Name) HasSuffix(zone Name) bool {
	if zone.IsRoot() {
		return true
	}
	ns, zs := string(n), string(zone)
	if ns == zs {
		return true
	}
	return strings.HasSuffix(ns, "."+zs)
}

// Prepend returns label.n. The label is lowercased.
func (n Name) Prepend(label string) (Name, error) {
	if label == "" {
		return "", ErrEmptyLabel
	}
	if len(label) > MaxLabelLen {
		return "", ErrLabelTooLong
	}
	child := Name(strings.ToLower(label) + "." + string(n))
	if _, err := AppendName(nil, child); err != nil {
		return "", err
	}
	return child, nil
}

// AppendName appends the uncompressed wire encoding of n to buf.
func AppendName(buf []byte, n Name) ([]byte, error) {
	if n.IsRoot() {
		return append(buf, 0), nil
	}
	s := string(n)
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	total := 0
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] != '.' {
			continue
		}
		label := s[start:i]
		if len(label) == 0 {
			return nil, ErrEmptyLabel
		}
		if len(label) > MaxLabelLen {
			return nil, ErrLabelTooLong
		}
		total += len(label) + 1
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
		start = i + 1
	}
	total++ // root octet
	if total > MaxNameLen {
		return nil, ErrNameTooLong
	}
	return append(buf, 0), nil
}

// compressionMap tracks names already emitted into a message so later
// occurrences can be replaced by pointers (RFC 1035 §4.1.4). It is a small
// inline table rather than a map: a typical message carries a handful of
// suffixes, and a linear scan over an array that lives on the caller's stack
// beats per-message map allocation and hashing on the PTR-sweep hot path.
// When the table fills, later names are simply emitted uncompressed —
// compression is an optimization the wire format never requires.
type compressionMap struct {
	n     int
	names [24]string
	offs  [24]uint16
}

// lookup returns the recorded offset of suffix.
func (c *compressionMap) lookup(suffix string) (int, bool) {
	for i := 0; i < c.n; i++ {
		if c.names[i] == suffix {
			return int(c.offs[i]), true
		}
	}
	return 0, false
}

// record remembers that suffix was emitted at off, if there is room.
// Offsets at or past 0x4000 are unusable as pointer targets and are not
// recorded.
func (c *compressionMap) record(suffix string, off int) {
	if c.n < len(c.names) && off < 0x4000 {
		c.names[c.n] = suffix
		c.offs[c.n] = uint16(off)
		c.n++
	}
}

// appendCompressedName appends n to buf using msgStart-relative compression
// pointers recorded in cmap. Compression pointers can only address the first
// 16384 octets of a message; names beyond that are emitted uncompressed.
//
// Names are stored in presentation form with a trailing dot, so every suffix
// of a name is a plain substring: the left-to-right walk below checks, emits
// and records suffixes without materializing label slices or joined strings
// (this is the hottest function of a full PTR sweep).
func appendCompressedName(buf []byte, n Name, cmap *compressionMap) ([]byte, error) {
	if n.IsRoot() {
		return append(buf, 0), nil
	}
	s := string(n)
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	for start := 0; start < len(s); {
		suffix := s[start:]
		if off, known := cmap.lookup(suffix); known {
			return append(buf, byte(0xC0|off>>8), byte(off)), nil
		}
		dot := strings.IndexByte(suffix, '.')
		if dot == 0 {
			return nil, ErrEmptyLabel
		}
		if dot > MaxLabelLen {
			return nil, ErrLabelTooLong
		}
		cmap.record(suffix, len(buf))
		buf = append(buf, byte(dot))
		buf = append(buf, s[start:start+dot]...)
		start += dot + 1
	}
	return append(buf, 0), nil
}

// decodeName decodes a possibly-compressed name from msg starting at off.
// It returns the name and the offset just past the name's encoding at its
// original position (pointers do not advance the outer offset past their two
// octets).
func decodeName(msg []byte, off int) (Name, int, error) {
	// Decode into a fixed stack buffer: names are capped at MaxNameLen, so
	// this avoids the builder's incremental growth on the sweep hot path.
	var nb [MaxNameLen + 1]byte
	out := nb[:0]
	ptrBudget := maxPointerHops
	pos := off
	end := -1 // offset after the name at the original position
	total := 0
	for {
		if pos >= len(msg) {
			return "", 0, ErrTruncatedName
		}
		b := msg[pos]
		switch {
		case b == 0:
			if end < 0 {
				end = pos + 1
			}
			if len(out) == 0 {
				return Root, end, nil
			}
			name := Name(strings.ToLower(string(out)))
			return name, end, nil
		case b&0xC0 == 0xC0:
			if pos+1 >= len(msg) {
				return "", 0, ErrTruncatedName
			}
			target := int(b&0x3F)<<8 | int(msg[pos+1])
			if end < 0 {
				end = pos + 2
			}
			if target >= pos {
				return "", 0, ErrForwardPointer
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return "", 0, ErrPointerLoop
			}
			pos = target
		case b&0xC0 != 0:
			return "", 0, ErrReservedLabel
		default:
			length := int(b)
			if pos+1+length > len(msg) {
				return "", 0, ErrTruncatedName
			}
			total += length + 1
			if total > MaxNameLen {
				return "", 0, ErrNameTooLong
			}
			out = append(out, msg[pos+1:pos+1+length]...)
			out = append(out, '.')
			pos += 1 + length
		}
	}
}
