package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Type is a DNS RR or question type (RFC 1035 §3.2.2).
type Type uint16

// Supported RR types.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeAXFR  Type = 252
	TypeANY   Type = 255
)

// String returns the conventional mnemonic.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypePTR:
		return "PTR"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeAXFR:
		return "AXFR"
	case TypeANY:
		return "ANY"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a DNS class. Only IN is used in practice.
type Class uint16

// Classes.
const (
	ClassIN  Class = 1
	ClassANY Class = 255
)

// String returns the conventional mnemonic.
func (c Class) String() string {
	switch c {
	case ClassIN:
		return "IN"
	case ClassANY:
		return "ANY"
	case ClassNONE:
		return "NONE"
	default:
		return fmt.Sprintf("CLASS%d", uint16(c))
	}
}

// RCode is a DNS response code (RFC 1035 §4.1.1).
type RCode uint8

// Response codes.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// String returns the conventional mnemonic.
func (r RCode) String() string {
	switch r {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	default:
		return fmt.Sprintf("RCODE%d", uint8(r))
	}
}

// OpCode is a DNS operation code.
type OpCode uint8

// Operation codes.
const (
	OpQuery  OpCode = 0
	OpUpdate OpCode = 5 // RFC 2136 dynamic update
)

// Header is the fixed 12-octet DNS message header, unpacked.
type Header struct {
	// ID is the transaction identifier, echoed in responses.
	ID uint16
	// Response indicates a response (QR bit).
	Response bool
	// OpCode is the operation requested.
	OpCode OpCode
	// Authoritative indicates an authoritative answer (AA bit).
	Authoritative bool
	// Truncated indicates the message was cut to fit the transport (TC).
	Truncated bool
	// RecursionDesired is copied from query to response (RD).
	RecursionDesired bool
	// RecursionAvailable advertises recursion support (RA).
	RecursionAvailable bool
	// RCode is the response code.
	RCode RCode
}

// Question is a single entry of the question section.
type Question struct {
	Name  Name
	Type  Type
	Class Class
}

// String formats the question in dig-like notation.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// Record is a resource record. Data holds the type-specific RDATA in decoded
// form (one of the *Data types below).
type Record struct {
	Name  Name
	Type  Type
	Class Class
	TTL   uint32
	Data  RData
}

// String formats the record in zone-file-like notation.
func (r Record) String() string {
	return fmt.Sprintf("%s %d %s %s %s", r.Name, r.TTL, r.Class, r.Type, r.Data)
}

// RData is decoded resource-record data.
type RData interface {
	// append encodes the RDATA (without the length prefix) into buf,
	// using cmap for name compression when permitted by RFC 3597.
	append(buf []byte, cmap *compressionMap) ([]byte, error)
	fmt.Stringer
}

// PTRData is the RDATA of a PTR record: the hostname an address maps to.
type PTRData struct{ Target Name }

func (d PTRData) append(buf []byte, cmap *compressionMap) ([]byte, error) {
	return appendCompressedName(buf, d.Target, cmap)
}

// String returns the target name.
func (d PTRData) String() string { return string(d.Target) }

// AData is the RDATA of an A record.
type AData struct{ Addr [4]byte }

func (d AData) append(buf []byte, _ *compressionMap) ([]byte, error) {
	return append(buf, d.Addr[:]...), nil
}

// String returns the dotted-quad form.
func (d AData) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", d.Addr[0], d.Addr[1], d.Addr[2], d.Addr[3])
}

// NSData is the RDATA of an NS record.
type NSData struct{ Target Name }

func (d NSData) append(buf []byte, cmap *compressionMap) ([]byte, error) {
	return appendCompressedName(buf, d.Target, cmap)
}

// String returns the name-server name.
func (d NSData) String() string { return string(d.Target) }

// CNAMEData is the RDATA of a CNAME record.
type CNAMEData struct{ Target Name }

func (d CNAMEData) append(buf []byte, cmap *compressionMap) ([]byte, error) {
	return appendCompressedName(buf, d.Target, cmap)
}

// String returns the canonical name.
func (d CNAMEData) String() string { return string(d.Target) }

// SOAData is the RDATA of an SOA record (RFC 1035 §3.3.13).
type SOAData struct {
	MName   Name
	RName   Name
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

func (d SOAData) append(buf []byte, cmap *compressionMap) ([]byte, error) {
	var err error
	buf, err = appendCompressedName(buf, d.MName, cmap)
	if err != nil {
		return nil, err
	}
	buf, err = appendCompressedName(buf, d.RName, cmap)
	if err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint32(buf, d.Serial)
	buf = binary.BigEndian.AppendUint32(buf, d.Refresh)
	buf = binary.BigEndian.AppendUint32(buf, d.Retry)
	buf = binary.BigEndian.AppendUint32(buf, d.Expire)
	buf = binary.BigEndian.AppendUint32(buf, d.Minimum)
	return buf, nil
}

// String summarizes the SOA fields.
func (d SOAData) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d", d.MName, d.RName,
		d.Serial, d.Refresh, d.Retry, d.Expire, d.Minimum)
}

// TXTData is the RDATA of a TXT record: one or more character strings.
type TXTData struct{ Strings []string }

func (d TXTData) append(buf []byte, _ *compressionMap) ([]byte, error) {
	if len(d.Strings) == 0 {
		return nil, errors.New("dnswire: TXT record with no strings")
	}
	for _, s := range d.Strings {
		if len(s) > 255 {
			return nil, errors.New("dnswire: TXT string exceeds 255 octets")
		}
		buf = append(buf, byte(len(s)))
		buf = append(buf, s...)
	}
	return buf, nil
}

// String joins the character strings.
func (d TXTData) String() string {
	out := ""
	for i, s := range d.Strings {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%q", s)
	}
	return out
}

// RawData carries RDATA of types this codec does not decode.
type RawData struct {
	RType Type
	Bytes []byte
}

func (d RawData) append(buf []byte, _ *compressionMap) ([]byte, error) {
	return append(buf, d.Bytes...), nil
}

// String hex-summarizes the raw data.
func (d RawData) String() string { return fmt.Sprintf("\\# %d %x", len(d.Bytes), d.Bytes) }

// Message is a complete DNS message.
type Message struct {
	Header      Header
	Questions   []Question
	Answers     []Record
	Authorities []Record
	Additionals []Record
}

// Errors returned by message decoding.
var (
	ErrShortMessage = errors.New("dnswire: message shorter than header")
	ErrTrailingData = errors.New("dnswire: trailing bytes after message")
	ErrCountBounds  = errors.New("dnswire: section count exceeds message size")
)

// flag bit positions within the 16-bit flags word.
const (
	flagQR = 1 << 15
	flagAA = 1 << 10
	flagTC = 1 << 9
	flagRD = 1 << 8
	flagRA = 1 << 7
)

// Marshal encodes m into wire format with name compression.
func (m *Message) Marshal() ([]byte, error) {
	return m.AppendTo(make([]byte, 0, 512))
}

// AppendTo encodes m into wire format, appending to buf. The message must
// begin at offset 0 of the final buffer for compression pointers to be valid,
// so buf should normally be empty (it exists to allow buffer reuse).
func (m *Message) AppendTo(buf []byte) ([]byte, error) {
	if len(buf) != 0 {
		buf = buf[:0]
	}
	var flags uint16
	if m.Header.Response {
		flags |= flagQR
	}
	flags |= uint16(m.Header.OpCode&0xF) << 11
	if m.Header.Authoritative {
		flags |= flagAA
	}
	if m.Header.Truncated {
		flags |= flagTC
	}
	if m.Header.RecursionDesired {
		flags |= flagRD
	}
	if m.Header.RecursionAvailable {
		flags |= flagRA
	}
	flags |= uint16(m.Header.RCode & 0xF)

	buf = binary.BigEndian.AppendUint16(buf, m.Header.ID)
	buf = binary.BigEndian.AppendUint16(buf, flags)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Questions)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Answers)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Authorities)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Additionals)))

	var cmap compressionMap
	var err error
	for _, q := range m.Questions {
		buf, err = appendCompressedName(buf, q.Name, &cmap)
		if err != nil {
			return nil, fmt.Errorf("question %s: %w", q.Name, err)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	for _, section := range [][]Record{m.Answers, m.Authorities, m.Additionals} {
		for _, rr := range section {
			buf, err = appendRecord(buf, rr, &cmap)
			if err != nil {
				return nil, fmt.Errorf("record %s: %w", rr.Name, err)
			}
		}
	}
	return buf, nil
}

func appendRecord(buf []byte, rr Record, cmap *compressionMap) ([]byte, error) {
	var err error
	buf, err = appendCompressedName(buf, rr.Name, cmap)
	if err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Type))
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Class))
	buf = binary.BigEndian.AppendUint32(buf, rr.TTL)
	// Reserve the RDLENGTH slot, fill after encoding.
	lenAt := len(buf)
	buf = append(buf, 0, 0)
	if rr.Data == nil {
		return nil, errors.New("dnswire: record has nil data")
	}
	buf, err = rr.Data.append(buf, cmap)
	if err != nil {
		return nil, err
	}
	rdlen := len(buf) - lenAt - 2
	if rdlen > 0xFFFF {
		return nil, errors.New("dnswire: RDATA exceeds 65535 octets")
	}
	binary.BigEndian.PutUint16(buf[lenAt:], uint16(rdlen))
	return buf, nil
}

// Unmarshal decodes a wire-format message.
func Unmarshal(msg []byte) (*Message, error) {
	if len(msg) < 12 {
		return nil, ErrShortMessage
	}
	var m Message
	m.Header.ID = binary.BigEndian.Uint16(msg[0:2])
	flags := binary.BigEndian.Uint16(msg[2:4])
	m.Header.Response = flags&flagQR != 0
	m.Header.OpCode = OpCode(flags >> 11 & 0xF)
	m.Header.Authoritative = flags&flagAA != 0
	m.Header.Truncated = flags&flagTC != 0
	m.Header.RecursionDesired = flags&flagRD != 0
	m.Header.RecursionAvailable = flags&flagRA != 0
	m.Header.RCode = RCode(flags & 0xF)

	qd := int(binary.BigEndian.Uint16(msg[4:6]))
	an := int(binary.BigEndian.Uint16(msg[6:8]))
	ns := int(binary.BigEndian.Uint16(msg[8:10]))
	ar := int(binary.BigEndian.Uint16(msg[10:12]))
	// A question needs at least 5 octets, a record at least 11.
	if 12+qd*5+(an+ns+ar)*11 > len(msg) {
		return nil, ErrCountBounds
	}

	off := 12
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		q.Name, off, err = decodeName(msg, off)
		if err != nil {
			return nil, fmt.Errorf("question %d: %w", i, err)
		}
		if off+4 > len(msg) {
			return nil, ErrTruncatedName
		}
		q.Type = Type(binary.BigEndian.Uint16(msg[off:]))
		q.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
		off += 4
		m.Questions = append(m.Questions, q)
	}
	for _, sec := range []struct {
		count int
		dst   *[]Record
	}{{an, &m.Answers}, {ns, &m.Authorities}, {ar, &m.Additionals}} {
		for i := 0; i < sec.count; i++ {
			var rr Record
			rr, off, err = decodeRecord(msg, off)
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i, err)
			}
			*sec.dst = append(*sec.dst, rr)
		}
	}
	if off != len(msg) {
		return nil, ErrTrailingData
	}
	return &m, nil
}

func decodeRecord(msg []byte, off int) (Record, int, error) {
	var rr Record
	var err error
	rr.Name, off, err = decodeName(msg, off)
	if err != nil {
		return rr, 0, err
	}
	if off+10 > len(msg) {
		return rr, 0, ErrTruncatedName
	}
	rr.Type = Type(binary.BigEndian.Uint16(msg[off:]))
	rr.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
	rr.TTL = binary.BigEndian.Uint32(msg[off+4:])
	rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
	off += 10
	if off+rdlen > len(msg) {
		return rr, 0, fmt.Errorf("dnswire: RDATA length %d overruns message", rdlen)
	}
	rdata := msg[off : off+rdlen]
	rdEnd := off + rdlen
	// UPDATE deletion operations (class ANY/NONE) carry empty RDATA even
	// for types that otherwise require one (RFC 2136 §2.5.2).
	if rdlen == 0 && rr.Class != ClassIN {
		rr.Data = RawData{RType: rr.Type}
		return rr, rdEnd, nil
	}
	switch rr.Type {
	case TypePTR:
		target, n, err := decodeName(msg, off)
		if err != nil {
			return rr, 0, err
		}
		if n != rdEnd {
			return rr, 0, fmt.Errorf("dnswire: PTR RDATA length mismatch")
		}
		rr.Data = PTRData{Target: target}
	case TypeNS:
		target, n, err := decodeName(msg, off)
		if err != nil {
			return rr, 0, err
		}
		if n != rdEnd {
			return rr, 0, fmt.Errorf("dnswire: NS RDATA length mismatch")
		}
		rr.Data = NSData{Target: target}
	case TypeCNAME:
		target, n, err := decodeName(msg, off)
		if err != nil {
			return rr, 0, err
		}
		if n != rdEnd {
			return rr, 0, fmt.Errorf("dnswire: CNAME RDATA length mismatch")
		}
		rr.Data = CNAMEData{Target: target}
	case TypeA:
		if rdlen != 4 {
			return rr, 0, fmt.Errorf("dnswire: A RDATA length %d, want 4", rdlen)
		}
		var d AData
		copy(d.Addr[:], rdata)
		rr.Data = d
	case TypeSOA:
		var d SOAData
		pos := off
		d.MName, pos, err = decodeName(msg, pos)
		if err != nil {
			return rr, 0, err
		}
		d.RName, pos, err = decodeName(msg, pos)
		if err != nil {
			return rr, 0, err
		}
		if pos+20 != rdEnd {
			return rr, 0, fmt.Errorf("dnswire: SOA RDATA length mismatch")
		}
		d.Serial = binary.BigEndian.Uint32(msg[pos:])
		d.Refresh = binary.BigEndian.Uint32(msg[pos+4:])
		d.Retry = binary.BigEndian.Uint32(msg[pos+8:])
		d.Expire = binary.BigEndian.Uint32(msg[pos+12:])
		d.Minimum = binary.BigEndian.Uint32(msg[pos+16:])
		rr.Data = d
	case TypeTXT:
		var d TXTData
		pos := 0
		for pos < len(rdata) {
			l := int(rdata[pos])
			if pos+1+l > len(rdata) {
				return rr, 0, fmt.Errorf("dnswire: TXT string overruns RDATA")
			}
			d.Strings = append(d.Strings, string(rdata[pos+1:pos+1+l]))
			pos += 1 + l
		}
		if len(d.Strings) == 0 {
			return rr, 0, fmt.Errorf("dnswire: empty TXT RDATA")
		}
		rr.Data = d
	default:
		cp := make([]byte, rdlen)
		copy(cp, rdata)
		rr.Data = RawData{RType: rr.Type, Bytes: cp}
	}
	return rr, rdEnd, nil
}

// NewQuery builds a single-question query message.
func NewQuery(id uint16, name Name, qtype Type) *Message {
	return &Message{
		Header:    Header{ID: id, RecursionDesired: false},
		Questions: []Question{{Name: name, Type: qtype, Class: ClassIN}},
	}
}

// NewResponse builds a response skeleton echoing the query's ID, question and
// RD bit.
func NewResponse(query *Message, rcode RCode) *Message {
	resp := &Message{
		Header: Header{
			ID:               query.Header.ID,
			Response:         true,
			OpCode:           query.Header.OpCode,
			RecursionDesired: query.Header.RecursionDesired,
			RCode:            rcode,
		},
	}
	resp.Questions = append(resp.Questions, query.Questions...)
	return resp
}
