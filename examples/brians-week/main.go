// Brians-week reproduces the paper's headline case study (§7.1, Figure 8):
// tracking every device named after a Brian on a campus network across
// several weeks of reactive measurement, watching work patterns, the
// Thanksgiving trip home, and a Galaxy Note 9 that first appears on Cyber
// Monday — presumably fresh from the sales.
//
//	go run ./examples/brians-week
//
// The whole campaign runs on a simulated clock: six weeks of hourly ICMP
// sweeps and reactive reverse-DNS lookups complete in seconds.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"rdnsprivacy/internal/core"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/privleak"
)

func main() {
	cfg := core.Config{
		Seed: 7,
		Universe: netsim.UniverseConfig{
			FillerSlash24s:        400,
			LeakyNetworks:         12,
			NonLeakyDynamic:       2,
			PeoplePerDynamicBlock: 12,
		},
		LeakThresholds: privleak.Config{MinUniqueNames: 8, MinRatio: 0.02},
		// Six weeks: Monday 2021-10-25 through Sunday 2021-12-05,
		// spanning Thanksgiving (Nov 25) and Cyber Monday (Nov 29).
		SupplementalStart: time.Date(2021, 10, 25, 0, 0, 0, 0, time.UTC),
		SupplementalEnd:   time.Date(2021, 12, 5, 0, 0, 0, 0, time.UTC),
	}
	study, err := core.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Running six weeks of supplemental measurement against Academic-A...")
	fmt.Println("(hourly ICMP sweeps + reactive rDNS, Table 2 back-off schedule)")
	fmt.Println()

	fig8 := study.Figure8()
	fig8.Render(os.Stdout)

	fmt.Println("Reading the raster: █ = device present, ░ = weekend, ▒ = Thanksgiving.")
	fmt.Println("Anyone able to issue PTR queries could draw this picture of Brian's life.")
}
