// Covid-wfh reproduces the paper's work-from-home case study (§7.2,
// Figures 9 and 10) on a custom pair of networks: an enterprise whose
// employees are sent home, and a campus where education buildings empty
// while student housing fills — observed purely through daily reverse-DNS
// snapshot counts, the way OpenINTEL data reveals it.
//
//	go run ./examples/covid-wfh
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"rdnsprivacy/internal/casestudy"
	"rdnsprivacy/internal/core"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/privleak"
	"rdnsprivacy/internal/textplot"
)

func main() {
	study, err := core.NewStudy(core.Config{
		Seed: 3,
		Universe: netsim.UniverseConfig{
			FillerSlash24s:        400,
			LeakyNetworks:         12,
			NonLeakyDynamic:       2,
			PeoplePerDynamicBlock: 20,
		},
		LeakThresholds: privleak.Config{MinUniqueNames: 8, MinRatio: 0.02},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Scanning two years of daily reverse-DNS snapshots (2020-2021)...")
	fmt.Println()

	// Figure 9 for the study's selected networks.
	study.Figure9().Render(os.Stdout)

	// Figure 10: the campus-internal story, education vs housing.
	study.Figure10().Render(os.Stdout)

	// And the same drop measured directly for one enterprise, with raw
	// counts, to show the analysis is just daily record counting.
	res := study.NetworkDaily("Enterprise-C")
	totals := casestudy.EntrySeries(res.Series, nil)
	rep := casestudy.WFH("Enterprise-C", totals, time.Date(2021, 3, 15, 0, 0, 0, 0, time.UTC))
	textplot.Table(os.Stdout, "Enterprise-C: daily PTR-count means around its WFH mandate",
		[]string{"Window", "Mean (percent of max)"},
		[][]string{
			{"before 2021-03-15", fmt.Sprintf("%.1f%%", rep.PrePandemicMean)},
			{"April-May 2021", fmt.Sprintf("%.1f%%", rep.LockdownMean)},
		})
	fmt.Println("No packets ever entered these networks: every number above came from")
	fmt.Println("publicly queryable PTR records changing as employees stayed home.")
}
