// Zone-audit plays the auditor (or attacker) against an operator who made
// two mistakes at once: carry-over of DHCP Host Names into reverse DNS,
// and open AXFR zone transfers. One TCP query dumps the whole zone; the
// Section 5 analysis then reads the device inventory out of it — no
// address scanning required. The operator then closes transfers, and the
// auditor falls back to a sharded parallel PTR sweep through the snapshot
// engine — same inventory, just more queries: closing AXFR alone does not
// stop enumeration.
//
//	go run ./examples/zone-audit
//
// Everything runs on loopback sockets: a real DNS server, a real transfer,
// a real sweep, a real analysis.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"rdnsprivacy/internal/dhcp"
	"rdnsprivacy/internal/dhcpwire"
	"rdnsprivacy/internal/dnsclient"
	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/ipam"
	"rdnsprivacy/internal/names"
	"rdnsprivacy/internal/privleak"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/simclock"
)

func main() {
	// ── The operator's side ────────────────────────────────────────
	prefix := dnswire.MustPrefix("10.77.0.0/24")
	origin, err := dnswire.ReverseZoneFor24(prefix)
	if err != nil {
		log.Fatal(err)
	}
	zone := dnsserver.NewZone(dnsserver.ZoneConfig{
		Origin:    origin,
		PrimaryNS: dnswire.MustName("ns1.corp-z.com"),
		Mbox:      dnswire.MustName("hostmaster.corp-z.com"),
	})
	srv := dnsserver.NewServer()
	srv.AddZone(zone)
	srv.SetTransferPolicy(true) // mistake #2: transfers open
	updater := ipam.NewUpdater(ipam.Config{
		Policy: ipam.PolicyCarryOver, // mistake #1: carry-over
		Suffix: dnswire.MustName("dyn.corp-z.com"),
	})
	if err := updater.AttachZone(zone); err != nil {
		log.Fatal(err)
	}
	dhcpSrv := dhcp.NewServer(simclock.Real{}, dhcp.ServerConfig{
		ServerIP:  prefix.Nth(1),
		Pools:     []dnswire.Prefix{prefix},
		LeaseTime: time.Hour,
		Sink:      updater,
	})
	// A morning's worth of employees join.
	for i, owner := range []string{"jacob", "emma", "olivia", "noah", "mia",
		"liam", "sophia", "lucas", "ava", "ethan", "brian"} {
		kind := "s-iPhone"
		if i%3 == 1 {
			kind = "s-MacBook-Pro"
		}
		if i%3 == 2 {
			kind = "s-Galaxy-S10"
		}
		cl := dhcp.NewClient(simclock.Real{}, dhcpSrv, dhcp.ClientConfig{
			CHAddr:   dhcpwire.HardwareAddr{2, 0, 0, 0, 0, byte(i + 1)},
			HostName: owner + kind,
		})
		if _, err := cl.Join(); err != nil {
			log.Fatal(err)
		}
	}

	udpConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer udpConn.Close()
	go srv.Serve(udpConn)
	addr := udpConn.LocalAddr().String()
	tcpLn, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer tcpLn.Close()
	go srv.ServeTCP(tcpLn)
	fmt.Printf("operator: authoritative DNS for %s on %s (AXFR open)\n\n", origin, addr)

	// ── The auditor's side: one query, whole zone ──────────────────
	client := &dnsclient.UDPClient{Server: addr, Timeout: 3 * time.Second}
	records, err := client.TransferZone(origin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auditor: AXFR returned %d records in a single TCP query\n\n", len(records))

	// Feed the transfer straight into the Section 5 analysis.
	res := analyze(func(observe func(dnswire.IPv4, dnswire.Name)) {
		for _, rr := range records {
			ptr, ok := rr.Data.(dnswire.PTRData)
			if !ok {
				continue
			}
			ip, err := dnswire.ParseReverseName(rr.Name)
			if err != nil {
				continue
			}
			observe(ip, ptr.Target)
		}
	})
	printFindings("via AXFR", res)

	// ── The operator closes transfers; the auditor sweeps instead ──
	srv.SetTransferPolicy(false)
	if _, err := client.TransferZone(origin); err == nil {
		log.Fatal("transfer still open after SetTransferPolicy(false)")
	}
	fmt.Println("\noperator: transfers closed; auditor falls back to scanning")

	sc := scanengine.New(dnsclient.UDPSource{Client: client}, scanengine.WithWorkers(8))
	snap, err := sc.Scan(context.Background(), scanengine.Request{
		Targets: []dnswire.Prefix{prefix},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auditor: sharded PTR sweep covered %d addresses in %s: %d records\n\n",
		snap.Stats.Probes, snap.Elapsed.Round(time.Millisecond), len(snap.Records))
	res = analyze(func(observe func(dnswire.IPv4, dnswire.Name)) {
		for ip, name := range snap.Records {
			observe(ip, name)
		}
	})
	printFindings("via PTR sweep", res)

	fmt.Println("\nremediation, in order of impact:")
	fmt.Println("  1. stop carrying DHCP Host Names into PTR records (policy: hashed or static-form)")
	fmt.Println("  2. close zone transfers (SetTransferPolicy(false) / allow-transfer {...})")
	fmt.Println("  3. shorten record lifetimes so lingering after departure shrinks")
}

// analyze runs the Section 5 analyzer over a set of (ip, hostname)
// observations.
func analyze(emit func(observe func(dnswire.IPv4, dnswire.Name))) *privleak.Result {
	a := privleak.NewAnalyzer(privleak.Config{
		MinUniqueNames: 5, MinRatio: 0.1,
		GivenNames: append(append([]string{}, names.Top50...), names.Extra...),
	})
	emit(func(ip dnswire.IPv4, name dnswire.Name) {
		a.Observe(privleak.RecordObservation{IP: ip, HostName: name, Dynamic: true})
	})
	return a.Finish()
}

func printFindings(how string, res *privleak.Result) {
	for _, rep := range res.Identified {
		fmt.Printf("finding (%s): suffix %s leaks %d distinct given names over %d records (ratio %.2f)\n",
			how, rep.Suffix, rep.UniqueNames, rep.Records, rep.Ratio())
		fmt.Printf("         device terms seen: ")
		for term, c := range rep.DeviceTermCounts {
			fmt.Printf("%s(%d) ", term, c)
		}
		fmt.Println()
	}
}
