// Quickstart: the complete privacy-leak mechanism in one file.
//
// It builds one small network — DHCP server, IPAM carry-over policy,
// authoritative reverse DNS — places a single device on it ("Brian's
// iPhone"), and observes it from the outside with nothing but PTR queries,
// exactly as anyone on the Internet could:
//
//	go run ./examples/quickstart
//
// The run shows the three phases of the paper's Section 6 model: the record
// appears when the device joins, persists while it is present, and (because
// this client leaves silently) lingers until the DHCP lease expires.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"rdnsprivacy/internal/dnsclient"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/ipam"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/simclock"
)

func main() {
	// Monday 2021-11-01, simulated time.
	start := time.Date(2021, 11, 1, 8, 0, 0, 0, time.UTC)
	clock := simclock.NewSimulated(start)
	fab := fabric.New(clock, fabric.Config{Latency: 10 * time.Millisecond})

	// The operator side: a campus network whose IPAM carries DHCP Host
	// Names straight into the global reverse DNS.
	network, err := netsim.NewNetwork(netsim.Config{
		Name:      "Quickstart-Campus",
		Type:      netsim.Academic,
		Suffix:    dnswire.MustName("campus.example.edu"),
		Announced: dnswire.MustPrefix("10.99.0.0/20"),
		Blocks: []netsim.Block{{
			Kind:     netsim.BlockDynamic,
			Prefix:   dnswire.MustPrefix("10.99.1.0/24"),
			Policy:   ipam.PolicyCarryOver,
			SubLabel: "dyn",
		}},
		LeaseTime: time.Hour,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One device: Brian's iPhone, on the network 09:00-12:00, leaving
	// silently (no DHCPRELEASE — Brian just walks out of Wi-Fi range).
	device := &netsim.Device{
		ID:       1,
		Owner:    "brian",
		Kind:     netsim.KindIPhone,
		HostName: "Brian's iPhone",
		MAC:      [6]byte{2, 0, 0, 0, 0, 1},
		Schedule: &netsim.ScriptedScheduler{Weekly: map[time.Weekday][]netsim.Session{
			time.Monday: {{Start: 9 * time.Hour, End: 12 * time.Hour}},
		}},
	}
	if err := network.AddDevice(device, 0, netsim.Student); err != nil {
		log.Fatal(err)
	}
	ip, _ := network.DeviceIP(device)
	if err := network.Start(fab); err != nil {
		log.Fatal(err)
	}
	defer network.Stop()

	// The observer side: a plain DNS client, somewhere on the Internet.
	resolver, err := dnsclient.NewResolver(fab,
		dnsclient.WithBind(fabric.Addr{IP: dnswire.MustIPv4("198.51.100.1"), Port: 40000}),
		dnsclient.WithServer(network.DNSAddr()),
	)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	lookup := func() dnsclient.Response {
		var got dnsclient.Response
		resolver.LookupPTR(ctx, ip, func(r dnsclient.Response) { got = r })
		clock.Advance(time.Second)
		return got
	}
	show := func(label string) {
		r := lookup()
		t := clock.Now().Format("15:04")
		if r.Outcome == dnsclient.OutcomeSuccess {
			fmt.Printf("%s  %-28s PTR %s -> %s\n", t, label, ip, r.PTR)
		} else {
			fmt.Printf("%s  %-28s PTR %s -> %s\n", t, label, ip, r.Outcome)
		}
	}

	fmt.Printf("Brian's iPhone will use %s; we only ever send PTR queries.\n\n", ip)
	show("before Brian arrives:")

	clock.AdvanceTo(start.Add(90 * time.Minute)) // 09:30
	show("Brian in a lecture:")

	clock.AdvanceTo(start.Add(4*time.Hour + 15*time.Minute)) // 12:15
	show("Brian left at 12:00:")
	fmt.Println("      (no release was sent; the record lingers on the old lease)")

	clock.AdvanceTo(start.Add(6 * time.Hour)) // 14:00
	show("lease expired:")

	fmt.Println("\nEverything above was observable from outside the network —")
	fmt.Println("device make, owner's name, arrival and departure — via reverse DNS alone.")
}
