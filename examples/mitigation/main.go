// Mitigation compares the IPAM policies the paper discusses in Section 8,
// side by side: the same network, the same clients, observed by the same
// outside scanner — under carry-over (the leak), hashed identifiers (the
// paper's "using some sort of hash seems prudent"), static-form names, and
// no publication at all. It also demonstrates RFC 4702's client-side "do
// not update DNS" flag, which only helps when the operator honours it.
//
//	go run ./examples/mitigation
package main

import (
	"fmt"
	"log"
	"time"

	"rdnsprivacy/internal/dhcp"
	"rdnsprivacy/internal/dhcpwire"
	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/ipam"
	"rdnsprivacy/internal/simclock"
)

var clients = []struct {
	host  string
	fqdnN bool // sets the RFC 4702 "no DNS update" bit
}{
	{"Brian's iPhone", false},
	{"Emma's MacBook-Air", false},
	{"Jacobs-Galaxy-Note9", false},
	{"privacy-aware-laptop", true},
}

func main() {
	for _, policy := range []ipam.Policy{
		ipam.PolicyCarryOver, ipam.PolicyHashed, ipam.PolicyStaticForm, ipam.PolicyNone,
	} {
		show(policy, false)
	}
	fmt.Println("With HonorClientNoUpdate (RFC 4702 N bit respected), under carry-over:")
	show(ipam.PolicyCarryOver, true)
	fmt.Println("Note the hashed policy: names are hidden, but records still appear and")
	fmt.Println("disappear with the clients — presence tracking (Sections 6-7) survives")
	fmt.Println("every policy except static-form and none.")
}

// show runs the same four clients under one policy and prints the zone.
func show(policy ipam.Policy, honorN bool) {
	clock := simclock.NewSimulated(time.Date(2021, 11, 1, 9, 0, 0, 0, time.UTC))
	prefix := dnswire.MustPrefix("192.0.2.0/24")
	origin, err := dnswire.ReverseZoneFor24(prefix)
	if err != nil {
		log.Fatal(err)
	}
	zone := dnsserver.NewZone(dnsserver.ZoneConfig{
		Origin:    origin,
		PrimaryNS: dnswire.MustName("ns1.corp.example.com"),
		Mbox:      dnswire.MustName("hostmaster.corp.example.com"),
	})
	updater := ipam.NewUpdater(ipam.Config{
		Policy:              policy,
		Suffix:              dnswire.MustName("dyn.corp.example.com"),
		HonorClientNoUpdate: honorN,
		StaticPools:         []dnswire.Prefix{prefix},
	})
	if err := updater.AttachZone(zone); err != nil {
		log.Fatal(err)
	}
	srv := dhcp.NewServer(clock, dhcp.ServerConfig{
		ServerIP:  prefix.Nth(1),
		Pools:     []dnswire.Prefix{prefix},
		LeaseTime: time.Hour,
		Sink:      updater,
	})

	var ips []dnswire.IPv4
	for i, c := range clients {
		cfg := dhcp.ClientConfig{
			CHAddr:   dhcpwire.HardwareAddr{2, 0, 0, 0, 0, byte(i + 1)},
			HostName: c.host,
		}
		if c.fqdnN {
			cfg.ClientFQDN = &dhcpwire.ClientFQDN{
				Flags: dhcpwire.FQDNNoUpdate,
				Name:  c.host,
			}
		}
		ip, err := dhcp.NewClient(clock, srv, cfg).Join()
		if err != nil {
			log.Fatal(err)
		}
		ips = append(ips, ip)
	}

	title := fmt.Sprintf("Policy %v", policy)
	if honorN {
		title += " + honour N bit"
	}
	fmt.Printf("%s — what an outside PTR scan sees:\n", title)
	for i, ip := range ips {
		target, ok := zone.LookupPTR(dnswire.ReverseName(ip))
		shown := string(target)
		if !ok {
			shown = "(no record)"
		}
		fmt.Printf("  %-16s %-22s -> %s\n", ip, clients[i].host, shown)
	}
	fmt.Printf("  (zone holds %d records total)\n\n", zone.Len())
}
