// Heist-planner reproduces the paper's third case study (§7.3, Figure 11):
// using outside observations of a building's network to decide when the
// fewest people are around. It profiles Academic-A with the reactive
// ICMP+rDNS measurement, then shows that Academic-B — which blocks all
// ICMP at the edge — leaks the same diurnal rhythm to a high-frequency
// reverse-DNS scanner, the paper's point that ping filtering does not
// close the side channel.
//
//	go run ./examples/heist-planner
package main

import (
	"fmt"
	"log"
	"time"

	"rdnsprivacy/internal/casestudy"
	"rdnsprivacy/internal/core"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/privleak"
)

func main() {
	start := time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC) // Monday
	study, err := core.NewStudy(core.Config{
		Seed: 5,
		Universe: netsim.UniverseConfig{
			FillerSlash24s:        400,
			LeakyNetworks:         12,
			NonLeakyDynamic:       2,
			PeoplePerDynamicBlock: 16,
		},
		LeakThresholds:    privleak.Config{MinUniqueNames: 8, MinRatio: 0.02},
		SupplementalStart: start,
		SupplementalEnd:   start.AddDate(0, 0, 7),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Part 1: Academic-A through the reactive ICMP+rDNS engine.
	fmt.Println("Part 1: one week of reactive measurement against Academic-A...")
	res := study.Supplemental()
	rep := casestudy.Heist(res, "Academic-A", start, start.AddDate(0, 0, 7))
	icmpTotal, rdnsTotal := 0, 0
	for _, h := range rep.Hours {
		icmpTotal += h.ICMP
		rdnsTotal += h.RDNS
	}
	fmt.Printf("  ICMP responses: %d, rDNS observations: %d\n", icmpTotal, rdnsTotal)
	fmt.Printf("  quietest weekday hour: %02d:00 (the paper suggests ~6AM)\n", rep.QuietestHourOfDay)
	fmt.Printf("  busiest weekday hour:  %02d:00\n\n", rep.BusiestHourOfDay)

	// Part 2: Academic-B blocks ICMP entirely. A high-frequency rDNS
	// scan still reveals its rhythm: count PTR records every hour.
	fmt.Println("Part 2: Academic-B blocks all inbound ICMP. Scanning its reverse")
	fmt.Println("DNS once an hour for a week instead...")
	b, _ := study.Universe.NetworkByName("Academic-B")
	var quietHour, busyHour int
	quietCount, busyCount := 1<<30, -1
	fmt.Println()
	fmt.Println("  hour  records (Wednesday)")
	for hour := 0; hour < 24; hour++ {
		at := start.AddDate(0, 0, 2).Add(time.Duration(hour) * time.Hour)
		count := 0
		b.RecordsAt(at, func(netsim.Record) { count++ })
		if count < quietCount {
			quietCount, quietHour = count, hour
		}
		if count > busyCount {
			busyCount, busyHour = count, hour
		}
		if hour%3 == 0 {
			fmt.Printf("  %02d:00 %5d\n", hour, count)
		}
	}
	fmt.Printf("\n  quietest hour by rDNS alone: %02d:00 (%d records)\n", quietHour, quietCount)
	fmt.Printf("  busiest hour by rDNS alone:  %02d:00 (%d records)\n\n", busyHour, busyCount)

	fmt.Println("Academic-B's ping filter made no difference: the building's rhythm —")
	fmt.Println("and the best time for a heist — leaks through reverse DNS regardless.")
}
