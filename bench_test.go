// Package rdnsprivacy_test holds the benchmark harness that regenerates
// every table and figure of the paper (one benchmark per experiment, named
// after it) plus the ablation benches called out in DESIGN.md.
//
// The expensive inputs — the simulated universe, the longitudinal scanning
// campaigns and the packet-level supplemental measurement — are built once
// and shared; each benchmark then measures the analysis that produces its
// table or figure, and reports the experiment's headline number as a
// custom metric so `go test -bench=. -benchmem` doubles as a results
// summary.
package rdnsprivacy_test

import (
	"context"
	"fmt"
	"os"
	"io"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rdnsprivacy/internal/analysis"
	"rdnsprivacy/internal/casestudy"
	"rdnsprivacy/internal/core"
	"rdnsprivacy/internal/dnsclient"
	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/dynamicity"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/privleak"
	"rdnsprivacy/internal/reactive"
	"rdnsprivacy/internal/scan"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/simclock"
	"rdnsprivacy/internal/telemetry"
)

var (
	studyOnce sync.Once
	benchRef  *core.Study
)

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// benchStudy builds the shared bench-scale study and pre-computes the
// pipelines the individual benchmarks consume.
func benchStudy(b *testing.B) *core.Study {
	b.Helper()
	studyOnce.Do(func() {
		s, err := core.NewStudy(core.Config{
			Seed: 42,
			Universe: netsim.UniverseConfig{
				FillerSlash24s:        900,
				LeakyNetworks:         16,
				NonLeakyDynamic:       4,
				PeoplePerDynamicBlock: 16,
			},
			LeakThresholds:    privleak.Config{MinUniqueNames: 8, MinRatio: 0.02},
			DynamicityStart:   date(2020, time.September, 7),
			DynamicityEnd:     date(2020, time.October, 19),
			SupplementalStart: date(2021, time.November, 8),
			SupplementalEnd:   date(2021, time.December, 2),
		})
		if err != nil {
			panic(err)
		}
		benchRef = s
	})
	return benchRef
}

func BenchmarkTable1DatasetStats(b *testing.B) {
	s := benchStudy(b)
	// Benchmark one month of full-universe daily snapshots — the unit
	// of work behind Table 1's statistics.
	start := date(2021, time.June, 1)
	b.ResetTimer()
	var responses uint64
	for i := 0; i < b.N; i++ {
		res := scan.Run(scan.Campaign{
			Universe: s.Universe,
			Start:    start,
			End:      start.AddDate(0, 0, 29),
			Cadence:  scan.Daily,
		})
		responses = res.Stats.TotalResponses
	}
	b.ReportMetric(float64(responses), "responses/30d")
}

func BenchmarkFigure1DynamicFraction(b *testing.B) {
	s := benchStudy(b)
	series := s.DynamicitySeries()
	announced := s.AnnouncedPrefixes()
	b.ResetTimer()
	dynCount := 0
	for i := 0; i < b.N; i++ {
		res := dynamicity.Analyze(series, dynamicity.PaperConfig())
		entries := dynamicity.MapToAnnounced(res, announced)
		_ = dynamicity.DistributionBySize(entries)
		dynCount = len(res.DynamicPrefixes)
	}
	b.ReportMetric(float64(dynCount), "dynamic/24s")
}

func BenchmarkTable2BackoffSchedule(b *testing.B) {
	// Verify and measure the schedule arithmetic: the Table 2 walk must
	// yield 12+6+3+2 bounded probes then hourly ones.
	for i := 0; i < b.N; i++ {
		bo := reactive.NewBackoff(reactive.PaperBackoff())
		total := time.Duration(0)
		for p := 0; p < 23; p++ {
			d, ok := bo.Next()
			if !ok {
				b.Fatal("schedule ran out")
			}
			total += d
		}
		if total != 4*time.Hour {
			b.Fatalf("first 23 probes span %v, want 4h", total)
		}
	}
}

// observeLeakWindow replays the section-5 input into a fresh analyzer.
func observeLeakWindow(s *core.Study, cfg privleak.Config) *privleak.Result {
	dyn := s.Dynamicity()
	dynSet := make(map[string]bool, len(dyn.DynamicPrefixes))
	for _, p := range dyn.DynamicPrefixes {
		dynSet[p.String()] = true
	}
	a := privleak.NewAnalyzer(cfg)
	at := s.Cfg.DynamicityEnd.Add(13 * time.Hour)
	scan.SnapshotRecords(scan.Campaign{Universe: s.Universe}, at, func(r netsim.Record) {
		a.Observe(privleak.RecordObservation{
			IP: r.IP, HostName: r.HostName,
			Dynamic: dynSet[r.IP.Slash24().String()],
		})
	})
	return a.Finish()
}

func BenchmarkFigure2GivenNames(b *testing.B) {
	s := benchStudy(b)
	s.Dynamicity() // warm the cache outside the timer
	b.ResetTimer()
	matches := 0
	for i := 0; i < b.N; i++ {
		res := observeLeakWindow(s, s.Cfg.LeakThresholds)
		matches = 0
		for _, c := range res.AllNameMatches {
			matches += c
		}
	}
	b.ReportMetric(float64(matches), "name-matches")
}

func BenchmarkFigure3DeviceTerms(b *testing.B) {
	s := benchStudy(b)
	s.Dynamicity()
	b.ResetTimer()
	terms := 0
	for i := 0; i < b.N; i++ {
		res := observeLeakWindow(s, s.Cfg.LeakThresholds)
		terms = 0
		for _, c := range res.AllDeviceTerms {
			terms += c
		}
	}
	b.ReportMetric(float64(terms), "device-terms")
}

func BenchmarkFigure4NetworkTypes(b *testing.B) {
	s := benchStudy(b)
	s.Dynamicity()
	b.ResetTimer()
	identified := 0
	for i := 0; i < b.N; i++ {
		res := observeLeakWindow(s, s.Cfg.LeakThresholds)
		identified = len(res.Identified)
		_ = res.TypeBreakdown()
	}
	b.ReportMetric(float64(identified), "identified")
}

func BenchmarkTable3SupplementalStats(b *testing.B) {
	s := benchStudy(b)
	s.Supplemental() // the packet-level campaign runs once, outside the timer
	b.ResetTimer()
	var r core.Table3Result
	for i := 0; i < b.N; i++ {
		r = s.Table3()
	}
	b.ReportMetric(float64(r.RDNSResponses), "rdns-responses")
}

func BenchmarkTable4NetworkObservability(b *testing.B) {
	s := benchStudy(b)
	s.Supplemental()
	b.ResetTimer()
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(s.Table4().Rows)
	}
	b.ReportMetric(float64(rows), "networks")
}

func BenchmarkTable5GroupFunnel(b *testing.B) {
	s := benchStudy(b)
	res := s.Supplemental()
	b.ResetTimer()
	var f reactive.Funnel
	for i := 0; i < b.N; i++ {
		f = res.Funnel()
	}
	b.ReportMetric(float64(f.All), "groups")
	b.ReportMetric(100*f.Fraction(3), "reliable-pct")
}

func BenchmarkFigure6DNSErrors(b *testing.B) {
	s := benchStudy(b)
	s.Supplemental()
	b.ResetTimer()
	days := 0
	for i := 0; i < b.N; i++ {
		days = len(s.Figure6().Days)
	}
	b.ReportMetric(float64(days), "days")
}

func BenchmarkFigure7aTimingHistogram(b *testing.B) {
	s := benchStudy(b)
	res := s.Supplemental()
	b.ResetTimer()
	var h *analysis.Histogram
	for i := 0; i < b.N; i++ {
		h = analysis.NewHistogram(0, 180, 36)
		for _, d := range res.RemovalDeltas("") {
			h.Observe(d)
		}
	}
	b.ReportMetric(float64(h.Total()), "samples")
}

func BenchmarkFigure7bTimingCDF(b *testing.B) {
	s := benchStudy(b)
	s.Supplemental()
	b.ResetTimer()
	within60 := 0.0
	for i := 0; i < b.N; i++ {
		within60 = s.Figure7b().Within60Overall
	}
	b.ReportMetric(100*within60, "within-60m-pct")
}

func BenchmarkFigure8LifeOfBrian(b *testing.B) {
	s := benchStudy(b)
	res := s.Supplemental()
	b.ResetTimer()
	tracks := 0
	for i := 0; i < b.N; i++ {
		tracks = len(casestudy.TrackName(res, "Academic-A", "brian"))
	}
	b.ReportMetric(float64(tracks), "brian-devices")
}

func BenchmarkFigure9WorkFromHome(b *testing.B) {
	s := benchStudy(b)
	res := s.NetworkDaily("Academic-A") // campaign cached outside the timer
	b.ResetTimer()
	drop := 0.0
	for i := 0; i < b.N; i++ {
		totals := casestudy.EntrySeries(res.Series, nil)
		rep := casestudy.WFH("Academic-A", totals, date(2020, time.March, 16))
		drop = rep.PrePandemicMean - rep.LockdownMean
	}
	b.ReportMetric(drop, "lockdown-drop-pts")
}

func BenchmarkFigure10CampusCrossover(b *testing.B) {
	s := benchStudy(b)
	n, _ := s.Universe.NetworkByName("Academic-C")
	edu, housing := netsim.EducationHousingSplit(n)
	daily := s.NetworkDaily("Academic-C")
	b.ResetTimer()
	var crossed float64
	for i := 0; i < b.N; i++ {
		rep := casestudy.Crossover(
			casestudy.EntrySeries(daily.Series, edu),
			casestudy.EntrySeries(daily.Series, housing),
			date(2020, time.February, 1), 7)
		if !rep.Crossover.IsZero() {
			crossed = 1
		}
	}
	b.ReportMetric(crossed, "crossover-found")
}

func BenchmarkFigure11HeistTiming(b *testing.B) {
	s := benchStudy(b)
	res := s.Supplemental()
	from := date(2021, time.November, 8)
	b.ResetTimer()
	quiet := 0
	for i := 0; i < b.N; i++ {
		quiet = casestudy.Heist(res, "Academic-A", from, from.AddDate(0, 0, 7)).QuietestHourOfDay
	}
	b.ReportMetric(float64(quiet), "quietest-hour")
}

func BenchmarkValidationCampusGroundTruth(b *testing.B) {
	// The full Section 4.1 validation: build the ground-truth campus,
	// scan it for the three-month window, run the heuristic, and check
	// perfect recovery — per iteration.
	for i := 0; i < b.N; i++ {
		campus, truth, err := netsim.BuildValidationCampus(uint64(i)+1, time.UTC)
		if err != nil {
			b.Fatal(err)
		}
		u := &netsim.Universe{Networks: []*netsim.Network{campus}}
		res := scan.Run(scan.Campaign{
			Universe: u,
			Start:    date(2021, time.January, 1),
			End:      date(2021, time.March, 31),
			Cadence:  scan.Daily,
		})
		verdict := dynamicity.Analyze(res.Series, dynamicity.PaperConfig())
		if len(verdict.DynamicPrefixes) != len(truth["dynamic"]) {
			b.Fatalf("found %d dynamic prefixes, want %d",
				len(verdict.DynamicPrefixes), len(truth["dynamic"]))
		}
	}
}

// sweepServer builds an authoritative server answering PTR queries for the
// given /24s, with every other address populated.
func sweepServer(b *testing.B, slash24s []dnswire.Prefix) *dnsserver.Server {
	b.Helper()
	srv := dnsserver.NewServer()
	for _, p := range slash24s {
		origin, err := dnswire.ReverseZoneFor24(p)
		if err != nil {
			b.Fatal(err)
		}
		zone := dnsserver.NewZone(dnsserver.ZoneConfig{
			Origin:    origin,
			PrimaryNS: dnswire.MustName("ns1.bench.example"),
			Mbox:      dnswire.MustName("hostmaster.bench.example"),
		})
		for i := 0; i < p.NumAddresses(); i += 2 {
			ip := p.Nth(i)
			zone.SetPTR(dnswire.ReverseName(ip),
				dnswire.MustName(fmt.Sprintf("host-%d.dyn.bench.example", ip.Uint32())))
		}
		srv.AddZone(zone)
	}
	return srv
}

// BenchmarkScanEngineFullSweep compares a full PTR sweep through the sharded
// snapshot engine against the legacy single-threaded callback scanner, over
// an identical record set. Both sides do the same per-query wire work
// (marshal, authoritative lookup, unmarshal, outcome classification); the
// engine fans it out over a worker pool.
func BenchmarkScanEngineFullSweep(b *testing.B) {
	targets := []dnswire.Prefix{dnswire.MustPrefix("10.50.0.0/20")}
	var slash24s []dnswire.Prefix
	for _, t := range targets {
		slash24s = append(slash24s, t.Slash24s()...)
	}
	addrs := 0
	for _, t := range targets {
		addrs += t.NumAddresses()
	}

	b.Run("legacy-scanptr", func(b *testing.B) {
		clock := simclock.NewSimulated(date(2021, time.November, 8))
		fab := fabric.New(clock, fabric.Config{})
		srv := sweepServer(b, slash24s)
		if _, err := srv.AttachFabric(fab, fabric.Addr{IP: dnswire.MustIPv4("192.0.2.53"), Port: 53}); err != nil {
			b.Fatal(err)
		}
		res, err := dnsclient.NewResolver(fab,
			dnsclient.WithBind(fabric.Addr{IP: dnswire.MustIPv4("198.51.100.1"), Port: 40001}),
			dnsclient.WithServer(fabric.Addr{IP: dnswire.MustIPv4("192.0.2.53"), Port: 53}))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		records := 0
		for i := 0; i < b.N; i++ {
			records = 0
			finished := false
			res.ScanPrefixPTR(context.Background(), targets[0], func(r dnsclient.ScanResult) {
				if r.Response.Outcome == dnsclient.OutcomeSuccess {
					records++
				}
			}, func() { finished = true })
			for !finished {
				clock.Advance(50 * time.Millisecond)
			}
		}
		b.StopTimer()
		if records != addrs/2 {
			b.Fatalf("legacy sweep found %d records, want %d", records, addrs/2)
		}
		b.ReportMetric(float64(addrs*b.N)/b.Elapsed().Seconds(), "queries/s")
	})

	b.Run("engine-8-workers", func(b *testing.B) {
		srv := sweepServer(b, slash24s)
		sc := scanengine.New(&dnsclient.ServerSource{Server: srv},
			scanengine.WithWorkers(8), scanengine.WithShardBits(24))
		b.ResetTimer()
		var snap *scanengine.Snapshot
		for i := 0; i < b.N; i++ {
			var err error
			snap, err = sc.Scan(context.Background(), scanengine.Request{Targets: targets})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if len(snap.Records) != addrs/2 {
			b.Fatalf("engine sweep found %d records, want %d", len(snap.Records), addrs/2)
		}
		b.ReportMetric(float64(addrs*b.N)/b.Elapsed().Seconds(), "queries/s")
	})

	// The engine with telemetry attached, for eyeballing the live-sink
	// cost next to the nil-sink number above (which bench-check gates —
	// the nil path is the default and must stay within the baseline).
	b.Run("engine-8-workers-telemetry", func(b *testing.B) {
		srv := sweepServer(b, slash24s)
		reg := telemetry.NewRegistry()
		sc := scanengine.New(&dnsclient.ServerSource{Server: srv},
			scanengine.WithWorkers(8), scanengine.WithShardBits(24),
			scanengine.WithTelemetry(reg))
		b.ResetTimer()
		var snap *scanengine.Snapshot
		for i := 0; i < b.N; i++ {
			var err error
			snap, err = sc.Scan(context.Background(), scanengine.Request{Targets: targets})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if len(snap.Records) != addrs/2 {
			b.Fatalf("engine sweep found %d records, want %d", len(snap.Records), addrs/2)
		}
		b.ReportMetric(float64(addrs*b.N)/b.Elapsed().Seconds(), "queries/s")
	})

	// The engine with full cross-layer correlation: per-probe client and
	// server spans plus per-shard corr events, the docs/observability.md
	// tracing path end to end. bench-check gates this within ±15% so the
	// correlation machinery cannot silently become a hot-path tax.
	b.Run("engine-8-workers-correlation", func(b *testing.B) {
		srv := sweepServer(b, slash24s)
		reg := telemetry.NewRegistry()
		tracer := telemetry.NewTracer(1, 4096)
		srv.SetTracer(tracer)
		sc := scanengine.New(&dnsclient.ServerSource{Server: srv, Tracer: tracer, Seed: 1},
			scanengine.WithWorkers(8), scanengine.WithShardBits(24),
			scanengine.WithTelemetry(reg), scanengine.WithTracer(tracer))
		b.ResetTimer()
		var snap *scanengine.Snapshot
		for i := 0; i < b.N; i++ {
			var err error
			snap, err = sc.Scan(context.Background(), scanengine.Request{Targets: targets})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if len(snap.Records) != addrs/2 {
			b.Fatalf("engine sweep found %d records, want %d", len(snap.Records), addrs/2)
		}
		if tracer.Len() == 0 {
			b.Fatal("correlation sweep emitted no spans")
		}
		b.ReportMetric(float64(addrs*b.N)/b.Elapsed().Seconds(), "queries/s")
	})
}

// renderAll exercises every Render path (kept out of the numbers above).
func BenchmarkRenderAllExperiments(b *testing.B) {
	s := benchStudy(b)
	s.Supplemental()
	s.Dynamicity()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range core.ExperimentIDs() {
			if id == "table1" || id == "validation" {
				continue // heavyweight; benched separately
			}
			r, err := s.RunExperiment(id)
			if err != nil {
				b.Fatal(err)
			}
			r.Render(io.Discard)
		}
	}
}

// buildHistStoreLog writes a 120-day, 8-/24 campaign history to path:
// 48 stable hosts per block plus one rotating dynamic lease per block per
// day, so every day past the first is a delta frame with real churn.
func buildHistStoreLog(b *testing.B, path string) []time.Time {
	b.Helper()
	st, err := histstore.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	start := date(2021, time.January, 1)
	var times []time.Time
	for day := 0; day < 120; day++ {
		recs := scanengine.RecordSet{}
		for k := 0; k < 8; k++ {
			for o := 1; o <= 48; o++ {
				recs[dnswire.MustIPv4(fmt.Sprintf("10.60.%d.%d", k, o))] =
					dnswire.MustName(fmt.Sprintf("host-%d-%d.dyn.bench.example", k, o))
			}
			recs[dnswire.MustIPv4(fmt.Sprintf("10.60.%d.%d", k, 200+day%8))] =
				dnswire.MustName(fmt.Sprintf("lease-%d-%d.dyn.bench.example", k, day))
		}
		d := start.AddDate(0, 0, day)
		if err := st.Append(d, recs); err != nil {
			b.Fatal(err)
		}
		times = append(times, d)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	return times
}

// BenchmarkHistStoreAt measures the history store's time-travel point
// query over a 120-day log, cold (no reconstruction cache: every query
// replays a delta chain from the nearest base) versus cached (the steady
// state cmd/rdnsd runs in). bench-check gates both within ±15%.
func BenchmarkHistStoreAt(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.hist")
	times := buildHistStoreLog(b, path)

	run := func(b *testing.B, st *histstore.Store) {
		b.Helper()
		found := 0
		for i := 0; i < b.N; i++ {
			ip := dnswire.MustIPv4(fmt.Sprintf("10.60.%d.7", i%8))
			_, ok, err := st.At(ip, times[(i*13)%len(times)])
			if err != nil {
				b.Fatal(err)
			}
			if ok {
				found++
			}
		}
		if found != b.N {
			b.Fatalf("found %d of %d stable hosts", found, b.N)
		}
	}

	b.Run("cold", func(b *testing.B) {
		st, err := histstore.Open(path, histstore.WithCache(0))
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		b.ResetTimer()
		run(b, st)
		b.StopTimer()
		s := st.Stats()
		if s.Reconstructions < uint64(b.N) {
			b.Fatalf("cold path reconstructed %d times over %d queries", s.Reconstructions, b.N)
		}
		b.ReportMetric(float64(s.Reconstructions)/float64(b.N), "reconstructions/op")
	})

	b.Run("cached", func(b *testing.B) {
		st, err := histstore.Open(path, histstore.WithCache(4096))
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		// Warm every (block, version) state the query rotation touches.
		run(b, st)
		b.ResetTimer()
		run(b, st)
		b.StopTimer()
		s := st.Stats()
		if s.CacheHits == 0 {
			b.Fatal("cached path never hit")
		}
		b.ReportMetric(float64(s.Reconstructions)/float64(b.N), "reconstructions/op")
	})
}

// copyStoreDir clones a history store directory for benchmarks that
// consume their input (compaction rewrites the store in place).
func copyStoreDir(b *testing.B, src, dst string) {
	b.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		b.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistStoreCompact measures sealing a 120-day tail into a
// segment: the full stream-rewrite-commit cycle, on a pristine copy of
// the store each iteration. The tail is 4x the point-query benchmark's
// (32 blocks instead of 8) so the CPU-bound segment build dominates the
// handful of commit fsyncs, whose latency varies run to run; bench-check
// gates the result within ±15%.
func BenchmarkHistStoreCompact(b *testing.B) {
	template := filepath.Join(b.TempDir(), "bench.hist")
	st, err := histstore.Open(template)
	if err != nil {
		b.Fatal(err)
	}
	start := date(2021, time.January, 1)
	for day := 0; day < 120; day++ {
		recs := scanengine.RecordSet{}
		for k := 0; k < 32; k++ {
			for o := 1; o <= 48; o++ {
				recs[dnswire.MustIPv4(fmt.Sprintf("10.61.%d.%d", k, o))] =
					dnswire.MustName(fmt.Sprintf("host-%d-%d.dyn.bench.example", k, o))
			}
			recs[dnswire.MustIPv4(fmt.Sprintf("10.61.%d.%d", k, 200+day%8))] =
				dnswire.MustName(fmt.Sprintf("lease-%d-%d.dyn.bench.example", k, day))
		}
		if err := st.Append(start.AddDate(0, 0, day), recs); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	var sealed, reclaimed int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := filepath.Join(b.TempDir(), fmt.Sprintf("run-%d", i))
		copyStoreDir(b, template, dir)
		st, err := histstore.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := st.CompactWriter(context.Background(), histstore.DefaultWriter, histstore.CompactOptions{})
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		if res.Sealed != 120 {
			b.Fatalf("sealed %d snapshots, want 120", res.Sealed)
		}
		sealed += int64(res.Sealed)
		reclaimed += res.TailBytes - res.SegmentBytes
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(sealed)/float64(b.N), "snapshots/op")
	b.ReportMetric(float64(reclaimed)/float64(b.N), "reclaimed-B/op")
}

// BenchmarkHistStoreAtCompacted is BenchmarkHistStoreAt's cold variant
// over a fully compacted store: every reconstruction walks a fresh
// in-segment base chain through the tier, the steady state of a
// long-running rdnsd after background compaction. bench-check gates it
// within ±15%.
func BenchmarkHistStoreAtCompacted(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.hist")
	times := buildHistStoreLog(b, path)
	st, err := histstore.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	if res, err := st.CompactWriter(context.Background(), histstore.DefaultWriter, histstore.CompactOptions{}); err != nil || res.Sealed != 120 {
		b.Fatalf("compact: %+v, %v", res, err)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	st, err = histstore.Open(path, histstore.WithCache(0))
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ResetTimer()
	found := 0
	for i := 0; i < b.N; i++ {
		ip := dnswire.MustIPv4(fmt.Sprintf("10.60.%d.7", i%8))
		_, ok, err := st.At(ip, times[(i*13)%len(times)])
		if err != nil {
			b.Fatal(err)
		}
		if ok {
			found++
		}
	}
	b.StopTimer()
	if found != b.N {
		b.Fatalf("found %d of %d stable hosts", found, b.N)
	}
	s := st.Stats()
	if s.Segments != 1 {
		b.Fatalf("segments = %d, want 1", s.Segments)
	}
	b.ReportMetric(float64(s.Reconstructions)/float64(b.N), "reconstructions/op")
}
