module rdnsprivacy

go 1.22
