package rdnsprivacy_test

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"rdnsprivacy/internal/dhcp"
	"rdnsprivacy/internal/dhcpwire"
	"rdnsprivacy/internal/dnsclient"
	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/ipam"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/simclock"
)

// TestRealSocketsEndToEnd exercises the full operator-and-observer loop
// over genuine loopback sockets and the real clock: DHCP clients join, the
// IPAM publishes their names, a scanner on UDP reads them, a release
// removes them, and an open AXFR dumps the rest — the cmd/simnet +
// cmd/rdnsscan pipeline as one test.
func TestRealSocketsEndToEnd(t *testing.T) {
	prefix := dnswire.MustPrefix("10.42.0.0/24")
	origin, err := dnswire.ReverseZoneFor24(prefix)
	if err != nil {
		t.Fatal(err)
	}
	zone := dnsserver.NewZone(dnsserver.ZoneConfig{
		Origin:    origin,
		PrimaryNS: dnswire.MustName("ns1.campus-x.edu"),
		Mbox:      dnswire.MustName("hostmaster.campus-x.edu"),
	})
	srv := dnsserver.NewServer()
	srv.AddZone(zone)
	srv.SetTransferPolicy(true)
	updater := ipam.NewUpdater(ipam.Config{
		Policy: ipam.PolicyCarryOver,
		Suffix: dnswire.MustName("dyn.campus-x.edu"),
	})
	if err := updater.AttachZone(zone); err != nil {
		t.Fatal(err)
	}
	dhcpSrv := dhcp.NewServer(simclock.Real{}, dhcp.ServerConfig{
		ServerIP:  prefix.Nth(1),
		Pools:     []dnswire.Prefix{prefix},
		LeaseTime: time.Hour,
		Sink:      updater,
	})

	udpConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer udpConn.Close()
	go srv.Serve(udpConn)
	addr := udpConn.LocalAddr().(*net.UDPAddr)
	tcpLn, err := net.Listen("tcp", addr.String())
	if err != nil {
		t.Skipf("no loopback TCP: %v", err)
	}
	defer tcpLn.Close()
	go srv.ServeTCP(tcpLn)

	// Three clients join.
	hosts := []string{"Brian's iPhone", "Emma's iPad", "DESKTOP-XYZ123"}
	var clients []*dhcp.Client
	var ips []dnswire.IPv4
	for i, host := range hosts {
		cl := dhcp.NewClient(simclock.Real{}, dhcpSrv, dhcp.ClientConfig{
			CHAddr:      dhcpwire.HardwareAddr{2, 0, 0, 0, 0, byte(i + 1)},
			HostName:    host,
			SendRelease: true,
		})
		ip, err := cl.Join()
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, cl)
		ips = append(ips, ip)
	}

	scanner := &dnsclient.UDPClient{Server: addr.String(), Timeout: 2 * time.Second, Retries: 1}

	// The scanner sees all three, names intact.
	resp, err := scanner.LookupPTR(ips[0])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != dnsclient.OutcomeSuccess ||
		resp.PTR != dnswire.MustName("brians-iphone.dyn.campus-x.edu") {
		t.Fatalf("scan saw %v / %q", resp.Outcome, resp.PTR)
	}

	// An AXFR dumps the whole zone in one query.
	records, err := scanner.TransferZone(origin)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("transfer = %d records, want 3", len(records))
	}
	names := map[string]bool{}
	for _, rr := range records {
		if ptr, ok := rr.Data.(dnswire.PTRData); ok {
			names[strings.SplitN(string(ptr.Target), ".", 2)[0]] = true
		}
	}
	for _, want := range []string{"brians-iphone", "emmas-ipad", "desktop-xyz123"} {
		if !names[want] {
			t.Fatalf("transfer missing %s (have %v)", want, names)
		}
	}

	// A clean release removes the record immediately.
	if err := clients[0].Leave(); err != nil {
		t.Fatal(err)
	}
	resp, err = scanner.LookupPTR(ips[0])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != dnsclient.OutcomeNXDomain {
		t.Fatalf("after release: %v, want NXDOMAIN", resp.Outcome)
	}
	// The others remain.
	resp, err = scanner.LookupPTR(ips[1])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != dnsclient.OutcomeSuccess {
		t.Fatalf("unrelated record vanished: %v", resp.Outcome)
	}
}

// TestRFC2136OverRealSockets runs the split IPAM deployment over loopback
// UDP: the updater's DNS UPDATE messages travel a real socket to the
// authoritative server.
func TestRFC2136OverRealSockets(t *testing.T) {
	prefix := dnswire.MustPrefix("10.43.0.0/24")
	origin, _ := dnswire.ReverseZoneFor24(prefix)
	zone := dnsserver.NewZone(dnsserver.ZoneConfig{
		Origin:    origin,
		PrimaryNS: dnswire.MustName("ns1.campus-y.edu"),
		Mbox:      dnswire.MustName("hostmaster.campus-y.edu"),
	})
	srv := dnsserver.NewServer()
	srv.AddZone(zone)
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer conn.Close()
	go srv.Serve(conn)

	sock, err := net.Dial("udp", conn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sock.Close()
	writer := ipam.NewRFC2136Writer(origin, func(wire []byte) { sock.Write(wire) })

	name := dnswire.ReverseName(prefix.Nth(7))
	if err := writer.SetPTR(name, dnswire.MustName("brians-mbp.dyn.campus-y.edu")); err != nil {
		t.Fatal(err)
	}
	// Fire-and-forget: poll briefly for the update to land.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, ok := zone.LookupPTR(name); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("update never applied")
		}
		time.Sleep(10 * time.Millisecond)
	}
	got, _ := zone.LookupPTR(name)
	if got != dnswire.MustName("brians-mbp.dyn.campus-y.edu") {
		t.Fatalf("PTR = %q", got)
	}
}

// TestResilientSweepOverRealSockets runs the resilient scan pipeline over
// genuine loopback UDP against a deliberately lossy authoritative server:
// DHCP clients publish their names, the server drops a quarter of all
// queries, and the sweep must still come back complete — scan-level
// retries absorbing the timeouts — with a health report accounting for
// the recovery work.
func TestResilientSweepOverRealSockets(t *testing.T) {
	prefix := dnswire.MustPrefix("10.43.0.0/24")
	origin, err := dnswire.ReverseZoneFor24(prefix)
	if err != nil {
		t.Fatal(err)
	}
	zone := dnsserver.NewZone(dnsserver.ZoneConfig{
		Origin:    origin,
		PrimaryNS: dnswire.MustName("ns1.campus-y.edu"),
		Mbox:      dnswire.MustName("hostmaster.campus-y.edu"),
	})
	srv := dnsserver.NewServer()
	srv.AddZone(zone)
	updater := ipam.NewUpdater(ipam.Config{
		Policy: ipam.PolicyCarryOver,
		Suffix: dnswire.MustName("dyn.campus-y.edu"),
	})
	if err := updater.AttachZone(zone); err != nil {
		t.Fatal(err)
	}
	dhcpSrv := dhcp.NewServer(simclock.Real{}, dhcp.ServerConfig{
		ServerIP:  prefix.Nth(1),
		Pools:     []dnswire.Prefix{prefix},
		LeaseTime: time.Hour,
		Sink:      updater,
	})
	for i, host := range []string{"Brian's iPhone", "Emma's iPad", "DESKTOP-XYZ123"} {
		cl := dhcp.NewClient(simclock.Real{}, dhcpSrv, dhcp.ClientConfig{
			CHAddr:   dhcpwire.HardwareAddr{2, 0, 0, 0, 1, byte(i + 1)},
			HostName: host,
		})
		if _, err := cl.Join(); err != nil {
			t.Fatal(err)
		}
	}

	// A quarter of all queries vanish; decisions are per (name, attempt),
	// so retransmitted queries draw fresh luck.
	srv.SetFailureMode(dnsserver.FailureMode{DropRate: 0.25, Seed: 11})

	udpConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer udpConn.Close()
	go srv.Serve(udpConn)

	client := &dnsclient.UDPClient{
		Server:  udpConn.LocalAddr().String(),
		Timeout: 80 * time.Millisecond,
	}
	sc := scanengine.New(dnsclient.UDPSource{Client: client},
		scanengine.WithWorkers(8), scanengine.WithShardBits(27),
		scanengine.WithResilience(scanengine.ResilienceConfig{
			Retry:   scanengine.RetryPolicy{MaxAttempts: 8},
			Breaker: scanengine.BreakerConfig{Threshold: 6, OpenFor: 50 * time.Millisecond},
			Seed:    11,
		}))
	snap, err := sc.Scan(context.Background(), scanengine.Request{
		Targets: []dnswire.Prefix{prefix},
	})
	if err != nil {
		t.Fatalf("resilient sweep failed: %v", err)
	}
	if snap.Partial || snap.Degraded {
		t.Fatalf("sweep did not complete cleanly: partial=%v degraded=%v", snap.Partial, snap.Degraded)
	}
	if len(snap.Records) != 3 {
		t.Fatalf("sweep found %d records, want 3: %v", len(snap.Records), snap.Records)
	}
	if snap.Stats.Errors != 0 {
		t.Fatalf("%d addresses failed despite retry budget", snap.Stats.Errors)
	}
	h := snap.Health
	if h == nil {
		t.Fatal("resilient sweep returned no health report")
	}
	// 256 addresses at 25% loss: the retry budget must have been used.
	if h.Totals.Retries == 0 {
		t.Fatal("a quarter of queries were dropped but the sweep never retried")
	}
	if h.Totals.Attempts < 256 {
		t.Fatalf("health reports %d attempts for 256 addresses", h.Totals.Attempts)
	}
}
