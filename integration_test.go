package rdnsprivacy_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"rdnsprivacy/internal/dhcp"
	"rdnsprivacy/internal/dhcpwire"
	"rdnsprivacy/internal/dnsclient"
	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/ipam"
	"rdnsprivacy/internal/simclock"
)

// TestRealSocketsEndToEnd exercises the full operator-and-observer loop
// over genuine loopback sockets and the real clock: DHCP clients join, the
// IPAM publishes their names, a scanner on UDP reads them, a release
// removes them, and an open AXFR dumps the rest — the cmd/simnet +
// cmd/rdnsscan pipeline as one test.
func TestRealSocketsEndToEnd(t *testing.T) {
	prefix := dnswire.MustPrefix("10.42.0.0/24")
	origin, err := dnswire.ReverseZoneFor24(prefix)
	if err != nil {
		t.Fatal(err)
	}
	zone := dnsserver.NewZone(dnsserver.ZoneConfig{
		Origin:    origin,
		PrimaryNS: dnswire.MustName("ns1.campus-x.edu"),
		Mbox:      dnswire.MustName("hostmaster.campus-x.edu"),
	})
	srv := dnsserver.NewServer()
	srv.AddZone(zone)
	srv.SetTransferPolicy(true)
	updater := ipam.NewUpdater(ipam.Config{
		Policy: ipam.PolicyCarryOver,
		Suffix: dnswire.MustName("dyn.campus-x.edu"),
	})
	if err := updater.AttachZone(zone); err != nil {
		t.Fatal(err)
	}
	dhcpSrv := dhcp.NewServer(simclock.Real{}, dhcp.ServerConfig{
		ServerIP:  prefix.Nth(1),
		Pools:     []dnswire.Prefix{prefix},
		LeaseTime: time.Hour,
		Sink:      updater,
	})

	udpConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer udpConn.Close()
	go srv.Serve(udpConn)
	addr := udpConn.LocalAddr().(*net.UDPAddr)
	tcpLn, err := net.Listen("tcp", addr.String())
	if err != nil {
		t.Skipf("no loopback TCP: %v", err)
	}
	defer tcpLn.Close()
	go srv.ServeTCP(tcpLn)

	// Three clients join.
	hosts := []string{"Brian's iPhone", "Emma's iPad", "DESKTOP-XYZ123"}
	var clients []*dhcp.Client
	var ips []dnswire.IPv4
	for i, host := range hosts {
		cl := dhcp.NewClient(simclock.Real{}, dhcpSrv, dhcp.ClientConfig{
			CHAddr:      dhcpwire.HardwareAddr{2, 0, 0, 0, 0, byte(i + 1)},
			HostName:    host,
			SendRelease: true,
		})
		ip, err := cl.Join()
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, cl)
		ips = append(ips, ip)
	}

	scanner := &dnsclient.UDPClient{Server: addr.String(), Timeout: 2 * time.Second, Retries: 1}

	// The scanner sees all three, names intact.
	resp, err := scanner.LookupPTR(ips[0])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != dnsclient.OutcomeSuccess ||
		resp.PTR != dnswire.MustName("brians-iphone.dyn.campus-x.edu") {
		t.Fatalf("scan saw %v / %q", resp.Outcome, resp.PTR)
	}

	// An AXFR dumps the whole zone in one query.
	records, err := scanner.TransferZone(origin)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("transfer = %d records, want 3", len(records))
	}
	names := map[string]bool{}
	for _, rr := range records {
		if ptr, ok := rr.Data.(dnswire.PTRData); ok {
			names[strings.SplitN(string(ptr.Target), ".", 2)[0]] = true
		}
	}
	for _, want := range []string{"brians-iphone", "emmas-ipad", "desktop-xyz123"} {
		if !names[want] {
			t.Fatalf("transfer missing %s (have %v)", want, names)
		}
	}

	// A clean release removes the record immediately.
	if err := clients[0].Leave(); err != nil {
		t.Fatal(err)
	}
	resp, err = scanner.LookupPTR(ips[0])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != dnsclient.OutcomeNXDomain {
		t.Fatalf("after release: %v, want NXDOMAIN", resp.Outcome)
	}
	// The others remain.
	resp, err = scanner.LookupPTR(ips[1])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != dnsclient.OutcomeSuccess {
		t.Fatalf("unrelated record vanished: %v", resp.Outcome)
	}
}

// TestRFC2136OverRealSockets runs the split IPAM deployment over loopback
// UDP: the updater's DNS UPDATE messages travel a real socket to the
// authoritative server.
func TestRFC2136OverRealSockets(t *testing.T) {
	prefix := dnswire.MustPrefix("10.43.0.0/24")
	origin, _ := dnswire.ReverseZoneFor24(prefix)
	zone := dnsserver.NewZone(dnsserver.ZoneConfig{
		Origin:    origin,
		PrimaryNS: dnswire.MustName("ns1.campus-y.edu"),
		Mbox:      dnswire.MustName("hostmaster.campus-y.edu"),
	})
	srv := dnsserver.NewServer()
	srv.AddZone(zone)
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer conn.Close()
	go srv.Serve(conn)

	sock, err := net.Dial("udp", conn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sock.Close()
	writer := ipam.NewRFC2136Writer(origin, func(wire []byte) { sock.Write(wire) })

	name := dnswire.ReverseName(prefix.Nth(7))
	if err := writer.SetPTR(name, dnswire.MustName("brians-mbp.dyn.campus-y.edu")); err != nil {
		t.Fatal(err)
	}
	// Fire-and-forget: poll briefly for the update to land.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, ok := zone.LookupPTR(name); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("update never applied")
		}
		time.Sleep(10 * time.Millisecond)
	}
	got, _ := zone.LookupPTR(name)
	if got != dnswire.MustName("brians-mbp.dyn.campus-y.edu") {
		t.Fatalf("PTR = %q", got)
	}
}
