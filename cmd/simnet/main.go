// Command simnet boots a small leaking network on the local machine: a
// DHCP server whose clients join and leave on accelerated schedules, an
// IPAM updater publishing their Host Names into reverse DNS, and an
// authoritative name server answering on a real UDP socket.
//
// While it runs, any DNS client can watch the privacy leak live:
//
//	simnet -listen 127.0.0.1:5353 &
//	rdnsscan -server 127.0.0.1:5353 -prefix 10.0.0.0/24 -only-found
//	dig -p 5353 @127.0.0.1 -x 10.0.0.17
//
// Clients cycle every -period (default 40s) with -lease (default 1m)
// leases, so records appear and linger exactly as in the paper, just on a
// faster clock.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"time"

	"rdnsprivacy/internal/dhcp"
	"rdnsprivacy/internal/dhcpwire"
	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/ipam"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/simclock"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5353", "UDP address for the DNS server")
	prefixStr := flag.String("prefix", "10.0.0.0/24", "simulated client /24")
	suffix := flag.String("suffix", "dyn.campus-a.edu", "hostname suffix for published records")
	period := flag.Duration("period", 40*time.Second, "mean client session length")
	lease := flag.Duration("lease", time.Minute, "DHCP lease time")
	clients := flag.Int("clients", 12, "number of simulated client devices")
	policy := flag.String("policy", "carry-over", "IPAM policy: carry-over, hashed, none")
	seed := flag.Int64("seed", 1, "simulation seed")
	allowAXFR := flag.Bool("allow-axfr", false, "serve AXFR zone transfers (the classic misconfiguration)")
	flag.Parse()

	prefix, err := dnswire.ParsePrefix(*prefixStr)
	if err != nil || prefix.Bits != 24 {
		fmt.Fprintln(os.Stderr, "prefix must be a /24")
		os.Exit(2)
	}
	suffixName, err := dnswire.ParseName(*suffix)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var pol ipam.Policy
	switch *policy {
	case "carry-over":
		pol = ipam.PolicyCarryOver
	case "hashed":
		pol = ipam.PolicyHashed
	case "none":
		pol = ipam.PolicyNone
	default:
		fmt.Fprintln(os.Stderr, "unknown policy", *policy)
		os.Exit(2)
	}

	// Operator side: zone, updater, DHCP server — on the real clock.
	origin, err := dnswire.ReverseZoneFor24(prefix)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ns, _ := suffixName.Prepend("ns1")
	mbox, _ := suffixName.Prepend("hostmaster")
	zone := dnsserver.NewZone(dnsserver.ZoneConfig{
		Origin: origin, PrimaryNS: ns, Mbox: mbox,
	})
	srv := dnsserver.NewServer()
	srv.AddZone(zone)
	updater := ipam.NewUpdater(ipam.Config{Policy: pol, Suffix: suffixName})
	if err := updater.AttachZone(zone); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	clock := simclock.Real{}
	dhcpSrv := dhcp.NewServer(clock, dhcp.ServerConfig{
		ServerIP:  prefix.Nth(1),
		Pools:     []dnswire.Prefix{prefix},
		LeaseTime: *lease,
		Sink:      updater,
	})

	// Client side: devices joining and leaving forever.
	rng := rand.New(rand.NewSource(*seed))
	owners := []string{"brian", "emma", "jacob", "olivia", "noah", "mia",
		"liam", "sophia", "lucas", "ava", "ethan", "emily"}
	kinds := []netsim.DeviceKind{
		netsim.KindIPhone, netsim.KindIPad, netsim.KindMacBookAir,
		netsim.KindMacBookPro, netsim.KindGalaxyPhone, netsim.KindGalaxyNote,
		netsim.KindDellLaptop, netsim.KindWindowsDesktop,
	}
	for i := 0; i < *clients; i++ {
		owner := owners[i%len(owners)]
		kind := kinds[rng.Intn(len(kinds))]
		host := netsim.HostNameFor(kind, owner, rng)
		mac := dhcpwire.HardwareAddr{2, 0, 0, 0, 0, byte(i + 1)}
		release := i%3 != 0 // a third of the devices leave silently
		go runClient(clock, dhcpSrv, host, mac, release, *period, rng.Int63())
	}

	srv.SetTransferPolicy(*allowAXFR)
	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if ln, err := net.Listen("tcp", *listen); err == nil {
		go srv.ServeTCP(ln)
		if *allowAXFR {
			fmt.Printf("simnet: AXFR transfers OPEN on %s (try rdnsscan -axfr)\n", ln.Addr())
		}
	}
	fmt.Printf("simnet: authoritative DNS for %s on %s\n", origin, conn.LocalAddr())
	fmt.Printf("simnet: %d clients cycling in %s, policy %s, lease %s\n",
		*clients, prefix, pol, *lease)
	fmt.Printf("simnet: try  dig -p %d @127.0.0.1 -x %s\n",
		conn.LocalAddr().(*net.UDPAddr).Port, prefix.Nth(10))
	if err := srv.Serve(conn); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runClient cycles one device: join, stay a while, leave, pause, repeat.
func runClient(clock simclock.Clock, srv *dhcp.Server, host string,
	mac dhcpwire.HardwareAddr, release bool, period time.Duration, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	client := dhcp.NewClient(clock, srv, dhcp.ClientConfig{
		CHAddr: mac, HostName: host, SendRelease: release,
	})
	for {
		ip, err := client.Join()
		if err == nil {
			fmt.Printf("%s  join   %-16s %s\n",
				time.Now().Format("15:04:05"), ip, host)
		}
		stay := period/2 + time.Duration(rng.Int63n(int64(period)))
		time.Sleep(stay)
		if err == nil {
			mode := "release"
			if !release {
				mode = "silent (record lingers until lease expiry)"
			}
			client.Leave()
			fmt.Printf("%s  leave  %-16s %s  [%s]\n",
				time.Now().Format("15:04:05"), ip, host, mode)
		}
		time.Sleep(period/4 + time.Duration(rng.Int63n(int64(period/2))))
	}
}
