// Command covercheck guards per-package test coverage. It reads
// `go test -cover` output on stdin, extracts each package's statement
// coverage, and compares it against a checked-in baseline of floors,
// failing (exit 1) when any package dropped below its recorded
// percentage.
//
// Usage (wired up as `make cover`):
//
//	go test -cover ./internal/... |
//	    go run ./cmd/covercheck -baseline COVERAGE_baseline.txt -out COVERAGE_current.txt
//
// The baseline is one "import/path percent" pair per line. After
// intentionally raising (or accepting lower) coverage, refresh it:
//
//	cp COVERAGE_current.txt COVERAGE_baseline.txt
//
// Failing tests fail the pipe before covercheck ever gates, so the floor
// only ever compares green runs. Packages that appear on stdin but not in
// the baseline are reported as new and do not fail the run (their floor is
// recorded once the baseline is refreshed); packages in the baseline that
// produce no coverage line fail it, so a floor cannot silently vanish.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	baselinePath := flag.String("baseline", "COVERAGE_baseline.txt", "per-package floor file")
	outPath := flag.String("out", "", "write the observed coverage in baseline format")
	slack := flag.Float64("slack", 0, "allowed drop below the floor, in percentage points")
	flag.Parse()

	got, echoedFail, err := parseCoverage(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(1)
	}
	if echoedFail {
		fmt.Fprintln(os.Stderr, "covercheck: test failures upstream; not gating coverage")
		os.Exit(1)
	}
	if *outPath != "" {
		if err := writeBaseline(*outPath, got); err != nil {
			fmt.Fprintln(os.Stderr, "covercheck:", err)
			os.Exit(1)
		}
	}
	floors, err := readBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(1)
	}

	failed := false
	for _, pkg := range sortedKeys(floors) {
		floor := floors[pkg]
		cur, ok := got[pkg]
		if !ok {
			fmt.Fprintf(os.Stderr, "covercheck: FAIL %s: floor %.1f%% recorded but no coverage reported\n", pkg, floor)
			failed = true
			continue
		}
		if cur < floor-*slack {
			fmt.Fprintf(os.Stderr, "covercheck: FAIL %s: coverage %.1f%% below floor %.1f%%\n", pkg, cur, floor)
			failed = true
		}
	}
	for _, pkg := range sortedKeys(got) {
		if _, ok := floors[pkg]; !ok {
			fmt.Fprintf(os.Stderr, "covercheck: note: %s (%.1f%%) has no recorded floor\n", pkg, got[pkg])
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "covercheck: coverage regressed; raise the tests or refresh the baseline deliberately")
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "covercheck: %d packages at or above their floors\n", len(floors))
}

// parseCoverage scans `go test -cover` output, echoing it to echo so the
// make target still shows the per-package lines. It returns each
// package's coverage percentage ("[no test files]" packages report 0) and
// whether any FAIL line went by.
func parseCoverage(r io.Reader, echo io.Writer) (map[string]float64, bool, error) {
	got := make(map[string]float64)
	sawFail := false
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		switch fields[0] {
		case "FAIL":
			sawFail = true
			continue
		case "ok":
		default:
			continue
		}
		pkg := fields[1]
		pct := 0.0
		if i := strings.Index(line, "coverage: "); i >= 0 {
			rest := line[i+len("coverage: "):]
			if j := strings.IndexByte(rest, '%'); j >= 0 {
				v, err := strconv.ParseFloat(rest[:j], 64)
				if err != nil {
					return nil, sawFail, fmt.Errorf("bad coverage in %q: %v", line, err)
				}
				pct = v
			}
		}
		got[pkg] = pct
	}
	return got, sawFail, sc.Err()
}

// readBaseline parses "package percent" lines; blank lines and #-comments
// are skipped.
func readBaseline(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	floors := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s: malformed line %q", path, line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad percentage in %q: %v", path, line, err)
		}
		floors[fields[0]] = v
	}
	return floors, sc.Err()
}

// writeBaseline renders coverage in the baseline format, sorted by
// package path.
func writeBaseline(path string, got map[string]float64) error {
	var b strings.Builder
	b.WriteString("# per-package statement coverage floors; regenerate with `make cover`\n")
	b.WriteString("# and `cp COVERAGE_current.txt COVERAGE_baseline.txt` after deliberate changes\n")
	for _, pkg := range sortedKeys(got) {
		fmt.Fprintf(&b, "%s %.1f\n", pkg, got[pkg])
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
