package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/obs"
	"rdnsprivacy/internal/rdnsclient"
	"rdnsprivacy/internal/rdnsserve"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
)

// loadConfig collects the run parameters (see main for the flags).
type loadConfig struct {
	// url is empty (self-host) or a comma-separated primary+replica
	// target list; workers fan across the targets round-robin.
	url         string
	storePath   string
	days        int
	blocks      int
	seed        int64
	workers     int
	requests    int
	mixSpec     string
	rate        float64
	burst       float64
	maxInFlight int
	rules       obs.LoadRules
	// trace propagates correlation IDs on every request and retains the
	// per-bucket latency exemplars, so the report can name the exact
	// queries behind the worst quantiles.
	trace bool
	// traceDump lists extra span sources to stitch into the exemplar
	// chains: comma-separated JSONL file paths or /trace dump URLs (a live
	// daemon's metrics listener). Self-hosted runs need none — the in-proc
	// server's tracer is stitched automatically.
	traceDump string
}

// endpoints the mix can name, in reporting order.
var endpointOrder = []string{"at", "range", "churn", "name", "days", "stats"}

// parseMix parses "at=50,range=20,..." into per-endpoint weights.
func parseMix(spec string) (map[string]int, error) {
	weights := make(map[string]int)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want endpoint=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix entry %q: weight must be a non-negative integer", part)
		}
		known := false
		for _, e := range endpointOrder {
			if name == e {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("mix entry %q: unknown endpoint (have %s)", part, strings.Join(endpointOrder, ", "))
		}
		weights[name] += w
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("mix %q: all weights zero", spec)
	}
	return weights, nil
}

// mixPicker turns weights into a cumulative table for O(log n) seeded
// draws.
type mixPicker struct {
	names []string
	cum   []int
	total int
}

func newMixPicker(weights map[string]int) *mixPicker {
	p := &mixPicker{}
	for _, name := range endpointOrder {
		if w := weights[name]; w > 0 {
			p.total += w
			p.names = append(p.names, name)
			p.cum = append(p.cum, p.total)
		}
	}
	return p
}

func (p *mixPicker) pick(r uint64) string {
	n := int(r % uint64(p.total))
	i := sort.SearchInts(p.cum, n+1)
	return p.names[i]
}

// splitmix is the workload RNG: deterministic, cheap, no shared state.
func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// synthStore writes a deterministic campaign history: per /24 block,
// eight stable devices (brians-iphone among them, the paper's privacy
// protagonist) plus one address whose name churns daily.
func synthStore(path string, days, blocks int, seed int64) (*histstore.Store, []dnswire.Prefix, []time.Time, error) {
	st, err := histstore.Open(path, histstore.WithCache(4096))
	if err != nil {
		return nil, nil, nil, err
	}
	stable := []string{
		"brians-iphone", "brians-ipad", "alices-laptop", "printer",
		"nas", "camera", "thermostat", "tv",
	}
	var prefixes []dnswire.Prefix
	for b := 0; b < blocks; b++ {
		prefixes = append(prefixes, dnswire.Prefix{Addr: dnswire.IPv4{10, 0, byte(b + 1), 0}, Bits: 24})
	}
	var times []time.Time
	start := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	state := uint64(seed)
	for day := 0; day < days; day++ {
		recs := scanengine.RecordSet{}
		for b, p := range prefixes {
			for d, name := range stable {
				ip := dnswire.IPv4{p.Addr[0], p.Addr[1], p.Addr[2], byte(10 + d)}
				recs[ip] = dnswire.MustName(fmt.Sprintf("%s.b%d.lan.example.net", name, b))
			}
			churnIP := dnswire.IPv4{p.Addr[0], p.Addr[1], p.Addr[2], 200}
			recs[churnIP] = dnswire.MustName(fmt.Sprintf("dhcp-%d-%d.dyn.example.net", day, splitmix(&state)%1000))
		}
		d := start.AddDate(0, 0, day)
		if err := st.Append(d, recs); err != nil {
			st.Close()
			return nil, nil, nil, err
		}
		times = append(times, d)
	}
	return st, prefixes, times, nil
}

// inprocTransport drives an http.Handler without sockets: tens of
// thousands of concurrent clients on one box would exhaust file
// descriptors and ephemeral ports long before they stressed the serving
// path.
type inprocTransport struct{ h http.Handler }

func (t inprocTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	r2 := req.Clone(req.Context())
	r2.RemoteAddr = "127.0.0.1:0"
	if r2.Body == nil {
		r2.Body = http.NoBody
	}
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, r2)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

// endpointStats accumulates one endpoint's outcome counters.
type endpointStats struct {
	requests    atomic.Uint64
	errors      atomic.Uint64
	rateLimited atomic.Uint64
	shed        atomic.Uint64
}

// runLoad executes the configured run and evaluates the SLOs.
func runLoad(cfg *loadConfig) (*loadResult, error) {
	weights, err := parseMix(cfg.mixSpec)
	if err != nil {
		return nil, err
	}
	picker := newMixPicker(weights)

	targets := splitTargets(cfg.url)
	hc := &http.Client{Timeout: 60 * time.Second}
	var prefixes []dnswire.Prefix
	var days []time.Time

	// Tracing retains one client span per request; the ring is sized to
	// the run (capped — past the cap the oldest spans fall out and a worst
	// offender may render as a bare correlation ID).
	var clientTracer, srvTracer *telemetry.Tracer
	if cfg.trace {
		clientTracer = telemetry.NewTracer(cfg.seed, min(cfg.requests, 1<<16))
		// Wire-propagated correlations get parse/store child spans, so the
		// server side completes up to three spans per request.
		srvTracer = telemetry.NewTracer(cfg.seed+1, min(3*cfg.requests, 3<<16))
	}

	if len(targets) == 0 {
		// Self-host: serve a (synthesized or existing) store in-process.
		var st *histstore.Store
		if cfg.storePath != "" {
			if st, err = histstore.Open(cfg.storePath, histstore.WithCache(4096), histstore.WithReadOnly()); err != nil {
				return nil, err
			}
		} else {
			dir, err := os.MkdirTemp("", "rdnsload")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			if st, prefixes, days, err = synthStore(filepath.Join(dir, "load.hist"), cfg.days, cfg.blocks, cfg.seed); err != nil {
				return nil, err
			}
		}
		srv := rdnsserve.New(st, rdnsserve.Config{
			Sink:   telemetry.NewRegistry(),
			Tracer: srvTracer,
			Seed:   cfg.seed,
			Admission: rdnsserve.AdmissionConfig{
				RatePerSec:  cfg.rate,
				Burst:       cfg.burst,
				MaxInFlight: cfg.maxInFlight,
			},
		})
		defer srv.Close()
		targets = []string{"http://rdnsd.inproc"}
		hc = &http.Client{Transport: inprocTransport{h: srv.Handler()}}
	}

	// Learn the served shape when it wasn't synthesized locally.
	if len(days) == 0 {
		probe := rdnsclient.New(targets[0], rdnsclient.WithHTTPClient(hc))
		dr, err := probe.Days(context.Background())
		if err != nil {
			return nil, fmt.Errorf("probing /v1/days: %w", err)
		}
		days = dr.Days
	}
	if len(days) == 0 {
		return nil, fmt.Errorf("daemon serves an empty history")
	}
	if len(prefixes) == 0 {
		for b := 0; b < max(cfg.blocks, 1); b++ {
			prefixes = append(prefixes, dnswire.Prefix{Addr: dnswire.IPv4{10, 0, byte(b + 1), 0}, Bits: 24})
		}
	}

	stats := make(map[string]*endpointStats, len(endpointOrder))
	reg := telemetry.NewRegistry()
	hists := make(map[string]*telemetry.Histogram, len(endpointOrder))
	for _, e := range endpointOrder {
		stats[e] = &endpointStats{}
		hists[e] = reg.Histogram(`load_latency_seconds{endpoint="`+e+`"}`, telemetry.DefaultLatencyBuckets())
	}
	total := reg.Histogram("load_latency_seconds", telemetry.DefaultLatencyBuckets())

	var inFlight, peak atomic.Int64
	enter := func() {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
	}

	// The start barrier: every worker registers its first request as
	// in-flight, then blocks until all have — so the run provably reaches
	// `workers` concurrent pending queries before the first completes.
	var ready sync.WaitGroup
	start := make(chan struct{})
	var wg sync.WaitGroup
	perWorker := cfg.requests / cfg.workers
	extra := cfg.requests % cfg.workers

	ready.Add(cfg.workers)
	for w := 0; w < cfg.workers; w++ {
		n := perWorker
		if w < extra {
			n++
		}
		if n == 0 {
			ready.Done()
			continue
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			// Workers fan across the target set round-robin, so a
			// primary+replica pair each sees half the load.
			opts := []rdnsclient.Option{
				rdnsclient.WithHTTPClient(hc),
				rdnsclient.WithAPIKey(fmt.Sprintf("load-%d", w)),
				rdnsclient.WithRetries(0, 0), // pushback is counted, not hidden
			}
			// The hook runs on this goroutine between Do and the latency
			// observation below, so lastCorr needs no synchronization: it
			// names the request whose latency is about to be recorded.
			var lastCorr uint64
			if cfg.trace {
				opts = append(opts,
					rdnsclient.WithTrace(cfg.seed, clientTracer),
					rdnsclient.WithRequestHook(func(ri rdnsclient.RequestInfo) { lastCorr = ri.Corr }))
			}
			c := rdnsclient.New(targets[w%len(targets)], opts...)
			state := uint64(cfg.seed) + uint64(w)*0x9e3779b97f4a7c15
			ctx := context.Background()
			for i := 0; i < n; i++ {
				ep := picker.pick(splitmix(&state))
				enter()
				if i == 0 {
					ready.Done()
					<-start
				}
				t0 := time.Now()
				err := issue(ctx, c, ep, &state, prefixes, days)
				el := time.Since(t0).Seconds()
				inFlight.Add(-1)
				hists[ep].ObserveExemplar(el, lastCorr)
				total.ObserveExemplar(el, lastCorr)
				s := stats[ep]
				s.requests.Add(1)
				switch {
				case err == nil:
				case rdnsclient.IsRateLimited(err):
					s.rateLimited.Add(1)
				case rdnsclient.IsOverloaded(err):
					s.shed.Add(1)
				default:
					s.errors.Add(1)
				}
			}
		}(w, n)
	}
	ready.Wait()
	close(start)
	wg.Wait()

	res := &loadResult{
		Workers:      cfg.workers,
		Requests:     cfg.requests,
		PeakInFlight: peak.Load(),
	}
	for _, e := range endpointOrder {
		s := stats[e]
		if s.requests.Load() == 0 {
			continue
		}
		sm := obs.LoadSample{
			Label:       e,
			Requests:    s.requests.Load(),
			Errors:      s.errors.Load(),
			RateLimited: s.rateLimited.Load(),
			Shed:        s.shed.Load(),
			P50:         hists[e].Quantile(0.50),
			P95:         hists[e].Quantile(0.95),
			P99:         hists[e].Quantile(0.99),
		}
		if ex, ok := hists[e].Snapshot().QuantileExemplar(0.99); ok {
			sm.P99Corr = fmt.Sprintf("%016x", ex.Corr)
		}
		res.Samples = append(res.Samples, sm)
	}
	var sum obs.LoadSample
	sum.Label = "total"
	for _, s := range res.Samples {
		sum.Requests += s.Requests
		sum.Errors += s.Errors
		sum.RateLimited += s.RateLimited
		sum.Shed += s.Shed
	}
	sum.P50, sum.P95, sum.P99 = total.Quantile(0.50), total.Quantile(0.95), total.Quantile(0.99)
	if ex, ok := total.Snapshot().QuantileExemplar(0.99); ok {
		sum.P99Corr = fmt.Sprintf("%016x", ex.Corr)
	}
	res.Samples = append(res.Samples, sum)

	// After a live run, ask each replica target how far behind it ended
	// up: /v1/stats reports the syncer's lag, and the MaxReplicaLagBytes
	// rule judges it alongside the latency/error SLOs.
	res.Samples = append(res.Samples, lagSamples(targets, hc)...)
	res.Report = cfg.rules.EvaluateLoad(res.Samples)
	if cfg.trace {
		res.ExemplarChains = exemplarChains(cfg, res.Samples, clientTracer, srvTracer)
	}
	return res, nil
}

// exemplarChains answers "which query was the p99" end to end: it
// stitches every traced layer's spans (the workers' client tracer, the
// self-hosted server's tracer, and any -trace-dump sources) and renders
// the causal chain behind each sample's p99 exemplar.
func exemplarChains(cfg *loadConfig, samples []obs.LoadSample, tracers ...*telemetry.Tracer) []string {
	var recs []telemetry.SpanRecord
	for _, t := range tracers {
		recs = append(recs, spanRecords(t)...)
	}
	if cfg.traceDump != "" {
		extra, err := dumpRecords(cfg.traceDump)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rdnsload: reading trace dumps: %v\n", err)
		}
		recs = append(recs, extra...)
	}
	byCorr := make(map[uint64]obs.Chain)
	for _, c := range obs.Stitch(recs) {
		byCorr[c.Corr] = c
	}
	var out []string
	for _, s := range samples {
		if s.P99Corr == "" {
			continue
		}
		var corr uint64
		fmt.Sscanf(s.P99Corr, "%x", &corr)
		c, ok := byCorr[corr]
		if !ok {
			// The span ring evicted it (run larger than the ring) or the
			// daemon's dump wasn't supplied; the ID still names the query.
			out = append(out, fmt.Sprintf("p99 %-8s corr %s (no spans retained)", s.Label, s.P99Corr))
			continue
		}
		out = append(out, fmt.Sprintf("p99 %-8s %s", s.Label, c.Render()))
	}
	return out
}

// spanRecords round-trips a tracer's ring through its JSONL form — the
// same records a /trace dump serves, so in-process tracers and scraped
// dumps stitch identically.
func spanRecords(t *telemetry.Tracer) []telemetry.SpanRecord {
	if t == nil || t.Len() == 0 {
		return nil
	}
	var buf bytes.Buffer
	if err := t.WriteJSONL(&buf); err != nil {
		return nil
	}
	recs, err := telemetry.ReadSpans(&buf)
	if err != nil {
		return nil
	}
	return recs
}

// dumpRecords reads the -trace-dump sources: comma-separated JSONL file
// paths or /trace URLs (a live daemon's metrics listener). A 204 means
// the daemon traced nothing — not an error.
func dumpRecords(spec string) ([]telemetry.SpanRecord, error) {
	var out []telemetry.SpanRecord
	for _, src := range strings.Split(spec, ",") {
		src = strings.TrimSpace(src)
		if src == "" {
			continue
		}
		var r io.ReadCloser
		if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
			resp, err := http.Get(src)
			if err != nil {
				return nil, fmt.Errorf("fetching %s: %w", src, err)
			}
			if resp.StatusCode == http.StatusNoContent {
				resp.Body.Close()
				continue
			}
			if resp.StatusCode != http.StatusOK {
				resp.Body.Close()
				return nil, fmt.Errorf("fetching %s: status %d", src, resp.StatusCode)
			}
			r = resp.Body
		} else {
			f, err := os.Open(src)
			if err != nil {
				return nil, err
			}
			r = f
		}
		recs, err := telemetry.ReadSpans(r)
		r.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", src, err)
		}
		out = append(out, recs...)
	}
	return out, nil
}

// splitTargets parses the -url flag's comma-separated target list.
func splitTargets(spec string) []string {
	var targets []string
	for _, t := range strings.Split(spec, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targets = append(targets, strings.TrimRight(t, "/"))
		}
	}
	return targets
}

// lagSamples probes each target's /v1/stats after the run and turns
// replica lag reports into judgeable samples. Targets without a replica
// block (primaries, self-hosted servers) contribute nothing. A failed
// probe must not discard the completed run's data: it is logged and
// becomes a failing sample (one request, one error) so the error-rate
// rule flags it in the report.
func lagSamples(targets []string, hc *http.Client) []obs.LoadSample {
	var out []obs.LoadSample
	for i, t := range targets {
		c := rdnsclient.New(t, rdnsclient.WithHTTPClient(hc))
		sr, err := c.Stats(context.Background())
		if err != nil {
			fmt.Fprintf(os.Stderr, "rdnsload: probing %s/v1/stats for lag: %v\n", t, err)
			out = append(out, obs.LoadSample{
				Label:    fmt.Sprintf("lag:%d", i),
				Requests: 1,
				Errors:   1,
			})
			continue
		}
		if sr.Replica == nil {
			continue
		}
		out = append(out, obs.LoadSample{
			Label:       fmt.Sprintf("lag:%d", i),
			BytesBehind: sr.Replica.BytesBehind,
		})
	}
	return out
}

// issue sends one request of the given kind with seeded parameters drawn
// from the served history's shape.
func issue(ctx context.Context, c *rdnsclient.Client, ep string, state *uint64, prefixes []dnswire.Prefix, days []time.Time) error {
	p := prefixes[int(splitmix(state)%uint64(len(prefixes)))]
	day := days[int(splitmix(state)%uint64(len(days)))]
	switch ep {
	case "at":
		ip := dnswire.IPv4{p.Addr[0], p.Addr[1], p.Addr[2], byte(10 + splitmix(state)%9)}
		_, err := c.At(ctx, ip.String(), day)
		return err
	case "range":
		from := days[int(splitmix(state)%uint64(len(days)))]
		to := day
		if to.Before(from) {
			from, to = to, from
		}
		_, err := c.RangePage(ctx, rdnsclient.RangeQuery{
			Prefix: p.String(), From: from, To: to, Limit: 1000,
		}, "")
		return err
	case "churn":
		_, err := c.Churn(ctx, p.String(), days[0], day)
		return err
	case "name":
		tokens := []string{"brian", "alice", "printer", "camera"}
		_, err := c.NamePage(ctx, rdnsclient.NameQuery{
			Token: tokens[int(splitmix(state)%uint64(len(tokens)))], Limit: 100,
		}, "")
		return err
	case "days":
		_, err := c.Days(ctx)
		return err
	case "stats":
		_, err := c.Stats(ctx)
		return err
	}
	return fmt.Errorf("unknown endpoint %q", ep)
}
