package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rdnsprivacy/internal/obs"
	"rdnsprivacy/internal/telemetry"
	"rdnsprivacy/internal/testutil"
)

func TestParseMix(t *testing.T) {
	w, err := parseMix("at=50,range=20, churn=10,name=10,days=5,stats=5")
	if err != nil || w["at"] != 50 || w["stats"] != 5 {
		t.Fatalf("mix: %v err=%v", w, err)
	}
	for _, bad := range []string{"", "at", "at=x", "at=-1", "bogus=5", "at=0,range=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("mix %q accepted", bad)
		}
	}

	// The picker honors zero weights and covers all named endpoints.
	p := newMixPicker(map[string]int{"at": 1, "days": 3})
	seen := map[string]int{}
	state := uint64(42)
	for i := 0; i < 4000; i++ {
		seen[p.pick(splitmix(&state))]++
	}
	if len(seen) != 2 || seen["days"] < 2*seen["at"] {
		t.Fatalf("pick distribution: %v", seen)
	}
}

// TestRunLoadSmoke: a small self-hosted run completes with zero errors,
// the barrier pushes peak in-flight to the worker count, and per-endpoint
// samples add up to the request total.
func TestRunLoadSmoke(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	cfg := &loadConfig{
		days: 8, blocks: 2, seed: 3,
		workers: 64, requests: 512,
		mixSpec: "at=50,range=20,churn=10,name=10,days=5,stats=5",
		rules:   obs.LoadRules{MaxShedRate: 0, MaxP95Seconds: 30, MaxP99Seconds: 30},
	}
	res, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakInFlight < int64(cfg.workers) {
		t.Fatalf("peak in-flight %d, want >= %d workers (barrier broken)", res.PeakInFlight, cfg.workers)
	}
	var reqs, errs uint64
	for _, s := range res.Samples {
		if s.Label == "total" {
			continue
		}
		reqs += s.Requests
		errs += s.Errors + s.RateLimited + s.Shed
	}
	if reqs != uint64(cfg.requests) || errs != 0 {
		t.Fatalf("accounting: %d requests (want %d), %d failures", reqs, cfg.requests, errs)
	}
	if !res.Report.OK {
		t.Fatalf("SLO verdict: %s %+v", res.Report.Summary(), res.Report.Verdicts)
	}
	if res.Samples[len(res.Samples)-1].Label != "total" || res.Samples[len(res.Samples)-1].Requests != reqs {
		t.Fatalf("total sample: %+v", res.Samples[len(res.Samples)-1])
	}
}

// TestLagSamplesProbeFailure: a target whose post-run /v1/stats probe
// fails must not discard the run — it becomes a failing sample while the
// healthy targets' lag reports still come through.
func TestLagSamplesProbeFailure(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"replica":{"source":"http://primary","bytes_behind":7,"syncs":3}}`))
	}))
	defer replica.Close()
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{}`))
	}))
	defer primary.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // probe hits a refused connection

	samples := lagSamples([]string{primary.URL, dead.URL, replica.URL}, &http.Client{})
	if len(samples) != 2 {
		t.Fatalf("samples: %+v", samples)
	}
	if samples[0].Label != "lag:1" || samples[0].Errors != 1 || samples[0].Requests != 1 {
		t.Fatalf("failed probe sample: %+v", samples[0])
	}
	if samples[1].Label != "lag:2" || samples[1].BytesBehind != 7 {
		t.Fatalf("replica lag sample: %+v", samples[1])
	}
	// The error-rate rule flags the failed probe in the report.
	if rep := (obs.LoadRules{MaxShedRate: -1}).EvaluateLoad(samples); rep.OK {
		t.Fatalf("failed probe slipped past the error-rate rule: %+v", rep.Verdicts)
	}
}

// TestRunLoadRateLimited: with a tight self-hosted rate limit the run
// counts 429 pushback rather than erroring, and the shed-rate SLO flags
// it.
func TestRunLoadRateLimited(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	cfg := &loadConfig{
		days: 4, blocks: 1, seed: 5,
		workers: 4, requests: 200,
		mixSpec: "days=1",
		rate:    1, burst: 1,
		rules: obs.LoadRules{MaxShedRate: 0.01, MaxP95Seconds: -1, MaxP99Seconds: -1},
	}
	res, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sample obs.LoadSample
	for _, s := range res.Samples {
		if s.Label == "total" {
			sample = s
		}
	}
	if sample.RateLimited == 0 || sample.Errors != 0 {
		t.Fatalf("expected 429 pushback, got %+v", sample)
	}
	if res.Report.OK {
		t.Fatalf("shed rate %.2f slipped past MaxShedRate 0.01", sample.ShedRate())
	}
}

// TestRunLoadTraced: a -trace run produces a p99 exemplar chain per
// endpoint sample, each resolving through the stitched client+server
// spans to a rendered client→daemon line.
func TestRunLoadTraced(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	cfg := &loadConfig{
		days: 6, blocks: 2, seed: 9,
		workers: 16, requests: 160,
		mixSpec: "at=70,days=30",
		trace:   true,
		rules:   obs.LoadRules{MaxShedRate: 0, MaxP95Seconds: 30, MaxP99Seconds: 30},
	}
	res, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ExemplarChains) == 0 {
		t.Fatal("traced run produced no exemplar chains")
	}
	for _, line := range res.ExemplarChains {
		if !strings.HasPrefix(line, "p99 ") {
			t.Fatalf("chain line %q", line)
		}
		if strings.Contains(line, "no spans retained") {
			t.Fatalf("exemplar evicted from a right-sized ring: %q", line)
		}
		if !strings.Contains(line, "client try#") || !strings.Contains(line, "rdnsd ") {
			t.Fatalf("chain %q missing client→daemon layers", line)
		}
	}
	// Every per-endpoint sample with traffic carries a p99 exemplar.
	for _, s := range res.Samples {
		if s.Label == "total" || s.Requests == 0 {
			continue
		}
		if s.P99Corr == "" {
			t.Fatalf("sample %s has no p99 exemplar: %+v", s.Label, s)
		}
	}
	// printReport renders the chains without tripping on any field.
	var buf bytes.Buffer
	printReport(&buf, res)
	if !strings.Contains(buf.String(), "p99 exemplar chains") &&
		!strings.Contains(buf.String(), "p99 ") {
		t.Fatalf("report missing chains:\n%s", buf.String())
	}
}

// TestDumpRecords: the -trace-dump reader accepts files and /trace URLs,
// skips a 204, and fails loudly on a non-200.
func TestDumpRecords(t *testing.T) {
	tr := telemetry.NewTracer(3, 16)
	sp := tr.StartSpanCorr("rdnsd.query", "at", telemetry.CorrID(3, "x", 1))
	sp.End()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/trace":
			w.Write(buf.Bytes())
		case "/empty":
			w.WriteHeader(http.StatusNoContent)
		default:
			w.WriteHeader(http.StatusInternalServerError)
		}
	}))
	defer srv.Close()

	recs, err := dumpRecords(path + ", " + srv.URL + "/trace, " + srv.URL + "/empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records: %d, want 2 (file + URL)", len(recs))
	}
	if _, err := dumpRecords(srv.URL + "/boom"); err == nil {
		t.Fatal("non-200 dump source accepted")
	}
	if _, err := dumpRecords(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("missing dump file accepted")
	}
}
