// Command rdnsload drives an rdnsd with tens of thousands of concurrent
// mixed v1 queries and judges the result against latency/error SLOs
// (internal/obs.LoadRules). It is the load side of the production-serving
// acceptance story: the paper's query patterns — point lookups, prefix
// scans, churn summaries, name searches — at the concurrency a public
// deployment would see.
//
// By default it self-hosts: it synthesizes a seeded campaign history,
// serves it through internal/rdnsserve in-process, and drives the handler
// through an in-memory transport — no sockets, so 10k+ concurrent
// clients don't exhaust file descriptors or ephemeral ports before they
// stress the serving path. Point -url at a live daemon to generate load
// over real HTTP instead.
//
//	rdnsload -workers 10000 -requests 30000 -mix 'at=50,range=20,churn=10,name=10,days=5,stats=5'
//	rdnsload -url http://127.0.0.1:8077 -workers 200 -requests 10000
//	rdnsload -url http://primary:8077,http://replica:8078 -slo-max-lag-bytes -1
//
// -url accepts a comma-separated primary+replica set: workers fan across
// the targets round-robin, and after the run each replica target's
// /v1/stats lag report becomes a lag:* sample judged by
// -slo-max-lag-bytes (see docs/replication.md).
//
// With -trace every request carries an X-Rdns-Corr correlation ID and
// the latency histograms retain per-bucket exemplars; after the run the
// report names the exact query behind each sample's p99 and renders its
// stitched client→daemon(→replica-sync) chain. Self-hosted runs stitch
// the in-process server's spans automatically; live runs add the
// daemons' /trace dumps via -trace-dump.
//
// Every worker is its own client (distinct X-API-Key, so per-client rate
// limits apply per worker) with retries disabled: pushback (429/503) is
// counted, not hidden. The run reports per-endpoint and total p50/p95/p99
// plus error/shed rates, evaluates them against the SLO flags, prints a
// verdict, and exits 1 when out of SLO.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"rdnsprivacy/internal/obs"
)

func main() {
	var cfg loadConfig
	flag.StringVar(&cfg.url, "url", "", "drive live daemons at this comma-separated base URL list (a primary+replica set fans workers round-robin) instead of self-hosting")
	flag.StringVar(&cfg.storePath, "store", "", "self-host this existing store (default: synthesize one)")
	flag.IntVar(&cfg.days, "days", 30, "synthesized history length in daily snapshots")
	flag.IntVar(&cfg.blocks, "blocks", 4, "synthesized /24 block count")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload and synthesis seed")
	flag.IntVar(&cfg.workers, "workers", 10000, "concurrent client workers")
	flag.IntVar(&cfg.requests, "requests", 30000, "total requests across all workers")
	flag.StringVar(&cfg.mixSpec, "mix", "at=50,range=20,churn=10,name=10,days=5,stats=5",
		"endpoint mix as comma-separated endpoint=weight pairs")
	flag.Float64Var(&cfg.rate, "rate", 0, "self-hosted per-client rate limit (requests/second, 0 = off)")
	flag.Float64Var(&cfg.burst, "burst", 0, "self-hosted per-client burst capacity")
	flag.IntVar(&cfg.maxInFlight, "max-inflight", 0, "self-hosted in-flight bound (0 = unbounded)")
	flag.Float64Var(&cfg.rules.MaxErrorRate, "slo-max-error-rate", 0, "SLO: max hard-error rate (0 = none allowed)")
	flag.Float64Var(&cfg.rules.MaxShedRate, "slo-max-shed-rate", 0.01, "SLO: max 429+503 pushback rate")
	flag.Float64Var(&cfg.rules.MaxP95Seconds, "slo-p95", 1.0, "SLO: max p95 latency in seconds (negative disables)")
	flag.Float64Var(&cfg.rules.MaxP99Seconds, "slo-p99", 2.5, "SLO: max p99 latency in seconds (negative disables)")
	flag.Int64Var(&cfg.rules.MaxReplicaLagBytes, "slo-max-lag-bytes", 0, "SLO: max replica lag in feed bytes after the run (negative = must be caught up, 0 disables)")
	flag.BoolVar(&cfg.trace, "trace", false, "propagate correlation IDs and report the exemplar chains behind the worst latencies")
	flag.StringVar(&cfg.traceDump, "trace-dump", "", "comma-separated extra span sources to stitch: JSONL files or live daemons' /trace URLs")
	jsonOut := flag.Bool("json", false, "emit the full report as JSON")
	flag.Parse()

	if cfg.workers < 1 || cfg.requests < cfg.workers {
		fmt.Fprintln(os.Stderr, "rdnsload: need -workers >= 1 and -requests >= -workers")
		os.Exit(2)
	}
	start := time.Now()
	res, err := runLoad(&cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdnsload: %v\n", err)
		os.Exit(1)
	}
	res.Elapsed = time.Since(start).Seconds()

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(res)
	} else {
		printReport(os.Stdout, res)
	}
	if !res.Report.OK {
		fmt.Fprintf(os.Stderr, "rdnsload: OUT OF SLO (%d/%d samples violating)\n",
			res.Report.ViolatingSamples, len(res.Report.Verdicts))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rdnsload: within SLO (%d samples)\n", len(res.Report.Verdicts))
}

func printReport(w io.Writer, res *loadResult) {
	fmt.Fprintf(w, "workers=%d requests=%d peak_in_flight=%d elapsed=%.2fs (%.0f req/s)\n",
		res.Workers, res.Requests, res.PeakInFlight, res.Elapsed, float64(res.Requests)/res.Elapsed)
	fmt.Fprintf(w, "%-8s %9s %7s %7s %7s %10s %10s %10s\n",
		"endpoint", "requests", "errors", "429", "503", "p50", "p95", "p99")
	for _, s := range res.Samples {
		fmt.Fprintf(w, "%-8s %9d %7d %7d %7d %9.1fms %9.1fms %9.1fms\n",
			s.Label, s.Requests, s.Errors, s.RateLimited, s.Shed,
			s.P50*1e3, s.P95*1e3, s.P99*1e3)
	}
	for _, c := range res.ExemplarChains {
		fmt.Fprintln(w, c)
	}
	for _, v := range res.Report.Verdicts {
		if !v.OK {
			for _, viol := range v.Violations {
				fmt.Fprintf(w, "VIOLATION %s: %s = %g (limit %g)\n", v.Label, viol.Rule, viol.Value, viol.Limit)
			}
		}
	}
	fmt.Fprintln(w, res.Report.Summary())
}

// loadResult is the run's full output.
type loadResult struct {
	Workers      int              `json:"workers"`
	Requests     int              `json:"requests"`
	PeakInFlight int64            `json:"peak_in_flight"`
	Elapsed      float64          `json:"elapsed_seconds"`
	Samples      []obs.LoadSample `json:"samples"`
	Report       obs.LoadReport   `json:"report"`
	// ExemplarChains renders, per sample, the stitched causal chain of the
	// query behind the p99 exemplar (-trace runs only).
	ExemplarChains []string `json:"exemplar_chains,omitempty"`
}
