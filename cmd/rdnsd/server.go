package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/telemetry"
)

// Metric names the daemon registers (alongside the store's hist_*
// instruments; see docs/storage.md).
const (
	metricQueries      = "rdnsd_queries_total"
	metricQueryErrors  = "rdnsd_query_errors_total"
	metricQuerySeconds = "rdnsd_query_seconds"
	metricRowsServed   = "rdnsd_rows_served_total"
)

// server is the query-serving layer over one history store. Handlers are
// safe for concurrent use, including concurrently with Append on the
// same store (the scanner side of a live campaign).
type server struct {
	st     *histstore.Store
	tracer *telemetry.Tracer
	seed   int64
	nextQ  atomic.Int64

	queries      *telemetry.Counter
	queryErrors  *telemetry.Counter
	querySeconds *telemetry.Histogram
	rowsServed   *telemetry.Counter
}

func newServer(st *histstore.Store, sink telemetry.Sink, tracer *telemetry.Tracer, seed int64) *server {
	s := &server{st: st, tracer: tracer, seed: seed}
	if sink != nil {
		s.queries = sink.Counter(metricQueries)
		s.queryErrors = sink.Counter(metricQueryErrors)
		s.querySeconds = sink.Histogram(metricQuerySeconds, telemetry.DefaultLatencyBuckets())
		s.rowsServed = sink.Counter(metricRowsServed)
	}
	return s
}

// handler builds the daemon's route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/at", s.instrument("at", s.handleAt))
	mux.HandleFunc("/range", s.instrument("range", s.handleRange))
	mux.HandleFunc("/churn", s.instrument("churn", s.handleChurn))
	mux.HandleFunc("/name", s.instrument("name", s.handleName))
	mux.HandleFunc("/days", s.instrument("days", s.handleDays))
	mux.HandleFunc("/stats", s.instrument("stats", s.handleStats))
	return mux
}

// httpError is a handler-produced failure with a status code.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// instrument wraps an endpoint with the query counter, the latency
// histogram, and a correlated span, and renders errors as JSON.
func (s *server) instrument(name string, h func(*http.Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		q := int(s.nextQ.Add(1))
		corr := telemetry.CorrID(s.seed, "rdnsd."+name, q)
		span := s.tracer.StartSpanCorr("rdnsd.query", name, corr)
		s.queries.Inc()
		out, err := h(r)
		s.querySeconds.Observe(time.Since(start).Seconds())
		w.Header().Set("Content-Type", "application/json")
		if err != nil {
			s.queryErrors.Inc()
			span.Event("error", 1)
			span.End()
			status := http.StatusInternalServerError
			if he, ok := err.(*httpError); ok {
				status = he.status
			}
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		span.End()
		json.NewEncoder(w).Encode(out)
	}
}

// parseInstant accepts RFC 3339 instants or bare campaign dates
// (2006-01-02, taken as midnight UTC).
func parseInstant(s string) (time.Time, error) {
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	if t, err := time.Parse(dataset.DateFormat, s); err == nil {
		return t, nil
	}
	return time.Time{}, fmt.Errorf("not an RFC 3339 instant or %s date: %q", dataset.DateFormat, s)
}

// window parses the from/to query parameters, defaulting to all of
// history.
func (s *server) window(r *http.Request) (from, to time.Time, err error) {
	times := s.st.Times()
	if len(times) > 0 {
		from, to = times[0], times[len(times)-1]
	}
	if v := r.URL.Query().Get("from"); v != "" {
		if from, err = parseInstant(v); err != nil {
			return from, to, badRequest("from: %v", err)
		}
	}
	if v := r.URL.Query().Get("to"); v != "" {
		if to, err = parseInstant(v); err != nil {
			return from, to, badRequest("to: %v", err)
		}
	}
	return from, to, nil
}

func prefixParam(r *http.Request) (dnswire.Prefix, error) {
	v := r.URL.Query().Get("prefix")
	if v == "" {
		return dnswire.Prefix{}, badRequest("missing prefix parameter")
	}
	p, err := dnswire.ParsePrefix(v)
	if err != nil {
		return dnswire.Prefix{}, badRequest("prefix: %v", err)
	}
	return p, nil
}

// atResponse is the /at reply: the PTR name ip held at the newest
// snapshot at or before t.
type atResponse struct {
	IP       string `json:"ip"`
	T        string `json:"t"`
	Resolved string `json:"resolved"` // the snapshot that answered
	Found    bool   `json:"found"`
	Name     string `json:"name,omitempty"`
}

func (s *server) handleAt(r *http.Request) (any, error) {
	ipStr := r.URL.Query().Get("ip")
	if ipStr == "" {
		return nil, badRequest("missing ip parameter")
	}
	ip, err := dnswire.ParseIPv4(ipStr)
	if err != nil {
		return nil, badRequest("ip: %v", err)
	}
	when := time.Now().UTC()
	if v := r.URL.Query().Get("t"); v != "" {
		if when, err = parseInstant(v); err != nil {
			return nil, badRequest("t: %v", err)
		}
	}
	name, found, err := s.st.At(ip, when)
	if err == histstore.ErrBeforeHistory {
		return nil, badRequest("%s precedes the store's history", when.Format(time.RFC3339))
	}
	if err != nil {
		return nil, err
	}
	resolved, _ := s.st.Resolve(when)
	resp := atResponse{
		IP:       ip.String(),
		T:        when.Format(time.RFC3339),
		Resolved: resolved.Format(time.RFC3339),
		Found:    found,
	}
	if found {
		resp.Name = name.String()
	}
	return resp, nil
}

// rangeRow is one /range observation.
type rangeRow struct {
	Date string `json:"date"`
	IP   string `json:"ip"`
	PTR  string `json:"ptr"`
}

type rangeResponse struct {
	Prefix    string     `json:"prefix"`
	From      string     `json:"from"`
	To        string     `json:"to"`
	Count     int        `json:"count"`
	Truncated bool       `json:"truncated,omitempty"`
	Rows      []rangeRow `json:"rows"`
}

func (s *server) handleRange(r *http.Request) (any, error) {
	p, err := prefixParam(r)
	if err != nil {
		return nil, err
	}
	from, to, err := s.window(r)
	if err != nil {
		return nil, err
	}
	limit := 10000
	if v := r.URL.Query().Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 0 {
			return nil, badRequest("limit: not a non-negative integer: %q", v)
		}
	}
	rows, err := s.st.Range(p, from, to)
	if err != nil {
		return nil, err
	}
	resp := rangeResponse{
		Prefix: p.String(),
		From:   from.Format(time.RFC3339),
		To:     to.Format(time.RFC3339),
		Count:  len(rows),
		Rows:   make([]rangeRow, 0, len(rows)),
	}
	for _, row := range rows {
		if limit > 0 && len(resp.Rows) == limit {
			resp.Truncated = true
			break
		}
		resp.Rows = append(resp.Rows, rangeRow{
			Date: row.Date.Format(time.RFC3339),
			IP:   row.IP.String(),
			PTR:  row.PTR.String(),
		})
	}
	s.rowsServed.Add(uint64(len(resp.Rows)))
	return resp, nil
}

type churnResponse struct {
	Prefix string               `json:"prefix"`
	From   string               `json:"from"`
	To     string               `json:"to"`
	Days   []histstore.ChurnDay `json:"days"`
}

func (s *server) handleChurn(r *http.Request) (any, error) {
	p, err := prefixParam(r)
	if err != nil {
		return nil, err
	}
	from, to, err := s.window(r)
	if err != nil {
		return nil, err
	}
	days, err := s.st.Churn(p, from, to)
	if err != nil {
		return nil, err
	}
	if days == nil {
		days = []histstore.ChurnDay{}
	}
	return churnResponse{
		Prefix: p.String(),
		From:   from.Format(time.RFC3339),
		To:     to.Format(time.RFC3339),
		Days:   days,
	}, nil
}

// namePosting is one /name result interval.
type namePosting struct {
	Prefix string `json:"prefix"`
	First  string `json:"first"`
	Last   string `json:"last"`
}

type nameResponse struct {
	Token    string        `json:"token"`
	Postings []namePosting `json:"postings"`
}

func (s *server) handleName(r *http.Request) (any, error) {
	token := r.URL.Query().Get("token")
	if token == "" {
		return nil, badRequest("missing token parameter")
	}
	postings := s.st.FindName(token)
	resp := nameResponse{Token: token, Postings: make([]namePosting, 0, len(postings))}
	for _, p := range postings {
		resp.Postings = append(resp.Postings, namePosting{
			Prefix: p.Prefix.String(),
			First:  p.First.Format(time.RFC3339),
			Last:   p.Last.Format(time.RFC3339),
		})
	}
	return resp, nil
}

type daysResponse struct {
	Count int      `json:"count"`
	Days  []string `json:"days"`
}

func (s *server) handleDays(*http.Request) (any, error) {
	times := s.st.Times()
	resp := daysResponse{Count: len(times), Days: make([]string, 0, len(times))}
	for _, t := range times {
		resp.Days = append(resp.Days, t.Format(time.RFC3339))
	}
	return resp, nil
}

// statsResponse is /stats: the store's summary plus the cache hit rate.
type statsResponse struct {
	histstore.Stats
	CacheHitRate float64 `json:"cache_hit_rate"`
}

func (s *server) handleStats(*http.Request) (any, error) {
	st := s.st.Stats()
	resp := statsResponse{Stats: st}
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		resp.CacheHitRate = float64(st.CacheHits) / float64(total)
	}
	return resp, nil
}
