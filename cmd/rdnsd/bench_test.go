package main

import (
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
)

// BenchmarkRdnsdQuery measures one query end to end through the daemon's
// handler — mux dispatch, instrumentation (counter, latency histogram,
// correlated span), store query against a warm cache, JSON encode — over
// a 60-day two-/24 history. bench-check gates it within ±15%.
func BenchmarkRdnsdQuery(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.hist")
	st, err := histstore.Open(path, histstore.WithCache(1024))
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	start := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	for day := 0; day < 60; day++ {
		recs := scanengine.RecordSet{
			dnswire.MustIPv4("10.0.1.7"): dnswire.MustName("brians-iphone.lan.example.net"),
			dnswire.MustIPv4("10.0.2.4"): dnswire.MustName("printer.example.net"),
		}
		recs[dnswire.MustIPv4("10.0.1.9")] =
			dnswire.MustName(fmt.Sprintf("host-9-%d.dyn.example.net", day))
		if err := st.Append(start.AddDate(0, 0, day), recs); err != nil {
			b.Fatal(err)
		}
	}
	srv := newServer(st, telemetry.NewRegistry(), telemetry.NewTracer(1, 256), 1)
	h := srv.handler()

	b.Run("at", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			day := (i * 7) % 60
			req := httptest.NewRequest("GET",
				fmt.Sprintf("/at?ip=10.0.1.9&t=%s", start.AddDate(0, 0, day).Format("2006-01-02")), nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("status %d: %s", rec.Code, rec.Body)
			}
		}
	})

	b.Run("churn", func(b *testing.B) {
		req := httptest.NewRequest("GET", "/churn?prefix=10.0.1.0/24", nil)
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("status %d: %s", rec.Code, rec.Body)
			}
		}
	})
}
