package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
	"rdnsprivacy/internal/testutil"
)

// fixture builds a store with a small deterministic history: brians-iphone
// lives at 10.0.1.7 throughout, 10.0.1.9 cycles through dynamic names,
// and 10.0.2.0/24 joins on day 3.
func fixture(t *testing.T, days int) (*histstore.Store, []time.Time) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "hist.log")
	st, err := histstore.Open(path, histstore.WithCache(256), histstore.WithBaseInterval(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	var times []time.Time
	start := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	for day := 0; day < days; day++ {
		recs := scanengine.RecordSet{
			dnswire.MustIPv4("10.0.1.7"): dnswire.MustName("brians-iphone.lan.example.net"),
			dnswire.MustIPv4("10.0.1.9"): dnswire.MustName(fmt.Sprintf("host-9-%d.dyn.example.net", day)),
		}
		if day >= 3 {
			recs[dnswire.MustIPv4("10.0.2.4")] = dnswire.MustName("printer.example.net")
		}
		d := start.AddDate(0, 0, day)
		if err := st.Append(d, recs); err != nil {
			t.Fatal(err)
		}
		times = append(times, d)
	}
	return st, times
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func TestEndpoints(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	st, times := fixture(t, 6)
	reg := telemetry.NewRegistry()
	srv := newServer(st, reg, telemetry.NewTracer(1, 256), 1)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	t.Run("at", func(t *testing.T) {
		var at atResponse
		getJSON(t, ts.URL+"/at?ip=10.0.1.9&t=2020-03-04", &at)
		if !at.Found || at.Name != "host-9-3.dyn.example.net." {
			t.Fatalf("at day 3: %+v", at)
		}
		// An off-grid instant resolves to the preceding snapshot.
		getJSON(t, ts.URL+"/at?ip=10.0.1.9&t="+times[2].Add(11*time.Hour).Format(time.RFC3339), &at)
		if at.Name != "host-9-2.dyn.example.net." || at.Resolved != times[2].Format(time.RFC3339) {
			t.Fatalf("off-grid at: %+v", at)
		}
		getJSON(t, ts.URL+"/at?ip=10.0.2.4&t=2020-03-01", &at)
		if at.Found {
			t.Fatalf("found a record before the block existed: %+v", at)
		}
	})

	t.Run("range", func(t *testing.T) {
		var rr rangeResponse
		getJSON(t, ts.URL+"/range?prefix=10.0.1.0/24&from=2020-03-01&to=2020-03-02", &rr)
		if rr.Count != 4 { // two addresses, two days
			t.Fatalf("range count %d, want 4: %+v", rr.Count, rr)
		}
		var limited rangeResponse
		getJSON(t, ts.URL+"/range?prefix=10.0.1.0/24&limit=1", &limited)
		if len(limited.Rows) != 1 || !limited.Truncated || limited.Count != 12 {
			t.Fatalf("limited range: %+v", limited)
		}
	})

	t.Run("churn", func(t *testing.T) {
		var cr churnResponse
		getJSON(t, ts.URL+"/churn?prefix=10.0.0.0/16", &cr)
		if len(cr.Days) != 5 { // days 1..5
			t.Fatalf("churn days %d, want 5", len(cr.Days))
		}
		// Day 3: host-9 renamed, printer joined.
		if cr.Days[2].Added != 1 || cr.Days[2].Changed != 1 || cr.Days[2].Removed != 0 {
			t.Fatalf("churn day 3: %+v", cr.Days[2])
		}
	})

	t.Run("name", func(t *testing.T) {
		var nr nameResponse
		getJSON(t, ts.URL+"/name?token=brian", &nr)
		if len(nr.Postings) != 1 || nr.Postings[0].Prefix != "10.0.1.0/24" {
			t.Fatalf("name postings: %+v", nr.Postings)
		}
		if nr.Postings[0].First != times[0].Format(time.RFC3339) ||
			nr.Postings[0].Last != times[5].Format(time.RFC3339) {
			t.Fatalf("posting interval: %+v", nr.Postings[0])
		}
	})

	t.Run("days", func(t *testing.T) {
		var dr daysResponse
		getJSON(t, ts.URL+"/days", &dr)
		if dr.Count != 6 || len(dr.Days) != 6 {
			t.Fatalf("days: %+v", dr)
		}
	})

	t.Run("errors", func(t *testing.T) {
		for _, path := range []string{
			"/at",                         // missing ip
			"/at?ip=banana",               // bad ip
			"/at?ip=1.2.3.4&t=yesterday",  // bad instant
			"/at?ip=1.2.3.4&t=2019-01-01", // before history
			"/range",                      // missing prefix
			"/range?prefix=10.0.1.0/33",   // bad prefix
			"/range?prefix=10.0.1.0/24&limit=-1",
			"/churn",
			"/name",
		} {
			resp := getJSON(t, ts.URL+path, nil)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
			}
		}
	})

	t.Run("metrics", func(t *testing.T) {
		queries := reg.Counter(metricQueries).Value()
		errs := reg.Counter(metricQueryErrors).Value()
		if queries == 0 || errs == 0 {
			t.Fatalf("instrumentation dead: queries=%d errors=%d", queries, errs)
		}
		if reg.Histogram(metricQuerySeconds, nil).Count() != queries {
			t.Fatalf("latency histogram count %d != queries %d",
				reg.Histogram(metricQuerySeconds, nil).Count(), queries)
		}
	})
}

// TestStatsCacheConsistency: the served cache hit counters must account
// for the repeated queries that hit the reconstruction cache, and the
// hit rate over repeated identical queries must be positive (the
// acceptance criterion for the cache).
func TestStatsCacheConsistency(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	st, _ := fixture(t, 8)
	srv := newServer(st, telemetry.NewRegistry(), nil, 1)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var before statsResponse
	getJSON(t, ts.URL+"/stats", &before)
	const repeats = 10
	for i := 0; i < repeats; i++ {
		var at atResponse
		getJSON(t, ts.URL+"/at?ip=10.0.1.7&t=2020-03-05", &at)
		if at.Name != "brians-iphone.lan.example.net." {
			t.Fatalf("query %d: %+v", i, at)
		}
	}
	var after statsResponse
	getJSON(t, ts.URL+"/stats", &after)
	if got := after.CacheHits - before.CacheHits; got < repeats-1 {
		t.Fatalf("cache hits grew by %d over %d identical queries", got, repeats)
	}
	if after.CacheHitRate <= 0 {
		t.Fatalf("cache hit rate %v after repeated queries", after.CacheHitRate)
	}
	if after.Reconstructions != before.Reconstructions+1 {
		t.Fatalf("reconstructions %d -> %d, want exactly one cold rebuild",
			before.Reconstructions, after.Reconstructions)
	}
}

// TestConcurrentQueriesDuringAppend hammers every endpoint from several
// goroutines while the store keeps appending snapshots — the live-campaign
// serving scenario. Run under -race (make race covers this package); the
// store's RWMutex and the sharded cache must keep every response
// internally consistent, and no goroutine may leak.
func TestConcurrentQueriesDuringAppend(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	st, times := fixture(t, 10)
	reg := telemetry.NewRegistry()
	srv := newServer(st, reg, telemetry.NewTracer(7, 1024), 7)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	const appends = 30
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// The appender: one writer extending the history.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		day := times[len(times)-1]
		for i := 0; i < appends; i++ {
			day = day.AddDate(0, 0, 1)
			recs := scanengine.RecordSet{
				dnswire.MustIPv4("10.0.1.7"): dnswire.MustName("brians-iphone.lan.example.net"),
				dnswire.MustIPv4("10.0.3.1"): dnswire.MustName(fmt.Sprintf("host-%d.dyn.example.net", i)),
			}
			if err := st.Append(day, recs); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()

	// The readers: every endpoint, queried until the writer finishes.
	urls := []string{
		"/at?ip=10.0.1.7&t=2020-03-08",
		"/at?ip=10.0.1.7", // "now": resolves to the newest snapshot
		"/range?prefix=10.0.1.0/24&from=2020-03-01&to=2020-03-05",
		"/churn?prefix=10.0.0.0/16&from=2020-03-02&to=2020-03-09",
		"/name?token=brian",
		"/days",
		"/stats",
	}
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := ts.URL + urls[(w+i)%len(urls)]
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("GET %s: %v", url, err)
					return
				}
				var body json.RawMessage
				if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
					t.Errorf("GET %s: %v", url, err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: status %d: %s", url, resp.StatusCode, body)
					return
				}
			}
		}()
	}
	wg.Wait()

	// The fixed-window answers must be exactly what a quiet store serves:
	// the appends beyond the window cannot bleed in.
	var cr churnResponse
	getJSON(t, ts.URL+"/churn?prefix=10.0.0.0/16&from=2020-03-02&to=2020-03-09", &cr)
	if len(cr.Days) != 8 {
		t.Fatalf("post-append churn window: %d days, want 8", len(cr.Days))
	}
	if st.Len() != 10+appends {
		t.Fatalf("store has %d snapshots, want %d", st.Len(), 10+appends)
	}

	// Served cache counters must be consistent with the query volume: no
	// more lookups than store queries, hits+misses == lookups.
	stats := st.Stats()
	if stats.CacheHits+stats.CacheMisses == 0 {
		t.Fatal("no cache traffic despite hundreds of queries")
	}
	queries := reg.Counter(metricQueries).Value()
	if queries == 0 {
		t.Fatal("query counter did not move")
	}
}
