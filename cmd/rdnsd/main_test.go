package main

import (
	"path/filepath"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
)

func TestParsePrefixList(t *testing.T) {
	got, err := parsePrefixList("10.0.0.0/8, 192.168.1.0/24,")
	if err != nil || len(got) != 2 {
		t.Fatalf("parse: %v err=%v", got, err)
	}
	if got[0] != dnswire.MustPrefix("10.0.0.0/8") || got[1] != dnswire.MustPrefix("192.168.1.0/24") {
		t.Fatalf("prefixes: %v", got)
	}
	if got, err := parsePrefixList(""); err != nil || got != nil {
		t.Fatalf("empty list: %v err=%v", got, err)
	}
	if _, err := parsePrefixList("10.0.0.0/33"); err == nil {
		t.Fatal("bad prefix accepted")
	}
	if _, err := parsePrefixList("banana"); err == nil {
		t.Fatal("non-CIDR accepted")
	}
}

func TestBuildConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.log")
	st, err := histstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC), scanengine.RecordSet{
		dnswire.MustIPv4("10.0.1.7"): dnswire.MustName("brians-iphone.lan.example.net"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	o := options{
		storePath:   path,
		cacheSize:   64,
		seed:        7,
		rate:        50,
		burst:       100,
		maxInFlight: 32,
		aclAllow:    "10.0.0.0/8",
		aclDeny:     "10.9.0.0/16",
		reload:      true,
	}
	reg := telemetry.NewRegistry()
	cfg, err := buildConfig(o, reg, telemetry.NewTracer(7, 16))
	if err != nil {
		t.Fatal(err)
	}
	a := cfg.Admission
	if a.RatePerSec != 50 || a.Burst != 100 || a.MaxInFlight != 32 ||
		len(a.Allow) != 1 || len(a.Deny) != 1 {
		t.Fatalf("admission config: %+v", a)
	}
	if cfg.Seed != 7 || cfg.Sink == nil {
		t.Fatalf("config: %+v", cfg)
	}
	if cfg.Reopen == nil {
		t.Fatal("reload enabled but Reopen is nil")
	}
	reopened, err := cfg.Reopen()
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if reopened.Len() != 1 {
		t.Fatalf("reopened store has %d snapshots, want 1", reopened.Len())
	}
	reopened.Close()

	// -reload=false disables the admin surface.
	o.reload = false
	cfg, err = buildConfig(o, reg, nil)
	if err != nil || cfg.Reopen != nil {
		t.Fatalf("no-reload config: Reopen set? %v err=%v", cfg.Reopen != nil, err)
	}

	// ACL parse errors surface with the flag name.
	o.aclAllow = "nonsense"
	if _, err := buildConfig(o, reg, nil); err == nil {
		t.Fatal("bad -acl-allow accepted")
	}
}
