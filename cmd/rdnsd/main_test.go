package main

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/rdnsclient"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
)

func TestParsePrefixList(t *testing.T) {
	got, err := parsePrefixList("10.0.0.0/8, 192.168.1.0/24,")
	if err != nil || len(got) != 2 {
		t.Fatalf("parse: %v err=%v", got, err)
	}
	if got[0] != dnswire.MustPrefix("10.0.0.0/8") || got[1] != dnswire.MustPrefix("192.168.1.0/24") {
		t.Fatalf("prefixes: %v", got)
	}
	if got, err := parsePrefixList(""); err != nil || got != nil {
		t.Fatalf("empty list: %v err=%v", got, err)
	}
	if _, err := parsePrefixList("10.0.0.0/33"); err == nil {
		t.Fatal("bad prefix accepted")
	}
	if _, err := parsePrefixList("banana"); err == nil {
		t.Fatal("non-CIDR accepted")
	}
}

func TestBuildConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.log")
	st, err := histstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC), scanengine.RecordSet{
		dnswire.MustIPv4("10.0.1.7"): dnswire.MustName("brians-iphone.lan.example.net"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	o := options{
		storePath:   path,
		cacheSize:   64,
		seed:        7,
		rate:        50,
		burst:       100,
		maxInFlight: 32,
		aclAllow:    "10.0.0.0/8",
		aclDeny:     "10.9.0.0/16",
		reload:      true,
	}
	reg := telemetry.NewRegistry()
	cfg, err := buildConfig(o, reg, telemetry.NewTracer(7, 16))
	if err != nil {
		t.Fatal(err)
	}
	a := cfg.Admission
	if a.RatePerSec != 50 || a.Burst != 100 || a.MaxInFlight != 32 ||
		len(a.Allow) != 1 || len(a.Deny) != 1 {
		t.Fatalf("admission config: %+v", a)
	}
	if cfg.Seed != 7 || cfg.Sink == nil {
		t.Fatalf("config: %+v", cfg)
	}
	if cfg.Reopen == nil {
		t.Fatal("reload enabled but Reopen is nil")
	}
	reopened, err := cfg.Reopen()
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if reopened.Len() != 1 {
		t.Fatalf("reopened store has %d snapshots, want 1", reopened.Len())
	}
	reopened.Close()

	// -reload=false disables the admin surface.
	o.reload = false
	cfg, err = buildConfig(o, reg, nil)
	if err != nil || cfg.Reopen != nil {
		t.Fatalf("no-reload config: Reopen set? %v err=%v", cfg.Reopen != nil, err)
	}

	// ACL parse errors surface with the flag name.
	o.aclAllow = "nonsense"
	if _, err := buildConfig(o, reg, nil); err == nil {
		t.Fatal("bad -acl-allow accepted")
	}
}

func TestNormalizeReplicaMode(t *testing.T) {
	// Replica mode forces hot reload on and background compaction off.
	o := options{replicaOf: "http://primary:8077", reload: false, compactEvery: time.Minute}
	o.normalizeReplicaMode()
	if !o.reload || o.compactEvery != 0 {
		t.Fatalf("replica mode not normalized: %+v", o)
	}
	// Primary mode keeps the operator's choices.
	o = options{reload: false, compactEvery: time.Minute}
	o.normalizeReplicaMode()
	if o.reload || o.compactEvery != time.Minute {
		t.Fatalf("primary options rewritten: %+v", o)
	}
}

// logCollector is a concurrency-safe logf sink for the loop tests.
type logCollector struct {
	mu    sync.Mutex
	lines []string
}

func (l *logCollector) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *logCollector) joined() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return strings.Join(l.lines, "\n")
}

func TestReplicaBootstrap(t *testing.T) {
	// Two failures, then success: the loop retries on the poll interval
	// and reports nil once a generation committed.
	var logs logCollector
	calls := 0
	sync := func(context.Context) (bool, error) {
		calls++
		if calls < 3 {
			return false, errors.New("primary unreachable")
		}
		return true, nil
	}
	if err := replicaBootstrap(context.Background(), sync, time.Millisecond, logs.logf); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	if calls != 3 {
		t.Fatalf("sync attempts = %d, want 3", calls)
	}
	if got := logs.joined(); !strings.Contains(got, "primary unreachable") {
		t.Fatalf("failures not logged: %q", got)
	}

	// A dead context stops a never-succeeding bootstrap with its error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := replicaBootstrap(ctx, func(context.Context) (bool, error) {
		return false, errors.New("still down")
	}, time.Millisecond, logs.logf)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-context bootstrap: %v", err)
	}
}

func TestReplicaCatchup(t *testing.T) {
	// Scripted syncs: an error, a no-op, then a change — only the change
	// triggers a reload; the error is logged and the loop keeps going.
	var logs logCollector
	script := []struct {
		changed bool
		err     error
	}{
		{false, errors.New("flaky pull")},
		{false, nil},
		{true, nil},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	step := 0
	syncFn := func(context.Context) (bool, error) {
		if step >= len(script) {
			return false, nil
		}
		s := script[step]
		step++
		return s.changed, s.err
	}
	reloads := 0
	done := make(chan struct{})
	reload := func() (rdnsclient.ReloadResponse, error) {
		reloads++
		close(done)
		return rdnsclient.ReloadResponse{Generation: 4, Snapshots: 12}, nil
	}
	go replicaCatchup(ctx, syncFn, reload, time.Millisecond, logs.logf)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reload never fired")
	}
	cancel()
	if reloads != 1 {
		t.Fatalf("reloads = %d, want 1", reloads)
	}
	got := logs.joined()
	if !strings.Contains(got, "flaky pull") || !strings.Contains(got, "generation 4 (12 snapshots)") {
		t.Fatalf("catchup log: %q", got)
	}
}

func TestReplicaCatchupReloadError(t *testing.T) {
	// A reload failure leaves the loop running (the previous generation
	// keeps serving) and logs the error.
	var logs logCollector
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	var once sync.Once
	syncFn := func(context.Context) (bool, error) { return true, nil }
	reload := func() (rdnsclient.ReloadResponse, error) {
		once.Do(func() { close(done) })
		return rdnsclient.ReloadResponse{}, errors.New("store vanished")
	}
	go replicaCatchup(ctx, syncFn, reload, time.Millisecond, logs.logf)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reload never attempted")
	}
	cancel()
	// The loop must exit on cancellation; give it a beat, then check the
	// error surfaced.
	time.Sleep(10 * time.Millisecond)
	if got := logs.joined(); !strings.Contains(got, "store vanished") {
		t.Fatalf("reload error not logged: %q", got)
	}
}
