// Command rdnsd serves time-travel queries over a longitudinal PTR
// history store (internal/histstore) as JSON over HTTP. It is the query
// side of the paper's longitudinal analyses: once a campaign has appended
// its daily snapshots into a store (cmd/rdnsscan -store, or
// scan.Campaign with a Store attached), rdnsd answers "what name did
// this address hold on that day", "every observation in this prefix over
// that window", "how much churn", and "where has this given name ever
// appeared" without re-reading raw snapshot dumps.
//
//	rdnsd -store campaign.hist -addr 127.0.0.1:8077
//
//	curl 'http://127.0.0.1:8077/at?ip=10.0.1.7&t=2020-03-15'
//	curl 'http://127.0.0.1:8077/range?prefix=10.0.1.0/24&from=2020-03-01&to=2020-03-31'
//	curl 'http://127.0.0.1:8077/churn?prefix=10.0.0.0/16'
//	curl 'http://127.0.0.1:8077/name?token=brian'
//	curl 'http://127.0.0.1:8077/days'
//	curl 'http://127.0.0.1:8077/stats'
//
// Reconstructed block states are cached in a sharded, size-bounded LRU
// (-cache) whose hit/miss counters surface in /stats and, with
// -metrics-addr, in the Prometheus exposition alongside query latency
// histograms and the store's hist_* instruments:
//
//	rdnsd -store campaign.hist -metrics-addr 127.0.0.1:9090
//	curl -s http://127.0.0.1:9090/metrics | grep -E 'rdnsd_|hist_'
//
// SIGINT/SIGTERM shut the daemon down gracefully: in-flight queries
// drain, the exporter closes, and the store is closed cleanly. See
// docs/storage.md for the endpoint contract and the on-disk format.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/telemetry"
)

func main() {
	var (
		storePath   = flag.String("store", "", "history store file to serve (required)")
		addr        = flag.String("addr", "127.0.0.1:8077", "address to serve the query API on")
		cacheSize   = flag.Int("cache", 4096, "reconstruction cache capacity in block states (0 disables)")
		metricsAddr = flag.String("metrics-addr", "", "serve telemetry HTTP endpoints on this address")
		seed        = flag.Int64("seed", 1, "seed for deterministic span correlation IDs")
	)
	flag.Parse()
	if *storePath == "" {
		fmt.Fprintln(os.Stderr, "rdnsd: -store is required")
		flag.Usage()
		os.Exit(2)
	}

	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(*seed, 4096)

	st, err := histstore.Open(*storePath,
		histstore.WithCache(*cacheSize),
		histstore.WithTelemetry(reg))
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdnsd: %v\n", err)
		os.Exit(1)
	}

	srv := newServer(st, reg, tracer, *seed)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}

	var exporter *telemetry.Exporter
	if *metricsAddr != "" {
		exporter = telemetry.NewExporter(reg,
			telemetry.WithExporterTracer(tracer),
			telemetry.WithExporterHealth(func() any { return srv.handleStatsSnapshot() }))
		bound, err := exporter.Start(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rdnsd: metrics exporter: %v\n", err)
			st.Close()
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "rdnsd: telemetry on http://%s/metrics\n", bound)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdnsd: %v\n", err)
		st.Close()
		os.Exit(1)
	}
	stats := st.Stats()
	fmt.Fprintf(os.Stderr, "rdnsd: serving %d snapshots across %d blocks on http://%s\n",
		stats.Snapshots, stats.Blocks, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "rdnsd: shutting down")
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "rdnsd: %v\n", err)
		}
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "rdnsd: shutdown: %v\n", err)
	}
	if exporter != nil {
		exporter.Close()
	}
	if err := st.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "rdnsd: closing store: %v\n", err)
		os.Exit(1)
	}
}

// handleStatsSnapshot adapts /stats for the exporter's /health endpoint.
func (s *server) handleStatsSnapshot() any {
	out, err := s.handleStats(nil)
	if err != nil {
		return map[string]string{"error": err.Error()}
	}
	return out
}
