// Command rdnsd serves time-travel queries over a longitudinal PTR
// history store (internal/histstore) as a versioned JSON HTTP API. It is
// the query side of the paper's longitudinal analyses: once a campaign
// has appended its daily snapshots into a store (cmd/rdnsscan -store, or
// scan.Campaign with a Store attached), rdnsd answers "what name did
// this address hold on that day", "every observation in this prefix over
// that window", "how much churn", and "where has this given name ever
// appeared" without re-reading raw snapshot dumps.
//
//	rdnsd -store campaign.hist -addr 127.0.0.1:8077
//
//	curl 'http://127.0.0.1:8077/v1/at?ip=10.0.1.7&t=2020-03-15'
//	curl 'http://127.0.0.1:8077/v1/range?prefix=10.0.1.0/24&from=2020-03-01&to=2020-03-31&limit=1000'
//	curl 'http://127.0.0.1:8077/v1/churn?prefix=10.0.0.0/16'
//	curl 'http://127.0.0.1:8077/v1/name?token=brian'
//	curl 'http://127.0.0.1:8077/v1/days'
//	curl 'http://127.0.0.1:8077/v1/stats'
//
// The unversioned paths (/at, /range, ...) remain as deprecated aliases
// with their original response shapes; see docs/api.md for the v1
// contract, the error envelope, and the deprecation window.
//
// Production controls:
//
//   - Admission: -rate/-burst give every client (keyed by X-API-Key,
//     else source address) a token bucket; -max-inflight bounds
//     concurrency, shedding the excess with 503 + Retry-After;
//     -acl-allow/-acl-deny restrict service by source prefix.
//   - Hot reload: SIGHUP (or POST /v1/admin/reload with -reload) reopens
//     the store and swaps it in without dropping in-flight queries —
//     reload after the campaign's daily append lands to serve the new
//     snapshot.
//   - Telemetry: -metrics-addr serves Prometheus exposition with
//     rdnsd_* query/admission metrics alongside the store's hist_*
//     instruments.
//
// SIGINT/SIGTERM shut the daemon down gracefully: in-flight queries
// drain, the exporter closes, and the store is closed cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/rdnsclient"
	"rdnsprivacy/internal/rdnsserve"
	"rdnsprivacy/internal/replica"
	"rdnsprivacy/internal/telemetry"
)

// options collects the flag values; kept as a struct so buildConfig is
// testable without flag juggling.
type options struct {
	storePath    string
	cacheSize    int
	hotSegments  int
	seed         int64
	rate         float64
	burst        float64
	maxInFlight  int
	aclAllow     string
	aclDeny      string
	reload       bool
	compactEvery time.Duration
	compactMin   int
	replicaOf    string
	replPoll     time.Duration
	queryLog     int
	slowQuery    time.Duration
	queryLogOut  string
}

// parsePrefixList parses a comma-separated IPv4 CIDR list ("" → nil).
func parsePrefixList(s string) ([]dnswire.Prefix, error) {
	if s == "" {
		return nil, nil
	}
	var out []dnswire.Prefix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, err := dnswire.ParsePrefix(part)
		if err != nil {
			return nil, fmt.Errorf("%q: %w", part, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// normalizeReplicaMode forces the invariants replica mode needs: a
// replica daemon serves a mirror it keeps rewriting underneath itself,
// so it must hot-reload to swap generations, and it must not compact
// the mirrored files (the primary owns compaction).
func (o *options) normalizeReplicaMode() {
	if o.replicaOf == "" {
		return
	}
	o.reload = true
	o.compactEvery = 0
}

// replicaBootstrap blocks until one sync lands a committed generation in
// the local mirror, so the daemon's read-only open has a store to serve.
// Failed attempts log and retry on the poll interval until the context
// dies.
func replicaBootstrap(ctx context.Context, sync func(context.Context) (bool, error), poll time.Duration, logf func(string, ...any)) error {
	for {
		if _, err := sync(ctx); err == nil {
			return nil
		} else {
			logf("rdnsd: replica sync: %v", err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
}

// replicaCatchup is the replica's poll loop: pull the primary's feed,
// and swap the serving handle onto the new generation whenever a sync
// landed anything — the same zero-drop path as SIGHUP reload. Sync and
// reload failures log and leave the previous generation serving.
func replicaCatchup(ctx context.Context, sync func(context.Context) (bool, error), reload func() (rdnsclient.ReloadResponse, error), poll time.Duration, logf func(string, ...any)) {
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		changed, err := sync(ctx)
		if err != nil {
			if ctx.Err() == nil {
				logf("rdnsd: replica sync: %v", err)
			}
			continue
		}
		if !changed {
			continue
		}
		resp, err := reload()
		if err != nil {
			logf("rdnsd: replica reload: %v", err)
			continue
		}
		logf("rdnsd: replica generation %d (%d snapshots)", resp.Generation, resp.Snapshots)
	}
}

// buildConfig translates flags into the serving config. The returned
// Reopen (nil unless -reload) reopens the store with the same cache and
// telemetry wiring the initial open used.
func buildConfig(o options, reg *telemetry.Registry, tracer *telemetry.Tracer) (rdnsserve.Config, error) {
	allow, err := parsePrefixList(o.aclAllow)
	if err != nil {
		return rdnsserve.Config{}, fmt.Errorf("-acl-allow: %w", err)
	}
	deny, err := parsePrefixList(o.aclDeny)
	if err != nil {
		return rdnsserve.Config{}, fmt.Errorf("-acl-deny: %w", err)
	}
	cfg := rdnsserve.Config{
		Sink:   reg,
		Tracer: tracer,
		Seed:   o.seed,
		Admission: rdnsserve.AdmissionConfig{
			RatePerSec:  o.rate,
			Burst:       o.burst,
			MaxInFlight: o.maxInFlight,
			Allow:       allow,
			Deny:        deny,
		},
		Compact: histstore.CompactOptions{MinSeal: o.compactMin},
	}
	if o.queryLog > 0 {
		cfg.QueryLog = rdnsserve.NewQueryLog(rdnsserve.QueryLogConfig{
			Size:          o.queryLog,
			SlowThreshold: o.slowQuery,
		})
	}
	if o.reload {
		path, cache, hot := o.storePath, o.cacheSize, o.hotSegments
		cfg.Reopen = func() (*histstore.Store, error) {
			return histstore.Open(path,
				histstore.WithCache(cache),
				histstore.WithTelemetry(reg),
				histstore.WithHotSegments(hot),
				histstore.WithReadOnly())
		}
	}
	return cfg, nil
}

func main() {
	var (
		o           options
		addr        = flag.String("addr", "127.0.0.1:8077", "address to serve the query API on")
		metricsAddr = flag.String("metrics-addr", "", "serve telemetry HTTP endpoints on this address")
	)
	flag.StringVar(&o.storePath, "store", "", "history store to serve (required)")
	flag.IntVar(&o.cacheSize, "cache", 4096, "reconstruction cache capacity in block states (0 disables)")
	flag.IntVar(&o.hotSegments, "hot-segments", histstore.DefaultHotSegments, "sealed segments kept hot (index + fd resident); older ones load lazily and evict LRU (<=0 = unbounded)")
	flag.DurationVar(&o.compactEvery, "compact-interval", 0, "background compaction period sealing idle writer tails into segments (0 disables; also POST /v1/admin/compact)")
	flag.IntVar(&o.compactMin, "compact-min-seal", 0, "minimum tail snapshots before a background compaction seals a writer (0 = the store's base interval)")
	flag.Int64Var(&o.seed, "seed", 1, "seed for deterministic span correlation IDs")
	flag.Float64Var(&o.rate, "rate", 0, "per-client sustained requests/second (0 disables rate limiting)")
	flag.Float64Var(&o.burst, "burst", 0, "per-client burst capacity (default max(rate, 1))")
	flag.IntVar(&o.maxInFlight, "max-inflight", 0, "bound on concurrent in-flight queries; excess sheds with 503 (0 = unbounded)")
	flag.StringVar(&o.aclAllow, "acl-allow", "", "comma-separated source prefixes to allow (empty = all)")
	flag.StringVar(&o.aclDeny, "acl-deny", "", "comma-separated source prefixes to deny (wins over allow)")
	flag.BoolVar(&o.reload, "reload", true, "enable hot reload via SIGHUP and POST /v1/admin/reload")
	flag.StringVar(&o.replicaOf, "replica-of", "", "run as a read replica of the primary rdnsd at this base URL; -store names the local mirror directory (see docs/replication.md)")
	flag.DurationVar(&o.replPoll, "repl-poll", time.Second, "replica catch-up poll interval (with -replica-of)")
	flag.IntVar(&o.queryLog, "query-log", 0, "ring-buffer this many canonical query-log entries, served at the metrics address /querylog (0 disables; see docs/observability.md)")
	flag.DurationVar(&o.slowQuery, "slow-query", 250*time.Millisecond, "slow-query threshold (rounded up to a latency-histogram bucket bound; with -query-log)")
	flag.StringVar(&o.queryLogOut, "query-log-out", "", "dump the query log as JSONL to this file at shutdown (with -query-log)")
	flag.Parse()
	if o.storePath == "" {
		fmt.Fprintln(os.Stderr, "rdnsd: -store is required")
		flag.Usage()
		os.Exit(2)
	}
	o.normalizeReplicaMode()

	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(o.seed, 4096)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}

	// Replica mode: mirror the primary's feed into the local directory
	// until it holds a committed generation, so the read-only open below
	// has a store to serve. Later catch-ups happen on the poll loop.
	var syncer *replica.Syncer
	if o.replicaOf != "" {
		var err error
		syncer, err = replica.New(replica.Config{
			Source: o.replicaOf,
			Dir:    o.storePath,
			Tracer: tracer,
			Seed:   o.seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rdnsd: %v\n", err)
			os.Exit(2)
		}
		if err := replicaBootstrap(ctx, syncer.Sync, o.replPoll, logf); err != nil {
			os.Exit(1)
		}
	}

	// The daemon is a pure reader: it never registers a writer, so
	// campaign appenders keep exclusive ownership of their tails and a
	// daemon crash can never tear one.
	st, err := histstore.Open(o.storePath,
		histstore.WithCache(o.cacheSize),
		histstore.WithTelemetry(reg),
		histstore.WithHotSegments(o.hotSegments),
		histstore.WithReadOnly())
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdnsd: %v\n", err)
		os.Exit(1)
	}

	cfg, err := buildConfig(o, reg, tracer)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdnsd: %v\n", err)
		st.Close()
		os.Exit(2)
	}
	srv := rdnsserve.New(st, cfg) // srv owns st from here on
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	var exporter *telemetry.Exporter
	if *metricsAddr != "" {
		opts := []telemetry.ExporterOption{
			telemetry.WithExporterTracer(tracer),
			telemetry.WithExporterHealth(func() any { return srv.StatsSnapshot() }),
		}
		if qlog := srv.QueryLog(); qlog != nil {
			opts = append(opts, telemetry.WithExporterDump("/querylog", "application/x-ndjson",
				qlog.WriteJSONL, func() bool { return qlog.Len() == 0 }))
		}
		exporter = telemetry.NewExporter(reg, opts...)
		bound, err := exporter.Start(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rdnsd: metrics exporter: %v\n", err)
			srv.Close()
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "rdnsd: telemetry on http://%s/metrics\n", bound)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdnsd: %v\n", err)
		srv.Close()
		os.Exit(1)
	}
	stats := st.Stats()
	fmt.Fprintf(os.Stderr, "rdnsd: serving %d snapshots across %d blocks on http://%s\n",
		stats.Snapshots, stats.Blocks, ln.Addr())

	// SIGHUP → hot reload: swap onto the reopened store without dropping
	// in-flight queries. Fire it after the campaign's daily append lands.
	if o.reload {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				resp, err := srv.Reload()
				if err != nil {
					fmt.Fprintf(os.Stderr, "rdnsd: reload: %v\n", err)
					continue
				}
				fmt.Fprintf(os.Stderr, "rdnsd: reloaded generation %d (%d snapshots)\n",
					resp.Generation, resp.Snapshots)
			}
		}()
	}

	if syncer != nil {
		srv.SetReplicaStatus(syncer.Status)
		go replicaCatchup(ctx, syncer.Sync, srv.Reload, o.replPoll, logf)
	}

	// Background compaction: periodically seal idle writer tails into
	// segments while serving continues on the same handle. Writers whose
	// campaign process is alive are skipped (they hold the tail lock).
	if o.compactEvery > 0 {
		go func() {
			tick := time.NewTicker(o.compactEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				results, err := srv.Compact(ctx)
				if err != nil {
					if !errors.Is(err, histstore.ErrCompactBusy) && ctx.Err() == nil {
						fmt.Fprintf(os.Stderr, "rdnsd: compact: %v\n", err)
					}
					continue
				}
				for _, res := range results {
					if res.Skipped != "" {
						continue
					}
					fmt.Fprintf(os.Stderr, "rdnsd: compacted writer %s: %d snapshots, %d B -> %d B\n",
						res.Writer, res.Sealed, res.TailBytes, res.SegmentBytes)
				}
			}
		}()
	}

	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "rdnsd: shutting down")
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "rdnsd: %v\n", err)
		}
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "rdnsd: shutdown: %v\n", err)
	}
	if exporter != nil {
		exporter.Close()
	}
	if qlog := srv.QueryLog(); qlog != nil && o.queryLogOut != "" {
		if f, err := os.Create(o.queryLogOut); err != nil {
			fmt.Fprintf(os.Stderr, "rdnsd: query log dump: %v\n", err)
		} else {
			if err := qlog.WriteJSONL(f); err != nil {
				fmt.Fprintf(os.Stderr, "rdnsd: query log dump: %v\n", err)
			}
			f.Close()
		}
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "rdnsd: closing store: %v\n", err)
		os.Exit(1)
	}
}
