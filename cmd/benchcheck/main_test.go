package main

import (
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `goos: linux
BenchmarkRdnsdQuery/at-8         	  139413	      8658 ns/op
BenchmarkRdnsdConcurrentLoad-8   	    5000	    240000 ns/op	    910000 p99-ns/op
some prose line
PASS
`
	rep, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	load := rep.Benchmarks[0]
	if load.Name != "BenchmarkRdnsdConcurrentLoad-8" || load.NsOp != 240000 {
		t.Fatalf("load result: %+v", load)
	}
	if load.Extra["p99-ns/op"] != 910000 {
		t.Fatalf("p99 extra: %+v", load.Extra)
	}
}

func TestCompareGatesExtras(t *testing.T) {
	baseline := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsOp: 1000, Extra: map[string]float64{"p99-ns/op": 5000}},
		{Name: "BenchmarkB", NsOp: 1000},
	}}

	// Within threshold on both metrics: pass.
	fresh := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsOp: 1100, Extra: map[string]float64{"p99-ns/op": 5500}},
		{Name: "BenchmarkB", NsOp: 1000},
	}}
	var sb strings.Builder
	if compare(&sb, baseline, fresh, 0.15, []string{"p99-ns/op"}) {
		t.Fatalf("within-threshold run failed:\n%s", sb.String())
	}

	// ns/op fine but the gated extra regressed past the threshold: fail.
	fresh.Benchmarks[0].Extra["p99-ns/op"] = 9000
	sb.Reset()
	if !compare(&sb, baseline, fresh, 0.15, []string{"p99-ns/op"}) {
		t.Fatalf("p99 regression slipped through:\n%s", sb.String())
	}

	// Same regression without -gate-extras: extras stay informational.
	sb.Reset()
	if compare(&sb, baseline, fresh, 0.15, nil) {
		t.Fatalf("ungated extra failed the check:\n%s", sb.String())
	}

	// Extras present on only one side are never gated.
	fresh.Benchmarks[0].Extra["p99-ns/op"] = 5500
	fresh.Benchmarks[1].Extra = map[string]float64{"p99-ns/op": 1e12}
	sb.Reset()
	if compare(&sb, baseline, fresh, 0.15, []string{"p99-ns/op"}) {
		t.Fatalf("one-sided extra failed the check:\n%s", sb.String())
	}

	if units := splitUnits(" p99-ns/op , queries/s ,"); len(units) != 2 || units[0] != "p99-ns/op" {
		t.Fatalf("splitUnits: %v", units)
	}
	if splitUnits("") != nil {
		t.Fatal("splitUnits(\"\") should be nil")
	}
}
