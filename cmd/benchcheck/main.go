// Command benchcheck guards the scan engine's benchmarks against
// performance regressions. It reads `go test -bench` output on stdin,
// extracts every benchmark result into a JSON report, and compares ns/op
// against a checked-in baseline, failing (exit 1) when any shared
// benchmark regressed by more than the allowed fraction.
//
// Usage (wired up as `make bench-check`):
//
//	go test -run '^$' -bench 'BenchmarkScanEngineFullSweep' . |
//	    go run ./cmd/benchcheck -baseline BENCH_baseline.json -out BENCH_scan.json
//
// To re-baseline after an intentional performance change, copy the fresh
// report over the baseline:
//
//	cp BENCH_scan.json BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line, normalized.
type Result struct {
	Name string  `json:"name"` // full name including sub-benchmark and GOMAXPROCS suffix
	Runs int     `json:"runs"` // iteration count go test settled on
	NsOp float64 `json:"ns_per_op"`
	// Extra carries any further "value unit" pairs from the line
	// (B/op, allocs/op, custom metrics like queries/s or p99-ns/op).
	// Besides ns/op, only units named in -gate-extras are gated.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the JSON document written to -out and read from -baseline.
type Report struct {
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	baselinePath := flag.String("baseline", "", "baseline report to compare against (no comparison when empty or missing)")
	outPath := flag.String("out", "", "where to write the fresh report (stdout when empty)")
	maxRegress := flag.Float64("max-regress", 0.15, "maximum allowed fractional ns/op regression vs baseline")
	gateExtras := flag.String("gate-extras", "", "comma-separated extra-metric units (e.g. p99-ns/op) to gate at the same threshold")
	flag.Parse()

	report, err := parseBench(os.Stdin)
	if err != nil {
		fatalf("parsing bench output: %v", err)
	}
	if len(report.Benchmarks) == 0 {
		fatalf("no benchmark results on stdin — did the bench run fail?")
	}

	if err := writeReport(report, *outPath); err != nil {
		fatalf("writing report: %v", err)
	}

	if *baselinePath == "" {
		return
	}
	baseline, err := readReport(*baselinePath)
	if os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "benchcheck: no baseline at %s; skipping comparison (copy the report there to create one)\n", *baselinePath)
		return
	}
	if err != nil {
		fatalf("reading baseline: %v", err)
	}

	failed := compare(os.Stdout, baseline, report, *maxRegress, splitUnits(*gateExtras))
	if failed {
		os.Exit(1)
	}
}

// splitUnits parses the -gate-extras value into unit names ("" → none).
func splitUnits(s string) []string {
	var units []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			units = append(units, u)
		}
	}
	return units
}

// parseBench extracts benchmark result lines from `go test -bench` output.
// A result line looks like:
//
//	BenchmarkX/sub-8   	     100	  123456 ns/op	  12 B/op	  3 allocs/op	  456.7 queries/s
func parseBench(r io.Reader) (*Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		runs, err := strconv.Atoi(fields[1])
		if err != nil {
			continue // "Benchmark..." prose, not a result line
		}
		res := Result{Name: fields[0], Runs: runs, Extra: map[string]float64{}}
		// The remainder alternates "value unit".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value %q in line %q", fields[i], line)
			}
			if fields[i+1] == "ns/op" {
				res.NsOp = v
			} else {
				res.Extra[fields[i+1]] = v
			}
		}
		if res.NsOp == 0 {
			return nil, fmt.Errorf("no ns/op metric in line %q", line)
		}
		if len(res.Extra) == 0 {
			res.Extra = nil
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	rep.Benchmarks = mergeRepeats(rep.Benchmarks)
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	return &rep, nil
}

// mergeRepeats collapses repeated results for the same benchmark name
// (a `go test -count=N` run) to the fastest one — the standard way to
// strip scheduler and writeback noise from an I/O-heavy benchmark
// before gating it. Extra metrics come from the same winning run so the
// report stays internally consistent.
func mergeRepeats(results []Result) []Result {
	best := make(map[string]int, len(results))
	out := results[:0]
	for _, r := range results {
		i, seen := best[r.Name]
		if !seen {
			best[r.Name] = len(out)
			out = append(out, r)
			continue
		}
		if r.NsOp < out[i].NsOp {
			out[i] = r
		}
	}
	return out
}

// compare prints a per-benchmark verdict and reports whether any shared
// benchmark regressed past the threshold. Benchmarks present on only one
// side are noted but never fail the check (the suite grows over time).
// Extra metrics whose unit appears in gateExtras are gated the same way,
// but only when both sides report them.
func compare(w io.Writer, baseline, fresh *Report, maxRegress float64, gateExtras []string) bool {
	base := make(map[string]Result, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}
	failed := false
	for _, f := range fresh.Benchmarks {
		b, ok := base[f.Name]
		if !ok {
			fmt.Fprintf(w, "  new   %-50s %12.0f ns/op (no baseline)\n", f.Name, f.NsOp)
			continue
		}
		delta := (f.NsOp - b.NsOp) / b.NsOp
		verdict := "ok"
		if delta > maxRegress {
			verdict = "FAIL"
			failed = true
		}
		fmt.Fprintf(w, "  %-5s %-50s %12.0f ns/op vs %12.0f baseline (%+.1f%%)\n",
			verdict, f.Name, f.NsOp, b.NsOp, 100*delta)
		for _, unit := range gateExtras {
			fv, fok := f.Extra[unit]
			bv, bok := b.Extra[unit]
			if !fok || !bok || bv == 0 {
				continue
			}
			delta := (fv - bv) / bv
			verdict := "ok"
			if delta > maxRegress {
				verdict = "FAIL"
				failed = true
			}
			fmt.Fprintf(w, "  %-5s %-50s %12.0f %s vs %12.0f baseline (%+.1f%%)\n",
				verdict, f.Name, fv, unit, bv, 100*delta)
		}
	}
	if failed {
		fmt.Fprintf(w, "benchcheck: regression beyond %.0f%% — investigate, or re-baseline if intentional\n", 100*maxRegress)
	}
	return failed
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func writeReport(rep *Report, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(1)
}
