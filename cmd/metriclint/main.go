// Command metriclint enforces the repository's metric-name conventions
// statically: it parses every non-test Go file under the given roots,
// finds Counter/Gauge/Histogram registration calls, resolves their name
// arguments (string literals, package-level string consts, and
// concatenations thereof — a label block like `{endpoint="at"}` is
// stripped before checking), and fails the build on violations:
//
//   - names are lowercase_underscore with a known subsystem prefix
//     (scan, hist, dnsclient, dnsserver, reactive, rdnsd, repl, load)
//   - counters end in _total
//   - gauges do not end in _total (they are levels, not accumulations)
//   - histograms end in a unit suffix: _seconds, _bytes, _ns, or _depth
//   - one base name is never registered as two different instrument
//     kinds anywhere in the tree
//
// Names the resolver cannot reduce to at least a full base name (built
// by fmt.Sprintf, loop variables, helper funcs) are skipped and counted.
//
//	metriclint ./internal ./cmd
//
// Exit 0 when clean, 1 on violations, 2 on usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// knownPrefixes are the subsystem prefixes a metric may start with. Add
// a subsystem here when a new package grows its own metric family.
var knownPrefixes = map[string]bool{
	"scan": true, "hist": true, "dnsclient": true, "dnsserver": true,
	"reactive": true, "rdnsd": true, "repl": true, "load": true,
	"vantage": true,
}

// histogramSuffixes are the unit suffixes a histogram name may end with.
var histogramSuffixes = []string{"_seconds", "_bytes", "_ns", "_depth"}

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// registration is one resolved metric registration site.
type registration struct {
	pos  token.Position
	kind string // "Counter", "Gauge", "Histogram"
	base string // metric name with any {label} block stripped
}

// finding is one convention violation.
type finding struct {
	pos token.Position
	msg string
}

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: metriclint [roots...] (default .)")
		flag.PrintDefaults()
	}
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}

	dirs, err := goDirs(roots)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
		os.Exit(2)
	}

	fset := token.NewFileSet()
	var regs []registration
	dynamic, files := 0, 0
	for _, dir := range dirs {
		pkgFiles, err := parseDir(fset, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
			os.Exit(2)
		}
		files += len(pkgFiles)
		r, dyn := collect(fset, pkgFiles)
		regs = append(regs, r...)
		dynamic += dyn
	}

	findings := lint(regs)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, f := range findings {
		fmt.Printf("%s: %s\n", f.pos, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "metriclint: %d violations in %d registrations\n", len(findings), len(regs))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "metriclint: ok (%d registrations across %d files, %d dynamic skipped)\n",
		len(regs), files, dynamic)
}

// goDirs walks the roots and returns every directory holding .go files,
// sorted for deterministic output.
func goDirs(roots []string) ([]string, error) {
	seen := map[string]bool{}
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				seen[filepath.Dir(path)] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses one directory's non-test files as a unit, so consts
// defined in one file resolve at registration sites in a sibling.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// collect finds the package's registration calls and resolves their
// names; dyn counts the sites whose base name could not be resolved.
func collect(fset *token.FileSet, files []*ast.File) (regs []registration, dyn int) {
	consts := constStrings(files)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind := sel.Sel.Name
			if kind != "Counter" && kind != "Gauge" && kind != "Histogram" {
				return true
			}
			prefix, complete := resolve(call.Args[0], consts)
			base, ok := baseName(prefix, complete)
			if !ok {
				dyn++
				return true
			}
			regs = append(regs, registration{pos: fset.Position(call.Pos()), kind: kind, base: base})
			return true
		})
	}
	return regs, dyn
}

// constStrings collects the package's string constants, including ones
// defined by concatenating earlier constants.
func constStrings(files []*ast.File) map[string]string {
	out := map[string]string{}
	// Two passes so a const referencing a const declared later (or in a
	// later file) still resolves.
	for pass := 0; pass < 2; pass++ {
		for _, f := range files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) != len(vs.Names) {
						continue
					}
					for i, name := range vs.Names {
						if v, complete := resolve(vs.Values[i], out); complete {
							out[name.Name] = v
						}
					}
				}
			}
		}
	}
	return out
}

// resolve reduces an expression to its leading string value. complete
// reports whether the whole expression resolved; when false, prefix
// holds the resolvable left part (enough to lint `const + "{label}"`
// names whose label half embeds a variable).
func resolve(e ast.Expr, consts map[string]string) (prefix string, complete bool) {
	switch v := e.(type) {
	case *ast.BasicLit:
		if v.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(v.Value)
		if err != nil {
			return "", false
		}
		return s, true
	case *ast.Ident:
		s, ok := consts[v.Name]
		return s, ok
	case *ast.ParenExpr:
		return resolve(v.X, consts)
	case *ast.BinaryExpr:
		if v.Op != token.ADD {
			return "", false
		}
		left, ok := resolve(v.X, consts)
		if !ok {
			return left, false
		}
		right, ok := resolve(v.Y, consts)
		return left + right, ok
	}
	return "", false
}

// baseName strips the {label} block and reports whether the resolved
// prefix covers the full base name: either the expression resolved
// completely, or the unresolved part starts inside a label block.
func baseName(prefix string, complete bool) (string, bool) {
	if i := strings.IndexByte(prefix, '{'); i >= 0 {
		return prefix[:i], true
	}
	if complete && prefix != "" {
		return prefix, true
	}
	return "", false
}

// lint applies the conventions to the resolved registrations.
func lint(regs []registration) []finding {
	var out []finding
	bad := func(r registration, format string, args ...any) {
		out = append(out, finding{pos: r.pos, msg: fmt.Sprintf(format, args...)})
	}
	kinds := map[string]registration{} // base -> first registration
	for _, r := range regs {
		if !nameRE.MatchString(r.base) {
			bad(r, "%s %q: not lowercase_underscore", r.kind, r.base)
			continue
		}
		px := r.base[:strings.IndexByte(r.base+"_", '_')]
		if !knownPrefixes[px] {
			bad(r, "%s %q: unknown subsystem prefix %q (extend knownPrefixes for a new family)", r.kind, r.base, px)
		}
		switch r.kind {
		case "Counter":
			if !strings.HasSuffix(r.base, "_total") {
				bad(r, "Counter %q: counters must end in _total", r.base)
			}
		case "Gauge":
			if strings.HasSuffix(r.base, "_total") {
				bad(r, "Gauge %q: gauges are levels, not accumulations — drop _total", r.base)
			}
		case "Histogram":
			okSuffix := false
			for _, s := range histogramSuffixes {
				if strings.HasSuffix(r.base, s) {
					okSuffix = true
					break
				}
			}
			if !okSuffix {
				bad(r, "Histogram %q: histograms must carry a unit suffix (%s)", r.base, strings.Join(histogramSuffixes, ", "))
			}
		}
		if first, ok := kinds[r.base]; ok {
			if first.kind != r.kind {
				bad(r, "%s %q: already registered as %s at %s", r.kind, r.base, first.kind, first.pos)
			}
		} else {
			kinds[r.base] = r
		}
	}
	return out
}
