package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc parses synthetic sources as one package unit, mirroring how
// collect sees a real directory.
func parseSrc(t *testing.T, srcs ...string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	for i, src := range srcs {
		f, err := parser.ParseFile(fset, "src"+string(rune('a'+i))+".go", src, 0)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		files = append(files, f)
	}
	return fset, files
}

func lintSrc(t *testing.T, srcs ...string) ([]finding, int) {
	t.Helper()
	fset, files := parseSrc(t, srcs...)
	regs, dyn := collect(fset, files)
	return lint(regs), dyn
}

func msgs(fs []finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(f.msg)
		b.WriteString("\n")
	}
	return b.String()
}

func TestCleanRegistrations(t *testing.T) {
	fs, dyn := lintSrc(t, `package p
const metricQueries = "rdnsd_queries_total"
func f(sink Sink) {
	sink.Counter(metricQueries).Add(1)
	sink.Gauge("rdnsd_store_generation").Set(1)
	sink.Histogram("rdnsd_query_seconds").Observe(0.1)
	sink.Histogram("dnsserver_zonewalk_depth").Observe(3)
}
`)
	if len(fs) != 0 {
		t.Fatalf("unexpected findings:\n%s", msgs(fs))
	}
	if dyn != 0 {
		t.Fatalf("dyn = %d, want 0", dyn)
	}
}

func TestSuffixRules(t *testing.T) {
	fs, _ := lintSrc(t, `package p
func f(sink Sink) {
	sink.Counter("rdnsd_queries").Add(1)
	sink.Gauge("rdnsd_reloads_total").Set(1)
	sink.Histogram("rdnsd_query_latency").Observe(0.1)
}
`)
	if len(fs) != 3 {
		t.Fatalf("findings = %d, want 3:\n%s", len(fs), msgs(fs))
	}
	all := msgs(fs)
	for _, want := range []string{"must end in _total", "drop _total", "unit suffix"} {
		if !strings.Contains(all, want) {
			t.Errorf("missing %q in:\n%s", want, all)
		}
	}
}

func TestPrefixAndShape(t *testing.T) {
	fs, _ := lintSrc(t, `package p
func f(sink Sink) {
	sink.Counter("widget_frobs_total").Add(1)
	sink.Counter("Rdnsd_Bad_total").Add(1)
}
`)
	if len(fs) != 2 {
		t.Fatalf("findings = %d, want 2:\n%s", len(fs), msgs(fs))
	}
	all := msgs(fs)
	if !strings.Contains(all, "unknown subsystem prefix") {
		t.Errorf("missing prefix finding in:\n%s", all)
	}
	if !strings.Contains(all, "not lowercase_underscore") {
		t.Errorf("missing shape finding in:\n%s", all)
	}
}

func TestLabeledConcatenationResolves(t *testing.T) {
	// The real pattern from rdnsserve.outcomesFor: base const + a label
	// block whose value half is a variable. The base name must still be
	// linted, not skipped as dynamic.
	fs, dyn := lintSrc(t, `package p
const metricRequests = "rdnsd_requests_total"
func f(sink Sink, endpoint, outcome string) {
	sink.Counter(metricRequests + `+"`"+`{endpoint="`+"`"+` + endpoint + `+"`"+`",outcome="`+"`"+` + outcome + `+"`"+`"}`+"`"+`).Add(1)
}
`)
	if dyn != 0 {
		t.Fatalf("dyn = %d, want 0 (labeled concat should resolve)", dyn)
	}
	if len(fs) != 0 {
		t.Fatalf("unexpected findings:\n%s", msgs(fs))
	}
}

func TestDynamicNamesSkipped(t *testing.T) {
	fs, dyn := lintSrc(t, `package p
func f(sink Sink, o outcome) {
	sink.Counter(MetricOutcome(o)).Add(1)
	sink.Counter("rdnsd_" + dynamicPart() + "_total").Add(1)
}
`)
	// The second call's unresolved part starts before any label block, so
	// no full base name exists — both are dynamic skips.
	if dyn != 2 {
		t.Fatalf("dyn = %d, want 2:\n%s", dyn, msgs(fs))
	}
	if len(fs) != 0 {
		t.Fatalf("unexpected findings:\n%s", msgs(fs))
	}
}

func TestCrossFileConstAndForwardReference(t *testing.T) {
	fs, dyn := lintSrc(t,
		`package p
func f(sink Sink) { sink.Counter(metricFetches).Add(1) }
`,
		`package p
const metricFetches = metricPrefix + "fetches_total"
const metricPrefix = "rdnsd_repl_"
`)
	if dyn != 0 {
		t.Fatalf("dyn = %d, want 0 (cross-file forward const should resolve)", dyn)
	}
	if len(fs) != 0 {
		t.Fatalf("unexpected findings:\n%s", msgs(fs))
	}
}

func TestKindConflict(t *testing.T) {
	fs, _ := lintSrc(t, `package p
func f(sink Sink) {
	sink.Counter("rdnsd_reloads_total").Add(1)
	sink.Counter("rdnsd_reloads_total").Add(1) // same kind twice: fine
	sink.Gauge("rdnsd_reloads_total").Set(1)   // kind conflict
}
`)
	var conflict bool
	for _, f := range fs {
		if strings.Contains(f.msg, "already registered as Counter") {
			conflict = true
		}
	}
	if !conflict {
		t.Fatalf("missing kind-conflict finding:\n%s", msgs(fs))
	}
}

func TestRepoIsClean(t *testing.T) {
	// The linter's own acceptance test: the real tree must pass.
	dirs, err := goDirs([]string{"../../internal", "../../cmd"})
	if err != nil {
		t.Fatalf("goDirs: %v", err)
	}
	fset := token.NewFileSet()
	var regs []registration
	for _, dir := range dirs {
		files, err := parseDir(fset, dir)
		if err != nil {
			t.Fatalf("parseDir %s: %v", dir, err)
		}
		r, _ := collect(fset, files)
		regs = append(regs, r...)
	}
	if len(regs) < 50 {
		t.Fatalf("resolved only %d registrations — resolver regressed?", len(regs))
	}
	if fs := lint(regs); len(fs) != 0 {
		t.Fatalf("repo has metric-name violations:\n%s", msgs(fs))
	}
}
