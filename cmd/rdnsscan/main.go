// Command rdnsscan is a zdns-style reverse DNS scanner: it issues PTR
// queries for every address of a prefix against a name server over UDP and
// prints the results as CSV (the output format of the paper's custom
// measurement tooling, Section 6.1). Sweeps run through the sharded
// snapshot engine (internal/scanengine): the prefix is split into per-/16
// shards and fanned out over a bounded worker pool.
//
// Point it at a server started with cmd/simnet, or at any DNS server that
// answers in-addr.arpa queries:
//
//	rdnsscan -server 127.0.0.1:5353 -prefix 10.0.0.0/24
//	rdnsscan -server 127.0.0.1:5353 -ip 10.0.0.17
//	rdnsscan -server 127.0.0.1:5353 -prefix 10.0.0.0/20 -workers 16
//
// With -watch it polls the prefix and prints record-set deltas — the
// "capturing DNS changes" tracker of the paper's Section 2.1:
//
//	rdnsscan -server 127.0.0.1:5353 -prefix 10.0.0.0/24 -watch -interval 10s
//
// And -axfr attempts a zone transfer, the one-query enumeration open on
// misconfigured servers.
//
// Against flaky or rate-limiting servers, -resilient layers scan-level
// retries with jittered backoff, per-shard circuit breakers, and graceful
// degradation over the sweep, and reports the sweep's health on stderr:
//
//	rdnsscan -server 8.8.8.8:53 -prefix 192.0.2.0/24 -resilient -hedge 50ms
//
// See docs/resilience.md for the knobs and their semantics.
//
// With -metrics-addr the scanner serves its telemetry over HTTP while the
// sweep runs: Prometheus text on /metrics, expvar-style JSON on
// /debug/vars, the Go profiler under /debug/pprof/, the resilience
// HealthReport on /health and the span log on /trace:
//
//	rdnsscan -server 127.0.0.1:5353 -prefix 10.0.0.0/16 -metrics-addr 127.0.0.1:9090
//	curl -s http://127.0.0.1:9090/metrics
//
// And -trace-out writes the sweep's span log (one JSON object per shard
// span, with per-probe events) for post-hoc analysis with
// `experiments -trace`:
//
//	rdnsscan -server 127.0.0.1:5353 -prefix 10.0.0.0/20 -trace-out sweep.jsonl
//	experiments -trace sweep.jsonl
//
// -obs-out captures one observability frame per sweep (counter deltas,
// coverage, churn, health; one frame per poll with -watch) and writes the
// series as JSONL for `experiments -obs`:
//
//	rdnsscan -server 127.0.0.1:5353 -prefix 10.0.0.0/24 -watch -obs-out frames.jsonl
//	experiments -obs frames.jsonl
//
// See docs/telemetry.md for metric names and the trace schema, and
// docs/observability.md for the frame schema.
//
// -store appends each sweep's merged record set to a longitudinal
// history store (one snapshot per sweep; one per poll with -watch),
// which cmd/rdnsd then serves over HTTP and leakfind -store analyzes:
//
//	rdnsscan -server 127.0.0.1:5353 -prefix 10.0.0.0/24 -watch -store campaign.hist
//	rdnsd -store campaign.hist
//
// See docs/storage.md for the on-disk format and the query API.
//
// Interrupting a sweep (Ctrl-C) cancels the engine's context: workers
// drain, the partial tally is reported, and the process exits cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"time"

	"rdnsprivacy/internal/dnsclient"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/obs"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
)

// lastHealth holds the most recent sweep's HealthReport for the /health
// endpoint (nil until a resilient sweep completes).
var lastHealth atomic.Pointer[scanengine.HealthReport]

func main() {
	server := flag.String("server", "127.0.0.1:5353", "name server host:port")
	prefix := flag.String("prefix", "", "CIDR prefix to scan (e.g. 10.0.0.0/24)")
	single := flag.String("ip", "", "single address to look up")
	timeout := flag.Duration("timeout", 2*time.Second, "per-query timeout")
	retries := flag.Int("retries", 1, "retransmissions after timeout")
	rate := flag.Int("rate", 0, "max queries per second (0 = unlimited)")
	workers := flag.Int("workers", 8, "resolver worker pool size")
	negTTL := flag.Duration("neg-ttl", 0, "negative-cache TTL for repeated sweeps (0 = off)")
	onlyFound := flag.Bool("only-found", false, "print only NOERROR results")
	resilient := flag.Bool("resilient", false, "enable the resilience layer: scan-level retries with jittered backoff, per-shard circuit breakers, graceful degradation (see docs/resilience.md)")
	maxAttempts := flag.Int("max-attempts", 3, "total lookups per address with -resilient")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "base retry backoff with -resilient (full jitter, doubling per attempt)")
	hedge := flag.Duration("hedge", 0, "hedged-lookup delay: race a second query after this long (0 = off, implies -resilient)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive faults that open a shard's circuit breaker with -resilient (0 = breaker off)")
	breakerOpen := flag.Duration("breaker-open", time.Second, "how long an open breaker waits before probing half-open")
	throttleDelay := flag.Duration("throttle-delay", 0, "initial adaptive pacing delay on REFUSED answers (0 = off)")
	seed := flag.Int64("seed", 1, "jitter seed; the same seed replays the same backoff schedule")
	axfr := flag.String("axfr", "", "attempt an AXFR of the given zone over TCP instead of scanning")
	watch := flag.Bool("watch", false, "poll the prefix and print record-set changes")
	interval := flag.Duration("interval", 30*time.Second, "polling interval for -watch")
	metricsAddr := flag.String("metrics-addr", "", "serve telemetry over HTTP on this address: /metrics (Prometheus), /debug/vars (JSON), /debug/pprof/, /health, /trace (see docs/telemetry.md)")
	traceOut := flag.String("trace-out", "", "write the sweep span log to this file as JSONL for `experiments -trace`")
	obsOut := flag.String("obs-out", "", "write one observability frame per sweep to this file as JSONL for `experiments -obs` (see docs/observability.md)")
	storeOut := flag.String("store", "", "append each sweep's record set to this longitudinal history store, queryable with cmd/rdnsd (see docs/storage.md)")
	storeWriter := flag.String("store-writer", histstore.DefaultWriter, "writer id for -store appends: each campaign/vantage point appends through its own exclusive tail, merged at read time")
	flag.Parse()

	client := &dnsclient.UDPClient{Server: *server, Timeout: *timeout, Retries: *retries}

	if *axfr != "" {
		zone, err := dnswire.ParseName(*axfr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		records, err := client.TransferZone(zone)
		if err != nil {
			fmt.Fprintf(os.Stderr, "transfer failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("name,type,data")
		for _, rr := range records {
			fmt.Printf("%s,%s,%s\n", rr.Name, rr.Type, rr.Data)
		}
		fmt.Fprintf(os.Stderr, "transferred %d records in one query\n", len(records))
		return
	}

	var targets []dnswire.Prefix
	switch {
	case *single != "":
		ip, err := dnswire.ParseIPv4(*single)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		targets = []dnswire.Prefix{{Addr: ip, Bits: 32}}
	case *prefix != "":
		p, err := dnswire.ParsePrefix(*prefix)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		targets = []dnswire.Prefix{p}
	default:
		fmt.Fprintln(os.Stderr, "need -prefix or -ip")
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := []scanengine.Option{scanengine.WithWorkers(*workers)}
	if *rate > 0 {
		opts = append(opts, scanengine.WithRate(*rate))
	}
	if *negTTL > 0 {
		opts = append(opts, scanengine.WithNegativeTTL(*negTTL))
	}
	if *resilient || *hedge > 0 {
		opts = append(opts, scanengine.WithResilience(scanengine.ResilienceConfig{
			Retry: scanengine.RetryPolicy{
				MaxAttempts: *maxAttempts,
				BaseDelay:   *backoff,
			},
			Breaker: scanengine.BreakerConfig{
				Threshold: *breakerThreshold,
				OpenFor:   *breakerOpen,
			},
			Hedge:    scanengine.HedgeConfig{Delay: *hedge},
			Throttle: scanengine.ThrottleConfig{InitialDelay: *throttleDelay},
			Seed:     *seed,
		}))
	}

	var tracer *telemetry.Tracer
	var recorder *obs.Recorder
	var store *histstore.Store
	if *storeOut != "" {
		var err error
		store, err = histstore.Open(*storeOut, histstore.WithWriter(*storeWriter))
		if err != nil {
			fmt.Fprintf(os.Stderr, "store: %v\n", err)
			os.Exit(1)
		}
		defer store.Close()
	}
	if *metricsAddr != "" || *traceOut != "" || *obsOut != "" {
		reg := telemetry.NewRegistry()
		tracer = telemetry.NewTracer(*seed, 0)
		opts = append(opts, scanengine.WithTelemetry(reg), scanengine.WithTracer(tracer))
		if *obsOut != "" {
			recorder = obs.NewRecorder(reg)
			if store != nil {
				recorder.SetStoreStats(func() obs.StoreStats {
					s := store.Stats()
					return obs.StoreStats{
						Snapshots:   s.Snapshots,
						Blocks:      s.Blocks,
						BaseFrames:  s.BaseFrames,
						DeltaFrames: s.DeltaFrames,
						Bytes:       s.Bytes,
					}
				})
			}
		}
		if *metricsAddr != "" {
			exp := telemetry.NewExporter(reg,
				telemetry.WithExporterTracer(tracer),
				telemetry.WithExporterHealth(func() any { return lastHealth.Load() }))
			addr, err := exp.Start(*metricsAddr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "metrics endpoint: %v\n", err)
				os.Exit(1)
			}
			defer exp.Close()
			fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics\n", addr)
		}
	}
	if *watch {
		if *prefix == "" {
			fmt.Fprintln(os.Stderr, "-watch needs -prefix")
			os.Exit(2)
		}
		watchLoop(ctx, client, targets, *interval, opts, recorder, store)
		dumpTrace(tracer, *traceOut)
		dumpFrames(recorder, *obsOut)
		return
	}

	sc := scanengine.New(dnsclient.UDPSource{Client: client}, append(opts, scanengine.WithResultEvents())...)
	fmt.Println("ip,outcome,ptr,rtt_ms")
	printDone := make(chan struct{})
	go func() {
		defer close(printDone)
		for ev := range sc.Events(ctx) {
			if ev.Kind != scanengine.EventResult {
				if ev.Kind == scanengine.EventSweepDone {
					return
				}
				continue
			}
			resp, ok := ev.Result.Meta.(dnsclient.Response)
			if !ok {
				if ev.Result.Err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", ev.Result.IP, ev.Result.Err)
				}
				continue
			}
			if !*onlyFound || resp.Outcome == dnsclient.OutcomeSuccess {
				fmt.Printf("%s,%s,%s,%.1f\n", ev.Result.IP, resp.Outcome, resp.PTR,
					float64(resp.RTT.Microseconds())/1000)
			}
		}
	}()
	snap, err := sc.Scan(ctx, scanengine.Request{Targets: targets})
	<-printDone
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep interrupted: %v\n", err)
	}
	fmt.Fprintf(os.Stderr, "scanned %d addresses: %d records, %d errors\n",
		snap.Stats.Probes, snap.Stats.Found, snap.Stats.Errors)
	if snap != nil && snap.Health != nil {
		lastHealth.Store(snap.Health)
	}
	if snap != nil {
		appendStore(store, snap)
		recorder.CaptureFrame(0, time.Now().UTC(), snap)
	}
	printHealth(snap)
	dumpTrace(tracer, *traceOut)
	dumpFrames(recorder, *obsOut)
	if err != nil {
		os.Exit(1)
	}
}

// appendStore persists one sweep's record set as a history-store
// snapshot stamped with the wall clock. No-op without -store; a failed
// append (e.g. two polls within the store's one-second granularity) is
// reported but does not stop the scan.
func appendStore(store *histstore.Store, snap *scanengine.Snapshot) {
	if store == nil || snap == nil {
		return
	}
	if err := store.Append(time.Now().UTC(), snap.Records); err != nil {
		fmt.Fprintf(os.Stderr, "store: %v\n", err)
	}
}

// dumpFrames writes the captured sweep frames as JSONL, the input format
// of `experiments -obs`. No-ops when frame capture is off or no path was
// given.
func dumpFrames(rec *obs.Recorder, path string) {
	if rec == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obs: %v\n", err)
		return
	}
	defer f.Close()
	if err := rec.Store().WriteJSONL(f); err != nil {
		fmt.Fprintf(os.Stderr, "obs: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "obs: wrote %d frames to %s\n", rec.Store().Len(), path)
}

// dumpTrace writes the tracer's span log as JSONL, the input format of
// `experiments -trace`. No-ops when tracing is off or no path was given.
func dumpTrace(tracer *telemetry.Tracer, path string) {
	if tracer == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		return
	}
	defer f.Close()
	if err := tracer.WriteJSONL(f); err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "trace: wrote %d spans to %s\n", tracer.Len(), path)
}

// printHealth summarizes the resilience layer's HealthReport on stderr
// (only present when the layer is enabled).
func printHealth(snap *scanengine.Snapshot) {
	if snap == nil || snap.Health == nil {
		return
	}
	t := snap.Health.Totals
	fmt.Fprintf(os.Stderr, "health: %d attempts, %d retries, %d throttled, %d hedges (%d won), %d breaker opens, %d skipped\n",
		t.Attempts, t.Retries, t.Throttled, t.Hedges, t.HedgeWins, t.BreakerOpens, t.Skipped)
	for _, p := range snap.Health.Degraded {
		fmt.Fprintf(os.Stderr, "health: DEGRADED %s — breaker budget exhausted, range incompletely scanned\n", p)
	}
}

// watchLoop re-sweeps the targets through the engine and prints the deltas
// each snapshot carries against its predecessor. With frame capture on,
// every sweep becomes one observability frame.
func watchLoop(ctx context.Context, client *dnsclient.UDPClient, targets []dnswire.Prefix, interval time.Duration, opts []scanengine.Option, recorder *obs.Recorder, store *histstore.Store) {
	sc := scanengine.New(dnsclient.UDPSource{Client: client}, opts...)
	snap, err := sc.Scan(ctx, scanengine.Request{Targets: targets})
	if err != nil {
		fmt.Fprintf(os.Stderr, "baseline sweep interrupted: %v\n", err)
		os.Exit(1)
	}
	appendStore(store, snap)
	recorder.CaptureFrame(0, time.Now().UTC(), snap)
	fmt.Fprintf(os.Stderr, "baseline: %d records; watching every %s\n", len(snap.Records), interval)
	for sweep := 1; ; sweep++ {
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
		snap, err = sc.Scan(ctx, scanengine.Request{Targets: targets})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep interrupted: %v\n", err)
			return
		}
		if snap.Health != nil {
			lastHealth.Store(snap.Health)
		}
		appendStore(store, snap)
		recorder.CaptureFrame(sweep, time.Now().UTC(), snap)
		now := time.Now().Format("15:04:05")
		for _, ch := range snap.Changes {
			switch ch.Kind {
			case scanengine.RecordAdded:
				fmt.Printf("%s  + %-16s %s\n", now, ch.IP, ch.New)
			case scanengine.RecordRemoved:
				fmt.Printf("%s  - %-16s %s\n", now, ch.IP, ch.Old)
			case scanengine.RecordChanged:
				fmt.Printf("%s  ~ %-16s %s -> %s\n", now, ch.IP, ch.Old, ch.New)
			}
		}
	}
}
