// Command rdnsscan is a zdns-style reverse DNS scanner: it issues PTR
// queries for every address of a prefix against a name server over UDP and
// prints the results as CSV (the output format of the paper's custom
// measurement tooling, Section 6.1).
//
// Point it at a server started with cmd/simnet, or at any DNS server that
// answers in-addr.arpa queries:
//
//	rdnsscan -server 127.0.0.1:5353 -prefix 10.0.0.0/24
//	rdnsscan -server 127.0.0.1:5353 -ip 10.0.0.17
//
// With -watch it polls the prefix and prints record-set deltas — the
// "capturing DNS changes" tracker of the paper's Section 2.1:
//
//	rdnsscan -server 127.0.0.1:5353 -prefix 10.0.0.0/24 -watch -interval 10s
//
// And -axfr attempts a zone transfer, the one-query enumeration open on
// misconfigured servers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rdnsprivacy/internal/dnsclient"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/scan"
)

func main() {
	server := flag.String("server", "127.0.0.1:5353", "name server host:port")
	prefix := flag.String("prefix", "", "CIDR prefix to scan (e.g. 10.0.0.0/24)")
	single := flag.String("ip", "", "single address to look up")
	timeout := flag.Duration("timeout", 2*time.Second, "per-query timeout")
	retries := flag.Int("retries", 1, "retransmissions after timeout")
	rate := flag.Int("rate", 0, "max queries per second (0 = unlimited)")
	onlyFound := flag.Bool("only-found", false, "print only NOERROR results")
	axfr := flag.String("axfr", "", "attempt an AXFR of the given zone over TCP instead of scanning")
	watch := flag.Bool("watch", false, "poll the prefix and print record-set changes")
	interval := flag.Duration("interval", 30*time.Second, "polling interval for -watch")
	flag.Parse()

	client := &dnsclient.UDPClient{Server: *server, Timeout: *timeout, Retries: *retries}

	if *axfr != "" {
		zone, err := dnswire.ParseName(*axfr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		records, err := client.TransferZone(zone)
		if err != nil {
			fmt.Fprintf(os.Stderr, "transfer failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("name,type,data")
		for _, rr := range records {
			fmt.Printf("%s,%s,%s\n", rr.Name, rr.Type, rr.Data)
		}
		fmt.Fprintf(os.Stderr, "transferred %d records in one query\n", len(records))
		return
	}

	var ips []dnswire.IPv4
	switch {
	case *single != "":
		ip, err := dnswire.ParseIPv4(*single)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		ips = []dnswire.IPv4{ip}
	case *prefix != "":
		p, err := dnswire.ParsePrefix(*prefix)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		n := p.NumAddresses()
		for i := 0; i < n; i++ {
			ips = append(ips, p.Nth(i))
		}
	default:
		fmt.Fprintln(os.Stderr, "need -prefix or -ip")
		flag.Usage()
		os.Exit(2)
	}

	if *watch {
		if *prefix == "" {
			fmt.Fprintln(os.Stderr, "-watch needs -prefix")
			os.Exit(2)
		}
		watchLoop(client, ips, *interval, *rate)
		return
	}

	fmt.Println("ip,outcome,ptr,rtt_ms")
	var queryGap time.Duration
	if *rate > 0 {
		queryGap = time.Second / time.Duration(*rate)
	}
	found, errors := 0, 0
	for _, ip := range ips {
		resp, err := client.LookupPTR(ip)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", ip, err)
			errors++
			continue
		}
		if resp.Outcome == dnsclient.OutcomeSuccess {
			found++
		}
		if !*onlyFound || resp.Outcome == dnsclient.OutcomeSuccess {
			fmt.Printf("%s,%s,%s,%.1f\n", ip, resp.Outcome, resp.PTR,
				float64(resp.RTT.Microseconds())/1000)
		}
		if queryGap > 0 {
			time.Sleep(queryGap)
		}
	}
	fmt.Fprintf(os.Stderr, "scanned %d addresses: %d records, %d errors\n",
		len(ips), found, errors)
}

// watchLoop polls the address set and prints deltas as they appear.
func watchLoop(client *dnsclient.UDPClient, ips []dnswire.IPv4, interval time.Duration, rate int) {
	var queryGap time.Duration
	if rate > 0 {
		queryGap = time.Second / time.Duration(rate)
	}
	snapshot := func() scan.RecordSet {
		rs := scan.RecordSet{}
		for _, ip := range ips {
			resp, err := client.LookupPTR(ip)
			if err == nil && resp.Outcome == dnsclient.OutcomeSuccess {
				rs[ip] = resp.PTR
			}
			if queryGap > 0 {
				time.Sleep(queryGap)
			}
		}
		return rs
	}
	prev := snapshot()
	fmt.Fprintf(os.Stderr, "baseline: %d records; watching every %s\n", len(prev), interval)
	for {
		time.Sleep(interval)
		cur := snapshot()
		for _, ch := range scan.DiffRecords(prev, cur) {
			now := time.Now().Format("15:04:05")
			switch ch.Kind {
			case scan.RecordAdded:
				fmt.Printf("%s  + %-16s %s\n", now, ch.IP, ch.New)
			case scan.RecordRemoved:
				fmt.Printf("%s  - %-16s %s\n", now, ch.IP, ch.Old)
			case scan.RecordChanged:
				fmt.Printf("%s  ~ %-16s %s -> %s\n", now, ch.IP, ch.Old, ch.New)
			}
		}
		prev = cur
	}
}
