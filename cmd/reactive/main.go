// Command reactive runs the Section 6 supplemental measurement against a
// simulated set of networks: hourly ICMP sweeps, reactive back-off probing,
// and reverse-DNS follow-up, then prints the Table 3/4/5 summaries and the
// Figure 7 timing analysis.
//
//	reactive [-days 7] [-people 16] [-seed 42]
//
// With -metrics-addr the run serves its live telemetry over HTTP
// (/metrics, /debug/vars, /debug/pprof/, /trace) while the measurement is
// in progress, and the span log carries the correlated
// client→fabric→server chains docs/observability.md describes:
//
//	reactive -days 7 -metrics-addr 127.0.0.1:9090
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rdnsprivacy/internal/core"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/privleak"
	"rdnsprivacy/internal/telemetry"
)

func main() {
	days := flag.Int("days", 7, "measurement window in days")
	people := flag.Int("people", 16, "people per dynamic /24 (population scale)")
	seed := flag.Uint64("seed", 42, "simulation seed")
	metricsAddr := flag.String("metrics-addr", "", "serve telemetry over HTTP on this address while the measurement runs (see docs/telemetry.md)")
	flag.Parse()

	start := time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)
	cfg := core.Config{
		Seed: *seed,
		Universe: netsim.UniverseConfig{
			FillerSlash24s:        400,
			LeakyNetworks:         12,
			NonLeakyDynamic:       2,
			PeoplePerDynamicBlock: *people,
		},
		LeakThresholds:    privleak.Config{MinUniqueNames: 8, MinRatio: 0.02},
		SupplementalStart: start,
		SupplementalEnd:   start.AddDate(0, 0, *days),
	}
	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		tracer := telemetry.NewTracer(int64(*seed), 0)
		cfg.Telemetry = reg
		cfg.Tracer = tracer
		exporter := telemetry.NewExporter(reg, telemetry.WithExporterTracer(tracer))
		addr, err := exporter.Start(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics endpoint: %v\n", err)
			os.Exit(1)
		}
		defer exporter.Close()
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics\n", addr)
	}
	study, err := core.NewStudy(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("running supplemental measurement: %d days over the nine networks...\n\n", *days)
	for _, id := range []string{"table2", "table3", "table4", "table5", "fig6", "fig7a", "fig7b"} {
		r, err := study.RunExperiment(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r.Render(os.Stdout)
	}
}
