// Command reactive runs the Section 6 supplemental measurement against a
// simulated set of networks: hourly ICMP sweeps, reactive back-off probing,
// and reverse-DNS follow-up, then prints the Table 3/4/5 summaries and the
// Figure 7 timing analysis.
//
//	reactive [-days 7] [-people 16] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rdnsprivacy/internal/core"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/privleak"
)

func main() {
	days := flag.Int("days", 7, "measurement window in days")
	people := flag.Int("people", 16, "people per dynamic /24 (population scale)")
	seed := flag.Uint64("seed", 42, "simulation seed")
	flag.Parse()

	start := time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)
	cfg := core.Config{
		Seed: *seed,
		Universe: netsim.UniverseConfig{
			FillerSlash24s:        400,
			LeakyNetworks:         12,
			NonLeakyDynamic:       2,
			PeoplePerDynamicBlock: *people,
		},
		LeakThresholds:    privleak.Config{MinUniqueNames: 8, MinRatio: 0.02},
		SupplementalStart: start,
		SupplementalEnd:   start.AddDate(0, 0, *days),
	}
	study, err := core.NewStudy(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("running supplemental measurement: %d days over the nine networks...\n\n", *days)
	for _, id := range []string{"table2", "table3", "table4", "table5", "fig6", "fig7a", "fig7b"} {
		r, err := study.RunExperiment(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r.Render(os.Stdout)
	}
}
