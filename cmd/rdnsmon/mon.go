package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"rdnsprivacy/internal/obs"
	"rdnsprivacy/internal/rdnsclient"
	"rdnsprivacy/internal/textplot"
)

// monConfig is one monitoring run's parameters (see main for the flags).
type monConfig struct {
	// targets are the daemons' API base URLs.
	targets []string
	// metrics optionally lists each daemon's Prometheus text URL (same
	// order as targets); empty skips the metrics scrape.
	metrics []string
	// rounds and interval shape the polling window: deltas between the
	// first and last round turn cumulative counters into rates.
	rounds   int
	interval time.Duration
	rules    obs.LoadRules
	jsonOut  bool
	// hc overrides the HTTP client (tests drive in-process handlers).
	hc *http.Client
}

// pollRound is one round's scrape of every target.
type pollRound struct {
	at    time.Time
	stats []rdnsclient.StatsResponse
	ok    []bool
	errs  []error
}

// monResult is the run's JSON output shape.
type monResult struct {
	Targets []string         `json:"targets"`
	Rounds  int              `json:"rounds"`
	Window  float64          `json:"window_seconds"`
	Samples []obs.LoadSample `json:"samples"`
	Report  obs.LoadReport   `json:"report"`
}

// run polls the fleet, renders the dashboard, evaluates the SLO rules,
// and returns the process exit code: 0 within SLO, 1 on a breach or an
// unreachable daemon, 2 on a usage error.
func run(cfg *monConfig, stdout, stderr io.Writer) int {
	if len(cfg.targets) == 0 {
		fmt.Fprintln(stderr, "rdnsmon: no targets (use -targets url[,url...])")
		return 2
	}
	if len(cfg.metrics) > 0 && len(cfg.metrics) != len(cfg.targets) {
		fmt.Fprintln(stderr, "rdnsmon: -metrics must list one URL per target")
		return 2
	}
	if cfg.rounds < 1 {
		fmt.Fprintln(stderr, "rdnsmon: need -rounds >= 1")
		return 2
	}
	if cfg.hc == nil {
		cfg.hc = &http.Client{Timeout: 10 * time.Second}
	}

	clients := make([]*rdnsclient.Client, len(cfg.targets))
	for i, t := range cfg.targets {
		// No retries: a daemon pushing back right now is a finding, not
		// something to smooth over.
		clients[i] = rdnsclient.New(t, rdnsclient.WithHTTPClient(cfg.hc), rdnsclient.WithRetries(0, 0))
	}

	rounds := make([]pollRound, 0, cfg.rounds)
	for r := 0; r < cfg.rounds; r++ {
		if r > 0 && cfg.interval > 0 {
			time.Sleep(cfg.interval)
		}
		pr := pollRound{
			at:    time.Now(),
			stats: make([]rdnsclient.StatsResponse, len(clients)),
			ok:    make([]bool, len(clients)),
			errs:  make([]error, len(clients)),
		}
		for i, c := range clients {
			sr, err := c.Stats(context.Background())
			if err != nil {
				pr.errs[i] = err
				continue
			}
			pr.stats[i], pr.ok[i] = sr, true
		}
		rounds = append(rounds, pr)
	}

	samples := fleetSamples(cfg, rounds)
	report := cfg.rules.EvaluateLoad(samples)
	window := rounds[len(rounds)-1].at.Sub(rounds[0].at).Seconds()

	if cfg.jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(monResult{
			Targets: cfg.targets,
			Rounds:  cfg.rounds,
			Window:  window,
			Samples: samples,
			Report:  report,
		})
	} else {
		dashboard(stdout, cfg, rounds, samples, window)
		fmt.Fprint(stdout, report.Summary())
	}

	last := rounds[len(rounds)-1]
	for i := range cfg.targets {
		if !last.ok[i] {
			fmt.Fprintf(stderr, "rdnsmon: %s unreachable: %v\n", cfg.targets[i], last.errs[i])
		}
	}
	if !report.OK {
		fmt.Fprintf(stderr, "rdnsmon: OUT OF SLO (%d/%d samples violating)\n",
			report.ViolatingSamples, len(report.Verdicts))
		return 1
	}
	fmt.Fprintf(stderr, "rdnsmon: within SLO (%d samples)\n", len(report.Verdicts))
	return 0
}

// outcomeTotals sums a daemon's per-endpoint outcome counters. ok is
// false when the daemon exposes none (telemetry off) — callers fall back
// to the admission counters.
func outcomeTotals(sr rdnsclient.StatsResponse) (req, errs uint64, ok bool) {
	if len(sr.Endpoints) == 0 {
		return 0, 0, false
	}
	for _, ep := range sr.Endpoints {
		req += ep.OK + ep.Errors + ep.Canceled + ep.Rejected
		errs += ep.Errors
	}
	return req, errs, true
}

// fleetSamples turns the polling window into one judgeable LoadSample per
// target plus a fleet total: request/error/pushback counts are the delta
// between the first and last successful polls (cumulative counters →
// window rates), latency quantiles and exemplars are the daemon's own
// histogram as of the last poll, and replica lag is the last report. An
// unreachable target contributes a failing sample (one request, one
// error) so the error-rate rule flags it.
func fleetSamples(cfg *monConfig, rounds []pollRound) []obs.LoadSample {
	first, last := rounds[0], rounds[len(rounds)-1]
	var out []obs.LoadSample
	var fleet obs.LoadSample
	fleet.Label = "fleet"
	for i := range cfg.targets {
		label := fmt.Sprintf("d%d", i)
		if !last.ok[i] {
			out = append(out, obs.LoadSample{Label: label, Requests: 1, Errors: 1})
			fleet.Requests++
			fleet.Errors++
			continue
		}
		cur := last.stats[i]
		s := obs.LoadSample{Label: label}
		req, errs, hasOutcomes := outcomeTotals(cur)
		adm := cur.Admission
		if !hasOutcomes {
			req = adm.Admitted + adm.RateLimited + adm.Denied + adm.Shed
		}
		s.Requests, s.Errors = req, errs
		s.RateLimited, s.Shed = adm.RateLimited, adm.Shed
		if first.ok[i] && len(rounds) > 1 {
			base := first.stats[i]
			breq, berrs, _ := outcomeTotals(base)
			if !hasOutcomes {
				badm := base.Admission
				breq = badm.Admitted + badm.RateLimited + badm.Denied + badm.Shed
			}
			s.Requests -= minU64(breq, s.Requests)
			s.Errors -= minU64(berrs, s.Errors)
			s.RateLimited -= minU64(base.Admission.RateLimited, s.RateLimited)
			s.Shed -= minU64(base.Admission.Shed, s.Shed)
		}
		s.P50, s.P95, s.P99 = cur.Latency.P50, cur.Latency.P95, cur.Latency.P99
		s.P99Corr = cur.Latency.P99Corr
		if cur.Replica != nil {
			s.BytesBehind = cur.Replica.BytesBehind
		}
		out = append(out, s)
		fleet.Requests += s.Requests
		fleet.Errors += s.Errors
		fleet.RateLimited += s.RateLimited
		fleet.Shed += s.Shed
		if s.P95 > fleet.P95 {
			fleet.P95 = s.P95
		}
		if s.P99 > fleet.P99 {
			fleet.P99 = s.P99
			fleet.P99Corr = s.P99Corr
		}
		if s.BytesBehind > fleet.BytesBehind {
			fleet.BytesBehind = s.BytesBehind
		}
	}
	out = append(out, fleet)
	return out
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// dashboard renders the fleet state: a legend mapping the short daemon
// labels to their URLs, the per-daemon status table, a qps bar chart,
// and the per-round p99 progression.
func dashboard(w io.Writer, cfg *monConfig, rounds []pollRound, samples []obs.LoadSample, window float64) {
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	last := rounds[len(rounds)-1]
	fmt.Fprintf(bw, "rdnsmon: %d daemons, %d rounds over %.1fs\n", len(cfg.targets), len(rounds), window)
	for i, t := range cfg.targets {
		fmt.Fprintf(bw, "  d%d = %s\n", i, t)
	}
	fmt.Fprintln(bw)

	headers := []string{"daemon", "gen", "qps", "p50ms", "p95ms", "p99ms", "p99 corr", "err%", "shed%", "lag", "store"}
	if len(cfg.metrics) > 0 {
		headers = append(headers, "series")
	}
	var rows [][]string
	var bars []textplot.BarItem
	for i := range cfg.targets {
		label := fmt.Sprintf("d%d", i)
		if !last.ok[i] {
			row := []string{label, "-", "-", "-", "-", "-", "-", "-", "-", "-", "unreachable"}
			if len(cfg.metrics) > 0 {
				row = append(row, "-")
			}
			rows = append(rows, row)
			bars = append(bars, textplot.BarItem{Label: label})
			continue
		}
		cur := last.stats[i]
		s := samples[i]
		qps := 0.0
		if window > 0 {
			qps = float64(s.Requests) / window
		}
		corr := cur.Latency.P99Corr
		if len(corr) > 8 {
			corr = corr[:8] + "…"
		}
		lag := "-"
		if cur.Replica != nil {
			lag = fmt.Sprintf("%dB", cur.Replica.BytesBehind)
		}
		store := fmt.Sprintf("%d/%d hot", cur.Store.HotSegments, cur.Store.Segments)
		if cur.Store.Compaction.Running {
			store += ", compacting"
		} else if cur.Store.Compaction.Runs > 0 {
			store += fmt.Sprintf(", %d compactions", cur.Store.Compaction.Runs)
		}
		row := []string{
			label,
			fmt.Sprintf("%d", cur.Generation),
			fmt.Sprintf("%.1f", qps),
			fmt.Sprintf("%.2f", cur.Latency.P50*1e3),
			fmt.Sprintf("%.2f", cur.Latency.P95*1e3),
			fmt.Sprintf("%.2f", cur.Latency.P99*1e3),
			corr,
			fmt.Sprintf("%.2f", s.ErrorRate()*100),
			fmt.Sprintf("%.2f", s.ShedRate()*100),
			lag,
			store,
		}
		if len(cfg.metrics) > 0 {
			row = append(row, metricsSeries(cfg, i))
		}
		rows = append(rows, row)
		bars = append(bars, textplot.BarItem{Label: label, Value: qps})
	}
	textplot.Table(bw, "fleet status", headers, rows)

	textplot.Bars(bw, "qps by daemon", bars, textplot.BarsOptions{Width: 40})

	if len(rounds) > 1 {
		headers := []string{"daemon"}
		for r := range rounds {
			headers = append(headers, fmt.Sprintf("r%d p99ms", r))
		}
		var rows [][]string
		for i := range cfg.targets {
			row := []string{fmt.Sprintf("d%d", i)}
			for _, pr := range rounds {
				if pr.ok[i] {
					row = append(row, fmt.Sprintf("%.2f", pr.stats[i].Latency.P99*1e3))
				} else {
					row = append(row, "-")
				}
			}
			rows = append(rows, row)
		}
		textplot.Table(bw, "p99 by round", headers, rows)
	}
}

// metricsSeries scrapes one daemon's Prometheus text page and reports
// its series count — a cheap liveness-and-shape check on the metrics
// listener ("err" when unreachable).
func metricsSeries(cfg *monConfig, i int) string {
	resp, err := cfg.hc.Get(cfg.metrics[i])
	if err != nil {
		return "err"
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Sprintf("http %d", resp.StatusCode)
	}
	n := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" && !strings.HasPrefix(line, "#") {
			n++
		}
	}
	return fmt.Sprintf("%d", n)
}
