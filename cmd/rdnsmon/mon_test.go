package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/obs"
	"rdnsprivacy/internal/rdnsclient"
	"rdnsprivacy/internal/rdnsserve"
	"rdnsprivacy/internal/replica"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
	"rdnsprivacy/internal/testutil"
)

var campaignStart = time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)

// dayRecords synthesizes day's record set: per /24 block, four stable
// devices plus one address whose name churns with the day index.
func dayRecords(day, blocks int) scanengine.RecordSet {
	stable := []string{"brians-iphone", "alices-laptop", "printer", "camera"}
	recs := scanengine.RecordSet{}
	for b := 0; b < blocks; b++ {
		for d, name := range stable {
			ip := dnswire.IPv4{10, 0, byte(b + 1), byte(10 + d)}
			recs[ip] = dnswire.MustName(fmt.Sprintf("%s.b%d.lan.example.net", name, b))
		}
		churn := dnswire.IPv4{10, 0, byte(b + 1), 200}
		recs[churn] = dnswire.MustName(fmt.Sprintf("dhcp-%d.dyn.example.net", (day*31+b)%997))
	}
	return recs
}

func appendDays(tb testing.TB, st *histstore.Store, fromDay, n, blocks int) {
	tb.Helper()
	for d := fromDay; d < fromDay+n; d++ {
		if err := st.Append(campaignStart.AddDate(0, 0, d), dayRecords(d, blocks)); err != nil {
			tb.Fatalf("append day %d: %v", d, err)
		}
	}
}

// records round-trips tracers through their JSONL dump form, the shape
// obs.Stitch consumes.
func records(tb testing.TB, trs ...*telemetry.Tracer) []telemetry.SpanRecord {
	tb.Helper()
	var out []telemetry.SpanRecord
	for _, tr := range trs {
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			tb.Fatalf("dump spans: %v", err)
		}
		recs, err := telemetry.ReadSpans(&buf)
		if err != nil {
			tb.Fatalf("read spans: %v", err)
		}
		out = append(out, recs...)
	}
	return out
}

func lenientRules() obs.LoadRules {
	return obs.LoadRules{MaxErrorRate: 0, MaxShedRate: 0, MaxP95Seconds: -1, MaxP99Seconds: -1, MaxReplicaLagBytes: -1}
}

func TestRunUsageErrors(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	cases := []monConfig{
		{rounds: 1},
		{targets: []string{"http://a"}, metrics: []string{"http://m1", "http://m2"}, rounds: 1},
		{targets: []string{"http://a"}, rounds: 0},
	}
	for i, cfg := range cases {
		var out, errb bytes.Buffer
		if code := run(&cfg, &out, &errb); code != 2 {
			t.Errorf("case %d: exit %d, want 2 (stderr %q)", i, code, errb.String())
		}
	}
}

// TestMonitorUnreachable: a dead daemon becomes a failing sample, shows
// as unreachable on the dashboard, and trips the error-rate gate.
func TestMonitorUnreachable(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	dead := httptest.NewServer(nil)
	dead.Close()
	cfg := &monConfig{targets: []string{dead.URL}, rounds: 1, rules: lenientRules()}
	var out, errb bytes.Buffer
	if code := run(cfg, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "unreachable") || !strings.Contains(errb.String(), "unreachable") {
		t.Fatalf("missing unreachable marker\nstdout: %s\nstderr: %s", out.String(), errb.String())
	}
}

// TestMonitorMetricsColumn: with -metrics URLs the dashboard scrapes the
// Prometheus pages and reports a per-daemon series count.
func TestMonitorMetricsColumn(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	st, err := histstore.Open(filepath.Join(dir, "s"), histstore.WithCache(64))
	if err != nil {
		t.Fatal(err)
	}
	appendDays(t, st, 0, 2, 1)
	reg := telemetry.NewRegistry()
	srv := rdnsserve.New(st, rdnsserve.Config{Sink: reg, Seed: 1})
	defer srv.Close()
	api := httptest.NewServer(srv.Handler())
	defer api.Close()
	mx := httptest.NewServer(telemetry.NewExporter(reg).Handler())
	defer mx.Close()

	cfg := &monConfig{
		targets: []string{api.URL},
		metrics: []string{mx.URL + "/metrics"},
		rounds:  2, interval: time.Millisecond,
		rules: lenientRules(),
	}
	var out, errb bytes.Buffer
	if code := run(cfg, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "series") {
		t.Fatalf("missing series column:\n%s", out.String())
	}
}

// fleetResult is one seeded fleet scenario's observable outcome, compared
// across runs to prove replay determinism.
type fleetResult struct {
	clientCorrs []string // sorted correlation IDs of all traced client requests
	p99Corr     string   // the replica's /v1/stats p99 exemplar
	chain       string   // the stitched chain behind it, rendered
	qlogDigest  uint64   // the replica's canonical query-log digest
}

// runFleetScenario builds a seeded primary+replica fleet, drives traced
// traffic at the replica, proves the /v1/stats p99 exemplar resolves to
// a stitched client→daemon→replica-sync chain, and gates the fleet with
// rdnsmon (exit 0 in SLO, exit 1 under an injected breach).
func runFleetScenario(t *testing.T, seed int64) fleetResult {
	t.Helper()
	ctx := context.Background()
	dir := t.TempDir()

	pst, err := histstore.Open(filepath.Join(dir, "primary"), histstore.WithCache(256), histstore.WithBaseInterval(4))
	if err != nil {
		t.Fatal(err)
	}
	appendDays(t, pst, 0, 6, 2)
	psrv := rdnsserve.New(pst, rdnsserve.Config{Sink: telemetry.NewRegistry(), Seed: seed})
	defer psrv.Close()
	primary := httptest.NewServer(psrv.Handler())
	defer primary.Close()

	// The replica process: serving side and syncer share one tracer, the
	// Stitch contract for generation joining.
	rtracer := telemetry.NewTracer(seed+1, 4096)
	rdir := filepath.Join(dir, "replica")
	syncer, err := replica.New(replica.Config{
		Source: primary.URL, Dir: rdir,
		Tracer: rtracer, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if changed, err := syncer.Sync(ctx); err != nil || !changed {
		t.Fatalf("bootstrap sync: changed=%v err=%v", changed, err)
	}
	rst, err := histstore.Open(rdir, histstore.WithCache(256), histstore.WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	qlog := rdnsserve.NewQueryLog(rdnsserve.QueryLogConfig{Size: 256, SlowThreshold: 50 * time.Millisecond})
	rsrv := rdnsserve.New(rst, rdnsserve.Config{
		Sink: telemetry.NewRegistry(), Tracer: rtracer, Seed: seed + 1,
		QueryLog: qlog,
		Reopen: func() (*histstore.Store, error) {
			return histstore.Open(rdir, histstore.WithCache(256), histstore.WithReadOnly())
		},
	})
	defer rsrv.Close()
	rsrv.SetReplicaStatus(syncer.Status)
	repl := httptest.NewServer(rsrv.Handler())
	defer repl.Close()

	// Advance the primary and catch up: the second changed sync plus the
	// reload moves the replica to serving generation 1, the generation the
	// sync span stamped.
	appendDays(t, pst, 6, 2, 2)
	if changed, err := syncer.Sync(ctx); err != nil || !changed {
		t.Fatalf("catch-up sync: changed=%v err=%v", changed, err)
	}
	if resp, err := rsrv.Reload(); err != nil || resp.Generation != 1 {
		t.Fatalf("reload: %+v err=%v", resp, err)
	}

	// Traced client traffic against the replica: every request carries an
	// X-Rdns-Corr derived from the seed.
	ctracer := telemetry.NewTracer(seed+2, 4096)
	c := rdnsclient.New(repl.URL,
		rdnsclient.WithTrace(seed+2, ctracer),
		rdnsclient.WithAPIKey("e2e"))
	for d := 0; d < 8; d++ {
		day := campaignStart.AddDate(0, 0, d)
		for b := 0; b < 2; b++ {
			ip := dnswire.IPv4{10, 0, byte(b + 1), 10}
			if _, err := c.At(ctx, ip.String(), day); err != nil {
				t.Fatalf("at day %d block %d: %v", d, b, err)
			}
		}
	}
	if _, err := c.Days(ctx); err != nil {
		t.Fatal(err)
	}
	sr, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Generation != 1 {
		t.Fatalf("replica generation %d, want 1", sr.Generation)
	}
	if sr.Replica == nil || sr.Replica.BytesBehind != 0 {
		t.Fatalf("replica lag report: %+v", sr.Replica)
	}
	if sr.Latency.P99Corr == "" {
		t.Fatal("stats carries no p99 exemplar")
	}
	qlogDigest := qlog.Digest()

	// The exemplar must resolve, via its correlation ID, to a stitched
	// chain crossing all three layers: client span, daemon spans with the
	// serving generation, and the replication sync that delivered it.
	chains := obs.Stitch(records(t, ctracer, rtracer))
	var clientCorrs []string
	var p99Chain *obs.Chain
	for i, ch := range chains {
		if ch.Query != nil {
			clientCorrs = append(clientCorrs, fmt.Sprintf("%016x", ch.Corr))
		}
		if fmt.Sprintf("%016x", ch.Corr) == sr.Latency.P99Corr {
			p99Chain = &chains[i]
		}
	}
	sort.Strings(clientCorrs)
	if p99Chain == nil {
		t.Fatalf("p99 exemplar %s not among %d stitched chains", sr.Latency.P99Corr, len(chains))
	}
	if !p99Chain.QueryComplete() {
		t.Fatalf("p99 chain lacks client+daemon spans: %s", p99Chain.Render())
	}
	if !p99Chain.ReplicaServed() {
		t.Fatalf("p99 chain does not join the replica sync: %s", p99Chain.Render())
	}
	if g, ok := p99Chain.Generation(); !ok || g != 1 {
		t.Fatalf("p99 chain generation %d ok=%v, want 1", g, ok)
	}
	rendered := p99Chain.Render()
	if !strings.Contains(rendered, "sync via") {
		t.Fatalf("rendered chain misses the sync leg: %s", rendered)
	}

	// rdnsmon gates the fleet: green within SLO...
	cfg := &monConfig{
		targets: []string{primary.URL, repl.URL},
		rounds:  2, interval: 5 * time.Millisecond,
		rules: lenientRules(),
	}
	var out, errb bytes.Buffer
	if code := run(cfg, &out, &errb); code != 0 {
		t.Fatalf("in-SLO fleet: exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	for _, want := range []string{"fleet status", "qps by daemon", "p99 by round", "d0", "d1"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("dashboard misses %q:\n%s", want, out.String())
		}
	}
	// ...and exit 1 under an injected breach (an impossible p99 bound).
	breach := *cfg
	breach.rules.MaxP99Seconds = 1e-9
	out.Reset()
	errb.Reset()
	if code := run(&breach, &out, &errb); code != 1 {
		t.Fatalf("injected breach: exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}

	return fleetResult{
		clientCorrs: clientCorrs,
		p99Corr:     sr.Latency.P99Corr,
		chain:       rendered,
		qlogDigest:  qlogDigest,
	}
}

// TestMonitorE2E is the fleet acceptance scenario: exemplar→chain
// resolution, rdnsmon verdicts, and replay determinism — the same seed
// reproduces the same correlation IDs and the same query-log digest.
func TestMonitorE2E(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	r1 := runFleetScenario(t, 7)
	r2 := runFleetScenario(t, 7)
	if r1.qlogDigest != r2.qlogDigest {
		t.Fatalf("query-log digest not replay-deterministic: %016x vs %016x", r1.qlogDigest, r2.qlogDigest)
	}
	if strings.Join(r1.clientCorrs, ",") != strings.Join(r2.clientCorrs, ",") {
		t.Fatalf("client correlation IDs differ between replays:\n%v\n%v", r1.clientCorrs, r2.clientCorrs)
	}
	// The p99 exemplar (whichever request was slowest — timing-dependent)
	// must always be one of the deterministic traced correlations.
	found := false
	for _, corr := range r1.clientCorrs {
		if corr == r1.p99Corr {
			found = true
		}
	}
	if !found {
		t.Fatalf("p99 exemplar %s is not a traced client correlation", r1.p99Corr)
	}
}
