// Command rdnsmon is the fleet monitor: it polls N rdnsd daemons'
// /v1/stats (and optionally their Prometheus metrics listeners), renders
// a textplot dashboard — per-daemon qps, latency quantiles with p99
// exemplar correlation IDs, error and shed rates, replica lag,
// compaction/tier state — and judges the fleet against the same
// declarative SLO rules cmd/rdnsload uses (internal/obs.LoadRules).
//
//	rdnsmon -targets http://primary:8077,http://replica:8078 -rounds 5 -interval 2s
//	rdnsmon -targets http://primary:8077 -metrics http://primary:9090/metrics
//	rdnsmon -targets ... -slo-p99 0.5 -slo-max-lag-bytes 1048576 && deploy-next-canary
//
// Counters are polled over a window (-rounds × -interval) so cumulative
// totals become rates; latency quantiles and exemplars are each daemon's
// own histograms as of the last round. The exit code makes it a
// scriptable health gate for multi-daemon scenarios: 0 within SLO, 1 on
// a breach or an unreachable daemon, 2 on a usage error.
package main

import (
	"flag"
	"os"
	"strings"
	"time"
)

func main() {
	var cfg monConfig
	var targets, metrics string
	flag.StringVar(&targets, "targets", "", "comma-separated daemon API base URLs to monitor")
	flag.StringVar(&metrics, "metrics", "", "optional comma-separated Prometheus text URLs, one per target")
	flag.IntVar(&cfg.rounds, "rounds", 3, "poll rounds (deltas between first and last become rates)")
	flag.DurationVar(&cfg.interval, "interval", 2*time.Second, "delay between poll rounds")
	flag.Float64Var(&cfg.rules.MaxErrorRate, "slo-max-error-rate", 0, "SLO: max hard-error rate over the window (0 = none allowed)")
	flag.Float64Var(&cfg.rules.MaxShedRate, "slo-max-shed-rate", 0.01, "SLO: max 429+503 pushback rate over the window")
	flag.Float64Var(&cfg.rules.MaxP95Seconds, "slo-p95", 1.0, "SLO: max p95 latency in seconds (negative disables)")
	flag.Float64Var(&cfg.rules.MaxP99Seconds, "slo-p99", 2.5, "SLO: max p99 latency in seconds (negative disables)")
	flag.Int64Var(&cfg.rules.MaxReplicaLagBytes, "slo-max-lag-bytes", 0, "SLO: max replica lag in feed bytes (negative = must be caught up, 0 disables)")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit the samples and report as JSON instead of the dashboard")
	flag.Parse()

	cfg.targets = splitList(targets)
	cfg.metrics = splitList(metrics)
	os.Exit(run(&cfg, os.Stdout, os.Stderr))
}

// splitList parses a comma-separated flag into trimmed non-empty items.
func splitList(spec string) []string {
	var out []string
	for _, s := range strings.Split(spec, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, strings.TrimRight(s, "/"))
		}
	}
	return out
}
