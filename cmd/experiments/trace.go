package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"rdnsprivacy/internal/obs"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
)

// runTraceSummary reads a span log written by `rdnsscan -trace-out` (or any
// telemetry.Tracer JSONL dump) and prints a post-hoc sweep analysis: per-shard
// probe outcome mix, breaker activity, and the slowest shards.
func runTraceSummary(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spans, err := telemetry.ReadSpans(f)
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		fmt.Fprintln(w, "trace: no spans")
		return nil
	}

	type shardRow struct {
		rec      telemetry.SpanRecord
		duration time.Duration
	}
	var (
		rows        []shardRow
		events      int
		dropped     int
		probeCounts = map[uint64]int{}
		breakerEvs  = map[uint64]int{}
		otherKinds  = map[string]int{}
	)
	for _, s := range spans {
		rows = append(rows, shardRow{rec: s, duration: s.End.Sub(s.Start)})
		events += len(s.Events)
		dropped += s.Dropped
		for _, ev := range s.Events {
			switch ev.Kind {
			case "probe":
				probeCounts[ev.Code]++
			case "breaker":
				breakerEvs[ev.Code]++
			default:
				otherKinds[ev.Kind]++
			}
		}
	}

	fmt.Fprintf(w, "trace: %d spans, %d events (%d dropped past the per-span cap)\n",
		len(spans), events, dropped)
	if n := probeCounts[scanengine.TraceProbeAbsent] + probeCounts[scanengine.TraceProbeFound] +
		probeCounts[scanengine.TraceProbeError] + probeCounts[scanengine.TraceProbeCached]; n > 0 {
		fmt.Fprintf(w, "probes: %d total — %d found, %d absent, %d errors, %d cached\n",
			n,
			probeCounts[scanengine.TraceProbeFound],
			probeCounts[scanengine.TraceProbeAbsent],
			probeCounts[scanengine.TraceProbeError],
			probeCounts[scanengine.TraceProbeCached])
	}
	if len(breakerEvs) > 0 {
		fmt.Fprint(w, "breaker transitions:")
		for code := uint64(0); code <= uint64(scanengine.BreakerHalfOpen); code++ {
			if c, ok := breakerEvs[code]; ok {
				fmt.Fprintf(w, " %d→%s", c, scanengine.BreakerState(code))
			}
		}
		fmt.Fprintln(w)
	}
	for kind, c := range otherKinds {
		fmt.Fprintf(w, "events[%s]: %d\n", kind, c)
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].duration > rows[j].duration })
	fmt.Fprintln(w, "slowest spans:")
	for i, r := range rows {
		if i == 5 {
			break
		}
		fmt.Fprintf(w, "  %-8s %-18s %8.1fms  %d events\n",
			r.rec.Name, r.rec.Attr, float64(r.duration.Microseconds())/1000, len(r.rec.Events))
	}
	printChains(w, spans)
	return nil
}

// printChains stitches the log's correlated spans (see the correlation-ID
// contract in docs/observability.md) into per-probe causal chains and
// renders a sample, longest chains first.
func printChains(w io.Writer, spans []telemetry.SpanRecord) {
	chains := obs.Stitch(spans)
	if len(chains) == 0 {
		return
	}
	complete := 0
	for _, c := range chains {
		if c.Complete() {
			complete++
		}
	}
	fmt.Fprintf(w, "causal chains: %d correlated (%d complete client→fabric→server)\n",
		len(chains), complete)
	sort.SliceStable(chains, func(i, j int) bool {
		li := len(chains[i].Hops) + len(chains[i].Other)
		lj := len(chains[j].Hops) + len(chains[j].Other)
		return li > lj
	})
	for i, c := range chains {
		if i == 10 {
			fmt.Fprintf(w, "  ... %d more\n", len(chains)-i)
			break
		}
		fmt.Fprintf(w, "  %s\n", c.Render())
	}
}

// runObsSummary reads a campaign frame dump written by `rdnsscan -obs-out`
// or `experiments -obs-out` and prints the campaign's health verdict: the
// default SLO rules with error-budget accounting plus seeded anomaly
// detection over the counter deltas.
func runObsSummary(path string, seed int64, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	frames, err := obs.ReadFrames(f)
	if err != nil {
		return err
	}
	if len(frames) == 0 {
		fmt.Fprintln(w, "obs: no frames")
		return nil
	}
	digest, err := obs.FramesDigest(frames)
	if err != nil {
		return err
	}
	first, last := frames[0], frames[len(frames)-1]
	fmt.Fprintf(w, "obs: %d frames (%s .. %s), digest %s\n",
		len(frames),
		first.Date.Format("2006-01-02"), last.Date.Format("2006-01-02"),
		obs.Hex16(digest))

	var probes, errors uint64
	churn := 0
	for _, fr := range frames {
		probes += fr.Probes
		errors += fr.Errors
		churn += fr.Churn()
	}
	fmt.Fprintf(w, "campaign: %d probes, %d errors, %d record changes\n", probes, errors, churn)

	fmt.Fprint(w, "slo: ", obs.DefaultRules().Evaluate(frames).Summary())

	anomalies := obs.Detector{Seed: seed}.Detect(frames)
	if len(anomalies) == 0 {
		fmt.Fprintln(w, "anomalies: none")
		return nil
	}
	fmt.Fprintf(w, "anomalies: %d flagged\n", len(anomalies))
	for _, a := range anomalies {
		fmt.Fprintf(w, "  frame %d: %s delta %d (%s %.1f)\n", a.Index, a.Metric, a.Delta, a.Kind, a.Score)
	}
	return nil
}
