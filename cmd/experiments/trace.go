package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
)

// runTraceSummary reads a span log written by `rdnsscan -trace-out` (or any
// telemetry.Tracer JSONL dump) and prints a post-hoc sweep analysis: per-shard
// probe outcome mix, breaker activity, and the slowest shards.
func runTraceSummary(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spans, err := telemetry.ReadSpans(f)
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		fmt.Fprintln(w, "trace: no spans")
		return nil
	}

	type shardRow struct {
		rec      telemetry.SpanRecord
		duration time.Duration
	}
	var (
		rows        []shardRow
		events      int
		dropped     int
		probeCounts = map[uint64]int{}
		breakerEvs  = map[uint64]int{}
		otherKinds  = map[string]int{}
	)
	for _, s := range spans {
		rows = append(rows, shardRow{rec: s, duration: s.End.Sub(s.Start)})
		events += len(s.Events)
		dropped += s.Dropped
		for _, ev := range s.Events {
			switch ev.Kind {
			case "probe":
				probeCounts[ev.Code]++
			case "breaker":
				breakerEvs[ev.Code]++
			default:
				otherKinds[ev.Kind]++
			}
		}
	}

	fmt.Fprintf(w, "trace: %d spans, %d events (%d dropped past the per-span cap)\n",
		len(spans), events, dropped)
	if n := probeCounts[scanengine.TraceProbeAbsent] + probeCounts[scanengine.TraceProbeFound] +
		probeCounts[scanengine.TraceProbeError] + probeCounts[scanengine.TraceProbeCached]; n > 0 {
		fmt.Fprintf(w, "probes: %d total — %d found, %d absent, %d errors, %d cached\n",
			n,
			probeCounts[scanengine.TraceProbeFound],
			probeCounts[scanengine.TraceProbeAbsent],
			probeCounts[scanengine.TraceProbeError],
			probeCounts[scanengine.TraceProbeCached])
	}
	if len(breakerEvs) > 0 {
		fmt.Fprint(w, "breaker transitions:")
		for code := uint64(0); code <= uint64(scanengine.BreakerHalfOpen); code++ {
			if c, ok := breakerEvs[code]; ok {
				fmt.Fprintf(w, " %d→%s", c, scanengine.BreakerState(code))
			}
		}
		fmt.Fprintln(w)
	}
	for kind, c := range otherKinds {
		fmt.Fprintf(w, "events[%s]: %d\n", kind, c)
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].duration > rows[j].duration })
	fmt.Fprintln(w, "slowest spans:")
	for i, r := range rows {
		if i == 5 {
			break
		}
		fmt.Fprintf(w, "  %-8s %-18s %8.1fms  %d events\n",
			r.rec.Name, r.rec.Attr, float64(r.duration.Microseconds())/1000, len(r.rec.Events))
	}
	return nil
}
