package main

import "testing"

func TestConfigForScale(t *testing.T) {
	for _, scale := range []string{"tiny", "small", "full"} {
		cfg, err := configForScale(scale, 7)
		if err != nil {
			t.Fatalf("%s: %v", scale, err)
		}
		if cfg.Seed != 7 {
			t.Fatalf("%s: seed = %d", scale, cfg.Seed)
		}
	}
	tiny, _ := configForScale("tiny", 1)
	small, _ := configForScale("small", 1)
	if tiny.Universe.FillerSlash24s >= small.Universe.FillerSlash24s {
		t.Fatal("tiny not smaller than small")
	}
	if _, err := configForScale("galactic", 1); err == nil {
		t.Fatal("unknown scale accepted")
	}
}
