package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rdnsprivacy/internal/core"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/obs"
	"rdnsprivacy/internal/privleak"
	"rdnsprivacy/internal/telemetry"
)

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// TestTraceSummaryStitchesChains runs a micro supplemental measurement
// with the study tracer attached, dumps its span log the way
// `experiments -trace-out` does, and checks the -trace summary stitches
// complete client→fabric→server chains out of it.
func TestTraceSummaryStitchesChains(t *testing.T) {
	tracer := telemetry.NewTracer(9, 0)
	cfg := core.Config{
		Seed: 9,
		Universe: netsim.UniverseConfig{
			FillerSlash24s:        120,
			LeakyNetworks:         10,
			NonLeakyDynamic:       1,
			PeoplePerDynamicBlock: 6,
		},
		LeakThresholds:    privleak.Config{MinUniqueNames: 4, MinRatio: 0.01},
		SupplementalStart: date(2021, time.November, 22),
		SupplementalEnd:   date(2021, time.November, 24),
		Tracer:            tracer,
	}
	study, err := core.NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	study.Supplemental()
	if tracer.Len() == 0 {
		t.Fatal("supplemental run emitted no spans")
	}

	path := filepath.Join(t.TempDir(), "spans.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out bytes.Buffer
	if err := runTraceSummary(path, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "causal chains:") {
		t.Fatalf("summary lacks chain section:\n%s", got)
	}
	if strings.Contains(got, "(0 complete") {
		t.Fatalf("no complete client→fabric→server chain stitched:\n%s", got)
	}
	if !strings.Contains(got, "attempt#") || !strings.Contains(got, "hop ") ||
		!strings.Contains(got, "server ") {
		t.Fatalf("rendered chains missing layers:\n%s", got)
	}
}

func TestObsSummary(t *testing.T) {
	frames := []obs.Frame{
		{Index: 0, Date: date(2021, time.January, 4), Probes: 1000, Found: 900,
			Deltas: map[string]uint64{"scan_probes_total": 1000}},
		{Index: 1, Date: date(2021, time.January, 5), Probes: 900, Skipped: 100,
			Errors: 90, BreakerOpens: 2,
			Deltas: map[string]uint64{"scan_probes_total": 900}},
	}
	path := filepath.Join(t.TempDir(), "frames.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteFrames(f, frames); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out bytes.Buffer
	if err := runObsSummary(path, 42, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"obs: 2 frames (2021-01-04 .. 2021-01-05)",
		"campaign: 1900 probes, 90 errors",
		"frame 1: error_rate",
		"EXCEEDS",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("summary missing %q:\n%s", want, got)
		}
	}

	// Empty and missing dumps are handled gracefully.
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runObsSummary(empty, 42, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no frames") {
		t.Fatalf("empty dump summary = %q", out.String())
	}
	if err := runObsSummary(filepath.Join(t.TempDir(), "nope.jsonl"), 42, &out); err == nil {
		t.Fatal("missing file accepted")
	}
}
