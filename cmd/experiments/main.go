// Command experiments regenerates every table and figure of the paper's
// evaluation against the simulated universe.
//
// Usage:
//
//	experiments [-scale tiny|small|full] [-seed N] [-exp all|table1|fig1|...]
//
// The default small scale runs the full pipeline in well under a minute;
// -scale full builds the 1/100-scale universe documented in DESIGN.md
// (60,000 filler /24s, 197 leaking networks) and takes several minutes,
// dominated by the whole-universe daily campaign behind Table 1.
//
// With -trace it instead summarizes a sweep span log written by
// `rdnsscan -trace-out` (probe outcome mix, breaker transitions, slowest
// shards; see docs/telemetry.md for the schema):
//
//	experiments -trace sweep.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rdnsprivacy/internal/core"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/privleak"
)

func main() {
	scale := flag.String("scale", "small", "universe scale: tiny, small, or full")
	seed := flag.Uint64("seed", 42, "simulation seed")
	exp := flag.String("exp", "all", "experiment to run: all, or one of "+
		strings.Join(core.ExperimentIDs(), ", "))
	trace := flag.String("trace", "", "summarize a span log written by `rdnsscan -trace-out` instead of running experiments")
	flag.Parse()

	if *trace != "" {
		if err := runTraceSummary(*trace, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	cfg, err := configForScale(*scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("Building %s-scale universe (seed %d)...\n", *scale, *seed)
	study, err := core.NewStudy(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("Universe: %d networks, %d filler /24s\n\n",
		len(study.Universe.Networks), len(study.Universe.Filler))

	if *exp == "all" {
		if err := study.RunAll(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	r, err := study.RunExperiment(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r.Render(os.Stdout)
}

// configForScale maps a scale name to a study configuration.
func configForScale(scale string, seed uint64) (core.Config, error) {
	cfg := core.Config{Seed: seed}
	switch scale {
	case "tiny":
		cfg.Universe = netsim.UniverseConfig{
			FillerSlash24s:        600,
			LeakyNetworks:         12,
			NonLeakyDynamic:       3,
			PeoplePerDynamicBlock: 16,
		}
		cfg.LeakThresholds = privleak.Config{MinUniqueNames: 8, MinRatio: 0.02}
	case "small":
		cfg.Universe = netsim.UniverseConfig{
			FillerSlash24s:        6000,
			LeakyNetworks:         60,
			NonLeakyDynamic:       16,
			PeoplePerDynamicBlock: 30,
		}
		cfg.LeakThresholds = privleak.Config{MinUniqueNames: 12, MinRatio: 0.02}
	case "full":
		// Defaults: the 1/100-scale universe.
	default:
		return cfg, fmt.Errorf("unknown scale %q (tiny, small, full)", scale)
	}
	return cfg, nil
}
