// Command experiments regenerates every table and figure of the paper's
// evaluation against the simulated universe.
//
// Usage:
//
//	experiments [-scale tiny|small|full] [-seed N] [-exp all|table1|fig1|...]
//
// The default small scale runs the full pipeline in well under a minute;
// -scale full builds the 1/100-scale universe documented in DESIGN.md
// (60,000 filler /24s, 197 leaking networks) and takes several minutes,
// dominated by the whole-universe daily campaign behind Table 1.
//
// With -trace it instead summarizes a sweep span log written by
// `rdnsscan -trace-out` or `experiments -trace-out` (probe outcome mix,
// breaker transitions, slowest shards, and — when the log carries
// correlated spans — the stitched client→fabric→server causal chains; see
// docs/telemetry.md and docs/observability.md):
//
//	experiments -trace sweep.jsonl
//
// With -obs it summarizes a campaign frame dump written by
// `rdnsscan -obs-out` or `experiments -obs-out`: per-frame SLO verdicts
// under the default rules, error-budget accounting, and anomaly flags
// (see docs/observability.md):
//
//	experiments -obs frames.jsonl
//
// While experiments run, -metrics-addr serves the study's live telemetry
// over HTTP (/metrics, /debug/vars, /debug/pprof/, /trace), -trace-out
// writes the correlated span log of the supplemental run, and -obs-out
// writes one observability frame per campaign snapshot:
//
//	experiments -scale tiny -metrics-addr 127.0.0.1:9090 -trace-out spans.jsonl -obs-out frames.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rdnsprivacy/internal/core"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/obs"
	"rdnsprivacy/internal/privleak"
	"rdnsprivacy/internal/telemetry"
)

func main() {
	scale := flag.String("scale", "small", "universe scale: tiny, small, or full")
	seed := flag.Uint64("seed", 42, "simulation seed")
	exp := flag.String("exp", "all", "experiment to run: all, or one of "+
		strings.Join(core.ExperimentIDs(), ", "))
	trace := flag.String("trace", "", "summarize a span log written by `rdnsscan -trace-out` or `experiments -trace-out` instead of running experiments")
	obsIn := flag.String("obs", "", "summarize a campaign frame dump written by `rdnsscan -obs-out` or `experiments -obs-out` instead of running experiments")
	metricsAddr := flag.String("metrics-addr", "", "serve the study's telemetry over HTTP on this address while experiments run (see docs/telemetry.md)")
	traceOut := flag.String("trace-out", "", "write the supplemental run's correlated span log to this file as JSONL")
	obsOut := flag.String("obs-out", "", "write one observability frame per campaign snapshot to this file as JSONL")
	flag.Parse()

	if *trace != "" {
		if err := runTraceSummary(*trace, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *obsIn != "" {
		if err := runObsSummary(*obsIn, int64(*seed), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	cfg, err := configForScale(*scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var tracer *telemetry.Tracer
	var recorder *obs.Recorder
	if *metricsAddr != "" || *traceOut != "" || *obsOut != "" {
		reg := telemetry.NewRegistry()
		cfg.Telemetry = reg
		if *traceOut != "" || *metricsAddr != "" {
			tracer = telemetry.NewTracer(int64(*seed), 0)
			cfg.Tracer = tracer
		}
		if *obsOut != "" {
			recorder = obs.NewRecorder(reg)
			cfg.Observer = recorder
		}
		if *metricsAddr != "" {
			exporter := telemetry.NewExporter(reg, telemetry.WithExporterTracer(tracer))
			addr, err := exporter.Start(*metricsAddr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "metrics endpoint: %v\n", err)
				os.Exit(1)
			}
			defer exporter.Close()
			fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics\n", addr)
		}
	}

	fmt.Printf("Building %s-scale universe (seed %d)...\n", *scale, *seed)
	study, err := core.NewStudy(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("Universe: %d networks, %d filler /24s\n\n",
		len(study.Universe.Networks), len(study.Universe.Filler))

	if *exp == "all" {
		err = study.RunAll(os.Stdout)
	} else {
		var r core.Renderer
		r, err = study.RunExperiment(*exp)
		if err == nil {
			r.Render(os.Stdout)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dumpSpans(tracer, *traceOut)
	dumpFrames(recorder, *obsOut)
}

// dumpSpans writes the study tracer's span log as JSONL — the input of
// `experiments -trace`.
func dumpSpans(tracer *telemetry.Tracer, path string) {
	if tracer == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		return
	}
	defer f.Close()
	if err := tracer.WriteJSONL(f); err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "trace: wrote %d spans to %s\n", tracer.Len(), path)
}

// dumpFrames writes the captured campaign frames as JSONL — the input of
// `experiments -obs`.
func dumpFrames(rec *obs.Recorder, path string) {
	if rec == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obs: %v\n", err)
		return
	}
	defer f.Close()
	if err := rec.Store().WriteJSONL(f); err != nil {
		fmt.Fprintf(os.Stderr, "obs: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "obs: wrote %d frames to %s\n", rec.Store().Len(), path)
}

// configForScale maps a scale name to a study configuration.
func configForScale(scale string, seed uint64) (core.Config, error) {
	cfg := core.Config{Seed: seed}
	switch scale {
	case "tiny":
		cfg.Universe = netsim.UniverseConfig{
			FillerSlash24s:        600,
			LeakyNetworks:         12,
			NonLeakyDynamic:       3,
			PeoplePerDynamicBlock: 16,
		}
		cfg.LeakThresholds = privleak.Config{MinUniqueNames: 8, MinRatio: 0.02}
	case "small":
		cfg.Universe = netsim.UniverseConfig{
			FillerSlash24s:        6000,
			LeakyNetworks:         60,
			NonLeakyDynamic:       16,
			PeoplePerDynamicBlock: 30,
		}
		cfg.LeakThresholds = privleak.Config{MinUniqueNames: 12, MinRatio: 0.02}
	case "full":
		// Defaults: the 1/100-scale universe.
	default:
		return cfg, fmt.Errorf("unknown scale %q (tiny, small, full)", scale)
	}
	return cfg, nil
}
