// Command leakfind runs the Section 5 privacy-leak identification over a
// CSV of reverse-DNS observations (date,ip,ptr): it excludes router-level
// records, matches given names, aggregates per hostname suffix, applies the
// unique-name and ratio thresholds, and prints the identified networks with
// their type breakdown.
//
//	leakfind -input observations.csv [-dynamic dynprefixes.txt] \
//	         [-min-names 18] [-min-ratio 0.03]
//
// With -store it reads a longitudinal history store (the append-only log
// cmd/rdnsd serves; see docs/storage.md) instead of a CSV, replaying every
// stored observation through the same analyzer:
//
//	leakfind -store campaign.hist [-dynamic dynprefixes.txt]
//
// The optional -dynamic file lists one /24 per line (the output of
// cmd/dynfind); without it, every observation is treated as dynamic, which
// matches running the tool on data already restricted to dynamic space.
//
// The CSV path streams: rows are observed as they are parsed, so memory
// stays constant in the input size (minus the per-record dedup set).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/names"
	"rdnsprivacy/internal/privleak"
)

func main() {
	input := flag.String("input", "", "CSV of date,ip,ptr observations")
	storePath := flag.String("store", "", "longitudinal history store to read instead of -input (see docs/storage.md)")
	dynFile := flag.String("dynamic", "", "file listing dynamic /24 prefixes (one per line)")
	minNames := flag.Int("min-names", 18, "minimum unique given names per suffix")
	minRatio := flag.Float64("min-ratio", 0.03, "minimum unique-names/records ratio")
	flag.Parse()

	if (*input == "") == (*storePath == "") {
		fmt.Fprintln(os.Stderr, "need exactly one of -input or -store")
		flag.Usage()
		os.Exit(2)
	}

	var dynSet map[dnswire.Prefix]bool
	if *dynFile != "" {
		var err error
		dynSet, err = readPrefixes(*dynFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	a := privleak.NewAnalyzer(privleak.Config{
		MinUniqueNames: *minNames,
		MinRatio:       *minRatio,
		GivenNames:     names.Top50,
	})
	seen := map[string]bool{}
	observe := func(r dataset.Row) error {
		key := r.IP.String() + "|" + string(r.PTR)
		if seen[key] {
			return nil
		}
		seen[key] = true
		dynamic := dynSet == nil || dynSet[r.IP.Slash24()]
		a.Observe(privleak.RecordObservation{IP: r.IP, HostName: r.PTR, Dynamic: dynamic})
		return nil
	}

	var err error
	if *storePath != "" {
		err = observeStore(*storePath, observe)
	} else {
		err = observeCSV(*input, observe)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res := a.Finish()

	fmt.Printf("identified %d leaking networks (of %d suffixes with name matches)\n\n",
		len(res.Identified), len(res.Suffixes))
	fmt.Println("suffix,type,records,unique_names,ratio")
	for _, s := range res.Identified {
		fmt.Printf("%s,%s,%d,%d,%.3f\n", s.Suffix, s.Type, s.Records, s.UniqueNames, s.Ratio())
	}
	fmt.Println()
	byType := res.TypeBreakdown()
	fmt.Println("type breakdown:")
	for t, c := range byType {
		fmt.Printf("  %-12s %d\n", t, c)
	}
}

// observeCSV streams the date,ip,ptr CSV through fn without materializing
// the row slice.
func observeCSV(path string, fn func(dataset.Row) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return dataset.ScanRows(f, fn)
}

// observeStore replays every observation of a history store through fn,
// in date-then-address order (the same stream a full-history Range
// query serves).
func observeStore(path string, fn func(dataset.Row) error) error {
	st, err := histstore.Open(path, histstore.WithReadOnly())
	if err != nil {
		return err
	}
	defer st.Close()
	times := st.Times()
	if len(times) == 0 {
		return nil
	}
	rows, err := st.Range(dnswire.Prefix{}, times[0], times[len(times)-1])
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

func readPrefixes(path string) (map[dnswire.Prefix]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[dnswire.Prefix]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Accept the dynfind CSV shape too (prefix,max,days).
		if i := strings.IndexByte(line, ','); i > 0 {
			line = line[:i]
		}
		if line == "prefix" {
			continue
		}
		p, err := dnswire.ParsePrefix(line)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", line, err)
		}
		out[p] = true
	}
	return out, sc.Err()
}
