// Command leakfind runs the Section 5 privacy-leak identification over a
// CSV of reverse-DNS observations (date,ip,ptr): it excludes router-level
// records, matches given names, aggregates per hostname suffix, applies the
// unique-name and ratio thresholds, and prints the identified networks with
// their type breakdown.
//
//	leakfind -input observations.csv [-dynamic dynprefixes.txt] \
//	         [-min-names 18] [-min-ratio 0.03]
//
// The optional -dynamic file lists one /24 per line (the output of
// cmd/dynfind); without it, every observation is treated as dynamic, which
// matches running the tool on data already restricted to dynamic space.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/names"
	"rdnsprivacy/internal/privleak"
)

func main() {
	input := flag.String("input", "", "CSV of date,ip,ptr observations")
	dynFile := flag.String("dynamic", "", "file listing dynamic /24 prefixes (one per line)")
	minNames := flag.Int("min-names", 18, "minimum unique given names per suffix")
	minRatio := flag.Float64("min-ratio", 0.03, "minimum unique-names/records ratio")
	flag.Parse()

	if *input == "" {
		fmt.Fprintln(os.Stderr, "need -input")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*input)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	rows, err := dataset.ReadRows(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var dynSet map[dnswire.Prefix]bool
	if *dynFile != "" {
		dynSet, err = readPrefixes(*dynFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	a := privleak.NewAnalyzer(privleak.Config{
		MinUniqueNames: *minNames,
		MinRatio:       *minRatio,
		GivenNames:     names.Top50,
	})
	seen := map[string]bool{}
	for _, r := range rows {
		key := r.IP.String() + "|" + string(r.PTR)
		if seen[key] {
			continue
		}
		seen[key] = true
		dynamic := dynSet == nil || dynSet[r.IP.Slash24()]
		a.Observe(privleak.RecordObservation{IP: r.IP, HostName: r.PTR, Dynamic: dynamic})
	}
	res := a.Finish()

	fmt.Printf("identified %d leaking networks (of %d suffixes with name matches)\n\n",
		len(res.Identified), len(res.Suffixes))
	fmt.Println("suffix,type,records,unique_names,ratio")
	for _, s := range res.Identified {
		fmt.Printf("%s,%s,%d,%d,%.3f\n", s.Suffix, s.Type, s.Records, s.UniqueNames, s.Ratio())
	}
	fmt.Println()
	byType := res.TypeBreakdown()
	fmt.Println("type breakdown:")
	for t, c := range byType {
		fmt.Printf("  %-12s %d\n", t, c)
	}
}

func readPrefixes(path string) (map[dnswire.Prefix]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[dnswire.Prefix]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Accept the dynfind CSV shape too (prefix,max,days).
		if i := strings.IndexByte(line, ','); i > 0 {
			line = line[:i]
		}
		if line == "prefix" {
			continue
		}
		p, err := dnswire.ParsePrefix(line)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", line, err)
		}
		out[p] = true
	}
	return out, sc.Err()
}
