package main

import (
	"os"
	"path/filepath"
	"testing"

	"rdnsprivacy/internal/dnswire"
)

func TestReadPrefixes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dyn.txt")
	content := `# comment
prefix,max_daily,change_days
10.0.1.0/24,120,14
10.0.2.0/24
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readPrefixes(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("prefixes = %v", got)
	}
	for _, want := range []string{"10.0.1.0/24", "10.0.2.0/24"} {
		if !got[dnswire.MustPrefix(want)] {
			t.Fatalf("missing %s in %v", want, got)
		}
	}
}

func TestReadPrefixesRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(path, []byte("not-a-prefix\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readPrefixes(path); err == nil {
		t.Fatal("garbage prefix accepted")
	}
}
