// Command rdnsvantage runs a seeded multi-vantage scan campaign over a
// simulated universe and renders the disagreement dashboard: N named
// vantage points sweep the same address space concurrently — each
// through its own fault profile, each appending to a shared history
// store under its own writer id — and the analyzer classifies where
// their views diverge and how well each PTR change is corroborated
// across them (see docs/campaigns.md).
//
// The default fleet is the canonical three: alpha measures cleanly,
// bravo loses a slice of its queries (-loss, -servfail; one scan-level
// retry), charlie serves -lag of its answers from a view -lag-days old.
//
//	rdnsvantage -seed 42 -days 10
//	rdnsvantage -seed 42 -days 10 -loss 0.2 -lag 0.5
//	rdnsvantage -days 30 -store campaign.hist   # keep the store for rdnsd
//	rdnsvantage -json | jq .totals
//
// With -min-corroboration the campaign is held to the obs SLO rule: any
// day whose mean cross-vantage corroboration falls below the floor is a
// violation, and the process exits 1 when the error budget burns —
// wired for CI gates on measurement trustworthiness:
//
//	rdnsvantage -seed 42 -days 10 -min-corroboration 0.9 -budget 0.1
//
// Everything is deterministic: the same flags reproduce the same store,
// report, digest, and verdicts bit-for-bit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/faultsim"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/obs"
	"rdnsprivacy/internal/scan"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
	"rdnsprivacy/internal/vantage"
)

func main() {
	seed := flag.Int64("seed", 42, "universe and vantage seed; same seed, same campaign")
	days := flag.Int("days", 10, "campaign length in days")
	loss := flag.Float64("loss", 0.05, "bravo's per-query loss rate")
	servfail := flag.Float64("servfail", 0.02, "bravo's per-query SERVFAIL rate")
	retries := flag.Int("retries", 2, "bravo's total lookups per address (retries re-roll faults)")
	lagRate := flag.Float64("lag", 0.3, "fraction of charlie's answers served from a stale view")
	lagDays := flag.Int("lag-days", 1, "how stale charlie's lagged answers are, in days")
	lagWindow := flag.Int("lag-window", 1, "analyzer agreement window in snapshots")
	filler := flag.Int("filler", 30, "filler /24s in the simulated universe")
	workers := flag.Int("workers", 4, "snapshot engine workers per vantage")
	storeDir := flag.String("store", "", "shared history store directory (default: a temp dir, removed on exit); serve a kept store with rdnsd")
	compactEvery := flag.Int("compact-every", 4, "seal each vantage's tail every N appends (0 = never)")
	minCorro := flag.Float64("min-corroboration", 0, "SLO floor for each day's mean corroboration (0 = rule off)")
	budget := flag.Float64("budget", 0, "fraction of days allowed to violate the SLO")
	jsonOut := flag.Bool("json", false, "print the report as JSON instead of the dashboard")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, campaignFlags{
		seed: *seed, days: *days, loss: *loss, servfail: *servfail,
		retries: *retries, lagRate: *lagRate, lagDays: *lagDays,
		lagWindow: *lagWindow, filler: *filler, workers: *workers,
		storeDir: *storeDir, compactEvery: *compactEvery,
		minCorro: *minCorro, budget: *budget, jsonOut: *jsonOut,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "rdnsvantage:", err)
		os.Exit(1)
	}
}

type campaignFlags struct {
	seed                       int64
	days, retries, lagDays     int
	lagWindow, filler, workers int
	compactEvery               int
	loss, servfail, lagRate    float64
	minCorro, budget           float64
	storeDir                   string
	jsonOut                    bool
}

func run(ctx context.Context, f campaignFlags) error {
	if f.days < 1 {
		return fmt.Errorf("-days must be at least 1")
	}
	u, err := netsim.BuildStudyUniverse(netsim.UniverseConfig{
		Seed:                  uint64(f.seed),
		FillerSlash24s:        f.filler,
		LeakyNetworks:         4,
		NonLeakyDynamic:       1,
		PeoplePerDynamicBlock: 6,
	})
	if err != nil {
		return err
	}
	dir := f.storeDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "rdnsvantage-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	reg := telemetry.NewRegistry()
	rec := obs.NewRecorder(reg)
	start := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	res, err := vantage.Run(ctx, vantage.Campaign{
		Universe: u,
		Start:    start,
		End:      start.AddDate(0, 0, f.days-1),
		Cadence:  scan.Daily,
		Workers:  f.workers,
		Vantages: []vantage.Vantage{
			{Name: "alpha", Seed: f.seed + 1},
			{
				Name: "bravo", Seed: f.seed + 2,
				Faults: []faultsim.Profile{{
					Prefix: dnswire.Prefix{}, // everywhere
					Loss:   f.loss, ServFailRate: f.servfail,
				}},
				Resilience: &scanengine.ResilienceConfig{
					Retry: scanengine.RetryPolicy{MaxAttempts: f.retries},
				},
			},
			{Name: "charlie", Seed: f.seed + 3, LagRate: f.lagRate, LagDays: f.lagDays},
		},
		StoreDir:     dir,
		CompactEvery: f.compactEvery,
		LagWindow:    f.lagWindow,
		Telemetry:    reg,
		Observer:     rec,
	})
	if err != nil {
		return err
	}
	for _, vr := range res.Vantages {
		if vr.Err != nil {
			return fmt.Errorf("vantage %s: %w", vr.Name, vr.Err)
		}
	}

	if f.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res.Report)
	}
	res.Report.Render(os.Stdout)
	if f.storeDir != "" {
		fmt.Printf("\nstore kept at %s (serve with: rdnsd -store %s)\n", dir, dir)
	}

	if f.minCorro > 0 {
		rules := obs.Rules{
			// Only the corroboration rule: injected faults are the
			// experiment here, not an operational error to flag.
			MaxErrorRate:     -1,
			MaxBreakerOpens:  -1,
			MaxRetryRate:     -1,
			MinCorroboration: f.minCorro,
			ErrorBudget:      f.budget,
		}
		slo := rules.Evaluate(rec.Frames())
		fmt.Printf("\nSLO: min corroboration %.2f, budget %.0f%%\n%s",
			f.minCorro, f.budget*100, slo.Summary())
		if !slo.BudgetOK {
			return fmt.Errorf("corroboration SLO budget exceeded")
		}
	}
	return nil
}
