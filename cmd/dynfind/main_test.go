package main

import (
	"strings"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
)

func TestSeriesFromCSV(t *testing.T) {
	csv := strings.Join([]string{
		"date,ip,ptr",
		"2021-01-01,10.0.0.1,h.example.edu",
		"2021-01-01,10.0.0.2,h.example.edu",
		// Duplicate observation on the same day must count once.
		"2021-01-01,10.0.0.2,h.example.edu",
		"2021-01-02,10.0.0.1,h.example.edu",
		// A different /24.
		"2021-01-02,10.0.1.9,h.example.edu",
	}, "\n") + "\n"
	series, err := seriesFromCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	day1 := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	if len(series.Dates) != 2 || !series.Dates[0].Equal(day1) {
		t.Fatalf("dates = %v", series.Dates)
	}
	p1 := dnswire.MustPrefix("10.0.0.0/24")
	p2 := dnswire.MustPrefix("10.0.1.0/24")
	if got := series.Counts[p1]; got[0] != 2 || got[1] != 1 {
		t.Fatalf("p1 counts = %v", got)
	}
	if got := series.Counts[p2]; got[0] != 0 || got[1] != 1 {
		t.Fatalf("p2 counts = %v", got)
	}
}

func TestSeriesFromCSVEmpty(t *testing.T) {
	series, err := seriesFromCSV(strings.NewReader("date,ip,ptr\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Dates) != 0 || len(series.Counts) != 0 {
		t.Fatalf("series = %+v", series)
	}
}

func TestSeriesFromCSVBadRow(t *testing.T) {
	_, err := seriesFromCSV(strings.NewReader("date,ip,ptr\n2021-01-01,not-an-ip,h.example.edu\n"))
	if err == nil {
		t.Fatal("bad address accepted")
	}
}
