package main

import (
	"testing"
	"time"

	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/dnswire"
)

func TestSeriesFromRows(t *testing.T) {
	day1 := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	day2 := day1.AddDate(0, 0, 1)
	name := dnswire.MustName("h.example.edu")
	rows := []dataset.Row{
		{Date: day1, IP: dnswire.MustIPv4("10.0.0.1"), PTR: name},
		{Date: day1, IP: dnswire.MustIPv4("10.0.0.2"), PTR: name},
		// Duplicate observation on the same day must count once.
		{Date: day1, IP: dnswire.MustIPv4("10.0.0.2"), PTR: name},
		{Date: day2, IP: dnswire.MustIPv4("10.0.0.1"), PTR: name},
		// A different /24.
		{Date: day2, IP: dnswire.MustIPv4("10.0.1.9"), PTR: name},
	}
	series := seriesFromRows(rows)
	if len(series.Dates) != 2 {
		t.Fatalf("dates = %v", series.Dates)
	}
	p1 := dnswire.MustPrefix("10.0.0.0/24")
	p2 := dnswire.MustPrefix("10.0.1.0/24")
	if got := series.Counts[p1]; got[0] != 2 || got[1] != 1 {
		t.Fatalf("p1 counts = %v", got)
	}
	if got := series.Counts[p2]; got[0] != 0 || got[1] != 1 {
		t.Fatalf("p2 counts = %v", got)
	}
}

func TestSeriesFromRowsEmpty(t *testing.T) {
	series := seriesFromRows(nil)
	if len(series.Dates) != 0 || len(series.Counts) != 0 {
		t.Fatalf("series = %+v", series)
	}
}
