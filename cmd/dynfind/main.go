// Command dynfind runs the Section 4 dynamicity heuristic over a CSV of
// reverse-DNS observations (date,ip,ptr — the format cmd/rdnsscan and the
// dataset package produce) and reports which /24 prefixes expose dynamic
// client behaviour.
//
//	dynfind -input observations.csv [-x 10] [-y 7] [-min 10]
//
// With -demo it instead generates a ground-truth campus (the paper's
// Section 4.1 validation network), scans it for three simulated months and
// validates the heuristic against the known numbering plan.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/dynamicity"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/scan"
	"rdnsprivacy/internal/telemetry"
)

func main() {
	input := flag.String("input", "", "CSV of date,ip,ptr observations")
	x := flag.Float64("x", 10, "change percentage threshold X")
	y := flag.Int("y", 7, "minimum change days Y")
	minAddr := flag.Int("min", 10, "minimum daily addresses to consider a /24")
	demo := flag.Bool("demo", false, "run the ground-truth validation demo instead")
	seed := flag.Uint64("seed", 7, "demo seed")
	workers := flag.Int("workers", 0, "snapshot engine workers for -demo (0 = GOMAXPROCS)")
	metricsAddr := flag.String("metrics-addr", "", "serve the -demo campaign's telemetry over HTTP on this address (/metrics, /debug/vars, /debug/pprof/; see docs/telemetry.md)")
	flag.Parse()

	cfg := dynamicity.Config{MinAddresses: *minAddr, ChangePercent: *x, MinChangeDays: *y}
	if *demo {
		var sink telemetry.Sink
		if *metricsAddr != "" {
			reg := telemetry.NewRegistry()
			exp := telemetry.NewExporter(reg)
			addr, err := exp.Start(*metricsAddr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "metrics endpoint: %v\n", err)
				os.Exit(1)
			}
			defer exp.Close()
			fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics\n", addr)
			sink = reg
		}
		runDemo(cfg, *seed, *workers, sink)
		return
	}
	if *input == "" {
		fmt.Fprintln(os.Stderr, "need -input or -demo")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*input)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	series, err := seriesFromCSV(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report(dynamicity.Analyze(series, cfg))
}

// seriesFromCSV streams the observations once, deduplicating per
// (date, address), and builds the per-/24 daily unique-address counts.
// Only the dedup sets are held, never the row slice.
func seriesFromCSV(r io.Reader) (*dataset.CountSeries, error) {
	perDay := map[time.Time]map[dnswire.IPv4]bool{}
	err := dataset.ScanRows(r, func(row dataset.Row) error {
		ips := perDay[row.Date]
		if ips == nil {
			ips = map[dnswire.IPv4]bool{}
			perDay[row.Date] = ips
		}
		ips[row.IP] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	days := make([]time.Time, 0, len(perDay))
	for d := range perDay {
		days = append(days, d)
	}
	sort.Slice(days, func(i, j int) bool { return days[i].Before(days[j]) })
	series := dataset.NewCountSeries(days)
	for i, d := range days {
		for ip := range perDay[d] {
			series.Add(ip.Slash24(), i, 1)
		}
	}
	return series, nil
}

func report(res *dynamicity.Result) {
	fmt.Printf("/24s with PTRs: %d; considered: %d; dynamic: %d\n",
		res.TotalPrefixes, res.ConsideredPrefixes, len(res.DynamicPrefixes))
	fmt.Println("prefix,max_daily,change_days")
	for _, p := range res.DynamicPrefixes {
		v := res.Verdicts[p]
		fmt.Printf("%s,%d,%d\n", p, v.MaxDaily, v.ChangeDays)
	}
}

func runDemo(cfg dynamicity.Config, seed uint64, workers int, sink telemetry.Sink) {
	campus, truth, err := netsim.BuildValidationCampus(seed, time.UTC)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	u := &netsim.Universe{Networks: []*netsim.Network{campus}}
	res := scan.Run(scan.Campaign{
		Universe:  u,
		Start:     time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
		End:       time.Date(2021, 3, 31, 0, 0, 0, 0, time.UTC),
		Cadence:   scan.Daily,
		Workers:   workers,
		Telemetry: sink,
	})
	verdict := dynamicity.Analyze(res.Series, cfg)
	flagged := map[dnswire.Prefix]bool{}
	for _, p := range verdict.DynamicPrefixes {
		flagged[p] = true
	}
	tp, fn := 0, 0
	for _, p := range truth["dynamic"] {
		if flagged[p] {
			tp++
		} else {
			fn++
		}
		delete(flagged, p)
	}
	fmt.Printf("ground-truth campus: %d dynamic, %d dhcp-but-static, %d static, %d empty /24s\n",
		len(truth["dynamic"]), len(truth["dhcp-static"]), len(truth["static"]), len(truth["empty"]))
	fmt.Printf("heuristic (X=%.0f%%, Y=%d): %d flagged dynamic\n",
		cfg.ChangePercent, cfg.MinChangeDays, len(verdict.DynamicPrefixes))
	fmt.Printf("true positives: %d, false negatives: %d, false positives: %d\n",
		tp, fn, len(flagged))
	fmt.Println("(paper validation: 40 dynamic prefixes found, 83 DHCP-but-static correctly not flagged)")
}
