GO ?= go

.PHONY: build test bench verify race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

# race checks the concurrency-heavy packages under the race detector.
race:
	$(GO) test -race ./internal/scanengine ./internal/dnsclient

# verify is the pre-merge gate: vet everything, run the full test suite,
# and race-test the scan engine and resolver.
verify:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/scanengine ./internal/dnsclient
