GO ?= go

.PHONY: build test bench bench-check cover verify race fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

# bench-check guards the hot paths against performance regressions: it
# runs the full-sweep benchmark plus the history-store and rdnsd query
# benchmarks, writes the results to BENCH_scan.json, and fails when
# ns/op regressed >15% against the checked-in baseline.
# After an intentional perf change: cp BENCH_scan.json BENCH_baseline.json
bench-check:
	$(GO) build -o /tmp/benchcheck ./cmd/benchcheck
	{ $(GO) test -run '^$$' -bench 'BenchmarkScanEngineFullSweep|BenchmarkHistStoreAt' -count=1 . \
		&& $(GO) test -run '^$$' -bench 'BenchmarkRdnsdQuery' -count=1 ./cmd/rdnsd ; } \
		| /tmp/benchcheck -baseline BENCH_baseline.json -out BENCH_scan.json

# cover gates per-package test coverage: every internal package must stay
# at or above its floor in COVERAGE_baseline.txt. covercheck also fails on
# upstream test failures, so the pipe cannot hide a red suite. After
# deliberately changing coverage: cp COVERAGE_current.txt COVERAGE_baseline.txt
cover:
	$(GO) build -o /tmp/covercheck ./cmd/covercheck
	$(GO) test -cover ./internal/... \
		| /tmp/covercheck -baseline COVERAGE_baseline.txt -out COVERAGE_current.txt

# race checks every internal package plus the query daemon under the race
# detector; the concurrency-heavy ones (scanengine, dnsclient, faultsim
# scenarios, rdnsd's queries-during-append) are the point, the rest are
# cheap.
race:
	$(GO) test -race ./internal/... ./cmd/rdnsd

# fuzz gives each fuzz target a short exploratory run beyond its checked-in
# seed corpus (plain `go test` already replays the seeds).
fuzz:
	$(GO) test -fuzz=FuzzParseOptions -fuzztime=30s ./internal/dhcpwire
	$(GO) test -fuzz=FuzzDecodeBlock -fuzztime=30s ./internal/histstore

# verify is the pre-merge gate: vet everything, run the full test suite
# with the coverage floors, and race-test the internal packages and the
# query daemon.
verify:
	$(GO) vet ./...
	$(GO) test ./...
	$(MAKE) cover
	$(GO) test -race ./internal/... ./cmd/rdnsd
