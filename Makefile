GO ?= go

.PHONY: build test bench bench-check cover verify race fuzz loadtest replicatest metriclint monitortest vantagetest

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

# bench-check guards the hot paths against performance regressions: it
# runs the full-sweep benchmark plus the history-store, rdnsd query and
# replica benchmarks, writes the results to BENCH_scan.json, and fails when
# ns/op regressed >15% against the checked-in baseline. The concurrent
# serving benchmark additionally gates its p99-ns/op tail latency.
# After an intentional perf change: cp BENCH_scan.json BENCH_baseline.json
bench-check:
	$(GO) build -o /tmp/benchcheck ./cmd/benchcheck
	{ $(GO) test -run '^$$' -bench 'BenchmarkScanEngineFullSweep|BenchmarkHistStoreAt' -count=1 . \
		&& $(GO) test -run '^$$' -bench 'BenchmarkHistStoreCompact' -count=4 . \
		&& $(GO) test -run '^$$' -bench 'BenchmarkRdnsdQuery|BenchmarkRdnsdConcurrentLoad' -count=1 ./internal/rdnsserve \
		&& $(GO) test -run '^$$' -bench 'BenchmarkReplicaCatchup|BenchmarkReplicaQuery' -count=4 ./internal/replica \
		&& $(GO) test -run '^$$' -bench 'BenchmarkVantageMerge' -count=1 ./internal/vantage ; } \
		| /tmp/benchcheck -baseline BENCH_baseline.json -out BENCH_scan.json -gate-extras p99-ns/op

# cover gates per-package test coverage: every internal package must stay
# at or above its floor in COVERAGE_baseline.txt. covercheck also fails on
# upstream test failures, so the pipe cannot hide a red suite. After
# deliberately changing coverage: cp COVERAGE_current.txt COVERAGE_baseline.txt
cover:
	$(GO) build -o /tmp/covercheck ./cmd/covercheck
	$(GO) test -cover ./internal/... ./cmd/rdnsd ./cmd/rdnsload ./cmd/benchcheck ./cmd/rdnsmon ./cmd/metriclint \
		| /tmp/covercheck -baseline COVERAGE_baseline.txt -out COVERAGE_current.txt

# race checks every internal package plus the query daemon under the race
# detector; the concurrency-heavy ones (scanengine, dnsclient, faultsim
# scenarios, rdnsserve's hot-reload and queries-during-append) are the
# point, the rest are cheap.
race:
	$(GO) test -race ./internal/... ./cmd/rdnsd

# loadtest is the serving-path smoke: rdnsload self-hosts a synthesized
# history and drives 10k concurrent workers of mixed v1 queries through
# it, failing unless the run stays within the latency/shed SLOs.
loadtest:
	$(GO) build -o /tmp/rdnsload ./cmd/rdnsload
	/tmp/rdnsload -workers 10000 -requests 30000 -days 30 -blocks 4 \
		-rate 100 -burst 20 -slo-p95 10 -slo-p99 20 -slo-max-shed-rate 0.01

# fuzz gives each fuzz target a short exploratory run beyond its checked-in
# seed corpus (plain `go test` already replays the seeds).
fuzz:
	$(GO) test -fuzz=FuzzParseOptions -fuzztime=30s ./internal/dhcpwire
	$(GO) test -fuzz=FuzzDecodeBlock -fuzztime=30s ./internal/histstore
	$(GO) test -fuzz=FuzzSegmentManifest -fuzztime=30s ./internal/histstore
	$(GO) test -fuzz=FuzzSegmentFooter -fuzztime=30s ./internal/histstore
	$(GO) test -fuzz=FuzzReplManifest -fuzztime=30s ./internal/replica
	$(GO) test -fuzz=FuzzSegmentFetch -fuzztime=30s ./internal/replica

# metriclint statically enforces the metric-name conventions (subsystem
# prefixes, _total on counters, unit suffixes on histograms, no kind
# conflicts) across every registration site in the tree.
metriclint:
	$(GO) build -o /tmp/metriclint ./cmd/metriclint
	/tmp/metriclint ./internal ./cmd

# monitortest is the observability e2e gate: a primary and a snapshot
# replica serve traced queries, rdnsmon judges the two-daemon fleet
# against the SLO rules, and the p99 exemplar from /v1/stats must
# resolve via its correlation ID to a stitched client -> daemon ->
# replica-sync chain — all under the race detector, replayed twice to
# prove the identity digests are deterministic, with a goroutine-leak
# check at the end.
monitortest:
	$(GO) test -race -count=1 -run 'TestMonitorE2E' ./cmd/rdnsmon

# vantagetest is the multi-vantage measurement gate: the seeded
# three-vantage campaign race test (concurrent appenders with live
# compaction, disagreement reads mid-flight, goroutine-leak check) plus
# the 50-seed replay-determinism battery proving reports and obs frame
# digests are bit-identical across runs.
vantagetest:
	$(GO) test -race -count=1 -run 'TestVantageCampaignRace' ./internal/vantage
	$(GO) test -count=1 -run 'TestVantageReplayDeterminism' ./internal/vantage

# replicatest is the replication gate: the chaos battery (a primary with
# a live appender and periodic compactions, replicas catching up while
# pulls are killed mid-flight and syncers restart, query workers on every
# daemon) under the race detector, plus a replay of the replica fuzz
# seed corpora. Asserts zero query errors and bit-identical convergence.
replicatest:
	$(GO) test -race -count=1 -run 'TestReplicaSoakRace|TestReplicaChaosConvergence' ./internal/replica
	$(GO) test -count=1 -run 'Fuzz' ./internal/replica

# verify is the pre-merge gate: vet everything, lint the metric names,
# run the full test suite with the coverage floors, race-test the
# internal packages and the query daemon, run the replication chaos
# battery, the observability e2e and the multi-vantage campaign gate,
# and smoke the serving path under 10k-worker load.
verify:
	$(GO) vet ./...
	$(MAKE) metriclint
	$(GO) test ./...
	$(MAKE) cover
	$(GO) test -race ./internal/... ./cmd/rdnsd
	$(MAKE) replicatest
	$(MAKE) monitortest
	$(MAKE) vantagetest
	$(MAKE) loadtest
